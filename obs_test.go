package xsltdb

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/obs"
)

// findSpan walks an exported trace looking for the first span named name.
func findSpan(spans []obs.SpanJSON, name string) *obs.SpanJSON {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if s := findSpan(spans[i].Children, name); s != nil {
			return s
		}
	}
	return nil
}

// TestTraceThroughRun asserts every strategy's Run produces a complete
// operator tree: the run root, the compile phase, the strategy attempt, and
// the strategy's per-operator spans with row counts.
func TestTraceThroughRun(t *testing.T) {
	operators := map[Strategy][]string{
		StrategySQL:       {"scan", "construct", "serialize"},
		StrategyXQuery:    {"xquery-eval"},
		StrategyNoRewrite: {"xslt-interpret"},
	}
	for s, ops := range operators {
		t.Run(s.String(), func(t *testing.T) {
			d := newKeyedDB(t, 50)
			ct, err := d.CompileTransform("rows", keyedSheet, WithForcedStrategy(s))
			if err != nil {
				t.Fatal(err)
			}
			tr := obs.New()
			defer tr.Release()
			res, err := ct.Run(context.Background(), WithTrace(tr))
			if err != nil {
				t.Fatal(err)
			}
			exp := tr.Export()
			root := findSpan(exp, "run")
			if root == nil {
				t.Fatalf("no run span in trace:\n%s", tr.Tree())
			}
			if root.RowsOut != res.Stats.RowsProduced {
				t.Errorf("run rows_out = %d, want %d", root.RowsOut, res.Stats.RowsProduced)
			}
			if root.Attrs["view"] != "rows" {
				t.Errorf("run view attr = %q, want rows", root.Attrs["view"])
			}
			if root.Attrs["access_path"] == "" {
				t.Error("run span missing access_path attr")
			}
			if findSpan(exp, "compile") == nil {
				t.Errorf("no compile span:\n%s", tr.Tree())
			}
			attempt := findSpan(exp, s.String())
			if attempt == nil {
				t.Fatalf("no %s attempt span:\n%s", s, tr.Tree())
			}
			if attempt.RowsOut != res.Stats.RowsProduced {
				t.Errorf("attempt rows_out = %d, want %d", attempt.RowsOut, res.Stats.RowsProduced)
			}
			for _, op := range ops {
				sp := findSpan(attempt.Children, op)
				if sp == nil {
					t.Fatalf("no %s operator span under %s:\n%s", op, s, tr.Tree())
				}
				if sp.RowsOut == 0 {
					t.Errorf("%s rows_out = 0, want > 0", op)
				}
			}
			if s == StrategySQL {
				if est := findSpan(attempt.Children, "scan").Attrs["est_rows"]; est == "" {
					t.Error("scan span missing est_rows estimate")
				}
			}
		})
	}
}

// TestTraceThroughCursor asserts the streaming path produces the same shaped
// tree over the cursor's whole lifetime, finished at release time.
func TestTraceThroughCursor(t *testing.T) {
	d := newKeyedDB(t, 30)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	defer tr.Release()
	cur, err := ct.OpenCursor(context.Background(), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		if _, err := cur.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	exp := tr.Export()
	root := findSpan(exp, "cursor")
	if root == nil {
		t.Fatalf("no cursor span:\n%s", tr.Tree())
	}
	if root.RowsOut != int64(rows) {
		t.Errorf("cursor rows_out = %d, want %d", root.RowsOut, rows)
	}
	if root.Error != "" {
		t.Errorf("clean cursor tagged with error %q", root.Error)
	}
	for _, name := range []string{"compile", "sql-rewrite", "scan", "construct", "serialize"} {
		if findSpan(exp, name) == nil {
			t.Errorf("no %s span:\n%s", name, tr.Tree())
		}
	}
	if sc := findSpan(exp, "scan"); sc.RowsOut != int64(rows) {
		t.Errorf("scan rows_out = %d, want %d", sc.RowsOut, rows)
	}
}

// TestExplainAnalyzeStrategies asserts EXPLAIN ANALYZE renders the shared
// header plus per-operator actuals for all three strategies.
func TestExplainAnalyzeStrategies(t *testing.T) {
	operators := map[Strategy][]string{
		StrategySQL:       {"scan", "construct", "serialize"},
		StrategyXQuery:    {"xquery-eval"},
		StrategyNoRewrite: {"xslt-interpret"},
	}
	for s, ops := range operators {
		t.Run(s.String(), func(t *testing.T) {
			d := newKeyedDB(t, 40)
			ct, err := d.CompileTransform("rows", keyedSheet, WithForcedStrategy(s))
			if err != nil {
				t.Fatal(err)
			}
			out, err := ct.ExplainAnalyze(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range append([]string{"strategy: " + s.String(), "plan cache:", "actual: rows=", "calls="}, ops...) {
				if !strings.Contains(out, want) {
					t.Errorf("ExplainAnalyze output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestExplainAnalyzePushdown asserts the analyzed probe shows the planner's
// estimate next to the actuals on the scan operator.
func TestExplainAnalyzePushdown(t *testing.T) {
	d := newKeyedDB(t, 500)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ct.ExplainAnalyze(context.Background(), WithWhere("@id = $key"), WithParam("key", 123))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"INDEX PROBE row(id)", "est_rows=1", "rows_out=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyzed probe missing %q:\n%s", want, out)
		}
	}
}

// TestExplainPlanHeader asserts the static EXPLAIN shares the analyzing
// form's header: chosen strategy and plan-cache status.
func TestExplainPlanHeader(t *testing.T) {
	d := newKeyedDB(t, 20)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	out := ct.ExplainPlan()
	for _, want := range []string{"strategy: sql-rewrite", "plan cache: cached=true", "TABLE SCAN row"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainPlan missing %q:\n%s", want, out)
		}
	}
	if _, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if out := ct.ExplainPlan(); !strings.Contains(out, "cached=true") {
		t.Errorf("plan no longer reported cached after a run:\n%s", out)
	}
}

// TestMetricsMatchExecStatsUnderConcurrency runs parallel executions and
// asserts the process-wide counters advanced by exactly the sum of the
// per-run ExecStats — the facade's metrics and the per-run stats are two
// views of one accounting. Counter DELTAS are compared because obs.Default
// is process-wide and other tests feed it too (run under -race by `make
// faults`' sibling `make race`).
func TestMetricsMatchExecStatsUnderConcurrency(t *testing.T) {
	d := newKeyedDB(t, 200)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}

	runsBefore := mRuns.With(StrategySQL.String(), "ok").Value()
	rowsBefore := mRowsReturned.Value()
	scannedBefore := mRowsScanned.Value()
	secondsBefore := mRunSeconds.With(StrategySQL.String()).Count()

	const workers, perWorker = 8, 5
	var (
		mu            sync.Mutex
		rows, scanned int64
		wg            sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := ct.Run(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				rows += res.Stats.RowsProduced
				scanned += res.Stats.RowsScanned
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if got := mRuns.With(StrategySQL.String(), "ok").Value() - runsBefore; got != workers*perWorker {
		t.Errorf("runs_total delta = %d, want %d", got, workers*perWorker)
	}
	if got := mRowsReturned.Value() - rowsBefore; got != rows {
		t.Errorf("rows_returned_total delta = %d, want summed ExecStats %d", got, rows)
	}
	if got := mRowsScanned.Value() - scannedBefore; got != scanned {
		t.Errorf("rows_scanned_total delta = %d, want summed ExecStats %d", got, scanned)
	}
	if got := mRunSeconds.With(StrategySQL.String()).Count() - secondsBefore; got != workers*perWorker {
		t.Errorf("run_seconds histogram count delta = %d, want %d", got, workers*perWorker)
	}

	// The Prometheus rendering carries the same series.
	var sb strings.Builder
	if _, err := MetricsRegistry().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`xsltdb_runs_total{strategy="sql-rewrite",outcome="ok"}`,
		"xsltdb_rows_returned_total",
		"# TYPE xsltdb_run_seconds histogram",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestFaultTraceErrorTagged injects a mid-scan fault and asserts the failed
// executions still emit a complete trace with the failure tagged on the
// operator where it happened — materialized Run and streaming cursor both.
func TestFaultTraceErrorTagged(t *testing.T) {
	d := newKeyedDB(t, 40)
	ct, err := d.CompileTransform("rows", keyedSheet, WithForcedStrategy(StrategySQL))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("run", func(t *testing.T) {
		faultpoint.Enable("sqlxml.query.next", errBoom)
		defer faultpoint.Reset()
		tr := obs.New()
		defer tr.Release()
		if _, err := ct.Run(context.Background(), WithTrace(tr)); !errors.Is(err, errBoom) {
			t.Fatalf("Run error = %v, want errBoom", err)
		}
		exp := tr.Export()
		root := findSpan(exp, "run")
		if root == nil || findSpan(exp, "compile") == nil {
			t.Fatalf("failed run's trace incomplete:\n%s", tr.Tree())
		}
		if root.Error == "" {
			t.Errorf("run span not error-tagged:\n%s", tr.Tree())
		}
		attempt := findSpan(exp, StrategySQL.String())
		if attempt == nil || attempt.Error == "" {
			t.Errorf("strategy attempt not error-tagged:\n%s", tr.Tree())
		}
	})

	t.Run("cursor", func(t *testing.T) {
		faultpoint.EnableAfter("sqlxml.query.next", 1, errBoom)
		defer faultpoint.Reset()
		tr := obs.New()
		defer tr.Release()
		cur, err := ct.OpenCursor(context.Background(), WithTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		for {
			_, err := cur.Next()
			if err == io.EOF {
				t.Fatal("cursor reached EOF, fault never fired")
			}
			if err != nil {
				if !errors.Is(err, errBoom) {
					t.Fatalf("Next error = %v, want errBoom", err)
				}
				break
			}
		}
		exp := tr.Export()
		root := findSpan(exp, "cursor")
		if root == nil {
			t.Fatalf("no cursor span:\n%s", tr.Tree())
		}
		if root.Error == "" {
			t.Errorf("cursor span not error-tagged:\n%s", tr.Tree())
		}
		if sc := findSpan(exp, "scan"); sc == nil || sc.Error == "" {
			t.Errorf("scan operator not error-tagged:\n%s", tr.Tree())
		}
	})
}

// TestSlowRunSink configures a 1ns threshold so every run is slow and
// asserts the sink receives the full report — including the operator tree,
// which the run traced on its own because the caller attached no trace.
func TestSlowRunSink(t *testing.T) {
	var (
		mu      sync.Mutex
		reports []SlowRun
	)
	sink := func(sr SlowRun) {
		mu.Lock()
		reports = append(reports, sr)
		mu.Unlock()
	}
	d := newKeyedDB(t, 25)
	ct, err := d.CompileTransform("rows", keyedSheet,
		WithSlowThreshold(time.Nanosecond), WithSlowRunSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	slowBefore := mSlowRuns.Value()

	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Collect(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 2 {
		t.Fatalf("sink received %d reports, want 2 (Run + cursor)", len(reports))
	}
	if got := mSlowRuns.Value() - slowBefore; got != 2 {
		t.Errorf("slow_runs_total delta = %d, want 2", got)
	}
	roots := []string{"run", "cursor"}
	for i, sr := range reports {
		if sr.View != "rows" {
			t.Errorf("report %d view = %q, want rows", i, sr.View)
		}
		if sr.Err != "" {
			t.Errorf("report %d unexpected error %q", i, sr.Err)
		}
		if sr.Wall < sr.Threshold {
			t.Errorf("report %d wall %v below threshold %v", i, sr.Wall, sr.Threshold)
		}
		if sr.Stats.RowsProduced != res.Stats.RowsProduced {
			t.Errorf("report %d rows = %d, want %d", i, sr.Stats.RowsProduced, res.Stats.RowsProduced)
		}
		if !strings.Contains(sr.Trace, roots[i]) || !strings.Contains(sr.Trace, "scan") {
			t.Errorf("report %d trace missing operator tree:\n%s", i, sr.Trace)
		}
		var spans []obs.SpanJSON
		if err := json.Unmarshal(sr.TraceJSON, &spans); err != nil {
			t.Errorf("report %d TraceJSON invalid: %v", i, err)
		} else if findSpan(spans, roots[i]) == nil {
			t.Errorf("report %d TraceJSON missing %s root", i, roots[i])
		}
	}
}

// TestSlowRunSinkNotTriggered asserts a generous threshold keeps the sink
// quiet and runs pay no tracing cost they didn't ask for.
func TestSlowRunSinkNotTriggered(t *testing.T) {
	called := false
	d := newKeyedDB(t, 10)
	ct, err := d.CompileTransform("rows", keyedSheet,
		WithSlowThreshold(time.Hour), WithSlowRunSink(func(SlowRun) { called = true }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("sink fired for a run far under threshold")
	}
}

// TestExecStatsStringComplete is the reflection guard: every ExecStats field
// must have a token in statsFieldTokens, and a fully-populated value must
// render every token — adding a field without teaching String() about it
// fails here.
func TestExecStatsStringComplete(t *testing.T) {
	typ := reflect.TypeOf(ExecStats{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := statsFieldTokens[name]; !ok {
			t.Errorf("ExecStats.%s has no token in statsFieldTokens — String() is incomplete", name)
		}
	}
	if len(statsFieldTokens) != typ.NumField() {
		t.Errorf("statsFieldTokens has %d entries, ExecStats has %d fields — stale token?",
			len(statsFieldTokens), typ.NumField())
	}

	full := ExecStats{
		RowsProduced: 1, RowsScanned: 2, IndexProbes: 3, RangeScans: 4,
		FullScans: 5, RowsEmitted: 6, RowsFiltered: 7, Batches: 1,
		MorselsExecuted: 1, Recompiles: 1,
		AccessPath: "INDEX PROBE t(c)", EstRows: 8, CompileWall: time.Millisecond,
		ExecWall: time.Millisecond, StrategyUsed: StrategySQL,
		Degradations: 1, BreakerSkips: 1, BreakerTrips: 1, PanicsRecovered: 1,
		GovTicks: 1,
	}
	line := full.String()
	for field, token := range statsFieldTokens {
		if !strings.Contains(line, token) {
			t.Errorf("ExecStats.String() missing %q (field %s): %s", token, field, line)
		}
	}
}
