// Package xsltdb is the public API of the repository: efficient XSLT
// processing in a relational database system, after Liu & Novoselsky
// (VLDB 2006).
//
// The package ties the pipeline together:
//
//	XSLT stylesheet
//	   │  partial evaluation over the input's structural information (§4)
//	   ▼
//	XQuery (inline when the template execution graph is acyclic — §3.3-3.7)
//	   │  XQuery→SQL/XML rewrite over the view definition (§2)
//	   ▼
//	SQL/XML plan over relational tables with B-tree index access paths
//
// A Database owns relational tables and XMLType views. CompileTransform
// compiles a stylesheet against a view, choosing the best strategy and
// falling back gracefully: SQL/XML plan → functional XQuery over
// materialized rows → functional XSLT interpretation ("no rewrite").
package xsltdb

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xmltree"
	"repro/internal/xq2sql"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

// Re-exported relational building blocks.
type (
	// TableColumn declares a relational column.
	TableColumn = relstore.Column
	// Pred is a relational predicate (column op constant).
	Pred = relstore.Pred
	// Stats counts physical operator work.
	Stats = relstore.Stats
)

// Column types.
const (
	IntCol    = relstore.IntCol
	FloatCol  = relstore.FloatCol
	StringCol = relstore.StringCol
)

// Re-exported SQL/XML view constructors (paper Table 3 building blocks).
type (
	// XMLExpr is any SQL/XML generation expression.
	XMLExpr = sqlxml.XMLExpr
	// ViewDef defines an XMLType view over a driving table.
	ViewDef = sqlxml.ViewDef
	// XMLElement is the XMLElement() generation function.
	XMLElement = sqlxml.Element
	// XMLAttr is one XMLAttributes() entry.
	XMLAttr = sqlxml.Attr
	// XMLColumn emits a column value as text.
	XMLColumn = sqlxml.Column
	// XMLLiteral emits constant text.
	XMLLiteral = sqlxml.Literal
	// XMLConcat is XMLConcat().
	XMLConcat = sqlxml.Concat
	// XMLAgg aggregates a correlated subquery.
	XMLAgg = sqlxml.Agg
	// SubQuery is the correlated subquery of an XMLAgg/ScalarAgg.
	SubQuery = sqlxml.SubQuery
	// ScalarAgg is COUNT/SUM/AVG/MIN/MAX.
	ScalarAgg = sqlxml.ScalarAgg
)

// Strategy identifies how a compiled transformation executes.
type Strategy uint8

// Execution strategies, strongest first.
const (
	// StrategySQL: the full paper pipeline — the stylesheet became a
	// SQL/XML plan over the base tables (Tables 7/11).
	StrategySQL Strategy = iota
	// StrategyXQuery: the stylesheet became XQuery, evaluated functionally
	// over each materialized view row (the first rewrite stage only).
	StrategyXQuery
	// StrategyNoRewrite: functional XSLT interpretation over materialized
	// rows — the paper's baseline.
	StrategyNoRewrite
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySQL:
		return "sql-rewrite"
	case StrategyXQuery:
		return "xquery-rewrite"
	default:
		return "no-rewrite"
	}
}

// Database owns relational tables and XMLType views. View registration and
// lookup are safe for concurrent use; the relational store carries its own
// locking.
type Database struct {
	mu    sync.RWMutex
	rel   *relstore.DB
	exec  *sqlxml.Executor
	views map[string]*ViewDef
	// viewVersions tracks view redefinitions so compiled transforms can
	// recompile automatically (§7.3: "this recompilation process is
	// automated because the XSLT query has dependency on the XML schema
	// whose change is tracked by the database system").
	viewVersions map[string]int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	rel := relstore.NewDB()
	return &Database{rel: rel, exec: sqlxml.NewExecutor(rel), views: map[string]*ViewDef{}, viewVersions: map[string]int{}}
}

// Rel exposes the underlying relational store.
func (d *Database) Rel() *relstore.DB { return d.rel }

// Stats returns the accumulated physical operator counters.
func (d *Database) Stats() *Stats { return &d.exec.Stats }

// CreateTable creates a relational table.
func (d *Database) CreateTable(name string, cols ...TableColumn) error {
	_, err := d.rel.CreateTable(name, cols...)
	return err
}

// Insert appends a row to a table.
func (d *Database) Insert(table string, values ...relstore.Value) error {
	t := d.rel.Table(table)
	if t == nil {
		return fmt.Errorf("xsltdb: no table %q", table)
	}
	_, err := t.Insert(values...)
	return err
}

// CreateIndex builds a B-tree index on table.col.
func (d *Database) CreateIndex(table, col string) error {
	t := d.rel.Table(table)
	if t == nil {
		return fmt.Errorf("xsltdb: no table %q", table)
	}
	return t.CreateIndex(col)
}

// CreateXMLView registers an XMLType view.
func (d *Database) CreateXMLView(v *ViewDef) error {
	if v.Name == "" {
		return errors.New("xsltdb: view needs a name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.views[v.Name]; dup {
		return fmt.Errorf("xsltdb: view %q already exists", v.Name)
	}
	if d.rel.Table(v.Table) == nil {
		return fmt.Errorf("xsltdb: view %q references unknown table %q", v.Name, v.Table)
	}
	d.views[v.Name] = v
	d.viewVersions[v.Name] = 1
	return nil
}

// ReplaceXMLView redefines an existing view (schema evolution, §7.3).
// Transforms compiled against the old definition recompile automatically on
// their next Run.
func (d *Database) ReplaceXMLView(v *ViewDef) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.views[v.Name]; !ok {
		return fmt.Errorf("xsltdb: no view %q to replace", v.Name)
	}
	if d.rel.Table(v.Table) == nil {
		return fmt.Errorf("xsltdb: view %q references unknown table %q", v.Name, v.Table)
	}
	d.views[v.Name] = v
	d.viewVersions[v.Name]++
	return nil
}

// View returns a registered view, or nil.
func (d *Database) View(name string) *ViewDef {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.views[name]
}

// viewAndVersion reads a view with its current version under the lock.
func (d *Database) viewAndVersion(name string) (*ViewDef, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.views[name], d.viewVersions[name]
}

// MaterializeView builds the XMLType instance of every view row (the
// functional input path).
func (d *Database) MaterializeView(name string) ([]*xmltree.Node, error) {
	v := d.View(name)
	if v == nil {
		return nil, fmt.Errorf("xsltdb: no view %q", name)
	}
	return d.exec.MaterializeView(v)
}

// DeriveSchema computes the structural schema of a view's output (§3.2).
func (d *Database) DeriveSchema(name string) (*xschema.Schema, error) {
	v := d.View(name)
	if v == nil {
		return nil, fmt.Errorf("xsltdb: no view %q", name)
	}
	return d.exec.DeriveSchema(v)
}

// CompileOptions tune CompileTransform.
type CompileOptions struct {
	// Force selects a strategy instead of the automatic
	// SQL→XQuery→no-rewrite fallback chain.
	Force *Strategy
	// OuterPath composes an XQuery child path over the TRANSFORM OUTPUT
	// (paper Example 2): e.g. []string{"table", "tr"}.
	OuterPath []string
	// Parallelism runs the SQL strategy with row-level parallelism when
	// > 1 (the paper's "parallel manner" aggregation note).
	Parallelism int
}

// ForceStrategy is a convenience for CompileOptions.Force.
func ForceStrategy(s Strategy) *Strategy { return &s }

// CompiledTransform is a stylesheet compiled against a view.
type CompiledTransform struct {
	db       *Database
	view     *ViewDef
	sheet    *xslt.Stylesheet
	strategy Strategy

	rewrite *core.Result  // nil for no-rewrite
	plan    *sqlxml.Query // nil unless StrategySQL
	// FallbackReason explains why a stronger strategy was not used.
	FallbackReason string

	// Recompilation state (§7.3).
	viewName    string
	viewVersion int
	source      string
	opts        CompileOptions
	// Recompiles counts automatic recompilations triggered by view
	// redefinition.
	Recompiles int
}

// CompileTransform compiles stylesheet text against the named view,
// choosing the strongest applicable strategy.
func (d *Database) CompileTransform(viewName, stylesheet string, opts CompileOptions) (*CompiledTransform, error) {
	view, version := d.viewAndVersion(viewName)
	if view == nil {
		return nil, fmt.Errorf("xsltdb: no view %q", viewName)
	}
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		return nil, err
	}
	ct := &CompiledTransform{
		db: d, view: view, sheet: sheet, strategy: StrategyNoRewrite,
		viewName: viewName, viewVersion: version,
		source: stylesheet, opts: opts,
	}

	if opts.Force != nil && *opts.Force == StrategyNoRewrite {
		if len(opts.OuterPath) > 0 {
			return nil, errors.New("xsltdb: OuterPath requires a rewrite strategy")
		}
		return ct, nil
	}

	schema, err := d.exec.DeriveSchema(view)
	if err != nil {
		if opts.Force != nil {
			return nil, fmt.Errorf("xsltdb: schema derivation failed: %w", err)
		}
		ct.FallbackReason = "schema derivation failed: " + err.Error()
		return ct, nil
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		if opts.Force != nil {
			return nil, fmt.Errorf("xsltdb: rewrite failed: %w", err)
		}
		ct.FallbackReason = "XSLT→XQuery rewrite failed: " + err.Error()
		return ct, nil
	}
	ct.rewrite = res
	ct.strategy = StrategyXQuery

	module := res.Module
	if len(opts.OuterPath) > 0 {
		projected, err := xq2sql.ProjectPath(module, opts.OuterPath)
		if err != nil {
			return nil, fmt.Errorf("xsltdb: outer path: %w", err)
		}
		module = projected
		ct.rewrite = &core.Result{Module: module, Mode: res.Mode, Inlined: res.Inlined, PE: res.PE, Notes: res.Notes}
	}

	if opts.Force != nil && *opts.Force == StrategyXQuery {
		return ct, nil
	}

	plan, err := xq2sql.Translate(module, view)
	if err != nil {
		if opts.Force != nil && *opts.Force == StrategySQL {
			return nil, fmt.Errorf("xsltdb: SQL lowering failed: %w", err)
		}
		ct.FallbackReason = "XQuery→SQL/XML lowering failed: " + err.Error()
		return ct, nil
	}
	ct.plan = plan
	ct.strategy = StrategySQL
	return ct, nil
}

// Strategy reports the chosen execution strategy.
func (ct *CompiledTransform) Strategy() Strategy { return ct.strategy }

// Inlined reports whether the XQuery stage fully inlined (§5 statistic).
func (ct *CompiledTransform) Inlined() bool {
	return ct.rewrite != nil && ct.rewrite.Inlined
}

// Notes lists the optimizations the rewriter applied.
func (ct *CompiledTransform) Notes() []string {
	if ct.rewrite == nil {
		return nil
	}
	return ct.rewrite.Notes
}

// XQuery returns the generated XQuery text ("" for no-rewrite).
func (ct *CompiledTransform) XQuery() string {
	if ct.rewrite == nil {
		return ""
	}
	return ct.rewrite.Module.String()
}

// SQL returns the generated SQL/XML text ("" unless StrategySQL).
func (ct *CompiledTransform) SQL() string {
	if ct.plan == nil {
		return ""
	}
	return ct.plan.SQL()
}

// ExplainPlan describes the physical access paths ("" unless StrategySQL).
func (ct *CompiledTransform) ExplainPlan() string {
	if ct.plan == nil {
		return ""
	}
	return ct.db.exec.ExplainQuery(ct.plan)
}

// Run executes the transformation for every view row and returns the
// serialized results (one string per driving row). A transform whose view
// was redefined since compilation recompiles automatically first (§7.3).
func (ct *CompiledTransform) Run() ([]string, error) {
	ct.db.mu.RLock()
	cur := ct.db.viewVersions[ct.viewName]
	ct.db.mu.RUnlock()
	if cur != ct.viewVersion {
		fresh, err := ct.db.CompileTransform(ct.viewName, ct.source, ct.opts)
		if err != nil {
			return nil, fmt.Errorf("xsltdb: automatic recompilation after view change: %w", err)
		}
		recompiles := ct.Recompiles + 1
		*ct = *fresh
		ct.Recompiles = recompiles
	}
	return ct.run()
}

func (ct *CompiledTransform) run() ([]string, error) {
	switch ct.strategy {
	case StrategySQL:
		docs, err := ct.db.exec.ExecQueryParallel(ct.plan, ct.opts.Parallelism)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(docs))
		for i, doc := range docs {
			out[i] = serialize(doc)
		}
		return out, nil

	case StrategyXQuery:
		rows, err := ct.db.exec.MaterializeView(ct.view)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(rows))
		for i, row := range rows {
			seq, err := xquery.EvalModule(ct.rewrite.Module, xquery.NewEnv(xquery.Item(row)))
			if err != nil {
				return nil, fmt.Errorf("xsltdb: row %d: %w", i, err)
			}
			out[i] = xquery.SerializeSeq(seq)
		}
		return out, nil

	default: // StrategyNoRewrite
		rows, err := ct.db.exec.MaterializeView(ct.view)
		if err != nil {
			return nil, err
		}
		eng := xslt.New(ct.sheet)
		out := make([]string, len(rows))
		for i, row := range rows {
			s, err := eng.TransformToString(row)
			if err != nil {
				return nil, fmt.Errorf("xsltdb: row %d: %w", i, err)
			}
			out[i] = s
		}
		return out, nil
	}
}

func serialize(n *xmltree.Node) string {
	var sb strings.Builder
	n.Serialize(&sb, xmltree.SerializeOptions{OmitDecl: true})
	return sb.String()
}

// Transform applies a stylesheet to standalone XML text functionally (the
// XMLTransform() convenience without a database).
func Transform(xmlText, stylesheet string) (string, error) {
	doc, err := xmltree.Parse(xmlText)
	if err != nil {
		return "", err
	}
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		return "", err
	}
	return xslt.New(sheet).TransformToString(doc)
}

// RewriteToXQuery compiles a stylesheet against a compact schema (see
// internal/xschema) and returns the generated XQuery text plus whether it
// fully inlined.
func RewriteToXQuery(stylesheet, compactSchema string) (queryText string, inlined bool, err error) {
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		return "", false, err
	}
	schema, err := xschema.ParseCompact(compactSchema)
	if err != nil {
		return "", false, err
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		return "", false, err
	}
	return res.Module.String(), res.Inlined, nil
}

// ChainedTransform is a pipeline: a view-backed first stage followed by
// stylesheets applied to each preceding stage's output. Later stages are
// rewritten against the statically-derived schema of the previous stage's
// output when possible (§3.2), else interpreted functionally.
type ChainedTransform struct {
	first  *CompiledTransform
	stages []chainStage
}

type chainStage struct {
	sheet *xslt.Stylesheet
	// module is the rewritten query for this stage; nil = interpret.
	module *xquery.Module
	// Rewritten reports whether the stage uses the XSLT→XQuery rewrite.
	Rewritten bool
}

// Then builds a pipeline that applies stylesheet to every output document
// of ct.
func (ct *CompiledTransform) Then(stylesheet string) (*ChainedTransform, error) {
	chain := &ChainedTransform{first: ct}
	return chain.Then(stylesheet)
}

// Then appends one more stage.
func (c *ChainedTransform) Then(stylesheet string) (*ChainedTransform, error) {
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		return nil, err
	}
	st := chainStage{sheet: sheet}
	// Static typing source: the previous rewritten module (first stage or
	// last chained stage).
	var prev *xquery.Module
	if len(c.stages) > 0 {
		prev = c.stages[len(c.stages)-1].module
	} else if c.first.rewrite != nil {
		prev = c.first.rewrite.Module
	}
	if prev != nil {
		if schema, err := core.DeriveOutputSchema(prev); err == nil {
			if res, err := core.Rewrite(sheet, schema, core.ModeAuto); err == nil {
				st.module = res.Module
				st.Rewritten = true
			}
		}
	}
	c.stages = append(c.stages, st)
	return c, nil
}

// Stages reports how many chained stages were rewritten (vs interpreted).
func (c *ChainedTransform) Stages() (rewritten, interpreted int) {
	for _, st := range c.stages {
		if st.Rewritten {
			rewritten++
		} else {
			interpreted++
		}
	}
	return rewritten, interpreted
}

// Run executes the pipeline for every view row.
func (c *ChainedTransform) Run() ([]string, error) {
	rows, err := c.first.Run()
	if err != nil {
		return nil, err
	}
	for _, st := range c.stages {
		next := make([]string, len(rows))
		for i, row := range rows {
			doc, err := xmltree.ParseFragment(row)
			if err != nil {
				return nil, fmt.Errorf("xsltdb: chained stage input: %w", err)
			}
			if st.module != nil {
				seq, err := xquery.EvalModule(st.module, xquery.NewEnv(xquery.Item(doc)))
				if err != nil {
					return nil, err
				}
				next[i] = xquery.SerializeSeq(seq)
				continue
			}
			out, err := xslt.New(st.sheet).TransformToString(doc)
			if err != nil {
				return nil, err
			}
			next[i] = out
		}
		rows = next
	}
	return rows, nil
}
