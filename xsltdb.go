// Package xsltdb is the public API of the repository: efficient XSLT
// processing in a relational database system, after Liu & Novoselsky
// (VLDB 2006).
//
// The package ties the pipeline together:
//
//	XSLT stylesheet
//	   │  partial evaluation over the input's structural information (§4)
//	   ▼
//	XQuery (inline when the template execution graph is acyclic — §3.3-3.7)
//	   │  XQuery→SQL/XML rewrite over the view definition (§2)
//	   ▼
//	SQL/XML plan over relational tables with B-tree index access paths
//
// A Database owns relational tables and XMLType views. CompileTransform
// compiles a stylesheet against a view, choosing the best strategy and
// falling back gracefully: SQL/XML plan → functional XQuery over
// materialized rows → functional XSLT interpretation ("no rewrite").
// Compiled plans are cached per (view, version, stylesheet, options) and
// shared across transforms; execution is available both materializing
// (Run) and streaming (OpenCursor), each reporting per-run ExecStats.
package xsltdb

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/wal"
	"repro/internal/xmltree"
	"repro/internal/xq2sql"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

// Re-exported relational building blocks.
type (
	// TableColumn declares a relational column.
	TableColumn = relstore.Column
	// Pred is a relational predicate (column op constant).
	Pred = relstore.Pred
	// Stats counts physical operator work.
	Stats = relstore.Stats
)

// Column types.
const (
	IntCol    = relstore.IntCol
	FloatCol  = relstore.FloatCol
	StringCol = relstore.StringCol
)

// Re-exported SQL/XML view constructors (paper Table 3 building blocks).
type (
	// XMLExpr is any SQL/XML generation expression.
	XMLExpr = sqlxml.XMLExpr
	// ViewDef defines an XMLType view over a driving table.
	ViewDef = sqlxml.ViewDef
	// XMLElement is the XMLElement() generation function.
	XMLElement = sqlxml.Element
	// XMLAttr is one XMLAttributes() entry.
	XMLAttr = sqlxml.Attr
	// XMLColumn emits a column value as text.
	XMLColumn = sqlxml.Column
	// XMLLiteral emits constant text.
	XMLLiteral = sqlxml.Literal
	// XMLConcat is XMLConcat().
	XMLConcat = sqlxml.Concat
	// XMLAgg aggregates a correlated subquery.
	XMLAgg = sqlxml.Agg
	// SubQuery is the correlated subquery of an XMLAgg/ScalarAgg.
	SubQuery = sqlxml.SubQuery
	// ScalarAgg is COUNT/SUM/AVG/MIN/MAX.
	ScalarAgg = sqlxml.ScalarAgg
)

// Strategy identifies how a compiled transformation executes.
type Strategy uint8

// Execution strategies, strongest first.
const (
	// StrategySQL: the full paper pipeline — the stylesheet became a
	// SQL/XML plan over the base tables (Tables 7/11).
	StrategySQL Strategy = iota
	// StrategyXQuery: the stylesheet became XQuery, evaluated functionally
	// over each materialized view row (the first rewrite stage only).
	StrategyXQuery
	// StrategyNoRewrite: functional XSLT interpretation over materialized
	// rows — the paper's baseline.
	StrategyNoRewrite
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySQL:
		return "sql-rewrite"
	case StrategyXQuery:
		return "xquery-rewrite"
	default:
		return "no-rewrite"
	}
}

// Database owns relational tables and XMLType views. View registration and
// lookup are safe for concurrent use; the relational store carries its own
// locking, and compiled plans are cached concurrency-safely (see
// PlanCacheStats).
type Database struct {
	mu    sync.RWMutex
	rel   *relstore.DB
	exec  *sqlxml.Executor
	views map[string]*ViewDef
	// viewVersions tracks view redefinitions so compiled transforms can
	// recompile automatically (§7.3: "this recompilation process is
	// automated because the XSLT query has dependency on the XML schema
	// whose change is tracked by the database system").
	viewVersions map[string]int

	plans planCache

	// history is the run-history archive, nil until EnableRunHistory; the
	// atomic pointer keeps the disabled fast path at one load per run.
	history atomic.Pointer[obs.Archive]
	// cards is the always-on cardinality-accuracy tracker (est vs actual
	// rows per access-path shape, misestimate log above q-error 2).
	cards *obs.CardTracker

	// Durability (nil/zero for a purely in-memory database — see Open):
	// wal is the write-ahead log every mutation is recorded to before it is
	// applied, and writeMu serializes durable mutations so WAL order equals
	// apply order equals row-id order — the invariant replay depends on.
	wal      *wal.Log
	writeMu  sync.Mutex
	recovery wal.RecoverStats

	// closed flips once on Close; entry points check it, in-flight cursors
	// registered in cursors are failed with ErrDatabaseClosed.
	closed  atomic.Bool
	curMu   sync.Mutex
	cursors map[*Cursor]struct{}

	// tenants holds the per-tenant limits the serving layer resolves
	// admission against (guarded by mu, registered via WithTenant or
	// RegisterTenant).
	tenants map[string]TenantLimits
}

// newDatabase builds the in-memory core every Open starts from.
func newDatabase() *Database {
	rel := relstore.NewDB()
	return &Database{
		rel: rel, exec: sqlxml.NewExecutor(rel),
		views: map[string]*ViewDef{}, viewVersions: map[string]int{},
		cards:   obs.NewCardTracker(2.0, mMisestimates),
		cursors: map[*Cursor]struct{}{},
		tenants: map[string]TenantLimits{},
	}
}

// NewDatabase returns an empty in-memory database. It is a thin alias for
// Open() with no options, kept because an in-memory open cannot fail and
// the error-free form reads better in tests and examples.
func NewDatabase() *Database {
	d, err := Open()
	if err != nil { // unreachable: no WithDir means no I/O
		panic("xsltdb: in-memory Open failed: " + err.Error())
	}
	return d
}

// checkOpen refuses new work after Close.
func (d *Database) checkOpen() error {
	if d.closed.Load() {
		return ErrDatabaseClosed
	}
	return nil
}

// Closed reports whether Close has begun; entry points called after that
// return ErrDatabaseClosed. Serving layers use this for health checks.
func (d *Database) Closed() bool { return d.closed.Load() }

// registerCursor tracks an open cursor so Close can fail it. It reports
// false when the database closed around the registration — the caller must
// refuse the cursor instead of leaving an untracked stream running.
func (d *Database) registerCursor(c *Cursor) bool {
	if d.closed.Load() {
		return false
	}
	d.curMu.Lock()
	d.cursors[c] = struct{}{}
	d.curMu.Unlock()
	// Re-check after publishing: if Close raced us it may have missed the
	// cursor in its sweep, so take it back out and refuse.
	if d.closed.Load() {
		d.unregisterCursor(c)
		return false
	}
	return true
}

func (d *Database) unregisterCursor(c *Cursor) {
	d.curMu.Lock()
	delete(d.cursors, c)
	d.curMu.Unlock()
}

// Close shuts the database down: new runs, cursors and mutations are
// refused with ErrDatabaseClosed, every in-flight cursor terminates with the
// same sentinel (their already-pinned snapshots stay readable until each
// cursor releases — no map is ever nilled out), and the write-ahead log, if
// any, is synced and closed. Close is idempotent and safe to call
// concurrently; only the first call does the work.
func (d *Database) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	d.curMu.Lock()
	open := make([]*Cursor, 0, len(d.cursors))
	for c := range d.cursors {
		open = append(open, c)
	}
	d.curMu.Unlock()
	for _, c := range open {
		c.failDatabaseClosed()
	}
	// Serialize against in-flight durable writes so the WAL closes after
	// the last append it accepted.
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if d.wal != nil {
		return d.wal.Close()
	}
	return nil
}

// Rel exposes the underlying relational store.
func (d *Database) Rel() *relstore.DB { return d.rel }

// Stats returns a point-in-time snapshot of the physical operator counters
// accumulated across every execution on this database. The snapshot is read
// atomically, so it is safe to call while runs are in flight; per-run
// counters are available from RunWithStats and Cursor.Stats.
func (d *Database) Stats() *Stats {
	s := d.exec.Stats.Snapshot()
	return &s
}

// CreateTable creates a relational table. On a durable database the DDL is
// validated, logged to the WAL, and only then applied — so replay sees
// exactly the statements that took effect.
func (d *Database) CreateTable(name string, cols ...TableColumn) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	if d.wal == nil {
		_, err := d.rel.CreateTable(name, cols...)
		return err
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	// Validate before logging: a statement that cannot apply must never
	// reach the log, or replay would diverge from the original execution.
	if _, err := relstore.NewTable(name, cols...); err != nil {
		return err
	}
	if d.rel.Table(name) != nil {
		return fmt.Errorf("relstore: table %q already exists", name)
	}
	if err := d.logCreateTable(name, cols); err != nil {
		return err
	}
	_, err := d.rel.CreateTable(name, cols...)
	return err
}

// Insert appends a row to a table. On a durable database the row is
// coerced to its column types, logged to the WAL (synced per the open-time
// fsync policy), and only then applied to memory — write-ahead ordering, so
// a crash can lose at most the unsynced tail, never leave a logged row and
// an applied row disagreeing about order.
func (d *Database) Insert(table string, values ...relstore.Value) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	t := d.rel.Table(table)
	if t == nil {
		return fmt.Errorf("xsltdb: no table %q: %w", table, ErrNoTable)
	}
	if d.wal == nil {
		_, err := t.Insert(values...)
		return err
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	row, err := t.CoerceRow(values)
	if err != nil {
		return err
	}
	if err := d.logInsert(table, row); err != nil {
		return err
	}
	_, err = t.Insert(row...)
	return err
}

// CreateIndex builds a B-tree index on table.col.
func (d *Database) CreateIndex(table, col string) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	t := d.rel.Table(table)
	if t == nil {
		return fmt.Errorf("xsltdb: no table %q: %w", table, ErrNoTable)
	}
	if d.wal == nil {
		return t.CreateIndex(col)
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if t.ColIndex(col) < 0 {
		return fmt.Errorf("relstore: no column %q in table %q", col, table)
	}
	if err := d.logCreateIndex(table, col); err != nil {
		return err
	}
	return t.CreateIndex(col)
}

// CreateXMLView registers an XMLType view.
func (d *Database) CreateXMLView(v *ViewDef) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	if d.wal == nil {
		return d.applyCreateXMLView(v)
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if err := d.validateCreateXMLView(v); err != nil {
		return err
	}
	if err := d.logView(recCreateView, v); err != nil {
		return err
	}
	return d.applyCreateXMLView(v)
}

func (d *Database) validateCreateXMLView(v *ViewDef) error {
	if v.Name == "" {
		return fmt.Errorf("xsltdb: view needs a name: %w", ErrNoView)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, dup := d.views[v.Name]; dup {
		return fmt.Errorf("xsltdb: view %q already exists: %w", v.Name, ErrDuplicateView)
	}
	if d.rel.Table(v.Table) == nil {
		return fmt.Errorf("xsltdb: view %q references unknown table %q: %w", v.Name, v.Table, ErrNoTable)
	}
	return nil
}

func (d *Database) applyCreateXMLView(v *ViewDef) error {
	if v.Name == "" {
		return fmt.Errorf("xsltdb: view needs a name: %w", ErrNoView)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.views[v.Name]; dup {
		return fmt.Errorf("xsltdb: view %q already exists: %w", v.Name, ErrDuplicateView)
	}
	if d.rel.Table(v.Table) == nil {
		return fmt.Errorf("xsltdb: view %q references unknown table %q: %w", v.Name, v.Table, ErrNoTable)
	}
	d.views[v.Name] = v
	d.viewVersions[v.Name] = 1
	return nil
}

// ReplaceXMLView redefines an existing view (schema evolution, §7.3).
// Transforms compiled against the old definition recompile automatically on
// their next Run or OpenCursor; cached plans for the old definition are
// evicted. The replacement is non-blocking for readers: in-flight runs and
// cursors pinned the old (view, version) snapshot at open time and keep
// producing pre-replace output; only runs that START after the replacement
// see the new definition.
func (d *Database) ReplaceXMLView(v *ViewDef) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	if d.wal == nil {
		return d.applyReplaceXMLView(v)
	}
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if err := d.validateReplaceXMLView(v); err != nil {
		return err
	}
	if err := d.logView(recReplaceView, v); err != nil {
		return err
	}
	return d.applyReplaceXMLView(v)
}

func (d *Database) validateReplaceXMLView(v *ViewDef) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, ok := d.views[v.Name]; !ok {
		return fmt.Errorf("xsltdb: no view %q to replace: %w", v.Name, ErrNoView)
	}
	if d.rel.Table(v.Table) == nil {
		return fmt.Errorf("xsltdb: view %q references unknown table %q: %w", v.Name, v.Table, ErrNoTable)
	}
	return nil
}

func (d *Database) applyReplaceXMLView(v *ViewDef) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.views[v.Name]; !ok {
		return fmt.Errorf("xsltdb: no view %q to replace: %w", v.Name, ErrNoView)
	}
	if d.rel.Table(v.Table) == nil {
		return fmt.Errorf("xsltdb: view %q references unknown table %q: %w", v.Name, v.Table, ErrNoTable)
	}
	d.views[v.Name] = v
	d.viewVersions[v.Name]++
	d.plans.evictView(v.Name)
	return nil
}

// View returns a registered view, or nil.
func (d *Database) View(name string) *ViewDef {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.views[name]
}

// viewAndVersion reads a view with its current version under the lock.
func (d *Database) viewAndVersion(name string) (*ViewDef, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.views[name], d.viewVersions[name]
}

// MaterializeView builds the XMLType instance of every view row (the
// functional input path).
func (d *Database) MaterializeView(name string) ([]*xmltree.Node, error) {
	v := d.View(name)
	if v == nil {
		return nil, fmt.Errorf("xsltdb: no view %q: %w", name, ErrNoView)
	}
	return d.exec.MaterializeView(v)
}

// DeriveSchema computes the structural schema of a view's output (§3.2).
func (d *Database) DeriveSchema(name string) (*xschema.Schema, error) {
	v := d.View(name)
	if v == nil {
		return nil, fmt.Errorf("xsltdb: no view %q: %w", name, ErrNoView)
	}
	return d.exec.DeriveSchema(v)
}

// planState is the immutable result of one compilation. The plan cache
// shares planStates across CompiledTransforms and concurrent runs, so
// nothing in here may be mutated after compilePlanUncached returns.
type planState struct {
	view        *ViewDef
	viewVersion int
	sheet       *xslt.Stylesheet
	strategy    Strategy
	rewrite     *core.Result  // nil for no-rewrite
	plan        *sqlxml.Query // nil unless StrategySQL
	fallback    string        // why a stronger strategy was not used

	// brk is the plan's circuit breaker. It is the one mutable member —
	// internally synchronized — and, because the plan cache shares
	// planStates, its trip state is genuinely per-plan.
	brk *breaker
}

// chain lists the runtime degradation chain for this plan, strongest
// available strategy first. A forced strategy pins the chain to one entry:
// forcing is a correctness contract, so there is nothing to degrade to.
func (st *planState) chain(opts compileOptions) []Strategy {
	if opts.Force != nil {
		return []Strategy{st.strategy}
	}
	switch st.strategy {
	case StrategySQL:
		return []Strategy{StrategySQL, StrategyXQuery, StrategyNoRewrite}
	case StrategyXQuery:
		return []Strategy{StrategyXQuery, StrategyNoRewrite}
	default:
		return []Strategy{StrategyNoRewrite}
	}
}

// CompiledTransform is a stylesheet compiled against a view.
type CompiledTransform struct {
	db       *Database
	viewName string
	source   string
	opts     compileOptions

	// mu guards state, fallback and recompiles across concurrent
	// Run/OpenCursor calls racing with automatic recompilation.
	mu    sync.RWMutex
	state *planState

	// fallback explains why a stronger strategy was not used; rewritten on
	// automatic recompilation. Read it through FallbackReason().
	fallback string
	// recompiles counts automatic recompilations triggered by view
	// redefinition. Read it through Recompiles().
	recompiles int
}

// FallbackReason explains why a stronger strategy was not used ("" when the
// compiled strategy is the strongest). It replaces the former exported field
// of the same name, which was mutated by automatic recompilation and could
// not be read safely while runs were in flight; the method reads under the
// transform's lock.
func (ct *CompiledTransform) FallbackReason() string {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	return ct.fallback
}

// Recompiles counts the automatic recompilations this transform performed
// after view redefinitions (§7.3). Like FallbackReason, it replaces a
// former exported mutable field with a lock-protected accessor.
func (ct *CompiledTransform) Recompiles() int {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	return ct.recompiles
}

// CompileTransform compiles stylesheet text against the named view,
// choosing the strongest applicable strategy. Options may be the functional
// kind (WithForcedStrategy, WithParallelism, WithOuterPath) or a single
// legacy compileOptions struct. Identical compilations are served from the
// database's plan cache.
func (d *Database) CompileTransform(viewName, stylesheet string, opts ...Option) (*CompiledTransform, error) {
	co := buildOptions(opts)
	st, err := d.compilePlan(viewName, stylesheet, co, nil)
	if err != nil {
		return nil, err
	}
	return &CompiledTransform{
		db: d, viewName: viewName, source: stylesheet, opts: co,
		state: st, fallback: st.fallback,
	}, nil
}

// compilePlan resolves the view, consults the plan cache (with singleflight
// dedup of concurrent identical compilations), and compiles on a miss. sp,
// when non-nil, is the compile span of a traced run: the cache outcome is
// recorded on it, and on a miss the pipeline stages record phase spans
// beneath it.
func (d *Database) compilePlan(viewName, stylesheet string, co compileOptions, sp *obs.Span) (*planState, error) {
	view, version := d.viewAndVersion(viewName)
	if view == nil {
		return nil, fmt.Errorf("xsltdb: no view %q: %w", viewName, ErrNoView)
	}
	key := newPlanKey(viewName, version, stylesheet, co)
	st, hit, err := d.plans.get(key, func() (*planState, error) {
		return d.compilePlanUncached(view, version, stylesheet, co, sp)
	})
	if sp != nil {
		if hit {
			sp.SetAttr("cache", "hit")
		} else {
			sp.SetAttr("cache", "miss")
		}
	}
	return st, err
}

// compilePlanUncached runs the actual compilation pipeline: parse, schema
// derivation, XSLT→XQuery rewrite, optional outer-path composition,
// XQuery→SQL/XML lowering — degrading per the fallback chain unless a
// strategy is forced.
func (d *Database) compilePlanUncached(view *ViewDef, version int, stylesheet string, opts compileOptions, sp *obs.Span) (st *planState, err error) {
	// Compilation runs caller-provided stylesheet text through several
	// recursive-descent stages; contain any engine panic here so a malformed
	// input can never take the process down.
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, fmt.Errorf("xsltdb: compile: %w", &InternalError{Panic: r, Stack: debug.Stack()})
		}
	}()
	parseSp := sp.Start("parse")
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		parseSp.Fail(err)
		parseSp.End()
		return nil, fmt.Errorf("%w: %w", ErrCompile, err)
	}
	parseSp.End()
	st = &planState{view: view, viewVersion: version, sheet: sheet, strategy: StrategyNoRewrite, brk: &breaker{}}

	if opts.Force != nil && *opts.Force == StrategyNoRewrite {
		if len(opts.OuterPath) > 0 {
			return nil, fmt.Errorf("xsltdb: OuterPath requires a rewrite strategy: %w", ErrRewriteFellBack)
		}
		return st, nil
	}

	schemaSp := sp.Start("derive-schema")
	schema, err := d.exec.DeriveSchema(view)
	if err != nil {
		schemaSp.Fail(err)
		schemaSp.End()
		if opts.Force != nil {
			return nil, fmt.Errorf("xsltdb: schema derivation failed: %w: %w", err, ErrRewriteFellBack)
		}
		st.fallback = "schema derivation failed: " + err.Error()
		return st, nil
	}
	schemaSp.End()
	// core.Rewrite is the paper's §4 stage: partial evaluation of the
	// stylesheet over the structural schema, then XQuery generation.
	xqSp := sp.Start("xquery-gen")
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		xqSp.Fail(err)
		xqSp.End()
		if opts.Force != nil {
			return nil, fmt.Errorf("xsltdb: rewrite failed: %w: %w", err, ErrRewriteFellBack)
		}
		st.fallback = "XSLT→XQuery rewrite failed: " + err.Error()
		return st, nil
	}
	if xqSp != nil {
		xqSp.SetAttr("inlined", res.Inlined)
	}
	xqSp.End()
	st.rewrite = res
	st.strategy = StrategyXQuery

	module := res.Module
	if len(opts.OuterPath) > 0 {
		projected, err := xq2sql.ProjectPath(module, opts.OuterPath)
		if err != nil {
			return nil, fmt.Errorf("xsltdb: outer path: %w", err)
		}
		module = projected
		st.rewrite = &core.Result{Module: module, Mode: res.Mode, Inlined: res.Inlined, PE: res.PE, Notes: res.Notes}
	}

	if opts.Force != nil && *opts.Force == StrategyXQuery {
		return st, nil
	}

	sqlSp := sp.Start("sql-rewrite")
	plan, err := xq2sql.Translate(module, view)
	if err != nil {
		sqlSp.Fail(err)
		sqlSp.End()
		if opts.Force != nil && *opts.Force == StrategySQL {
			return nil, fmt.Errorf("xsltdb: SQL lowering failed: %w: %w", err, ErrRewriteFellBack)
		}
		st.fallback = "XQuery→SQL/XML lowering failed: " + err.Error()
		return st, nil
	}
	if sqlSp != nil {
		info := xq2sql.Describe(plan)
		sqlSp.SetAttr("hoisted_preds", info.HoistedPreds)
		sqlSp.SetAttr("agg_subqueries", info.AggSubqueries)
		if info.ScalarAggs > 0 {
			sqlSp.SetAttr("scalar_aggs", info.ScalarAggs)
		}
		if info.Conds > 0 {
			sqlSp.SetAttr("residual_conds", info.Conds)
		}
	}
	sqlSp.End()
	st.plan = plan
	st.strategy = StrategySQL
	return st, nil
}

// snapshot returns the current compiled state under the read lock.
func (ct *CompiledTransform) snapshot() *planState {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	return ct.state
}

// ensureFresh recompiles the transform if its view was redefined since the
// last compilation (§7.3). It returns the state to execute plus how many
// recompilations this call performed (0 or 1). sp, when non-nil, is the
// traced run's compile span — it receives the cache outcome and, on an
// actual recompile, the pipeline phase spans.
func (ct *CompiledTransform) ensureFresh(sp *obs.Span) (*planState, int, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	_, cur := ct.db.viewAndVersion(ct.viewName)
	if cur == ct.state.viewVersion {
		if sp != nil {
			sp.SetAttr("cache", "fresh")
		}
		return ct.state, 0, nil
	}
	st, err := ct.db.compilePlan(ct.viewName, ct.source, ct.opts, sp)
	if err != nil {
		return nil, 0, fmt.Errorf("xsltdb: automatic recompilation after view change: %w", err)
	}
	ct.state = st
	ct.recompiles++
	ct.fallback = st.fallback
	return st, 1, nil
}

// Strategy reports the chosen execution strategy.
func (ct *CompiledTransform) Strategy() Strategy { return ct.snapshot().strategy }

// Inlined reports whether the XQuery stage fully inlined (§5 statistic).
func (ct *CompiledTransform) Inlined() bool {
	st := ct.snapshot()
	return st.rewrite != nil && st.rewrite.Inlined
}

// Notes lists the optimizations the rewriter applied.
func (ct *CompiledTransform) Notes() []string {
	st := ct.snapshot()
	if st.rewrite == nil {
		return nil
	}
	return st.rewrite.Notes
}

// XQuery returns the generated XQuery text ("" for no-rewrite).
func (ct *CompiledTransform) XQuery() string {
	st := ct.snapshot()
	if st.rewrite == nil {
		return ""
	}
	return st.rewrite.Module.String()
}

// SQL returns the generated SQL/XML text ("" unless StrategySQL).
func (ct *CompiledTransform) SQL() string {
	st := ct.snapshot()
	if st.plan == nil {
		return ""
	}
	return st.plan.SQL()
}

// Run executes the transformation — one serialized result per qualifying
// driving row — and returns the rows together with this run's private
// ExecStats. It is the single execution entry point: the context governs
// cancellation (plus the transform's WithTimeout, if any), and RunOptions
// parameterize the compiled plan without recompiling it — WithParam binds
// variables, WithWhere adds driving predicates (pushed down to index
// probes when possible), WithoutPushdown forces the full-scan baseline.
//
// A transform whose view was redefined since compilation recompiles
// automatically first (§7.3). On a run-stage error the returned Result is
// still non-nil: its Stats describe the work done up to the failure,
// including degradations, breaker activity, and recovered panics.
func (ct *CompiledTransform) Run(ctx context.Context, opts ...RunOption) (*Result, error) {
	if err := ct.db.checkOpen(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ro := buildRunOptions(opts)
	// A run under a slow threshold traces itself when the caller did not,
	// so a slow-run report always carries the full operator tree. The same
	// applies when the trace-sampling policy selects this run for the
	// run-history archive.
	hist := ct.db.history.Load()
	sampled := ct.opts.Sampling.wantTrace(hist)
	tr := ro.trace
	ownTrace := false
	if tr == nil && (sampled || (ct.opts.SlowThreshold > 0 && ct.opts.SlowSink != nil)) {
		tr = obs.New()
		ownTrace = true
	}
	if ownTrace {
		defer tr.Release()
	}

	start := time.Now()
	root := tr.Start("run")
	defer root.End()
	if root != nil {
		root.SetAttr("view", ct.viewName)
	}
	compileSp := root.Start("compile")
	st, recompiled, err := ct.ensureFresh(compileSp)
	compileSp.End()
	if err != nil {
		root.Fail(err)
		return nil, err
	}
	spec, access, err := ct.db.runSpec(st, ro, false)
	if err != nil {
		root.Fail(err)
		return nil, err
	}
	pin := snapPins.pin()
	defer snapPins.unpin(pin)
	if ct.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ct.opts.Timeout)
		defer cancel()
	}
	res := &Result{Stats: ExecStats{Recompiles: int64(recompiled), CompileWall: time.Since(start)}}
	es := &res.Stats
	var sink relstore.Stats
	rows, err := ct.db.runGoverned(ctx, st, ct.opts, spec, &sink, es, root)
	es.ExecWall = time.Since(start) - es.CompileWall
	es.mergeSink(sink.Snapshot())
	es.RowsProduced = int64(len(rows))
	es.AccessPath = *access
	es.EstRows = specEstRows(spec)
	ct.db.exec.AddStats(&sink)
	if root != nil {
		root.AddRowsOut(es.RowsProduced)
		if es.AccessPath != "" {
			root.SetAttr("access_path", es.AccessPath)
		}
		root.Fail(err)
		root.End()
	}
	recordRunMetrics(es, err)
	emitSlowRun(ct.opts.SlowThreshold, ct.opts.SlowSink, ct.viewName, tr, es, err)
	keep := sampled && ct.opts.Sampling.keep(es.CompileWall+es.ExecWall, err)
	ct.db.archiveRun(hist, "run", ct.viewName, start, spec, es, err, tr, keep, err == nil)
	res.Rows = rows
	if err != nil {
		res.Rows = nil
		return res, err
	}
	return res, nil
}

// runGoverned walks the plan's degradation chain: each strategy is skipped
// if its circuit breaker is open (never the last — something must always
// run), attempted under a fresh governor (so resource budgets never
// double-charge across attempts), and on a non-governance failure the run
// falls through to the next strategy. Governance verdicts — cancellation,
// resource limits, recursion limits — are final: retrying cannot help, so
// they return immediately and do not count against the breaker.
func (d *Database) runGoverned(ctx context.Context, st *planState, opts compileOptions, spec *sqlxml.RunSpec, sink *relstore.Stats, es *ExecStats, root *obs.Span) ([]string, error) {
	chain := st.chain(opts)
	var lastErr error
	for i, s := range chain {
		last := i == len(chain)-1
		if !last && !st.brk.allow(s) {
			es.BreakerSkips++
			if root != nil {
				sk := root.Start(s.String())
				sk.SetAttr("breaker", "open")
				sk.SetAttr("skipped", "true")
				sk.End()
			}
			continue
		}
		g := governor.New(ctx).Limits(opts.MaxRows, opts.MaxOutputBytes, opts.MaxRecursionDepth)
		attempt := root.Start(s.String())
		if attempt != nil {
			if bs := st.brk.state(s); bs != "closed" {
				attempt.SetAttr("breaker", bs)
			}
		}
		spec.Span = attempt // strategies run sequentially; the last wins
		var rows []string
		var err error
		if d.history.Load() != nil {
			// With the console enabled, label this goroutine's profile
			// samples so /debug/pprof/profile breaks CPU down by strategy
			// and view. Only here — labeling per cursor row would dominate
			// the per-row cost.
			pprof.Do(ctx, pprof.Labels("strategy", s.String(), "view", st.view.Name), func(context.Context) {
				rows, err = d.runStrategy(s, st, opts, spec, sink, g, attempt)
			})
		} else {
			rows, err = d.runStrategy(s, st, opts, spec, sink, g, attempt)
		}
		if attempt != nil {
			attempt.SetAttr("gov_ticks", g.Ticks())
		}
		es.GovTicks += int64(g.Ticks())
		if err == nil {
			st.brk.success(s)
			es.StrategyUsed = s
			if attempt != nil {
				attempt.AddRowsOut(int64(len(rows)))
			}
			attempt.End()
			return rows, nil
		}
		attempt.Fail(err)
		attempt.End()
		if errors.Is(err, ErrInternal) {
			es.PanicsRecovered++
		}
		if governor.IsGovernance(err) {
			return nil, err
		}
		if st.brk.failure(s) {
			es.BreakerTrips++
		}
		lastErr = err
		if !last {
			es.Degradations++
			if root != nil {
				root.SetAttr("degraded_from", s.String())
				root.SetAttr("degradation_reason", err.Error())
			}
		}
	}
	return nil, lastErr
}

// runStrategy executes one strategy of a compiled state under governor g,
// with counters routed to sink and the run's spec applied: the SQL plan
// binds parameters and extra predicates into its access path; the fallback
// strategies apply the same driving predicates at view materialization (so
// every strategy selects the same rows) and bind the parameters into the
// XQuery environment. Engine panics are contained here — at the strategy
// boundary — so a panicking strategy degrades like any other failure
// instead of crashing the caller.
func (d *Database) runStrategy(s Strategy, st *planState, opts compileOptions, spec *sqlxml.RunSpec, sink *relstore.Stats, g *governor.G, sp *obs.Span) (out []string, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("xsltdb: %s: %w", s, &InternalError{Panic: r, Stack: debug.Stack()})
		}
	}()

	// charge bills one produced row against the governor's budgets. It also
	// ticks the cancellation check so that post-query loops (serialization,
	// per-row evaluation) stay responsive even with no budgets configured.
	charge := func(row string) error {
		if err := g.Tick(); err != nil {
			return err
		}
		if err := g.AddRow(); err != nil {
			return err
		}
		return g.AddOutput(len(row))
	}

	switch s {
	case StrategySQL:
		// A per-run WithWorkers overrides the compile-time parallelism for
		// both the scan's morsel pool (via spec.Batch) and the construction
		// fan-out here.
		workers := opts.Parallelism
		if spec != nil && spec.Batch.Workers > 0 {
			workers = spec.Batch.Workers
		}
		docs, err := d.exec.ExecQueryParallelSpec(st.plan, workers, sink, g, spec)
		if err != nil {
			return nil, err
		}
		serSp := sp.Start("serialize")
		defer serSp.End()
		serSp.AddRowsIn(int64(len(docs)))
		out := make([]string, len(docs))
		for i, doc := range docs {
			out[i] = serialize(doc)
			if err := charge(out[i]); err != nil {
				serSp.Fail(err)
				return nil, err
			}
		}
		serSp.AddRowsOut(int64(len(out)))
		return out, nil

	case StrategyXQuery:
		rows, err := d.exec.MaterializeViewSpec(st.view, st.drivingWhere(), sink, g, spec)
		if err != nil {
			return nil, err
		}
		evalSp := sp.Start("xquery-eval")
		defer evalSp.End()
		var meter *xquery.EvalStats
		if evalSp != nil {
			meter = new(xquery.EvalStats)
		}
		out := make([]string, len(rows))
		for i, row := range rows {
			evalSp.AddRowsIn(1)
			env := bindEnv(xquery.NewEnv(xquery.Item(row)), spec.Params)
			seq, err := xquery.EvalModule(st.rewrite.Module, env.Govern(g).Meter(meter))
			if err != nil {
				evalSp.Fail(err)
				return nil, fmt.Errorf("xsltdb: row %d: %w", i, err)
			}
			out[i] = xquery.SerializeSeq(seq)
			evalSp.AddRowsOut(1)
			if err := charge(out[i]); err != nil {
				evalSp.Fail(err)
				return nil, err
			}
		}
		if meter != nil {
			evalSp.SetAttr("eval_steps", meter.Steps.Load())
			evalSp.SetAttr("func_calls", meter.FuncCalls.Load())
		}
		return out, nil

	default: // StrategyNoRewrite
		rows, err := d.exec.MaterializeViewSpec(st.view, st.drivingWhere(), sink, g, spec)
		if err != nil {
			return nil, err
		}
		eng := xslt.New(st.sheet).Govern(g)
		interpSp := sp.Start("xslt-interpret")
		defer interpSp.End()
		out := make([]string, len(rows))
		for i, row := range rows {
			interpSp.AddRowsIn(1)
			s, err := eng.TransformToString(row)
			if err != nil {
				interpSp.Fail(err)
				return nil, fmt.Errorf("xsltdb: row %d: %w", i, err)
			}
			out[i] = s
			interpSp.AddRowsOut(1)
			if err := charge(s); err != nil {
				interpSp.Fail(err)
				return nil, err
			}
		}
		if interpSp != nil {
			interpSp.SetAttr("templates_applied", eng.TemplatesApplied())
		}
		return out, nil
	}
}

func serialize(n *xmltree.Node) string {
	var sb strings.Builder
	n.Serialize(&sb, xmltree.SerializeOptions{OmitDecl: true})
	return sb.String()
}

// Transform applies a stylesheet to standalone XML text functionally (the
// XMLTransform() convenience without a database).
func Transform(xmlText, stylesheet string) (string, error) {
	doc, err := xmltree.Parse(xmlText)
	if err != nil {
		return "", err
	}
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		return "", fmt.Errorf("%w: %w", ErrCompile, err)
	}
	return xslt.New(sheet).TransformToString(doc)
}

// RewriteToXQuery compiles a stylesheet against a compact schema (see
// internal/xschema) and returns the generated XQuery text plus whether it
// fully inlined.
func RewriteToXQuery(stylesheet, compactSchema string) (queryText string, inlined bool, err error) {
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		return "", false, fmt.Errorf("%w: %w", ErrCompile, err)
	}
	schema, err := xschema.ParseCompact(compactSchema)
	if err != nil {
		return "", false, fmt.Errorf("%w: %w", ErrCompile, err)
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		return "", false, err
	}
	return res.Module.String(), res.Inlined, nil
}

// ChainedTransform is a pipeline: a view-backed first stage followed by
// stylesheets applied to each preceding stage's output. Later stages are
// rewritten against the statically-derived schema of the previous stage's
// output when possible (§3.2), else interpreted functionally.
type ChainedTransform struct {
	first  *CompiledTransform
	stages []chainStage
}

type chainStage struct {
	sheet *xslt.Stylesheet
	// module is the rewritten query for this stage; nil = interpret.
	module *xquery.Module
	// Rewritten reports whether the stage uses the XSLT→XQuery rewrite.
	Rewritten bool
}

// Then builds a pipeline that applies stylesheet to every output document
// of ct.
func (ct *CompiledTransform) Then(stylesheet string) (*ChainedTransform, error) {
	chain := &ChainedTransform{first: ct}
	return chain.Then(stylesheet)
}

// Then appends one more stage.
func (c *ChainedTransform) Then(stylesheet string) (*ChainedTransform, error) {
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCompile, err)
	}
	st := chainStage{sheet: sheet}
	// Static typing source: the previous rewritten module (first stage or
	// last chained stage).
	var prev *xquery.Module
	if len(c.stages) > 0 {
		prev = c.stages[len(c.stages)-1].module
	} else if first := c.first.snapshot(); first.rewrite != nil {
		prev = first.rewrite.Module
	}
	if prev != nil {
		if schema, err := core.DeriveOutputSchema(prev); err == nil {
			if res, err := core.Rewrite(sheet, schema, core.ModeAuto); err == nil {
				st.module = res.Module
				st.Rewritten = true
			}
		}
	}
	c.stages = append(c.stages, st)
	return c, nil
}

// Stages reports how many chained stages were rewritten (vs interpreted).
func (c *ChainedTransform) Stages() (rewritten, interpreted int) {
	for _, st := range c.stages {
		if st.Rewritten {
			rewritten++
		} else {
			interpreted++
		}
	}
	return rewritten, interpreted
}

// applyStages runs one row of the first stage's output through every
// chained stage under governor g (nil = ungoverned); shared by the
// materializing Run and the streaming cursor. sps, when non-nil, carries
// one operator span per stage (see stageSpans): each accumulates the
// per-row wall time and row counts of its stage.
func applyStages(stages []chainStage, sps []*obs.Span, row string, g *governor.G) (string, error) {
	for i, st := range stages {
		var sp *obs.Span
		var stageStart time.Time
		if sps != nil {
			sp = sps[i]
			stageStart = time.Now()
			sp.AddRowsIn(1)
		}
		doc, err := xmltree.ParseFragment(row)
		if err != nil {
			sp.Fail(err)
			return "", fmt.Errorf("xsltdb: chained stage input: %w", err)
		}
		if st.module != nil {
			seq, err := xquery.EvalModule(st.module, xquery.NewEnv(xquery.Item(doc)).Govern(g))
			if err != nil {
				sp.Fail(err)
				return "", err
			}
			row = xquery.SerializeSeq(seq)
		} else {
			out, err := xslt.New(st.sheet).Govern(g).TransformToString(doc)
			if err != nil {
				sp.Fail(err)
				return "", err
			}
			row = out
		}
		if sp != nil {
			sp.ObserveSince(stageStart)
			sp.AddRowsOut(1)
		}
	}
	return row, nil
}

// stageSpans opens one operator span per chained stage under a "chain" root
// span of tr (nil-safe: a nil trace yields nil everywhere, and applyStages
// skips all span work). The caller Ends the returned root when the pipeline
// finishes.
func stageSpans(tr *obs.Trace, stages []chainStage) ([]*obs.Span, *obs.Span) {
	if tr == nil {
		return nil, nil
	}
	root := tr.Start("chain")
	sps := make([]*obs.Span, len(stages))
	for i, st := range stages {
		sps[i] = root.Start(fmt.Sprintf("stage-%d", i+1))
		if st.Rewritten {
			sps[i].SetAttr("mode", "xquery-rewrite")
		} else {
			sps[i].SetAttr("mode", "interpreted")
		}
	}
	return sps, root
}

// Run executes the pipeline for every view row: the first stage runs with
// the given RunOptions, then each row flows through every chained stage.
// The chained stages honor the FIRST stage's full governance options — not
// just its recursion bound: MaxRows and MaxOutputBytes are enforced against
// the pipeline's final rows (a chained stage can expand its input, so
// charging only the first stage would let the pipeline overshoot the
// caller's budget), and WithTimeout covers the chained processing too.
func (c *ChainedTransform) Run(ctx context.Context, opts ...RunOption) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fo := c.first.opts
	if fo.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, fo.Timeout)
		defer cancel()
	}
	res, err := c.first.Run(ctx, opts...)
	if err != nil {
		return res, err
	}
	sps, chainSp := stageSpans(buildRunOptions(opts).trace, c.stages)
	defer chainSp.End()
	g := governor.New(ctx).Limits(fo.MaxRows, fo.MaxOutputBytes, fo.MaxRecursionDepth)
	for i, row := range res.Rows {
		out, err := applyStages(c.stages, sps, row, g)
		if err != nil {
			res.Rows = nil
			return res, err
		}
		if err := g.AddRow(); err != nil {
			res.Rows = nil
			return res, err
		}
		if err := g.AddOutput(len(out)); err != nil {
			res.Rows = nil
			return res, err
		}
		res.Rows[i] = out
	}
	return res, nil
}
