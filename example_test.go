package xsltdb_test

import (
	"context"
	"fmt"
	"io"
	"log"

	xsltdb "repro"
	"repro/internal/sqlxml"
	"repro/internal/xslt"
)

// ExampleTransform applies a stylesheet functionally to standalone XML —
// the XMLTransform() baseline.
func ExampleTransform() {
	out, err := xsltdb.Transform(
		`<order id="7"><item>widget</item></order>`,
		`<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
			<xsl:template match="order"><receipt no="{@id}"><xsl:value-of select="item"/></receipt></xsl:template>
		</xsl:stylesheet>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: <receipt no="7">widget</receipt>
}

// ExampleRewriteToXQuery compiles a stylesheet against a compact schema and
// prints whether the paper's partial-evaluation pipeline fully inlined it.
func ExampleRewriteToXQuery() {
	schema := `
order := item*
item  := #text
`
	_, inlined, err := xsltdb.RewriteToXQuery(
		`<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
			<xsl:template match="order"><list><xsl:apply-templates select="item"/></list></xsl:template>
			<xsl:template match="item"><li><xsl:value-of select="."/></li></xsl:template>
		</xsl:stylesheet>`, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fully inlined:", inlined)
	// Output: fully inlined: true
}

// ExampleDatabase_CompileTransform runs the full pipeline: relational data,
// an XMLType view, and a stylesheet executed as a SQL/XML plan.
func ExampleDatabase_CompileTransform() {
	db := xsltdb.NewDatabase()
	if err := db.CreateTable("cities",
		xsltdb.TableColumn{Name: "name", Type: xsltdb.StringCol},
		xsltdb.TableColumn{Name: "pop", Type: xsltdb.IntCol}); err != nil {
		log.Fatal(err)
	}
	_ = db.Insert("cities", "Seoul", int64(10))
	_ = db.Insert("cities", "Busan", int64(3))
	_ = db.CreateTable("world", xsltdb.TableColumn{Name: "id", Type: xsltdb.IntCol})
	_ = db.Insert("world", int64(1))
	_ = db.CreateXMLView(&xsltdb.ViewDef{
		Name:  "atlas",
		Table: "world",
		Body: &xsltdb.XMLElement{Name: "atlas", Children: []xsltdb.XMLExpr{
			&xsltdb.XMLAgg{Sub: &xsltdb.SubQuery{
				Table: "cities",
				Body: &xsltdb.XMLElement{Name: "city", Children: []xsltdb.XMLExpr{
					&xsltdb.XMLElement{Name: "name", Children: []xsltdb.XMLExpr{&xsltdb.XMLColumn{Name: "name"}}},
					&xsltdb.XMLElement{Name: "pop", Children: []xsltdb.XMLExpr{&xsltdb.XMLColumn{Name: "pop"}}},
				}},
			}},
		}},
	})

	ct, err := db.CompileTransform("atlas", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="atlas"><big><xsl:apply-templates select="city[pop > 5]"/></big></xsl:template>
		<xsl:template match="city"><c><xsl:value-of select="name"/></c></xsl:template>
	</xsl:stylesheet>`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ct.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ct.Strategy())
	fmt.Println(res.Rows[0])
	// Output:
	// sql-rewrite
	// <big><c>Seoul</c></big>
}

// ExampleCompiledTransform_OpenCursor streams the paper's Example 2 result
// one row at a time instead of materializing it.
func ExampleCompiledTransform_OpenCursor() {
	db := xsltdb.NewDatabase()
	if err := sqlxml.SetupDeptEmp(db.Rel()); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		log.Fatal(err)
	}

	ct, err := db.CompileTransform("dept_emp", xslt.PaperStylesheet,
		xsltdb.WithOuterPath("table", "tr"))
	if err != nil {
		log.Fatal(err)
	}
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	for {
		row, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(row)
	}
	fmt.Println("rows:", cur.Stats().RowsProduced)
	// Output:
	// <tr><td>7782</td><td>CLARK</td><td>2450</td></tr>
	// <tr><td>7954</td><td>SMITH</td><td>4900</td></tr>
	// rows: 2
}
