package xsltdb

import (
	"fmt"
	"time"

	"repro/internal/relstore"
)

// ExecStats describes the work of ONE execution — a Run call or a cursor's
// lifetime. Each run owns its counters (concurrent runs never share), and
// the same counters are merged into the database-wide aggregate exposed by
// Database.Stats.
type ExecStats struct {
	// RowsProduced counts serialized result rows handed to the caller.
	RowsProduced int64
	// RowsScanned counts heap rows visited by full scans.
	RowsScanned int64
	// IndexProbes counts B-tree descents.
	IndexProbes int64
	// RangeScans counts B-tree range-scan operators started.
	RangeScans int64
	// FullScans counts full-scan operators started.
	FullScans int64
	// RowsEmitted counts rows emitted by access-path operators.
	RowsEmitted int64
	// RowsFiltered counts rows an access path visited but rejected on a
	// residual predicate — the filter operator's rows-in minus rows-out.
	RowsFiltered int64
	// Batches counts the chunks the batch-at-a-time access paths emitted;
	// RowsEmitted / Batches is the realized average batch size.
	Batches int64
	// MorselsExecuted counts scan morsels processed by the parallel
	// full-scan worker pool (0 when every scan ran serially).
	MorselsExecuted int64
	// Recompiles counts automatic recompilations this run performed (0 or
	// 1: a view redefinition since the last compilation).
	Recompiles int64
	// AccessPath is the EXPLAIN line of the driving access path this run
	// chose — "INDEX PROBE t(col) col = v", "INDEX RANGE SCAN ...", or
	// "TABLE SCAN ..." — "" when the run never planned a driving access
	// (e.g. it failed before execution).
	AccessPath string
	// EstRows is the planner's cardinality estimate for that access path
	// (relstore AccessPlan.EstimateRows) — compare against RowsProduced to
	// judge the estimate; the cardinality-accuracy tracker does exactly
	// that per access-path shape. Meaningless when AccessPath is "".
	EstRows int64
	// CompileWall is the wall time of the compile/recompile stage.
	CompileWall time.Duration
	// ExecWall is the wall time of the execution stage (for cursors: the
	// time spent inside Next, excluding caller think time).
	ExecWall time.Duration

	// StrategyUsed is the strategy that actually produced the result —
	// the compiled strategy unless the run degraded.
	StrategyUsed Strategy
	// Degradations counts how many times this run fell from a failing
	// strategy to a weaker one (SQL plan → per-row XQuery → interpreter).
	Degradations int64
	// BreakerSkips counts strategies this run skipped because their
	// per-plan circuit breaker was open.
	BreakerSkips int64
	// BreakerTrips counts circuit-breaker cells this run's failures
	// tripped open.
	BreakerTrips int64
	// PanicsRecovered counts engine panics contained at the facade
	// boundary during this run (surfaced as ErrInternal, possibly handled
	// by degradation).
	PanicsRecovered int64
	// GovTicks counts resource-governor check ticks charged to this run
	// (0 when the transform ran without a governor).
	GovTicks int64
}

// mergeSink folds physical-operator counters into the stats.
func (s *ExecStats) mergeSink(sink relstore.Stats) {
	s.RowsScanned += sink.RowsScanned
	s.IndexProbes += sink.IndexProbes
	s.RangeScans += sink.RangeScans
	s.FullScans += sink.FullScans
	s.RowsEmitted += sink.RowsEmitted
	s.RowsFiltered += sink.RowsFiltered
	s.Batches += sink.Batches
	s.MorselsExecuted += sink.Morsels
}

// statsFieldTokens maps every ExecStats field to the token that renders it
// in String(). A reflection test keeps this map — and therefore String() —
// complete: adding a field without a token (or a token without rendering)
// fails the build's tests, so the CLI -stats line can never silently lag
// the struct.
var statsFieldTokens = map[string]string{
	"RowsProduced":    "rows=",
	"RowsScanned":     "scanned=",
	"IndexProbes":     "probes=",
	"RangeScans":      "range-scans=",
	"FullScans":       "full-scans=",
	"RowsEmitted":     "emitted=",
	"RowsFiltered":    "filtered=",
	"Batches":         "batches=",
	"MorselsExecuted": "morsels=",
	"Recompiles":      "recompiles=",
	"AccessPath":      "access=",
	"EstRows":         "est=",
	"CompileWall":     "compile=",
	"ExecWall":        "exec=",
	"StrategyUsed":    "strategy=",
	"Degradations":    "degradations=",
	"BreakerSkips":    "breaker-skips=",
	"BreakerTrips":    "breaker-trips=",
	"PanicsRecovered": "panics=",
	"GovTicks":        "gov-ticks=",
}

// String renders the stats in one line (CLI -stats output). Robustness
// counters append only when non-zero, keeping the healthy-path line stable.
func (s ExecStats) String() string {
	line := fmt.Sprintf(
		"rows=%d scanned=%d probes=%d range-scans=%d full-scans=%d emitted=%d filtered=%d recompiles=%d compile=%v exec=%v",
		s.RowsProduced, s.RowsScanned, s.IndexProbes, s.RangeScans, s.FullScans,
		s.RowsEmitted, s.RowsFiltered, s.Recompiles, s.CompileWall.Round(time.Microsecond), s.ExecWall.Round(time.Microsecond))
	if s.Batches > 0 || s.MorselsExecuted > 0 {
		line += fmt.Sprintf(" batches=%d morsels=%d", s.Batches, s.MorselsExecuted)
	}
	if s.AccessPath != "" {
		line += fmt.Sprintf(" access=%q est=%d", s.AccessPath, s.EstRows)
	}
	if s.Degradations > 0 || s.BreakerSkips > 0 || s.BreakerTrips > 0 || s.PanicsRecovered > 0 {
		line += fmt.Sprintf(" strategy=%s degradations=%d breaker-skips=%d breaker-trips=%d panics=%d",
			s.StrategyUsed, s.Degradations, s.BreakerSkips, s.BreakerTrips, s.PanicsRecovered)
	}
	if s.GovTicks > 0 {
		line += fmt.Sprintf(" gov-ticks=%d", s.GovTicks)
	}
	return line
}
