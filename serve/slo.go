package serve

// Per-tenant SLO burn-rate tracking. The SLO is availability-style over a
// sliding window of recent requests: a request is "bad" when it errored or
// exceeded the latency target. With objective o (say 0.99), the error budget
// is 1-o; the burn rate is badFraction / (1-o) — 1.0 means bad requests are
// arriving exactly as fast as the budget allows, 2.0 means the budget will
// be exhausted in half the window. The gauge exposes burn×1000 because the
// registry's gauges are integers.

import (
	"sync"
	"time"
)

type sloTracker struct {
	target    time.Duration // latency above this is "bad" (0 = latency never bad)
	objective float64       // fraction of requests that must be good, e.g. 0.99
	window    int

	mu      sync.Mutex
	tenants map[string]*sloWindow
}

type sloWindow struct {
	bad  []bool // ring of request verdicts
	next int
	n    int // filled entries, up to len(bad)
	sum  int // bad entries currently in the ring
}

func newSLOTracker(target time.Duration, objective float64, window int) *sloTracker {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if window <= 0 {
		window = 256
	}
	return &sloTracker{
		target: target, objective: objective, window: window,
		tenants: map[string]*sloWindow{},
	}
}

// record folds one finished request into the tenant's window and returns the
// updated burn rate ×1000 for the gauge.
func (t *sloTracker) record(tenant string, wall time.Duration, failed bool) int64 {
	bad := failed || (t.target > 0 && wall > t.target)
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.tenants[tenant]
	if w == nil {
		w = &sloWindow{bad: make([]bool, t.window)}
		t.tenants[tenant] = w
	}
	if w.n == len(w.bad) {
		if w.bad[w.next] {
			w.sum--
		}
	} else {
		w.n++
	}
	w.bad[w.next] = bad
	if bad {
		w.sum++
	}
	w.next = (w.next + 1) % len(w.bad)
	badFrac := float64(w.sum) / float64(w.n)
	return int64(badFrac / (1 - t.objective) * 1000)
}
