package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// resultCache is a bounded LRU over serialized transform results. Keys are
// execKeys, which embed the view's MVCC version — so a ReplaceXMLView makes
// every prior entry for that view unreachable (natural invalidation) and
// the LRU bound eventually reclaims them.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	idx map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	rows []string
}

// ResultCacheStats is a point-in-time snapshot of the cache counters.
type ResultCacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{cap: capacity, ll: list.New(), idx: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) ([]string, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rows, true
}

func (c *resultCache) put(key string, rows []string) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).rows = rows
		c.ll.MoveToFront(el)
		return
	}
	c.idx[key] = c.ll.PushFront(&cacheEntry{key: key, rows: rows})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*cacheEntry).key)
		c.evictions++
		mResultCacheEvictions.Inc()
	}
}

func (c *resultCache) stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// sheetHash is the stylesheet identity folded into exec keys.
func sheetHash(stylesheet string) string {
	sum := sha256.Sum256([]byte(stylesheet))
	return hex.EncodeToString(sum[:8])
}
