package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is the sliding window admission control reads its p95 from.
// A fixed ring of the most recent request latencies, it recovers on its own
// after an overload passes — unlike a cumulative histogram, whose quantiles
// never come back down — so shedding stops as soon as recent traffic is
// fast again.
type latencyWindow struct {
	mu     sync.Mutex
	ring   []time.Duration
	next   int
	filled int
}

func newLatencyWindow(n int) *latencyWindow {
	return &latencyWindow{ring: make([]time.Duration, n)}
}

func (w *latencyWindow) record(d time.Duration) {
	w.mu.Lock()
	w.ring[w.next] = d
	w.next = (w.next + 1) % len(w.ring)
	if w.filled < len(w.ring) {
		w.filled++
	}
	w.mu.Unlock()
}

// p95 computes the 95th percentile of the recorded window; 0 while fewer
// than 8 samples exist, so a cold server never sheds.
func (w *latencyWindow) p95() time.Duration {
	w.mu.Lock()
	if w.filled < 8 {
		w.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, w.filled)
	copy(buf, w.ring[:w.filled])
	w.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(len(buf)*95)/100]
}
