package serve

// Per-request telemetry: W3C trace-context propagation and the wide event
// each request emits. beginTelemetry runs first thing in the handler — it
// parses or mints the traceparent, decides whether this request carries an
// engine trace, and prefills the event with the request's identity.
// finishTelemetry runs exactly once per request, whatever the outcome: it
// closes the serve-layer root span, completes the event (outcome, engine
// work, WAL attribution, latency breakdown), publishes it, and folds the
// request into the per-tenant latency and SLO instruments.

import (
	"net/http"
	"time"

	"repro"
	"repro/internal/obs"
)

// reqTel threads one request's telemetry through the handler.
type reqTel struct {
	start time.Time
	// tc is the response-facing trace context: the caller's trace ID (or a
	// freshly minted one) with this server's own span ID.
	tc obs.TraceContext
	// id is the 32-hex trace ID — the X-Request-Id and the archive key.
	id string
	// supplied reports whether the caller sent a valid traceparent.
	supplied bool
	// tr is the request's engine trace (nil when this request is untraced);
	// root is its serve-layer "http" root span.
	tr   *obs.Trace
	root *obs.Span
	// ev accumulates the wide event; handler code fills fields as decisions
	// are made, finishTelemetry completes and publishes it.
	ev obs.Event
	// seq is the sampling sequence number shared by the trace and event
	// sampling decisions.
	seq uint64
	// walAppends0/walFsyncs0 snapshot the process WAL counters at request
	// start; the deltas at finish are the event's WAL attribution.
	walAppends0, walFsyncs0 int64
}

// beginTelemetry establishes the request's trace identity and telemetry
// state. A request is traced through the engine when the caller supplied a
// traceparent (an upstream asked for this request specifically) or when the
// server's TraceSampling policy selects it.
func (s *Server) beginTelemetry(r *http.Request, def *transformDef, tenant string) *reqTel {
	tel := &reqTel{start: time.Now(), seq: s.telemetrySeq.Add(1)}
	if tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		tel.tc = tc.WithNewSpan()
		tel.supplied = true
	} else {
		tel.tc = obs.NewTraceContext()
	}
	tel.id = tel.tc.TraceIDString()

	if tel.supplied || s.cfg.TraceSampling.WantTrace(tel.seq) {
		tel.tr = obs.New()
		tel.tr.SetID(tel.id)
		tel.root = tel.tr.Start("http")
		tel.root.SetAttr("transform", def.name)
		tel.root.SetAttr("tenant", tenant)
	}

	tel.ev = obs.Event{
		Time:        tel.start,
		TraceID:     tel.id,
		RequestID:   tel.id,
		Tenant:      tenant,
		Transform:   def.name,
		View:        def.view,
		ViewVersion: s.db.ViewVersion(def.view),
		DataVersion: s.dataVersion(),
		SheetHash:   def.hash,
	}
	tel.walAppends0, tel.walFsyncs0 = xsltdb.WALCounters()
	return tel
}

// finishTelemetry completes the request's wide event and publishes it,
// closes the serve-layer span tree, records per-tenant latency and SLO
// state, and releases the trace. Called exactly once per request.
func (s *Server) finishTelemetry(tel *reqTel, tenant, outcome string, status int, err error, stats *xsltdb.ExecStats) {
	total := time.Since(tel.start)

	tel.ev.Outcome = outcome
	tel.ev.Status = status
	tel.ev.TotalNS = int64(total)
	if err != nil {
		tel.ev.Error = err.Error()
	}
	if stats != nil {
		tel.ev.Strategy = stats.StrategyUsed.String()
		tel.ev.AccessPath = stats.AccessPath
		tel.ev.Rows = stats.RowsProduced
		tel.ev.GovTicks = stats.GovTicks
		tel.ev.CompileNS = int64(stats.CompileWall)
		tel.ev.ExecNS = int64(stats.ExecWall)
	}
	appends, fsyncs := xsltdb.WALCounters()
	tel.ev.WalAppends = appends - tel.walAppends0
	tel.ev.WalFsyncs = fsyncs - tel.walFsyncs0

	if tel.root != nil {
		tel.root.SetAttr("status", status)
		tel.root.Fail(err)
		tel.root.End()
	}
	if tel.tr != nil {
		// The engine archived any leader run under this trace ID; the run ID
		// joins the event to /runs/<id> in the console.
		if rec, ok := s.db.RunHistory().RunByTrace(tel.id); ok {
			tel.ev.RunID = rec.ID
		}
	}

	if s.events != nil && s.eventSelected(tel.seq, total, err) {
		if s.events.Publish(tel.ev) {
			mEventsPublished.Inc()
		}
	}

	mTenantRequestSeconds.With(tenant).Observe(total.Seconds())
	failed := status >= 500 || status == http.StatusTooManyRequests
	if s.slo != nil {
		mSLOBurnRate.With(tenant).Set(s.slo.record(tenant, total, failed))
	}

	tel.tr.Release()
}

// eventSelected applies the event-sampling policy: the zero policy emits an
// event for every request, a configured policy decides per request.
func (s *Server) eventSelected(seq uint64, total time.Duration, err error) bool {
	if s.cfg.EventSampling == (xsltdb.TraceSampling{}) {
		return true
	}
	return s.cfg.EventSampling.Sample(seq, total, err)
}

// requestIDSuffix is appended to shed and server-error bodies so a caller
// holding only the error text can still quote the request to an operator.
func requestIDSuffix(tel *reqTel) string {
	return " (request_id " + tel.id + ")"
}
