package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/sqlxml"
	"repro/internal/xslt"
)

// newDeptServer builds a Server over the paper's dept/emp database with the
// paper stylesheet registered as "paper".
func newDeptServer(t *testing.T, cfg Config) (*xsltdb.Database, *Server) {
	t.Helper()
	d := xsltdb.NewDatabase()
	if err := sqlxml.SetupDeptEmp(d.Rel()); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		t.Fatal(err)
	}
	cfg.DB = d
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterTransform("paper", "dept_emp", xslt.PaperStylesheet); err != nil {
		t.Fatal(err)
	}
	return d, s
}

func get(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestServeAndResultCache: a transform request returns the view's rows; an
// identical follow-up is a cache hit; an insert or a ReplaceXMLView makes
// the cached result unreachable and the next request recomputes.
func TestServeAndResultCache(t *testing.T) {
	d, s := newDeptServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/transform/paper", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Xsltd-Cache") != "miss" {
		t.Fatalf("first request cache header = %q", resp.Header.Get("X-Xsltd-Cache"))
	}
	if !strings.Contains(body, "HIGHLY PAID DEPT EMPLOYEES") {
		t.Fatalf("body does not look like the paper output: %q", body)
	}
	rows := strings.Count(body, "\n")

	resp, body2 := get(t, ts, "/v1/transform/paper", nil)
	if resp.Header.Get("X-Xsltd-Cache") != "hit" {
		t.Fatalf("second request cache header = %q", resp.Header.Get("X-Xsltd-Cache"))
	}
	if body2 != body {
		t.Fatal("cache hit returned different rows")
	}
	if st := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit", st)
	}

	// DML invalidates: a new dept row is a new driving row.
	if err := d.Insert("dept", int64(99), "GROWTH", "REMOTE"); err != nil {
		t.Fatal(err)
	}
	resp, body3 := get(t, ts, "/v1/transform/paper", nil)
	if resp.Header.Get("X-Xsltd-Cache") != "miss" {
		t.Fatal("insert must invalidate the cached result")
	}
	if got := strings.Count(body3, "\n"); got != rows+1 {
		t.Fatalf("rows after insert = %d, want %d", got, rows+1)
	}

	// DDL invalidates: ReplaceXMLView bumps the view version.
	evolved := &xsltdb.ViewDef{
		Name:  "dept_emp",
		Table: "dept",
		Body: &xsltdb.XMLElement{Name: "dept", Children: []xsltdb.XMLExpr{
			&xsltdb.XMLElement{Name: "dname", Children: []xsltdb.XMLExpr{&xsltdb.XMLColumn{Name: "dname"}}},
		}},
	}
	if err := d.ReplaceXMLView(evolved); err != nil {
		t.Fatal(err)
	}
	resp, body4 := get(t, ts, "/v1/transform/paper", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-replace status = %d body %q", resp.StatusCode, body4)
	}
	if resp.Header.Get("X-Xsltd-Cache") != "miss" {
		t.Fatal("ReplaceXMLView must invalidate the cached result")
	}
	if body4 == body3 {
		t.Fatal("post-replace response identical to pre-replace")
	}
}

// TestParamsAndWhere: p.<name>= and where= query parameters reach the run
// as typed WithParam/WithWhere options — integer-looking values bind as
// int64 so a predicate on an int column actually matches (the CLI's
// convention) — and distinct bindings never share a cache entry.
func TestParamsAndWhere(t *testing.T) {
	_, s := newDeptServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Dept 40 is the one with an above-threshold employee (SMITH, 4900).
	resp, body := get(t, ts, "/v1/transform/paper?p.d=40&where=deptno+%3D+%24d", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filtered status = %d body %q", resp.StatusCode, body)
	}
	if !strings.Contains(body, "OPERATIONS") || !strings.Contains(body, "SMITH") {
		t.Fatalf("deptno = 40 filter lost the dept-40 rows: %q", body)
	}
	if strings.Contains(body, "ACCOUNTING") {
		t.Fatalf("deptno = 40 filter leaked dept 10: %q", body)
	}

	// Rebinding the same compiled plan flips the output to dept 10.
	resp, body = get(t, ts, "/v1/transform/paper?p.d=10&where=deptno+%3D+%24d", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deptno = 10 status = %d body %q", resp.StatusCode, body)
	}
	if !strings.Contains(body, "ACCOUNTING") || strings.Contains(body, "OPERATIONS") {
		t.Fatalf("deptno = 10 filter returned the wrong department: %q", body)
	}
	if resp.Header.Get("X-Xsltd-Cache") != "miss" {
		t.Fatal("different binding must not share the d=40 cache entry")
	}

	// Error surface: unknown query params, bad predicates, and unbound
	// parameters are client errors, not 500s.
	for _, bad := range []string{
		"/v1/transform/paper?bogus=1",
		"/v1/transform/paper?where=nosuchcol+%3D+1",
		"/v1/transform/paper?where=deptno+%3D+%24missing",
	} {
		resp, body = get(t, ts, bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d body %q, want 400", bad, resp.StatusCode, body)
		}
	}
}

// TestCoalescing: N concurrent identical requests execute the transform
// exactly once. The exec gate holds the leader just before its Run until
// every other request has observably joined the in-flight call, so the
// assertion is deterministic, not timing-dependent.
func TestCoalescing(t *testing.T) {
	const n = 8
	_, s := newDeptServer(t, Config{})
	gateReached := make(chan struct{}, 1)
	releaseGate := make(chan struct{})
	var gateCalls atomic.Int64
	s.execGate = func() {
		gateCalls.Add(1)
		gateReached <- struct{}{}
		<-releaseGate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type reply struct {
		status    int
		body      string
		coalesced bool
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, body := get(t, ts, "/v1/transform/paper", nil)
			replies <- reply{resp.StatusCode, body, resp.Header.Get("X-Xsltd-Coalesced") == "1"}
		}()
	}

	<-gateReached // the leader is at the gate, holding the flight entry
	s.mu.RLock()
	def := s.transforms["paper"]
	s.mu.RUnlock()
	key := s.execKey(def, "")
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.flightMu.Lock()
		c := s.flight[key]
		joined := int64(0)
		if c != nil {
			joined = c.shared.Load()
		}
		s.flightMu.Unlock()
		if joined == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers joined the flight", joined, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(releaseGate)

	var followers int
	var first string
	for i := 0; i < n; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("status = %d body %q", r.status, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Fatal("coalesced responses differ")
		}
		if r.coalesced {
			followers++
		}
	}
	if gateCalls.Load() != 1 {
		t.Fatalf("executions = %d, want exactly 1", gateCalls.Load())
	}
	if followers != n-1 {
		t.Fatalf("followers = %d, want %d", followers, n-1)
	}
}

// TestTenantQuotaShed: a tenant at its MaxConcurrent gets 429 + Retry-After
// for additional work while another tenant keeps being served, and the
// in-flight request completes normally.
func TestTenantQuotaShed(t *testing.T) {
	d, s := newDeptServer(t, Config{
		APIKeys: map[string]string{"key-a": "alpha", "key-b": "beta"},
	})
	if err := d.RegisterTenant("alpha", xsltdb.TenantLimits{MaxConcurrent: 1}); err != nil {
		t.Fatal(err)
	}
	gateReached := make(chan struct{}, 1)
	releaseGate := make(chan struct{})
	var firstExec atomic.Bool
	s.execGate = func() {
		if firstExec.CompareAndSwap(false, true) { // only the first execution blocks
			gateReached <- struct{}{}
			<-releaseGate
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan reply1, 1)
	go func() {
		resp, body := get(t, ts, "/v1/transform/paper?p.i=0", map[string]string{"X-Api-Key": "key-a"})
		done <- reply1{resp.StatusCode, body}
	}()
	<-gateReached // alpha's only slot is now occupied

	resp, body := get(t, ts, "/v1/transform/paper?p.i=1", map[string]string{"X-Api-Key": "key-a"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	resp, body = get(t, ts, "/v1/transform/paper?p.i=1", map[string]string{"X-Api-Key": "key-b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d body %q", resp.StatusCode, body)
	}

	close(releaseGate)
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request finished %d body %q", r.status, r.body)
	}

	state := s.TenantsState()
	var alpha *TenantInfo
	for i := range state {
		if state[i].Name == "alpha" {
			alpha = &state[i]
		}
	}
	if alpha == nil || alpha.Shed != 1 || alpha.Served != 1 {
		t.Fatalf("alpha state = %+v, want 1 shed 1 served", alpha)
	}
}

type reply1 struct {
	status int
	body   string
}

// TestAuth: with API keys configured, a missing or unknown key is 401.
func TestAuth(t *testing.T) {
	_, s := newDeptServer(t, Config{APIKeys: map[string]string{"k": "tenant"}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := get(t, ts, "/v1/transform/paper", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no key status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/v1/transform/paper", map[string]string{"Authorization": "Bearer k"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer key status = %d", resp.StatusCode)
	}
}

// TestLatencyShed: once the sliding p95 breaches the target, new executions
// are shed with 429 while cache hits keep being served — degradation, not
// an outage.
func TestLatencyShed(t *testing.T) {
	_, s := newDeptServer(t, Config{TargetP95: time.Nanosecond, Window: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill the window below the 8-sample floor: these all execute.
	for i := 0; i < 8; i++ {
		resp, body := get(t, ts, fmt.Sprintf("/v1/transform/paper?p.i=%d", i), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up %d: status = %d body %q", i, resp.StatusCode, body)
		}
	}
	// The window is full and every real request took > 1ns: shed new work.
	resp, body := get(t, ts, "/v1/transform/paper?p.i=99", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("latency shed must carry Retry-After")
	}
	// A repeat of earlier work is a cache hit and is still served.
	resp, _ = get(t, ts, "/v1/transform/paper?p.i=3", nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Xsltd-Cache") != "hit" {
		t.Fatalf("cache hit under shed: status = %d cache = %q",
			resp.StatusCode, resp.Header.Get("X-Xsltd-Cache"))
	}
}

// TestCloseRace: Database.Close racing a stream of HTTP requests produces
// only clean outcomes — 200 for runs that finished, 429 for shed work, 503
// (ErrDatabaseClosed) after the close — and leaks no snapshot pins.
func TestCloseRace(t *testing.T) {
	d, s := newDeptServer(t, Config{CacheCapacity: -1}) // no cache: every request runs
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 8
	var wg sync.WaitGroup
	var badStatus atomic.Value
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := get(t, ts, fmt.Sprintf("/v1/transform/paper?p.i=%d.%d", w, i), nil)
				switch resp.StatusCode {
				case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
				default:
					badStatus.Store(fmt.Sprintf("status %d: %s", resp.StatusCode, body))
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let requests flow
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if msg := badStatus.Load(); msg != nil {
		t.Fatalf("unclean response during close race: %s", msg)
	}

	resp, body := get(t, ts, "/v1/transform/paper?p.i=after", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close status = %d body %q", resp.StatusCode, body)
	}
	resp, _ = get(t, ts, "/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close health = %d", resp.StatusCode)
	}

	// No snapshot pins may survive: scrape the shared registry.
	rec := httptest.NewRecorder()
	xsltdb.MetricsRegistry().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "xsltdb_snapshot_pins ") {
			if !strings.HasSuffix(line, " 0") {
				t.Fatalf("leaked snapshot pins: %q", line)
			}
			return
		}
	}
	t.Fatal("xsltdb_snapshot_pins not found in /metrics")
}

// TestConsoleTenants: the /tenants console page serves the admission state.
func TestConsoleTenants(t *testing.T) {
	_, s := newDeptServer(t, Config{})
	api := httptest.NewServer(s.Handler())
	defer api.Close()
	if resp, _ := get(t, api, "/v1/transform/paper", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request failed: %d", resp.StatusCode)
	}
	console := httptest.NewServer(s.Console())
	defer console.Close()
	resp, body := get(t, console, "/tenants", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"served": 1`) {
		t.Fatalf("/tenants = %d %q", resp.StatusCode, body)
	}
}

// TestEndToEndTelemetry follows one request's identity through every layer:
// the supplied W3C traceparent comes back as X-Request-Id and as the parent
// of the response's own traceparent, the wide event published for the
// request carries the serving outcome and latency breakdown under that same
// trace ID, and the console resolves /runs/<trace-id> to the archived engine
// span tree.
func TestEndToEndTelemetry(t *testing.T) {
	d, s := newDeptServer(t, Config{EnableEvents: true})
	defer s.Close()
	d.EnableRunHistory(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parent = "00-" + traceID + "-00f067aa0ba902b7-01"
	resp, body := get(t, ts, "/v1/transform/paper", map[string]string{"traceparent": parent})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body %q", resp.StatusCode, body)
	}

	// The caller's trace ID is the request's identity end to end.
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("X-Request-Id = %q, want %q", got, traceID)
	}
	back, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("Traceparent"))
	}
	if back.TraceIDString() != traceID {
		t.Fatalf("response traceparent trace = %q, want %q", back.TraceIDString(), traceID)
	}
	if back.SpanIDString() == "00f067aa0ba902b7" {
		t.Fatal("response traceparent must carry the server's own span ID")
	}

	// Exactly one wide event, carrying the serving outcome, engine work, and
	// latency breakdown under the same identity.
	s.EventBus().Flush()
	recent := s.EventsState(10).Recent
	if len(recent) != 1 {
		t.Fatalf("events = %+v, want exactly 1", recent)
	}
	ev := recent[0]
	if ev.TraceID != traceID || ev.RequestID != traceID {
		t.Fatalf("event identity = %q/%q, want %q", ev.TraceID, ev.RequestID, traceID)
	}
	if ev.Outcome != "ok" || ev.Status != http.StatusOK {
		t.Fatalf("event outcome = %q status %d", ev.Outcome, ev.Status)
	}
	if ev.Cache != "miss" || ev.Coalesce != "leader" {
		t.Fatalf("event cache/coalesce = %q/%q, want miss/leader", ev.Cache, ev.Coalesce)
	}
	if ev.Transform != "paper" || ev.View != "dept_emp" {
		t.Fatalf("event identity fields = %+v", ev)
	}
	if ev.Rows <= 0 || ev.Strategy == "" {
		t.Fatalf("event engine fields = %+v", ev)
	}
	if ev.TotalNS <= 0 || ev.ExecNS <= 0 || ev.TotalNS < ev.ExecNS {
		t.Fatalf("event latency breakdown = total %d exec %d", ev.TotalNS, ev.ExecNS)
	}
	if ev.RunID == 0 {
		t.Fatal("event not joined to the archived run")
	}

	// The console resolves the trace ID to the archived run and its spans.
	console := httptest.NewServer(s.Console())
	defer console.Close()
	resp, runBody := get(t, console, "/runs/"+traceID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/runs/%s = %d %q", traceID, resp.StatusCode, runBody)
	}
	for _, want := range []string{traceID, `"http"`, `"run"`} {
		if !strings.Contains(runBody, want) {
			t.Fatalf("/runs/%s missing %s:\n%s", traceID, want, runBody)
		}
	}
	resp, evBody := get(t, console, "/events", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(evBody, traceID) {
		t.Fatalf("/events = %d, missing trace %s:\n%s", resp.StatusCode, traceID, evBody)
	}

	// A repeat request hits the cache; without a caller traceparent the
	// server mints a fresh identity, and the event says cache-hit.
	resp, _ = get(t, ts, "/v1/transform/paper", nil)
	if resp.Header.Get("X-Xsltd-Cache") != "hit" {
		t.Fatal("second request should hit the cache")
	}
	freshID := resp.Header.Get("X-Request-Id")
	if len(freshID) != 32 || freshID == traceID {
		t.Fatalf("minted X-Request-Id = %q", freshID)
	}
	s.EventBus().Flush()
	recent = s.EventsState(1).Recent
	if len(recent) != 1 || recent[0].Outcome != "cache-hit" || recent[0].Cache != "hit" {
		t.Fatalf("cache-hit event = %+v", recent)
	}
	if recent[0].TraceID != freshID {
		t.Fatalf("cache-hit event trace = %q, want %q", recent[0].TraceID, freshID)
	}
}

// TestShedBodyCarriesRequestID: a 429 body quotes the request ID so a caller
// holding only the error text can hand an operator the exact request, and
// the shed is visible in the wide event and the per-tenant shed counter.
func TestShedBodyCarriesRequestID(t *testing.T) {
	d, s := newDeptServer(t, Config{
		EnableEvents: true,
		APIKeys:      map[string]string{"key-a": "alpha"},
	})
	defer s.Close()
	if err := d.RegisterTenant("alpha", xsltdb.TenantLimits{MaxConcurrent: 1}); err != nil {
		t.Fatal(err)
	}
	gateReached := make(chan struct{}, 1)
	releaseGate := make(chan struct{})
	var firstExec atomic.Bool
	s.execGate = func() {
		if firstExec.CompareAndSwap(false, true) {
			gateReached <- struct{}{}
			<-releaseGate
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan reply1, 1)
	go func() {
		resp, body := get(t, ts, "/v1/transform/paper?p.i=0", map[string]string{"X-Api-Key": "key-a"})
		done <- reply1{resp.StatusCode, body}
	}()
	<-gateReached

	resp, body := get(t, ts, "/v1/transform/paper?p.i=1", map[string]string{"X-Api-Key": "key-a"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d body %q", resp.StatusCode, body)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if len(reqID) != 32 {
		t.Fatalf("shed response X-Request-Id = %q", reqID)
	}
	if !strings.Contains(body, "request_id "+reqID) {
		t.Fatalf("429 body %q does not quote request_id %s", body, reqID)
	}

	close(releaseGate)
	if r := <-done; r.status != http.StatusOK {
		t.Fatalf("in-flight request finished %d body %q", r.status, r.body)
	}

	s.EventBus().Flush()
	recent := s.EventsState(10).Recent
	var shed *obs.Event
	for i := range recent {
		if recent[i].Outcome == "shed" {
			shed = &recent[i]
		}
	}
	if shed == nil {
		t.Fatalf("no shed event in %+v", recent)
	}
	if shed.TraceID != reqID || shed.Status != http.StatusTooManyRequests || shed.ShedReason == "" || shed.Tenant != "alpha" {
		t.Fatalf("shed event = %+v", shed)
	}
}
