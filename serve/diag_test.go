package serve

// The diagnostics smoke tests (`make diag-smoke`, part of `make verify`):
// boot a server with the flight recorder armed, induce the two incident
// shapes the detector set exists for — a WAL fsync stall (via a faultpoint
// sleep at the fsync site) and a latency-spike overload (slow requests
// flooding the event stream) — and assert each produces exactly one bundle
// inside the debounce window, containing every section an operator needs.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/faultpoint"
	"repro/internal/obs"
	"repro/internal/obs/diag"
	"repro/internal/sqlxml"
)

// bundleSections is what every complete bundle must contain: profiles,
// metrics exposition, recent events, run/plan/misestimate state, WAL state,
// and the anomaly ring.
var bundleSections = []string{
	"meta.json", "goroutines.txt", "heap.pprof", "metrics.prom",
	"events.json", "runs.json", "plans.json", "misestimates.json",
	"wal.json", "anomalies.json",
}

func assertBundle(t *testing.T, diagDir string, wantTrigger string) {
	t.Helper()
	entries, err := os.ReadDir(diagDir)
	if err != nil {
		t.Fatal(err)
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			bundles = append(bundles, e.Name())
		}
	}
	if len(bundles) != 1 {
		t.Fatalf("diag dir holds %d bundles %v, want exactly 1", len(bundles), bundles)
	}
	if !strings.HasSuffix(bundles[0], wantTrigger) {
		t.Errorf("bundle %q not triggered by %q", bundles[0], wantTrigger)
	}
	bdir := filepath.Join(diagDir, bundles[0])
	for _, f := range bundleSections {
		fi, err := os.Stat(filepath.Join(bdir, f))
		if err != nil {
			t.Errorf("bundle missing section %s: %v", f, err)
			continue
		}
		if fi.Size() == 0 && f != "misestimates.json" {
			t.Errorf("bundle section %s is empty", f)
		}
	}
	// The goroutine profile is the debug=2 text dump; the metrics exposition
	// carries the engine's instruments.
	g, _ := os.ReadFile(filepath.Join(bdir, "goroutines.txt"))
	if !strings.Contains(string(g), "goroutine") {
		t.Errorf("goroutines.txt does not look like a goroutine dump")
	}
	prom, _ := os.ReadFile(filepath.Join(bdir, "metrics.prom"))
	if !strings.Contains(string(prom), "xsltdb_wal_fsync_seconds") {
		t.Errorf("metrics.prom missing WAL fsync histogram")
	}
}

// TestDiagSmokeWALStall boots a durable database with the recorder armed,
// induces a WAL fsync stall through the wal.fsync faultpoint, and asserts
// the wal-fsync-stall detector captures exactly one complete bundle.
func TestDiagSmokeWALStall(t *testing.T) {
	defer faultpoint.Reset()
	db, err := xsltdb.Open(xsltdb.WithDir(filepath.Join(t.TempDir(), "wal")))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := sqlxml.SetupDeptEmp(db.Rel()); err != nil {
		t.Fatal(err)
	}

	diagDir := t.TempDir()
	s, err := New(Config{
		DB: db, EnableEvents: true,
		DiagDir: diagDir, DiagInterval: -1, DiagDebounce: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First poll primes every trailing-state detector against the fsyncs
	// setup already issued.
	s.Monitor().Poll()

	// Induce the stall: the next logged mutation's fsync sleeps 150ms —
	// over the 100ms stall threshold, inside the 100ms..1s histogram bucket.
	faultpoint.EnableSleep("wal.fsync", 150*time.Millisecond)
	if err := db.Insert("dept", int64(999), "STALLED", "NOWHERE"); err != nil {
		t.Fatal(err)
	}
	faultpoint.Disable("wal.fsync")

	s.Monitor().Poll()
	assertBundle(t, diagDir, "wal-fsync-stall")

	// Repeated evaluation inside the debounce window captures nothing new,
	// even though another stall lands in the histogram.
	faultpoint.EnableSleep("wal.fsync", 150*time.Millisecond)
	if err := db.Insert("dept", int64(998), "STALLED2", "NOWHERE"); err != nil {
		t.Fatal(err)
	}
	faultpoint.Disable("wal.fsync")
	s.Monitor().Poll()
	assertBundle(t, diagDir, "wal-fsync-stall") // still exactly one

	// The anomaly surfaced on the console page too.
	page := s.Monitor().Page(50)
	found := false
	for _, a := range page.Recent {
		if a.Detector == "wal-fsync-stall" && a.Severity == diag.SeverityCritical {
			found = true
		}
	}
	if !found {
		t.Errorf("wal-fsync-stall anomaly not in monitor page: %+v", page.Recent)
	}
}

// TestDiagSmokeLatencySpike floods the event stream with healthy latencies,
// then an overload 40x slower, and asserts the latency-spike detector
// captures exactly one bundle inside the debounce window.
func TestDiagSmokeLatencySpike(t *testing.T) {
	diagDir := t.TempDir()
	_, s := newDeptServer(t, Config{
		EnableEvents: true,
		DiagDir:      diagDir, DiagInterval: -1, DiagDebounce: time.Minute,
	})
	defer s.Close()

	m := s.Monitor()
	// Healthy traffic: 2ms requests prime the trailing baseline. With a
	// negative interval every Emit re-evaluates the detectors, so this is
	// fully deterministic — no ticker involved.
	for i := 0; i < 64; i++ {
		m.Emit(obs.Event{TotalNS: int64(2 * time.Millisecond)})
	}
	if got := len(m.Anomalies(0)); got != 0 {
		t.Fatalf("healthy traffic fired %d anomalies: %+v", got, m.Anomalies(0))
	}
	// Overload: 80ms requests push the window p95 far over 3x baseline and
	// the 10ms floor.
	for i := 0; i < 256; i++ {
		m.Emit(obs.Event{TotalNS: int64(80 * time.Millisecond)})
	}
	assertBundle(t, diagDir, "latency-spike")
}

// TestDiagConsoleEndpoints drives /debug/anomalies and /debug/bundle over
// HTTP: GET lists, POST captures on demand, and the bundle appears in the
// next GET.
func TestDiagConsoleEndpoints(t *testing.T) {
	diagDir := t.TempDir()
	_, s := newDeptServer(t, Config{
		EnableEvents: true,
		DiagDir:      diagDir, DiagInterval: -1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Console())
	defer ts.Close()

	resp, body := get(t, ts, "/debug/anomalies", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/anomalies status = %d", resp.StatusCode)
	}
	var page diag.AnomaliesPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("/debug/anomalies not an AnomaliesPage: %v\n%s", err, body)
	}
	if len(page.Detectors) != 7 {
		t.Errorf("detectors = %v, want the 7 standard rules", page.Detectors)
	}

	postResp, err := ts.Client().Post(ts.URL+"/debug/bundle", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusOK {
		t.Fatalf("POST /debug/bundle status = %d", postResp.StatusCode)
	}
	assertBundle(t, diagDir, "manual")

	resp, body = get(t, ts, "/debug/bundle", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "bundle-") {
		t.Fatalf("GET /debug/bundle = %d %q", resp.StatusCode, body)
	}
}

// TestEventsConsoleFilters drives the console /events page's ?tenant= and
// ?trace= filters end to end: requests from two tenants, then filtered pulls.
func TestEventsConsoleFilters(t *testing.T) {
	d, s := newDeptServer(t, Config{
		EnableEvents: true,
		APIKeys:      map[string]string{"ka": "acme", "kb": "beta"},
	})
	defer s.Close()
	d.RegisterTenant("acme", xsltdb.TenantLimits{})
	d.RegisterTenant("beta", xsltdb.TenantLimits{})
	api := httptest.NewServer(s.Handler())
	defer api.Close()
	console := httptest.NewServer(s.Console())
	defer console.Close()

	var betaTrace string
	for i := 0; i < 3; i++ {
		resp, _ := get(t, api, "/v1/transform/paper", map[string]string{"X-Api-Key": "ka"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("acme request status = %d", resp.StatusCode)
		}
	}
	resp, _ := get(t, api, "/v1/transform/paper", map[string]string{"X-Api-Key": "kb"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta request status = %d", resp.StatusCode)
	}
	betaTrace = resp.Header.Get("X-Request-Id")
	s.EventBus().Flush()

	decode := func(body string) EventsPage {
		t.Helper()
		var page EventsPage
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatalf("events page does not parse: %v\n%s", err, body)
		}
		return page
	}

	_, body := get(t, console, "/events?n=50", nil)
	if got := len(decode(body).Recent); got != 4 {
		t.Fatalf("unfiltered events = %d, want 4", got)
	}
	_, body = get(t, console, "/events?n=50&tenant=acme", nil)
	page := decode(body)
	if len(page.Recent) != 3 {
		t.Fatalf("tenant=acme events = %d, want 3", len(page.Recent))
	}
	for _, ev := range page.Recent {
		if ev.Tenant != "acme" {
			t.Errorf("tenant filter leaked event %+v", ev)
		}
	}
	_, body = get(t, console, "/events?n=50&trace="+betaTrace, nil)
	page = decode(body)
	if len(page.Recent) != 1 || page.Recent[0].Tenant != "beta" {
		t.Fatalf("trace filter = %+v, want beta's one event", page.Recent)
	}
	_, body = get(t, console, "/events?n=50&tenant=acme&trace="+betaTrace, nil)
	if got := len(decode(body).Recent); got != 0 {
		t.Fatalf("conjunctive filter matched %d events, want 0", got)
	}
}

// TestReadyz: /readyz is 503 until MarkReady, 200 after, 503 again while the
// server sheds on latency — all while /healthz stays a pure liveness probe.
func TestReadyz(t *testing.T) {
	_, s := newDeptServer(t, Config{TargetP95: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := get(t, ts, "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before ready = %d, want 200", resp.StatusCode)
	}
	resp, body := get(t, ts, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("readyz before MarkReady = %d %q, want 503 starting", resp.StatusCode, body)
	}

	s.MarkReady()
	resp, _ = get(t, ts, "/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after MarkReady = %d, want 200", resp.StatusCode)
	}

	// Fill the latency window past its 8-sample floor; every request is
	// slower than the 1ns target, so the server is now shedding — readiness
	// drops while liveness holds.
	for i := 0; i < 10; i++ {
		get(t, ts, "/v1/transform/paper", nil)
	}
	resp, body = get(t, ts, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "shedding") {
		t.Fatalf("readyz while shedding = %d %q, want 503 shedding", resp.StatusCode, body)
	}
	resp, _ = get(t, ts, "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while shedding = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestMetricNamingLint is the exposition-hygiene gate, run from the serve
// package so every layer's instruments (engine, WAL, serving, diagnostics,
// runtime) are registered on obs.Default when it looks: snake_case names
// under the xsltdb_/xsltd_ prefix, non-empty HELP text, counters ending in
// _total.
func TestMetricNamingLint(t *testing.T) {
	nameRE := regexp.MustCompile(`^(xsltdb|xsltd)_[a-z0-9]+(_[a-z0-9]+)*$`)
	fams := obs.Default.Families()
	if len(fams) < 30 {
		t.Fatalf("only %d families registered — are all layers linked?", len(fams))
	}
	for _, f := range fams {
		if !nameRE.MatchString(f.Name) {
			t.Errorf("metric %q is not snake_case under the xsltdb_/xsltd_ prefix", f.Name)
		}
		if strings.TrimSpace(f.Help) == "" {
			t.Errorf("metric %q has no HELP text", f.Name)
		}
		if f.Kind == "counter" && !strings.HasSuffix(f.Name, "_total") {
			t.Errorf("counter %q does not end in _total", f.Name)
		}
	}
}
