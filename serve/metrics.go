package serve

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
)

// Serving-layer instruments, registered on the same default registry as the
// engine's xsltdb_* series so one /metrics scrape covers both.
var (
	mRequests = obs.Default.NewCounterVec("xsltd_requests_total",
		"HTTP transform requests by tenant and outcome (ok, cache-hit, shed, error).",
		"tenant", "outcome")
	mRequestSeconds = obs.Default.NewHistogram("xsltd_request_seconds",
		"End-to-end HTTP request latency in seconds.", nil)
	mCoalesceHits = obs.Default.NewCounter("xsltd_coalesce_hits_total",
		"Requests that joined an identical in-flight execution instead of running.")
	mResultCacheHits = obs.Default.NewCounter("xsltd_result_cache_hits_total",
		"Requests served from the result cache.")
	mResultCacheMisses = obs.Default.NewCounter("xsltd_result_cache_misses_total",
		"Requests that missed the result cache.")
	mResultCacheEvictions = obs.Default.NewCounter("xsltd_result_cache_evictions_total",
		"Result-cache entries evicted by the LRU bound.")
	mSheds = obs.Default.NewCounterVec("xsltd_sheds_total",
		"Requests shed with 429 by reason (quota, latency).", "reason")
	mInFlight = obs.Default.NewGauge("xsltd_inflight_executions",
		"Transform executions currently running on behalf of HTTP requests.")
	mTenantRequestSeconds = obs.Default.NewHistogramVec("xsltd_tenant_request_seconds",
		"End-to-end HTTP request latency in seconds, by tenant.", nil, "tenant")
	mTenantSheds = obs.Default.NewCounterVec("xsltd_tenant_sheds_total",
		"Requests shed with 429, by tenant and reason (quota, latency).", "tenant", "reason")
	mTenantCacheHits = obs.Default.NewCounterVec("xsltd_tenant_cache_hits_total",
		"Requests served from the result cache, by tenant.", "tenant")
	mSLOBurnRate = obs.Default.NewGaugeVec("xsltd_slo_burn_rate_milli",
		"Per-tenant SLO burn rate ×1000 over the sliding request window: "+
			"1000 means errors are arriving exactly at the rate the objective's "+
			"error budget allows; above that the budget is burning down.", "tenant")
	mEventsPublished = obs.Default.NewCounter("xsltd_events_published_total",
		"Wide events accepted by the event bus.")
	mEventsDropped = obs.Default.NewCounter("xsltd_events_dropped_total",
		"Wide events dropped because the event-bus buffer was full.")
)

// writeJSON renders v indented, matching the debug console's style.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
