// Package serve is the production HTTP layer over compiled transforms: a
// Server exposes registered (view, stylesheet) pairs at /v1/transform/<name>
// and keeps the engine healthy under concurrent load with three mechanisms
// layered in front of every execution:
//
//  1. Request coalescing — concurrent identical requests (same view at the
//     same version, same stylesheet, same bound params) execute once; the
//     followers share the leader's rows (singleflight).
//  2. A bounded LRU result cache keyed on the same identity. The key
//     embeds the view's MVCC version, so ReplaceXMLView invalidates every
//     cached result for that view by construction — stale entries can
//     never be served, they just age out of the LRU.
//  3. Per-tenant admission control — an API key resolves to a tenant whose
//     TenantLimits cap concurrent runs and per-run budgets, and whose
//     WithPlanTag-isolated plans keep circuit-breaker state private to the
//     tenant. On top sits latency shedding: when the sliding p95 of recent
//     requests breaches the configured target, new executions are shed
//     with 429 + Retry-After while cache hits, coalesce joins, and
//     in-flight runs complete — graceful degradation, not collapse.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/obs/diag"
)

// Config wires a Server. DB is required; everything else defaults sanely.
type Config struct {
	// DB is the engine the server fronts.
	DB *xsltdb.Database
	// APIKeys maps API-key header values to tenant names. When empty the
	// server is open: every request runs as the anonymous tenant "".
	APIKeys map[string]string
	// CacheCapacity bounds the result cache in entries (default 256;
	// negative disables caching).
	CacheCapacity int
	// MaxInFlight caps concurrent executions across all tenants (0 =
	// unlimited). Requests beyond the cap are shed with 429.
	MaxInFlight int
	// TargetP95 sheds new executions with 429 while the sliding p95 of
	// recent request latencies exceeds it (0 = never shed on latency).
	TargetP95 time.Duration
	// Window is the number of recent latencies the shedding p95 is
	// computed over (default 256).
	Window int
	// RetryAfter is the hint returned with every 429 (default 1s).
	RetryAfter time.Duration

	// EnableEvents turns on the wide-event pipeline: one structured event
	// per request through a bounded async bus that never blocks the request
	// path. Implied when EventSinks is non-empty. The console ring sink
	// (/events) is always attached when the pipeline is on.
	EnableEvents bool
	// EventSinks are additional sinks (NDJSON file, OTLP exporter) the bus
	// fans out to.
	EventSinks []obs.EventSink
	// EventBuffer bounds the bus (0 = obs.DefaultEventBuffer). Events beyond
	// a full buffer are dropped and counted, never waited for.
	EventBuffer int
	// EventSampling selects which requests emit wide events. The zero value
	// emits one per request; SampleRatio/SampleSlowerThan/SampleErrors thin
	// the stream the same way trace sampling thins the archive.
	EventSampling xsltdb.TraceSampling
	// TraceSampling selects which requests — beyond those arriving with a
	// traceparent header, which are always traced — carry an engine trace
	// into the run-history archive. The zero value traces only
	// traceparent-supplied requests.
	TraceSampling xsltdb.TraceSampling
	// SLOTarget is the per-request latency objective for the SLO burn-rate
	// gauge: a request slower than this (or failed) spends error budget.
	// Defaults to TargetP95; 0 with no TargetP95 counts only failures.
	SLOTarget time.Duration
	// SLOObjective is the fraction of requests that must meet the target
	// (default 0.99).
	SLOObjective float64

	// DiagDir enables the diagnostics flight recorder: a detector monitor
	// watches the process's own signals (latency p95 vs trailing baseline,
	// SLO burn rate, circuit-breaker trips, WAL fsync stalls, snapshot-pin
	// age, event-bus drops, goroutine count) and captures a diagnostic
	// bundle under this directory when one fires. Empty = diagnostics off.
	DiagDir string
	// DiagMaxBundles bounds bundle retention (default 8).
	DiagMaxBundles int
	// DiagDebounce is the minimum gap between anomaly-triggered bundles
	// (default 1m) — an anomaly storm costs one bundle.
	DiagDebounce time.Duration
	// DiagInterval is the detector evaluation period (default 5s). Negative
	// disables the background ticker; detectors then run only on event
	// publish or explicit polling — deterministic tests use this.
	DiagInterval time.Duration
}

// Server serves registered transforms over HTTP. Create with New, register
// transforms, then mount Handler.
type Server struct {
	cfg    Config
	db     *xsltdb.Database
	window *latencyWindow
	cache  *resultCache
	global chan struct{} // global in-flight slots, nil = unlimited

	// events is the wide-event bus (nil = pipeline off); eventsRing backs
	// the console's /events page; slo tracks per-tenant burn rates;
	// telemetrySeq numbers requests for the sampling policies.
	events       *obs.EventBus
	eventsRing   *obs.RingSink
	slo          *sloTracker
	telemetrySeq atomic.Uint64

	// monitor/recorder are the diagnostics layer (nil = off); ready gates
	// /readyz — flipped by MarkReady once startup (WAL replay, transform
	// registration) is complete.
	monitor  *diag.Monitor
	recorder *diag.Recorder
	ready    atomic.Bool

	mu         sync.RWMutex
	transforms map[string]*transformDef
	compiled   map[compiledKey]*xsltdb.CompiledTransform

	flightMu sync.Mutex
	flight   map[string]*flightCall

	tenantMu sync.Mutex
	tenants  map[string]*tenantState

	// execGate, when set, runs on the leader immediately before each real
	// execution. Tests use it to hold N coalescing requests in flight
	// deterministically. Never set in production.
	execGate func()
}

// transformDef is one registered (view, stylesheet) pair.
type transformDef struct {
	name  string
	view  string
	sheet string
	hash  string // stylesheet identity folded into exec keys
	opts  []xsltdb.Option
}

// compiledKey identifies one tenant's compilation of one transform.
type compiledKey struct {
	name   string
	tenant string
}

// flightCall is one in-flight execution that followers can join.
type flightCall struct {
	done   chan struct{}
	rows   []string
	stats  xsltdb.ExecStats
	err    error
	shared atomic.Int64 // followers that joined
}

// tenantState is the live admission state for one tenant.
type tenantState struct {
	name string
	sem  chan struct{} // nil = unlimited

	inFlight  atomic.Int64
	served    atomic.Uint64
	shed      atomic.Uint64
	cacheHits atomic.Uint64
	coalesced atomic.Uint64
}

// New builds a Server over db.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("serve: Config.DB is required")
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 256
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:        cfg,
		db:         cfg.DB,
		window:     newLatencyWindow(cfg.Window),
		cache:      newResultCache(cfg.CacheCapacity),
		transforms: map[string]*transformDef{},
		compiled:   map[compiledKey]*xsltdb.CompiledTransform{},
		flight:     map[string]*flightCall{},
		tenants:    map[string]*tenantState{},
	}
	if cfg.MaxInFlight > 0 {
		s.global = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.DiagDir != "" {
		rec, err := diag.NewRecorder(diag.RecorderConfig{
			Dir:        cfg.DiagDir,
			MaxBundles: cfg.DiagMaxBundles,
			Debounce:   cfg.DiagDebounce,
		}, s.diagSources())
		if err != nil {
			return nil, err
		}
		s.recorder = rec
		s.monitor = diag.NewMonitor(diag.MonitorConfig{
			Interval: cfg.DiagInterval,
			OnAnomaly: func(a diag.Anomaly) {
				rec.TryCapture(a.Detector)
			},
		}, diag.StandardDetectors(obs.Default, diag.DetectorOptions{
			LatencyFloor: cfg.TargetP95,
		})...)
		s.monitor.Start()
	}
	if cfg.EnableEvents || len(cfg.EventSinks) > 0 {
		s.eventsRing = obs.NewRingSink(0)
		sinks := append(append([]obs.EventSink{}, cfg.EventSinks...), s.eventsRing)
		if s.monitor != nil {
			// The monitor rides the bus: every published event feeds the
			// latency-spike window, and detectors re-evaluate at event
			// speed (rate-limited to one pass per interval).
			sinks = append(sinks, s.monitor)
		}
		s.events = obs.NewEventBus(cfg.EventBuffer, mEventsDropped.Inc, sinks...)
	}
	sloTarget := cfg.SLOTarget
	if sloTarget == 0 {
		sloTarget = cfg.TargetP95
	}
	s.slo = newSLOTracker(sloTarget, cfg.SLOObjective, cfg.Window)
	return s, nil
}

// Close flushes and stops the wide-event pipeline and the diagnostics
// monitor. Requests may still be served afterwards; their events are dropped
// and counted.
func (s *Server) Close() {
	s.events.Close()
	s.monitor.Close()
}

// diagSources wires the flight recorder's bundle sections to the layers
// below: the shared metrics registry, the console event ring, run history,
// the plan cache, the misestimate log, WAL/recovery state, and the anomaly
// ring itself.
func (s *Server) diagSources() diag.Sources {
	return diag.Sources{
		Registry: obs.Default,
		Events:   func(n int) any { return s.EventsState(n) },
		Runs: func() any {
			a := s.db.RunHistory()
			return map[string]any{"recent": a.Runs(50), "aggregates": a.Plans()}
		},
		Plans: func() any { return s.db.PlanCacheEntries() },
		Misestimates: func() any {
			c := s.db.Cardinality()
			return map[string]any{"paths": c.Stats(), "log": c.Misestimates(50)}
		},
		WAL: func() any {
			appends, fsyncs := xsltdb.WALCounters()
			return map[string]any{
				"appends": appends, "fsyncs": fsyncs,
				"recovery": s.db.RecoveryStats(),
			}
		},
		Anomalies: func() any { return s.monitor.Anomalies(100) },
	}
}

// Monitor exposes the diagnostics monitor (nil when DiagDir is unset).
func (s *Server) Monitor() *diag.Monitor { return s.monitor }

// Recorder exposes the flight recorder (nil when DiagDir is unset).
func (s *Server) Recorder() *diag.Recorder { return s.recorder }

// MarkReady flips /readyz to 200. Call it when startup is complete: the
// database open (and therefore WAL replay) finished and every transform is
// registered. Liveness (/healthz) is independent and true from the start.
func (s *Server) MarkReady() { s.ready.Store(true) }

// EventBus exposes the server's event bus (nil when events are disabled) —
// tests and shutdown paths use it to Flush deterministically.
func (s *Server) EventBus() *obs.EventBus { return s.events }

// EventsPage is the console's /events payload: bus counters plus the most
// recent events, newest first.
type EventsPage struct {
	Bus    obs.EventBusStats `json:"bus"`
	Recent []obs.Event       `json:"recent"`
}

// EventsState snapshots the event pipeline for the console's /events page;
// nil when events are disabled.
func (s *Server) EventsState(n int) *EventsPage {
	return s.EventsStateFiltered(n, "", "")
}

// EventsStateFiltered is EventsState restricted to one tenant and/or one
// 32-hex trace ID (empty = no restriction) — the console's ?tenant= and
// ?trace= query filters. The ring is scanned newest-first until n matching
// events are found.
func (s *Server) EventsStateFiltered(n int, tenant, trace string) *EventsPage {
	if s.events == nil {
		return nil
	}
	var keep func(obs.Event) bool
	if tenant != "" || trace != "" {
		keep = func(ev obs.Event) bool {
			return (tenant == "" || ev.Tenant == tenant) &&
				(trace == "" || ev.TraceID == trace)
		}
	}
	return &EventsPage{Bus: s.events.Stats(), Recent: s.eventsRing.RecentFiltered(n, keep)}
}

// RegisterTransform exposes stylesheet over view as /v1/transform/<name>.
// The transform is compiled eagerly (for the anonymous tenant) so a broken
// stylesheet fails at registration, not on the first request.
func (s *Server) RegisterTransform(name, view, stylesheet string, opts ...xsltdb.Option) error {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("serve: bad transform name %q", name)
	}
	def := &transformDef{
		name: name, view: view, sheet: stylesheet,
		hash: sheetHash(stylesheet), opts: opts,
	}
	ct, err := s.db.CompileTransform(view, stylesheet, opts...)
	if err != nil {
		return fmt.Errorf("serve: register %q: %w", name, err)
	}
	s.mu.Lock()
	s.transforms[name] = def
	s.compiled[compiledKey{name: name, tenant: ""}] = ct
	s.mu.Unlock()
	return nil
}

// Handler returns the public v1 API:
//
//	GET  /v1/transforms            registered transforms (JSON)
//	GET  /v1/transform/<name>      run; p.<x>=v binds stylesheet param x,
//	                               where=<xpath> adds a driving predicate
//	GET  /healthz                  liveness: 200 while the process serves
//	GET  /readyz                   readiness: 200 once MarkReady was called
//	                               and the server is not shedding on latency
//
// Authentication: when Config.APIKeys is set, requests must carry a
// configured key in the Authorization: Bearer or X-Api-Key header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/v1/transforms", s.handleList)
	mux.HandleFunc("/v1/transform/", s.handleTransform)
	return mux
}

// Console returns the engine debug console with the serving layer's
// /tenants and /events sections and — when diagnostics are on — the
// /debug/anomalies and /debug/bundle endpoints attached.
func (s *Server) Console() http.Handler {
	sections := xsltdb.ConsoleSections{
		Tenants: func() any { return s.TenantsState() },
	}
	if s.events != nil {
		sections.Events = func(n int, tenant, trace string) any {
			return s.EventsStateFiltered(n, tenant, trace)
		}
	}
	if s.monitor != nil {
		sections.Anomalies = func(n int) any { return s.monitor.Page(n) }
	}
	if s.recorder != nil {
		sections.Bundles = func() any { return s.recorder.Bundles() }
		sections.CaptureBundle = func() (string, error) { return s.recorder.Capture("manual") }
	}
	return s.db.ConsoleHandlerWith(sections)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.db.Closed() {
		http.Error(w, "database closed", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReady is /readyz — distinct from liveness: it answers "should this
// process receive traffic", so it is 503 until MarkReady (startup, including
// WAL replay, complete) and while the server is globally shedding on latency
// (a load balancer should prefer a replica that is not over its p95 target).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.db.Closed():
		http.Error(w, "database closed", http.StatusServiceUnavailable)
	case !s.ready.Load():
		http.Error(w, "starting up", http.StatusServiceUnavailable)
	case s.cfg.TargetP95 > 0 && s.window.p95() > s.cfg.TargetP95:
		http.Error(w, "shedding load (p95 over target)", http.StatusServiceUnavailable)
	default:
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if _, _, ok := s.resolveTenant(w, r); !ok {
		return
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.transforms))
	for name := range s.transforms {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	type info struct {
		Name string `json:"name"`
		View string `json:"view"`
	}
	out := make([]info, 0, len(names))
	s.mu.RLock()
	for _, name := range names {
		out = append(out, info{Name: name, View: s.transforms[name].view})
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

// handleTransform is the hot path: establish trace identity → resolve
// tenant → try the result cache → join or lead a coalesced execution
// (admission control applies to leaders only; followers add no load). Every
// path through the handler ends in exactly one finishTelemetry call, which
// publishes the request's wide event.
func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/transform/")
	s.mu.RLock()
	def := s.transforms[name]
	s.mu.RUnlock()
	if def == nil {
		http.Error(w, "unknown transform "+strconv.Quote(name), http.StatusNotFound)
		return
	}
	tenant, lim, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	ts := s.tenantState(tenant, lim)
	tel := s.beginTelemetry(r, def, tenant)
	// The response always carries the request's identity: X-Request-Id is
	// the trace ID (the console key), traceparent the propagated context.
	w.Header().Set("X-Request-Id", tel.id)
	w.Header().Set("Traceparent", tel.tc.Traceparent())
	w.Header().Set("X-Xsltd-Tenant", tenant)

	runOpts, keyParams, err := parseRunArgs(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		s.finishTelemetry(tel, tenant, "error", http.StatusBadRequest, err, nil)
		return
	}

	key := s.execKey(def, keyParams)

	if rows, ok := s.cache.get(key); ok {
		ts.cacheHits.Add(1)
		ts.served.Add(1)
		mResultCacheHits.Inc()
		mTenantCacheHits.With(tenant).Inc()
		if sp := tel.root.Start("cache"); sp != nil {
			sp.SetAttr("outcome", "hit")
			sp.End()
		}
		tel.ev.Cache = "hit"
		tel.ev.Rows = int64(len(rows))
		s.writeRows(w, tel.start, tenant, "cache-hit", rows, "hit", "")
		s.finishTelemetry(tel, tenant, "cache-hit", http.StatusOK, nil, nil)
		return
	}
	mResultCacheMisses.Inc()
	tel.ev.Cache = "miss"

	rows, stats, role, err := s.execute(r, def, tenant, ts, lim, key, runOpts, tel)
	tel.ev.Coalesce = role
	if err != nil {
		s.window.record(time.Since(tel.start))
		if errors.Is(err, errShedQuota) || errors.Is(err, errShedLatency) {
			ts.shed.Add(1)
			reason := "quota"
			if errors.Is(err, errShedLatency) {
				reason = "latency"
			}
			mSheds.With(reason).Inc()
			mTenantSheds.With(tenant, reason).Inc()
			tel.ev.ShedReason = reason
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			http.Error(w, err.Error()+requestIDSuffix(tel), http.StatusTooManyRequests)
			mRequests.With(tenant, "shed").Inc()
			s.finishTelemetry(tel, tenant, "shed", http.StatusTooManyRequests, err, nil)
			return
		}
		status := statusFor(err)
		body := err.Error()
		if status >= 500 {
			body += requestIDSuffix(tel)
		}
		http.Error(w, body, status)
		mRequests.With(tenant, "error").Inc()
		s.finishTelemetry(tel, tenant, "error", status, err, &stats)
		return
	}
	if role == "follower" {
		ts.coalesced.Add(1)
		mCoalesceHits.Inc()
		w.Header().Set("X-Xsltd-Coalesced", "1")
	}
	ts.served.Add(1)
	s.writeRows(w, tel.start, tenant, "ok", rows, "miss", stats.StrategyUsed.String())
	s.finishTelemetry(tel, tenant, "ok", http.StatusOK, nil, &stats)
}

// writeRows writes a successful response and records its latency.
func (s *Server) writeRows(w http.ResponseWriter, start time.Time, tenant, outcome string, rows []string, cache, strategy string) {
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("X-Xsltd-Cache", cache)
	if strategy != "" {
		w.Header().Set("X-Xsltd-Strategy", strategy)
	}
	w.WriteHeader(http.StatusOK)
	for _, row := range rows {
		_, _ = w.Write([]byte(row))
		_, _ = w.Write([]byte("\n"))
	}
	d := time.Since(start)
	s.window.record(d)
	mRequestSeconds.Observe(d.Seconds())
	mRequests.With(tenant, outcome).Inc()
}

// Shed sentinels — mapped to 429 by the handler.
var (
	errShedQuota   = errors.New("serve: over tenant capacity, retry later")
	errShedLatency = errors.New("serve: shedding load (p95 over target), retry later")
)

// execute coalesces: the first request for key becomes the leader and runs
// the transform under admission control; concurrent identical requests wait
// on the leader's flightCall and share its rows without adding any load.
// tel receives the serve-layer spans — coalesce role, admission decision —
// and, on the leader, threads the request's trace into the engine run so
// the archived span tree covers HTTP → strategy → operators.
func (s *Server) execute(r *http.Request, def *transformDef, tenant string, ts *tenantState, lim xsltdb.TenantLimits, key string, runOpts []xsltdb.RunOption, tel *reqTel) ([]string, xsltdb.ExecStats, string, error) {
	s.flightMu.Lock()
	if c, ok := s.flight[key]; ok {
		c.shared.Add(1) // counted on join, so a blocked follower is observable
		s.flightMu.Unlock()
		sp := tel.root.Start("coalesce")
		sp.SetAttr("role", "follower")
		select {
		case <-c.done:
			sp.End()
			return c.rows, c.stats, "follower", c.err
		case <-r.Context().Done():
			err := fmt.Errorf("serve: %w", r.Context().Err())
			sp.Fail(err)
			sp.End()
			return nil, xsltdb.ExecStats{}, "follower", err
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.flightMu.Unlock()
	defer func() {
		s.flightMu.Lock()
		delete(s.flight, key)
		s.flightMu.Unlock()
		close(c.done)
	}()
	if sp := tel.root.Start("coalesce"); sp != nil {
		sp.SetAttr("role", "leader")
		sp.End()
	}

	// Leader admission: latency shedding first (cheapest check), then the
	// tenant's slot, then a global slot.
	adm := tel.root.Start("admission")
	if s.cfg.TargetP95 > 0 && s.window.p95() > s.cfg.TargetP95 {
		c.err = errShedLatency
		adm.SetAttr("decision", "shed-latency")
		adm.End()
		return nil, xsltdb.ExecStats{}, "leader", c.err
	}
	release, err := s.admit(ts)
	if err != nil {
		c.err = err
		adm.SetAttr("decision", "shed-quota")
		adm.End()
		return nil, xsltdb.ExecStats{}, "leader", err
	}
	adm.SetAttr("decision", "admitted")
	adm.End()
	defer release()

	ct, err := s.compiledFor(def, tenant, lim)
	if err != nil {
		c.err = err
		return nil, xsltdb.ExecStats{}, "leader", err
	}
	if gate := s.execGate; gate != nil {
		gate()
	}
	if tel.tr != nil {
		runOpts = append(runOpts, xsltdb.WithTrace(tel.tr))
	}
	mInFlight.Inc()
	res, err := ct.Run(r.Context(), runOpts...)
	mInFlight.Dec()
	if err != nil {
		c.err = err
		if res != nil {
			c.stats = res.Stats
			return nil, res.Stats, "leader", err
		}
		return nil, xsltdb.ExecStats{}, "leader", err
	}
	c.rows, c.stats = res.Rows, res.Stats
	s.cache.put(key, res.Rows)
	return res.Rows, res.Stats, "leader", nil
}

// admit takes the tenant's slot and a global slot, or sheds.
func (s *Server) admit(ts *tenantState) (release func(), err error) {
	if ts.sem != nil {
		select {
		case ts.sem <- struct{}{}:
		default:
			return nil, errShedQuota
		}
	}
	if s.global != nil {
		select {
		case s.global <- struct{}{}:
		default:
			if ts.sem != nil {
				<-ts.sem
			}
			return nil, errShedQuota
		}
	}
	ts.inFlight.Add(1)
	return func() {
		ts.inFlight.Add(-1)
		if s.global != nil {
			<-s.global
		}
		if ts.sem != nil {
			<-ts.sem
		}
	}, nil
}

// compiledFor returns the tenant's compilation of def, compiling on first
// use. Each named tenant compiles with WithPlanTag, so its plan-cache entry
// — and therefore its circuit breakers and fallback state — is isolated
// from every other tenant's; the tenant's per-run budgets ride along as
// compile options.
func (s *Server) compiledFor(def *transformDef, tenant string, lim xsltdb.TenantLimits) (*xsltdb.CompiledTransform, error) {
	key := compiledKey{name: def.name, tenant: tenant}
	s.mu.RLock()
	ct := s.compiled[key]
	s.mu.RUnlock()
	if ct != nil {
		return ct, nil
	}
	opts := append([]xsltdb.Option{}, def.opts...)
	if tenant != "" {
		opts = append(opts, xsltdb.WithPlanTag("tenant:"+tenant))
	}
	if lim.Timeout > 0 {
		opts = append(opts, xsltdb.WithTimeout(lim.Timeout))
	}
	if lim.MaxRows > 0 {
		opts = append(opts, xsltdb.WithMaxRows(lim.MaxRows))
	}
	if lim.MaxOutputBytes > 0 {
		opts = append(opts, xsltdb.WithMaxOutputBytes(lim.MaxOutputBytes))
	}
	ct, err := s.db.CompileTransform(def.view, def.sheet, opts...)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if cached := s.compiled[key]; cached != nil {
		ct = cached
	} else {
		s.compiled[key] = ct
	}
	s.mu.Unlock()
	return ct, nil
}

// resolveTenant maps the request's API key to a tenant. With no keys
// configured the server is open and every request is the anonymous tenant.
// The tenant's limits come from the database's registry (RegisterTenant /
// WithTenant); an unregistered tenant runs unlimited.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (string, xsltdb.TenantLimits, bool) {
	if len(s.cfg.APIKeys) == 0 {
		lim, _ := s.db.Tenant("")
		return "", lim, true
	}
	key := r.Header.Get("X-Api-Key")
	if key == "" {
		key = strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	}
	tenant, ok := s.cfg.APIKeys[key]
	if !ok {
		http.Error(w, "serve: unknown API key", http.StatusUnauthorized)
		return "", xsltdb.TenantLimits{}, false
	}
	lim, _ := s.db.Tenant(tenant)
	return tenant, lim, true
}

// tenantState returns (creating on first use) the live admission state.
func (s *Server) tenantState(name string, lim xsltdb.TenantLimits) *tenantState {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if ts, ok := s.tenants[name]; ok {
		return ts
	}
	ts := &tenantState{name: name}
	if lim.MaxConcurrent > 0 {
		ts.sem = make(chan struct{}, lim.MaxConcurrent)
	}
	s.tenants[name] = ts
	return ts
}

// TenantInfo is one tenant's admission snapshot, served at the console's
// /tenants endpoint.
type TenantInfo struct {
	Name      string              `json:"name"`
	Limits    xsltdb.TenantLimits `json:"limits"`
	InFlight  int64               `json:"in_flight"`
	Served    uint64              `json:"served"`
	Shed      uint64              `json:"shed"`
	CacheHits uint64              `json:"cache_hits"`
	Coalesced uint64              `json:"coalesced"`
}

// TenantsState snapshots every tenant that has made at least one request.
func (s *Server) TenantsState() []TenantInfo {
	s.tenantMu.Lock()
	states := make([]*tenantState, 0, len(s.tenants))
	for _, ts := range s.tenants {
		states = append(states, ts)
	}
	s.tenantMu.Unlock()
	out := make([]TenantInfo, 0, len(states))
	for _, ts := range states {
		lim, _ := s.db.Tenant(ts.name)
		out = append(out, TenantInfo{
			Name:      ts.name,
			Limits:    lim,
			InFlight:  ts.inFlight.Load(),
			Served:    ts.served.Load(),
			Shed:      ts.shed.Load(),
			CacheHits: ts.cacheHits.Load(),
			Coalesced: ts.coalesced.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CacheStats reports the result cache's live counters.
func (s *Server) CacheStats() ResultCacheStats { return s.cache.stats() }

// statusFor maps engine errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, xsltdb.ErrDatabaseClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, xsltdb.ErrBadRunOption), errors.Is(err, xsltdb.ErrUnboundParam):
		return http.StatusBadRequest
	case errors.Is(err, xsltdb.ErrNoView):
		return http.StatusNotFound
	case errors.Is(err, xsltdb.ErrLimitExceeded):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, xsltdb.ErrCanceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// parseRunArgs turns query parameters into run options plus the canonical
// param string folded into the coalesce/cache key: p.<name>=v binds a
// stylesheet parameter, where=<xpath> (repeatable) adds driving predicates.
func parseRunArgs(r *http.Request) ([]xsltdb.RunOption, string, error) {
	q := r.URL.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var opts []xsltdb.RunOption
	var sig strings.Builder
	for _, k := range keys {
		switch {
		case strings.HasPrefix(k, "p."):
			// Same convention as the xsltdb CLI: integer-looking values
			// bind as int64 (so `deptno = $d` probes an int column),
			// everything else as string.
			name := strings.TrimPrefix(k, "p.")
			v := q.Get(k)
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				opts = append(opts, xsltdb.WithParam(name, n))
			} else {
				opts = append(opts, xsltdb.WithParam(name, v))
			}
			fmt.Fprintf(&sig, "p:%s=%s;", name, v)
		case k == "where":
			for _, expr := range q[k] {
				opts = append(opts, xsltdb.WithWhere(expr))
				fmt.Fprintf(&sig, "w:%s;", expr)
			}
		default:
			return nil, "", fmt.Errorf("serve: unknown query parameter %q", k)
		}
	}
	return opts, sig.String(), nil
}

// execKey is the request identity everything hangs off: view at its current
// MVCC version, committed-data fingerprint, stylesheet hash, canonical
// bound params. Two requests with equal keys are interchangeable —
// coalescable and cacheable. The version covers DDL (ReplaceXMLView bumps
// it); the fingerprint covers DML (the store is insert-only, so the total
// committed row count is monotone and changes on every insert) — either
// kind of write makes every older cached result unreachable.
func (s *Server) execKey(def *transformDef, params string) string {
	return def.view + "\x00" + strconv.Itoa(s.db.ViewVersion(def.view)) +
		"\x00" + strconv.FormatInt(s.dataVersion(), 10) +
		"\x00" + def.hash + "\x00" + params
}

// dataVersion fingerprints the committed data: the store is append-only, so
// the total row count across tables increases on every insert.
func (s *Server) dataVersion() int64 {
	rel := s.db.Rel()
	var n int64
	for _, name := range rel.TableNames() {
		n += int64(rel.Table(name).NumRows())
	}
	return n
}
