package xsltdb

// EXPLAIN and EXPLAIN ANALYZE share one renderer: writeExplainHeader prints
// the compiled strategy and plan-cache status, then the static form appends
// the physical access paths while the analyzing form runs the plan under a
// trace and appends the operator tree with actual rows and timings next to
// the planner's estimates.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// writeExplainHeader renders the lines shared by ExplainPlan and
// ExplainAnalyze: the chosen strategy (with the fallback reason when a
// stronger one was unavailable) and the plan cache's view of this
// compilation.
func (ct *CompiledTransform) writeExplainHeader(sb *strings.Builder, st *planState) {
	fmt.Fprintf(sb, "strategy: %s", st.strategy)
	if st.fallback != "" {
		fmt.Fprintf(sb, " (fallback: %s)", st.fallback)
	}
	sb.WriteByte('\n')
	cached := ct.db.plans.contains(newPlanKey(ct.viewName, st.viewVersion, ct.source, ct.opts))
	cs := ct.db.PlanCacheStats()
	fmt.Fprintf(sb, "plan cache: cached=%t entries=%d hits=%d misses=%d\n",
		cached, cs.Entries, cs.CacheHits, cs.CacheMisses)
}

// ExplainPlan describes the compiled plan without running it: the strategy
// and plan-cache header, then the physical access path — for the SQL
// strategy the full plan including correlated subqueries, for the fallback
// strategies the driving access path their view materialization would use.
//
// Run options refine the explanation: WithWhere predicates join the plan,
// WithParam values substitute into bind variables (unbound parameters
// render as :name — the plan's shape does not depend on the value), and
// WithoutPushdown shows the full-scan baseline plan.
func (ct *CompiledTransform) ExplainPlan(opts ...RunOption) string {
	st := ct.snapshot()
	var sb strings.Builder
	ct.writeExplainHeader(&sb, st)
	spec, _, err := ct.db.runSpec(st, buildRunOptions(opts), true)
	if err != nil {
		sb.WriteString("explain: " + err.Error())
		return sb.String()
	}
	if st.plan != nil {
		sb.WriteString(ct.db.exec.ExplainQuerySpec(st.plan, spec))
	} else {
		sb.WriteString(ct.db.exec.ExplainViewSpec(st.view, st.drivingWhere(), spec))
	}
	return sb.String()
}

// ExplainAnalyze runs the transformation and renders the operator tree with
// the actual per-operator wall times, invocation counts and row counts next
// to the planner's estimates (the est_rows attribute on scan operators) —
// the EXPLAIN ANALYZE of the XSLT pipeline. The same header as ExplainPlan
// precedes the tree, followed by the run's ExecStats line.
//
// The run is a real execution with real side effects on statistics,
// metrics, and the plan's circuit breaker. On failure the rendered tree is
// still returned — error-tagged spans show where the run stopped — together
// with the error.
func (ct *CompiledTransform) ExplainAnalyze(ctx context.Context, opts ...RunOption) (string, error) {
	tr := obs.New()
	defer tr.Release()
	all := make([]RunOption, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, WithTrace(tr))
	res, err := ct.Run(ctx, all...)
	st := ct.snapshot()
	var sb strings.Builder
	ct.writeExplainHeader(&sb, st)
	if res != nil {
		sb.WriteString("actual: " + res.Stats.String() + "\n")
	}
	sb.WriteString(tr.Tree())
	writeMisestimates(&sb, ct.db, ct.viewName)
	return sb.String(), err
}

// writeMisestimates appends the cardinality tracker's worst offenders for
// the view — access paths whose estimates have historically crossed the
// q-error threshold — so EXPLAIN ANALYZE surfaces not just this run's
// est-vs-actual but the plan shapes that keep misestimating.
func writeMisestimates(sb *strings.Builder, db *Database, view string) {
	worst := db.cards.Worst(view, 3)
	if len(worst) == 0 {
		return
	}
	fmt.Fprintf(sb, "cardinality misestimates (q-error > %g):\n", db.cards.Threshold())
	for _, w := range worst {
		fmt.Fprintf(sb, "  %s: runs=%d est=%d actual=%d max-q-error=%.1f\n",
			w.Shape, w.Runs, w.EstRows, w.ActualRows, w.MaxQError)
	}
}

// ExplainAnalyze runs the whole pipeline — the view-backed first stage plus
// every chained stage — and renders both operator trees: the first stage's
// "run" tree (scan / construct / serialize with actuals) and the "chain"
// tree with one span per chained stage. The header is the FIRST stage's
// (the only stage with a physical plan); a chain summary line names the
// stages that follow it.
//
// Like the single-stage form this is a real execution with real side
// effects; on failure the rendered trees still show where the run stopped.
func (c *ChainedTransform) ExplainAnalyze(ctx context.Context, opts ...RunOption) (string, error) {
	tr := obs.New()
	defer tr.Release()
	all := make([]RunOption, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, WithTrace(tr))
	res, err := c.Run(ctx, all...)
	st := c.first.snapshot()
	var sb strings.Builder
	c.first.writeExplainHeader(&sb, st)
	rewritten, interpreted := c.Stages()
	fmt.Fprintf(&sb, "chain: %d stage(s) after the view stage (%d rewritten, %d interpreted)\n",
		rewritten+interpreted, rewritten, interpreted)
	if res != nil {
		sb.WriteString("actual: " + res.Stats.String() + "\n")
	}
	sb.WriteString(tr.Tree())
	writeMisestimates(&sb, c.first.db, c.first.viewName)
	return sb.String(), err
}
