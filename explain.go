package xsltdb

// EXPLAIN and EXPLAIN ANALYZE share one renderer: writeExplainHeader prints
// the compiled strategy and plan-cache status, then the static form appends
// the physical access paths while the analyzing form runs the plan under a
// trace and appends the operator tree with actual rows and timings next to
// the planner's estimates.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// writeExplainHeader renders the lines shared by ExplainPlan and
// ExplainAnalyze: the chosen strategy (with the fallback reason when a
// stronger one was unavailable) and the plan cache's view of this
// compilation.
func (ct *CompiledTransform) writeExplainHeader(sb *strings.Builder, st *planState) {
	fmt.Fprintf(sb, "strategy: %s", st.strategy)
	if st.fallback != "" {
		fmt.Fprintf(sb, " (fallback: %s)", st.fallback)
	}
	sb.WriteByte('\n')
	cached := ct.db.plans.contains(newPlanKey(ct.viewName, st.viewVersion, ct.source, ct.opts))
	cs := ct.db.PlanCacheStats()
	fmt.Fprintf(sb, "plan cache: cached=%t entries=%d hits=%d misses=%d\n",
		cached, cs.Entries, cs.CacheHits, cs.CacheMisses)
}

// ExplainPlan describes the compiled plan without running it: the strategy
// and plan-cache header, then the physical access path — for the SQL
// strategy the full plan including correlated subqueries, for the fallback
// strategies the driving access path their view materialization would use.
//
// Run options refine the explanation: WithWhere predicates join the plan,
// WithParam values substitute into bind variables (unbound parameters
// render as :name — the plan's shape does not depend on the value), and
// WithoutPushdown shows the full-scan baseline plan.
func (ct *CompiledTransform) ExplainPlan(opts ...RunOption) string {
	st := ct.snapshot()
	var sb strings.Builder
	ct.writeExplainHeader(&sb, st)
	spec, _, err := ct.db.runSpec(st, buildRunOptions(opts), true)
	if err != nil {
		sb.WriteString("explain: " + err.Error())
		return sb.String()
	}
	if st.plan != nil {
		sb.WriteString(ct.db.exec.ExplainQuerySpec(st.plan, spec))
	} else {
		sb.WriteString(ct.db.exec.ExplainViewSpec(st.view, st.drivingWhere(), spec))
	}
	return sb.String()
}

// ExplainAnalyze runs the transformation and renders the operator tree with
// the actual per-operator wall times, invocation counts and row counts next
// to the planner's estimates (the est_rows attribute on scan operators) —
// the EXPLAIN ANALYZE of the XSLT pipeline. The same header as ExplainPlan
// precedes the tree, followed by the run's ExecStats line.
//
// The run is a real execution with real side effects on statistics,
// metrics, and the plan's circuit breaker. On failure the rendered tree is
// still returned — error-tagged spans show where the run stopped — together
// with the error.
func (ct *CompiledTransform) ExplainAnalyze(ctx context.Context, opts ...RunOption) (string, error) {
	tr := obs.New()
	defer tr.Release()
	all := make([]RunOption, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, WithTrace(tr))
	res, err := ct.Run(ctx, all...)
	st := ct.snapshot()
	var sb strings.Builder
	ct.writeExplainHeader(&sb, st)
	if res != nil {
		sb.WriteString("actual: " + res.Stats.String() + "\n")
	}
	sb.WriteString(tr.Tree())
	return sb.String(), err
}
