package xsltdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/obs"
)

// runN executes the transform n times against distinct keys, failing the
// test on any error.
func runN(t *testing.T, ct *CompiledTransform, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := ct.Run(context.Background(), WithWhere("@id = $k"), WithParam("k", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunHistoryDisabledByDefault(t *testing.T) {
	d := newKeyedDB(t, 20)
	ct, err := d.CompileTransform("rows", keyedSheet, WithTraceSampling(SampleAlways()))
	if err != nil {
		t.Fatal(err)
	}
	runN(t, ct, 3)
	if d.RunHistory() != nil {
		t.Fatal("archive exists without EnableRunHistory")
	}
	// Nil-safe accessors on the disabled database.
	if d.RunHistory().Len() != 0 || d.RunHistory().Runs(5) != nil {
		t.Fatal("nil archive accessors not inert")
	}
}

func TestRunHistoryArchivesEveryRun(t *testing.T) {
	d := newKeyedDB(t, 20)
	arch := d.EnableRunHistory(8)
	if again := d.EnableRunHistory(999); again != arch {
		t.Fatal("EnableRunHistory not idempotent")
	}
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	runN(t, ct, 3)

	runs := arch.Runs(0)
	if len(runs) != 3 {
		t.Fatalf("archived %d runs, want 3", len(runs))
	}
	r := runs[0]
	if r.Kind != "run" || r.View != "rows" || r.Strategy != "sql-rewrite" ||
		r.Rows != 1 || r.Wall <= 0 || !strings.Contains(r.AccessPath, "INDEX PROBE") ||
		!strings.Contains(r.Stats, "rows=1") || r.Start.IsZero() {
		t.Fatalf("bad record: %+v", r)
	}
	// No sampling policy: records carry no trace.
	if r.Sampled || r.Trace != "" {
		t.Fatalf("unsampled run carries a trace: %+v", r)
	}

	plans := arch.Plans()
	if len(plans) != 1 || plans[0].View != "rows" || plans[0].Calls != 3 || plans[0].Rows != 3 {
		t.Fatalf("plan aggregates = %+v", plans)
	}
	if len(plans[0].Slowest) != 3 || plans[0].P50 <= 0 {
		t.Fatalf("plan aggregate detail = %+v", plans[0])
	}
}

// TestTraceSamplingSlowOnly is the exactness contract: with a slow-only
// policy, exactly the over-threshold runs retain traces. An unreachable
// threshold samples nothing; a trivially-reachable one samples everything.
func TestTraceSamplingSlowOnly(t *testing.T) {
	d := newKeyedDB(t, 20)
	arch := d.EnableRunHistory(0)

	never, err := d.CompileTransform("rows", keyedSheet, WithTraceSampling(SampleSlowerThan(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	runN(t, never, 4)
	for _, r := range arch.Runs(0) {
		if r.Sampled || r.Trace != "" {
			t.Fatalf("run under 1h threshold retained a trace: %+v", r)
		}
	}

	always, err := d.CompileTransform("rows", keyedSheet, WithTraceSampling(SampleSlowerThan(time.Nanosecond)))
	if err != nil {
		t.Fatal(err)
	}
	runN(t, always, 4)
	runs := arch.Runs(4) // the four newest
	for _, r := range runs {
		if !r.Sampled || r.Trace == "" || len(r.TraceJSON) == 0 {
			t.Fatalf("over-threshold run lost its trace: %+v", r)
		}
		if !strings.Contains(r.Trace, "run") || !strings.Contains(r.Trace, "sql-rewrite") {
			t.Fatalf("trace tree incomplete:\n%s", r.Trace)
		}
	}
}

func TestTraceSamplingErrorsOnly(t *testing.T) {
	d := newKeyedDB(t, 20)
	arch := d.EnableRunHistory(0)
	ct, err := d.CompileTransform("rows", keyedSheet, WithTraceSampling(SampleErrors()))
	if err != nil {
		t.Fatal(err)
	}

	runN(t, ct, 2) // healthy runs: recorded, not sampled
	for _, r := range arch.Runs(0) {
		if r.Sampled {
			t.Fatalf("successful run sampled under errors-only: %+v", r)
		}
	}

	// Fail every strategy in the chain so the run errors terminally.
	faultpoint.Enable("sqlxml.query.next", errBoom)
	faultpoint.Enable("sqlxml.view.row", errBoom)
	defer faultpoint.Reset()
	if _, err := ct.Run(context.Background()); err == nil {
		t.Fatal("faulted run succeeded")
	}
	rec := arch.Runs(1)[0]
	if rec.Error == "" || !rec.Sampled || rec.Trace == "" {
		t.Fatalf("errored run not sampled with trace: %+v", rec)
	}
	if !strings.Contains(rec.Trace, "ERROR") && !strings.Contains(rec.Trace, "error") {
		t.Fatalf("errored trace carries no error tag:\n%s", rec.Trace)
	}
}

// TestTraceSamplingRatioExact: the deterministic ratio sampler lands
// floor(N·r) traces over N runs — 8 runs at 0.25 sample exactly 2.
func TestTraceSamplingRatioExact(t *testing.T) {
	d := newKeyedDB(t, 20)
	arch := d.EnableRunHistory(0)
	ct, err := d.CompileTransform("rows", keyedSheet, WithTraceSampling(SampleRatio(0.25)))
	if err != nil {
		t.Fatal(err)
	}
	runN(t, ct, 8)
	sampled := 0
	for _, r := range arch.Runs(0) {
		if r.Sampled {
			if r.Trace == "" {
				t.Fatalf("sampled record without trace: %+v", r)
			}
			sampled++
		}
	}
	if sampled != 2 {
		t.Fatalf("ratio 0.25 over 8 runs sampled %d, want exactly 2", sampled)
	}
}

func TestCursorRunsArchived(t *testing.T) {
	d := newKeyedDB(t, 10)
	arch := d.EnableRunHistory(0)
	ct, err := d.CompileTransform("rows", keyedSheet, WithTraceSampling(SampleAlways()))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cur.Collect()
	if err != nil || len(rows) != 10 {
		t.Fatalf("collect: %d rows, err %v", len(rows), err)
	}
	rec := arch.Runs(1)[0]
	if rec.Kind != "cursor" || rec.Rows != 10 || rec.Error != "" || !rec.Sampled {
		t.Fatalf("cursor record = %+v", rec)
	}
	if !strings.Contains(rec.Trace, "cursor") {
		t.Fatalf("cursor trace:\n%s", rec.Trace)
	}

	// An abandoned cursor archives as a partial run and must NOT feed the
	// cardinality tracker (its actual row count is meaningless).
	statsBefore := len(d.Cardinality().Stats())
	cur2, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur2.Next(); err != nil {
		t.Fatal(err)
	}
	cur2.Close()
	rec2 := arch.Runs(1)[0]
	if rec2.Kind != "cursor" || rec2.Rows != 1 {
		t.Fatalf("abandoned cursor record = %+v", rec2)
	}
	// Same shapes as before: the partial run added no new path, and the
	// drained cursor's path count stays.
	if got := len(d.Cardinality().Stats()); got != statsBefore {
		t.Fatalf("partial cursor fed the cardinality tracker: %d -> %d paths", statsBefore, got)
	}
}

// TestCardinalityMisestimateLog drives the skewed case the tracker exists
// for: the planner estimates a range scan at rows/3 while the predicate
// selects 5 of 300 — q-error ≈ 20 lands in the misestimate log, the metric,
// and EXPLAIN ANALYZE's worst-offenders block.
func TestCardinalityMisestimateLog(t *testing.T) {
	const n = 300
	d := newKeyedDB(t, n)
	arch := d.EnableRunHistory(0)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}

	before := mMisestimates.Value()
	res, err := ct.Run(context.Background(), WithWhere("@id < 5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if res.Stats.EstRows != n/3+1 {
		t.Fatalf("EstRows = %d, want %d", res.Stats.EstRows, n/3+1)
	}
	if !strings.Contains(res.Stats.String(), "est=101") {
		t.Fatalf("stats line missing estimate: %s", res.Stats.String())
	}
	if mMisestimates.Value() != before+1 {
		t.Fatalf("misestimates_total went %d -> %d, want +1", before, mMisestimates.Value())
	}

	log := d.Cardinality().Misestimates(0)
	if len(log) != 1 {
		t.Fatalf("misestimate log has %d entries, want 1", len(log))
	}
	m := log[0]
	wantQ := float64(n/3+1) / 5
	if m.View != "rows" || m.Est != int64(n/3+1) || m.Actual != 5 || m.QError != wantQ {
		t.Fatalf("misestimate = %+v, want q-error %v", m, wantQ)
	}
	if !strings.Contains(m.Shape, "INDEX RANGE SCAN row(id)") {
		t.Fatalf("misestimate shape = %q", m.Shape)
	}
	// The log links back to the archived record.
	if rec, ok := arch.Run(m.RunID); !ok || rec.View != "rows" {
		t.Fatalf("misestimate RunID %d does not resolve in the archive", m.RunID)
	}

	worst := d.Cardinality().Worst("rows", 3)
	if len(worst) != 1 || worst[0].MaxQError != wantQ || worst[0].Misestimates != 1 {
		t.Fatalf("Worst = %+v", worst)
	}

	// An honest probe (q=1) must NOT be flagged.
	if _, err := ct.Run(context.Background(), WithWhere("@id = 7")); err != nil {
		t.Fatal(err)
	}
	if mMisestimates.Value() != before+1 {
		t.Fatal("honest probe bumped misestimates_total")
	}

	// ExplainAnalyze surfaces the worst offenders.
	out, err := ct.ExplainAnalyze(context.Background(), WithWhere("@id = 7"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cardinality misestimates (q-error > 2):") ||
		!strings.Contains(out, "INDEX RANGE SCAN row(id)") ||
		!strings.Contains(out, "max-q-error=20.2") {
		t.Fatalf("ExplainAnalyze missing misestimate block:\n%s", out)
	}
}

func TestPlanCacheEntries(t *testing.T) {
	d := newKeyedDB(t, 10)
	const sheet2 = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="row"><r2><xsl:value-of select="name"/></r2></xsl:template>
</xsl:stylesheet>`

	ct1, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompileTransform("rows", keyedSheet); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := d.CompileTransform("rows", sheet2); err != nil {
		t.Fatal(err)
	}

	entries := d.PlanCacheEntries()
	if len(entries) != 2 {
		t.Fatalf("PlanCacheEntries returned %d, want 2", len(entries))
	}
	var hitTotal int64
	for _, e := range entries {
		if e.View != "rows" || e.Strategy != "sql-rewrite" || e.Misses != 1 {
			t.Fatalf("entry = %+v", e)
		}
		if len(e.StylesheetHash) != 12 || e.CompileWall <= 0 || e.Age < 0 {
			t.Fatalf("entry bookkeeping = %+v", e)
		}
		hitTotal += e.Hits
	}
	if hitTotal != 1 {
		t.Fatalf("cache hits across entries = %d, want 1", hitTotal)
	}
	if entries[0].StylesheetHash >= entries[1].StylesheetHash {
		t.Fatalf("entries not sorted: %q, %q", entries[0].StylesheetHash, entries[1].StylesheetHash)
	}

	// A view redefinition forces a recompile; the per-key miss count
	// persists across the eviction.
	if err := d.ReplaceXMLView(keyedViewDef()); err != nil {
		t.Fatal(err)
	}
	if _, err := ct1.Run(context.Background()); err != nil { // recompiles
		t.Fatal(err)
	}
	entries = d.PlanCacheEntries()
	found := false
	for _, e := range entries {
		if e.ViewVersion > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recompiled entry after view replacement: %+v", entries)
	}
}

// TestConsoleEndToEnd drives the full loop the debug console exists for:
// enable history, run sampled transforms, then read the runs, plans,
// misestimates and metrics back over HTTP exactly as an operator's curl
// would.
func TestConsoleEndToEnd(t *testing.T) {
	d := newKeyedDB(t, 300)
	d.EnableRunHistory(0)
	ct, err := d.CompileTransform("rows", keyedSheet, WithTraceSampling(SampleAlways()))
	if err != nil {
		t.Fatal(err)
	}
	runN(t, ct, 3)
	if _, err := ct.Run(context.Background(), WithWhere("@id < 5")); err != nil { // misestimate
		t.Fatal(err)
	}

	srv := httptest.NewServer(d.ConsoleHandler())
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	var runs []obs.RunRecord
	if err := json.Unmarshal([]byte(get("/runs?n=10")), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 || !runs[0].Sampled || runs[0].Trace == "" {
		t.Fatalf("/runs = %d records, newest sampled=%v", len(runs), runs[0].Sampled)
	}
	one := get(fmt.Sprintf("/runs/%d", runs[0].ID))
	if !strings.Contains(one, `"trace"`) || !strings.Contains(one, "sql-rewrite") {
		t.Fatalf("/runs/%d = %s", runs[0].ID, one)
	}

	var plans struct {
		Cache      []PlanCacheEntry    `json:"cache"`
		Aggregates []obs.PlanAggregate `json:"aggregates"`
	}
	if err := json.Unmarshal([]byte(get("/plans")), &plans); err != nil {
		t.Fatal(err)
	}
	if len(plans.Cache) != 1 || plans.Cache[0].Strategy != "sql-rewrite" ||
		len(plans.Aggregates) != 1 || plans.Aggregates[0].Calls != 4 {
		t.Fatalf("/plans = %+v", plans)
	}

	mis := get("/misestimates")
	if !strings.Contains(mis, "INDEX RANGE SCAN row(id)") || !strings.Contains(mis, `"q_error"`) {
		t.Fatalf("/misestimates = %s", mis)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "xsltdb_misestimates_total") || !strings.Contains(metrics, "xsltdb_runs_total") {
		t.Fatalf("/metrics missing engine instruments:\n%s", metrics)
	}
}

// TestActiveCursorsGaugeReturnsToZero audits the active_cursors gauge for
// leaks on every exit path: normal drain, mid-stream fault, mid-stream
// panic (containment), and Close racing an in-flight Next. Run under -race.
func TestActiveCursorsGaugeReturnsToZero(t *testing.T) {
	d := newKeyedDB(t, 50)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	base := mActiveCursors.Value()
	check := func(label string) {
		t.Helper()
		if got := mActiveCursors.Value(); got != base {
			t.Fatalf("%s: active_cursors = %d, want %d", label, got, base)
		}
	}

	// Normal drain.
	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if mActiveCursors.Value() != base+1 {
		t.Fatalf("gauge not incremented on open: %d", mActiveCursors.Value())
	}
	if _, err := cur.Collect(); err != nil {
		t.Fatal(err)
	}
	check("drained cursor")

	// Mid-stream fault: the 3rd Next fails terminally.
	faultpoint.EnableAfter("sqlxml.query.next", 2, errBoom)
	cur, err = ct.OpenCursor(context.Background())
	if err != nil {
		faultpoint.Reset()
		t.Fatal(err)
	}
	for {
		if _, err := cur.Next(); err != nil {
			if !errors.Is(err, errBoom) {
				faultpoint.Reset()
				t.Fatalf("fault surfaced as %v", err)
			}
			break
		}
	}
	faultpoint.Reset()
	check("faulted cursor")

	// Mid-stream panic: containment must still release exactly once.
	faultpoint.EnableAfter("sqlxml.query.next", 2, nil)
	faultpoint.EnablePanic("sqlxml.query.next")
	cur, err = ct.OpenCursor(context.Background())
	if err != nil {
		faultpoint.Reset()
		t.Fatal(err)
	}
	for {
		if _, err := cur.Next(); err != nil {
			if err != io.EOF && !errors.Is(err, ErrInternal) {
				faultpoint.Reset()
				t.Fatalf("panic surfaced as %v", err)
			}
			break
		}
	}
	faultpoint.Reset()
	check("panicked cursor")

	// Close racing in-flight Nexts, repeatedly.
	for i := 0; i < 20; i++ {
		cur, err := ct.OpenCursor(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := cur.Next(); err != nil {
					return
				}
			}
		}()
		cur.Close()
		wg.Wait()
	}
	check("close-during-next cursors")
}

// normalizeAnalyze strips the run-to-run variance out of an EXPLAIN ANALYZE
// rendering: wall times become DUR, nondeterministic counters become N, and
// runs of spaces collapse (the tree aligns its duration column, so padding
// width varies with the duration text).
var (
	durationRe = regexp.MustCompile(`\b\d+(\.\d+)?(ns|µs|ms|m|h|s)+\b`)
	counterRe  = regexp.MustCompile(`\b(gov_ticks|gov-ticks|eval_steps|func_calls|templates_applied)=\d+`)
	spacesRe   = regexp.MustCompile(`  +`)
)

func normalizeAnalyze(s string) string {
	s = durationRe.ReplaceAllString(s, "DUR")
	s = counterRe.ReplaceAllString(s, "${1}=N")
	s = spacesRe.ReplaceAllString(s, " ")
	return s
}

// TestChainedExplainAnalyzeGolden pins the chained-pipeline EXPLAIN ANALYZE
// rendering: header from the first stage, the chain summary, the actual
// stats line, and both operator trees ("run" for the view stage, "chain"
// with one span per chained stage).
func TestChainedExplainAnalyzeGolden(t *testing.T) {
	d := newKeyedDB(t, 3)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	const upperSheet = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="hit"><HIT><xsl:value-of select="."/></HIT></xsl:template>
</xsl:stylesheet>`
	chain, err := ct.Then(upperSheet)
	if err != nil {
		t.Fatal(err)
	}

	out, err := chain.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeAnalyze(out)

	const golden = `strategy: sql-rewrite
plan cache: cached=true entries=1 hits=0 misses=1
chain: 1 stage(s) after the view stage (1 rewritten, 0 interpreted)
actual: rows=3 scanned=3 probes=0 range-scans=0 full-scans=1 emitted=3 filtered=0 recompiles=0 compile=DUR exec=DUR batches=1 morsels=0 access="TABLE SCAN row" est=3 gov-ticks=N
run DUR rows_out=3 view=rows access_path="TABLE SCAN row"
├─ compile DUR cache=fresh
└─ sql-rewrite DUR rows_out=3 gov_ticks=N
 ├─ scan DUR calls=2 rows_out=3 path="TABLE SCAN row" est_rows=3 batch_size=1024 workers=1
 ├─ construct DUR calls=3 rows_in=3 rows_out=3
 └─ serialize DUR rows_in=3 rows_out=3
chain DUR
└─ stage-1 DUR calls=3 rows_in=3 rows_out=3 mode=xquery-rewrite
`
	if got != golden {
		t.Fatalf("chained EXPLAIN ANALYZE drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
