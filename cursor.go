package xsltdb

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/relstore"
	"repro/internal/xquery"
	"repro/internal/xslt"
)

// Cursor streams a transformation one driving row at a time (the paper's §6
// iterator-based pull evaluation): nothing is materialized up front — each
// Next pulls one row through the relstore access path, constructs its XML,
// and applies the strategy's evaluation. Use it when results are consumed
// incrementally or the full result set should not be held in memory.
//
// The protocol is Next until io.EOF, then Close. Next returns the context's
// error if the context is cancelled mid-iteration, and ErrCursorClosed
// after Close. A cursor is not safe for concurrent use; open one cursor per
// goroutine instead (their stats never share a counter).
type Cursor struct {
	ctx context.Context
	db  *Database

	// pull yields the next serialized row for the strategy, io.EOF at end.
	pull func() (string, error)

	sink         relstore.Stats
	rowsProduced int64
	recompiles   int64
	compileWall  time.Duration
	execWall     time.Duration

	err     error // sticky terminal condition (io.EOF, ctx error, eval error)
	closed  bool
	flushed bool
}

// OpenCursor begins a streaming execution of the transform. A transform
// whose view was redefined since compilation recompiles automatically first
// (§7.3). The SQL strategy streams straight off the plan's access path;
// XQuery and no-rewrite materialize ONE view row per Next.
func (ct *CompiledTransform) OpenCursor(ctx context.Context) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	st, recompiled, err := ct.ensureFresh()
	if err != nil {
		return nil, err
	}
	c := &Cursor{ctx: ctx, db: ct.db, recompiles: int64(recompiled), compileWall: time.Since(start)}

	switch st.strategy {
	case StrategySQL:
		qc, err := ct.db.exec.OpenQueryCursor(st.plan, &c.sink)
		if err != nil {
			return nil, err
		}
		c.pull = func() (string, error) {
			doc, err := qc.Next()
			if err != nil {
				return "", err
			}
			return serialize(doc), nil
		}

	case StrategyXQuery:
		vc, err := ct.db.exec.OpenViewCursor(st.view, &c.sink)
		if err != nil {
			return nil, err
		}
		module := st.rewrite.Module
		row := 0
		c.pull = func() (string, error) {
			doc, err := vc.Next()
			if err != nil {
				return "", err
			}
			seq, err := xquery.EvalModule(module, xquery.NewEnv(xquery.Item(doc)))
			if err != nil {
				return "", fmt.Errorf("xsltdb: row %d: %w", row, err)
			}
			row++
			return xquery.SerializeSeq(seq), nil
		}

	default: // StrategyNoRewrite
		vc, err := ct.db.exec.OpenViewCursor(st.view, &c.sink)
		if err != nil {
			return nil, err
		}
		eng := xslt.New(st.sheet)
		row := 0
		c.pull = func() (string, error) {
			doc, err := vc.Next()
			if err != nil {
				return "", err
			}
			s, err := eng.TransformToString(doc)
			if err != nil {
				return "", fmt.Errorf("xsltdb: row %d: %w", row, err)
			}
			row++
			return s, nil
		}
	}
	return c, nil
}

// OpenCursor streams the whole pipeline: each driving row is pulled through
// the first stage's cursor and then through every chained stage before the
// next row is touched.
func (c *ChainedTransform) OpenCursor(ctx context.Context) (*Cursor, error) {
	cur, err := c.first.OpenCursor(ctx)
	if err != nil {
		return nil, err
	}
	stages := c.stages
	inner := cur.pull
	cur.pull = func() (string, error) {
		row, err := inner()
		if err != nil {
			return "", err
		}
		return applyStages(stages, row)
	}
	return cur, nil
}

// Next returns the next serialized result row. It returns io.EOF at end of
// stream, the context's error if the cursor's context was cancelled, and
// ErrCursorClosed after Close. Any terminal error is sticky.
func (c *Cursor) Next() (string, error) {
	if c.closed {
		return "", ErrCursorClosed
	}
	if c.err != nil {
		return "", c.err
	}
	if err := c.ctx.Err(); err != nil {
		c.terminate(err)
		return "", err
	}
	start := time.Now()
	s, err := c.pull()
	c.execWall += time.Since(start)
	if err != nil {
		c.terminate(err)
		return "", err
	}
	c.rowsProduced++
	return s, nil
}

// terminate records the sticky terminal condition and merges this run's
// counters into the database-wide aggregate.
func (c *Cursor) terminate(err error) {
	c.err = err
	c.flush()
}

func (c *Cursor) flush() {
	if !c.flushed {
		c.flushed = true
		c.db.exec.AddStats(&c.sink)
	}
}

// Close releases the cursor. Closing early — before io.EOF — is the way to
// abandon a partially-consumed stream: the remaining rows are never pulled
// and this run's counters are merged into the aggregate at that point.
// Close is idempotent.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.pull = nil // release plan/iterator references
	c.flush()
	return nil
}

// Stats returns a snapshot of this cursor's per-run statistics; valid both
// mid-iteration and after Close.
func (c *Cursor) Stats() ExecStats {
	es := ExecStats{
		RowsProduced: c.rowsProduced,
		Recompiles:   c.recompiles,
		CompileWall:  c.compileWall,
		ExecWall:     c.execWall,
	}
	es.mergeSink(c.sink.Snapshot())
	return es
}

// Collect drains the cursor into a slice and closes it — Run semantics over
// a cursor; mostly useful in tests and small tools.
func (c *Cursor) Collect() ([]string, error) {
	defer c.Close()
	var out []string
	for {
		row, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
}
