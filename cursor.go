package xsltdb

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xquery"
	"repro/internal/xslt"
)

// Cursor streams a transformation one driving row at a time (the paper's §6
// iterator-based pull evaluation): nothing is materialized up front — each
// Next pulls one row through the relstore access path, constructs its XML,
// and applies the strategy's evaluation. Use it when results are consumed
// incrementally or the full result set should not be held in memory.
//
// The protocol is Next until io.EOF, then Close. Next returns ErrCanceled
// (also matching the underlying context error) if the cursor's context is
// cancelled or its WithTimeout expires mid-iteration, ErrLimitExceeded when
// a WithMaxRows/WithMaxOutputBytes budget is exhausted, and ErrCursorClosed
// after Close. Any terminal error is sticky.
//
// A cursor is not safe for concurrent Next calls — open one cursor per
// goroutine instead (their stats never share a counter) — but Close may
// race an in-flight Next from another goroutine: Close cancels the run so
// the Next aborts promptly, and the underlying iterators and stats are
// released exactly once no matter how the race lands.
type Cursor struct {
	ctx    context.Context
	cancel context.CancelFunc
	db     *Database
	gov    *governor.G
	brk    *breaker

	// pull yields the next serialized row for the strategy, io.EOF at end.
	// It is captured by Next before releasing mu and runs outside the lock,
	// so a racing Close is never blocked behind a slow row.
	pull func() (string, error)

	strategy Strategy
	panics   atomic.Int64 // recovered pull panics (pull runs outside mu)

	// spec carries the run options down to the executor; accessPath receives
	// the chosen driving access path (written at open time, before Next can
	// run).
	spec       *sqlxml.RunSpec
	accessPath string

	// Observability: trace is the run's trace (the caller's WithTrace, or
	// the cursor's own when only a slow threshold demanded one), root the
	// cursor-lifetime span, attempt the winning strategy's span. slowTh and
	// slowSink are copied from the transform's options at open time.
	trace    *obs.Trace
	ownTrace bool
	root     *obs.Span
	attempt  *obs.Span
	viewName string
	slowTh   time.Duration
	slowSink func(SlowRun)

	// Archive bookkeeping: opened is the cursor's birth time (RunRecord
	// start), sampling/sampled are the trace-sampling policy and its
	// open-time decision, pinID the snapshot-pin handle held for the
	// cursor's lifetime.
	opened   time.Time
	sampling TraceSampling
	sampled  bool
	pinID    uint64

	mu           sync.Mutex
	sink         relstore.Stats
	rowsProduced int64
	recompiles   int64
	compileWall  time.Duration
	execWall     time.Duration
	degradations int64
	breakerSkips int64
	breakerTrips int64
	err          error // sticky terminal condition (io.EOF, governance, eval error)
	closed       bool

	releaseOnce sync.Once
}

// OpenCursor begins a streaming execution of the transform. A transform
// whose view was redefined since compilation recompiles automatically first
// (§7.3). The SQL strategy streams straight off the plan's access path;
// XQuery and no-rewrite materialize ONE view row per Next.
//
// RunOptions parameterize the stream exactly as they do Run: WithParam
// binds variables, WithWhere adds driving predicates (pushed down to the
// access path), WithoutPushdown forces the full-scan baseline.
//
// The strategy is fixed at open time: strategies whose circuit breaker is
// open are skipped, and a strategy that fails (or panics) while opening
// degrades to the next one in the chain. Mid-stream failures terminate the
// cursor — a half-delivered stream cannot be transparently restarted on a
// weaker strategy without re-emitting rows.
func (ct *CompiledTransform) OpenCursor(ctx context.Context, opts ...RunOption) (*Cursor, error) {
	if err := ct.db.checkOpen(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ro := buildRunOptions(opts)
	hist := ct.db.history.Load()
	sampled := ct.opts.Sampling.wantTrace(hist)
	tr := ro.trace
	ownTrace := false
	if tr == nil && (sampled || (ct.opts.SlowThreshold > 0 && ct.opts.SlowSink != nil)) {
		tr = obs.New()
		ownTrace = true
	}
	releaseTrace := func() {
		if ownTrace {
			tr.Release()
		}
	}

	start := time.Now()
	root := tr.Start("cursor")
	if root != nil {
		root.SetAttr("view", ct.viewName)
	}
	compileSp := root.Start("compile")
	st, recompiled, err := ct.ensureFresh(compileSp)
	compileSp.End()
	if err != nil {
		root.Fail(err)
		root.End()
		releaseTrace()
		return nil, err
	}
	spec, access, err := ct.db.runSpec(st, ro, false)
	if err != nil {
		root.Fail(err)
		root.End()
		releaseTrace()
		return nil, err
	}

	var cancel context.CancelFunc
	if ct.opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, ct.opts.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	g := governor.New(ctx).Limits(ct.opts.MaxRows, ct.opts.MaxOutputBytes, ct.opts.MaxRecursionDepth)
	c := &Cursor{
		ctx: ctx, cancel: cancel, db: ct.db, gov: g, brk: st.brk,
		spec:       spec,
		recompiles: int64(recompiled), compileWall: time.Since(start),
		trace: tr, ownTrace: ownTrace, root: root,
		viewName: ct.viewName, slowTh: ct.opts.SlowThreshold, slowSink: ct.opts.SlowSink,
		opened: start, sampling: ct.opts.Sampling, sampled: sampled,
	}

	chain := st.chain(ct.opts)
	var lastErr error
	for i, s := range chain {
		last := i == len(chain)-1
		if !last && !st.brk.allow(s) {
			c.breakerSkips++
			if root != nil {
				sk := root.Start(s.String())
				sk.SetAttr("breaker", "open")
				sk.SetAttr("skipped", "true")
				sk.End()
			}
			continue
		}
		attempt := root.Start(s.String())
		if attempt != nil {
			if bs := st.brk.state(s); bs != "closed" {
				attempt.SetAttr("breaker", bs)
			}
		}
		c.spec.Span = attempt
		pull, err := c.openStrategy(st, s, ct.opts)
		if err == nil {
			c.strategy = s
			c.attempt = attempt
			c.accessPath = *access
			c.pull = c.governed(pull)
			if !ct.db.registerCursor(c) {
				// Close raced the open: fail the cursor immediately instead
				// of leaving an untracked stream over a closed database.
				c.cancel()
				root.End()
				releaseTrace()
				return nil, ErrDatabaseClosed
			}
			mActiveCursors.Inc()
			c.pinID = snapPins.pin()
			return c, nil
		}
		attempt.Fail(err)
		attempt.End()
		if governor.IsGovernance(err) {
			cancel()
			root.Fail(err)
			root.End()
			releaseTrace()
			return nil, err
		}
		if st.brk.failure(s) {
			c.breakerTrips++
		}
		lastErr = err
		if !last {
			c.degradations++
			if root != nil {
				root.SetAttr("degraded_from", s.String())
				root.SetAttr("degradation_reason", err.Error())
			}
		}
	}
	cancel()
	root.Fail(lastErr)
	root.End()
	releaseTrace()
	return nil, lastErr
}

// openStrategy builds the raw per-row pull for one strategy; open-time
// panics are contained so the chain can degrade past a broken strategy.
func (c *Cursor) openStrategy(st *planState, s Strategy, opts compileOptions) (pull func() (string, error), err error) {
	defer func() {
		if r := recover(); r != nil {
			c.panics.Add(1)
			pull, err = nil, fmt.Errorf("xsltdb: %s: %w", s, &InternalError{Panic: r, Stack: debug.Stack()})
		}
	}()

	switch s {
	case StrategySQL:
		qc, err := c.db.exec.OpenQueryCursorSpec(st.plan, &c.sink, c.gov, c.spec)
		if err != nil {
			return nil, err
		}
		serSp := c.spec.Span.Start("serialize")
		return func() (string, error) {
			doc, err := qc.Next()
			if err != nil {
				return "", err
			}
			if serSp == nil {
				return serialize(doc), nil
			}
			start := time.Now()
			out := serialize(doc)
			serSp.ObserveSince(start)
			serSp.AddRowsOut(1)
			return out, nil
		}, nil

	case StrategyXQuery:
		vc, err := c.db.exec.OpenViewCursorSpec(st.view, st.drivingWhere(), &c.sink, c.gov, c.spec)
		if err != nil {
			return nil, err
		}
		evalSp := c.spec.Span.Start("xquery-eval")
		var meter *xquery.EvalStats
		if evalSp != nil {
			meter = new(xquery.EvalStats)
		}
		module := st.rewrite.Module
		params := c.spec.Params
		row := 0
		return func() (string, error) {
			doc, err := vc.Next()
			if err != nil {
				return "", err
			}
			var start time.Time
			if evalSp != nil {
				start = time.Now()
			}
			env := bindEnv(xquery.NewEnv(xquery.Item(doc)), params)
			seq, err := xquery.EvalModule(module, env.Govern(c.gov).Meter(meter))
			if err != nil {
				evalSp.Fail(err)
				return "", fmt.Errorf("xsltdb: row %d: %w", row, err)
			}
			row++
			out := xquery.SerializeSeq(seq)
			if evalSp != nil {
				evalSp.ObserveSince(start)
				evalSp.AddRowsOut(1)
				evalSp.SetAttr("eval_steps", meter.Steps.Load())
			}
			return out, nil
		}, nil

	default: // StrategyNoRewrite
		vc, err := c.db.exec.OpenViewCursorSpec(st.view, st.drivingWhere(), &c.sink, c.gov, c.spec)
		if err != nil {
			return nil, err
		}
		eng := xslt.New(st.sheet).Govern(c.gov)
		interpSp := c.spec.Span.Start("xslt-interpret")
		row := 0
		return func() (string, error) {
			doc, err := vc.Next()
			if err != nil {
				return "", err
			}
			var start time.Time
			if interpSp != nil {
				start = time.Now()
			}
			s, err := eng.TransformToString(doc)
			if err != nil {
				interpSp.Fail(err)
				return "", fmt.Errorf("xsltdb: row %d: %w", row, err)
			}
			row++
			if interpSp != nil {
				interpSp.ObserveSince(start)
				interpSp.AddRowsOut(1)
				interpSp.SetAttr("templates_applied", eng.TemplatesApplied())
			}
			return s, nil
		}, nil
	}
}

// governed wraps a raw pull with the per-row governance work: a sticky
// cancellation/limit check before the pull, row/output charging after it,
// and panic containment around the whole step.
func (c *Cursor) governed(pull func() (string, error)) func() (string, error) {
	return func() (s string, err error) {
		defer func() {
			if r := recover(); r != nil {
				c.panics.Add(1)
				s, err = "", fmt.Errorf("xsltdb: %w", &InternalError{Panic: r, Stack: debug.Stack()})
			}
		}()
		if err := c.gov.Check(); err != nil {
			return "", err
		}
		s, err = pull()
		if err != nil {
			return "", err
		}
		if err := c.gov.AddRow(); err != nil {
			return "", err
		}
		if err := c.gov.AddOutput(len(s)); err != nil {
			return "", err
		}
		return s, nil
	}
}

// OpenCursor streams the whole pipeline: each driving row is pulled through
// the first stage's cursor and then through every chained stage before the
// next row is touched. RunOptions apply to the first (view-backed) stage.
// The chained stages honor the first stage's full governance options — a
// separate governor charges the pipeline's FINAL rows against MaxRows and
// MaxOutputBytes, since a chained stage can expand its input past what the
// first stage's own accounting saw.
func (c *ChainedTransform) OpenCursor(ctx context.Context, opts ...RunOption) (*Cursor, error) {
	cur, err := c.first.OpenCursor(ctx, opts...)
	if err != nil {
		return nil, err
	}
	stages := c.stages
	inner := cur.pull
	fo := c.first.opts
	g := governor.New(cur.ctx).Limits(fo.MaxRows, fo.MaxOutputBytes, fo.MaxRecursionDepth)
	sps, chainSp := stageSpans(cur.trace, stages)
	cur.pull = func() (string, error) {
		row, err := inner()
		if err != nil {
			chainSp.End()
			return "", err
		}
		out, err := applyStages(stages, sps, row, g)
		if err != nil {
			chainSp.End()
			return "", err
		}
		if err := g.AddRow(); err != nil {
			return "", err
		}
		if err := g.AddOutput(len(out)); err != nil {
			return "", err
		}
		return out, nil
	}
	return cur, nil
}

// Next returns the next serialized result row. It returns io.EOF at end of
// stream, an ErrCanceled-wrapping error if the cursor's context was
// cancelled, and ErrCursorClosed after Close. Any terminal error is sticky.
func (c *Cursor) Next() (string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", ErrCursorClosed
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return "", err
	}
	pull := c.pull
	c.mu.Unlock()

	start := time.Now()
	s, err := pull()
	wall := time.Since(start)

	c.mu.Lock()
	c.execWall += wall
	if c.closed {
		// Close won the race while the pull was in flight; Close already
		// released the cursor, so just report it gone.
		c.mu.Unlock()
		return "", ErrCursorClosed
	}
	if err != nil {
		c.terminateLocked(err)
		c.mu.Unlock()
		c.release()
		return "", err
	}
	c.rowsProduced++
	c.mu.Unlock()
	return s, nil
}

// terminateLocked records the sticky terminal condition and reports the
// outcome to the plan's circuit breaker. Callers hold c.mu and must call
// c.release() AFTER unlocking — release re-acquires the mutex for its stats
// snapshot and runs the slow-run sink outside any lock.
func (c *Cursor) terminateLocked(err error) {
	c.err = err
	switch {
	case err == io.EOF:
		c.brk.success(c.strategy)
	case governor.IsGovernance(err):
		// A governance verdict says nothing about the strategy's health.
	default:
		if c.brk.failure(c.strategy) {
			c.breakerTrips++
		}
	}
}

// release cancels the run, merges this cursor's counters into the
// database-wide aggregate, finishes the cursor's spans, records run metrics,
// and fires the slow-run sink — exactly once over the cursor's lifetime
// however Close, end-of-stream, and errors interleave. Must be called
// WITHOUT c.mu held: it takes the lock briefly for the stats snapshot and
// runs the sink callback (which may call Stats) unlocked.
func (c *Cursor) release() {
	c.releaseOnce.Do(func() {
		c.cancel()
		c.db.unregisterCursor(c)
		c.db.exec.AddStats(&c.sink)
		mActiveCursors.Dec()
		snapPins.unpin(c.pinID)

		c.mu.Lock()
		es := c.statsLocked()
		err := c.err
		c.mu.Unlock()

		outcome := err
		if outcome == io.EOF {
			outcome = nil
		}
		if c.attempt != nil {
			c.attempt.SetAttr("gov_ticks", c.gov.Ticks())
			c.attempt.AddRowsOut(es.RowsProduced)
			if outcome != nil {
				c.attempt.Fail(outcome)
			}
			c.attempt.End()
		}
		if c.root != nil {
			if es.AccessPath != "" {
				c.root.SetAttr("access_path", es.AccessPath)
			}
			c.root.AddRowsOut(es.RowsProduced)
			if outcome != nil {
				c.root.Fail(outcome)
			}
			c.root.End()
		}
		recordRunMetrics(&es, outcome)
		emitSlowRun(c.slowTh, c.slowSink, c.viewName, c.trace, &es, outcome)
		// err (pre-normalization) distinguishes a drained stream (io.EOF:
		// the actual row count is the true cardinality) from an early Close
		// or failure, where the actual says nothing about the estimate.
		keep := c.sampled && c.sampling.keep(es.CompileWall+es.ExecWall, outcome)
		c.db.archiveRun(c.db.history.Load(), "cursor", c.viewName, c.opened, c.spec, &es, outcome, c.trace, keep, err == io.EOF)
		if c.ownTrace {
			c.trace.Release()
		}
	})
}

// failDatabaseClosed terminates an in-flight cursor because its database
// was closed: the sticky error becomes ErrDatabaseClosed and the cursor is
// released. Unlike an ordinary failure it never counts against the plan's
// circuit breaker — the strategy did nothing wrong — and it is safe to race
// with Next and Close (release runs exactly once).
func (c *Cursor) failDatabaseClosed() {
	c.mu.Lock()
	if c.closed || c.err != nil {
		c.mu.Unlock()
		c.release() // idempotent; covers a cursor terminated but not yet released
		return
	}
	c.err = ErrDatabaseClosed
	c.mu.Unlock()
	c.release()
}

// Close releases the cursor. Closing early — before io.EOF — is the way to
// abandon a partially-consumed stream: the run's context is cancelled (an
// in-flight Next in another goroutine aborts promptly), the remaining rows
// are never pulled, and this run's counters are merged into the aggregate
// at that point. Close is idempotent and safe to call concurrently.
func (c *Cursor) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.pull = nil // release plan/iterator references
	c.mu.Unlock()
	c.release()
	return nil
}

// Stats returns a snapshot of this cursor's per-run statistics; valid both
// mid-iteration and after Close.
func (c *Cursor) Stats() ExecStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsLocked()
}

// statsLocked builds the snapshot; callers hold c.mu.
func (c *Cursor) statsLocked() ExecStats {
	es := ExecStats{
		RowsProduced:    c.rowsProduced,
		AccessPath:      c.accessPath,
		EstRows:         specEstRows(c.spec),
		Recompiles:      c.recompiles,
		CompileWall:     c.compileWall,
		ExecWall:        c.execWall,
		StrategyUsed:    c.strategy,
		Degradations:    c.degradations,
		BreakerSkips:    c.breakerSkips,
		BreakerTrips:    c.breakerTrips,
		PanicsRecovered: c.panics.Load(),
		GovTicks:        int64(c.gov.Ticks()),
	}
	es.mergeSink(c.sink.Snapshot())
	return es
}

// Collect drains the cursor into a slice and closes it — Run semantics over
// a cursor; mostly useful in tests and small tools.
func (c *Cursor) Collect() ([]string, error) {
	defer c.Close()
	var out []string
	for {
		row, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
}
