package xsltdb

// The durability layer: Open(WithDir(dir)) gives a Database whose mutations are
// recorded to a write-ahead log (internal/wal) before they apply to memory,
// and whose state after a crash is rebuilt by replaying that log. The
// record codec lives here: inserts use a compact hand-rolled binary
// encoding (they dominate log volume), view DDL rides on encoding/gob
// (views are deep XMLExpr trees, logged rarely).
//
// Replay determinism rests on one invariant, enforced in xsltdb.go's entry
// points: mutations are validated, then logged, then applied, all under one
// writeMu — so log order equals apply order equals row-id order, and a
// statement that cannot apply never reaches the log.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/wal"
)

// WAL record types. Values are part of the on-disk format — append new
// types, never renumber.
const (
	recCreateTable byte = 1
	recInsert      byte = 2
	recCreateIndex byte = 3
	recCreateView  byte = 4
	recReplaceView byte = 5
)

// Re-exported fsync policies for Open's WithSyncPolicy.
type SyncPolicy = wal.SyncPolicy

const (
	// SyncAlways fsyncs after every logged mutation: an acknowledged write
	// survives any crash.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs every WithSyncEvery mutations (group commit): a
	// crash may lose the unsynced tail, never a synced prefix.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves flushing to the OS — the throughput ceiling, with
	// crash durability to match.
	SyncNever = wal.SyncNever
)

// OpenOption configures Open.
type OpenOption interface {
	applyOpenOption(*openOptions)
}

type openOptionFunc func(*openOptions)

func (f openOptionFunc) applyOpenOption(o *openOptions) { f(o) }

type openOptions struct {
	dir     string
	walOpts wal.Options
	tenants map[string]TenantLimits
}

// WithDir makes the database durable: every mutation is recorded to a
// write-ahead log in dir before it applies, and Open replays that log on
// reopen. Without WithDir the database is purely in-memory.
func WithDir(dir string) OpenOption {
	return openOptionFunc(func(o *openOptions) { o.dir = dir })
}

// WithTenant pre-registers a tenant and its limits at open time; it is
// equivalent to calling RegisterTenant after Open.
func WithTenant(name string, lim TenantLimits) OpenOption {
	return openOptionFunc(func(o *openOptions) {
		if o.tenants == nil {
			o.tenants = map[string]TenantLimits{}
		}
		o.tenants[name] = lim
	})
}

// WithSyncPolicy selects when logged mutations reach stable storage
// (default SyncAlways).
func WithSyncPolicy(p SyncPolicy) OpenOption {
	return openOptionFunc(func(o *openOptions) { o.walOpts.Policy = p })
}

// WithSyncEvery sets the group-commit batch size under SyncInterval
// (default wal.DefaultSyncEvery).
func WithSyncEvery(n int) OpenOption {
	return openOptionFunc(func(o *openOptions) { o.walOpts.SyncEvery = n })
}

// WithSegmentBytes sets the WAL segment rotation threshold (default
// wal.DefaultSegmentBytes).
func WithSegmentBytes(n int64) OpenOption {
	return openOptionFunc(func(o *openOptions) { o.walOpts.SegmentBytes = n })
}

// Open is the single constructor. With no options it returns an empty
// in-memory database. With WithDir(dir) the database is durable: every
// mutation — CreateTable, Insert, CreateIndex, CreateXMLView,
// ReplaceXMLView — is logged to a write-ahead log in dir before it applies,
// so reopening after a crash recovers exactly the committed prefix: a torn
// tail record (a crash mid-write) is truncated away, never half-applied.
// Close the database to sync and release the log; reopening the same dir
// replays it. Durability, sync policy, and tenancy all flow through the
// same OpenOption path.
func Open(opts ...OpenOption) (*Database, error) {
	var oo openOptions
	for _, o := range opts {
		o.applyOpenOption(&oo)
	}
	d := newDatabase()
	for name, lim := range oo.tenants {
		d.tenants[name] = lim
	}
	if oo.dir == "" {
		return d, nil
	}
	oo.walOpts.OnAppend = func(d time.Duration) {
		mWalAppends.Inc()
		mWalAppendSeconds.Observe(d.Seconds())
	}
	oo.walOpts.OnFsync = func(d time.Duration) {
		mWalFsyncs.Inc()
		mWalFsyncSeconds.Observe(d.Seconds())
		if d >= walStallThreshold {
			mWalSlowFsyncs.Inc()
		}
	}
	oo.walOpts.OnRotate = func(d time.Duration) {
		mWalRotations.Inc()
		mWalRotateSeconds.Observe(d.Seconds())
	}
	start := time.Now()
	lg, rs, err := wal.Open(oo.dir, oo.walOpts, d.replayRecord)
	if err != nil {
		return nil, fmt.Errorf("xsltdb: open %s: %w", oo.dir, err)
	}
	mWalReplaySeconds.Observe(time.Since(start).Seconds())
	d.wal = lg
	d.recovery = rs
	return d, nil
}

// RecoveryStats reports what WAL replay found when this database was
// opened: records replayed, torn bytes truncated, segments dropped. Zero
// for an in-memory database.
func (d *Database) RecoveryStats() wal.RecoverStats { return d.recovery }

// replayRecord applies one recovered WAL record through the same in-memory
// paths the original mutation used. A record that fails to decode or apply
// aborts recovery: the log was CRC-clean, so failure means a codec bug or a
// log written by an incompatible version — silently skipping would serve a
// state no execution ever produced.
func (d *Database) replayRecord(typ byte, payload []byte) error {
	switch typ {
	case recCreateTable:
		name, cols, err := decodeCreateTable(payload)
		if err != nil {
			return err
		}
		_, err = d.rel.CreateTable(name, cols...)
		return err
	case recInsert:
		table, row, err := decodeInsert(payload)
		if err != nil {
			return err
		}
		t := d.rel.Table(table)
		if t == nil {
			return fmt.Errorf("insert into unknown table %q", table)
		}
		_, err = t.Insert(row...)
		return err
	case recCreateIndex:
		table, col, err := decodeCreateIndex(payload)
		if err != nil {
			return err
		}
		t := d.rel.Table(table)
		if t == nil {
			return fmt.Errorf("index on unknown table %q", table)
		}
		return t.CreateIndex(col)
	case recCreateView:
		v, err := decodeView(payload)
		if err != nil {
			return err
		}
		return d.applyCreateXMLView(v)
	case recReplaceView:
		v, err := decodeView(payload)
		if err != nil {
			return err
		}
		return d.applyReplaceXMLView(v)
	}
	return fmt.Errorf("unknown record type %d", typ)
}

// Log helpers — called by the facade entry points after validation, before
// apply, under writeMu.

func (d *Database) logCreateTable(name string, cols []TableColumn) error {
	return d.wal.Append(recCreateTable, encodeCreateTable(name, cols))
}

func (d *Database) logInsert(table string, row []relstore.Value) error {
	payload, err := encodeInsert(table, row)
	if err != nil {
		return err
	}
	return d.wal.Append(recInsert, payload)
}

func (d *Database) logCreateIndex(table, col string) error {
	var b []byte
	b = appendString(b, table)
	b = appendString(b, col)
	return d.wal.Append(recCreateIndex, b)
}

func (d *Database) logView(typ byte, v *ViewDef) error {
	payload, err := encodeView(v)
	if err != nil {
		return err
	}
	return d.wal.Append(typ, payload)
}

// --- binary codec (tables, inserts, indexes) ---

// Value tags of the insert encoding.
const (
	valNil    byte = 0
	valInt    byte = 1
	valFloat  byte = 2
	valString byte = 3
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func encodeCreateTable(name string, cols []TableColumn) []byte {
	var b []byte
	b = appendString(b, name)
	b = binary.AppendUvarint(b, uint64(len(cols)))
	for _, c := range cols {
		b = appendString(b, c.Name)
		b = append(b, byte(c.Type))
	}
	return b
}

func decodeCreateTable(b []byte) (string, []TableColumn, error) {
	name, b, err := readString(b)
	if err != nil {
		return "", nil, fmt.Errorf("create-table record: %w", err)
	}
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", nil, fmt.Errorf("create-table record: truncated column count")
	}
	b = b[sz:]
	cols := make([]TableColumn, 0, n)
	for i := uint64(0); i < n; i++ {
		var cname string
		cname, b, err = readString(b)
		if err != nil || len(b) < 1 {
			return "", nil, fmt.Errorf("create-table record: truncated column %d", i)
		}
		cols = append(cols, TableColumn{Name: cname, Type: relstore.ColType(b[0])})
		b = b[1:]
	}
	return name, cols, nil
}

func encodeInsert(table string, row []relstore.Value) ([]byte, error) {
	var b []byte
	b = appendString(b, table)
	b = binary.AppendUvarint(b, uint64(len(row)))
	for i, v := range row {
		switch x := v.(type) {
		case nil:
			b = append(b, valNil)
		case int64:
			b = append(b, valInt)
			b = binary.AppendVarint(b, x)
		case float64:
			b = append(b, valFloat)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		case string:
			b = append(b, valString)
			b = appendString(b, x)
		default:
			// CoerceRow ran before us, so only coerced types reach here; a
			// miss is a facade bug, surfaced before anything hits the log.
			return nil, fmt.Errorf("xsltdb: cannot log value %d of type %T", i, v)
		}
	}
	return b, nil
}

func decodeInsert(b []byte) (string, []relstore.Value, error) {
	table, b, err := readString(b)
	if err != nil {
		return "", nil, fmt.Errorf("insert record: %w", err)
	}
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", nil, fmt.Errorf("insert record: truncated value count")
	}
	b = b[sz:]
	row := make([]relstore.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 1 {
			return "", nil, fmt.Errorf("insert record: truncated value %d", i)
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case valNil:
			row = append(row, nil)
		case valInt:
			x, sz := binary.Varint(b)
			if sz <= 0 {
				return "", nil, fmt.Errorf("insert record: truncated int value %d", i)
			}
			b = b[sz:]
			row = append(row, x)
		case valFloat:
			if len(b) < 8 {
				return "", nil, fmt.Errorf("insert record: truncated float value %d", i)
			}
			row = append(row, math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case valString:
			var s string
			s, b, err = readString(b)
			if err != nil {
				return "", nil, fmt.Errorf("insert record: value %d: %w", i, err)
			}
			row = append(row, s)
		default:
			return "", nil, fmt.Errorf("insert record: unknown value tag %d", tag)
		}
	}
	return table, row, nil
}

func decodeCreateIndex(b []byte) (string, string, error) {
	table, b, err := readString(b)
	if err != nil {
		return "", "", fmt.Errorf("create-index record: %w", err)
	}
	col, _, err := readString(b)
	if err != nil {
		return "", "", fmt.Errorf("create-index record: %w", err)
	}
	return table, col, nil
}

// --- gob codec (view DDL) ---

// viewRecord wraps the ViewDef for gob: registering the wrapper (rather
// than encoding the interface-typed Body directly) keeps the stream
// self-describing under schema growth.
type viewRecord struct {
	Def *sqlxml.ViewDef
}

func init() {
	// XMLExpr implementers (pointer receivers — views hold pointers).
	gob.Register(&sqlxml.Element{})
	gob.Register(&sqlxml.Column{})
	gob.Register(&sqlxml.Literal{})
	gob.Register(&sqlxml.Concat{})
	gob.Register(&sqlxml.Agg{})
	gob.Register(&sqlxml.ScalarAgg{})
	gob.Register(&sqlxml.Cond{})
	gob.Register(&sqlxml.SubQuery{})
	// Concrete types a Pred.Val interface can hold.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(relstore.ParamValue(""))
}

func encodeView(v *ViewDef) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(viewRecord{Def: v}); err != nil {
		return nil, fmt.Errorf("xsltdb: encoding view %q: %w", v.Name, err)
	}
	return buf.Bytes(), nil
}

func decodeView(b []byte) (*ViewDef, error) {
	var rec viewRecord
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("view record: %w", err)
	}
	if rec.Def == nil {
		return nil, fmt.Errorf("view record: empty definition")
	}
	return rec.Def, nil
}
