// Deptemp walks through the paper's running examples end to end:
//
//	Example 1 (§2.1): XMLTransform over the dept_emp view — showing the
//	    intermediate XQuery (Table 8), the final SQL/XML (Table 7), the
//	    physical plan, and the Table 6 result.
//	Example 2 (§2.2): an XQuery over the transformation's OUTPUT composes
//	    statically with the rewrite, collapsing to Table 11.
//
// It also times the three execution strategies against each other on a
// scaled-up emp table so the index effect is visible.
//
//	go run ./examples/deptemp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	xsltdb "repro"
	"repro/internal/sqlxml"
	"repro/internal/xslt"
)

func main() {
	db := xsltdb.NewDatabase()
	must(sqlxml.SetupDeptEmp(db.Rel()))
	must(db.CreateXMLView(sqlxml.DeptEmpView()))

	// Scale the emp table up so timings mean something: 50 departments,
	// 200 employees each.
	for d := 100; d < 150; d++ {
		must(db.Insert("dept", int64(d), fmt.Sprintf("DEPT-%d", d), "CITY"))
		for e := 0; e < 200; e++ {
			sal := int64(500 + (e*37)%4500)
			must(db.Insert("emp", int64(d*1000+e), fmt.Sprintf("EMP-%d-%d", d, e), "STAFF", sal, int64(d)))
		}
	}
	must(db.CreateIndex("emp", "sal"))
	must(db.CreateIndex("emp", "deptno"))

	fmt.Println("=== Example 1: the paper's stylesheet (Table 5) over dept_emp ===")
	ct, err := db.CompileTransform("dept_emp", xslt.PaperStylesheet)
	must(err)
	fmt.Println("strategy:          ", ct.Strategy())
	fmt.Println("fully inlined:     ", ct.Inlined())
	fmt.Println("\n--- generated XQuery (compare paper Table 8) ---")
	fmt.Println(ct.XQuery())
	fmt.Println("\n--- generated SQL/XML (compare paper Table 7) ---")
	fmt.Println(ct.SQL())
	fmt.Println("\n--- physical plan ---")
	fmt.Println(ct.ExplainPlan())

	res, err := ct.Run(context.Background())
	must(err)
	fmt.Printf("\nfirst result row (compare paper Table 6):\n%s\n", res.Rows[0])

	fmt.Println("\n=== strategy timings over the scaled data ===")
	for _, s := range []xsltdb.Strategy{xsltdb.StrategySQL, xsltdb.StrategyXQuery, xsltdb.StrategyNoRewrite} {
		c, err := db.CompileTransform("dept_emp", xslt.PaperStylesheet, xsltdb.WithForcedStrategy(s))
		must(err)
		start := time.Now()
		if _, err := c.Run(context.Background()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %v\n", s, time.Since(start))
	}

	fmt.Println("\n=== Example 2: XQuery over the XSLT view (combined optimisation) ===")
	ct2, err := db.CompileTransform("dept_emp", xslt.PaperStylesheet,
		xsltdb.WithOuterPath("table", "tr")) // Table 10: for $tr in ./table/tr return $tr
	must(err)
	fmt.Println("--- optimal SQL/XML (compare paper Table 11) ---")
	fmt.Println(ct2.SQL())
	res2, err := ct2.Run(context.Background())
	must(err)
	fmt.Printf("\nfirst combined result row:\n%s\n", res2.Rows[0])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
