// Xsltmarkreport runs the whole 40-case XSLTMark-style suite and prints a
// per-case report: which translation mode each case compiled to, whether it
// fully inlined (the paper's §5 statistic), whether it lowered all the way
// to SQL/XML, and a quick rewrite-vs-no-rewrite timing for the
// database-backed cases.
//
//	go run ./examples/xsltmarkreport [-n 2000]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xq2sql"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xsltmark"
)

func main() {
	n := flag.Int("n", 2000, "records per database-backed case")
	flag.Parse()

	fmt.Printf("%-14s %-10s %-8s %-8s %-12s %-12s %s\n",
		"case", "category", "inline", "sql", "rewrite", "no-rewrite", "speedup")

	inlined := 0
	for _, c := range xsltmark.All() {
		sheet, err := xslt.ParseStylesheet(c.Stylesheet)
		if err != nil {
			log.Fatalf("%s: stylesheet: %v", c.Name, err)
		}
		schema, err := xschema.ParseCompact(c.Schema)
		if err != nil {
			log.Fatalf("%s: schema: %v", c.Name, err)
		}
		res, err := core.Rewrite(sheet, schema, core.ModeAuto)
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		if res.Inlined {
			inlined++
		}

		sqlOK := "-"
		timing := ""
		if c.Rel != nil {
			db := relstore.NewDB()
			if err := c.Rel.Setup(db, *n); err != nil {
				log.Fatal(err)
			}
			for table, cols := range c.Rel.IndexCols {
				for _, col := range cols {
					_ = db.Table(table).CreateIndex(col)
				}
			}
			exec := sqlxml.NewExecutor(db)
			view := c.Rel.View()
			plan, err := xq2sql.Translate(res.Module, view)
			switch {
			case err == nil:
				sqlOK = "yes"
				r := timeIt(func() error { _, e := exec.ExecQuery(plan); return e })
				nr := timeIt(func() error {
					rows, e := exec.MaterializeView(view)
					if e != nil {
						return e
					}
					eng := xslt.New(sheet)
					for _, row := range rows {
						if _, e := eng.Transform(row); e != nil {
							return e
						}
					}
					return nil
				})
				timing = fmt.Sprintf("%-12v %-12v %.0fx", r, nr, float64(nr)/float64(r))
			case errors.Is(err, xq2sql.ErrNotRelational):
				sqlOK = "no"
			default:
				log.Fatalf("%s: %v", c.Name, err)
			}
		}
		fmt.Printf("%-14s %-10s %-8v %-8s %s\n", c.Name, c.Category, res.Inlined, sqlOK, timing)
	}
	fmt.Printf("\nfully inlined: %d / 40 (paper: 23/40)\n", inlined)
}

func timeIt(f func() error) time.Duration {
	start := time.Now()
	if err := f(); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}
