// Quickstart: store relational data, expose it as an XMLType view, and run
// an XSLT transformation that executes as a SQL/XML plan with index access.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	xsltdb "repro"
)

func main() {
	db := xsltdb.NewDatabase()

	// 1. A relational table.
	must(db.CreateTable("books",
		xsltdb.TableColumn{Name: "id", Type: xsltdb.IntCol},
		xsltdb.TableColumn{Name: "title", Type: xsltdb.StringCol},
		xsltdb.TableColumn{Name: "price", Type: xsltdb.IntCol},
	))
	must(db.Insert("books", int64(1), "The Art of Computer Programming", int64(250)))
	must(db.Insert("books", int64(2), "A Pattern Language", int64(65)))
	must(db.Insert("books", int64(3), "Transaction Processing", int64(120)))
	must(db.CreateIndex("books", "price"))

	// 2. An XMLType view over it (one document per... here: one document,
	//    via a single-row driving table).
	must(db.CreateTable("shelf", xsltdb.TableColumn{Name: "shelfid", Type: xsltdb.IntCol}))
	must(db.Insert("shelf", int64(1)))
	must(db.CreateXMLView(&xsltdb.ViewDef{
		Name:  "library",
		Table: "shelf",
		Body: &xsltdb.XMLElement{Name: "library", Children: []xsltdb.XMLExpr{
			&xsltdb.XMLAgg{Sub: &xsltdb.SubQuery{
				Table: "books",
				Body: &xsltdb.XMLElement{Name: "book", Children: []xsltdb.XMLExpr{
					&xsltdb.XMLElement{Name: "title", Children: []xsltdb.XMLExpr{&xsltdb.XMLColumn{Name: "title"}}},
					&xsltdb.XMLElement{Name: "price", Children: []xsltdb.XMLExpr{&xsltdb.XMLColumn{Name: "price"}}},
				}},
			}},
		}},
	}))

	// 3. An XSLT stylesheet: expensive books as an HTML list.
	const stylesheet = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="library">
		<ul><xsl:apply-templates select="book[price > 100]"/></ul>
	</xsl:template>
	<xsl:template match="book">
		<li><xsl:value-of select="title"/> ($<xsl:value-of select="price"/>)</li>
	</xsl:template>
</xsl:stylesheet>`

	// 4. Compile: the stylesheet becomes XQuery, then a SQL/XML plan.
	ct, err := db.CompileTransform("library", stylesheet)
	must(err)

	fmt.Println("strategy:", ct.Strategy()) // sql-rewrite
	fmt.Println("plan:")
	fmt.Println(ct.ExplainPlan()) // INDEX RANGE SCAN books(price) ...
	fmt.Println()

	res, err := ct.Run(context.Background())
	must(err)
	for _, r := range res.Rows {
		fmt.Println(r)
	}
	fmt.Println()
	fmt.Println(res.Stats.String())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
