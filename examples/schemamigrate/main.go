// Schemamigrate demonstrates the paper's motivating use case from §3.2:
// "XSLT transformation is used to transform a set of XML documents
// conforming to schema S1 to another XML documents conforming to schema S2
// due to non-compatible XML schema."
//
// Here S1 is an order-feed schema and S2 a fulfilment schema defined by a
// different organisation. The stylesheet is compiled ONCE against S1's
// structural information (the compact schema), producing a fully inlined
// XQuery that is then applied to a stream of documents — no template
// matching at run time.
//
//	go run ./examples/schemamigrate
package main

import (
	"fmt"
	"log"

	xsltdb "repro"
)

// s1 is the incoming order-feed schema (the producer's format).
const s1 = `
order    := @id:int, customer, lines
customer := name, email
lines    := line*
line     := sku, qty:int, unit:int
`

// migration maps S1 documents to the fulfilment format S2.
const migration = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="order">
	<shipment order="{@id}">
		<recipient><xsl:value-of select="customer/name"/> &lt;<xsl:value-of select="customer/email"/>&gt;</recipient>
		<items count="{count(lines/line)}">
			<xsl:apply-templates select="lines/line"/>
		</items>
		<declared-value><xsl:value-of select="sum(lines/line/unit)"/></declared-value>
	</shipment>
</xsl:template>
<xsl:template match="line">
	<item sku="{sku}" quantity="{qty}"/>
</xsl:template>
</xsl:stylesheet>`

// Incoming documents (in reality: rows of an XMLType table bound to S1).
var feed = []string{
	`<order id="1001"><customer><name>Ada</name><email>ada@example.com</email></customer>` +
		`<lines><line><sku>KB-42</sku><qty>2</qty><unit>79</unit></line>` +
		`<line><sku>MS-07</sku><qty>1</qty><unit>25</unit></line></lines></order>`,
	`<order id="1002"><customer><name>Grace</name><email>grace@example.com</email></customer>` +
		`<lines><line><sku>CRT-99</sku><qty>3</qty><unit>199</unit></line></lines></order>`,
}

func main() {
	// Compile the migration once against S1.
	query, inlined, err := xsltdb.RewriteToXQuery(migration, s1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled migration (fully inlined: %v):\n%s\n\n", inlined, query)

	// Apply to the feed. The functional path shown here uses the same
	// generated query; bound to an XMLType view the query would lower
	// further to SQL/XML (see examples/deptemp).
	for i, doc := range feed {
		out, err := xsltdb.Transform(doc, migration)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("document %d →\n%s\n\n", i+1, out)
	}
}
