package xsltdb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// keyedViewDef is the pushdown fixture view: one document per driving row,
// exposing the indexed key as an attribute and the payload as a leaf child.
func keyedViewDef() *ViewDef {
	return &ViewDef{
		Name:  "rows",
		Table: "row",
		Body: &XMLElement{
			Name:  "row",
			Attrs: []XMLAttr{{Name: "id", Value: &XMLColumn{Name: "id"}}},
			Children: []XMLExpr{
				&XMLElement{Name: "name", Children: []XMLExpr{&XMLColumn{Name: "name"}}},
			},
		},
	}
}

// newKeyedDB builds row(id, name) with n rows, an index on id, and the
// keyed view — the selective-lookup scenario index pushdown exists for.
func newKeyedDB(tb testing.TB, n int) *Database {
	tb.Helper()
	d := NewDatabase()
	if err := d.CreateTable("row",
		TableColumn{Name: "id", Type: IntCol},
		TableColumn{Name: "name", Type: StringCol}); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := d.Insert("row", int64(i), fmt.Sprintf("name-%d", i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := d.CreateIndex("row", "id"); err != nil {
		tb.Fatal(err)
	}
	if err := d.CreateXMLView(keyedViewDef()); err != nil {
		tb.Fatal(err)
	}
	return d
}

const keyedSheet = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="row"><hit><xsl:value-of select="name"/></hit></xsl:template>
</xsl:stylesheet>`

// TestPushdownByteIdentical is the correctness contract: the pushed-down run
// and the WithoutPushdown full-scan baseline produce byte-identical rows,
// while their physical access paths (and scan work) differ as advertised.
func TestPushdownByteIdentical(t *testing.T) {
	const n = 300
	d := newKeyedDB(t, n)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Strategy() != StrategySQL {
		t.Fatalf("strategy = %v (%s)", ct.Strategy(), ct.FallbackReason())
	}

	pushed, err := ct.Run(context.Background(), WithWhere("@id = 123"))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ct.Run(context.Background(), WithWhere("@id = 123"), WithoutPushdown())
	if err != nil {
		t.Fatal(err)
	}
	if len(pushed.Rows) != 1 || pushed.Rows[0] != "<hit>name-123</hit>" {
		t.Fatalf("pushed rows = %v", pushed.Rows)
	}
	if len(baseline.Rows) != len(pushed.Rows) {
		t.Fatalf("baseline rows = %d, pushed = %d", len(baseline.Rows), len(pushed.Rows))
	}
	for i := range pushed.Rows {
		if pushed.Rows[i] != baseline.Rows[i] {
			t.Fatalf("row %d differs:\npushed:   %s\nbaseline: %s", i, pushed.Rows[i], baseline.Rows[i])
		}
	}

	if !strings.Contains(pushed.Stats.AccessPath, "INDEX PROBE row(id)") {
		t.Fatalf("pushed access path = %q, want an index probe", pushed.Stats.AccessPath)
	}
	if !strings.Contains(baseline.Stats.AccessPath, "TABLE SCAN") {
		t.Fatalf("baseline access path = %q, want a table scan", baseline.Stats.AccessPath)
	}
	if pushed.Stats.RowsScanned >= n/10 {
		t.Fatalf("index probe scanned %d heap rows; should be near zero", pushed.Stats.RowsScanned)
	}
	if baseline.Stats.RowsScanned < n {
		t.Fatalf("full-scan baseline scanned %d rows, want >= %d", baseline.Stats.RowsScanned, n)
	}
}

// TestPushdownRangeScan: an inequality lowers to an index range scan, again
// byte-identical with the full-scan baseline.
func TestPushdownRangeScan(t *testing.T) {
	d := newKeyedDB(t, 100)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	pushed, err := ct.Run(context.Background(), WithWhere("@id >= 90"))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ct.Run(context.Background(), WithWhere("@id >= 90"), WithoutPushdown())
	if err != nil {
		t.Fatal(err)
	}
	if len(pushed.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(pushed.Rows))
	}
	if fmt.Sprint(pushed.Rows) != fmt.Sprint(baseline.Rows) {
		t.Fatalf("range pushdown differs from baseline:\n%v\n%v", pushed.Rows, baseline.Rows)
	}
	if !strings.Contains(pushed.Stats.AccessPath, "INDEX RANGE SCAN row(id)") {
		t.Fatalf("access path = %q, want an index range scan", pushed.Stats.AccessPath)
	}
}

// TestExplainPlanRunOptions: ExplainPlan previews the per-run access path —
// including unbound parameters, rendered as :name placeholders.
func TestExplainPlanRunOptions(t *testing.T) {
	d := newKeyedDB(t, 50)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	plain := ct.ExplainPlan()
	if !strings.Contains(plain, "TABLE SCAN row") {
		t.Fatalf("unfiltered plan = %q, want a table scan", plain)
	}
	probe := ct.ExplainPlan(WithWhere("@id = $key"))
	if !strings.Contains(probe, "INDEX PROBE row(id)") || !strings.Contains(probe, ":key") {
		t.Fatalf("parameterized plan = %q, want an index probe on :key", probe)
	}
	forced := ct.ExplainPlan(WithWhere("@id = $key"), WithoutPushdown())
	if !strings.Contains(forced, "TABLE SCAN row") {
		t.Fatalf("WithoutPushdown plan = %q, want a table scan", forced)
	}
}

// TestWithParamOnePlanManyBindings is the bind-variable contract: one
// compiled plan serves every binding (no recompiles, no extra cache
// entries), each probing the index with its own value.
func TestWithParamOnePlanManyBindings(t *testing.T) {
	d := newKeyedDB(t, 50)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	missesBefore := d.PlanCacheStats().CacheMisses
	for _, k := range []int{3, 17, 42} {
		res, err := ct.Run(context.Background(), WithWhere("@id = $key"), WithParam("key", k))
		if err != nil {
			t.Fatalf("key=%d: %v", k, err)
		}
		want := fmt.Sprintf("<hit>name-%d</hit>", k)
		if len(res.Rows) != 1 || res.Rows[0] != want {
			t.Fatalf("key=%d: rows = %v, want [%s]", k, res.Rows, want)
		}
		if !strings.Contains(res.Stats.AccessPath, "INDEX PROBE row(id)") {
			t.Fatalf("key=%d: access path = %q", k, res.Stats.AccessPath)
		}
	}
	if misses := d.PlanCacheStats().CacheMisses; misses != missesBefore {
		t.Fatalf("parameterized runs must not recompile: misses %d -> %d", missesBefore, misses)
	}
	if ct.Recompiles() != 0 {
		t.Fatalf("recompiles = %d, want 0", ct.Recompiles())
	}
}

// TestRunOptionErrors: invalid run options fail fast with typed errors —
// before the execution chain runs (no breaker pollution, no partial work).
func TestRunOptionErrors(t *testing.T) {
	d := newKeyedDB(t, 10)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Run(context.Background(), WithWhere("@id = $key")); !errors.Is(err, ErrUnboundParam) {
		t.Fatalf("unbound param err = %v, want ErrUnboundParam", err)
	}
	if _, err := ct.Run(context.Background(), WithParam("key", []int{1})); !errors.Is(err, ErrBadRunOption) {
		t.Fatalf("bad value type err = %v, want ErrBadRunOption", err)
	}
	if _, err := ct.Run(context.Background(), WithWhere("bogus = 1")); !errors.Is(err, ErrBadRunOption) {
		t.Fatalf("unknown column err = %v, want ErrBadRunOption", err)
	}
	if _, err := ct.Run(context.Background(), WithWhere("@id = 1 or @id = 2")); !errors.Is(err, ErrBadRunOption) {
		t.Fatalf("disjunction err = %v, want ErrBadRunOption", err)
	}
	if bs := ct.BreakerStats(); bs.SQL.ConsecutiveFailures != 0 {
		t.Fatalf("option errors leaked into the breaker: %+v", bs.SQL)
	}
	// The same validation guards the cursor before it opens.
	if _, err := ct.OpenCursor(context.Background(), WithWhere("@id = $key")); !errors.Is(err, ErrUnboundParam) {
		t.Fatalf("cursor unbound param err = %v, want ErrUnboundParam", err)
	}
}

// TestPushdownAllStrategiesAgree: a WithWhere predicate selects the same
// rows under every execution strategy — the SQL plan pushes it to the access
// path, the fallbacks filter the driving rows at view materialization.
func TestPushdownAllStrategiesAgree(t *testing.T) {
	d := newKeyedDB(t, 30)
	var outputs [][]string
	for _, s := range []Strategy{StrategySQL, StrategyXQuery, StrategyNoRewrite} {
		ct, err := d.CompileTransform("rows", keyedSheet, WithForcedStrategy(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		res, err := ct.Run(context.Background(), WithWhere("@id = 7"))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%v: rows = %v", s, res.Rows)
		}
		outputs = append(outputs, res.Rows)
	}
	for i := 1; i < len(outputs); i++ {
		if fmt.Sprint(outputs[i]) != fmt.Sprint(outputs[0]) {
			t.Fatalf("strategy %d output differs: %v vs %v", i, outputs[i], outputs[0])
		}
	}
}

// TestCursorPushdown: the streaming cursor takes the same run options and
// reports the same access path as Run.
func TestCursorPushdown(t *testing.T) {
	d := newKeyedDB(t, 200)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ct.OpenCursor(context.Background(), WithWhere("@id = $key"), WithParam("key", 55))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cur.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0] != "<hit>name-55</hit>" {
		t.Fatalf("rows = %v", rows)
	}
	es := cur.Stats()
	if !strings.Contains(es.AccessPath, "INDEX PROBE row(id)") {
		t.Fatalf("cursor access path = %q", es.AccessPath)
	}
	if es.RowsScanned >= 20 {
		t.Fatalf("cursor probe scanned %d heap rows", es.RowsScanned)
	}
}

// TestReplaceViewRacesParameterizedRuns is the -race contract for the new
// API: concurrent parameterized Runs and cursors race ReplaceXMLView; every
// execution either sees the old or the new view version, never a torn state,
// and the transform recompiles automatically afterwards.
func TestReplaceViewRacesParameterizedRuns(t *testing.T) {
	d := newKeyedDB(t, 40)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				key := (worker*10 + j) % 40
				res, err := ct.Run(context.Background(), WithWhere("@id = $key"), WithParam("key", key))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("key %d: %d rows", key, len(res.Rows))
					return
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				cur, err := ct.OpenCursor(context.Background(), WithWhere("@id >= 35"))
				if err != nil {
					errs <- err
					return
				}
				if _, err := cur.Collect(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.ReplaceXMLView(keyedViewDef()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// A run after the last replace must recompile against the new version.
	if _, err := ct.Run(context.Background(), WithWhere("@id = 1")); err != nil {
		t.Fatal(err)
	}
	if ct.Recompiles() == 0 {
		t.Fatal("at least one automatic recompilation expected")
	}
}

// TestChainedGovernanceOutputBytes: the chained stages run under the first
// stage's full governance — a pipeline whose chained stage expands its input
// past MaxOutputBytes must fail, even when the first stage's own output fits.
func TestChainedGovernanceOutputBytes(t *testing.T) {
	d := newKeyedDB(t, 4)
	ct, err := d.CompileTransform("rows", keyedSheet, WithMaxOutputBytes(200))
	if err != nil {
		t.Fatal(err)
	}
	const expander = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:template match="hit"><big pad="xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"><xsl:value-of select="."/></big></xsl:template>
	</xsl:stylesheet>`
	chain, err := ct.Then(expander)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the first stage alone fits its budget.
	if res, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	} else if total := len(fmt.Sprint(res.Rows)); total > 200 {
		t.Fatalf("fixture broken: first stage already exceeds the budget (%d bytes)", total)
	}
	if _, err := chain.Run(context.Background()); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("chained run err = %v, want ErrLimitExceeded", err)
	}
	// The streaming pipeline enforces the same budget.
	cur, err := chain.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Collect(); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("chained cursor err = %v, want ErrLimitExceeded", err)
	}
}

// BenchmarkPushdownLookup is the acceptance benchmark: a single-document
// lookup by indexed key over a large table, pushed down versus the full-scan
// baseline.
func BenchmarkPushdownLookup(b *testing.B) {
	const n = 100_000
	d := newKeyedDB(b, n)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("index-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ct.Run(context.Background(),
				WithWhere("@id = $key"), WithParam("key", (i*7919)%n))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ct.Run(context.Background(),
				WithWhere("@id = $key"), WithParam("key", (i*7919)%n), WithoutPushdown())
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
}
