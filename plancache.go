package xsltdb

import (
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// planCache is the database's compiled-plan cache: compile once, run many.
// Entries are keyed by (view, view version, stylesheet hash, plan options),
// so a view redefinition naturally misses — and ReplaceXMLView additionally
// evicts the stale entries to bound memory. Run-time inputs — WithParam
// bindings, WithWhere predicates, WithoutPushdown — are deliberately NOT
// part of the key: a parameterized plan compiles once and serves every
// binding (the point of bind variables), so running the same transform with
// a thousand different parameters still costs one compilation. Concurrent compilations of the
// same key are deduplicated singleflight-style: the first caller compiles,
// the rest block on the entry's done channel and share the result.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
	hits    atomic.Int64
	misses  atomic.Int64
	// missesBy counts actual compilations per key — kept separate from the
	// entries map so the count survives eviction (a view redefinition that
	// forces a recompile should show as misses 2, not reset to 1).
	missesBy map[planKey]int64
}

type planEntry struct {
	done chan struct{} // closed when st/err are set
	st   *planState
	err  error

	// Console bookkeeping for /plans.
	hits        atomic.Int64  // get() calls served by this entry
	compileWall time.Duration // how long the compilation took
	created     time.Time     // when the compilation finished
}

// get returns the cached state for key, or claims the key and runs compile.
// The second return reports whether the result came from the cache (true
// for waiters that shared an in-flight compile). Failed compilations are
// not cached: the entry is removed so a later call retries, and every
// in-flight waiter receives the error.
func (c *planCache) get(key planKey, compile func() (*planState, error)) (*planState, bool, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[planKey]*planEntry{}
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, true, e.err
		}
		c.hits.Add(1)
		e.hits.Add(1)
		mCacheHits.Inc()
		return e.st, true, nil
	}
	e := &planEntry{done: make(chan struct{})}
	c.entries[key] = e
	if c.missesBy == nil {
		c.missesBy = map[planKey]int64{}
	}
	c.missesBy[key]++
	c.mu.Unlock()

	c.misses.Add(1)
	mCacheMisses.Inc()
	compileStart := time.Now()
	e.st, e.err = compile()
	e.compileWall = time.Since(compileStart)
	e.created = time.Now()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.st, false, e.err
}

// contains reports whether key has a completed, successful cache entry —
// the plan-cache status line of ExplainPlan/ExplainAnalyze.
func (c *planCache) contains(key planKey) bool {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// evictView drops every cached plan compiled against the named view.
func (c *planCache) evictView(view string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.view == view {
			delete(c.entries, k)
		}
	}
}

// PlanCacheStats reports plan-cache effectiveness. CacheHits counts
// compilations served from the cache (including singleflight waiters that
// shared an in-flight compile); CacheMisses counts actual compilations.
type PlanCacheStats struct {
	CacheHits   int64
	CacheMisses int64
	Entries     int
}

// PlanCacheStats returns a snapshot of the compiled-plan cache counters.
func (d *Database) PlanCacheStats() PlanCacheStats {
	d.plans.mu.Lock()
	n := len(d.plans.entries)
	d.plans.mu.Unlock()
	return PlanCacheStats{
		CacheHits:   d.plans.hits.Load(),
		CacheMisses: d.plans.misses.Load(),
		Entries:     n,
	}
}

// PlanCacheEntry describes one cached compilation, as served by the debug
// console's /plans endpoint and Database.PlanCacheEntries.
type PlanCacheEntry struct {
	// View and ViewVersion identify the view the plan compiled against.
	View        string `json:"view"`
	ViewVersion int    `json:"view_version"`
	// StylesheetHash is a prefix of the stylesheet's SHA-256 (enough to
	// tell plans apart without dumping stylesheet text).
	StylesheetHash string `json:"stylesheet_hash"`
	// Options is the canonicalized plan-affecting option string ("" for
	// defaults).
	Options string `json:"options,omitempty"`
	// Strategy is the compiled strategy; Fallback says why a stronger one
	// was not reachable ("" when the strongest compiled).
	Strategy string `json:"strategy"`
	Fallback string `json:"fallback,omitempty"`
	// Hits counts get() calls this entry served; Misses counts actual
	// compilations of this key (>1 after a view redefinition forced a
	// recompile).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// CompileWall is the compilation's wall time; Age is time since it
	// finished.
	CompileWall time.Duration `json:"compile_wall_ns"`
	Age         time.Duration `json:"age_ns"`
}

// PlanCacheEntries snapshots the compiled-plan cache entry by entry: which
// plans are cached, how they compiled, and how hard each one is working.
// In-flight and failed compilations are skipped. Entries sort by view, then
// strategy, then stylesheet hash.
func (d *Database) PlanCacheEntries() []PlanCacheEntry {
	c := &d.plans
	c.mu.Lock()
	type snap struct {
		key planKey
		e   *planEntry
	}
	snaps := make([]snap, 0, len(c.entries))
	for k, e := range c.entries {
		snaps = append(snaps, snap{k, e})
	}
	misses := make(map[planKey]int64, len(c.missesBy))
	for k, n := range c.missesBy {
		misses[k] = n
	}
	c.mu.Unlock()

	out := make([]PlanCacheEntry, 0, len(snaps))
	for _, s := range snaps {
		select {
		case <-s.e.done:
		default:
			continue // compilation in flight
		}
		if s.e.err != nil || s.e.st == nil {
			continue
		}
		out = append(out, PlanCacheEntry{
			View:           s.key.view,
			ViewVersion:    s.key.version,
			StylesheetHash: hex.EncodeToString(s.key.sheet[:6]),
			Options:        s.key.opts,
			Strategy:       s.e.st.strategy.String(),
			Fallback:       s.e.st.fallback,
			Hits:           s.e.hits.Load(),
			Misses:         misses[s.key],
			CompileWall:    s.e.compileWall,
			Age:            time.Since(s.e.created),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].View != out[j].View {
			return out[i].View < out[j].View
		}
		if out[i].Strategy != out[j].Strategy {
			return out[i].Strategy < out[j].Strategy
		}
		return out[i].StylesheetHash < out[j].StylesheetHash
	})
	return out
}
