package xsltdb

import (
	"sync"
	"sync/atomic"
)

// planCache is the database's compiled-plan cache: compile once, run many.
// Entries are keyed by (view, view version, stylesheet hash, plan options),
// so a view redefinition naturally misses — and ReplaceXMLView additionally
// evicts the stale entries to bound memory. Run-time inputs — WithParam
// bindings, WithWhere predicates, WithoutPushdown — are deliberately NOT
// part of the key: a parameterized plan compiles once and serves every
// binding (the point of bind variables), so running the same transform with
// a thousand different parameters still costs one compilation. Concurrent compilations of the
// same key are deduplicated singleflight-style: the first caller compiles,
// the rest block on the entry's done channel and share the result.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type planEntry struct {
	done chan struct{} // closed when st/err are set
	st   *planState
	err  error
}

// get returns the cached state for key, or claims the key and runs compile.
// The second return reports whether the result came from the cache (true
// for waiters that shared an in-flight compile). Failed compilations are
// not cached: the entry is removed so a later call retries, and every
// in-flight waiter receives the error.
func (c *planCache) get(key planKey, compile func() (*planState, error)) (*planState, bool, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[planKey]*planEntry{}
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, true, e.err
		}
		c.hits.Add(1)
		mCacheHits.Inc()
		return e.st, true, nil
	}
	e := &planEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	mCacheMisses.Inc()
	e.st, e.err = compile()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.st, false, e.err
}

// contains reports whether key has a completed, successful cache entry —
// the plan-cache status line of ExplainPlan/ExplainAnalyze.
func (c *planCache) contains(key planKey) bool {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// evictView drops every cached plan compiled against the named view.
func (c *planCache) evictView(view string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.view == view {
			delete(c.entries, k)
		}
	}
}

// PlanCacheStats reports plan-cache effectiveness. CacheHits counts
// compilations served from the cache (including singleflight waiters that
// shared an in-flight compile); CacheMisses counts actual compilations.
type PlanCacheStats struct {
	CacheHits   int64
	CacheMisses int64
	Entries     int
}

// PlanCacheStats returns a snapshot of the compiled-plan cache counters.
func (d *Database) PlanCacheStats() PlanCacheStats {
	d.plans.mu.Lock()
	n := len(d.plans.entries)
	d.plans.mu.Unlock()
	return PlanCacheStats{
		CacheHits:   d.plans.hits.Load(),
		CacheMisses: d.plans.misses.Load(),
		Entries:     n,
	}
}
