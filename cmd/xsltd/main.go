// Command xsltd is the production serving daemon: it exposes compiled
// transforms over HTTP with request coalescing, a bounded result cache, and
// per-tenant admission control (see the serve package).
//
//	xsltd [-listen :8080] [-console-addr :6060] [-dir path]
//	      [-api-key key=tenant ...] [-tenant name=maxconcurrent ...]
//	      [-cache n] [-max-inflight n] [-target-p95 d]
//	      [-events-file path] [-events-otlp url] [-events-buffer n]
//	      [-slo-target d] [-slo-objective f]
//	      [-diag-dir path] [-diag-max-bundles n] [-diag-debounce d]
//
// With -dir the database is durable (WAL-backed, replayed on start);
// without it xsltd serves the paper's in-memory dept/emp demo database with
// the paper stylesheet registered as "paper":
//
//	xsltd -listen :8080 &
//	curl http://localhost:8080/v1/transform/paper
//	curl http://localhost:8080/v1/transform/paper   # X-Xsltd-Cache: hit
//
// -api-key (repeatable) maps an API key to a tenant name; once any key is
// configured requests must authenticate. -tenant (repeatable) registers a
// tenant's concurrency cap. -target-p95 enables latency shedding: while the
// sliding p95 exceeds it, new executions get 429 + Retry-After.
//
// Telemetry: every request gets (or propagates) a W3C traceparent and
// returns its trace ID as X-Request-Id. -events-file writes one wide event
// per request as NDJSON ("-" = stdout); -events-otlp exports OTLP-style
// JSON log batches to the given collector URL. The wide-event pipeline also
// feeds the console's /events page whenever the console is on. -slo-target
// and -slo-objective parameterize the per-tenant SLO burn-rate gauge.
//
// Diagnostics: -diag-dir turns on the anomaly-triggered flight recorder —
// detectors watch the process's own signals (p95 latency vs trailing
// baseline, SLO burn rate, breaker trips, WAL fsync stalls, snapshot-pin
// age, event drops, goroutine count) and capture a diagnostic bundle
// (profiles, metrics, recent events, plan and run state) under -diag-dir
// when one fires, debounced by -diag-debounce and retained up to
// -diag-max-bundles. The console serves /debug/anomalies and /debug/bundle.
// The public API serves /readyz (readiness: startup complete and not
// shedding) next to the /healthz liveness probe.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	xsltdb "repro"
	"repro/internal/obs"
	"repro/internal/sqlxml"
	"repro/internal/xslt"
	"repro/serve"
)

func main() {
	fs := flag.NewFlagSet("xsltd", flag.ExitOnError)
	listen := fs.String("listen", ":8080", "address for the public v1 API")
	consoleAddr := fs.String("console-addr", "", "address for the debug console (runs, plans, tenants, metrics, pprof); empty = off")
	dir := fs.String("dir", "", "WAL directory for a durable database; empty = in-memory demo data")
	cache := fs.Int("cache", 256, "result-cache capacity in entries (negative disables)")
	maxInFlight := fs.Int("max-inflight", 0, "global cap on concurrent executions (0 = unlimited)")
	targetP95 := fs.Duration("target-p95", 0, "shed new executions while sliding p95 exceeds this (0 = off)")
	eventsFile := fs.String("events-file", "", "write wide events as NDJSON to this file (\"-\" = stdout); empty = off")
	eventsOTLP := fs.String("events-otlp", "", "export wide events as OTLP-style JSON logs to this collector URL; empty = off")
	eventsBuffer := fs.Int("events-buffer", 0, "event-bus buffer size (0 = default); overflow drops events, never blocks requests")
	sloTarget := fs.Duration("slo-target", 0, "per-request latency objective for the SLO burn-rate gauge (0 = target-p95)")
	sloObjective := fs.Float64("slo-objective", 0.99, "fraction of requests that must meet the SLO target")
	diagDir := fs.String("diag-dir", "", "capture anomaly-triggered diagnostic bundles under this directory; empty = off")
	diagMaxBundles := fs.Int("diag-max-bundles", 8, "diagnostic bundles retained before the oldest are pruned")
	diagDebounce := fs.Duration("diag-debounce", time.Minute, "minimum gap between anomaly-triggered bundles")
	apiKeys := map[string]string{}
	fs.Func("api-key", "key=tenant mapping (repeatable); configuring any key requires authentication", func(v string) error {
		key, tenant, ok := strings.Cut(v, "=")
		if !ok || key == "" {
			return fmt.Errorf("want key=tenant, got %q", v)
		}
		apiKeys[key] = tenant
		return nil
	})
	type tenantCap struct {
		name string
		max  int
	}
	var tenantCaps []tenantCap
	fs.Func("tenant", "name=maxconcurrent tenant registration (repeatable)", func(v string) error {
		name, maxText, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want name=maxconcurrent, got %q", v)
		}
		n, err := strconv.Atoi(maxText)
		if err != nil {
			return fmt.Errorf("bad maxconcurrent in %q: %w", v, err)
		}
		tenantCaps = append(tenantCaps, tenantCap{name, n})
		return nil
	})
	_ = fs.Parse(os.Args[1:])

	var openOpts []xsltdb.OpenOption
	if *dir != "" {
		openOpts = append(openOpts, xsltdb.WithDir(*dir))
	}
	for _, tc := range tenantCaps {
		openOpts = append(openOpts, xsltdb.WithTenant(tc.name, xsltdb.TenantLimits{MaxConcurrent: tc.max}))
	}
	db, err := xsltdb.Open(openOpts...)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	if *dir == "" {
		if err := setupDemo(db); err != nil {
			fatal(err)
		}
	}

	var eventSinks []obs.EventSink
	if *eventsFile != "" {
		w := io.Writer(os.Stdout)
		if *eventsFile != "-" {
			f, err := os.OpenFile(*eventsFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		eventSinks = append(eventSinks, obs.NewNDJSONSink(w))
	}
	if *eventsOTLP != "" {
		eventSinks = append(eventSinks, obs.NewOTLPSink(*eventsOTLP, 0))
	}

	srv, err := serve.New(serve.Config{
		DB:             db,
		APIKeys:        apiKeys,
		CacheCapacity:  *cache,
		MaxInFlight:    *maxInFlight,
		TargetP95:      *targetP95,
		EnableEvents:   len(eventSinks) > 0 || *consoleAddr != "" || *diagDir != "",
		EventSinks:     eventSinks,
		EventBuffer:    *eventsBuffer,
		SLOTarget:      *sloTarget,
		SLOObjective:   *sloObjective,
		DiagDir:        *diagDir,
		DiagMaxBundles: *diagMaxBundles,
		DiagDebounce:   *diagDebounce,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if *dir == "" {
		if err := srv.RegisterTransform("paper", "dept_emp", xslt.PaperStylesheet); err != nil {
			fatal(err)
		}
		fmt.Println("demo database loaded; transform \"paper\" registered over view dept_emp")
	}

	if *consoleAddr != "" {
		db.EnableRunHistory(0)
		go func() {
			if err := http.ListenAndServe(*consoleAddr, srv.Console()); err != nil {
				fatal(err)
			}
		}()
		fmt.Printf("debug console at http://%s/ (runs, events, plans, tenants, metrics, pprof)\n", *consoleAddr)
	}

	// Startup is complete: the database is open (WAL replayed for durable
	// dirs) and every transform is registered. /readyz flips to 200.
	srv.MarkReady()

	fmt.Printf("xsltd serving at http://%s/v1/transform/<name>\n", *listen)
	server := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := server.ListenAndServe(); err != nil {
		fatal(err)
	}
}

// setupDemo loads the paper's dept/emp tables, view, and indexes.
func setupDemo(db *xsltdb.Database) error {
	if err := sqlxml.SetupDeptEmp(db.Rel()); err != nil {
		return err
	}
	if err := db.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		return err
	}
	if err := db.CreateIndex("emp", "sal"); err != nil {
		return err
	}
	return db.CreateIndex("emp", "deptno")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsltd:", err)
	os.Exit(1)
}
