// Command xsltbench regenerates the tables behind the paper's evaluation
// figures (§5):
//
//	xsltbench -fig 2          # Figure 2: dbonerow, rewrite vs no-rewrite across sizes
//	xsltbench -fig 3          # Figure 3: avts/chart/metric/total
//	xsltbench -inline-stats   # the "23 out of 40 cases fully inline" statistic
//	xsltbench -pushdown       # index-probe pushdown vs full-scan baseline
//	xsltbench -all            # everything
//
// -json writes the -pushdown measurements to the given file as JSON
// (the `make bench-json` artifact).
//
// -stream executes the rewrite path through the streaming cursor (one row
// pulled at a time) instead of materializing the result set; -stats prints
// the physical operator counters of each configuration's last run.
//
// Times are medians over -reps runs of each configuration.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	xsltdb "repro"
	"repro/internal/clobstore"
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xq2sql"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xsltmark"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2 or 3)")
	inlineStats := flag.Bool("inline-stats", false, "print the inline-coverage statistic")
	storage := flag.Bool("storage", false, "print the §7.4 storage-model comparison")
	push := flag.Bool("pushdown", false, "measure index-probe pushdown vs the full-scan baseline")
	jsonPath := flag.String("json", "", "write the -pushdown measurements to this file as JSON")
	all := flag.Bool("all", false, "run every experiment")
	reps := flag.Int("reps", 5, "repetitions per configuration (median reported)")
	scale := flag.Int("scale", 1, "multiply workload sizes by this factor")
	flag.BoolVar(&streamMode, "stream", false, "run the rewrite path through a streaming cursor")
	flag.BoolVar(&statsMode, "stats", false, "print physical operator counters per configuration")
	flag.DurationVar(&timeoutFlag, "timeout", 0, "abort any single measured run after this long (0 = no timeout)")
	flag.Int64Var(&maxRowsFlag, "max-rows", 0, "abort a run that produces more than n result rows (0 = unlimited)")
	flag.Parse()

	ran := false
	if *all || *fig == 2 {
		figure2(*reps, *scale)
		ran = true
	}
	if *all || *fig == 3 {
		figure3(*reps, *scale)
		ran = true
	}
	if *all || *inlineStats {
		inlineCoverage()
		ran = true
	}
	if *all || *storage {
		storageModels(*reps, *scale)
		ran = true
	}
	if *all || *push {
		pushdown(*reps, *scale, *jsonPath)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// streamMode/statsMode are the -stream/-stats flags; timeoutFlag/maxRowsFlag
// govern each measured run.
var (
	streamMode  bool
	statsMode   bool
	timeoutFlag time.Duration
	maxRowsFlag int64
)

// runGovernor builds one run's execution governor from the -timeout and
// -max-rows flags. Returns a nil governor (every check a no-op) when neither
// flag is set; stop releases the timeout's timer.
func runGovernor() (*governor.G, context.CancelFunc) {
	if timeoutFlag <= 0 && maxRowsFlag <= 0 {
		return nil, func() {}
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if timeoutFlag > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeoutFlag)
	}
	return governor.New(ctx).Limits(maxRowsFlag, 0, 0), cancel
}

// bench builds a database-backed case at size n and returns both paths.
type paths struct {
	rewrite   func() error
	noRewrite func() error
	bytes     int                   // serialized document size, the paper's X axis
	counters  func() relstore.Stats // physical operator counters so far
}

func load(name string, n int) (*paths, error) {
	c := xsltmark.ByName(name)
	if c == nil || c.Rel == nil {
		return nil, fmt.Errorf("case %q is not database-backed", name)
	}
	db := relstore.NewDB()
	if err := c.Rel.Setup(db, n); err != nil {
		return nil, err
	}
	for table, cols := range c.Rel.IndexCols {
		for _, col := range cols {
			if err := db.Table(table).CreateIndex(col); err != nil {
				return nil, err
			}
		}
	}
	exec := sqlxml.NewExecutor(db)
	view := c.Rel.View()
	schema, err := exec.DeriveSchema(view)
	if err != nil {
		return nil, err
	}
	sheet, err := xslt.ParseStylesheet(c.Stylesheet)
	if err != nil {
		return nil, err
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		return nil, err
	}
	plan, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		return nil, err
	}
	return &paths{
		rewrite: func() error {
			g, stop := runGovernor()
			defer stop()
			if !streamMode {
				docs, err := exec.ExecQueryParallelGoverned(plan, 1, &exec.Stats, g)
				if err != nil {
					return err
				}
				for range docs {
					if err := g.AddRow(); err != nil {
						return err
					}
				}
				return nil
			}
			// Streaming: pull one document at a time off the plan's access
			// path; counters still land in the executor aggregate.
			var sink relstore.Stats
			qc, err := exec.OpenQueryCursorGoverned(plan, &sink, g)
			if err != nil {
				return err
			}
			for {
				if _, err := qc.Next(); err == io.EOF {
					break
				} else if err != nil {
					return err
				}
				if err := g.AddRow(); err != nil {
					return err
				}
			}
			exec.AddStats(&sink)
			return nil
		},
		noRewrite: func() error {
			g, stop := runGovernor()
			defer stop()
			rows, err := exec.MaterializeViewGoverned(view, &exec.Stats, g)
			if err != nil {
				return err
			}
			eng := xslt.New(sheet).Govern(g)
			for _, row := range rows {
				if _, err := eng.Transform(row); err != nil {
					return err
				}
				if err := g.AddRow(); err != nil {
					return err
				}
			}
			return nil
		},
		bytes:    len(c.Gen(n)),
		counters: func() relstore.Stats { return exec.Stats.Snapshot() },
	}, nil
}

// printCounters reports a configuration's accumulated operator counters.
func printCounters(label string, p *paths) {
	if !statsMode {
		return
	}
	s := p.counters()
	fmt.Printf("  %s stats: scanned=%d probes=%d range-scans=%d full-scans=%d emitted=%d\n",
		label, s.RowsScanned, s.IndexProbes, s.RangeScans, s.FullScans, s.RowsEmitted)
}

func median(reps int, f func() error) time.Duration {
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func figure2(reps, scale int) {
	fmt.Println("Figure 2 — dbonerow: XSLT rewrite vs no-rewrite across document sizes")
	fmt.Println("(paper: 8M/16M/32M/64M stored docs; here: generated sales rows)")
	fmt.Printf("%-10s %-12s %-14s %-14s %-8s\n", "rows", "doc-bytes", "rewrite", "no-rewrite", "speedup")
	for _, n := range []int{2000 * scale, 4000 * scale, 8000 * scale, 16000 * scale} {
		p, err := load("dbonerow", n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := median(reps, p.rewrite)
		nr := median(reps, p.noRewrite)
		fmt.Printf("%-10d %-12d %-14s %-14s %.0fx\n", n, p.bytes, r, nr, float64(nr)/float64(r))
		printCounters(fmt.Sprintf("n=%d", n), p)
	}
	fmt.Println()
}

func figure3(reps, scale int) {
	fmt.Println("Figure 3 — avts/chart/metric/total: rewrite vs no-rewrite (no value index)")
	fmt.Printf("%-10s %-14s %-14s %-8s\n", "case", "rewrite", "no-rewrite", "speedup")
	for _, name := range []string{"avts", "chart", "metric", "total"} {
		p, err := load(name, 4000*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := median(reps, p.rewrite)
		nr := median(reps, p.noRewrite)
		fmt.Printf("%-10s %-14s %-14s %.0fx\n", name, r, nr, float64(nr)/float64(r))
		printCounters(name, p)
	}
	fmt.Println()
}

// storageModels reproduces the §7.4 study: the Example 1 workload over the
// three physical storage models.
func storageModels(reps, scale int) {
	fmt.Println("Storage models (§7.4) — Example 1 stylesheet over many dept documents")
	nDepts := 200 * scale
	db := relstore.NewDB()
	if err := sqlxml.SetupDeptEmp(db); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for d := 1000; d < 1000+nDepts; d++ {
		_, _ = db.Table("dept").Insert(int64(d), fmt.Sprintf("D%d", d), "CITY")
		for e := 0; e < 20; e++ {
			_, _ = db.Table("emp").Insert(int64(d*100+e), fmt.Sprintf("E%d", e), "STAFF",
				int64(500+(e*397)%4500), int64(d))
		}
	}
	_ = db.Table("emp").CreateIndex("sal")
	_ = db.Table("emp").CreateIndex("deptno")
	exec := sqlxml.NewExecutor(db)
	view := sqlxml.DeptEmpView()
	schema, err := exec.DeriveSchema(view)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sheet, err := xslt.ParseStylesheet(xslt.PaperStylesheet)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	store := clobstore.New()
	docs, err := exec.MaterializeView(view)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, doc := range docs {
		if _, err := store.Add(doc.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	eng := xslt.New(sheet)

	rows := []struct {
		name string
		f    func() error
	}{
		{"object-relational", func() error { _, err := exec.ExecQuery(plan); return err }},
		{"tree", func() error {
			for id := 0; id < store.Len(); id++ {
				doc, err := store.Tree(id)
				if err != nil {
					return err
				}
				if _, err := eng.Transform(doc); err != nil {
					return err
				}
			}
			return nil
		}},
		{"clob", func() error {
			for id := 0; id < store.Len(); id++ {
				doc, err := store.ParseDoc(id)
				if err != nil {
					return err
				}
				if _, err := eng.Transform(doc); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	fmt.Printf("%-20s %s\n", "storage", "time")
	for _, r := range rows {
		fmt.Printf("%-20s %v\n", r.name, median(reps, r.f))
	}
	fmt.Println()
}

// pushdown measures the PR's headline scenario: a single-document lookup by
// indexed key over a large driving table, executed through the public Run
// API with the predicate pushed down to an index probe versus the
// WithoutPushdown full-scan baseline. With -json, the rows are also written
// as a machine-readable artifact (BENCH_pushdown.json in CI).
func pushdown(reps, scale int, jsonPath string) {
	fmt.Println("Pushdown — lookup by indexed key via Run(WithWhere, WithParam): probe vs full scan")
	fmt.Printf("%-10s %-14s %-14s %-9s %s\n", "rows", "index-probe", "full-scan", "speedup", "probe access path")

	type measurement struct {
		Rows        int     `json:"rows"`
		ProbeNanos  int64   `json:"probe_ns"`
		ScanNanos   int64   `json:"scan_ns"`
		Speedup     float64 `json:"speedup"`
		AccessPath  string  `json:"access_path"`
		RowsScanned int64   `json:"full_scan_rows_scanned"`
	}
	var out []measurement

	const sheet = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="row"><hit><xsl:value-of select="name"/></hit></xsl:template>
</xsl:stylesheet>`
	for _, n := range []int{10_000 * scale, 100_000 * scale} {
		db := xsltdb.NewDatabase()
		check(db.CreateTable("row",
			xsltdb.TableColumn{Name: "id", Type: xsltdb.IntCol},
			xsltdb.TableColumn{Name: "name", Type: xsltdb.StringCol}))
		for i := 0; i < n; i++ {
			check(db.Insert("row", int64(i), fmt.Sprintf("name-%d", i)))
		}
		check(db.CreateIndex("row", "id"))
		check(db.CreateXMLView(&xsltdb.ViewDef{
			Name:  "rows",
			Table: "row",
			Body: &xsltdb.XMLElement{
				Name:  "row",
				Attrs: []xsltdb.XMLAttr{{Name: "id", Value: &xsltdb.XMLColumn{Name: "id"}}},
				Children: []xsltdb.XMLExpr{
					&xsltdb.XMLElement{Name: "name", Children: []xsltdb.XMLExpr{&xsltdb.XMLColumn{Name: "name"}}},
				},
			},
		}))
		ct, err := db.CompileTransform("rows", sheet)
		check(err)

		key := 0
		lookup := func(extra ...xsltdb.RunOption) func() error {
			return func() error {
				key = (key*7919 + 1) % n
				opts := append([]xsltdb.RunOption{
					xsltdb.WithWhere("@id = $key"), xsltdb.WithParam("key", key),
				}, extra...)
				res, err := ct.Run(context.Background(), opts...)
				if err != nil {
					return err
				}
				if len(res.Rows) != 1 {
					return fmt.Errorf("lookup produced %d rows, want 1", len(res.Rows))
				}
				return nil
			}
		}
		probe := median(reps, lookup())
		scan := median(reps, lookup(xsltdb.WithoutPushdown()))

		// One run of each flavor for the reported access path and scan work.
		probeRes, err := ct.Run(context.Background(), xsltdb.WithWhere("@id = 1"))
		check(err)
		scanRes, err := ct.Run(context.Background(), xsltdb.WithWhere("@id = 1"), xsltdb.WithoutPushdown())
		check(err)

		m := measurement{
			Rows:        n,
			ProbeNanos:  probe.Nanoseconds(),
			ScanNanos:   scan.Nanoseconds(),
			Speedup:     float64(scan) / float64(probe),
			AccessPath:  probeRes.Stats.AccessPath,
			RowsScanned: scanRes.Stats.RowsScanned,
		}
		out = append(out, m)
		fmt.Printf("%-10d %-14s %-14s %-9s %s\n", n, probe, scan,
			fmt.Sprintf("%.0fx", m.Speedup), m.AccessPath)
	}
	fmt.Println()

	if jsonPath != "" {
		b, err := json.MarshalIndent(out, "", "  ")
		check(err)
		check(os.WriteFile(jsonPath, append(b, '\n'), 0o644))
		fmt.Printf("wrote %s\n\n", jsonPath)
	}
}

// check aborts the benchmark on a setup error.
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func inlineCoverage() {
	fmt.Println("Inline coverage — XSLT→XQuery full-inline rate over the 40-case suite")
	inlined := 0
	var noninline []string
	for _, c := range xsltmark.All() {
		sheet, err := xslt.ParseStylesheet(c.Stylesheet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: stylesheet: %v\n", c.Name, err)
			os.Exit(1)
		}
		schema, err := xschema.ParseCompact(c.Schema)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: schema: %v\n", c.Name, err)
			os.Exit(1)
		}
		res, err := core.Rewrite(sheet, schema, core.ModeAuto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
			os.Exit(1)
		}
		if res.Inlined {
			inlined++
		} else {
			noninline = append(noninline, c.Name)
		}
	}
	fmt.Printf("fully inlined: %d / 40 (paper reports 23/40)\n", inlined)
	fmt.Printf("non-inline (recursive): %v\n\n", noninline)
}
