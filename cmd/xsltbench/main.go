// Command xsltbench regenerates the tables behind the paper's evaluation
// figures (§5):
//
//	xsltbench -fig 2          # Figure 2: dbonerow, rewrite vs no-rewrite across sizes
//	xsltbench -fig 3          # Figure 3: avts/chart/metric/total
//	xsltbench -inline-stats   # the "23 out of 40 cases fully inline" statistic
//	xsltbench -pushdown       # index-probe pushdown vs full-scan baseline
//	xsltbench -all            # everything
//
// -json writes the -pushdown measurements to the given file as JSON
// (the `make bench-json` artifact).
//
// -obs-overhead measures the observability layer's cost — the nil-trace
// fast path versus a run with an attached trace — and writes BENCH_obs.json
// (the `make bench-obs` artifact); it exits non-zero if the estimated
// nil-trace overhead reaches 2%. -events-overhead measures the wide-event
// pipeline's serving cost (events-on vs events-off on the cached mix),
// merges into the same BENCH_obs.json, and exits non-zero if the overhead
// reaches 3%.
//
// -trace-out FILE captures the slowest traced run the tool performed and
// writes its full trace as JSON to FILE.
//
// -stream executes the rewrite path through the streaming cursor (one row
// pulled at a time) instead of materializing the result set; -stats prints
// the physical operator counters of each configuration's last run.
//
// Times are medians over -reps runs of each configuration.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	xsltdb "repro"
	"repro/internal/clobstore"
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xq2sql"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xsltmark"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2 or 3)")
	inlineStats := flag.Bool("inline-stats", false, "print the inline-coverage statistic")
	storage := flag.Bool("storage", false, "print the §7.4 storage-model comparison")
	push := flag.Bool("pushdown", false, "measure index-probe pushdown vs the full-scan baseline")
	jsonPath := flag.String("json", "", "write the -pushdown measurements to this file as JSON")
	obsOver := flag.Bool("obs-overhead", false, "measure tracing overhead (nil-trace fast path vs attached trace), write BENCH_obs.json")
	obsBaseline := flag.String("obs-baseline", "", "compare the -obs-overhead measurement against this committed BENCH_obs.json and report the regression delta")
	eventsOver := flag.Bool("events-overhead", false, "measure the wide-event pipeline's serving cost (events-on vs events-off cached mix), merge into BENCH_obs.json")
	execBench := flag.Bool("exec", false, "measure the execution engine: row-at-a-time vs batched vs morsel-parallel scan, write BENCH_exec.json")
	execBaseline := flag.String("exec-baseline", "", "compare the -exec measurement against this committed BENCH_exec.json and report the delta")
	workersFlag := flag.Int("workers", 0, "highest morsel worker count for -exec (0 = GOMAXPROCS)")
	batchFlag := flag.Int("batch-size", 0, "batch size for the -exec batched/morsel configurations (0 = engine default)")
	history := flag.Bool("history", false, "measure the run-history archive's overhead (disabled vs enabled under concurrent console readers)")
	walBench := flag.Bool("wal", false, "measure durable insert throughput per WAL fsync policy and replay speed, write BENCH_wal.json")
	serveBench := flag.Bool("serve", false, "measure the HTTP serving layer: uncached vs result-cache vs coalesced throughput, write BENCH_serve.json")
	serveBaseline := flag.String("serve-baseline", "", "compare the -serve measurement against this committed BENCH_serve.json and report the delta")
	all := flag.Bool("all", false, "run every experiment")
	reps := flag.Int("reps", 5, "repetitions per configuration (median reported)")
	scale := flag.Int("scale", 1, "multiply workload sizes by this factor")
	flag.BoolVar(&streamMode, "stream", false, "run the rewrite path through a streaming cursor")
	flag.BoolVar(&statsMode, "stats", false, "print physical operator counters per configuration")
	flag.StringVar(&traceOutPath, "trace-out", "", "write the slowest traced run's trace JSON to this file")
	flag.DurationVar(&timeoutFlag, "timeout", 0, "abort any single measured run after this long (0 = no timeout)")
	flag.Int64Var(&maxRowsFlag, "max-rows", 0, "abort a run that produces more than n result rows (0 = unlimited)")
	flag.Parse()

	ran := false
	if *all || *fig == 2 {
		figure2(*reps, *scale)
		ran = true
	}
	if *all || *fig == 3 {
		figure3(*reps, *scale)
		ran = true
	}
	if *all || *inlineStats {
		inlineCoverage()
		ran = true
	}
	if *all || *storage {
		storageModels(*reps, *scale)
		ran = true
	}
	if *all || *push {
		pushdown(*reps, *scale, *jsonPath)
		ran = true
	}
	if *all || *obsOver {
		obsOverhead(*reps, *scale, *obsBaseline)
		ran = true
	}
	if *all || *eventsOver {
		benchEventsOverhead(*reps, *scale, *obsBaseline)
		ran = true
	}
	if *all || *execBench {
		benchExec(*reps, *scale, *workersFlag, *batchFlag, *execBaseline)
		ran = true
	}
	if *all || *history {
		benchHistory(*reps, *scale)
		ran = true
	}
	if *all || *walBench {
		benchWAL(*reps, *scale)
		ran = true
	}
	if *all || *serveBench {
		benchServe(*reps, *scale, *serveBaseline)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	writeTraceOut()
}

// traceOutPath is the -trace-out flag; the slowest traced run the tool
// performs (across every mode) has its trace JSON captured for it.
var (
	traceOutPath     string
	slowestTraceNS   int64
	slowestTraceJSON []byte
)

// recordSlowest keeps the trace JSON of the slowest traced run so far.
func recordSlowest(wall time.Duration, tr *obs.Trace) {
	if traceOutPath == "" || wall.Nanoseconds() <= slowestTraceNS {
		return
	}
	if b, err := tr.JSON(); err == nil {
		slowestTraceNS = wall.Nanoseconds()
		slowestTraceJSON = b
	}
}

// writeTraceOut flushes the slowest captured trace to -trace-out.
func writeTraceOut() {
	if traceOutPath == "" {
		return
	}
	if slowestTraceJSON == nil {
		fmt.Fprintln(os.Stderr, "-trace-out: no traced run was performed (use -pushdown or -obs-overhead)")
		os.Exit(1)
	}
	check(os.WriteFile(traceOutPath, append(slowestTraceJSON, '\n'), 0o644))
	fmt.Printf("wrote %s (slowest traced run: %v)\n", traceOutPath, time.Duration(slowestTraceNS))
}

// streamMode/statsMode are the -stream/-stats flags; timeoutFlag/maxRowsFlag
// govern each measured run.
var (
	streamMode  bool
	statsMode   bool
	timeoutFlag time.Duration
	maxRowsFlag int64
)

// runGovernor builds one run's execution governor from the -timeout and
// -max-rows flags. Returns a nil governor (every check a no-op) when neither
// flag is set; stop releases the timeout's timer.
func runGovernor() (*governor.G, context.CancelFunc) {
	if timeoutFlag <= 0 && maxRowsFlag <= 0 {
		return nil, func() {}
	}
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if timeoutFlag > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeoutFlag)
	}
	return governor.New(ctx).Limits(maxRowsFlag, 0, 0), cancel
}

// bench builds a database-backed case at size n and returns both paths.
type paths struct {
	rewrite   func() error
	noRewrite func() error
	bytes     int                   // serialized document size, the paper's X axis
	counters  func() relstore.Stats // physical operator counters so far
}

func load(name string, n int) (*paths, error) {
	c := xsltmark.ByName(name)
	if c == nil || c.Rel == nil {
		return nil, fmt.Errorf("case %q is not database-backed", name)
	}
	db := relstore.NewDB()
	if err := c.Rel.Setup(db, n); err != nil {
		return nil, err
	}
	for table, cols := range c.Rel.IndexCols {
		for _, col := range cols {
			if err := db.Table(table).CreateIndex(col); err != nil {
				return nil, err
			}
		}
	}
	exec := sqlxml.NewExecutor(db)
	view := c.Rel.View()
	schema, err := exec.DeriveSchema(view)
	if err != nil {
		return nil, err
	}
	sheet, err := xslt.ParseStylesheet(c.Stylesheet)
	if err != nil {
		return nil, err
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		return nil, err
	}
	plan, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		return nil, err
	}
	return &paths{
		rewrite: func() error {
			g, stop := runGovernor()
			defer stop()
			if !streamMode {
				docs, err := exec.ExecQueryParallelGoverned(plan, 1, &exec.Stats, g)
				if err != nil {
					return err
				}
				for range docs {
					if err := g.AddRow(); err != nil {
						return err
					}
				}
				return nil
			}
			// Streaming: pull one document at a time off the plan's access
			// path; counters still land in the executor aggregate.
			var sink relstore.Stats
			qc, err := exec.OpenQueryCursorGoverned(plan, &sink, g)
			if err != nil {
				return err
			}
			for {
				if _, err := qc.Next(); err == io.EOF {
					break
				} else if err != nil {
					return err
				}
				if err := g.AddRow(); err != nil {
					return err
				}
			}
			exec.AddStats(&sink)
			return nil
		},
		noRewrite: func() error {
			g, stop := runGovernor()
			defer stop()
			rows, err := exec.MaterializeViewGoverned(view, &exec.Stats, g)
			if err != nil {
				return err
			}
			eng := xslt.New(sheet).Govern(g)
			for _, row := range rows {
				if _, err := eng.Transform(row); err != nil {
					return err
				}
				if err := g.AddRow(); err != nil {
					return err
				}
			}
			return nil
		},
		bytes:    len(c.Gen(n)),
		counters: func() relstore.Stats { return exec.Stats.Snapshot() },
	}, nil
}

// printCounters reports a configuration's accumulated operator counters.
func printCounters(label string, p *paths) {
	if !statsMode {
		return
	}
	s := p.counters()
	fmt.Printf("  %s stats: scanned=%d probes=%d range-scans=%d full-scans=%d emitted=%d\n",
		label, s.RowsScanned, s.IndexProbes, s.RangeScans, s.FullScans, s.RowsEmitted)
}

func median(reps int, f func() error) time.Duration {
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func figure2(reps, scale int) {
	fmt.Println("Figure 2 — dbonerow: XSLT rewrite vs no-rewrite across document sizes")
	fmt.Println("(paper: 8M/16M/32M/64M stored docs; here: generated sales rows)")
	fmt.Printf("%-10s %-12s %-14s %-14s %-8s\n", "rows", "doc-bytes", "rewrite", "no-rewrite", "speedup")
	for _, n := range []int{2000 * scale, 4000 * scale, 8000 * scale, 16000 * scale} {
		p, err := load("dbonerow", n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := median(reps, p.rewrite)
		nr := median(reps, p.noRewrite)
		fmt.Printf("%-10d %-12d %-14s %-14s %.0fx\n", n, p.bytes, r, nr, float64(nr)/float64(r))
		printCounters(fmt.Sprintf("n=%d", n), p)
	}
	fmt.Println()
}

func figure3(reps, scale int) {
	fmt.Println("Figure 3 — avts/chart/metric/total: rewrite vs no-rewrite (no value index)")
	fmt.Printf("%-10s %-14s %-14s %-8s\n", "case", "rewrite", "no-rewrite", "speedup")
	for _, name := range []string{"avts", "chart", "metric", "total"} {
		p, err := load(name, 4000*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := median(reps, p.rewrite)
		nr := median(reps, p.noRewrite)
		fmt.Printf("%-10s %-14s %-14s %.0fx\n", name, r, nr, float64(nr)/float64(r))
		printCounters(name, p)
	}
	fmt.Println()
}

// storageModels reproduces the §7.4 study: the Example 1 workload over the
// three physical storage models.
func storageModels(reps, scale int) {
	fmt.Println("Storage models (§7.4) — Example 1 stylesheet over many dept documents")
	nDepts := 200 * scale
	db := relstore.NewDB()
	if err := sqlxml.SetupDeptEmp(db); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for d := 1000; d < 1000+nDepts; d++ {
		_, _ = db.Table("dept").Insert(int64(d), fmt.Sprintf("D%d", d), "CITY")
		for e := 0; e < 20; e++ {
			_, _ = db.Table("emp").Insert(int64(d*100+e), fmt.Sprintf("E%d", e), "STAFF",
				int64(500+(e*397)%4500), int64(d))
		}
	}
	_ = db.Table("emp").CreateIndex("sal")
	_ = db.Table("emp").CreateIndex("deptno")
	exec := sqlxml.NewExecutor(db)
	view := sqlxml.DeptEmpView()
	schema, err := exec.DeriveSchema(view)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sheet, err := xslt.ParseStylesheet(xslt.PaperStylesheet)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	store := clobstore.New()
	docs, err := exec.MaterializeView(view)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, doc := range docs {
		if _, err := store.Add(doc.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	eng := xslt.New(sheet)

	rows := []struct {
		name string
		f    func() error
	}{
		{"object-relational", func() error { _, err := exec.ExecQuery(plan); return err }},
		{"tree", func() error {
			for id := 0; id < store.Len(); id++ {
				doc, err := store.Tree(id)
				if err != nil {
					return err
				}
				if _, err := eng.Transform(doc); err != nil {
					return err
				}
			}
			return nil
		}},
		{"clob", func() error {
			for id := 0; id < store.Len(); id++ {
				doc, err := store.ParseDoc(id)
				if err != nil {
					return err
				}
				if _, err := eng.Transform(doc); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	fmt.Printf("%-20s %s\n", "storage", "time")
	for _, r := range rows {
		fmt.Printf("%-20s %v\n", r.name, median(reps, r.f))
	}
	fmt.Println()
}

// pushdown measures the PR's headline scenario: a single-document lookup by
// indexed key over a large driving table, executed through the public Run
// API with the predicate pushed down to an index probe versus the
// WithoutPushdown full-scan baseline. With -json, the rows are also written
// as a machine-readable artifact (BENCH_pushdown.json in CI).
func pushdown(reps, scale int, jsonPath string) {
	fmt.Println("Pushdown — lookup by indexed key via Run(WithWhere, WithParam): probe vs full scan")
	fmt.Printf("%-10s %-14s %-14s %-9s %s\n", "rows", "index-probe", "full-scan", "speedup", "probe access path")

	type measurement struct {
		Rows        int     `json:"rows"`
		ProbeNanos  int64   `json:"probe_ns"`
		ScanNanos   int64   `json:"scan_ns"`
		Speedup     float64 `json:"speedup"`
		AccessPath  string  `json:"access_path"`
		RowsScanned int64   `json:"full_scan_rows_scanned"`
	}
	var out []measurement

	for _, n := range []int{10_000 * scale, 100_000 * scale} {
		ct := keyedLookupTransform(n)

		key := 0
		lookup := func(extra ...xsltdb.RunOption) func() error {
			return func() error {
				key = (key*7919 + 1) % n
				opts := append([]xsltdb.RunOption{
					xsltdb.WithWhere("@id = $key"), xsltdb.WithParam("key", key),
				}, extra...)
				res, err := ct.Run(context.Background(), opts...)
				if err != nil {
					return err
				}
				if len(res.Rows) != 1 {
					return fmt.Errorf("lookup produced %d rows, want 1", len(res.Rows))
				}
				return nil
			}
		}
		probe := median(reps, lookup())
		scan := median(reps, lookup(xsltdb.WithoutPushdown()))

		// One traced run of each flavor for the reported access path and scan
		// work (these also feed -trace-out).
		probeRes, err := tracedRun(ct, xsltdb.WithWhere("@id = 1"))
		check(err)
		scanRes, err := tracedRun(ct, xsltdb.WithWhere("@id = 1"), xsltdb.WithoutPushdown())
		check(err)

		m := measurement{
			Rows:        n,
			ProbeNanos:  probe.Nanoseconds(),
			ScanNanos:   scan.Nanoseconds(),
			Speedup:     float64(scan) / float64(probe),
			AccessPath:  probeRes.Stats.AccessPath,
			RowsScanned: scanRes.Stats.RowsScanned,
		}
		out = append(out, m)
		fmt.Printf("%-10d %-14s %-14s %-9s %s\n", n, probe, scan,
			fmt.Sprintf("%.0fx", m.Speedup), m.AccessPath)
	}
	fmt.Println()

	if jsonPath != "" {
		b, err := json.MarshalIndent(out, "", "  ")
		check(err)
		check(os.WriteFile(jsonPath, append(b, '\n'), 0o644))
		fmt.Printf("wrote %s\n\n", jsonPath)
	}
}

// keyedLookupTransform builds the pushdown workload: an n-row table with an
// index on id behind a one-element-per-row view, and a one-template lookup
// stylesheet compiled against it.
func keyedLookupTransform(n int) *xsltdb.CompiledTransform {
	_, ct := keyedLookupDB(n)
	return ct
}

// keyedLookupDB is keyedLookupTransform exposing the database too, for
// benchmarks that toggle database-level features (run history).
func keyedLookupDB(n int) (*xsltdb.Database, *xsltdb.CompiledTransform) {
	const sheet = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="row"><hit><xsl:value-of select="name"/></hit></xsl:template>
</xsl:stylesheet>`
	db := xsltdb.NewDatabase()
	check(db.CreateTable("row",
		xsltdb.TableColumn{Name: "id", Type: xsltdb.IntCol},
		xsltdb.TableColumn{Name: "name", Type: xsltdb.StringCol}))
	for i := 0; i < n; i++ {
		check(db.Insert("row", int64(i), fmt.Sprintf("name-%d", i)))
	}
	check(db.CreateIndex("row", "id"))
	check(db.CreateXMLView(&xsltdb.ViewDef{
		Name:  "rows",
		Table: "row",
		Body: &xsltdb.XMLElement{
			Name:  "row",
			Attrs: []xsltdb.XMLAttr{{Name: "id", Value: &xsltdb.XMLColumn{Name: "id"}}},
			Children: []xsltdb.XMLExpr{
				&xsltdb.XMLElement{Name: "name", Children: []xsltdb.XMLExpr{&xsltdb.XMLColumn{Name: "name"}}},
			},
		},
	}))
	ct, err := db.CompileTransform("rows", sheet)
	check(err)
	return db, ct
}

// tracedRun executes one Run with a trace attached and offers it to the
// -trace-out slowest-run capture.
func tracedRun(ct *xsltdb.CompiledTransform, opts ...xsltdb.RunOption) (*xsltdb.Result, error) {
	tr := obs.New()
	defer tr.Release()
	start := time.Now()
	res, err := ct.Run(context.Background(), append(opts, xsltdb.WithTrace(tr))...)
	recordSlowest(time.Since(start), tr)
	return res, err
}

// countSpanOps estimates the number of instrumentation call sites one traced
// run exercised: per span, its creation and End plus every Observe, rows
// counter touch, and attribute. On the nil-trace fast path each of these ops
// collapses to a nil check, so ops × nil-op cost bounds the fast path's
// overhead.
func countSpanOps(spans []obs.SpanJSON) int64 {
	var n int64
	for _, s := range spans {
		n += 2 // Start + End/first-Observe
		n += s.Count
		if s.RowsIn > 0 {
			n++
		}
		if s.RowsOut > 0 {
			n++
		}
		n += int64(len(s.Attrs))
		n += countSpanOps(s.Children)
	}
	return n
}

// obsOverhead measures what the observability layer costs: the nil-trace
// fast path (no WithTrace — every span op is a nil check) versus a run with
// an attached trace, over the indexed-lookup workload. The estimated
// nil-trace overhead — span ops per run × measured nil-op cost, relative to
// the untraced run — is the guard: ≥2% fails the run. Results are written to
// BENCH_obs.json (`make bench-obs`).
func obsOverhead(reps, scale int, baselinePath string) {
	fmt.Println("Observability overhead — nil-trace fast path vs attached trace (indexed lookup)")
	n := 20_000 * scale
	ct := keyedLookupTransform(n)

	key := 0
	run := func(opts ...xsltdb.RunOption) error {
		key = (key*7919 + 1) % n
		all := append([]xsltdb.RunOption{
			xsltdb.WithWhere("@id = $key"), xsltdb.WithParam("key", key),
		}, opts...)
		res, err := ct.Run(context.Background(), all...)
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			return fmt.Errorf("lookup produced %d rows, want 1", len(res.Rows))
		}
		return nil
	}

	const batch = 500
	untraced := median(reps, func() error {
		for i := 0; i < batch; i++ {
			if err := run(); err != nil {
				return err
			}
		}
		return nil
	})
	var opsPerRun int64
	traced := median(reps, func() error {
		for i := 0; i < batch; i++ {
			tr := obs.New()
			start := time.Now()
			if err := run(xsltdb.WithTrace(tr)); err != nil {
				tr.Release()
				return err
			}
			recordSlowest(time.Since(start), tr)
			if opsPerRun == 0 {
				opsPerRun = countSpanOps(tr.Export())
			}
			tr.Release()
		}
		return nil
	})

	// Cost of one span op on the nil fast path: method calls on a nil *Span
	// reduce to a receiver nil check.
	const nilIters = 1 << 21
	var sp *obs.Span
	nilStart := time.Now()
	for i := 0; i < nilIters; i++ {
		child := sp.Start("x")
		child.ObserveSince(nilStart)
		child.AddRowsOut(1)
		child.End()
	}
	nilOpNS := float64(time.Since(nilStart).Nanoseconds()) / (nilIters * 4)

	untracedRunNS := untraced.Nanoseconds() / batch
	tracedRunNS := traced.Nanoseconds() / batch
	tracedPct := (float64(tracedRunNS) - float64(untracedRunNS)) / float64(untracedRunNS) * 100
	nilPct := float64(opsPerRun) * nilOpNS / float64(untracedRunNS) * 100

	m := loadObsMeasurement()
	m.Rows = n
	m.UntracedRunNanos = untracedRunNS
	m.TracedRunNanos = tracedRunNS
	m.TracedOverheadPct = tracedPct
	m.SpanOpsPerRun = opsPerRun
	m.NilSpanOpNanos = nilOpNS
	m.NilTraceOverheadPct = nilPct
	m.GuardMaxPct = 2.0
	m.GuardOK = nilPct < 2.0
	fmt.Printf("%-22s %-14s %-14s %-10s %s\n", "", "untraced", "traced", "overhead", "nil-path overhead (est)")
	fmt.Printf("%-22s %-14s %-14s %-10s %.4f%% (%d ops × %.2fns/op)\n",
		fmt.Sprintf("lookup n=%d", n),
		time.Duration(untracedRunNS), time.Duration(tracedRunNS),
		fmt.Sprintf("%.1f%%", tracedPct), nilPct, opsPerRun, nilOpNS)
	fmt.Println()

	writeObsMeasurement(m)
	if baselinePath != "" {
		compareObsBaseline(baselinePath, m)
	}
	if !m.GuardOK {
		fmt.Fprintf(os.Stderr, "obs-overhead guard FAILED: estimated nil-trace overhead %.4f%% >= %.1f%%\n", nilPct, m.GuardMaxPct)
		writeTraceOut()
		os.Exit(1)
	}
	fmt.Println()
}

// obsMeasurement is the BENCH_obs.json schema, shared by the -obs-overhead
// and -events-overhead measurements and their baseline comparisons. The two
// halves regenerate independently (read-merge-write), so either bench can
// run alone without clobbering the other's committed numbers.
type obsMeasurement struct {
	Rows                int     `json:"rows"`
	UntracedRunNanos    int64   `json:"untraced_run_ns"`
	TracedRunNanos      int64   `json:"traced_run_ns"`
	TracedOverheadPct   float64 `json:"traced_overhead_pct"`
	SpanOpsPerRun       int64   `json:"span_ops_per_run"`
	NilSpanOpNanos      float64 `json:"nil_span_op_ns"`
	NilTraceOverheadPct float64 `json:"nil_trace_overhead_pct"`
	GuardMaxPct         float64 `json:"guard_max_pct"`
	GuardOK             bool    `json:"guard_ok"`

	EventsOffRPS      float64 `json:"events_off_rps,omitempty"`
	EventsOnRPS       float64 `json:"events_on_rps,omitempty"`
	EventsOverheadPct float64 `json:"events_overhead_pct"`
	EventsGuardMaxPct float64 `json:"events_guard_max_pct,omitempty"`
	EventsGuardOK     bool    `json:"events_guard_ok"`
	EventsPublished   int64   `json:"events_published,omitempty"`
	EventsDropped     int64   `json:"events_dropped"`
}

// compareObsBaseline reports this measurement against a committed
// BENCH_obs.json: the regression signal for `make bench-obs`. The delta is
// informational — span ops are deterministic and worth flagging loudly, but
// the hard gate stays the absolute <2% nil-trace guard, which is robust to
// machine-speed differences in a way a nanosecond delta is not.
func compareObsBaseline(path string, m obsMeasurement) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no baseline to compare (%v)\n", err)
		return
	}
	var base obsMeasurement
	if err := json.Unmarshal(b, &base); err != nil {
		fmt.Fprintf(os.Stderr, "obs baseline %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("vs baseline %s: span-ops %d -> %d (%+d), nil-path overhead %.4f%% -> %.4f%%\n",
		path, base.SpanOpsPerRun, m.SpanOpsPerRun, m.SpanOpsPerRun-base.SpanOpsPerRun,
		base.NilTraceOverheadPct, m.NilTraceOverheadPct)
	if base.SpanOpsPerRun > 0 && m.SpanOpsPerRun > base.SpanOpsPerRun {
		fmt.Printf("note: span ops per run grew by %d — new instrumentation sites on the hot path\n",
			m.SpanOpsPerRun-base.SpanOpsPerRun)
	}
}

// execConfigMeasure is one batched/morsel configuration's throughput.
type execConfigMeasure struct {
	Workers    int     `json:"workers"`
	Nanos      int64   `json:"ns"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// execMeasurement is one table size's row of BENCH_exec.json.
type execMeasurement struct {
	Rows          int                 `json:"rows"`
	MatchRows     int                 `json:"match_rows"`
	RowAtNanos    int64               `json:"row_at_a_time_ns"`
	RowAtRate     float64             `json:"row_at_a_time_rows_per_sec"`
	Batched       []execConfigMeasure `json:"batched"`
	BatchSpeedup  float64             `json:"batch_speedup"`
	MorselSpeedup float64             `json:"morsel_speedup"`
}

// execReport is the BENCH_exec.json schema.
type execReport struct {
	GOMAXPROCS     int               `json:"gomaxprocs"`
	BatchSize      int               `json:"batch_size"`
	BatchGuardMin  float64           `json:"batch_guard_min"`
	MorselGuardMin float64           `json:"morsel_guard_min"`
	MorselGuardOn  bool              `json:"morsel_guard_applied"`
	GuardOK        bool              `json:"guard_ok"`
	Measurements   []execMeasurement `json:"measurements"`
}

// benchExec measures what the batch-at-a-time redesign bought: a selective
// (~1%) non-indexed full scan under a live governor, executed three ways.
//
//   - row-at-a-time reproduces the pre-batch engine's per-row cost profile:
//     a bounds check and a cell read each taking the table read-lock, a
//     predicate evaluated through the string-keyed Value API, and one
//     governor tick — per row.
//   - batched (workers=1) is the serial BatchIterator: one lock snapshot,
//     one governor charge and one fault check per chunk, predicates
//     pre-resolved to column ordinals.
//   - morsel (workers>1) adds the morsel-parallel scan with its
//     order-preserving merge.
//
// Guards, applied to the largest table size: batched must be >=1.3x
// row-at-a-time on one worker, and with GOMAXPROCS>1 the best morsel config
// must be >=2x. A failed guard exits non-zero (`make bench-exec` in verify).
// Speedup ratios, not absolute nanoseconds, are the gate so the guard is
// robust to machine-speed differences; -exec-baseline reports the deltas
// against the committed artifact for the loud-flag signal.
func benchExec(reps, scale, workersFlag, batchFlag int, baselinePath string) {
	fmt.Println("Execution engine — row-at-a-time vs batched vs morsel-parallel scan (~1% selective)")
	maxProcs := runtime.GOMAXPROCS(0)
	topWorkers := maxProcs
	if workersFlag > 0 {
		topWorkers = workersFlag
	}
	workerSet := []int{1, 2}
	if topWorkers > 2 {
		workerSet = append(workerSet, topWorkers)
	}

	report := execReport{
		GOMAXPROCS:     maxProcs,
		BatchSize:      batchFlag,
		BatchGuardMin:  1.3,
		MorselGuardMin: 2.0,
		MorselGuardOn:  maxProcs > 1,
		GuardOK:        true,
	}
	fmt.Printf("%-10s %-16s %-20s %-10s %s\n", "rows", "config", "time", "rows/sec", "speedup")

	for _, n := range []int{10_000 * scale, 100_000 * scale} {
		tab, err := relstore.NewTable("scan",
			relstore.Column{Name: "id", Type: relstore.IntCol},
			relstore.Column{Name: "v", Type: relstore.IntCol})
		check(err)
		want := 0
		for i := 0; i < n; i++ {
			v := int64((i * 7919) % 1000)
			if v < 10 {
				want++
			}
			_, err := tab.Insert(int64(i), v)
			check(err)
		}
		preds := []relstore.Pred{{Col: "v", Op: relstore.CmpLt, Val: int64(10)}}

		rate := func(d time.Duration) float64 {
			return float64(n) / d.Seconds()
		}

		rowat := median(reps, func() error {
			g := governor.New(context.Background())
			got := 0
			for id := 0; id < tab.NumRows(); id++ {
				if preds[0].Matches(tab.Value(id, "v")) {
					got++
				}
				if err := g.Tick(); err != nil {
					return err
				}
			}
			if got != want {
				return fmt.Errorf("row-at-a-time matched %d rows, want %d", got, want)
			}
			return nil
		})
		m := execMeasurement{
			Rows:       n,
			MatchRows:  want,
			RowAtNanos: rowat.Nanoseconds(),
			RowAtRate:  rate(rowat),
		}
		fmt.Printf("%-10d %-16s %-20s %-10.0f %s\n", n, "row-at-a-time", rowat, m.RowAtRate, "1.0x")

		for _, w := range workerSet {
			w := w
			d := median(reps, func() error {
				g := governor.New(context.Background())
				opts := relstore.BatchOpts{Workers: w, BatchSize: batchFlag}
				it := relstore.FullScanPlan(tab, preds).OpenBatch(tab, nil, g, opts)
				b := relstore.GetBatch(opts.Size())
				defer relstore.PutBatch(b)
				got := 0
				for {
					k, ok := it.NextBatch(b)
					if !ok {
						break
					}
					got += k
				}
				if err := it.Err(); err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("workers=%d matched %d rows, want %d", w, got, want)
				}
				return nil
			})
			speedup := float64(rowat) / float64(d)
			m.Batched = append(m.Batched, execConfigMeasure{Workers: w, Nanos: d.Nanoseconds(), RowsPerSec: rate(d)})
			label := fmt.Sprintf("batched w=%d", w)
			fmt.Printf("%-10d %-16s %-20s %-10.0f %.1fx\n", n, label, d, rate(d), speedup)
			if w == 1 {
				m.BatchSpeedup = speedup
			} else if speedup > m.MorselSpeedup {
				m.MorselSpeedup = speedup
			}
		}
		report.Measurements = append(report.Measurements, m)
	}
	fmt.Println()

	// The guards read the largest (steadiest) measurement.
	last := report.Measurements[len(report.Measurements)-1]
	if last.BatchSpeedup < report.BatchGuardMin {
		report.GuardOK = false
		fmt.Fprintf(os.Stderr, "exec guard FAILED: batched speedup %.2fx < %.1fx at %d rows\n",
			last.BatchSpeedup, report.BatchGuardMin, last.Rows)
	}
	if report.MorselGuardOn && last.MorselSpeedup < report.MorselGuardMin {
		report.GuardOK = false
		fmt.Fprintf(os.Stderr, "exec guard FAILED: morsel speedup %.2fx < %.1fx at %d rows (GOMAXPROCS=%d)\n",
			last.MorselSpeedup, report.MorselGuardMin, last.Rows, maxProcs)
	}

	// Compare against the committed baseline before overwriting it.
	if baselinePath != "" {
		compareExecBaseline(baselinePath, report)
	}
	b, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_exec.json", append(b, '\n'), 0o644))
	fmt.Println("wrote BENCH_exec.json")
	if !report.GuardOK {
		os.Exit(1)
	}
	fmt.Println()
}

// compareExecBaseline reports this measurement against a committed
// BENCH_exec.json. Like the obs baseline, the delta is informational — the
// hard gate stays the machine-independent speedup guards.
func compareExecBaseline(path string, r execReport) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no baseline to compare (%v)\n", err)
		return
	}
	var base execReport
	if err := json.Unmarshal(b, &base); err != nil {
		fmt.Fprintf(os.Stderr, "exec baseline %s: %v\n", path, err)
		os.Exit(1)
	}
	if len(base.Measurements) == 0 || len(r.Measurements) == 0 {
		return
	}
	old := base.Measurements[len(base.Measurements)-1]
	cur := r.Measurements[len(r.Measurements)-1]
	fmt.Printf("vs baseline %s (at %d rows): batch speedup %.2fx -> %.2fx, morsel speedup %.2fx -> %.2fx\n",
		path, cur.Rows, old.BatchSpeedup, cur.BatchSpeedup, old.MorselSpeedup, cur.MorselSpeedup)
	if cur.BatchSpeedup < old.BatchSpeedup*0.8 {
		fmt.Printf("note: batch speedup fell more than 20%% below the committed baseline\n")
	}
}

// benchHistory measures the run-history archive's cost on the hot path: the
// same indexed lookup with the archive disabled (one atomic load per run),
// enabled (every run appends a RunRecord and folds into per-plan
// aggregates), and enabled while console readers concurrently snapshot
// /runs and /plans — the contention case the lock-cheap ring is built for.
func benchHistory(reps, scale int) {
	fmt.Println("Run-history archive overhead (indexed lookup)")
	n := 20_000 * scale
	db, ct := keyedLookupDB(n)

	key := 0
	run := func() error {
		key = (key*7919 + 1) % n
		res, err := ct.Run(context.Background(),
			xsltdb.WithWhere("@id = $key"), xsltdb.WithParam("key", key))
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			return fmt.Errorf("lookup produced %d rows, want 1", len(res.Rows))
		}
		return nil
	}
	const batch = 500
	batched := func() error {
		for i := 0; i < batch; i++ {
			if err := run(); err != nil {
				return err
			}
		}
		return nil
	}

	disabled := median(reps, batched)

	arch := db.EnableRunHistory(0)
	enabled := median(reps, batched)

	// Console readers hammering the archive while runs append to it.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = arch.Runs(50)
					_ = arch.Plans()
					_ = db.PlanCacheEntries()
				}
			}
		}()
	}
	contended := median(reps, batched)
	close(stop)
	wg.Wait()

	per := func(d time.Duration) time.Duration { return d / batch }
	pct := func(d time.Duration) float64 {
		return (float64(d) - float64(disabled)) / float64(disabled) * 100
	}
	fmt.Printf("%-26s %-14s %s\n", "", "per run", "vs disabled")
	fmt.Printf("%-26s %-14s %s\n", "archive disabled", per(disabled), "-")
	fmt.Printf("%-26s %-14s %+.1f%%\n", "archive enabled", per(enabled), pct(enabled))
	fmt.Printf("%-26s %-14s %+.1f%%  (4 reader goroutines)\n", "enabled + console readers", per(contended), pct(contended))
	fmt.Printf("archived: %d records retained (cap %d), %d plan aggregates\n\n",
		arch.Len(), arch.Cap(), len(arch.Plans()))
}

// check aborts the benchmark on a setup error.
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func inlineCoverage() {
	fmt.Println("Inline coverage — XSLT→XQuery full-inline rate over the 40-case suite")
	inlined := 0
	var noninline []string
	for _, c := range xsltmark.All() {
		sheet, err := xslt.ParseStylesheet(c.Stylesheet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: stylesheet: %v\n", c.Name, err)
			os.Exit(1)
		}
		schema, err := xschema.ParseCompact(c.Schema)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: schema: %v\n", c.Name, err)
			os.Exit(1)
		}
		res, err := core.Rewrite(sheet, schema, core.ModeAuto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", c.Name, err)
			os.Exit(1)
		}
		if res.Inlined {
			inlined++
		} else {
			noninline = append(noninline, c.Name)
		}
	}
	fmt.Printf("fully inlined: %d / 40 (paper reports 23/40)\n", inlined)
	fmt.Printf("non-inline (recursive): %v\n\n", noninline)
}

// --- WAL fsync-policy microbenchmark (-wal) ---

// walConfigMeasure is one fsync policy's measurement: durable insert
// throughput plus the cost of replaying the resulting log on reopen.
type walConfigMeasure struct {
	Policy        string  `json:"policy"`
	InsertNanos   int64   `json:"insert_ns"`
	InsertsPerSec float64 `json:"inserts_per_sec"`
	ReplayNanos   int64   `json:"replay_ns"`
	ReplayRecords int     `json:"replay_records"`
	SlowdownVsMem float64 `json:"slowdown_vs_memory"`
}

type walReport struct {
	Rows     int                `json:"rows"`
	MemNanos int64              `json:"in_memory_ns"`
	MemRate  float64            `json:"in_memory_inserts_per_sec"`
	Configs  []walConfigMeasure `json:"configs"`
}

// benchWAL measures what durability costs: n facade Inserts into an
// in-memory database (the baseline), then into WAL-backed databases under
// each fsync policy, then the replay wall time of reopening each log.
// Medians over reps; artifact BENCH_wal.json (the `make bench-wal` target).
func benchWAL(reps, scale int) {
	n := 1000 * scale
	cols := []xsltdb.TableColumn{
		{Name: "id", Type: xsltdb.IntCol},
		{Name: "name", Type: xsltdb.StringCol},
	}
	fill := func(d *xsltdb.Database) error {
		if err := d.CreateTable("wal_bench", cols...); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := d.Insert("wal_bench", int64(i), fmt.Sprintf("payload-%06d", i)); err != nil {
				return err
			}
		}
		return nil
	}

	report := walReport{Rows: n}
	mem := median(reps, func() error { return fill(xsltdb.NewDatabase()) })
	report.MemNanos = mem.Nanoseconds()
	report.MemRate = float64(n) / mem.Seconds()
	fmt.Printf("%-10d %-14s %-20s %-12s %s\n", n, "in-memory", mem, fmt.Sprintf("%.0f/s", report.MemRate), "1.0x")

	configs := []struct {
		name string
		opts []xsltdb.OpenOption
	}{
		{"never", []xsltdb.OpenOption{xsltdb.WithSyncPolicy(xsltdb.SyncNever)}},
		{"interval-16", []xsltdb.OpenOption{xsltdb.WithSyncPolicy(xsltdb.SyncInterval), xsltdb.WithSyncEvery(16)}},
		{"always", []xsltdb.OpenOption{xsltdb.WithSyncPolicy(xsltdb.SyncAlways)}},
	}
	for _, cfg := range configs {
		// Keep the last populated log directory around for the replay leg.
		var lastDir string
		insert := median(reps, func() error {
			if lastDir != "" {
				os.RemoveAll(lastDir)
			}
			dir, err := os.MkdirTemp("", "xsltdb-walbench-*")
			if err != nil {
				return err
			}
			lastDir = dir
			d, err := xsltdb.Open(append([]xsltdb.OpenOption{xsltdb.WithDir(dir)}, cfg.opts...)...)
			if err != nil {
				return err
			}
			if err := fill(d); err != nil {
				return err
			}
			return d.Close()
		})
		var replayRecords int
		replay := median(reps, func() error {
			d, err := xsltdb.Open(xsltdb.WithDir(lastDir))
			if err != nil {
				return err
			}
			replayRecords = d.RecoveryStats().Records
			return d.Close()
		})
		os.RemoveAll(lastDir)
		m := walConfigMeasure{
			Policy:        cfg.name,
			InsertNanos:   insert.Nanoseconds(),
			InsertsPerSec: float64(n) / insert.Seconds(),
			ReplayNanos:   replay.Nanoseconds(),
			ReplayRecords: replayRecords,
			SlowdownVsMem: float64(insert) / float64(mem),
		}
		report.Configs = append(report.Configs, m)
		fmt.Printf("%-10d %-14s %-20s %-12s %.1fx   (replay %s, %d records)\n",
			n, cfg.name, insert, fmt.Sprintf("%.0f/s", m.InsertsPerSec), m.SlowdownVsMem, replay, replayRecords)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_wal.json", append(b, '\n'), 0o644))
	fmt.Println("wrote BENCH_wal.json")
	fmt.Println()
}
