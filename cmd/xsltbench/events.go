package main

// The wide-event pipeline overhead benchmark (`xsltbench -events-overhead`,
// part of `make bench-obs` and the verify chain): the cached serving mix
// from the -serve benchmark run twice over loopback HTTP — events off versus
// events on with an NDJSON sink writing to io.Discard AND the diagnostics
// layer live (detector monitor on the bus, flight recorder armed) — so the
// measured delta is the full per-request telemetry cost (trace-context
// minting, event assembly, bus publish, sink encode, detector feeding) on
// the cheapest request the server can serve, where the relative overhead is
// largest. The guard fails the run if events-on throughput is more than 3%
// below events-off. Results merge into BENCH_obs.json alongside the
// trace-overhead measurement.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"runtime"

	xsltdb "repro"
	"repro/internal/obs"
	"repro/internal/sqlxml"
	"repro/internal/xslt"
	"repro/serve"
)

// eventsGuardMaxPct fails the bench when the event pipeline costs more than
// this fraction of cached-mix throughput.
const eventsGuardMaxPct = 3.0

// benchEventsOverhead measures the wide-event pipeline's request-path cost.
func benchEventsOverhead(reps, scale int, baselinePath string) {
	fmt.Println("Event-pipeline overhead — cached serving mix, events off vs on (NDJSON to io.Discard)")
	depts := 50 * scale
	db := xsltdb.NewDatabase()
	check(sqlxml.SetupDeptEmp(db.Rel()))
	for i := 0; i < depts; i++ {
		check(db.Insert("dept", int64(100+i), fmt.Sprintf("DEPT-%05d", i), "NOWHERE"))
	}
	check(db.CreateXMLView(sqlxml.DeptEmpView()))

	conc := runtime.GOMAXPROCS(0)
	if conc < 2 {
		conc = 2
	}
	// A difference measurement needs long windows: 400 requests finish in
	// ~25ms on the cached mix, the same order as an OS scheduling quantum, so
	// a short window's RPS is mostly noise. 8x stretches each measurement to
	// a few hundred milliseconds.
	total := 8 * 400 * scale

	// The events-on server also runs the diagnostics layer, so the <3% guard
	// covers detector evaluation and the latency-spike window feed, not just
	// event encode.
	diagDir, err := os.MkdirTemp("", "xsltbench-diag-")
	check(err)
	defer os.RemoveAll(diagDir)

	newServer := func(events bool) (*serve.Server, *httptest.Server) {
		cfg := serve.Config{DB: db, CacheCapacity: 256}
		if events {
			cfg.EnableEvents = true
			cfg.EventSinks = []obs.EventSink{obs.NewNDJSONSink(io.Discard)}
			cfg.DiagDir = diagDir
		}
		srv, err := serve.New(cfg)
		check(err)
		check(srv.RegisterTransform("paper", "dept_emp", xslt.PaperStylesheet))
		return srv, httptest.NewServer(srv.Handler())
	}
	srvOff, tsOff := newServer(false)
	srvOn, tsOn := newServer(true)
	warm(tsOff.URL + "/v1/transform/paper")
	warm(tsOn.URL + "/v1/transform/paper")

	// Run the mixes as adjacent off/on pairs and guard on the cleanest pair's
	// delta. Interleaving makes heap growth, GC drift, and other
	// whole-process trends hit both configurations equally instead of
	// penalizing whichever runs second; taking the minimum pair delta filters
	// the scheduling noise of a shared host, which only ever inflates the
	// apparent gap — any single quiet pair exposes the true cost.
	var off, on serveMixResult
	minDelta := math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		o := bestServeMix(1, tsOff.URL, conc, total, func(int) string { return "/v1/transform/paper" })
		n := bestServeMix(1, tsOn.URL, conc, total, func(int) string { return "/v1/transform/paper" })
		delta := (o.RPS - n.RPS) / o.RPS
		if delta < minDelta {
			minDelta, off, on = delta, o, n
		}
	}
	tsOff.Close()
	srvOff.Close()
	tsOn.Close()
	srvOn.EventBus().Flush()
	busStats := srvOn.EventBus().Stats()
	srvOn.Close()

	// Noise can make events-on come out faster; a negative overhead is a
	// pass, not a credit, so it clamps to zero.
	overheadPct := minDelta * 100
	if overheadPct < 0 {
		overheadPct = 0
	}

	m := loadObsMeasurement()
	m.EventsOffRPS = off.RPS
	m.EventsOnRPS = on.RPS
	m.EventsOverheadPct = overheadPct
	m.EventsGuardMaxPct = eventsGuardMaxPct
	m.EventsGuardOK = overheadPct < eventsGuardMaxPct
	m.EventsPublished = int64(busStats.Published)
	m.EventsDropped = int64(busStats.Dropped)

	fmt.Printf("%-14s %-12s %-12s %-12s\n", "mix", "requests", "rps", "p95")
	fmt.Printf("%-14s %-12d %-12.0f %.2fms\n", "events-off", off.Requests, off.RPS, off.P95Ms)
	fmt.Printf("%-14s %-12d %-12.0f %.2fms\n", "events-on", on.Requests, on.RPS, on.P95Ms)
	fmt.Printf("events published: %d, dropped: %d\n", busStats.Published, busStats.Dropped)
	fmt.Printf("event-pipeline overhead: %.2f%% (guard: < %.1f%%)\n", overheadPct, eventsGuardMaxPct)

	if baselinePath != "" {
		compareEventsBaseline(baselinePath, m)
	}
	writeObsMeasurement(m)
	if !m.EventsGuardOK {
		fmt.Fprintf(os.Stderr, "events-overhead guard FAILED: %.2f%% >= %.1f%%\n",
			overheadPct, eventsGuardMaxPct)
		os.Exit(1)
	}
	fmt.Println()
}

// compareEventsBaseline reports the events-overhead delta against a
// committed BENCH_obs.json. Informational; the hard gate stays the absolute
// <3% guard, which is robust to machine-speed differences.
func compareEventsBaseline(path string, m obsMeasurement) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no baseline to compare (%v)\n", err)
		return
	}
	var base obsMeasurement
	if err := json.Unmarshal(b, &base); err != nil {
		fmt.Fprintf(os.Stderr, "obs baseline %s: %v\n", path, err)
		return
	}
	if base.EventsOffRPS == 0 {
		fmt.Printf("baseline %s has no events measurement yet\n", path)
		return
	}
	fmt.Printf("vs baseline %s: events overhead %.2f%% -> %.2f%%\n",
		path, base.EventsOverheadPct, m.EventsOverheadPct)
}

// loadObsMeasurement reads the existing BENCH_obs.json so the trace-overhead
// and events-overhead halves of the artifact can be regenerated
// independently without clobbering each other.
func loadObsMeasurement() obsMeasurement {
	var m obsMeasurement
	if b, err := os.ReadFile("BENCH_obs.json"); err == nil {
		_ = json.Unmarshal(b, &m)
	}
	return m
}

// writeObsMeasurement writes the merged artifact.
func writeObsMeasurement(m obsMeasurement) {
	b, err := json.MarshalIndent(m, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_obs.json", append(b, '\n'), 0o644))
	fmt.Println("wrote BENCH_obs.json")
}
