package main

// The serving-layer load driver (`xsltbench -serve`, `make bench-serve`):
// a wrk-style closed-loop benchmark against a real xsltd HTTP server (the
// serve package mounted on a loopback listener), measuring three request
// mixes:
//
//   uncached   — every request has a unique parameter binding, so every
//                request compiles nothing but executes the transform
//   cached     — every request is identical, served from the result cache
//   coalesced  — identical requests with the cache disabled, so throughput
//                comes from singleflight execution sharing
//
// The hard gate is self-relative so it holds on any machine: the cached mix
// must be >= 2x the uncached mix's throughput (the cache must actually
// pay), and every request in every mix must succeed. Results are written to
// BENCH_serve.json; -serve-baseline reports deltas against the committed
// artifact.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	xsltdb "repro"
	"repro/internal/sqlxml"
	"repro/internal/xslt"
	"repro/serve"
)

// serveMixResult is one request mix's measurement.
type serveMixResult struct {
	Requests int     `json:"requests"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
}

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	GOMAXPROCS     int            `json:"gomaxprocs"`
	Concurrency    int            `json:"concurrency"`
	Depts          int            `json:"depts"`
	Uncached       serveMixResult `json:"uncached"`
	Cached         serveMixResult `json:"cached"`
	Coalesced      serveMixResult `json:"coalesced"`
	CoalesceHits   int64          `json:"coalesce_hits"`
	CachedGuardMin float64        `json:"cached_guard_min"`
	GuardOK        bool           `json:"guard_ok"`
}

// benchServe measures the xsltd serving layer end to end over HTTP.
func benchServe(reps, scale int, baselinePath string) {
	fmt.Println("Serving layer — uncached vs result-cache vs coalesced throughput over HTTP")
	depts := 50 * scale
	db := xsltdb.NewDatabase()
	check(sqlxml.SetupDeptEmp(db.Rel()))
	for i := 0; i < depts; i++ {
		check(db.Insert("dept", int64(100+i), fmt.Sprintf("DEPT-%05d", i), "NOWHERE"))
	}
	check(db.CreateXMLView(sqlxml.DeptEmpView()))

	conc := runtime.GOMAXPROCS(0)
	if conc < 2 {
		conc = 2
	}
	total := 400 * scale

	newServer := func(cacheCap int) (*serve.Server, *httptest.Server) {
		srv, err := serve.New(serve.Config{DB: db, CacheCapacity: cacheCap})
		check(err)
		check(srv.RegisterTransform("paper", "dept_emp", xslt.PaperStylesheet))
		return srv, httptest.NewServer(srv.Handler())
	}

	report := serveReport{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Concurrency:    conc,
		Depts:          depts,
		CachedGuardMin: 2.0,
	}
	fmt.Printf("%-12s %-10s %-12s %-12s %-12s\n", "mix", "requests", "rps", "p50", "p95")

	// uncached: every request unique — the execution-bound floor.
	var uniq atomic.Int64
	_, ts := newServer(-1)
	report.Uncached = bestServeMix(reps, ts.URL, conc, total, func(i int) string {
		return fmt.Sprintf("/v1/transform/paper?p.i=%d", uniq.Add(1))
	})
	ts.Close()
	printServeMix("uncached", report.Uncached)

	// cached: identical requests served from the LRU result cache.
	srvCached, ts := newServer(256)
	warm(ts.URL + "/v1/transform/paper")
	report.Cached = bestServeMix(reps, ts.URL, conc, total, func(int) string {
		return "/v1/transform/paper"
	})
	ts.Close()
	if st := srvCached.CacheStats(); st.Hits == 0 {
		fmt.Fprintln(os.Stderr, "serve bench: cached mix recorded no cache hits")
		os.Exit(1)
	}
	printServeMix("cached", report.Cached)

	// coalesced: identical requests, cache off — singleflight does the work.
	srvCoal, ts := newServer(-1)
	report.Coalesced = bestServeMix(reps, ts.URL, conc, total, func(int) string {
		return "/v1/transform/paper"
	})
	ts.Close()
	for _, t := range srvCoal.TenantsState() {
		report.CoalesceHits += int64(t.Coalesced)
	}
	printServeMix("coalesced", report.Coalesced)
	fmt.Printf("coalesce hits: %d\n", report.CoalesceHits)

	speedup := report.Cached.RPS / report.Uncached.RPS
	report.GuardOK = speedup >= report.CachedGuardMin
	fmt.Printf("cached/uncached speedup: %.2fx (guard: >= %.1fx)\n", speedup, report.CachedGuardMin)

	if baselinePath != "" {
		compareServeBaseline(baselinePath, report)
	}
	b, err := json.MarshalIndent(report, "", "  ")
	check(err)
	check(os.WriteFile("BENCH_serve.json", append(b, '\n'), 0o644))
	fmt.Println("wrote BENCH_serve.json")
	if !report.GuardOK {
		fmt.Fprintf(os.Stderr, "serve guard FAILED: cached %.2fx uncached, want >= %.1fx\n",
			speedup, report.CachedGuardMin)
		os.Exit(1)
	}
}

// bestServeMix runs the mix reps times and keeps the best-throughput rep
// (load benchmarks are noisy downward, never upward).
func bestServeMix(reps int, base string, conc, total int, path func(int) string) serveMixResult {
	var best serveMixResult
	for r := 0; r < reps; r++ {
		m := runServeMix(base, conc, total, path)
		if m.RPS > best.RPS {
			best = m
		}
	}
	return best
}

// runServeMix fires total requests from conc closed-loop workers and
// reports throughput and latency quantiles. Any non-200 aborts the bench.
func runServeMix(base string, conc, total int, path func(int) string) serveMixResult {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: conc}}
	var next atomic.Int64
	lat := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				t0 := time.Now()
				resp, err := client.Get(base + path(i))
				if err != nil {
					fmt.Fprintln(os.Stderr, "serve bench:", err)
					os.Exit(1)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fmt.Fprintf(os.Stderr, "serve bench: status %d\n", resp.StatusCode)
					os.Exit(1)
				}
				lat[w] = append(lat[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p int) float64 {
		return float64(all[(len(all)*p)/100].Microseconds()) / 1000
	}
	return serveMixResult{
		Requests: total,
		RPS:      float64(total) / wall.Seconds(),
		P50Ms:    q(50),
		P95Ms:    q(95),
	}
}

// warm primes the result cache so the cached mix measures hits, not the
// first miss.
func warm(url string) {
	resp, err := http.Get(url)
	check(err)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func printServeMix(name string, m serveMixResult) {
	fmt.Printf("%-12s %-10d %-12.0f %-12s %-12s\n", name, m.Requests, m.RPS,
		fmt.Sprintf("%.2fms", m.P50Ms), fmt.Sprintf("%.2fms", m.P95Ms))
}

// compareServeBaseline reports throughput deltas against the committed
// BENCH_serve.json. Informational: the hard gate stays the self-relative
// cached-speedup guard, which is robust to machine-speed differences.
func compareServeBaseline(path string, cur serveReport) {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("no baseline to compare (%v)\n", err)
		return
	}
	var base serveReport
	if err := json.Unmarshal(b, &base); err != nil {
		fmt.Fprintf(os.Stderr, "serve baseline %s: %v\n", path, err)
		return
	}
	delta := func(was, is float64) string {
		if was == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (is-was)/was*100)
	}
	fmt.Printf("vs baseline %s: uncached %.0f -> %.0f rps (%s), cached %.0f -> %.0f rps (%s)\n",
		path, base.Uncached.RPS, cur.Uncached.RPS, delta(base.Uncached.RPS, cur.Uncached.RPS),
		base.Cached.RPS, cur.Cached.RPS, delta(base.Cached.RPS, cur.Cached.RPS))
}
