// Command xsltdb is the interactive face of the library:
//
//	xsltdb transform -xml doc.xml -xsl sheet.xsl
//	    apply a stylesheet functionally (the XMLTransform() baseline)
//
//	xsltdb rewrite -xsl sheet.xsl -schema schema.txt [-show xquery|notes]
//	    compile a stylesheet to XQuery via partial evaluation (§3-4)
//
//	xsltdb demo [-stream] [-stats] [-analyze] [-timeout d] [-max-rows n]
//	           [-where expr] [-param name=value] [-no-pushdown]
//	           [-metrics-addr host:port]
//	    run the paper's Example 1 and Example 2 end to end, printing the
//	    intermediate XQuery (Table 8), the SQL/XML plan (Tables 7/11) and
//	    the physical access paths; -stream pulls rows through a Cursor
//	    instead of materializing, -stats prints per-run ExecStats and the
//	    plan-cache counters, -analyze additionally runs EXPLAIN ANALYZE
//	    and prints the operator tree with actual rows and timings,
//	    -timeout and -max-rows govern each execution;
//	    -where adds a driving predicate ("deptno = 10", "@id = $id";
//	    repeatable), -param binds a $variable for this run (repeatable),
//	    -no-pushdown forces the full-scan baseline access path;
//	    -metrics-addr serves the process metrics in Prometheus text format
//	    at http://host:port/metrics and keeps the process alive after the
//	    demo so the endpoint can be scraped
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	xsltdb "repro"
	"repro/internal/core"
	"repro/internal/sqlxml"
	"repro/internal/xmltree"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "transform":
		cmdTransform(os.Args[2:])
	case "rewrite":
		cmdRewrite(os.Args[2:])
	case "demo":
		cmdDemo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xsltdb transform|rewrite|demo [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsltdb:", err)
	os.Exit(1)
}

func cmdTransform(args []string) {
	fs := flag.NewFlagSet("transform", flag.ExitOnError)
	xmlPath := fs.String("xml", "", "input XML document")
	xslPath := fs.String("xsl", "", "stylesheet")
	_ = fs.Parse(args)
	if *xmlPath == "" || *xslPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	xmlText, err := os.ReadFile(*xmlPath)
	if err != nil {
		fatal(err)
	}
	xslText, err := os.ReadFile(*xslPath)
	if err != nil {
		fatal(err)
	}
	// xsl:include hrefs resolve relative to the stylesheet's directory.
	sheet, err := xslt.ParseStylesheetWithResolver(string(xslText), fileResolver(filepath.Dir(*xslPath)))
	if err != nil {
		fatal(err)
	}
	doc, err := xmltree.Parse(string(xmlText))
	if err != nil {
		fatal(err)
	}
	out, err := xslt.New(sheet).TransformToString(doc)
	if err != nil {
		fatal(err)
	}
	fmt.Println(out)
}

// fileResolver loads xsl:include targets from disk, relative to dir.
func fileResolver(dir string) xslt.Resolver {
	return func(href string) (string, error) {
		b, err := os.ReadFile(filepath.Join(dir, href))
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
}

func cmdRewrite(args []string) {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	xslPath := fs.String("xsl", "", "stylesheet")
	schemaPath := fs.String("schema", "", "compact schema of the input")
	notes := fs.Bool("notes", false, "also print the optimizations applied and the partial-evaluation trace")
	_ = fs.Parse(args)
	if *xslPath == "" || *schemaPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	xslText, err := os.ReadFile(*xslPath)
	if err != nil {
		fatal(err)
	}
	schemaText, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	sheet, err := xslt.ParseStylesheetWithResolver(string(xslText), fileResolver(filepath.Dir(*xslPath)))
	if err != nil {
		fatal(err)
	}
	schema, err := xschema.ParseCompact(string(schemaText))
	if err != nil {
		fatal(err)
	}
	res, err := core.Rewrite(sheet, schema, core.ModeAuto)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("(: mode: %s, fully inlined: %v :)\n%s\n", res.Mode, res.Inlined, res.Module.String())
	if *notes {
		fmt.Println("\n-- optimizations applied --")
		for _, n := range res.Notes {
			fmt.Println(" -", n)
		}
		if res.PE != nil {
			fmt.Println("\n-- partial-evaluation trace --")
			fmt.Print(res.PE.Describe())
		}
	}
}

func cmdDemo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	stream := fs.Bool("stream", false, "pull result rows through a streaming cursor instead of materializing")
	stats := fs.Bool("stats", false, "print per-run execution statistics and plan-cache counters")
	analyze := fs.Bool("analyze", false, "run EXPLAIN ANALYZE and print the operator tree with actuals")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus metrics at http://host:port/metrics and stay alive after the demo")
	consoleAddr := fs.String("console-addr", "", "serve the live debug console (/runs, /plans, /misestimates, /metrics, pprof) at http://host:port and stay alive after the demo")
	timeout := fs.Duration("timeout", 0, "abort each execution after this long (0 = no timeout)")
	maxRows := fs.Int64("max-rows", 0, "abort an execution that produces more than n result rows (0 = unlimited)")
	var wheres, params multiFlag
	fs.Var(&wheres, "where", "driving-table predicate, e.g. 'deptno = 10' or '@id = $id' (repeatable)")
	fs.Var(&params, "param", "bind a run parameter as name=value (repeatable)")
	noPushdown := fs.Bool("no-pushdown", false, "disable index pushdown: full-scan the driving table")
	_ = fs.Parse(args)
	govern := governOptions(*timeout, *maxRows)
	runOpts, err := runOptions(wheres, params, *noPushdown)
	if err != nil {
		fatal(err)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", xsltdb.MetricsRegistry().Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fatal(err)
			}
		}()
		fmt.Printf("serving metrics at http://%s/metrics\n\n", *metricsAddr)
	}

	db := xsltdb.NewDatabase()
	if *consoleAddr != "" {
		// The console wants history: archive every run, trace all of them
		// (a demo is low-volume; production would use SampleRatio or
		// SampleSlowerThan), and serve the inspection endpoints.
		db.EnableRunHistory(0)
		govern = append(govern, xsltdb.WithTraceSampling(xsltdb.SampleAlways()))
		go func() {
			if err := http.ListenAndServe(*consoleAddr, db.ConsoleHandler()); err != nil {
				fatal(err)
			}
		}()
		fmt.Printf("serving debug console at http://%s/ (runs, plans, misestimates, metrics, pprof)\n\n", *consoleAddr)
	}
	if err := sqlxml.SetupDeptEmp(db.Rel()); err != nil {
		fatal(err)
	}
	if err := db.CreateXMLView(sqlxml.DeptEmpView()); err != nil {
		fatal(err)
	}
	if err := db.CreateIndex("emp", "sal"); err != nil {
		fatal(err)
	}
	if err := db.CreateIndex("emp", "deptno"); err != nil {
		fatal(err)
	}

	fmt.Println("== Example 1: XMLTransform(dept_emp.dept_content, <stylesheet>) ==")
	fmt.Println()
	fmt.Println("-- the dept_emp view (paper Table 3) --")
	fmt.Println(sqlxml.DeptEmpView().SQL())
	fmt.Println()

	ct, err := db.CompileTransform("dept_emp", xslt.PaperStylesheet, govern...)
	if err != nil {
		fatal(err)
	}
	fmt.Println("-- XQuery from XSLT rewrite (paper Table 8) --")
	fmt.Println(ct.XQuery())
	fmt.Println()
	fmt.Println("-- SQL/XML after XQuery rewrite (paper Table 7) --")
	fmt.Println(ct.SQL())
	fmt.Println()
	fmt.Println("-- physical plan --")
	fmt.Println(ct.ExplainPlan(runOpts...))
	fmt.Println()
	fmt.Println("-- result rows (paper Table 6) --")
	demoRun(ct, *stream, *stats, runOpts)
	fmt.Println()
	demoAnalyze(ct, *analyze, runOpts)

	fmt.Println("== Example 2: XQuery over the XSLT view (combined optimisation) ==")
	ct2, err := db.CompileTransform("dept_emp", xslt.PaperStylesheet,
		append([]xsltdb.Option{xsltdb.WithOuterPath("table", "tr")}, govern...)...)
	if err != nil {
		fatal(err)
	}
	fmt.Println("-- optimal SQL/XML (paper Table 11) --")
	fmt.Println(ct2.SQL())
	fmt.Println()
	demoRun(ct2, *stream, *stats, runOpts)
	demoAnalyze(ct2, *analyze, runOpts)

	if *stats {
		pc := db.PlanCacheStats()
		fmt.Printf("\n-- plan cache --\nhits=%d misses=%d entries=%d\n", pc.CacheHits, pc.CacheMisses, pc.Entries)
	}

	if *metricsAddr != "" || *consoleAddr != "" {
		if *metricsAddr != "" {
			fmt.Printf("\ndemo complete; still serving http://%s/metrics (interrupt to exit)\n", *metricsAddr)
		}
		if *consoleAddr != "" {
			fmt.Printf("\ndemo complete; still serving the console at http://%s/ (interrupt to exit)\n", *consoleAddr)
		}
		select {}
	}
}

// demoAnalyze runs the transform once more under EXPLAIN ANALYZE and prints
// the operator tree with actual rows and timings next to the estimates.
func demoAnalyze(ct *xsltdb.CompiledTransform, analyze bool, runOpts []xsltdb.RunOption) {
	if !analyze {
		return
	}
	out, err := ct.ExplainAnalyze(context.Background(), runOpts...)
	if err != nil {
		fatal(err)
	}
	fmt.Println("-- EXPLAIN ANALYZE --")
	fmt.Println(out)
}

// governOptions turns the -timeout / -max-rows flags into compile options.
func governOptions(timeout time.Duration, maxRows int64) []xsltdb.Option {
	var opts []xsltdb.Option
	if timeout > 0 {
		opts = append(opts, xsltdb.WithTimeout(timeout))
	}
	if maxRows > 0 {
		opts = append(opts, xsltdb.WithMaxRows(maxRows))
	}
	return opts
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ", ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// runOptions lowers the -where / -param / -no-pushdown flags to RunOptions.
// Integer-looking parameter values bind as int64, everything else as string.
func runOptions(wheres, params []string, noPushdown bool) ([]xsltdb.RunOption, error) {
	var opts []xsltdb.RunOption
	for _, w := range wheres {
		opts = append(opts, xsltdb.WithWhere(w))
	}
	for _, p := range params {
		name, raw, ok := strings.Cut(p, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-param %q: want name=value", p)
		}
		if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
			opts = append(opts, xsltdb.WithParam(name, n))
		} else {
			opts = append(opts, xsltdb.WithParam(name, raw))
		}
	}
	if noPushdown {
		opts = append(opts, xsltdb.WithoutPushdown())
	}
	return opts, nil
}

// demoRun prints the transform's rows — streamed one at a time through a
// cursor, or materialized via Run — and the per-run stats when asked.
func demoRun(ct *xsltdb.CompiledTransform, stream, stats bool, runOpts []xsltdb.RunOption) {
	if stream {
		cur, err := ct.OpenCursor(context.Background(), runOpts...)
		if err != nil {
			fatal(err)
		}
		defer cur.Close()
		for i := 1; ; i++ {
			row, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("row %d: %s\n", i, row)
		}
		if stats {
			fmt.Println("stats:", cur.Stats())
		}
		return
	}
	res, err := ct.Run(context.Background(), runOpts...)
	if err != nil {
		fatal(err)
	}
	for i, r := range res.Rows {
		fmt.Printf("row %d: %s\n", i+1, r)
	}
	if stats {
		fmt.Println("stats:", res.Stats)
	}
}
