package xsltdb

// Multi-tenancy: a Database can host several tenants that share its tables
// and views but not its failure domains. Each tenant gets its own limits
// (resolved by the serving layer on every request) and — via WithPlanTag —
// its own plan-cache entries and circuit breakers, so one tenant tripping a
// plan's breaker or burning its budget cannot degrade another's runs.

import (
	"sort"
	"time"
)

// TenantLimits caps one tenant's use of a shared database. The zero value
// means "no limit" for every field.
type TenantLimits struct {
	// MaxConcurrent bounds the tenant's in-flight runs; excess requests
	// are shed by the serving layer with 429. Zero admits everything.
	MaxConcurrent int
	// Timeout bounds each run's wall time (see WithTimeout).
	Timeout time.Duration
	// MaxRows bounds result rows per run (see WithMaxRows).
	MaxRows int64
	// MaxOutputBytes bounds serialized output per run (see
	// WithMaxOutputBytes).
	MaxOutputBytes int64
}

// RegisterTenant adds or replaces a tenant's limits. Tenants may also be
// pre-registered at open time with WithTenant.
func (d *Database) RegisterTenant(name string, lim TenantLimits) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	d.mu.Lock()
	d.tenants[name] = lim
	d.mu.Unlock()
	return nil
}

// Tenant reports the limits registered for name, and whether name is a
// registered tenant at all.
func (d *Database) Tenant(name string) (TenantLimits, bool) {
	d.mu.RLock()
	lim, ok := d.tenants[name]
	d.mu.RUnlock()
	return lim, ok
}

// Tenants lists the registered tenant names, sorted.
func (d *Database) Tenants() []string {
	d.mu.RLock()
	names := make([]string, 0, len(d.tenants))
	for name := range d.tenants {
		names = append(names, name)
	}
	d.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ViewVersion reports the current version of a view: 0 if the view has
// never been (re)defined under that name, otherwise the count of
// CreateXMLView/ReplaceXMLView calls for it. The serving layer keys its
// result cache on this, so a ReplaceXMLView naturally invalidates every
// cached result for the view.
func (d *Database) ViewVersion(name string) int {
	d.mu.RLock()
	v := d.viewVersions[name]
	d.mu.RUnlock()
	return v
}
