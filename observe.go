package xsltdb

// The facade half of the observability layer: the engine's built-in metric
// instruments (registered on obs.Default and served by Registry.Handler /
// cmd/xsltdb -metrics-addr) and the slow-run log. Per-run trace plumbing
// lives in xsltdb.go (Run) and cursor.go (OpenCursor); everything here is
// the process-wide aggregation those runs feed.

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Built-in instruments. Registration is idempotent, so multiple Databases in
// one process share these series — the registry aggregates across them just
// like a real server's /metrics endpoint would.
var (
	mRuns = obs.Default.NewCounterVec("xsltdb_runs_total",
		"Completed executions (Run calls and cursor lifetimes) by strategy and outcome.",
		"strategy", "outcome")
	mRunSeconds = obs.Default.NewHistogramVec("xsltdb_run_seconds",
		"End-to-end execution latency (compile + exec) in seconds.",
		nil, "strategy")
	mRowsScanned = obs.Default.NewCounter("xsltdb_rows_scanned_total",
		"Heap rows visited by full scans across all runs.")
	mRowsReturned = obs.Default.NewCounter("xsltdb_rows_returned_total",
		"Serialized result rows handed to callers across all runs.")
	mCacheHits = obs.Default.NewCounter("xsltdb_plan_cache_hits_total",
		"Compilations served from the plan cache.")
	mCacheMisses = obs.Default.NewCounter("xsltdb_plan_cache_misses_total",
		"Compilations that actually ran the pipeline.")
	mDegradations = obs.Default.NewCounter("xsltdb_degradations_total",
		"Strategy degradations (a failing strategy fell through to a weaker one).")
	mBreakerSkips = obs.Default.NewCounter("xsltdb_breaker_skips_total",
		"Strategies skipped because their circuit breaker was open.")
	mBreakerTrips = obs.Default.NewCounter("xsltdb_breaker_trips_total",
		"Circuit-breaker cells tripped open by run failures.")
	mPanics = obs.Default.NewCounter("xsltdb_panics_recovered_total",
		"Engine panics contained at the facade boundary.")
	mActiveCursors = obs.Default.NewGauge("xsltdb_active_cursors",
		"Cursors currently open (streaming executions in flight).")
	mSlowRuns = obs.Default.NewCounter("xsltdb_slow_runs_total",
		"Runs that exceeded their transform's slow threshold.")
	mMisestimates = obs.Default.NewCounter("xsltdb_misestimates_total",
		"Completed runs whose cardinality q-error (est vs actual rows) crossed the tracker threshold.")
	mSnapshotPins = obs.Default.NewGauge("xsltdb_snapshot_pins",
		"MVCC snapshots currently pinned by in-flight runs and open cursors.")
	mWalAppends = obs.Default.NewCounter("xsltdb_wal_appends_total",
		"Records appended to the write-ahead log.")
	mWalFsyncs = obs.Default.NewCounter("xsltdb_wal_fsyncs_total",
		"fsync calls issued by the write-ahead log.")
	mWalAppendSeconds = obs.Default.NewHistogram("xsltdb_wal_append_seconds",
		"Wall time of one WAL append (frame write plus any policy-driven fsync or rotation).",
		walLatencyBuckets)
	mWalFsyncSeconds = obs.Default.NewHistogram("xsltdb_wal_fsync_seconds",
		"Wall time of one WAL fsync call.", walLatencyBuckets)
	mWalSlowFsyncs = obs.Default.NewCounter("xsltdb_wal_slow_fsyncs_total",
		"WAL fsync calls slower than the stall threshold (100ms) — the durability layer's explicit stall signal.")
	mWalRotations = obs.Default.NewCounter("xsltdb_wal_rotations_total",
		"WAL segment rotations (seal + open next segment).")
	mWalRotateSeconds = obs.Default.NewHistogram("xsltdb_wal_rotate_seconds",
		"Wall time of one WAL segment rotation.", walLatencyBuckets)
	mWalReplaySeconds = obs.Default.NewHistogram("xsltdb_wal_replay_seconds",
		"Wall time of WAL replay during Database.Open crash recovery.", nil)
)

func init() {
	obs.Default.NewGaugeFunc("xsltdb_snapshot_pin_oldest_age_seconds",
		"Age of the oldest MVCC snapshot pin still held by an in-flight run or open cursor (0 when none).",
		snapPins.oldestAgeSeconds)
}

// walLatencyBuckets resolve the microsecond-to-millisecond range WAL IO
// lives in; the default buckets start at 1ms and would flatten it.
var walLatencyBuckets = []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1}

// walStallThreshold is the fsync duration counted as a stall. It sits on a
// walLatencyBuckets bound so the histogram-tail view and the counter agree
// exactly; the diagnostics layer's wal-fsync-stall detector uses the same
// value.
const walStallThreshold = 100 * time.Millisecond

// snapPins tracks every live MVCC snapshot pin with its acquisition time so
// the oldest-pin-age gauge can expose long-held snapshots (a stuck cursor
// keeps old versions alive; age is the signal, count alone is not).
var snapPins = &pinTracker{pins: map[uint64]time.Time{}}

type pinTracker struct {
	mu   sync.Mutex
	seq  uint64
	pins map[uint64]time.Time
}

// pin registers a new snapshot pin and bumps the pin-count gauge.
func (p *pinTracker) pin() uint64 {
	p.mu.Lock()
	p.seq++
	id := p.seq
	p.pins[id] = time.Now()
	p.mu.Unlock()
	mSnapshotPins.Inc()
	return id
}

// unpin releases a pin taken with pin.
func (p *pinTracker) unpin(id uint64) {
	p.mu.Lock()
	delete(p.pins, id)
	p.mu.Unlock()
	mSnapshotPins.Dec()
}

func (p *pinTracker) oldestAgeSeconds() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var oldest time.Time
	for _, t := range p.pins {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Seconds()
}

// WALCounters reports the process-wide WAL append and fsync totals. The
// serving layer reads them before and after a request to attribute WAL
// activity to the wide event it emits for that request.
func WALCounters() (appends, fsyncs int64) {
	return mWalAppends.Value(), mWalFsyncs.Value()
}

// recordRunMetrics folds one finished execution into the process-wide
// instruments. err is the run's terminal error (nil for success; cursor
// callers normalize io.EOF to nil first).
func recordRunMetrics(es *ExecStats, err error) {
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	mRuns.With(es.StrategyUsed.String(), outcome).Inc()
	mRunSeconds.With(es.StrategyUsed.String()).Observe((es.CompileWall + es.ExecWall).Seconds())
	mRowsScanned.Add(es.RowsScanned)
	mRowsReturned.Add(es.RowsProduced)
	mDegradations.Add(es.Degradations)
	mBreakerSkips.Add(es.BreakerSkips)
	mBreakerTrips.Add(es.BreakerTrips)
	mPanics.Add(es.PanicsRecovered)
}

// SlowRun describes one execution that exceeded the transform's
// WithSlowThreshold, delivered to the WithSlowRunSink callback. When the
// caller did not attach its own trace, the run traced itself so the report
// always carries the full operator tree.
type SlowRun struct {
	// View is the transform's backing view.
	View string
	// Strategy is the strategy that produced (or last attempted) the run.
	Strategy Strategy
	// Wall is the run's total wall time (compile + exec).
	Wall time.Duration
	// Threshold is the configured slow threshold the run exceeded.
	Threshold time.Duration
	// Stats is the run's full ExecStats.
	Stats ExecStats
	// Err is the terminal error ("" when the run succeeded but was slow).
	Err string
	// Trace is the rendered operator tree of the run.
	Trace string
	// TraceJSON is the same trace in JSON, for structured log pipelines.
	TraceJSON []byte
	// TraceID is the request's W3C trace identity when the run executed on
	// behalf of a served request ("" otherwise) — it joins the slow-run log
	// record to the request's wide event and archived span tree.
	TraceID string
}

// emitSlowRun reports one finished execution to the slow-run sink when it
// exceeded the threshold. Callers must not hold locks the sink could need:
// the callback may call back into the public API.
func emitSlowRun(threshold time.Duration, sink func(SlowRun), view string, tr *obs.Trace, es *ExecStats, err error) {
	if threshold <= 0 || sink == nil {
		return
	}
	wall := es.CompileWall + es.ExecWall
	if wall < threshold {
		return
	}
	mSlowRuns.Inc()
	sr := SlowRun{
		View:      view,
		Strategy:  es.StrategyUsed,
		Wall:      wall,
		Threshold: threshold,
		Stats:     *es,
		Trace:     tr.Tree(),
		TraceID:   tr.ID(),
	}
	if b, jerr := tr.JSON(); jerr == nil {
		sr.TraceJSON = b
	}
	if err != nil {
		sr.Err = err.Error()
	}
	sink(sr)
}

// MetricsRegistry returns the process-wide metrics registry the engine's
// built-in instruments report to. Serve it over HTTP with
// MetricsRegistry().Handler(), or render it with WriteTo (Prometheus text
// exposition format).
func MetricsRegistry() *obs.Registry { return obs.Default }
