package xsltdb

// MVCC snapshot-isolation regression tests: every Run and OpenCursor pins an
// immutable (view, version) + table snapshot at start, so concurrent
// ReplaceXMLView calls and row inserts never perturb an execution already in
// flight. Run these under -race: before snapshot pinning, the cursor's lazy
// B-tree reads raced Insert's in-place index mutation.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// replacedViewDef is the post-replace shape: same backing table, different
// element structure, so mixed output would be visible byte-wise.
func replacedViewDef() *ViewDef {
	return &ViewDef{
		Name:  "rows",
		Table: "row",
		Body: &XMLElement{
			Name:  "entry",
			Attrs: []XMLAttr{{Name: "key", Value: &XMLColumn{Name: "id"}}},
			Children: []XMLExpr{
				&XMLElement{Name: "label", Children: []XMLExpr{&XMLColumn{Name: "name"}}},
			},
		},
	}
}

const replacedSheet = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="entry"><replaced><xsl:value-of select="label"/></replaced></xsl:template>
</xsl:stylesheet>`

// TestCursorIsolatedFromReplaceAndInserts is the satellite regression test:
// a cursor opened BEFORE ReplaceXMLView and a burst of inserts must stream
// the byte-identical pre-replace output — its snapshot pinned both the view
// version and the table rows at open time.
func TestCursorIsolatedFromReplaceAndInserts(t *testing.T) {
	const n = 120
	d := newKeyedDB(t, n)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	// The expected output, captured while the database is quiescent.
	res, err := ct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := res.Rows

	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Read a few rows, then mutate the world mid-stream.
	var got []string
	for i := 0; i < 10; i++ {
		row, err := cur.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		got = append(got, row)
	}
	if err := d.ReplaceXMLView(replacedViewDef()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := d.Insert("row", int64(n+i), fmt.Sprintf("late-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for {
		row, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after replace: %v", err)
		}
		got = append(got, row)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor streamed %d rows, want the %d pre-replace rows", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d not isolated:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestRunsRaceReplacesAndInserts hammers parameterized runs against
// replace/insert traffic under -race. Every run must observe exactly one
// consistent world: either the keyed view's output or the replaced view's —
// never a mix, never a row set torn mid-scan.
func TestRunsRaceReplacesAndInserts(t *testing.T) {
	const n = 64
	d := newKeyedDB(t, n)
	keyed, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	replaced, err := d.CompileTransform("rows", replacedSheet)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writers: alternate the view definition and keep inserting rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defs := []*ViewDef{replacedViewDef(), keyedViewDef()}
		for i := 0; !stop.Load(); i++ {
			if err := d.ReplaceXMLView(defs[i%2]); err != nil {
				report(fmt.Errorf("replace: %w", err))
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := d.Insert("row", int64(n+i), fmt.Sprintf("late-%d", i)); err != nil {
				report(fmt.Errorf("insert: %w", err))
				return
			}
		}
	}()

	// Readers: parameterized point lookups against a stable key. Whichever
	// view version a run pins, the id=7 document exists and its output is one
	// of exactly two known byte strings.
	// Three legal outputs: each stylesheet against its own view, plus the
	// cross-match — a transform whose template doesn't match the CURRENT
	// view's root element falls through to the built-in rules, which emit
	// the bare text content. Anything else is a torn execution.
	wantKeyed := "<hit>name-7</hit>"
	wantReplaced := "<replaced>name-7</replaced>"
	wantCross := "name-7"
	legal := func(s string) bool {
		return s == wantKeyed || s == wantReplaced || s == wantCross
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, ct := range []*CompiledTransform{keyed, replaced} {
					res, err := ct.Run(context.Background(),
						WithWhere("@id = $id"), WithParam("id", 7))
					if err != nil {
						// A transform compiled for the OTHER view definition
						// recompiles against the current one and may then
						// fail its rewrite; those runs prove nothing either
						// way. Raced replaces surface as ErrNoView-free
						// rewrite errors, so only assert on successes.
						continue
					}
					if len(res.Rows) != 1 {
						report(fmt.Errorf("lookup returned %d rows", len(res.Rows)))
						return
					}
					if !legal(res.Rows[0]) {
						report(fmt.Errorf("torn output: %q", res.Rows[0]))
						return
					}
				}
			}
		}()
	}

	for i := 0; i < 300; i++ {
		res, err := keyed.Run(context.Background(), WithWhere("@id = 7"))
		if err != nil {
			continue
		}
		if len(res.Rows) == 1 && !legal(res.Rows[0]) {
			t.Errorf("main reader saw torn output: %q", res.Rows[0])
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestSnapshotPinsGaugeBalances: the xsltdb_snapshot_pins gauge rises while
// runs and cursors are in flight and returns to its baseline when they
// finish — a leak here means a snapshot (and its pinned row memory) is held
// forever.
func TestSnapshotPinsGaugeBalances(t *testing.T) {
	d := newKeyedDB(t, 30)
	ct, err := d.CompileTransform("rows", keyedSheet)
	if err != nil {
		t.Fatal(err)
	}
	base := mSnapshotPins.Value()

	if _, err := ct.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := mSnapshotPins.Value(); got != base {
		t.Fatalf("gauge after Run = %d, want baseline %d", got, base)
	}

	cur, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := mSnapshotPins.Value(); got != base+1 {
		t.Fatalf("gauge with open cursor = %d, want %d", got, base+1)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mSnapshotPins.Value(); got != base {
		t.Fatalf("gauge after cursor Close = %d, want baseline %d", got, base)
	}

	// A failing run must not leak its pin either.
	if _, err := ct.Run(context.Background(), WithWhere("@id = $missing")); err == nil {
		t.Fatal("unbound parameter should fail the run")
	}
	if got := mSnapshotPins.Value(); got != base {
		t.Fatalf("gauge after failed run = %d, want baseline %d", got, base)
	}

	// Close with a cursor open: the pin releases when the cursor observes
	// the shutdown, not later.
	cur2, err := ct.OpenCursor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_ = cur2
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur2.Next(); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("cursor after Close: %v", err)
	}
	if got := mSnapshotPins.Value(); got != base {
		t.Fatalf("gauge after database Close = %d, want baseline %d", got, base)
	}
}
