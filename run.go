package xsltdb

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xq2sql"
	"repro/internal/xquery"
)

// RunOption configures one execution of a compiled transform (Run,
// OpenCursor, ExplainPlan). Run options never affect the compiled plan —
// one plan compiled once serves every combination of parameters — so they
// are deliberately not part of the plan-cache key.
type RunOption interface {
	applyRunOption(*runOptions)
}

type runOptionFunc func(*runOptions)

func (f runOptionFunc) applyRunOption(o *runOptions) { f(o) }

// runOptions accumulates the per-run configuration.
type runOptions struct {
	whereExprs []string
	params     map[string]relstore.Value
	noPushdown bool
	trace      *obs.Trace
	workers    int
	batchSize  int
	err        error // first invalid option, surfaced when the run starts
}

// WithParam binds the XPath/XQuery variable $name for this run. A compiled
// plan whose predicates reference $name (e.g. a stylesheet matching
// `row[@id = $id]`) executes as an index probe on the bound value — the
// plan is compiled once and parameterized per run, never recompiled.
// Supported value types: int, int64, float64, string.
func WithParam(name string, value any) RunOption {
	return runOptionFunc(func(o *runOptions) {
		var v relstore.Value
		switch x := value.(type) {
		case int:
			v = int64(x)
		case int64:
			v = x
		case float64:
			v = x
		case string:
			v = x
		default:
			if o.err == nil {
				o.err = fmt.Errorf("xsltdb: WithParam(%q): unsupported type %T: %w", name, value, ErrBadRunOption)
			}
			return
		}
		if o.params == nil {
			o.params = map[string]relstore.Value{}
		}
		o.params[name] = v
	})
}

// WithWhere adds a driving-table predicate for this run, written as an XPath
// comparison over the view's root element: `deptno = 10`, `@id = $id`,
// `price > 100 and qty < 5`. Names resolve through the view structure (a
// root attribute or leaf child element maps to its backing column) or
// directly to a driving-table column. The predicate joins the compiled
// plan's WHERE clause — pushed down to an index probe or range scan when
// the planner can — and applies identically under every execution strategy.
func WithWhere(expr string) RunOption {
	return runOptionFunc(func(o *runOptions) { o.whereExprs = append(o.whereExprs, expr) })
}

// WithoutPushdown disables index pushdown for this run: the driving table is
// fully scanned with every predicate applied as a residual filter. The
// result is byte-identical to the pushed-down run — only the physical
// access path (and RowsScanned) differs — which makes it the debugging
// baseline for verifying pushdown correctness and measuring its speedup.
func WithoutPushdown() RunOption {
	return runOptionFunc(func(o *runOptions) { o.noPushdown = true })
}

// WithTrace attaches an observability trace to this run: every pipeline
// phase — compile stages on a recompile, each strategy attempt, the scan /
// construct / serialize operators — records a span with wall time, rows and
// attributes. Render the result with t.Tree() (the EXPLAIN ANALYZE view) or
// t.JSON(). A run without WithTrace pays only a nil check per instrumented
// site, so tracing is strictly opt-in per run.
func WithTrace(t *obs.Trace) RunOption {
	return runOptionFunc(func(o *runOptions) { o.trace = t })
}

// WithWorkers bounds this run's worker pools: the morsel workers a large
// full scan fans out to AND the parallel construction workers of the SQL
// strategy. 1 forces fully serial execution (the debugging baseline — output
// is byte-identical at any worker count); 0 or unset means the defaults
// (GOMAXPROCS morsel workers, compile-time WithParallelism for
// construction). Negative counts are rejected as ErrBadRunOption.
func WithWorkers(n int) RunOption {
	return runOptionFunc(func(o *runOptions) {
		if n < 0 {
			if o.err == nil {
				o.err = fmt.Errorf("xsltdb: WithWorkers(%d): count must be >= 0: %w", n, ErrBadRunOption)
			}
			return
		}
		o.workers = n
	})
}

// WithBatchSize overrides the rows-per-batch chunk size of this run's
// driving access path (default relstore.DefaultBatchSize, 1024). Batch size
// never affects output bytes — only how often the storage layer amortizes
// its locks, fault checks and governor ticks; 1 approximates the historical
// row-at-a-time engine for A/B measurement. Negative sizes are rejected as
// ErrBadRunOption.
func WithBatchSize(n int) RunOption {
	return runOptionFunc(func(o *runOptions) {
		if n < 0 {
			if o.err == nil {
				o.err = fmt.Errorf("xsltdb: WithBatchSize(%d): size must be >= 0: %w", n, ErrBadRunOption)
			}
			return
		}
		o.batchSize = n
	})
}

func buildRunOptions(opts []RunOption) runOptions {
	var ro runOptions
	for _, o := range opts {
		o.applyRunOption(&ro)
	}
	return ro
}

// Result is the outcome of one Run: the serialized result rows (one per
// qualifying driving row) and the execution's private statistics. Run
// returns a non-nil Result even when the execution fails partway — Stats
// then describes the work done up to the failure.
type Result struct {
	// Rows holds the serialized results, one per driving row.
	Rows []string
	// Stats describes this run: physical operator counters, the access path
	// chosen, strategy degradations, wall times.
	Stats ExecStats
}

// runSpec resolves the run options against a compiled state: WithWhere
// expressions are parsed and lowered to driving-table predicates, parameter
// bindings are validated against the driving predicates, and the sqlxml
// RunSpec is assembled. The returned string pointer receives the chosen
// access path's EXPLAIN line. lenient skips the parameter-coverage check —
// ExplainPlan renders unbound parameters as :name placeholders instead of
// failing, since the plan's shape does not depend on the bound value.
func (d *Database) runSpec(st *planState, ro runOptions, lenient bool) (*sqlxml.RunSpec, *string, error) {
	if ro.err != nil {
		return nil, nil, ro.err
	}
	var extras []relstore.Pred
	for _, expr := range ro.whereExprs {
		preds, err := xq2sql.ExtractWhere(st.view, expr)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %w", ErrBadRunOption, err)
		}
		extras = append(extras, preds...)
	}
	// Pin this run's MVCC snapshot: every table read below the executor —
	// driving scan, subqueries, scalar aggregates — resolves against it, so
	// concurrent inserts and view replacements never perturb the run.
	snap := d.rel.Snapshot()
	// Validate raw column names that fell through view resolution: a typo
	// should fail loudly here, not silently match nothing per SQL NULL
	// semantics.
	ts := snap.Table(st.view.Table)
	if ts == nil {
		return nil, nil, fmt.Errorf("xsltdb: view %q references unknown table %q: %w", st.view.Name, st.view.Table, ErrNoTable)
	}
	for _, p := range extras {
		if _, ok := ts.ColType(p.Col); !ok {
			return nil, nil, fmt.Errorf("xsltdb: WithWhere: view %q exposes no column %q: %w", st.view.Name, p.Col, ErrBadRunOption)
		}
	}
	// Validate parameter coverage of the DRIVING predicates up front: an
	// unbound parameter would otherwise fail every strategy in the chain,
	// counting three spurious failures against the plan's circuit breaker.
	if !lenient {
		var merged []relstore.Pred
		if st.plan != nil {
			merged = append(merged, st.plan.Where...)
		}
		merged = append(merged, extras...)
		if _, err := relstore.BindPreds(merged, ro.params); err != nil {
			return nil, nil, fmt.Errorf("xsltdb: %w", err)
		}
	}
	access := new(string)
	return &sqlxml.RunSpec{
		Extra:       extras,
		Params:      ro.params,
		NoPushdown:  ro.noPushdown,
		AccessPath:  access,
		EstRows:     new(int64),
		AccessShape: new(string),
		Batch:       relstore.BatchOpts{BatchSize: ro.batchSize, Workers: ro.workers},
		Snap:        snap,
	}, access, nil
}

// specEstRows / specShape read the planning feedback a spec accumulated —
// zero values when the run failed before planning a driving access.
func specEstRows(spec *sqlxml.RunSpec) int64 {
	if spec == nil || spec.EstRows == nil {
		return 0
	}
	return *spec.EstRows
}

func specShape(spec *sqlxml.RunSpec) string {
	if spec == nil || spec.AccessShape == nil {
		return ""
	}
	return *spec.AccessShape
}

// drivingWhere returns the compiled plan's driving predicates, which the
// fallback strategies apply at view materialization so every strategy
// produces the same row set as the SQL plan (cross-strategy consistency).
func (st *planState) drivingWhere() []relstore.Pred {
	if st.plan == nil {
		return nil
	}
	return st.plan.Where
}

// bindEnv binds run parameters into an XQuery environment so the fallback
// XQuery strategy sees the same $name values the SQL plan binds into its
// predicates. (The no-rewrite interpreter has no parameter mechanism;
// parameterized runs that degrade that far fail when the stylesheet actually
// dereferences the variable.)
func bindEnv(env *xquery.Env, params map[string]relstore.Value) *xquery.Env {
	for name, v := range params {
		env.Bind(name, xquery.Seq{xqueryItem(v)})
	}
	return env
}

func xqueryItem(v relstore.Value) xquery.Item {
	switch x := v.(type) {
	case int64:
		return float64(x) // XQuery numbers are doubles
	case float64:
		return x
	case string:
		return x
	}
	return fmt.Sprint(v)
}
