# Tier-1 gate plus static, race, fuzz-smoke, and fault-injection checks.
#
#   make verify   build + unit tests + go vet + race suite + fuzz smoke + faults
#   make test     tier-1 only (what CI gates on)
#   make fuzz     short fuzz smoke over the XPath/XQuery parsers (5s each)
#   make faults   the fault-injection and robustness tests, under -race
#   make crash    crash-recovery suite: WAL torn-tail/offset-sweep property
#                 tests plus the durability and snapshot-isolation tests,
#                 with IO faults injected, under -race
#   make diag-smoke  flight-recorder smoke: faultpoint-induced WAL fsync
#                 stall and latency-spike overload must each capture exactly
#                 one complete bundle; plus the metric-naming lint
#   make bench    the paper-evaluation benchmarks
#   make bench-json  pushdown speedup measurements -> BENCH_pushdown.json
#   make bench-obs   observability overhead guard  -> BENCH_obs.json
#   make bench-obs-events  wide-event pipeline overhead guard -> BENCH_obs.json
#   make bench-exec  batched/morsel execution-engine guard -> BENCH_exec.json
#   make bench-history  run-history archive overhead (disabled/enabled/contended)
#   make bench-wal   durable insert throughput per fsync policy -> BENCH_wal.json
#   make bench-serve serving-layer throughput guard -> BENCH_serve.json
#   make serve    xsltd over the demo database on :8080 (console on :6060)
#   make demo     paper Examples 1 and 2 end to end, streamed with stats
#   make console  the demo serving the live debug console on :6060

GO ?= go
FUZZTIME ?= 5s

.PHONY: verify test vet race fuzz faults crash diag-smoke bench bench-json bench-obs bench-obs-events bench-exec bench-history bench-wal bench-serve demo console serve

verify: test vet race fuzz faults crash diag-smoke bench-exec bench-serve bench-obs-events

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Each target runs alone (-run '^$$' skips unit tests; the xpath package has
# two fuzz targets, so anchor the name).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/xpath
	$(GO) test -run '^$$' -fuzz '^FuzzParsePattern$$' -fuzztime $(FUZZTIME) ./internal/xpath
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/xquery

# The robustness suite arms faultpoints (degradation, breaker, panic
# containment, cancellation promptness) — run it under the race detector.
faults:
	$(GO) test -race -run 'TestRunContextCancel|TestParallelRunCancel|TestTimeout|TestMax|TestRecursionLimit|TestDegradation|TestCircuitBreaker|TestPanicContainment|TestCompileErrors|TestCursor|TestFault|TestGovernance' .
	$(GO) test -race ./internal/faultpoint ./internal/governor

# Crash recovery: the WAL's torn-tail and every-byte-offset truncation
# property tests, the facade kill-and-replay/fault-matrix durability suite,
# and the MVCC snapshot-isolation races — all under the race detector.
crash:
	$(GO) test -race ./internal/wal
	$(GO) test -race -run 'TestOpenReopen|TestKillAndReplay|TestViewDDLSurvives|TestTornWrite|TestFsyncFault|TestRotateFault|TestCloseIdempotent|TestCloseDurable|TestConcurrentClose|TestGroupCommit|TestCursorIsolated|TestRunsRace|TestSnapshotPinsGauge' .

# Flight-recorder smoke: boot with the recorder armed, induce a WAL fsync
# stall (wal.fsync faultpoint) and a latency-spike overload, assert each
# captures exactly one bundle with every section; lint metric names
# (snake_case, xsltdb_/xsltd_ prefix, HELP text, counters end _total).
diag-smoke:
	$(GO) test -race -run 'TestDiagSmoke|TestDiagConsole|TestMetricNamingLint' ./serve

bench:
	$(GO) test -bench . -benchmem -run xxx .

# Machine-readable pushdown measurements: index probe vs full-scan baseline
# through the public Run API, written to BENCH_pushdown.json.
bench-json:
	$(GO) run ./cmd/xsltbench -pushdown -json BENCH_pushdown.json

# Observability overhead guard: nil-trace fast path must stay under 2%
# estimated overhead (exits non-zero otherwise), compared against the
# committed BENCH_obs.json baseline; also runs the span-op microbenchmarks
# in internal/obs. Artifact: BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/xsltbench -obs-overhead -obs-baseline BENCH_obs.json
	$(GO) run ./cmd/xsltbench -events-overhead -obs-baseline BENCH_obs.json
	$(GO) test -bench 'BenchmarkNilSpanOps|BenchmarkTracedSpanOps' -benchmem -run xxx ./internal/obs

# Wide-event pipeline guard: serving throughput with per-request events on
# (NDJSON sink) must stay within 3% of events-off on the cached mix (exits
# non-zero otherwise). Merges into the shared BENCH_obs.json artifact.
bench-obs-events:
	$(GO) run ./cmd/xsltbench -events-overhead -obs-baseline BENCH_obs.json

# Execution-engine guard: the batched scan must stay >=1.3x the row-at-a-time
# engine single-threaded, and the morsel-parallel scan >=2x when GOMAXPROCS>1
# (exits non-zero otherwise), compared against the committed BENCH_exec.json
# baseline. Artifact: BENCH_exec.json.
bench-exec:
	$(GO) run ./cmd/xsltbench -exec -exec-baseline BENCH_exec.json

# Run-history archive overhead: the keyed lookup with the archive disabled,
# enabled, and enabled under concurrent console readers.
bench-history:
	$(GO) run ./cmd/xsltbench -history

# Durable insert throughput per WAL fsync policy (never / interval / always)
# against the in-memory baseline, plus replay speed. Artifact: BENCH_wal.json.
bench-wal:
	$(GO) run ./cmd/xsltbench -wal

# Serving-layer guard: the result cache must be >=2x the uncached mix's
# throughput over real HTTP (exits non-zero otherwise), compared against the
# committed BENCH_serve.json baseline. Artifact: BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/xsltbench -serve -serve-baseline BENCH_serve.json

# The serving daemon over the in-memory demo database: the paper stylesheet
# at http://localhost:8080/v1/transform/paper, console at :6060.
serve:
	$(GO) run ./cmd/xsltd -listen localhost:8080 -console-addr localhost:6060

demo:
	$(GO) run ./cmd/xsltdb demo -stream -stats

console:
	$(GO) run ./cmd/xsltdb demo -analyze -console-addr localhost:6060
