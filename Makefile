# Tier-1 gate plus static and race checks.
#
#   make verify   build + unit tests + go vet + race-detector suite
#   make test     tier-1 only (what CI gates on)
#   make bench    the paper-evaluation benchmarks
#   make demo     paper Examples 1 and 2 end to end, streamed with stats

GO ?= go

.PHONY: verify test vet race bench demo

verify: test vet race

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run xxx .

demo:
	$(GO) run ./cmd/xsltdb demo -stream -stats
