package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nowhere"); err != nil {
		t.Fatalf("disarmed Hit = %v", err)
	}
}

func TestEnableFailsImmediately(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("a.b", boom)
	if err := Hit("a.b"); !errors.Is(err, boom) {
		t.Fatalf("armed Hit = %v, want boom", err)
	}
	if err := Hit("other"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestEnableAfterPassesNThenFails(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	EnableAfter("scan", 3, boom)
	for i := 0; i < 3; i++ {
		if err := Hit("scan"); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := Hit("scan"); !errors.Is(err, boom) {
			t.Fatalf("post-budget hit %d = %v, want boom", i, err)
		}
	}
	if got := Hits("scan"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestDisableAndReset(t *testing.T) {
	boom := errors.New("boom")
	Enable("x", boom)
	Enable("y", boom)
	Disable("x")
	if err := Hit("x"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	if err := Hit("y"); !errors.Is(err, boom) {
		t.Fatalf("still-armed point = %v", err)
	}
	Reset()
	if err := Hit("y"); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count = %d after Reset", armed.Load())
	}
}

func TestReEnableDoesNotLeakArmedCount(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("p", boom)
	Enable("p", boom) // re-arm same point
	if armed.Load() != 1 {
		t.Fatalf("armed = %d, want 1", armed.Load())
	}
	Disable("p")
	if armed.Load() != 0 {
		t.Fatalf("armed = %d after disable, want 0", armed.Load())
	}
}

func TestConcurrentHits(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	EnableAfter("c", 100, boom)
	var wg sync.WaitGroup
	var failures sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 50; i++ {
				if Hit("c") != nil {
					n++
				}
			}
			failures.Store(w, n)
		}(w)
	}
	wg.Wait()
	total := 0
	failures.Range(func(_, v any) bool { total += v.(int); return true })
	// 400 hits against a 100-pass budget: exactly 300 fail.
	if total != 300 {
		t.Fatalf("failures = %d, want 300", total)
	}
}
