// Package faultpoint provides named fault-injection hooks for testing the
// engine's degradation and cleanup paths. Production code marks interesting
// failure sites with Hit("layer.site"); tests arm a site with Enable or
// EnableAfter to force a deterministic error there, then verify the caller
// degrades, cleans up, and reports correctly.
//
// The disarmed fast path is a single atomic load of a package counter, so
// leaving Hit calls in hot loops costs nothing measurable in production.
//
// Registered sites (grep for faultpoint.Hit to confirm):
//
//	relstore.scan.batch   — full-scan batch fetch (one hit per NextBatch)
//	relstore.index.batch  — index-scan batch fetch (one hit per NextBatch)
//	sqlxml.query.next     — SQL/XML cursor row construction
//	sqlxml.view.row       — view row materialization
//	clobstore.parse       — CLOB document parse
//	xq2sql.translate      — XQuery→SQL/XML lowering
//	wal.append            — WAL record append; firing leaves a torn
//	                        half-frame on disk and wedges the log
//	wal.fsync             — WAL fsync; firing rolls the append back to the
//	                        committed prefix
//	wal.rotate            — WAL segment rotation; firing fails the append
//	                        cleanly (retryable)
package faultpoint

import (
	"sync"
	"sync/atomic"
	"time"
)

// armed counts enabled points; zero means every Hit is a no-op.
var armed atomic.Int32

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	// remaining hits that pass before the point fires; <0 fires always.
	remaining int64
	err       error
	panics    bool
	sleep     time.Duration
	hits      int64
}

// Enable arms name to fail every Hit with err until Disable/Reset.
func Enable(name string, err error) { EnableAfter(name, 0, err) }

// EnablePanic arms name to panic on every Hit — exercising the facade's
// panic-containment boundary the way a real engine bug would.
func EnablePanic(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = &point{panics: true}
}

// EnableSleep arms name to stall every Hit for d and then succeed — the
// site slows down instead of failing. Diagnostics tests use it to induce a
// realistic WAL fsync stall or a latency spike without touching real IO.
func EnableSleep(name string, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = &point{sleep: d}
}

// EnableAfter arms name to let n Hits pass, then fail every later Hit with
// err. n=0 fails immediately; use it to force mid-scan failures at a
// deterministic row.
func EnableAfter(name string, n int, err error) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = &point{remaining: int64(n), err: err}
}

// Disable disarms one point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; exists {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every point. Tests should defer this after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	if len(points) > 0 {
		armed.Add(int32(-len(points)))
		points = map[string]*point{}
	}
}

// Hits reports how many times name was hit while armed (passing or
// failing); 0 when not armed.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Hit is the production-side hook: it returns nil unless name is armed and
// its pass budget is exhausted.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return nil
	}
	p.hits++
	if p.remaining > 0 {
		p.remaining--
		return nil
	}
	if p.panics {
		panic("faultpoint: injected panic at " + name)
	}
	if p.sleep > 0 {
		// Sleep outside the registry lock so a stalled site does not also
		// stall every other armed point.
		d := p.sleep
		mu.Unlock()
		time.Sleep(d)
		mu.Lock()
		return nil
	}
	return p.err
}
