package relstore

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/governor"
)

// Stats counts physical work done by operators; the benchmark harness reads
// these to show that the rewrite path touches fewer rows. All increments are
// atomic, so one Stats value can serve as the sink for several concurrent
// iterators; read a live sink with Snapshot.
type Stats struct {
	RowsScanned int64 // heap rows visited by full scans
	IndexProbes int64 // B-tree descents
	RowsEmitted int64
	FullScans   int64 // full-scan operators started
	RangeScans  int64 // B-tree range-scan operators started
	// RowsFiltered counts rows an access path visited but rejected on a
	// residual predicate — the "rows in minus rows out" of the filter
	// operator, which EXPLAIN ANALYZE reports as filter selectivity.
	RowsFiltered int64
	// Batches counts the chunks emitted by batch producers — RowsEmitted
	// divided by Batches is the realized average batch size.
	Batches int64
	// Morsels counts the scan morsels executed by the parallel-scan worker
	// pool (zero for serial scans and index paths).
	Morsels int64
}

// Add accumulates other into s (atomically).
func (s *Stats) Add(other *Stats) {
	atomic.AddInt64(&s.RowsScanned, atomic.LoadInt64(&other.RowsScanned))
	atomic.AddInt64(&s.IndexProbes, atomic.LoadInt64(&other.IndexProbes))
	atomic.AddInt64(&s.RowsEmitted, atomic.LoadInt64(&other.RowsEmitted))
	atomic.AddInt64(&s.FullScans, atomic.LoadInt64(&other.FullScans))
	atomic.AddInt64(&s.RangeScans, atomic.LoadInt64(&other.RangeScans))
	atomic.AddInt64(&s.RowsFiltered, atomic.LoadInt64(&other.RowsFiltered))
	atomic.AddInt64(&s.Batches, atomic.LoadInt64(&other.Batches))
	atomic.AddInt64(&s.Morsels, atomic.LoadInt64(&other.Morsels))
}

// Snapshot returns an atomically-read copy of the counters, safe to take
// while iterators are still writing to s.
func (s *Stats) Snapshot() Stats {
	return Stats{
		RowsScanned:  atomic.LoadInt64(&s.RowsScanned),
		IndexProbes:  atomic.LoadInt64(&s.IndexProbes),
		RowsEmitted:  atomic.LoadInt64(&s.RowsEmitted),
		FullScans:    atomic.LoadInt64(&s.FullScans),
		RangeScans:   atomic.LoadInt64(&s.RangeScans),
		RowsFiltered: atomic.LoadInt64(&s.RowsFiltered),
		Batches:      atomic.LoadInt64(&s.Batches),
		Morsels:      atomic.LoadInt64(&s.Morsels),
	}
}

// CmpOp is a comparison operator in a predicate.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the SQL spelling.
func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Pred is a simple column-vs-constant predicate; conjunctions are slices.
// Val may be a ParamValue placeholder, in which case the predicate must be
// bound with BindPreds before execution.
type Pred struct {
	Col string
	Op  CmpOp
	Val Value
}

// String renders the predicate in SQL style; parameter placeholders render
// as :name bind variables.
func (p Pred) String() string {
	v := p.Val
	switch x := v.(type) {
	case string:
		v = "'" + x + "'"
	case ParamValue:
		v = ":" + string(x)
	}
	return fmt.Sprintf("%s %s %v", p.Col, p.Op, v)
}

// ParamValue is a bind-variable placeholder inside Pred.Val: the predicate
// compares against the parameter's value supplied at execution time via
// BindPreds. An unbound placeholder never matches any row.
type ParamValue string

// ErrUnboundParam reports execution of a parameterized predicate without a
// value for one of its parameters.
var ErrUnboundParam = errors.New("relstore: unbound parameter")

// BindPreds substitutes parameter placeholders with values from params,
// returning a new slice (the input is never mutated — compiled plans share
// their predicate slices across concurrent runs). Predicates without
// placeholders pass through; a placeholder missing from params is an error
// wrapping ErrUnboundParam.
func BindPreds(preds []Pred, params map[string]Value) ([]Pred, error) {
	if !HasParams(preds) {
		return preds, nil
	}
	out := make([]Pred, len(preds))
	for i, p := range preds {
		if name, ok := p.Val.(ParamValue); ok {
			v, bound := params[string(name)]
			if !bound {
				return nil, fmt.Errorf("%w: $%s (bind it with WithParam)", ErrUnboundParam, string(name))
			}
			p.Val = v
		}
		out[i] = p
	}
	return out, nil
}

// BindPredsPartial substitutes the parameters present in params and leaves
// missing ones as placeholders — the EXPLAIN-time variant of BindPreds,
// where an unbound parameter should render as :name rather than fail.
func BindPredsPartial(preds []Pred, params map[string]Value) []Pred {
	if !HasParams(preds) {
		return preds
	}
	out := make([]Pred, len(preds))
	for i, p := range preds {
		if name, ok := p.Val.(ParamValue); ok {
			if v, bound := params[string(name)]; bound {
				p.Val = v
			}
		}
		out[i] = p
	}
	return out
}

// HasParams reports whether any predicate carries an unbound placeholder.
func HasParams(preds []Pred) bool {
	for _, p := range preds {
		if _, ok := p.Val.(ParamValue); ok {
			return true
		}
	}
	return false
}

// Matches evaluates the predicate against a cell value.
func (p Pred) Matches(cell Value) bool {
	if cell == nil || p.Val == nil {
		return false // SQL three-valued logic: NULL never matches
	}
	if _, ok := p.Val.(ParamValue); ok {
		return false // unbound placeholder: callers must BindPreds first
	}
	c := CompareValues(cell, p.Val)
	switch p.Op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// boundText renders a bound's value; parameter placeholders render as :name
// bind variables (a plan over an unbound parameter is still explainable —
// its shape does not depend on the value).
func boundText(v Value) any {
	if name, ok := v.(ParamValue); ok {
		return ":" + string(name)
	}
	return v
}

func describeRange(col string, lo, hi Bound) string {
	switch {
	case !lo.Unbounded && !hi.Unbounded && lo.Inclusive && hi.Inclusive && CompareValues(lo.Value, hi.Value) == 0:
		return fmt.Sprintf("%s = %v", col, boundText(lo.Value))
	case lo.Unbounded && hi.Unbounded:
		return "(full)"
	default:
		var parts []string
		if !lo.Unbounded {
			op := ">"
			if lo.Inclusive {
				op = ">="
			}
			parts = append(parts, fmt.Sprintf("%s %s %v", col, op, boundText(lo.Value)))
		}
		if !hi.Unbounded {
			op := "<"
			if hi.Inclusive {
				op = "<="
			}
			parts = append(parts, fmt.Sprintf("%s %s %v", col, op, boundText(hi.Value)))
		}
		return strings.Join(parts, " AND ")
	}
}

func predsString(preds []Pred) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// PathKind classifies a physical access path.
type PathKind uint8

// Access-path kinds, cheapest first for a selective predicate.
const (
	// PathIndexProbe is a B-tree equality probe (point lookup).
	PathIndexProbe PathKind = iota
	// PathIndexRange is a B-tree range scan over a bounded interval.
	PathIndexRange
	// PathFullScan reads every heap row, applying predicates as residual
	// filters.
	PathFullScan
)

// String names the path kind as it appears in EXPLAIN output.
func (k PathKind) String() string {
	switch k {
	case PathIndexProbe:
		return "index probe"
	case PathIndexRange:
		return "index range scan"
	default:
		return "full scan"
	}
}

// AccessPlan is a planned physical access path: the outcome of PlanAccess,
// openable into a BatchIterator. Separating planning from opening lets callers
// (the sqlxml access-path chooser) inspect or veto the choice — and report
// it — before any row is touched.
type AccessPlan struct {
	Kind PathKind
	// Col is the driving index column (index paths only).
	Col string
	// Lo and Hi bound the B-tree interval (index paths only).
	Lo, Hi Bound
	// Residual holds the predicates applied per row after the driving
	// access (every predicate, for a full scan).
	Residual []Pred
	// TableRows is the table's row count observed at planning time — the
	// statistic the chooser's cost reasoning is based on.
	TableRows int
}

// PlanAccess plans the physical access for a conjunction of predicates: a
// B-tree probe when an indexed column has an equality predicate, a range
// scan for an indexed inequality, otherwise a full scan. This is the
// "standard relational optimizer can select the index on the sal column"
// step of the paper (§2.1). Predicates carrying unbound ParamValue
// placeholders are still planned (the plan shape does not depend on the
// value) but must be bound before Open.
func PlanAccess(t *Table, preds []Pred) AccessPlan {
	return PlanAccessAt(t.Snap(), preds)
}

// PlanAccessAt is PlanAccess against a pinned snapshot: the TableRows
// statistic is the snapshot's committed row count, so a plan chosen for a
// pinned run reflects exactly the state that run will scan.
func PlanAccessAt(ts *TableSnap, preds []Pred) AccessPlan {
	rows := ts.NumRows()
	best := -1
	for i, p := range preds {
		if p.Op == CmpNe || p.Val == nil {
			continue // not sargable
		}
		if !ts.HasIndex(p.Col) {
			continue
		}
		// Prefer equality probes over ranges.
		if best == -1 || (preds[i].Op == CmpEq && preds[best].Op != CmpEq) {
			best = i
		}
	}
	if best == -1 {
		return AccessPlan{Kind: PathFullScan, Residual: preds, TableRows: rows}
	}
	p := preds[best]
	var residual []Pred
	for i, q := range preds {
		if i != best {
			residual = append(residual, q)
		}
	}
	plan := AccessPlan{Col: p.Col, Residual: residual, TableRows: rows, Lo: UnboundedBound, Hi: UnboundedBound}
	switch p.Op {
	case CmpEq:
		plan.Kind = PathIndexProbe
		plan.Lo = Bound{Value: p.Val, Inclusive: true}
		plan.Hi = plan.Lo
	case CmpLt:
		plan.Kind = PathIndexRange
		plan.Hi = Bound{Value: p.Val}
	case CmpLe:
		plan.Kind = PathIndexRange
		plan.Hi = Bound{Value: p.Val, Inclusive: true}
	case CmpGt:
		plan.Kind = PathIndexRange
		plan.Lo = Bound{Value: p.Val}
	case CmpGe:
		plan.Kind = PathIndexRange
		plan.Lo = Bound{Value: p.Val, Inclusive: true}
	}
	return plan
}

// EstimateRows is the planner's cardinality estimate for the access path:
// 1 for an equality probe, a textbook one-third selectivity for a range
// scan, and the whole table for a full scan whose predicates all apply as
// residual filters. EXPLAIN ANALYZE prints it next to the actual row count
// so mis-estimates are visible.
func (p AccessPlan) EstimateRows() int {
	switch p.Kind {
	case PathIndexProbe:
		if p.TableRows == 0 {
			return 0
		}
		return 1
	case PathIndexRange:
		return p.TableRows/3 + 1
	default:
		return p.TableRows
	}
}

// FullScanPlan plans an unconditional full scan with preds as residual
// filters — the pushdown-disabled access path: same rows, no index use.
func FullScanPlan(t *Table, preds []Pred) AccessPlan {
	return AccessPlan{Kind: PathFullScan, Residual: preds, TableRows: t.NumRows()}
}

// FullScanPlanAt is FullScanPlan against a pinned snapshot.
func FullScanPlanAt(ts *TableSnap, preds []Pred) AccessPlan {
	return AccessPlan{Kind: PathFullScan, Residual: preds, TableRows: ts.NumRows()}
}

// Explain describes the planned operator without opening it.
func (p AccessPlan) Explain(t *Table) string {
	return p.OpenBatch(t, nil, nil, BatchOpts{Workers: 1}).Explain()
}

// Shape is the normalized identity of the access path: kind, table, driving
// column and residual-filter count — no bound values. Explain distinguishes
// `id = 7` from `id = 8`; Shape deliberately does not, so a parameterized
// plan run with a thousand bindings aggregates under ONE key. This is the
// grouping key of the cardinality-accuracy tracker.
func (p AccessPlan) Shape(t *Table) string {
	var sb strings.Builder
	switch p.Kind {
	case PathIndexProbe:
		fmt.Fprintf(&sb, "INDEX PROBE %s(%s)", t.Name, p.Col)
	case PathIndexRange:
		fmt.Fprintf(&sb, "INDEX RANGE SCAN %s(%s)", t.Name, p.Col)
	default:
		fmt.Fprintf(&sb, "TABLE SCAN %s", t.Name)
	}
	if n := len(p.Residual); n > 0 {
		fmt.Fprintf(&sb, " +%d residual", n)
	}
	return sb.String()
}

// AccessPathBatchAt plans and opens the physical access for a conjunction of
// predicates against a pinned snapshot (PlanAccessAt + OpenBatchAt): planning
// statistics and the opened scan both reflect the snapshot, never the live
// table — the building block for snapshot-pinned subqueries. The returned
// iterator stops early (Err reports why) when g is cancelled or over budget,
// so a scan over a large table aborts mid-pass instead of running to
// exhaustion. stats and g may be nil.
func AccessPathBatchAt(ts *TableSnap, preds []Pred, stats *Stats, g *governor.G) BatchIterator {
	return PlanAccessAt(ts, preds).OpenBatchAt(ts, stats, g, BatchOpts{Workers: 1})
}
