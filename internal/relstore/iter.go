package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/faultpoint"
	"repro/internal/governor"
)

// Stats counts physical work done by operators; the benchmark harness reads
// these to show that the rewrite path touches fewer rows. All increments are
// atomic, so one Stats value can serve as the sink for several concurrent
// iterators; read a live sink with Snapshot.
type Stats struct {
	RowsScanned int64 // heap rows visited by full scans
	IndexProbes int64 // B-tree descents
	RowsEmitted int64
	FullScans   int64 // full-scan operators started
	RangeScans  int64 // B-tree range-scan operators started
}

// Add accumulates other into s (atomically).
func (s *Stats) Add(other *Stats) {
	atomic.AddInt64(&s.RowsScanned, atomic.LoadInt64(&other.RowsScanned))
	atomic.AddInt64(&s.IndexProbes, atomic.LoadInt64(&other.IndexProbes))
	atomic.AddInt64(&s.RowsEmitted, atomic.LoadInt64(&other.RowsEmitted))
	atomic.AddInt64(&s.FullScans, atomic.LoadInt64(&other.FullScans))
	atomic.AddInt64(&s.RangeScans, atomic.LoadInt64(&other.RangeScans))
}

// Snapshot returns an atomically-read copy of the counters, safe to take
// while iterators are still writing to s.
func (s *Stats) Snapshot() Stats {
	return Stats{
		RowsScanned: atomic.LoadInt64(&s.RowsScanned),
		IndexProbes: atomic.LoadInt64(&s.IndexProbes),
		RowsEmitted: atomic.LoadInt64(&s.RowsEmitted),
		FullScans:   atomic.LoadInt64(&s.FullScans),
		RangeScans:  atomic.LoadInt64(&s.RangeScans),
	}
}

// CmpOp is a comparison operator in a predicate.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the SQL spelling.
func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Pred is a simple column-vs-constant predicate; conjunctions are slices.
type Pred struct {
	Col string
	Op  CmpOp
	Val Value
}

// String renders the predicate in SQL style.
func (p Pred) String() string {
	v := p.Val
	if s, ok := v.(string); ok {
		v = "'" + s + "'"
	}
	return fmt.Sprintf("%s %s %v", p.Col, p.Op, v)
}

// Matches evaluates the predicate against a cell value.
func (p Pred) Matches(cell Value) bool {
	if cell == nil || p.Val == nil {
		return false // SQL three-valued logic: NULL never matches
	}
	c := CompareValues(cell, p.Val)
	switch p.Op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// Iterator is the Volcano pull interface: Next returns row ids of the
// underlying table until exhaustion. A false Next may mean exhaustion OR a
// terminal fault (cancellation, injected failure); consumers must check Err
// after the loop — otherwise an aborted scan would silently truncate to an
// apparently-complete result.
type Iterator interface {
	// Next returns the next row id, or ok=false at end of stream.
	Next() (rowID int, ok bool)
	// Err returns the terminal error that stopped the iterator early, or
	// nil after clean exhaustion.
	Err() error
	// Reset rewinds to the start (clearing any terminal error).
	Reset()
	// Explain describes the physical operator.
	Explain() string
}

// scanIter is a full table scan with residual predicates.
type scanIter struct {
	table *Table
	preds []Pred
	pos   int
	stats *Stats
	gov   *governor.G
	err   error
}

func (s *scanIter) Next() (int, bool) {
	if s.err != nil {
		return 0, false
	}
	for {
		if err := faultpoint.Hit("relstore.scan.next"); err != nil {
			s.err = err
			return 0, false
		}
		if err := s.gov.Tick(); err != nil {
			s.err = err
			return 0, false
		}
		s.table.mu.RLock()
		n := len(s.table.rows)
		s.table.mu.RUnlock()
		if s.pos >= n {
			return 0, false
		}
		id := s.pos
		s.pos++
		if s.stats != nil {
			atomic.AddInt64(&s.stats.RowsScanned, 1)
		}
		if rowMatches(s.table, id, s.preds) {
			if s.stats != nil {
				atomic.AddInt64(&s.stats.RowsEmitted, 1)
			}
			return id, true
		}
	}
}

func (s *scanIter) Err() error { return s.err }

func (s *scanIter) Reset() { s.pos = 0; s.err = nil }

func (s *scanIter) Explain() string {
	if len(s.preds) == 0 {
		return fmt.Sprintf("TABLE SCAN %s", s.table.Name)
	}
	return fmt.Sprintf("TABLE SCAN %s FILTER %s", s.table.Name, predsString(s.preds))
}

// indexIter drives a B-tree range and applies residual predicates.
type indexIter struct {
	table    *Table
	indexCol string
	lo, hi   Bound
	residual []Pred

	ids   []int
	pos   int
	run   bool
	stats *Stats
	gov   *governor.G
	err   error
}

func (it *indexIter) materialize() {
	idx := it.table.Index(it.indexCol)
	it.ids = it.ids[:0]
	if it.stats != nil {
		atomic.AddInt64(&it.stats.IndexProbes, 1)
	}
	idx.Range(it.lo, it.hi, func(_ Value, rows []int) bool {
		it.ids = append(it.ids, rows...)
		return true
	})
	sort.Ints(it.ids) // row-id order ≈ heap order for stable output
	it.run = true
}

func (it *indexIter) Next() (int, bool) {
	if it.err != nil {
		return 0, false
	}
	if !it.run {
		it.materialize()
	}
	for it.pos < len(it.ids) {
		if err := faultpoint.Hit("relstore.index.next"); err != nil {
			it.err = err
			return 0, false
		}
		if err := it.gov.Tick(); err != nil {
			it.err = err
			return 0, false
		}
		id := it.ids[it.pos]
		it.pos++
		if rowMatches(it.table, id, it.residual) {
			if it.stats != nil {
				atomic.AddInt64(&it.stats.RowsEmitted, 1)
			}
			return id, true
		}
	}
	return 0, false
}

func (it *indexIter) Err() error { return it.err }

func (it *indexIter) Reset() { it.pos = 0; it.err = nil }

func (it *indexIter) Explain() string {
	rng := describeRange(it.indexCol, it.lo, it.hi)
	if len(it.residual) == 0 {
		return fmt.Sprintf("INDEX RANGE SCAN %s(%s) %s", it.table.Name, it.indexCol, rng)
	}
	return fmt.Sprintf("INDEX RANGE SCAN %s(%s) %s FILTER %s", it.table.Name, it.indexCol, rng, predsString(it.residual))
}

func describeRange(col string, lo, hi Bound) string {
	switch {
	case !lo.Unbounded && !hi.Unbounded && lo.Inclusive && hi.Inclusive && CompareValues(lo.Value, hi.Value) == 0:
		return fmt.Sprintf("%s = %v", col, lo.Value)
	case lo.Unbounded && hi.Unbounded:
		return "(full)"
	default:
		var parts []string
		if !lo.Unbounded {
			op := ">"
			if lo.Inclusive {
				op = ">="
			}
			parts = append(parts, fmt.Sprintf("%s %s %v", col, op, lo.Value))
		}
		if !hi.Unbounded {
			op := "<"
			if hi.Inclusive {
				op = "<="
			}
			parts = append(parts, fmt.Sprintf("%s %s %v", col, op, hi.Value))
		}
		return strings.Join(parts, " AND ")
	}
}

func predsString(preds []Pred) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

func rowMatches(t *Table, id int, preds []Pred) bool {
	for _, p := range preds {
		if !p.Matches(t.Value(id, p.Col)) {
			return false
		}
	}
	return true
}

// AccessPath plans the physical access for a conjunction of predicates:
// an index range scan when an indexed column has a sargable predicate,
// otherwise a full scan. This is the "standard relational optimizer can
// select the index on the sal column" step of the paper (§2.1).
func AccessPath(t *Table, preds []Pred, stats *Stats) Iterator {
	return AccessPathGoverned(t, preds, stats, nil)
}

// AccessPathGoverned is AccessPath with an execution governor: the returned
// iterator stops early (Err reports why) when g is cancelled or over
// budget, so a scan over a large table aborts mid-pass instead of running
// to exhaustion. g may be nil.
func AccessPathGoverned(t *Table, preds []Pred, stats *Stats, g *governor.G) Iterator {
	best := -1
	for i, p := range preds {
		if p.Op == CmpNe || p.Val == nil {
			continue // not sargable
		}
		if !t.HasIndex(p.Col) {
			continue
		}
		// Prefer equality probes over ranges.
		if best == -1 || (preds[i].Op == CmpEq && preds[best].Op != CmpEq) {
			best = i
		}
	}
	if best == -1 {
		if stats != nil {
			atomic.AddInt64(&stats.FullScans, 1)
		}
		return &scanIter{table: t, preds: preds, stats: stats, gov: g}
	}
	if stats != nil {
		atomic.AddInt64(&stats.RangeScans, 1)
	}
	p := preds[best]
	var residual []Pred
	for i, q := range preds {
		if i != best {
			residual = append(residual, q)
		}
	}
	lo, hi := UnboundedBound, UnboundedBound
	switch p.Op {
	case CmpEq:
		lo = Bound{Value: p.Val, Inclusive: true}
		hi = lo
	case CmpLt:
		hi = Bound{Value: p.Val}
	case CmpLe:
		hi = Bound{Value: p.Val, Inclusive: true}
	case CmpGt:
		lo = Bound{Value: p.Val}
	case CmpGe:
		lo = Bound{Value: p.Val, Inclusive: true}
	}
	return &indexIter{table: t, indexCol: p.Col, lo: lo, hi: hi, residual: residual, stats: stats, gov: g}
}

// FullScan returns an unconditional scan (used when the caller needs every
// row, e.g. view materialization).
func FullScan(t *Table, stats *Stats) Iterator {
	return FullScanGoverned(t, stats, nil)
}

// FullScanGoverned is FullScan under an execution governor (may be nil).
func FullScanGoverned(t *Table, stats *Stats, g *governor.G) Iterator {
	if stats != nil {
		atomic.AddInt64(&stats.FullScans, 1)
	}
	return &scanIter{table: t, stats: stats, gov: g}
}
