package relstore

import "sort"

// MVCC snapshots. Tables are append-only — a published []Value row is never
// mutated, and Insert only ever appends — so a consistent point-in-time view
// of a table is nothing more than its rows slice header captured under the
// table lock: the header's length IS the committed row count at pin time,
// and every element below it is immutable. A TableSnap therefore costs one
// RLock to pin and nothing to hold; readers scan it entirely lock-free while
// writers keep appending (copy-on-write at the slice-header level: an append
// that grows the backing array publishes a new header, and one that reuses
// it writes only indexes at or above the pinned length — different
// addresses, invisible to the snapshot).
//
// Secondary indexes need one extra step: the B-tree mutates in place on
// Insert, so a pinned reader materializes posting lists under the table lock
// and filters out row ids at or above the pinned length — ids are assigned
// in append order, so "id < pinned length" is exactly "committed before the
// snapshot was taken".

// TableSnap is an immutable point-in-time view of one table. All read
// methods are lock-free except IndexIDs (see above). The zero value is not
// usable; pin one with Table.Snap or DB.Snapshot.
type TableSnap struct {
	tab  *Table
	rows [][]Value // header captured under the table lock at pin time
}

// Snap pins the table's current committed state. The snapshot observes every
// Insert that completed before Snap returned and none that start after.
func (t *Table) Snap() *TableSnap {
	t.mu.RLock()
	rows := t.rows
	t.mu.RUnlock()
	return &TableSnap{tab: t, rows: rows}
}

// Table returns the live table this snapshot pins — for metadata (name,
// columns, index existence), never for row reads: the live table may have
// moved past the snapshot.
func (s *TableSnap) Table() *Table { return s.tab }

// Name returns the table name.
func (s *TableSnap) Name() string { return s.tab.Name }

// NumRows reports the committed row count at pin time.
func (s *TableSnap) NumRows() int { return len(s.rows) }

// ColIndex returns the ordinal of the named column, or -1. Column metadata
// is immutable after CreateTable, so this delegates to the live table.
func (s *TableSnap) ColIndex(name string) int { return s.tab.ColIndex(name) }

// ColType returns the type of the named column.
func (s *TableSnap) ColType(name string) (ColType, bool) { return s.tab.ColType(name) }

// Row returns the values of row id as of the snapshot (shared slice; callers
// must not mutate), or nil for ids outside the pinned range.
func (s *TableSnap) Row(id int) []Value {
	if id < 0 || id >= len(s.rows) {
		return nil
	}
	return s.rows[id]
}

// Value returns one cell as of the snapshot — lock-free, unlike the live
// Table.Value.
func (s *TableSnap) Value(id int, col string) Value {
	r := s.Row(id)
	i := s.tab.ColIndex(col)
	if r == nil || i < 0 || i >= len(r) {
		return nil
	}
	return r[i]
}

// HasIndex reports whether col is indexed. Index creation is additive (an
// index built after the pin still covers every pinned row), so consulting
// the live table is safe.
func (s *TableSnap) HasIndex(col string) bool { return s.tab.HasIndex(col) }

// IndexIDs materializes the posting list for the bounded interval on col,
// restricted to rows committed before the snapshot. The B-tree descent runs
// under the table's read lock because Insert rewrites tree nodes in place;
// the returned ids are sorted ascending (row-id order ≈ heap order, which
// keeps index-path output deterministic). A missing index yields nil.
func (s *TableSnap) IndexIDs(col string, lo, hi Bound) []int {
	s.tab.mu.RLock()
	idx := s.tab.indexes[col]
	var ids []int
	if idx != nil {
		n := len(s.rows)
		idx.Range(lo, hi, func(_ Value, rows []int) bool {
			for _, id := range rows {
				if id < n {
					ids = append(ids, id)
				}
			}
			return true
		})
	}
	s.tab.mu.RUnlock()
	sort.Ints(ids)
	return ids
}

// Snapshot is a point-in-time view of the whole database: every table pinned
// at one moment. Runs and cursors pin a Snapshot when they start and read
// through it for their entire lifetime, so a scan, its correlated
// subqueries, and its scalar aggregates all observe the same committed
// state no matter how many inserts land mid-run.
//
// A Snapshot holds no locks and needs no explicit release — dropping the
// last reference frees it. (The facade keeps a pins gauge for
// observability; that bookkeeping lives there, not here.)
type Snapshot struct {
	db   *DB
	taps map[string]*TableSnap
}

// Snapshot pins every table in the database. Tables created after the pin
// are invisible to it (Table returns nil), exactly like rows inserted after
// the pin.
func (db *DB) Snapshot() *Snapshot {
	db.mu.RLock()
	taps := make(map[string]*TableSnap, len(db.tables))
	for name, t := range db.tables {
		taps[name] = t.Snap()
	}
	db.mu.RUnlock()
	return &Snapshot{db: db, taps: taps}
}

// Table returns the pinned view of the named table, or nil if the table did
// not exist when the snapshot was taken.
func (s *Snapshot) Table(name string) *TableSnap { return s.taps[name] }

// DB returns the live database this snapshot was pinned from.
func (s *Snapshot) DB() *DB { return s.db }
