package relstore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultpoint"
	"repro/internal/governor"
)

// This file is the batch-at-a-time execution contract. The original Volcano
// interface pulled one row id per call, paying interface dispatch, a
// faultpoint check, a governor tick and a table lock acquisition PER ROW.
// BatchIterator amortizes all four to once per ~1024-row chunk: producers
// fill a caller-supplied Batch under a single lock acquisition, charge the
// governor once with TickN(n), and check their fault point once per
// NextBatch call. The per-row Iterator/RowAdapter shim that bridged the
// migration is gone — every consumer, including the correlated-subquery
// scans inside XML construction, drains batches directly.

// DefaultBatchSize is the number of row ids a Batch carries unless the
// caller asks otherwise. 1024 rows is large enough to make the per-batch
// overheads (lock, faultpoint, governor) unmeasurable per row and small
// enough that a cancelled run aborts within one batch.
const DefaultBatchSize = 1024

// Batch is one chunk of scan output: row ids plus, for each id, a reference
// to the row's value slice (captured under the same lock acquisition that
// validated the id, so consumers can read cells without re-locking the
// table). Rows are append-only — a published []Value is never mutated — so
// holding the references after the lock is released is safe.
//
// Batches are pooled: obtain one with GetBatch, return it with PutBatch
// when the consumer is done. The zero Batch is usable but unpooled.
type Batch struct {
	// IDs holds the qualifying row ids, in ascending heap order.
	IDs []int
	// Rows holds the matching row value slices: Rows[i] is the row of
	// IDs[i]. Shared references — callers must not mutate.
	Rows [][]Value
}

// Len reports how many rows the batch currently holds.
func (b *Batch) Len() int { return len(b.IDs) }

// reset empties the batch, keeping capacity.
func (b *Batch) reset() {
	b.IDs = b.IDs[:0]
	b.Rows = b.Rows[:0]
}

// grow makes room for up to n rows without reallocating per append.
func (b *Batch) grow(n int) {
	if cap(b.IDs) < n {
		b.IDs = make([]int, 0, n)
		b.Rows = make([][]Value, 0, n)
	}
}

// push appends one qualifying row.
func (b *Batch) push(id int, row []Value) {
	b.IDs = append(b.IDs, id)
	b.Rows = append(b.Rows, row)
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns an empty pooled batch with capacity for size rows
// (DefaultBatchSize when size <= 0).
func GetBatch(size int) *Batch {
	if size <= 0 {
		size = DefaultBatchSize
	}
	b := batchPool.Get().(*Batch)
	b.reset()
	b.grow(size)
	return b
}

// PutBatch returns a batch to the pool. The caller must not touch b (or any
// slice obtained from it) afterwards.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	b.reset()
	batchPool.Put(b)
}

// BatchIterator is the batch-at-a-time execution contract. NextBatch fills
// batch (cleared first) with up to its capacity of qualifying row ids and
// returns how many it produced; ok=false means no rows were produced —
// either clean exhaustion or a terminal fault. Exactly like the row
// interface, consumers MUST check Err after a false NextBatch, otherwise an
// aborted scan silently truncates to an apparently-complete result.
type BatchIterator interface {
	// NextBatch fills batch with the next chunk of qualifying row ids.
	// n > 0 with ok=true, or n == 0 with ok=false at end of stream.
	NextBatch(batch *Batch) (n int, ok bool)
	// Err returns the terminal error that stopped the iterator early, or
	// nil after clean exhaustion.
	Err() error
	// Reset rewinds to the start (clearing any terminal error).
	Reset()
	// Explain describes the physical operator.
	Explain() string
}

// BatchOpts configures how an access plan opens its batch pipeline.
// The zero value means defaults: DefaultBatchSize rows per batch and
// GOMAXPROCS morsel workers for large full scans.
type BatchOpts struct {
	// BatchSize is the chunk size; <= 0 means DefaultBatchSize.
	BatchSize int
	// Workers bounds the morsel worker pool for full scans: <= 0 means
	// GOMAXPROCS, 1 forces a serial scan. Index paths are always serial —
	// a B-tree descent already touches only the qualifying rows.
	Workers int
}

// Size resolves the effective batch size (DefaultBatchSize when unset).
func (o BatchOpts) Size() int {
	if o.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return o.BatchSize
}

// WorkerCount resolves the effective morsel worker bound (GOMAXPROCS when
// unset).
func (o BatchOpts) WorkerCount() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// predClosure pre-resolves predicate columns to ordinals so per-row
// evaluation is a slice index instead of a map lookup through the table
// lock. A predicate naming a missing column gets ordinal -1 and — per SQL
// NULL semantics, matching the row interface's behavior — never matches.
type predClosure struct {
	preds []Pred
	cols  []int
}

func closePreds(t *Table, preds []Pred) predClosure {
	pc := predClosure{preds: preds}
	if len(preds) > 0 {
		pc.cols = make([]int, len(preds))
		for i, p := range preds {
			pc.cols[i] = t.ColIndex(p.Col)
		}
	}
	return pc
}

// matches evaluates the conjunction against one row's values.
func (pc *predClosure) matches(row []Value) bool {
	for i, p := range pc.preds {
		var cell Value
		if ci := pc.cols[i]; ci >= 0 && ci < len(row) {
			cell = row[ci]
		}
		if !p.Matches(cell) {
			return false
		}
	}
	return true
}

// batchScanIter is the serial full-table scan over a pinned snapshot: zero
// lock acquisitions (the snapshot's rows header is immutable), one
// fault-point check and one governor charge per batch instead of per row.
// Rows appended after the snapshot was pinned are never visited — every
// consumer of one snapshot sees the same committed state (MVCC read
// isolation), which is what lets DML race in-flight runs without tearing
// their output.
type batchScanIter struct {
	snap  *TableSnap
	pc    predClosure
	size  int // rows per emitted batch
	pos   int
	stats *Stats
	gov   *governor.G
	err   error
}

// scanChunkRows bounds the heap rows visited per lock acquisition and per
// governor charge. A batch whose predicates filter everything would
// otherwise scan the whole table inside one NextBatch with no cancellation
// check; chunking keeps the cancel latency bounded by ~4k rows of work.
const scanChunkRows = 4096

func (s *batchScanIter) NextBatch(batch *Batch) (int, bool) {
	if s.err != nil {
		return 0, false
	}
	batch.reset()
	// The fault point fires before the exhaustion check so a test arming
	// EnableAfter(n) can force a failure on the final (empty) pull too.
	if err := faultpoint.Hit("relstore.scan.batch"); err != nil {
		s.err = err
		return 0, false
	}
	// The configured batch size is authoritative — a pooled Batch may carry
	// a larger capacity from a previous consumer.
	want := s.size
	batch.grow(want)
	rows := s.snap.rows
	for batch.Len() == 0 {
		if s.pos >= len(rows) {
			break
		}
		end := s.pos + scanChunkRows
		if end > len(rows) {
			end = len(rows)
		}
		start := s.pos
		var filtered int
		for s.pos < end && batch.Len() < want {
			id := s.pos
			s.pos++
			row := rows[id]
			if s.pc.matches(row) {
				batch.push(id, row)
			} else {
				filtered++
			}
		}
		scanned := s.pos - start
		if s.stats != nil {
			atomic.AddInt64(&s.stats.RowsScanned, int64(scanned))
			if filtered > 0 && len(s.pc.preds) > 0 {
				atomic.AddInt64(&s.stats.RowsFiltered, int64(filtered))
			}
		}
		if err := s.gov.TickN(scanned); err != nil {
			s.err = err
			return 0, false
		}
	}
	n := batch.Len()
	if n == 0 {
		return 0, false
	}
	if s.stats != nil {
		atomic.AddInt64(&s.stats.RowsEmitted, int64(n))
		atomic.AddInt64(&s.stats.Batches, 1)
	}
	return n, true
}

func (s *batchScanIter) Err() error { return s.err }

func (s *batchScanIter) Reset() { s.pos = 0; s.err = nil }

func (s *batchScanIter) Explain() string { return scanExplain(s.snap.tab, s.pc.preds) }

func scanExplain(t *Table, preds []Pred) string {
	if len(preds) == 0 {
		return "TABLE SCAN " + t.Name
	}
	return "TABLE SCAN " + t.Name + " FILTER " + predsString(preds)
}

// batchIndexIter drives a B-tree descent over a pinned snapshot and emits
// the (sorted) posting list in batches: the descent runs once under the
// table lock (the tree mutates in place on Insert), filtered to rows
// committed before the snapshot; residual predicates then apply lock-free
// against the snapshot's row references.
type batchIndexIter struct {
	snap     *TableSnap
	indexCol string
	lo, hi   Bound
	residual predClosure
	probe    bool
	size     int // rows per emitted batch

	ids   []int
	pos   int
	run   bool
	stats *Stats
	gov   *governor.G
	err   error
}

func (it *batchIndexIter) materialize() {
	if it.stats != nil {
		atomic.AddInt64(&it.stats.IndexProbes, 1)
	}
	it.ids = it.snap.IndexIDs(it.indexCol, it.lo, it.hi)
	it.run = true
}

func (it *batchIndexIter) NextBatch(batch *Batch) (int, bool) {
	if it.err != nil {
		return 0, false
	}
	batch.reset()
	if err := faultpoint.Hit("relstore.index.batch"); err != nil {
		it.err = err
		return 0, false
	}
	if !it.run {
		it.materialize()
	}
	want := it.size
	batch.grow(want)
	rows := it.snap.rows
	for batch.Len() == 0 && it.pos < len(it.ids) {
		end := it.pos + scanChunkRows
		if end > len(it.ids) {
			end = len(it.ids)
		}
		start := it.pos
		var filtered int
		for it.pos < end && batch.Len() < want {
			id := it.ids[it.pos]
			it.pos++
			if id < 0 || id >= len(rows) {
				filtered++
				continue
			}
			row := rows[id]
			if it.residual.matches(row) {
				batch.push(id, row)
			} else {
				filtered++
			}
		}
		if it.stats != nil && filtered > 0 {
			atomic.AddInt64(&it.stats.RowsFiltered, int64(filtered))
		}
		if err := it.gov.TickN(it.pos - start); err != nil {
			it.err = err
			return 0, false
		}
	}
	n := batch.Len()
	if n == 0 {
		return 0, false
	}
	if it.stats != nil {
		atomic.AddInt64(&it.stats.RowsEmitted, int64(n))
		atomic.AddInt64(&it.stats.Batches, 1)
	}
	return n, true
}

func (it *batchIndexIter) Err() error { return it.err }

func (it *batchIndexIter) Reset() { it.pos = 0; it.err = nil }

func (it *batchIndexIter) Explain() string {
	op := "INDEX RANGE SCAN"
	if it.probe {
		op = "INDEX PROBE"
	}
	rng := describeRange(it.indexCol, it.lo, it.hi)
	if len(it.residual.preds) == 0 {
		return op + " " + it.snap.Name() + "(" + it.indexCol + ") " + rng
	}
	return op + " " + it.snap.Name() + "(" + it.indexCol + ") " + rng + " FILTER " + predsString(it.residual.preds)
}

// OpenBatch turns the plan into a live batch iterator over t's current
// committed state, with counters routed to stats (may be nil) under governor
// g (may be nil). It pins a fresh snapshot for the scan; callers that need a
// run-lifetime consistent view (the executor) pin one Snapshot up front and
// use OpenBatchAt instead.
func (p AccessPlan) OpenBatch(t *Table, stats *Stats, g *governor.G, opts BatchOpts) BatchIterator {
	return p.OpenBatchAt(t.Snap(), stats, g, opts)
}

// OpenBatchAt turns the plan into a live batch iterator over a pinned table
// snapshot: every row the iterator emits was committed before the snapshot
// was taken, no matter how many inserts race the scan. Full scans over
// snapshots at or above MorselMinRows split into morsels dispatched to a
// worker pool when opts allows more than one worker; the merge preserves
// heap order, so output is identical to the serial scan.
func (p AccessPlan) OpenBatchAt(ts *TableSnap, stats *Stats, g *governor.G, opts BatchOpts) BatchIterator {
	if p.Kind == PathFullScan {
		if stats != nil {
			atomic.AddInt64(&stats.FullScans, 1)
		}
		if w := opts.WorkerCount(); w > 1 && ts.NumRows() >= MorselMinRows {
			return newMorselScan(ts, p.Residual, stats, g, w, opts.Size())
		}
		return &batchScanIter{snap: ts, pc: closePreds(ts.tab, p.Residual), size: opts.Size(), stats: stats, gov: g}
	}
	if stats != nil {
		atomic.AddInt64(&stats.RangeScans, 1)
	}
	return &batchIndexIter{
		snap: ts, indexCol: p.Col, lo: p.Lo, hi: p.Hi,
		residual: closePreds(ts.tab, p.Residual), probe: p.Kind == PathIndexProbe,
		size: opts.Size(), stats: stats, gov: g,
	}
}
