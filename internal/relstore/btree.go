// Package relstore is the relational substrate: typed in-memory tables,
// B-tree secondary indexes, and Volcano-style (iterator-based pull mode,
// Graefe [10]) physical operators with index-vs-scan access-path selection.
//
// The paper's evaluation hinges on the rewritten SQL/XML query using "the
// B-tree index to compute the predicate" while the functional XSLT path
// materializes documents and walks them; this package provides exactly that
// machinery.
package relstore

import (
	"fmt"
	"sort"
)

// Value is a column value: int64, float64 or string. The zero Value (nil)
// is SQL NULL.
type Value any

// CompareValues orders two values of the same column type. NULL sorts
// before everything. Cross-type comparisons coerce numerics.
func CompareValues(a, b Value) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		case float64:
			return compareFloats(float64(x), y)
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return compareFloats(x, y)
		case int64:
			return compareFloats(x, float64(y))
		}
	case string:
		if y, ok := b.(string); ok {
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
	}
	// Incomparable types order by type name for determinism.
	ta, tb := fmt.Sprintf("%T", a), fmt.Sprintf("%T", b)
	switch {
	case ta < tb:
		return -1
	case ta > tb:
		return 1
	}
	return 0
}

func compareFloats(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// btree degree: max keys per node. 64 keeps nodes cache-friendly while
// exercising real splits in tests.
const btreeMaxKeys = 64

// BTree is a B-tree mapping column values to posting lists of row ids.
// Duplicate keys accumulate row ids on one entry.
type BTree struct {
	root *btNode
	size int // distinct keys
}

type btEntry struct {
	key  Value
	rows []int
}

type btNode struct {
	entries  []btEntry
	children []*btNode // nil for leaves; else len(entries)+1
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btNode{}}
}

// Len returns the number of distinct keys.
func (t *BTree) Len() int { return t.size }

func (n *btNode) isLeaf() bool { return n.children == nil }

// findKey locates key in the node's entries: the index and whether it was
// found.
func (n *btNode) findKey(key Value) (int, bool) {
	i := sort.Search(len(n.entries), func(i int) bool {
		return CompareValues(n.entries[i].key, key) >= 0
	})
	if i < len(n.entries) && CompareValues(n.entries[i].key, key) == 0 {
		return i, true
	}
	return i, false
}

// Insert adds rowID under key.
func (t *BTree) Insert(key Value, rowID int) {
	if len(t.root.entries) == btreeMaxKeys {
		old := t.root
		t.root = &btNode{children: []*btNode{old}}
		t.root.splitChild(0)
	}
	if t.root.insertNonFull(key, rowID) {
		t.size++
	}
}

// insertNonFull inserts into a node known to have room, returning whether a
// new distinct key was created.
func (n *btNode) insertNonFull(key Value, rowID int) bool {
	i, found := n.findKey(key)
	if found {
		n.entries[i].rows = append(n.entries[i].rows, rowID)
		return false
	}
	if n.isLeaf() {
		n.entries = append(n.entries, btEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = btEntry{key: key, rows: []int{rowID}}
		return true
	}
	if len(n.children[i].entries) == btreeMaxKeys {
		n.splitChild(i)
		cmp := CompareValues(key, n.entries[i].key)
		if cmp == 0 {
			n.entries[i].rows = append(n.entries[i].rows, rowID)
			return false
		}
		if cmp > 0 {
			i++
		}
	}
	return n.children[i].insertNonFull(key, rowID)
}

// splitChild splits the full child at index i, hoisting its median entry.
func (n *btNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeMaxKeys / 2
	median := child.entries[mid]

	right := &btNode{entries: append([]btEntry{}, child.entries[mid+1:]...)}
	if !child.isLeaf() {
		right.children = append([]*btNode{}, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]

	n.entries = append(n.entries, btEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Lookup returns the row ids stored under key (nil when absent).
func (t *BTree) Lookup(key Value) []int {
	n := t.root
	for {
		i, found := n.findKey(key)
		if found {
			return n.entries[i].rows
		}
		if n.isLeaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Bound is one end of a range scan.
type Bound struct {
	Value     Value
	Inclusive bool
	// Unbounded marks an open end.
	Unbounded bool
}

// Unbounded is the open bound.
var UnboundedBound = Bound{Unbounded: true}

// Range calls fn for each (key, rows) pair with lo <= key <= hi (subject to
// inclusivity) in ascending key order; fn returning false stops the scan.
func (t *BTree) Range(lo, hi Bound, fn func(key Value, rows []int) bool) {
	t.root.rangeScan(lo, hi, fn)
}

// AscendAll visits every key in order.
func (t *BTree) AscendAll(fn func(key Value, rows []int) bool) {
	t.Range(UnboundedBound, UnboundedBound, fn)
}

func (n *btNode) rangeScan(lo, hi Bound, fn func(Value, []int) bool) bool {
	start := 0
	if !lo.Unbounded {
		start = sort.Search(len(n.entries), func(i int) bool {
			c := CompareValues(n.entries[i].key, lo.Value)
			if lo.Inclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.isLeaf() {
			if !n.children[i].rangeScan(lo, hi, fn) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		if !hi.Unbounded {
			c := CompareValues(e.key, hi.Value)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				return false
			}
		}
		if !fn(e.key, e.rows) {
			return false
		}
	}
	return true
}
