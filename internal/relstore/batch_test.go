package relstore

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/governor"
)

// mkBigTable builds an n-row table with an id column and a low-cardinality
// v column for selective predicates.
func mkBigTable(t *testing.T, n int) *Table {
	t.Helper()
	tab, err := NewTable("big", Column{"id", IntCol}, Column{"v", IntCol})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		mustInsert(t, tab, int64(i), int64(rng.Intn(1000)))
	}
	return tab
}

// drainBatches pulls a BatchIterator dry, returning the emitted ids and the
// observed batch sizes.
func drainBatches(t *testing.T, it BatchIterator, size int) ([]int, []int) {
	t.Helper()
	b := GetBatch(size)
	defer PutBatch(b)
	var ids, sizes []int
	for {
		n, ok := it.NextBatch(b)
		if !ok {
			if n != 0 {
				t.Fatalf("NextBatch returned n=%d with ok=false", n)
			}
			return ids, sizes
		}
		if n == 0 || n != b.Len() {
			t.Fatalf("NextBatch n=%d, batch.Len()=%d", n, b.Len())
		}
		sizes = append(sizes, n)
		ids = append(ids, b.IDs...)
	}
}

// TestBatchScanChunking: a scan over n rows emits ceil(n/size) full batches
// and the ids in heap order, with row references matching the table.
func TestBatchScanChunking(t *testing.T) {
	tab := mkBigTable(t, 2500)
	it := FullScanPlan(tab, nil).OpenBatch(tab, nil, nil, BatchOpts{BatchSize: 1000, Workers: 1})
	b := GetBatch(1000)
	defer PutBatch(b)
	var total int
	wantSizes := []int{1000, 1000, 500}
	for i := 0; ; i++ {
		n, ok := it.NextBatch(b)
		if !ok {
			break
		}
		if i >= len(wantSizes) || n != wantSizes[i] {
			t.Fatalf("batch %d size = %d, want %v", i, n, wantSizes)
		}
		for j := 0; j < n; j++ {
			if b.IDs[j] != total+j {
				t.Fatalf("batch %d id[%d] = %d, want %d", i, j, b.IDs[j], total+j)
			}
			if b.Rows[j][0] != int64(total+j) {
				t.Fatalf("row ref mismatch at id %d", total+j)
			}
		}
		total += n
	}
	if total != 2500 {
		t.Fatalf("total rows = %d", total)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDrainDeterministic: two independent opens of the same plan yield
// the identical id sequence — the contract the retired per-row adapter used
// to be checked against, now asserted batch-to-batch.
func TestBatchDrainDeterministic(t *testing.T) {
	tab := mkBigTable(t, 3000)
	preds := []Pred{{Col: "v", Op: CmpLt, Val: int64(500)}}
	wantIDs, _ := drainBatches(t, PlanAccess(tab, preds).OpenBatch(tab, nil, nil, BatchOpts{Workers: 1}), 0)
	got := collect(PlanAccess(tab, preds).OpenBatch(tab, nil, nil, BatchOpts{Workers: 1}))
	if len(got) != len(wantIDs) {
		t.Fatalf("second drain %d rows vs first %d", len(got), len(wantIDs))
	}
	for i := range got {
		if got[i] != wantIDs[i] {
			t.Fatalf("row %d: second drain %d vs first %d", i, got[i], wantIDs[i])
		}
	}
}

// TestMorselScanMatchesSerial: the morsel-parallel scan must emit exactly
// the serial scan's id sequence (the ordering guarantee the byte-identity
// of the whole pipeline rests on), across batch sizes and worker counts.
func TestMorselScanMatchesSerial(t *testing.T) {
	tab := mkBigTable(t, MorselMinRows*2+777) // big enough to go parallel
	preds := []Pred{{Col: "v", Op: CmpGe, Val: int64(700)}}
	serial, _ := drainBatches(t, PlanAccess(tab, preds).OpenBatch(tab, nil, nil, BatchOpts{Workers: 1}), 0)
	for _, workers := range []int{2, 4, 8} {
		for _, size := range []int{0, 64, 4096} {
			stats := &Stats{}
			it := PlanAccess(tab, preds).OpenBatch(tab, stats, nil, BatchOpts{Workers: workers, BatchSize: size})
			got, _ := drainBatches(t, it, size)
			if len(got) != len(serial) {
				t.Fatalf("workers=%d size=%d: %d rows vs serial %d", workers, size, len(got), len(serial))
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("workers=%d size=%d: row %d is %d, want %d", workers, size, i, got[i], serial[i])
				}
			}
			if stats.Morsels == 0 {
				t.Fatalf("workers=%d: expected morsel execution, stats=%+v", workers, stats)
			}
			if it.Explain() != PlanAccess(tab, preds).Explain(tab) {
				t.Fatalf("morsel Explain drifted: %s", it.Explain())
			}
		}
	}
}

// TestMorselScanReset: Reset rewinds to a fresh scan that produces the same
// output again.
func TestMorselScanReset(t *testing.T) {
	tab := mkBigTable(t, MorselMinRows*2)
	it := FullScanPlan(tab, nil).OpenBatch(tab, nil, nil, BatchOpts{Workers: 4})
	first, _ := drainBatches(t, it, 0)
	it.Reset()
	second, _ := drainBatches(t, it, 0)
	if len(first) != len(tab.rows) || len(second) != len(first) {
		t.Fatalf("reset scan: %d then %d rows, want %d", len(first), len(second), len(tab.rows))
	}
}

// TestBatchFaultSurfacesViaErr: a fault injected at the batch fetch site
// must surface through Err(), never truncate the stream silently — for the
// serial scan, the morsel scan, and the index path.
func TestBatchFaultSurfacesViaErr(t *testing.T) {
	errBoom := errors.New("boom")
	tab := mkBigTable(t, MorselMinRows*2)
	_ = tab.CreateIndex("v")

	cases := []struct {
		name string
		site string
		open func() BatchIterator
	}{
		{"serial-scan", "relstore.scan.batch", func() BatchIterator {
			return FullScanPlan(tab, nil).OpenBatch(tab, nil, nil, BatchOpts{Workers: 1, BatchSize: 512})
		}},
		{"morsel-scan", "relstore.scan.batch", func() BatchIterator {
			return FullScanPlan(tab, nil).OpenBatch(tab, nil, nil, BatchOpts{Workers: 4, BatchSize: 512})
		}},
		{"index-scan", "relstore.index.batch", func() BatchIterator {
			preds := []Pred{{Col: "v", Op: CmpGe, Val: int64(100)}}
			return PlanAccess(tab, preds).OpenBatch(tab, nil, nil, BatchOpts{Workers: 1, BatchSize: 512})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faultpoint.EnableAfter(tc.site, 2, errBoom) // fail on the 3rd batch pull
			defer faultpoint.Reset()
			it := tc.open()
			ids, _ := drainBatches(t, it, 512)
			if !errors.Is(it.Err(), errBoom) {
				t.Fatalf("Err() = %v, want the injected fault", it.Err())
			}
			if len(ids) == 0 || len(ids) >= tab.NumRows() {
				t.Fatalf("fault neither mid-stream nor surfaced: %d of %d rows", len(ids), tab.NumRows())
			}
		})
	}
}

// TestBatchGovernorCancel: cancelling the governor mid-scan stops both the
// serial and the morsel producer with ErrCanceled.
func TestBatchGovernorCancel(t *testing.T) {
	tab := mkBigTable(t, MorselMinRows*4)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		g := governor.New(ctx)
		it := FullScanPlan(tab, nil).OpenBatch(tab, nil, g, BatchOpts{Workers: workers, BatchSize: 256})
		b := GetBatch(256)
		if _, ok := it.NextBatch(b); !ok {
			t.Fatalf("workers=%d: first batch failed: %v", workers, it.Err())
		}
		cancel()
		for {
			if _, ok := it.NextBatch(b); !ok {
				break
			}
		}
		PutBatch(b)
		if !errors.Is(it.Err(), governor.ErrCanceled) {
			t.Fatalf("workers=%d: Err() = %v, want ErrCanceled", workers, it.Err())
		}
	}
}

// TestBatchScanConcurrentInsert is the -race regression for the snapshot
// scan: a full scan races Insert calls appending rows. The scan must never
// crash or trip the race detector (the rows-header snapshot is read
// lock-free), and every row that existed when the scan started must appear.
func TestBatchScanConcurrentInsert(t *testing.T) {
	const base = MorselMinRows * 2
	tab := mkBigTable(t, base)
	for _, workers := range []int{1, 4} {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tab.Insert(int64(1_000_000+i), int64(i%1000)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		it := FullScanPlan(tab, nil).OpenBatch(tab, nil, nil, BatchOpts{Workers: workers, BatchSize: 512})
		ids, _ := drainBatches(t, it, 512)
		close(stop)
		wg.Wait()
		if err := it.Err(); err != nil {
			t.Fatalf("workers=%d: scan failed racing inserts: %v", workers, err)
		}
		if len(ids) < base {
			t.Fatalf("workers=%d: scan lost rows: %d < %d", workers, len(ids), base)
		}
		for i := 0; i < len(ids); i++ {
			if ids[i] != i {
				t.Fatalf("workers=%d: id[%d] = %d — order broken", workers, i, ids[i])
			}
		}
	}
}

// TestBatchStatsCounters: the batch producers keep the physical counters
// honest — RowsScanned covers every visited row, Batches counts emissions,
// and the realized batch size is bounded by the requested one.
func TestBatchStatsCounters(t *testing.T) {
	tab := mkBigTable(t, 3000)
	preds := []Pred{{Col: "v", Op: CmpLt, Val: int64(200)}}
	stats := &Stats{}
	it := PlanAccess(tab, preds).OpenBatch(tab, stats, nil, BatchOpts{BatchSize: 128, Workers: 1})
	ids, sizes := drainBatches(t, it, 128)
	if stats.RowsScanned != 3000 {
		t.Fatalf("RowsScanned = %d", stats.RowsScanned)
	}
	if stats.RowsEmitted != int64(len(ids)) {
		t.Fatalf("RowsEmitted = %d, emitted %d", stats.RowsEmitted, len(ids))
	}
	if stats.RowsFiltered != 3000-int64(len(ids)) {
		t.Fatalf("RowsFiltered = %d", stats.RowsFiltered)
	}
	if stats.Batches != int64(len(sizes)) {
		t.Fatalf("Batches = %d, saw %d", stats.Batches, len(sizes))
	}
	for _, n := range sizes {
		if n > 128 {
			t.Fatalf("batch of %d exceeds requested size 128", n)
		}
	}
	snap := stats.Snapshot()
	if snap.Batches != stats.Batches || snap.Morsels != stats.Morsels {
		t.Fatal("Snapshot missing batch counters")
	}
	var agg Stats
	agg.Add(stats)
	if agg.Batches != stats.Batches {
		t.Fatal("Add missing batch counters")
	}
}

// TestTickNBoundary: TickN must perform a full check whenever the charge
// crosses a 64-tick boundary, regardless of n, and stay sticky after a
// verdict.
func TestTickNBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := governor.New(ctx)
	if err := g.TickN(10_000); err != nil { // crosses many boundaries: full check
		t.Fatal(err)
	}
	cancel()
	if err := g.TickN(1); err == nil {
		// One more small charge may not cross a boundary; a big one must.
		if err := g.TickN(64); err == nil {
			t.Fatal("TickN(64) after cancel must detect cancellation")
		}
	}
	if err := g.TickN(0); !errors.Is(err, governor.ErrCanceled) {
		t.Fatalf("sticky error not returned on n=0: %v", err)
	}
	var nilG *governor.G
	if err := nilG.TickN(100); err != nil {
		t.Fatal("nil governor must no-op")
	}
}
