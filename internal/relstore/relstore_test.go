package relstore

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func mkDeptEmp(t *testing.T) (*DB, *Table, *Table) {
	t.Helper()
	db := NewDB()
	dept, err := db.CreateTable("dept",
		Column{"deptno", IntCol}, Column{"dname", StringCol}, Column{"loc", StringCol})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := db.CreateTable("emp",
		Column{"empno", IntCol}, Column{"ename", StringCol},
		Column{"job", StringCol}, Column{"sal", IntCol}, Column{"deptno", IntCol})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Tables 1 and 2.
	mustInsert(t, dept, int64(10), "ACCOUNTING", "NEW YORK")
	mustInsert(t, dept, int64(40), "OPERATIONS", "BOSTON")
	mustInsert(t, emp, int64(7782), "CLARK", "MANAGER", int64(2450), int64(10))
	mustInsert(t, emp, int64(7934), "MILLER", "CLERK", int64(1300), int64(10))
	mustInsert(t, emp, int64(7954), "SMITH", "VP", int64(4900), int64(40))
	return db, dept, emp
}

func mustInsert(t *testing.T, tab *Table, vals ...Value) {
	t.Helper()
	if _, err := tab.Insert(vals...); err != nil {
		t.Fatal(err)
	}
}

// collect drains a batch iterator into a flat id slice (test convenience).
func collect(it BatchIterator) []int {
	var ids []int
	batch := GetBatch(0)
	defer PutBatch(batch)
	for {
		n, ok := it.NextBatch(batch)
		if !ok {
			return ids
		}
		ids = append(ids, batch.IDs[:n]...)
	}
}

// accessPath plans and opens the batch access path for preds over t's
// current state — the test-side replacement for the retired per-row helper.
func accessPath(t *Table, preds []Pred, stats *Stats) BatchIterator {
	return PlanAccess(t, preds).OpenBatch(t, stats, nil, BatchOpts{Workers: 1})
}

func TestTableBasics(t *testing.T) {
	_, dept, emp := mkDeptEmp(t)
	if dept.NumRows() != 2 || emp.NumRows() != 3 {
		t.Fatal("row counts wrong")
	}
	if emp.Value(0, "ename") != "CLARK" {
		t.Fatalf("cell = %v", emp.Value(0, "ename"))
	}
	if emp.Value(0, "nope") != nil || emp.Value(99, "ename") != nil {
		t.Fatal("missing cells should be nil")
	}
	if dept.ColIndex("loc") != 2 || dept.ColIndex("zz") != -1 {
		t.Fatal("ColIndex wrong")
	}
	ct, ok := emp.ColType("sal")
	if !ok || ct != IntCol {
		t.Fatal("ColType wrong")
	}
}

func TestInsertCoercion(t *testing.T) {
	tab, _ := NewTable("t", Column{"i", IntCol}, Column{"f", FloatCol}, Column{"s", StringCol})
	if _, err := tab.Insert("42", 1, 99); err != nil {
		t.Fatal(err)
	}
	if tab.Value(0, "i") != int64(42) {
		t.Fatalf("i = %v", tab.Value(0, "i"))
	}
	if tab.Value(0, "f") != float64(1) {
		t.Fatalf("f = %v", tab.Value(0, "f"))
	}
	if tab.Value(0, "s") != "99" {
		t.Fatalf("s = %v", tab.Value(0, "s"))
	}
	if _, err := tab.Insert("notanint", 0, ""); err == nil {
		t.Fatal("bad int should error")
	}
	if _, err := tab.Insert(int64(1)); err == nil {
		t.Fatal("arity should error")
	}
	// NULLs are allowed.
	if _, err := tab.Insert(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTableErrors(t *testing.T) {
	if _, err := NewTable("t"); err == nil {
		t.Fatal("empty table should error")
	}
	if _, err := NewTable("t", Column{"a", IntCol}, Column{"a", IntCol}); err == nil {
		t.Fatal("dup column should error")
	}
	db := NewDB()
	if _, err := db.CreateTable("x", Column{"a", IntCol}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("x", Column{"a", IntCol}); err == nil {
		t.Fatal("dup table should error")
	}
	if db.Table("x") == nil || db.Table("y") != nil {
		t.Fatal("Table lookup wrong")
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "x" {
		t.Fatal("TableNames wrong")
	}
}

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(int64(i%100), i)
	}
	if bt.Len() != 100 {
		t.Fatalf("distinct keys = %d", bt.Len())
	}
	rows := bt.Lookup(int64(7))
	if len(rows) != 10 {
		t.Fatalf("posting list = %d", len(rows))
	}
	if bt.Lookup(int64(500)) != nil {
		t.Fatal("missing key should return nil")
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(int64(i), i)
	}
	var keys []int64
	bt.Range(Bound{Value: int64(100), Inclusive: true}, Bound{Value: int64(110)}, func(k Value, _ []int) bool {
		keys = append(keys, k.(int64))
		return true
	})
	if len(keys) != 10 || keys[0] != 100 || keys[9] != 109 {
		t.Fatalf("range keys = %v", keys)
	}
	// Exclusive low bound.
	keys = keys[:0]
	bt.Range(Bound{Value: int64(100)}, Bound{Value: int64(103), Inclusive: true}, func(k Value, _ []int) bool {
		keys = append(keys, k.(int64))
		return true
	})
	if len(keys) != 3 || keys[0] != 101 {
		t.Fatalf("exclusive range = %v", keys)
	}
	// Early stop.
	count := 0
	bt.AscendAll(func(Value, []int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestQuickBTreeOrdered property: ascending iteration yields sorted distinct
// keys matching a reference map, under random insertion order.
func TestQuickBTreeOrdered(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		ref := map[int64][]int{}
		for i := 0; i < n*3; i++ {
			k := int64(rng.Intn(n))
			bt.Insert(k, i)
			ref[k] = append(ref[k], i)
		}
		var got []int64
		ok := true
		bt.AscendAll(func(k Value, rows []int) bool {
			key := k.(int64)
			got = append(got, key)
			if len(rows) != len(ref[key]) {
				ok = false
			}
			return true
		})
		if !ok || len(got) != len(ref) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBTreeRangeMatchesLinear(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		vals := map[int64]bool{}
		for i := 0; i < 300; i++ {
			k := int64(rng.Intn(256))
			bt.Insert(k, i)
			vals[k] = true
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for k := range vals {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		bt.Range(Bound{Value: lo, Inclusive: true}, Bound{Value: hi, Inclusive: true}, func(Value, []int) bool {
			got++
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{"a", "b", -1},
		{int64(2), float64(2.5), -1},
		{float64(3), int64(2), 1},
		{nil, int64(1), -1},
		{nil, nil, 0},
		{int64(1), nil, 1},
	}
	for _, tc := range cases {
		if got := CompareValues(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAccessPathSelectsIndex(t *testing.T) {
	_, _, emp := mkDeptEmp(t)
	preds := []Pred{{Col: "sal", Op: CmpGt, Val: int64(2000)}}

	// Without an index: full scan.
	stats := &Stats{}
	it := accessPath(emp, preds, stats)
	if !strings.HasPrefix(it.Explain(), "TABLE SCAN") {
		t.Fatalf("expected scan, got %s", it.Explain())
	}
	ids := collect(it)
	if len(ids) != 2 { // CLARK 2450, SMITH 4900
		t.Fatalf("scan result = %v", ids)
	}
	if stats.RowsScanned != 3 {
		t.Fatalf("rows scanned = %d", stats.RowsScanned)
	}

	// With an index: index range scan, fewer rows touched.
	if err := emp.CreateIndex("sal"); err != nil {
		t.Fatal(err)
	}
	stats2 := &Stats{}
	it2 := accessPath(emp, preds, stats2)
	if !strings.HasPrefix(it2.Explain(), "INDEX RANGE SCAN") {
		t.Fatalf("expected index scan, got %s", it2.Explain())
	}
	ids2 := collect(it2)
	if len(ids2) != 2 {
		t.Fatalf("index result = %v", ids2)
	}
	if stats2.RowsScanned != 0 || stats2.IndexProbes != 1 {
		t.Fatalf("stats = %+v", stats2)
	}
	// Same rows either way.
	sort.Ints(ids)
	sort.Ints(ids2)
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Fatal("index and scan disagree")
		}
	}
}

func TestAccessPathEqualityAndResidual(t *testing.T) {
	_, _, emp := mkDeptEmp(t)
	if err := emp.CreateIndex("deptno"); err != nil {
		t.Fatal(err)
	}
	preds := []Pred{
		{Col: "deptno", Op: CmpEq, Val: int64(10)},
		{Col: "sal", Op: CmpGt, Val: int64(2000)},
	}
	it := accessPath(emp, preds, nil)
	expl := it.Explain()
	if !strings.Contains(expl, "deptno = 10") || !strings.Contains(expl, "FILTER sal > 2000") {
		t.Fatalf("explain = %s", expl)
	}
	ids := collect(it)
	if len(ids) != 1 || emp.Value(ids[0], "ename") != "CLARK" {
		t.Fatalf("result = %v", ids)
	}
}

func TestAccessPathPrefersEquality(t *testing.T) {
	_, _, emp := mkDeptEmp(t)
	_ = emp.CreateIndex("sal")
	_ = emp.CreateIndex("deptno")
	preds := []Pred{
		{Col: "sal", Op: CmpGt, Val: int64(0)},
		{Col: "deptno", Op: CmpEq, Val: int64(40)},
	}
	it := accessPath(emp, preds, nil)
	if !strings.Contains(it.Explain(), "deptno = 40") {
		t.Fatalf("should prefer equality probe: %s", it.Explain())
	}
}

func TestIteratorReset(t *testing.T) {
	_, _, emp := mkDeptEmp(t)
	it := FullScanPlan(emp, nil).OpenBatch(emp, nil, nil, BatchOpts{Workers: 1})
	first := collect(it)
	it.Reset()
	second := collect(it)
	if len(first) != 3 || len(second) != 3 {
		t.Fatal("reset failed")
	}
}

func TestPredMatchesNullSemantics(t *testing.T) {
	p := Pred{Col: "x", Op: CmpEq, Val: int64(1)}
	if p.Matches(nil) {
		t.Fatal("NULL should not match")
	}
	p2 := Pred{Col: "x", Op: CmpNe, Val: int64(1)}
	if p2.Matches(nil) {
		t.Fatal("NULL <> 1 should not match (3VL)")
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	tab, _ := NewTable("t", Column{"k", IntCol})
	_ = tab.CreateIndex("k")
	for i := 0; i < 100; i++ {
		mustInsert(t, tab, int64(i%10))
	}
	if got := len(tab.Index("k").Lookup(int64(3))); got != 10 {
		t.Fatalf("index postings = %d", got)
	}
	// NULLs are not indexed.
	mustInsert(t, tab, nil)
	if tab.Index("k").Len() != 10 {
		t.Fatal("NULL should not be indexed")
	}
}

func TestLargeScaleIndexVsScanAgree(t *testing.T) {
	tab, _ := NewTable("big", Column{"id", IntCol}, Column{"v", IntCol})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		mustInsert(t, tab, int64(i), int64(rng.Intn(1000)))
	}
	preds := []Pred{{Col: "v", Op: CmpGe, Val: int64(990)}}
	scanIDs := collect(accessPath(tab, preds, nil))
	_ = tab.CreateIndex("v")
	idxIDs := collect(accessPath(tab, preds, nil))
	sort.Ints(scanIDs)
	sort.Ints(idxIDs)
	if len(scanIDs) != len(idxIDs) {
		t.Fatalf("scan %d vs index %d", len(scanIDs), len(idxIDs))
	}
	for i := range scanIDs {
		if scanIDs[i] != idxIDs[i] {
			t.Fatal("row sets differ")
		}
	}
}
