package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// ColType is the declared type of a column.
type ColType uint8

// Column types.
const (
	IntCol ColType = iota
	FloatCol
	StringCol
)

// String names the column type in DDL style.
func (t ColType) String() string {
	switch t {
	case IntCol:
		return "INT"
	case FloatCol:
		return "FLOAT"
	default:
		return "VARCHAR"
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an in-memory heap table with optional B-tree secondary indexes.
type Table struct {
	Name string
	Cols []Column

	mu      sync.RWMutex
	rows    [][]Value
	colIdx  map[string]int
	indexes map[string]*BTree
}

// NewTable creates a table with the given columns.
func NewTable(name string, cols ...Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relstore: table %q needs at least one column", name)
	}
	t := &Table{Name: name, Cols: cols, colIdx: map[string]int{}, indexes: map[string]*BTree{}}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("relstore: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[c.Name] = i
	}
	return t, nil
}

// ColIndex returns the ordinal of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// ColType returns the type of the named column.
func (t *Table) ColType(name string) (ColType, bool) {
	i := t.ColIndex(name)
	if i < 0 {
		return 0, false
	}
	return t.Cols[i].Type, true
}

// NumRows reports the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// coerce validates/converts v to the column type.
func coerce(v Value, ct ColType) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch ct {
	case IntCol:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case float64:
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relstore: %q is not an INT", x)
			}
			return n, nil
		}
	case FloatCol:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		case string:
			f, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return nil, fmt.Errorf("relstore: %q is not a FLOAT", x)
			}
			return f, nil
		}
	case StringCol:
		switch x := v.(type) {
		case string:
			return x, nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case int:
			return strconv.Itoa(x), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		}
	}
	return nil, fmt.Errorf("relstore: cannot store %T in a %s column", v, ct)
}

// CoerceRow validates arity and converts each value to its declared column
// type, returning the storable row without inserting it. The durability
// layer uses this to validate a row BEFORE logging it to the WAL — a row
// that would fail Insert must never reach the log, or replay would diverge
// from the original execution.
func (t *Table) CoerceRow(values []Value) ([]Value, error) {
	if len(values) != len(t.Cols) {
		return nil, fmt.Errorf("relstore: table %q expects %d values, got %d", t.Name, len(t.Cols), len(values))
	}
	row := make([]Value, len(values))
	for i, v := range values {
		cv, err := coerce(v, t.Cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", t.Cols[i].Name, err)
		}
		row[i] = cv
	}
	return row, nil
}

// Insert appends a row (values in declared column order) and maintains all
// indexes. Returns the new row id.
func (t *Table) Insert(values ...Value) (int, error) {
	row, err := t.CoerceRow(values)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		ci := t.colIdx[col]
		if row[ci] != nil {
			idx.Insert(row[ci], id)
		}
	}
	return id, nil
}

// Row returns the values of row id (shared slice; callers must not mutate).
func (t *Table) Row(id int) []Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.rows) {
		return nil
	}
	return t.rows[id]
}

// Value returns one cell.
func (t *Table) Value(id int, col string) Value {
	r := t.Row(id)
	i := t.ColIndex(col)
	if r == nil || i < 0 {
		return nil
	}
	return r[i]
}

// CreateIndex builds a B-tree index on the column (idempotent).
func (t *Table) CreateIndex(col string) error {
	ci := t.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: no column %q in table %q", col, t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	idx := NewBTree()
	for id, row := range t.rows {
		if row[ci] != nil {
			idx.Insert(row[ci], id)
		}
	}
	t.indexes[col] = idx
	return nil
}

// Index returns the index on col, or nil.
func (t *Table) Index(col string) *BTree {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[col]
}

// HasIndex reports whether col is indexed.
func (t *Table) HasIndex(col string) bool { return t.Index(col) != nil }

// DB is a named collection of tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// CreateTable creates and registers a table.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	t, err := NewTable(name, cols...)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
