package relstore

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultpoint"
	"repro/internal/governor"
)

// Morsel-driven parallel full scan. A large heap scan is split into
// fixed-size contiguous morsels; a bounded worker pool claims morsels with
// an atomic counter and filters each one against a single immutable snapshot
// of the rows header. The consumer-side merger emits morsel results strictly
// in morsel order (and ids are ascending within a morsel), so the output row
// order — and therefore every serialized byte downstream — is identical to
// the serial scan. Batch boundaries may land on morsel boundaries, which is
// invisible to consumers: a Batch is a transport unit, not a semantic one.
//
// Workers never block: every claimed morsel's done channel is closed on
// every path (scanned, governor-stopped, or abandoned), so the merger can
// wait on channels without leaking goroutines, and workers drain the claim
// counter even after a stop so nothing is left running.

// MorselMinRows is the table size below which a full scan stays serial even
// when the caller allows workers: splitting a few thousand rows across
// goroutines costs more in scheduling than the scan itself.
const MorselMinRows = 8192

// morselRows is the number of heap rows per morsel — big enough that the
// per-morsel bookkeeping (one claim, one governor charge, one channel close)
// is noise, small enough that the pool load-balances across skewed filters.
const morselRows = 4096

// morsel is one contiguous slice of the scan, filled by exactly one worker.
type morsel struct {
	lo, hi int // row-id range [lo, hi)

	ids  []int
	rows [][]Value
	err  error // governor verdict that stopped this morsel, if any

	done chan struct{} // closed when ids/rows/err are final
}

// morselScan is the BatchIterator over a morsel-parallel full scan.
type morselScan struct {
	snap      *TableSnap
	preds     []Pred
	stats     *Stats
	gov       *governor.G
	workers   int
	batchSize int

	// Scan-lifetime state, built lazily on the first NextBatch so that
	// opening (and Explain-ing) a plan spawns nothing.
	started bool
	pc      predClosure
	morsels  []morsel
	next     atomic.Int64 // claim counter
	stop     atomic.Bool  // short-circuits workers after a terminal error
	executed atomic.Int64 // morsels actually scanned
	wg       sync.WaitGroup

	// Merger cursor.
	cur, pos int
	err      error
}

func newMorselScan(ts *TableSnap, preds []Pred, stats *Stats, g *governor.G, workers, batchSize int) *morselScan {
	return &morselScan{snap: ts, preds: preds, stats: stats, gov: g, workers: workers, batchSize: batchSize}
}

// start carves the pinned snapshot into morsels and launches the worker
// pool. The snapshot's rows header is immutable (see TableSnap), so workers
// read snap.rows[0..n) lock-free without racing concurrent inserts — an
// insert may write indexes >= n in the same backing array, but those are
// different addresses and outside the scan. Rows appended after the pin are
// never visited, matching the serial scan's snapshot semantics exactly.
func (m *morselScan) start() {
	m.pc = closePreds(m.snap.tab, m.preds)

	n := m.snap.NumRows()
	m.morsels = make([]morsel, 0, (n+morselRows-1)/morselRows)
	for lo := 0; lo < n; lo += morselRows {
		hi := lo + morselRows
		if hi > n {
			hi = n
		}
		m.morsels = append(m.morsels, morsel{lo: lo, hi: hi, done: make(chan struct{})})
	}
	w := m.workers
	if w > len(m.morsels) {
		w = len(m.morsels)
	}
	m.wg.Add(w)
	for i := 0; i < w; i++ {
		go m.worker()
	}
	m.started = true
}

// worker claims morsels until the counter is exhausted. Every claimed
// morsel's done channel is closed before the next claim — including after a
// stop — so the merger never waits on a channel nobody owns.
func (m *morselScan) worker() {
	defer m.wg.Done()
	for {
		i := int(m.next.Add(1)) - 1
		if i >= len(m.morsels) {
			return
		}
		ms := &m.morsels[i]
		if m.stop.Load() {
			close(ms.done)
			continue
		}
		for id := ms.lo; id < ms.hi; id++ {
			row := m.snap.rows[id]
			if m.pc.matches(row) {
				ms.ids = append(ms.ids, id)
				ms.rows = append(ms.rows, row)
			}
		}
		scanned := ms.hi - ms.lo
		m.executed.Add(1)
		if m.stats != nil {
			atomic.AddInt64(&m.stats.RowsScanned, int64(scanned))
			atomic.AddInt64(&m.stats.Morsels, 1)
			if f := scanned - len(ms.ids); f > 0 && len(m.preds) > 0 {
				atomic.AddInt64(&m.stats.RowsFiltered, int64(f))
			}
		}
		// One governor charge per morsel: cancellation latency is bounded
		// by one morsel of work per worker, well inside the <100ms budget.
		if err := m.gov.TickN(scanned); err != nil {
			ms.err = err
			m.stop.Store(true)
		}
		close(ms.done)
	}
}

func (m *morselScan) NextBatch(batch *Batch) (int, bool) {
	if m.err != nil {
		return 0, false
	}
	batch.reset()
	// Fault point and injection semantics live on the merger (consumer)
	// side: one deterministic Hit per NextBatch regardless of how many
	// workers raced in the background.
	if err := faultpoint.Hit("relstore.scan.batch"); err != nil {
		m.err = err
		m.stop.Store(true)
		return 0, false
	}
	// One unamortized governor check per batch: workers run eagerly, so by
	// the time the merger is consuming, every morsel may already be buffered
	// and no worker will observe a late cancellation. The merger must.
	if err := m.gov.Check(); err != nil {
		m.err = err
		m.stop.Store(true)
		return 0, false
	}
	if !m.started {
		m.start()
	}
	// The configured batch size is authoritative (see batchScanIter).
	want := m.batchSize
	batch.grow(want)
	for batch.Len() == 0 {
		if m.cur >= len(m.morsels) {
			return 0, false
		}
		ms := &m.morsels[m.cur]
		<-ms.done
		if ms.err != nil {
			m.err = ms.err
			return 0, false
		}
		for m.pos < len(ms.ids) && batch.Len() < want {
			batch.push(ms.ids[m.pos], ms.rows[m.pos])
			m.pos++
		}
		if m.pos >= len(ms.ids) {
			m.cur++
			m.pos = 0
		}
	}
	n := batch.Len()
	if m.stats != nil {
		atomic.AddInt64(&m.stats.RowsEmitted, int64(n))
		atomic.AddInt64(&m.stats.Batches, 1)
	}
	return n, true
}

func (m *morselScan) Err() error { return m.err }

// Reset abandons any in-flight workers (waiting for them to drain the claim
// counter) and rewinds to an unstarted scan over the same pinned snapshot.
func (m *morselScan) Reset() {
	if m.started {
		m.stop.Store(true)
		m.wg.Wait()
	}
	m.started = false
	m.morsels = nil
	m.next.Store(0)
	m.stop.Store(false)
	m.executed.Store(0)
	m.cur, m.pos = 0, 0
	m.err = nil
}

// Explain renders exactly the serial full scan's operator line: morsel
// parallelism is a physical execution detail, not a different plan.
func (m *morselScan) Explain() string { return scanExplain(m.snap.tab, m.preds) }

// MorselsExecuted reports how many morsels workers have scanned so far —
// the observability layer records it as a span attribute.
func (m *morselScan) MorselsExecuted() int { return int(m.executed.Load()) }

// ScanWorkers reports the worker-pool bound this scan runs with — the
// observability layer records it as the scan span's workers attribute.
// Serial iterators don't implement this; consumers treat absence as 1.
func (m *morselScan) ScanWorkers() int { return m.workers }
