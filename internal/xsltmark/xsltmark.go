// Package xsltmark is the repository's stand-in for the XSLTMark benchmark
// suite [19] the paper's evaluation uses: forty named test cases covering
// the functional areas of an XSLT processor, each with a scalable input
// generator and (for the database-backed cases the figures use) a
// relational backing with an XMLType view.
//
// The original suite is not redistributable; these cases reproduce the same
// categories — value-predicate selection (dbonerow), attribute value
// templates (avts), aggregation (chart, total), conditional construction
// (metric), sorting, recursion, named templates, copying — with the five
// case names the paper cites kept verbatim.
package xsltmark

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relstore"
	"repro/internal/sqlxml"
)

// Case is one benchmark test case.
type Case struct {
	Name        string
	Category    string
	Description string
	Stylesheet  string
	// Schema is the compact structural schema of the generated input.
	Schema string
	// Gen produces an input document with n records.
	Gen func(n int) string
	// Rel is the relational backing for database-view cases (nil when the
	// case only runs over standalone documents).
	Rel *RelBacking
	// ExpectInline records whether the paper-style rewrite should fully
	// inline this case (the §5 "23 out of 40" statistic).
	ExpectInline bool
}

// RelBacking describes how to load the case's data into relational tables
// and expose them as an XMLType view.
type RelBacking struct {
	// Setup creates and fills tables for n records.
	Setup func(db *relstore.DB, n int) error
	// View is the XMLType view equivalent to Gen(n)'s document.
	View func() *sqlxml.ViewDef
	// IndexCols lists the B-tree indexes the "rewrite" configuration
	// creates (table → columns).
	IndexCols map[string][]string
}

var registry []*Case

func register(c *Case) { registry = append(registry, c) }

// All returns the forty cases in a stable order.
func All() []*Case {
	out := append([]*Case{}, registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named case, or nil.
func ByName(name string) *Case {
	for _, c := range registry {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// wrap builds a stylesheet document around template markup.
func wrap(body string) string {
	return `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + body + `</xsl:stylesheet>`
}

// lcg is a tiny deterministic generator so inputs are stable across runs.
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed*6364136223846793005 + 1442695040888963407} }

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state >> 17
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

var firstNames = []string{"ALICE", "BOB", "CLARK", "DINA", "ERIN", "FRED", "GINA", "HANK", "IRIS", "JACK", "MILLER", "SMITH"}
var regions = []string{"NORTH", "SOUTH", "EAST", "WEST"}

// SalesSchema is the structural schema shared by the table/row cases.
const SalesSchema = `
table := row*
row   := id:int, name, region, price:int, qty:int
`

// GenSalesDoc generates the standalone document form of the sales data.
func GenSalesDoc(n int) string {
	var sb strings.Builder
	sb.Grow(n * 96)
	sb.WriteString("<table>")
	rng := newLCG(42)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<row><id>%d</id><name>%s</name><region>%s</region><price>%d</price><qty>%d</qty></row>",
			i+1, firstNames[rng.intn(len(firstNames))], regions[rng.intn(len(regions))],
			rng.intn(1000)+1, rng.intn(50)+1)
	}
	sb.WriteString("</table>")
	return sb.String()
}

// SetupSalesDB loads the same data into relational tables: a single-row
// driving table (the document) and the sales rows.
func SetupSalesDB(db *relstore.DB, n int) error {
	docs, err := db.CreateTable("docs", relstore.Column{Name: "docid", Type: relstore.IntCol})
	if err != nil {
		return err
	}
	if _, err := docs.Insert(int64(1)); err != nil {
		return err
	}
	sales, err := db.CreateTable("sales",
		relstore.Column{Name: "id", Type: relstore.IntCol},
		relstore.Column{Name: "name", Type: relstore.StringCol},
		relstore.Column{Name: "region", Type: relstore.StringCol},
		relstore.Column{Name: "price", Type: relstore.IntCol},
		relstore.Column{Name: "qty", Type: relstore.IntCol})
	if err != nil {
		return err
	}
	rng := newLCG(42)
	for i := 0; i < n; i++ {
		_, err := sales.Insert(int64(i+1),
			firstNames[rng.intn(len(firstNames))], regions[rng.intn(len(regions))],
			int64(rng.intn(1000)+1), int64(rng.intn(50)+1))
		if err != nil {
			return err
		}
	}
	return nil
}

// SalesView is the XMLType view equivalent of GenSalesDoc.
func SalesView() *sqlxml.ViewDef {
	return &sqlxml.ViewDef{
		Name:  "sales_doc",
		Table: "docs",
		Body: &sqlxml.Element{Name: "table", Children: []sqlxml.XMLExpr{
			&sqlxml.Agg{Sub: &sqlxml.SubQuery{
				Table: "sales",
				Body: &sqlxml.Element{Name: "row", Children: []sqlxml.XMLExpr{
					&sqlxml.Element{Name: "id", Children: []sqlxml.XMLExpr{&sqlxml.Column{Name: "id"}}},
					&sqlxml.Element{Name: "name", Children: []sqlxml.XMLExpr{&sqlxml.Column{Name: "name"}}},
					&sqlxml.Element{Name: "region", Children: []sqlxml.XMLExpr{&sqlxml.Column{Name: "region"}}},
					&sqlxml.Element{Name: "price", Children: []sqlxml.XMLExpr{&sqlxml.Column{Name: "price"}}},
					&sqlxml.Element{Name: "qty", Children: []sqlxml.XMLExpr{&sqlxml.Column{Name: "qty"}}},
				}},
			}},
		}},
	}
}

func salesBacking(indexCols ...string) *RelBacking {
	idx := map[string][]string{}
	if len(indexCols) > 0 {
		idx["sales"] = indexCols
	}
	return &RelBacking{Setup: SetupSalesDB, View: SalesView, IndexCols: idx}
}

// GenNestedDoc generates a recursive sections document of depth ~log2(n).
func GenNestedDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<doc>")
	var emit func(depth, width int)
	count := 0
	var build func(depth int)
	build = func(depth int) {
		if count >= n || depth > 12 {
			return
		}
		count++
		fmt.Fprintf(&sb, "<section><title>S%d</title>", count)
		for i := 0; i < 2 && count < n; i++ {
			build(depth + 1)
		}
		sb.WriteString("</section>")
	}
	_ = emit
	for count < n {
		build(0)
	}
	sb.WriteString("</doc>")
	return sb.String()
}

// NestedSchema describes GenNestedDoc (recursive).
const NestedSchema = `
doc     := section*
section := title, section*
title   := #text
`

// GenWordsDoc generates a flat word list for the string-processing cases.
func GenWordsDoc(n int) string {
	words := []string{"zebra", "apple", "mango", "kiwi", "banana", "cherry", "grape", "lemon", "olive", "peach"}
	var sb strings.Builder
	sb.WriteString("<words>")
	rng := newLCG(7)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<w>%s%d</w>", words[rng.intn(len(words))], rng.intn(100))
	}
	sb.WriteString("</words>")
	return sb.String()
}

// WordsSchema describes GenWordsDoc.
const WordsSchema = `
words := w*
w     := #text
`
