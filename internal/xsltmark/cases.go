package xsltmark

// The forty benchmark cases. The five names the paper's evaluation cites —
// dbonerow (Figure 2), avts, chart, metric, total (Figure 3) — are kept
// verbatim; the rest cover the remaining XSLTMark functional areas:
// sorting, AVTs, constructors, conditionals, patterns, priorities, modes,
// numbering, string functions, aggregation, copying and recursion.
//
// ExpectInline records whether the paper-style rewrite fully inlines the
// case (the §5 statistic: paper reports 23/40).

func init() {
	registerInlineCases()
	registerRecursiveCases()
}

func registerInlineCases() {
	register(&Case{
		Name: "alphabetize", Category: "sort",
		Description: "sort rows by name, emit names",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<sorted><xsl:for-each select="row"><xsl:sort select="name"/><n><xsl:value-of select="name"/></n></xsl:for-each></sorted>
			</xsl:template>`),
	})

	register(&Case{
		Name: "attrmap", Category: "attributes",
		Description: "map child element values into attributes",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table"><out><xsl:apply-templates select="row"/></out></xsl:template>
			<xsl:template match="row">
				<item><xsl:attribute name="id"><xsl:value-of select="id"/></xsl:attribute><xsl:value-of select="name"/></item>
			</xsl:template>`),
	})

	register(&Case{
		Name: "avts", Category: "attributes",
		Description: "attribute value templates (paper Figure 3)",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table"><catalog><xsl:apply-templates select="row"/></catalog></xsl:template>
			<xsl:template match="row">
				<product id="{id}" name="{name}" price="{price}" region="{region}"/>
			</xsl:template>`),
	})

	register(&Case{
		Name: "backwards", Category: "sort",
		Description: "reverse document order via descending numeric sort",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<rev><xsl:for-each select="row"><xsl:sort select="id" data-type="number" order="descending"/><i><xsl:value-of select="id"/></i></xsl:for-each></rev>
			</xsl:template>`),
	})

	register(&Case{
		Name: "breadth", Category: "traversal",
		Description: "wide shallow traversal through built-in rules",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="name"><nm><xsl:value-of select="."/></nm></xsl:template>`),
	})

	register(&Case{
		Name: "chart", Category: "aggregate",
		Description: "count() aggregation buckets (paper Figure 3)",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking("price"),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<chart>
					<cheap><xsl:value-of select="count(row[price &lt; 100])"/></cheap>
					<mid><xsl:value-of select="count(row[price &gt;= 100])"/></mid>
					<all><xsl:value-of select="count(row)"/></all>
				</chart>
			</xsl:template>`),
	})

	register(&Case{
		Name: "choose", Category: "conditional",
		Description: "three-way choose per row",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table"><out><xsl:apply-templates select="row"/></out></xsl:template>
			<xsl:template match="row">
				<xsl:choose>
					<xsl:when test="price &gt; 900"><lux/></xsl:when>
					<xsl:when test="price &gt; 500"><mid/></xsl:when>
					<xsl:otherwise><low/></xsl:otherwise>
				</xsl:choose>
			</xsl:template>`),
	})

	register(&Case{
		Name: "creation", Category: "constructors",
		Description: "computed element and attribute constructors",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table"><made><xsl:apply-templates select="row"/></made></xsl:template>
			<xsl:template match="row">
				<xsl:element name="rec"><xsl:attribute name="k"><xsl:value-of select="id"/></xsl:attribute></xsl:element>
			</xsl:template>`),
	})

	register(&Case{
		Name: "current", Category: "functions",
		Description: "current() inside nested paths",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<out><xsl:for-each select="row"><c><xsl:value-of select="current()/name"/></c></xsl:for-each></out>
			</xsl:template>`),
	})

	register(&Case{
		Name: "dbaccess", Category: "database",
		Description: "full table dump to HTML",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<html><xsl:apply-templates select="row"/></html>
			</xsl:template>
			<xsl:template match="row">
				<tr><td><xsl:value-of select="id"/></td><td><xsl:value-of select="name"/></td><td><xsl:value-of select="price"/></td></tr>
			</xsl:template>`),
	})

	register(&Case{
		Name: "dbonerow", Category: "database",
		Description: "select one row by value predicate (paper Figure 2)",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking("id"),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<out><xsl:apply-templates select="row[id = 47]"/></out>
			</xsl:template>
			<xsl:template match="row">
				<hit><xsl:value-of select="name"/>:<xsl:value-of select="price"/></hit>
			</xsl:template>`),
	})

	register(&Case{
		Name: "dbtail", Category: "database",
		Description: "range predicate selecting a small tail",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking("price"),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<tail><xsl:apply-templates select="row[price &gt; 990]"/></tail>
			</xsl:template>
			<xsl:template match="row"><p><xsl:value-of select="price"/></p></xsl:template>`),
	})

	register(&Case{
		Name: "decoy", Category: "dispatch",
		Description: "many dead templates around one live rule (§3.7)",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="ghost1"><g1/></xsl:template>
			<xsl:template match="ghost2/ghost3"><g2/></xsl:template>
			<xsl:template match="table"><live><xsl:value-of select="count(row)"/></live></xsl:template>
			<xsl:template match="ghost4[. = 'x']"><g3/></xsl:template>`),
	})

	register(&Case{
		Name: "encrypt", Category: "strings",
		Description: "translate()-based character substitution",
		Schema:      WordsSchema, Gen: GenWordsDoc,
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="words"><x><xsl:apply-templates select="w"/></x></xsl:template>
			<xsl:template match="w"><e><xsl:value-of select="translate(., 'abcdefghijklmnopqrstuvwxyz', 'nopqrstuvwxyzabcdefghijklm')"/></e></xsl:template>`),
	})

	register(&Case{
		Name: "functions", Category: "strings",
		Description: "string function medley",
		Schema:      WordsSchema, Gen: GenWordsDoc,
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="words"><x><xsl:apply-templates select="w"/></x></xsl:template>
			<xsl:template match="w">
				<f len="{string-length(.)}" up="{substring(., 1, 3)}">
					<xsl:value-of select="concat(substring-before(., 'a'), '|', contains(., 'an'))"/>
				</f>
			</xsl:template>`),
	})

	register(&Case{
		Name: "games", Category: "dispatch",
		Description: "the same nodes through two modes",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<g><xsl:apply-templates select="row[id = 1]"/><xsl:apply-templates select="row[id = 1]" mode="verbose"/></g>
			</xsl:template>
			<xsl:template match="row"><s><xsl:value-of select="id"/></s></xsl:template>
			<xsl:template match="row" mode="verbose"><v id="{id}"><xsl:value-of select="name"/></v></xsl:template>`),
	})

	register(&Case{
		Name: "metric", Category: "conditional",
		Description: "conditional construction from values (paper Figure 3)",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table"><metrics><xsl:apply-templates select="row"/></metrics></xsl:template>
			<xsl:template match="row">
				<xsl:choose>
					<xsl:when test="qty &gt; 25"><bulk id="{id}"/></xsl:when>
					<xsl:otherwise><unit id="{id}"/></xsl:otherwise>
				</xsl:choose>
			</xsl:template>`),
	})

	register(&Case{
		Name: "number", Category: "numbering",
		Description: "xsl:number over selected rows",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<out><xsl:for-each select="row"><i n="{position()}"><xsl:value-of select="id"/></i></xsl:for-each></out>
			</xsl:template>`),
	})

	register(&Case{
		Name: "patterns", Category: "patterns",
		Description: "multi-step match patterns (Tables 16-17)",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table/row/name"><deep><xsl:value-of select="."/></deep></xsl:template>
			<xsl:template match="row"><xsl:apply-templates select="name"/></xsl:template>
			<xsl:template match="table"><p><xsl:apply-templates select="row[id = 3]"/></p></xsl:template>`),
	})

	register(&Case{
		Name: "position", Category: "functions",
		Description: "position() and last() in iterations",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<out><xsl:for-each select="row[id &lt; 4]"><p><xsl:value-of select="position()"/>/<xsl:value-of select="last()"/></p></xsl:for-each></out>
			</xsl:template>`),
	})

	register(&Case{
		Name: "summarize", Category: "aggregate",
		Description: "sum and count combined",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<summary rows="{count(row)}"><total><xsl:value-of select="sum(row/price)"/></total></summary>
			</xsl:template>`),
	})

	register(&Case{
		Name: "total", Category: "aggregate",
		Description: "sum() aggregate (paper Figure 3)",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="table">
				<grand><xsl:value-of select="sum(row/price)"/></grand>
			</xsl:template>`),
	})

	register(&Case{
		Name: "union", Category: "patterns",
		Description: "union match patterns",
		Schema:      SalesSchema, Gen: GenSalesDoc, Rel: salesBacking(),
		ExpectInline: true,
		Stylesheet: wrap(`
			<xsl:template match="name | region"><u><xsl:value-of select="."/></u></xsl:template>
			<xsl:template match="row"><r><xsl:apply-templates select="name | region"/></r></xsl:template>
			<xsl:template match="table"><x><xsl:apply-templates select="row[id = 5]"/></x></xsl:template>`),
	})
}
