package xsltmark

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relstore"
	"repro/internal/sqlxml"
	"repro/internal/xmltree"
	"repro/internal/xq2sql"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xsltvm"
	"repro/internal/xtest"
)

func nows(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	return strings.ReplaceAll(s, "> <", "><")
}

func TestFortyCases(t *testing.T) {
	cases := All()
	if len(cases) != 40 {
		t.Fatalf("suite has %d cases, want 40", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case %q", c.Name)
		}
		seen[c.Name] = true
	}
	for _, name := range []string{"dbonerow", "avts", "chart", "metric", "total"} {
		if !seen[name] {
			t.Errorf("paper-cited case %q missing", name)
		}
	}
}

// TestAllCasesRewriteEquivalence runs every case through the functional
// interpreter AND the paper-style rewrite (ModeAuto), demanding identical
// output. This is the suite-wide correctness gate.
func TestAllCasesRewriteEquivalence(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			input := c.Gen(20)
			doc, err := xmltree.Parse(input)
			if err != nil {
				t.Fatalf("generated input does not parse: %v", err)
			}
			sheet, err := xslt.ParseStylesheet(c.Stylesheet)
			if err != nil {
				t.Fatalf("stylesheet: %v", err)
			}
			want, err := xslt.New(sheet).TransformToString(doc)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}

			schema, err := xschema.ParseCompact(c.Schema)
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			res, err := core.Rewrite(sheet, schema, core.ModeAuto)
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			out, err := xquery.EvalModule(res.Module, xquery.NewEnv(xquery.Item(doc)))
			if err != nil {
				t.Fatalf("generated query failed: %v\n%s", err, res.Module.String())
			}
			got := xquery.SerializeSeq(out)
			if nows(got) != nows(want) {
				t.Fatalf("rewrite diverges:\n got:  %s\n want: %s\nquery:\n%s",
					nows(got), nows(want), res.Module.String())
			}
		})
	}
}

// TestInlineCoverage reproduces the paper's §5 statistic: 23 of the 40
// cases rewrite to fully inlined XQuery (no function calls).
func TestInlineCoverage(t *testing.T) {
	inlined := 0
	for _, c := range All() {
		sheet := xtest.Sheet(t, c.Stylesheet)
		schema := xtest.Schema(t, c.Schema)
		res, err := core.Rewrite(sheet, schema, core.ModeAuto)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if res.Inlined != c.ExpectInline {
			t.Errorf("%s: inlined=%v, expected %v (mode %v: %s)",
				c.Name, res.Inlined, c.ExpectInline, res.Mode, recursionReason(res))
		}
		if res.Inlined {
			inlined++
		}
	}
	if inlined != 23 {
		t.Fatalf("inline coverage = %d/40, want the paper's 23/40", inlined)
	}
}

func recursionReason(res *core.Result) string {
	if res.PE != nil {
		return res.PE.RecursionReason
	}
	return ""
}

// TestVMEquivalenceOnSuite runs a sample of cases through the XSLTVM as a
// cross-check of the two executors.
func TestVMEquivalenceOnSuite(t *testing.T) {
	for _, name := range []string{"dbonerow", "avts", "chart", "metric", "total", "identity", "bottles", "alphabetize"} {
		c := ByName(name)
		if c == nil {
			t.Fatalf("case %q missing", name)
		}
		doc, _ := xmltree.Parse(c.Gen(15))
		sheet := xtest.Sheet(t, c.Stylesheet)
		want, err := xslt.New(sheet).TransformToString(doc)
		if err != nil {
			t.Fatalf("%s interpreter: %v", name, err)
		}
		// VM path exercised through a fresh compile.
		prog := mustCompile(t, sheet)
		got, err := prog.RunToString(doc)
		if err != nil {
			t.Fatalf("%s vm: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: VM and interpreter disagree", name)
		}
	}
}

// TestRelationalBackingMatchesDocuments: for cases with a relational
// backing, the view materializes to the same document as the generator.
func TestRelationalBackingMatchesDocuments(t *testing.T) {
	for _, c := range All() {
		if c.Rel == nil {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			const n = 25
			db := relstore.NewDB()
			if err := c.Rel.Setup(db, n); err != nil {
				t.Fatal(err)
			}
			ex := sqlxml.NewExecutor(db)
			docs, err := ex.MaterializeView(c.Rel.View())
			if err != nil {
				t.Fatal(err)
			}
			if len(docs) != 1 {
				t.Fatalf("view rows = %d, want 1", len(docs))
			}
			got := strings.TrimPrefix(docs[0].String(), `<?xml version="1.0"?>`)
			want := c.Gen(n)
			if got != want {
				t.Fatalf("view and generator disagree:\n view: %.200s\n gen:  %.200s", got, want)
			}
		})
	}
}

// TestFigureCasesLowerToSQL: the five paper-cited cases must survive the
// FULL pipeline — XSLT → XQuery → SQL/XML — and produce the same result as
// the functional path over the materialized view.
func TestFigureCasesLowerToSQL(t *testing.T) {
	for _, name := range []string{"dbonerow", "avts", "chart", "metric", "total", "dbaccess", "dbtail"} {
		c := ByName(name)
		if c == nil || c.Rel == nil {
			t.Fatalf("case %q missing relational backing", name)
		}
		t.Run(name, func(t *testing.T) {
			const n = 50
			db := relstore.NewDB()
			if err := c.Rel.Setup(db, n); err != nil {
				t.Fatal(err)
			}
			for table, cols := range c.Rel.IndexCols {
				for _, col := range cols {
					if err := db.Table(table).CreateIndex(col); err != nil {
						t.Fatal(err)
					}
				}
			}
			ex := sqlxml.NewExecutor(db)
			view := c.Rel.View()
			schema, err := ex.DeriveSchema(view)
			if err != nil {
				t.Fatal(err)
			}
			sheet := xtest.Sheet(t, c.Stylesheet)
			res, err := core.Rewrite(sheet, schema, core.ModeAuto)
			if err != nil {
				t.Fatal(err)
			}
			q, err := xq2sql.Translate(res.Module, view)
			if err != nil {
				t.Fatalf("lowering failed: %v\n%s", err, res.Module.String())
			}
			docs, err := ex.ExecQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(docs) != 1 {
				t.Fatalf("rows = %d", len(docs))
			}
			var sb strings.Builder
			docs[0].Serialize(&sb, xmltree.SerializeOptions{OmitDecl: true})

			// Functional reference: materialize + interpret.
			views, err := ex.MaterializeView(view)
			if err != nil {
				t.Fatal(err)
			}
			want, err := xslt.New(sheet).TransformToString(views[0])
			if err != nil {
				t.Fatal(err)
			}
			if nows(sb.String()) != nows(want) {
				t.Fatalf("SQL path diverges:\n got:  %s\n want: %s\nsql:\n%s",
					nows(sb.String()), nows(want), q.SQL())
			}
		})
	}
}

// TestDbonerowUsesIndex confirms the Figure 2 mechanism: with the id index,
// the lowered dbonerow plan probes the B-tree instead of scanning.
func TestDbonerowUsesIndex(t *testing.T) {
	c := ByName("dbonerow")
	db := relstore.NewDB()
	if err := c.Rel.Setup(db, 1000); err != nil {
		t.Fatal(err)
	}
	_ = db.Table("sales").CreateIndex("id")
	ex := sqlxml.NewExecutor(db)
	view := c.Rel.View()
	schema, _ := ex.DeriveSchema(view)
	res, err := core.Rewrite(xtest.Sheet(t, c.Stylesheet), schema, core.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	q, err := xq2sql.Translate(res.Module, view)
	if err != nil {
		t.Fatal(err)
	}
	explain := ex.ExplainQuery(q)
	if !strings.Contains(explain, "INDEX PROBE sales(id)") {
		t.Fatalf("dbonerow should probe the id index:\n%s", explain)
	}
	before := ex.Stats
	if _, err := ex.ExecQuery(q); err != nil {
		t.Fatal(err)
	}
	scanned := ex.Stats.RowsScanned - before.RowsScanned
	if scanned > 10 {
		t.Fatalf("index path scanned %d heap rows; should be near zero", scanned)
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	if GenSalesDoc(10) != GenSalesDoc(10) {
		t.Fatal("sales generator not deterministic")
	}
	if GenNestedDoc(10) != GenNestedDoc(10) {
		t.Fatal("nested generator not deterministic")
	}
	if GenWordsDoc(10) != GenWordsDoc(10) {
		t.Fatal("words generator not deterministic")
	}
	// Size scales roughly linearly.
	if len(GenSalesDoc(100)) < 4*len(GenSalesDoc(10)) {
		t.Fatal("sales generator does not scale")
	}
}

func TestSchemasMatchGenerators(t *testing.T) {
	for _, c := range All() {
		schema := xtest.Schema(t, c.Schema)
		doc, err := xmltree.Parse(c.Gen(8))
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if doc.DocumentElement().Name != schema.Root.Name {
			t.Errorf("%s: document root %q != schema root %q", c.Name, doc.DocumentElement().Name, schema.Root.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("dbonerow") == nil {
		t.Fatal("dbonerow missing")
	}
	if ByName("zzz") != nil {
		t.Fatal("unknown case should be nil")
	}
}

// mustCompile builds an XSLTVM program wrapper exposing RunToString.
func mustCompile(t *testing.T, sheet *xslt.Stylesheet) *vmRunner {
	t.Helper()
	prog, err := xsltvm.Compile(sheet)
	if err != nil {
		t.Fatal(err)
	}
	return &vmRunner{vm: xsltvm.New(prog)}
}

type vmRunner struct{ vm *xsltvm.VM }

func (r *vmRunner) RunToString(doc *xmltree.Node) (string, error) {
	return r.vm.RunToString(doc)
}

// TestVMEquivalenceAllCases runs the FULL suite through both functional
// executors: the tree-walking interpreter and the XSLTVM must agree on
// every case.
func TestVMEquivalenceAllCases(t *testing.T) {
	for _, c := range All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			doc, err := xmltree.Parse(c.Gen(12))
			if err != nil {
				t.Fatal(err)
			}
			sheet := xtest.Sheet(t, c.Stylesheet)
			want, err := xslt.New(sheet).TransformToString(doc)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := xsltvm.Compile(sheet)
			if err != nil {
				t.Fatal(err)
			}
			got, err := xsltvm.New(prog).RunToString(doc)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("VM and interpreter disagree:\n vm: %.300s\n it: %.300s", got, want)
			}
		})
	}
}
