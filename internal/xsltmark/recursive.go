package xsltmark

// The seventeen cases that cannot fully inline: recursive template
// execution graphs or recursive input schemas force the paper's non-inline
// mode (§4.4, §7.2).

func registerRecursiveCases() {
	register(&Case{
		Name: "bottles", Category: "recursion",
		Description: "counting-down named-template recursion",
		Schema:      SalesSchema, Gen: GenSalesDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="table"><song><xsl:call-template name="verse"><xsl:with-param name="n" select="5"/></xsl:call-template></song></xsl:template>
			<xsl:template name="verse">
				<xsl:param name="n" select="0"/>
				<xsl:if test="$n &gt; 0">
					<verse n="{$n}"/>
					<xsl:call-template name="verse"><xsl:with-param name="n" select="$n - 1"/></xsl:call-template>
				</xsl:if>
			</xsl:template>`),
	})

	register(&Case{
		Name: "crawl", Category: "recursion",
		Description: "recursive descent collecting titles",
		Schema:      NestedSchema, Gen: GenNestedDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="doc"><toc><xsl:apply-templates select="section"/></toc></xsl:template>
			<xsl:template match="section"><t><xsl:value-of select="title"/></t><xsl:apply-templates select="section"/></xsl:template>`),
	})

	register(&Case{
		Name: "deep", Category: "recursion",
		Description: "depth computation over recursive structure",
		Schema:      NestedSchema, Gen: GenNestedDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="doc"><d><xsl:apply-templates select="section"/></d></xsl:template>
			<xsl:template match="section"><s><xsl:apply-templates select="section"/></s></xsl:template>`),
	})

	register(&Case{
		Name: "escape", Category: "recursion",
		Description: "character-by-character recursive processing",
		Schema:      WordsSchema, Gen: func(n int) string { return GenWordsDoc(min(n, 40)) },
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="words"><x><xsl:apply-templates select="w[1]"/></x></xsl:template>
			<xsl:template match="w"><xsl:call-template name="esc"><xsl:with-param name="s" select="string(.)"/></xsl:call-template></xsl:template>
			<xsl:template name="esc">
				<xsl:param name="s" select="''"/>
				<xsl:if test="string-length($s) &gt; 0">
					<c><xsl:value-of select="substring($s, 1, 1)"/></c>
					<xsl:call-template name="esc"><xsl:with-param name="s" select="substring($s, 2)"/></xsl:call-template>
				</xsl:if>
			</xsl:template>`),
	})

	register(&Case{
		Name: "factorial", Category: "recursion",
		Description: "numeric recursion",
		Schema:      SalesSchema, Gen: GenSalesDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="table"><f><xsl:call-template name="fact"><xsl:with-param name="n" select="6"/></xsl:call-template></f></xsl:template>
			<xsl:template name="fact">
				<xsl:param name="n" select="1"/>
				<xsl:choose>
					<xsl:when test="$n &lt;= 1"><xsl:value-of select="1"/></xsl:when>
					<xsl:otherwise>
						<xsl:variable name="rec"><xsl:call-template name="fact"><xsl:with-param name="n" select="$n - 1"/></xsl:call-template></xsl:variable>
						<xsl:value-of select="$n * $rec"/>
					</xsl:otherwise>
				</xsl:choose>
			</xsl:template>`),
	})

	register(&Case{
		Name: "fibonacci", Category: "recursion",
		Description: "double recursion",
		Schema:      SalesSchema, Gen: GenSalesDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="table"><fib><xsl:call-template name="fib"><xsl:with-param name="n" select="9"/></xsl:call-template></fib></xsl:template>
			<xsl:template name="fib">
				<xsl:param name="n" select="0"/>
				<xsl:choose>
					<xsl:when test="$n &lt; 2"><xsl:value-of select="$n"/></xsl:when>
					<xsl:otherwise>
						<xsl:variable name="a"><xsl:call-template name="fib"><xsl:with-param name="n" select="$n - 1"/></xsl:call-template></xsl:variable>
						<xsl:variable name="b"><xsl:call-template name="fib"><xsl:with-param name="n" select="$n - 2"/></xsl:call-template></xsl:variable>
						<xsl:value-of select="$a + $b"/>
					</xsl:otherwise>
				</xsl:choose>
			</xsl:template>`),
	})

	register(&Case{
		Name: "flatten", Category: "recursion",
		Description: "flatten nested sections to a list",
		Schema:      NestedSchema, Gen: GenNestedDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="doc"><flat><xsl:apply-templates select="//title"/></flat></xsl:template>
			<xsl:template match="title"><t><xsl:value-of select="."/></t></xsl:template>`),
	})

	register(&Case{
		Name: "identity", Category: "copy",
		Description: "the identity transformation",
		Schema:      SalesSchema, Gen: GenSalesDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="@*|node()"><xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy></xsl:template>`),
	})

	register(&Case{
		Name: "linkedlist", Category: "recursion",
		Description: "first-child chain walk",
		Schema:      NestedSchema, Gen: GenNestedDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="doc"><chain><xsl:apply-templates select="section[1]"/></chain></xsl:template>
			<xsl:template match="section"><link><xsl:value-of select="title"/></link><xsl:apply-templates select="section[1]"/></xsl:template>`),
	})

	register(&Case{
		Name: "mirror", Category: "copy",
		Description: "recursive copy with reversed children",
		Schema:      NestedSchema, Gen: GenNestedDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="doc"><m><xsl:apply-templates select="section"/></m></xsl:template>
			<xsl:template match="section">
				<sec><xsl:for-each select="section"><xsl:sort select="title" order="descending"/><xsl:apply-templates select="."/></xsl:for-each><xsl:value-of select="title"/></sec>
			</xsl:template>`),
	})

	register(&Case{
		Name: "outline", Category: "recursion",
		Description: "numbered outline of recursive sections",
		Schema:      NestedSchema, Gen: GenNestedDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="doc"><o><xsl:apply-templates select="section"/></o></xsl:template>
			<xsl:template match="section"><li n="{count(section)}"><xsl:value-of select="title"/><xsl:apply-templates select="section"/></li></xsl:template>`),
	})

	register(&Case{
		Name: "palindrome", Category: "recursion",
		Description: "recursive string reversal comparison",
		Schema:      WordsSchema, Gen: func(n int) string { return GenWordsDoc(min(n, 30)) },
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="words"><x><xsl:apply-templates select="w[1]"/></x></xsl:template>
			<xsl:template match="w">
				<xsl:variable name="rev"><xsl:call-template name="rev"><xsl:with-param name="s" select="string(.)"/></xsl:call-template></xsl:variable>
				<p same="{. = $rev}"><xsl:value-of select="$rev"/></p>
			</xsl:template>
			<xsl:template name="rev">
				<xsl:param name="s" select="''"/>
				<xsl:if test="string-length($s) &gt; 0">
					<xsl:call-template name="rev"><xsl:with-param name="s" select="substring($s, 2)"/></xsl:call-template>
					<xsl:value-of select="substring($s, 1, 1)"/>
				</xsl:if>
			</xsl:template>`),
	})

	register(&Case{
		Name: "queens", Category: "recursion",
		Description: "recursive search-style counting",
		Schema:      SalesSchema, Gen: GenSalesDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="table"><q><xsl:call-template name="place"><xsl:with-param name="col" select="1"/></xsl:call-template></q></xsl:template>
			<xsl:template name="place">
				<xsl:param name="col" select="1"/>
				<xsl:if test="$col &lt;= 4">
					<c at="{$col}"/>
					<xsl:call-template name="place"><xsl:with-param name="col" select="$col + 1"/></xsl:call-template>
				</xsl:if>
			</xsl:template>`),
	})

	register(&Case{
		Name: "reverser", Category: "recursion",
		Description: "recursive word-order reversal",
		Schema:      WordsSchema, Gen: func(n int) string { return GenWordsDoc(min(n, 50)) },
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="words"><r><xsl:apply-templates select="w[last()]"/></r></xsl:template>
			<xsl:template match="w">
				<v><xsl:value-of select="."/></v>
				<xsl:apply-templates select="preceding-sibling::w[1]"/>
			</xsl:template>`),
	})

	register(&Case{
		Name: "tower", Category: "recursion",
		Description: "towers-of-hanoi move listing",
		Schema:      SalesSchema, Gen: GenSalesDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="table"><t><xsl:call-template name="move"><xsl:with-param name="n" select="4"/><xsl:with-param name="from" select="'A'"/><xsl:with-param name="to" select="'C'"/><xsl:with-param name="via" select="'B'"/></xsl:call-template></t></xsl:template>
			<xsl:template name="move">
				<xsl:param name="n" select="0"/><xsl:param name="from"/><xsl:param name="to"/><xsl:param name="via"/>
				<xsl:if test="$n &gt; 0">
					<xsl:call-template name="move"><xsl:with-param name="n" select="$n - 1"/><xsl:with-param name="from" select="$from"/><xsl:with-param name="to" select="$via"/><xsl:with-param name="via" select="$to"/></xsl:call-template>
					<mv n="{$n}" f="{$from}" t="{$to}"/>
					<xsl:call-template name="move"><xsl:with-param name="n" select="$n - 1"/><xsl:with-param name="from" select="$via"/><xsl:with-param name="to" select="$to"/><xsl:with-param name="via" select="$from"/></xsl:call-template>
				</xsl:if>
			</xsl:template>`),
	})

	register(&Case{
		Name: "tree", Category: "recursion",
		Description: "recursive subtree counting",
		Schema:      NestedSchema, Gen: GenNestedDoc,
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="doc"><sum><xsl:value-of select="count(//section)"/></sum><xsl:apply-templates select="section"/></xsl:template>
			<xsl:template match="section"><n c="{count(.//section)}"/><xsl:apply-templates select="section"/></xsl:template>`),
	})

	register(&Case{
		Name: "wordcount", Category: "recursion",
		Description: "recursive tokenization by separator",
		Schema:      WordsSchema, Gen: func(n int) string { return GenWordsDoc(min(n, 30)) },
		ExpectInline: false,
		Stylesheet: wrap(`
			<xsl:template match="words">
				<wc><xsl:call-template name="count"><xsl:with-param name="s" select="'one two three four five'"/></xsl:call-template></wc>
			</xsl:template>
			<xsl:template name="count">
				<xsl:param name="s" select="''"/>
				<xsl:choose>
					<xsl:when test="contains($s, ' ')">
						<w><xsl:value-of select="substring-before($s, ' ')"/></w>
						<xsl:call-template name="count"><xsl:with-param name="s" select="substring-after($s, ' ')"/></xsl:call-template>
					</xsl:when>
					<xsl:otherwise><w><xsl:value-of select="$s"/></w></xsl:otherwise>
				</xsl:choose>
			</xsl:template>`),
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
