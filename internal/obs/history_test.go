package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestArchiveNilIsSafe(t *testing.T) {
	var a *Archive
	if id := a.Record(RunRecord{View: "v"}); id != 0 {
		t.Fatalf("nil Record returned id %d", id)
	}
	if a.Runs(10) != nil || a.Plans() != nil || a.Len() != 0 || a.Cap() != 0 || a.SampleTick() != 0 {
		t.Fatal("nil archive accessors not inert")
	}
	if _, ok := a.Run(1); ok {
		t.Fatal("nil archive returned a record")
	}
}

func TestArchiveRingRetention(t *testing.T) {
	a := NewArchive(4)
	for i := 1; i <= 10; i++ {
		id := a.Record(RunRecord{View: "v", Strategy: "s", Rows: int64(i), Wall: time.Duration(i) * time.Millisecond})
		if id != uint64(i) {
			t.Fatalf("record %d got id %d", i, id)
		}
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	runs := a.Runs(0)
	if len(runs) != 4 {
		t.Fatalf("Runs returned %d records, want 4", len(runs))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if runs[i].ID != want {
			t.Fatalf("runs[%d].ID = %d, want %d (newest first)", i, runs[i].ID, want)
		}
	}
	if got := a.Runs(2); len(got) != 2 || got[0].ID != 10 || got[1].ID != 9 {
		t.Fatalf("Runs(2) = %v", got)
	}
	// Evicted IDs must not resolve; retained ones must.
	if _, ok := a.Run(6); ok {
		t.Fatal("evicted run 6 still resolves")
	}
	if rec, ok := a.Run(7); !ok || rec.ID != 7 || rec.Rows != 7 {
		t.Fatalf("Run(7) = %+v, %v", rec, ok)
	}
	if _, ok := a.Run(11); ok {
		t.Fatal("future run id resolves")
	}
	if _, ok := a.Run(0); ok {
		t.Fatal("run id 0 resolves")
	}
}

func TestArchivePlanAggregates(t *testing.T) {
	a := NewArchive(8)
	// Two plans: "a" gets 7 successful runs with growing wall times (so the
	// top-K drops the fastest two), "b" gets one error run.
	for i := 1; i <= 7; i++ {
		a.Record(RunRecord{View: "a", Strategy: "sql-rewrite", Rows: 2,
			Wall: time.Duration(i) * 10 * time.Millisecond})
	}
	a.Record(RunRecord{View: "b", Strategy: "no-rewrite", Error: "boom"})

	plans := a.Plans()
	if len(plans) != 2 {
		t.Fatalf("Plans returned %d aggregates, want 2", len(plans))
	}
	pa, pb := plans[0], plans[1]
	if pa.View != "a" || pb.View != "b" {
		t.Fatalf("plans not sorted by view: %q, %q", pa.View, pb.View)
	}
	if pa.Calls != 7 || pa.Errors != 0 || pa.Rows != 14 {
		t.Fatalf("plan a aggregate = %+v", pa)
	}
	if pb.Calls != 1 || pb.Errors != 1 {
		t.Fatalf("plan b aggregate = %+v", pb)
	}
	if len(pa.Slowest) != archiveTopK {
		t.Fatalf("plan a retained %d slowest, want %d", len(pa.Slowest), archiveTopK)
	}
	for i := 1; i < len(pa.Slowest); i++ {
		if pa.Slowest[i-1].Wall < pa.Slowest[i].Wall {
			t.Fatalf("slowest not ordered: %v before %v", pa.Slowest[i-1].Wall, pa.Slowest[i].Wall)
		}
	}
	if pa.Slowest[0].Wall != 70*time.Millisecond || pa.Slowest[4].Wall != 30*time.Millisecond {
		t.Fatalf("top-K kept wrong runs: slowest=%v fifth=%v", pa.Slowest[0].Wall, pa.Slowest[4].Wall)
	}
	// Quantiles come from a histogram, so just sanity-bound them: all
	// observations fell in (10ms, 70ms] and p99 >= p50 > 0.
	if pa.P50 <= 0 || pa.P99 < pa.P50 || pa.P99 > time.Second {
		t.Fatalf("implausible quantiles p50=%v p95=%v p99=%v", pa.P50, pa.P95, pa.P99)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newStandaloneHistogram([]float64{1, 2, 4})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 10 observations in (1,2], 10 in (2,4]: the median sits at the
	// boundary, p99 interpolates near the top of the (2,4] bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(3.0)
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", q)
	}
	if q := h.Quantile(0.99); q < 2 || q > 4 {
		t.Fatalf("p99 = %v, want within (2,4]", q)
	}
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p99 <= p50 {
		t.Fatalf("p99 %v <= p50 %v", p99, p50)
	}
	// Overflow observations clamp to the top finite bound instead of +Inf.
	h2 := newStandaloneHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %v, want top finite bound 2", q)
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, actual int64
		want        float64
	}{
		{10, 10, 1},
		{100, 10, 10},
		{10, 100, 10},
		{0, 5, 5},  // est clamps to 1
		{5, 0, 5},  // actual clamps to 1
		{0, 0, 1},  // both clamp
		{-3, 2, 2}, // negative clamps too
	}
	for _, c := range cases {
		if got := QError(c.est, c.actual); got != c.want {
			t.Fatalf("QError(%d, %d) = %v, want %v", c.est, c.actual, got, c.want)
		}
	}
}

func TestCardTrackerObserveAndWorst(t *testing.T) {
	ctr := NewRegistry().NewCounter("miss_total", "test")
	ct := NewCardTracker(2.0, ctr)

	// An honest path (q=1) and a skewed one (q=50).
	for i := 0; i < 4; i++ {
		ct.Observe(uint64(i+1), "v", "sql-rewrite", "INDEX PROBE t(id)", 1, 1)
	}
	ct.Observe(5, "v", "sql-rewrite", "INDEX RANGE SCAN t(id)", 100, 2)
	ct.Observe(6, "w", "no-rewrite", "TABLE SCAN t", 10, 10)
	ct.Observe(7, "v", "sql-rewrite", "", 1, 99) // no shape: ignored

	if ctr.Value() != 1 {
		t.Fatalf("misestimate counter = %d, want 1", ctr.Value())
	}
	stats := ct.Stats()
	if len(stats) != 3 {
		t.Fatalf("Stats returned %d paths, want 3", len(stats))
	}
	if stats[0].Shape != "INDEX RANGE SCAN t(id)" || stats[0].MaxQError != 50 || stats[0].Misestimates != 1 {
		t.Fatalf("worst path = %+v", stats[0])
	}

	worst := ct.Worst("v", 3)
	if len(worst) != 1 || worst[0].Shape != "INDEX RANGE SCAN t(id)" {
		t.Fatalf("Worst(v) = %+v", worst)
	}
	if w := ct.Worst("w", 3); len(w) != 0 {
		t.Fatalf("Worst(w) = %+v, want none (q=1)", w)
	}

	log := ct.Misestimates(0)
	if len(log) != 1 || log[0].RunID != 5 || log[0].QError != 50 {
		t.Fatalf("misestimate log = %+v", log)
	}
}

func TestCardTrackerLogRingWraps(t *testing.T) {
	ct := NewCardTracker(2.0, nil)
	total := misestimateLogCap + 10
	for i := 1; i <= total; i++ {
		ct.Observe(uint64(i), "v", "s", "TABLE SCAN t", int64(100*i), 1)
	}
	log := ct.Misestimates(0)
	if len(log) != misestimateLogCap {
		t.Fatalf("log retained %d, want %d", len(log), misestimateLogCap)
	}
	if log[0].RunID != uint64(total) {
		t.Fatalf("newest log entry RunID = %d, want %d", log[0].RunID, total)
	}
	if log[len(log)-1].RunID != uint64(total-misestimateLogCap+1) {
		t.Fatalf("oldest log entry RunID = %d, want %d", log[len(log)-1].RunID, total-misestimateLogCap+1)
	}
	if got := ct.Misestimates(3); len(got) != 3 || got[0].RunID != uint64(total) {
		t.Fatalf("Misestimates(3) = %+v", got)
	}
}

func TestCardTrackerNilSafe(t *testing.T) {
	var ct *CardTracker
	ct.Observe(1, "v", "s", "shape", 1, 100)
	if ct.Stats() != nil || ct.Worst("", 5) != nil || ct.Misestimates(0) != nil || ct.Threshold() != 0 {
		t.Fatal("nil tracker not inert")
	}
}

func TestConsoleEndpoints(t *testing.T) {
	a := NewArchive(8)
	reg := NewRegistry()
	reg.NewCounter("console_test_total", "test counter").Add(3)
	cards := NewCardTracker(2.0, nil)
	cards.Observe(1, "v", "sql-rewrite", "INDEX RANGE SCAN t(id)", 100, 2)
	id := a.Record(RunRecord{Kind: "run", View: "v", Strategy: "sql-rewrite",
		Rows: 2, Wall: 5 * time.Millisecond, Sampled: true, Trace: "run 5ms"})

	h := ConsoleHandler(ConsoleConfig{
		Archive: a, Cards: cards, Registry: reg,
		Plans: func() any { return []string{"entry"} },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string, wantCode int) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: status %d, want %d (body %q)", path, resp.StatusCode, wantCode, b)
		}
		return string(b)
	}

	if body := get("/", 200); !strings.Contains(body, "/runs") {
		t.Fatalf("index missing endpoint listing: %q", body)
	}
	get("/nope", 404)

	var runs []RunRecord
	if err := json.Unmarshal([]byte(get("/runs?n=10", 200)), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != id {
		t.Fatalf("/runs = %+v", runs)
	}

	var rec RunRecord
	if err := json.Unmarshal([]byte(get(fmt.Sprintf("/runs/%d", id), 200)), &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Sampled || rec.Trace == "" {
		t.Fatalf("/runs/%d lost the sampled trace: %+v", id, rec)
	}
	get("/runs/999", 404)
	get("/runs/xyz", 400)

	var plans struct {
		Cache      []string        `json:"cache"`
		Aggregates []PlanAggregate `json:"aggregates"`
	}
	if err := json.Unmarshal([]byte(get("/plans", 200)), &plans); err != nil {
		t.Fatal(err)
	}
	if len(plans.Cache) != 1 || plans.Cache[0] != "entry" || len(plans.Aggregates) != 1 {
		t.Fatalf("/plans = %+v", plans)
	}

	var mis struct {
		Threshold float64       `json:"q_error_threshold"`
		Paths     []CardStat    `json:"paths"`
		Log       []Misestimate `json:"log"`
	}
	if err := json.Unmarshal([]byte(get("/misestimates", 200)), &mis); err != nil {
		t.Fatal(err)
	}
	if mis.Threshold != 2.0 || len(mis.Paths) != 1 || len(mis.Log) != 1 {
		t.Fatalf("/misestimates = %+v", mis)
	}

	if body := get("/metrics", 200); !strings.Contains(body, "console_test_total 3") {
		t.Fatalf("/metrics missing counter: %q", body)
	}
	if body := get("/debug/pprof/cmdline", 200); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestConsoleDisabledSources: every endpoint keeps working when the archive,
// tracker and registry are absent — the console must not panic on a database
// that never called EnableRunHistory.
func TestConsoleDisabledSources(t *testing.T) {
	srv := httptest.NewServer(ConsoleHandler(ConsoleConfig{}))
	defer srv.Close()
	for _, path := range []string{"/", "/runs", "/plans", "/misestimates"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d with nil sources", path, resp.StatusCode)
		}
	}
}
