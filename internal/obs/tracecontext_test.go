package obs

import (
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("valid header rejected: %q", header)
	}
	if tc.Traceparent() != header {
		t.Fatalf("round trip: %q != %q", tc.Traceparent(), header)
	}
	if tc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %q", tc.TraceIDString())
	}
	if tc.SpanIDString() != "00f067aa0ba902b7" {
		t.Fatalf("span id = %q", tc.SpanIDString())
	}

	// A child context keeps the trace ID and flags but gets a new span ID.
	child := tc.WithNewSpan()
	if child.TraceIDString() != tc.TraceIDString() {
		t.Fatal("WithNewSpan changed the trace ID")
	}
	if child.SpanIDString() == tc.SpanIDString() {
		t.Fatal("WithNewSpan kept the parent span ID")
	}
	if child.Flags != tc.Flags {
		t.Fatal("WithNewSpan changed the flags")
	}
}

func TestParseTraceparentRejectsInvalid(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",    // short flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // all-zero span
		"00-4bf92f3577b34da6a3ce929d0e0eXXXX-00f067aa0ba902b7-01",   // bad hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad dash
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-0", // too long
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted invalid traceparent %q", h)
		}
	}
}

func TestNewTraceContextIsSampledAndUnique(t *testing.T) {
	a := NewTraceContext()
	b := NewTraceContext()
	if a.Flags&0x01 == 0 {
		t.Fatal("fresh context not flagged sampled")
	}
	if a.TraceIDString() == b.TraceIDString() {
		t.Fatal("two fresh contexts share a trace ID")
	}
	h := a.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("malformed traceparent %q", h)
	}
	if back, ok := ParseTraceparent(h); !ok || back != a {
		t.Fatalf("self round trip failed: %q", h)
	}
}
