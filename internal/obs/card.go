package obs

// The cardinality-accuracy half of the retention layer: every completed run
// reports the planner's row estimate for its driving access path next to the
// actual row count, and the tracker aggregates the q-error — the symmetric
// ratio max(est/actual, actual/est) — per (view, access-path shape). A
// q-error above the threshold lands in a bounded misestimate log and bumps
// an optional counter (xsltdb_misestimates_total). This is the feedback
// signal adaptive re-planning consumes: a plan whose estimates are honest
// has q ≈ 1; a skewed table shows up here long before it shows up as a slow
// query.

import (
	"sort"
	"sync"
	"time"
)

// misestimateLogCap bounds the misestimate ring.
const misestimateLogCap = 128

// QError is the symmetric relative error between an estimate and an actual
// row count: max(est/actual, actual/est), with both sides clamped to >= 1 so
// empty results do not divide by zero. 1.0 means a perfect estimate.
func QError(est, actual int64) float64 {
	e, a := float64(est), float64(actual)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// Misestimate is one run whose q-error exceeded the tracker's threshold.
type Misestimate struct {
	// RunID links to the archive record (0 when the archive is disabled).
	RunID    uint64    `json:"run_id,omitempty"`
	At       time.Time `json:"at"`
	View     string    `json:"view"`
	Strategy string    `json:"strategy,omitempty"`
	// Shape is the normalized access path (relstore AccessPlan.Shape).
	Shape  string  `json:"shape"`
	Est    int64   `json:"est_rows"`
	Actual int64   `json:"actual_rows"`
	QError float64 `json:"q_error"`
}

// CardStat is the aggregate estimate-accuracy of one (view, shape) pair.
type CardStat struct {
	View  string `json:"view"`
	Shape string `json:"shape"`
	// Runs counts completed executions aggregated under this shape.
	Runs int64 `json:"runs"`
	// EstRows / ActualRows are totals across those runs.
	EstRows    int64 `json:"est_rows_total"`
	ActualRows int64 `json:"actual_rows_total"`
	// MaxQError / MeanQError summarize the per-run q-errors.
	MaxQError  float64 `json:"max_q_error"`
	MeanQError float64 `json:"mean_q_error"`
	// Misestimates counts runs over the threshold.
	Misestimates int64 `json:"misestimates"`
}

type cardKey struct{ view, shape string }

type cardAgg struct {
	runs         int64
	estRows      int64
	actualRows   int64
	maxQ         float64
	sumQ         float64
	misestimates int64
}

// CardTracker aggregates est-vs-actual cardinality accuracy per (view,
// access-path shape). All methods are nil-safe; Observe is one short
// critical section per run.
type CardTracker struct {
	threshold float64
	counter   *Counter // optional misestimates_total; may be nil

	mu    sync.Mutex
	paths map[cardKey]*cardAgg
	log   []Misestimate // ring of the most recent misestimates
	logAt int           // next write position once the ring is full
}

// NewCardTracker returns a tracker flagging runs whose q-error is >=
// threshold (<= 1 uses 2.0, the conventional "estimate off by 2x" bar).
// counter, when non-nil, is bumped once per misestimate.
func NewCardTracker(threshold float64, counter *Counter) *CardTracker {
	if threshold <= 1 {
		threshold = 2.0
	}
	return &CardTracker{threshold: threshold, counter: counter, paths: map[cardKey]*cardAgg{}}
}

// Threshold returns the q-error bar (0 on nil).
func (c *CardTracker) Threshold() float64 {
	if c == nil {
		return 0
	}
	return c.threshold
}

// Observe folds one completed run's estimate accuracy into the tracker.
// Callers only report runs that ran to completion — a partial actual (an
// abandoned cursor, a failed run) says nothing about the estimate.
func (c *CardTracker) Observe(runID uint64, view, strategy, shape string, est, actual int64) {
	if c == nil || shape == "" {
		return
	}
	q := QError(est, actual)
	miss := q >= c.threshold

	c.mu.Lock()
	key := cardKey{view: view, shape: shape}
	agg := c.paths[key]
	if agg == nil {
		agg = &cardAgg{}
		c.paths[key] = agg
	}
	agg.runs++
	agg.estRows += est
	agg.actualRows += actual
	agg.sumQ += q
	if q > agg.maxQ {
		agg.maxQ = q
	}
	if miss {
		agg.misestimates++
		m := Misestimate{
			RunID: runID, At: time.Now(), View: view, Strategy: strategy,
			Shape: shape, Est: est, Actual: actual, QError: q,
		}
		if len(c.log) < misestimateLogCap {
			c.log = append(c.log, m)
		} else {
			c.log[c.logAt] = m
			c.logAt = (c.logAt + 1) % misestimateLogCap
		}
	}
	c.mu.Unlock()

	if miss && c.counter != nil {
		c.counter.Inc()
	}
}

// Stats snapshots every (view, shape) aggregate, worst max-q-error first.
func (c *CardTracker) Stats() []CardStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]CardStat, 0, len(c.paths))
	for key, agg := range c.paths {
		out = append(out, CardStat{
			View: key.view, Shape: key.shape,
			Runs: agg.runs, EstRows: agg.estRows, ActualRows: agg.actualRows,
			MaxQError: agg.maxQ, MeanQError: agg.sumQ / float64(agg.runs),
			Misestimates: agg.misestimates,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxQError != out[j].MaxQError {
			return out[i].MaxQError > out[j].MaxQError
		}
		if out[i].View != out[j].View {
			return out[i].View < out[j].View
		}
		return out[i].Shape < out[j].Shape
	})
	return out
}

// Worst returns up to k aggregates whose max q-error crossed the threshold,
// worst first — the "worst offenders" block of ExplainAnalyze. view filters
// to one view ("" = all).
func (c *CardTracker) Worst(view string, k int) []CardStat {
	if c == nil || k <= 0 {
		return nil
	}
	var out []CardStat
	for _, s := range c.Stats() {
		if s.MaxQError < c.threshold {
			break // sorted worst-first; nothing further qualifies
		}
		if view != "" && s.View != view {
			continue
		}
		out = append(out, s)
		if len(out) == k {
			break
		}
	}
	return out
}

// Misestimates returns the most recent over-threshold runs, newest first.
// limit <= 0 returns everything retained.
func (c *CardTracker) Misestimates(limit int) []Misestimate {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.log)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Misestimate, 0, limit)
	// Newest is just before logAt once the ring wrapped, else at n-1.
	for i := 0; i < limit; i++ {
		idx := (c.logAt - 1 - i + 2*misestimateLogCap) % misestimateLogCap
		if len(c.log) < misestimateLogCap {
			idx = n - 1 - i
		}
		out = append(out, c.log[idx])
	}
	return out
}
