package obs

// The metrics half of the observability layer: a process-wide registry of
// counters, gauges and histograms with label support, rendered in the
// Prometheus text exposition format (WriteTo / Handler). Everything is
// stdlib-only and allocation-free on the increment path: instruments are
// resolved once (With caches per label-value tuple) and then bumped with
// plain atomics, so concurrent runs sharing one registry never contend on
// a lock to count.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families. Use NewRegistry, or the package-wide
// Default shared by the engine's built-in instruments.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// Default is the process-wide registry the engine's built-in instruments
// register on. Serve it with Handler (cmd/xsltdb -metrics-addr) or scrape
// it programmatically with WriteTo.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label schema; series hang off it
// per label-value tuple.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only, sorted ascending

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (metric, label values) time series. val serves counters and
// gauges; histogram observations land in bucketN/sumBits/obsCount.
type series struct {
	labelValues []string

	val atomic.Int64
	// fn, when non-nil, makes this a callback gauge: the value is computed
	// at render time instead of stored (NewGaugeFunc). Written once under
	// the family mutex, read under it at render.
	fn func() float64

	bucketN  []atomic.Int64 // one per bucket bound (cumulative at render)
	sumBits  atomic.Uint64  // float64 bits of the observation sum
	obsCount atomic.Int64
}

func (f *family) getSeries(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), labelValues...)}
	if f.kind == kindHistogram {
		s.bucketN = make([]atomic.Int64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// register creates or fetches a family, enforcing schema consistency: the
// same name re-registered with a different kind or label set panics (a
// programming error, caught at init time in practice).
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...), series: map[string]*series{}}
	if kind == kindHistogram {
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	r.families[name] = f
	return f
}

// Counter is a monotonically increasing count.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) { c.s.val.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.s.val.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Inc adds one.
func (g *Gauge) Inc() { g.s.val.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.s.val.Add(-1) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.s.val.Add(n) }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.s.val.Store(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.s.val.Load() }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	f *family
	s *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.f.buckets {
		if v <= ub {
			h.s.bucketN[i].Add(1)
			break
		}
	}
	h.s.obsCount.Add(1)
	for {
		old := h.s.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.s.obsCount.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// interpolating linearly within the winning bucket — the same estimate a
// Prometheus histogram_quantile() would give over this histogram. It returns
// 0 with no observations, and the top finite bucket bound when the rank
// falls in the +Inf overflow bucket (the estimate is bounded by the layout).
func (h *Histogram) Quantile(q float64) float64 {
	n := h.s.obsCount.Load()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	var cum int64
	lower := 0.0
	for i, ub := range h.f.buckets {
		c := h.s.bucketN[i].Load()
		if c > 0 && float64(cum+c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (ub-lower)*frac
		}
		cum += c
		lower = ub
	}
	if len(h.f.buckets) > 0 {
		return h.f.buckets[len(h.f.buckets)-1]
	}
	return 0
}

// HistogramSnapshot is a point-in-time copy of one histogram series: the
// bucket layout, the per-bucket (non-cumulative) counts, and the running
// count and sum. Detectors diff two snapshots to reason about only the
// observations that arrived between checks — a cumulative histogram's
// quantiles never come back down, but its deltas do.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending (the +Inf bucket is implicit)
	Counts []int64   // per-bucket counts, parallel to Bounds
	Count  int64     // total observations (includes the +Inf overflow)
	Sum    float64
}

// Snapshot copies the histogram's current bucket state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.f.buckets,
		Counts: make([]int64, len(h.f.buckets)),
		Count:  h.s.obsCount.Load(),
		Sum:    math.Float64frombits(h.s.sumBits.Load()),
	}
	for i := range h.s.bucketN {
		s.Counts[i] = h.s.bucketN[i].Load()
	}
	return s
}

// CountAbove returns how many observations landed strictly above the bucket
// whose upper bound is <= bound — i.e. the tail count at bucket resolution.
// Passing an exact bucket bound gives an exact tail; anything else rounds
// down to the nearest bound below it.
func (s HistogramSnapshot) CountAbove(bound float64) int64 {
	tail := s.Count
	for i, ub := range s.Bounds {
		if ub <= bound {
			tail -= s.Counts[i]
		}
	}
	return tail
}

// FindHistogram resolves a registered histogram series by family name and
// label values — the read-side twin of NewHistogramVec().With for consumers
// (detectors, consoles) that know instruments only by their exposition name.
// Returns false when the name is unregistered or not a histogram.
func (r *Registry) FindHistogram(name string, labelValues ...string) (*Histogram, bool) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != kindHistogram || len(labelValues) != len(f.labels) {
		return nil, false
	}
	return &Histogram{f: f, s: f.getSeries(labelValues)}, true
}

// SeriesValue is one (labels, value) sample of a counter or gauge family.
type SeriesValue struct {
	Labels []string
	Value  float64
}

// SeriesValues snapshots every series of a counter or gauge family,
// computing callback gauges. Returns nil for unregistered names and
// histograms. Detectors use it to watch instruments — including label vecs
// whose series sets grow at runtime — without holding typed handles.
func (r *Registry) SeriesValues(name string) []SeriesValue {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind == kindHistogram {
		return nil
	}
	f.mu.RLock()
	sers := make([]*series, 0, len(f.series))
	fns := make([]func() float64, 0, len(f.series))
	for _, s := range f.series {
		sers = append(sers, s)
		fns = append(fns, s.fn)
	}
	f.mu.RUnlock()
	out := make([]SeriesValue, 0, len(sers))
	for i, s := range sers {
		v := float64(s.val.Load())
		if fns[i] != nil {
			v = fns[i]()
		}
		out = append(out, SeriesValue{Labels: s.labelValues, Value: v})
	}
	return out
}

// FamilyInfo describes one registered metric family — the metric-naming lint
// test walks these to enforce the repo's naming and HELP conventions.
type FamilyInfo struct {
	Name string
	Help string
	Kind string
}

// Families lists every registered family, sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.RLock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{Name: f.name, Help: f.help, Kind: f.kind.String()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// newStandaloneHistogram builds a histogram that belongs to no registry —
// the run-history archive uses these for per-plan latency aggregates, which
// are served as JSON through the console rather than scraped as metrics. A
// nil buckets slice uses DefBuckets.
func newStandaloneHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := &family{name: "standalone", kind: kindHistogram, buckets: append([]float64(nil), buckets...)}
	sort.Float64s(f.buckets)
	return &Histogram{f: f, s: &series{bucketN: make([]atomic.Int64, len(f.buckets))}}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With resolves the counter for one label-value tuple (cached).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.getSeries(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With resolves the gauge for one label-value tuple (cached).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.getSeries(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With resolves the histogram for one label-value tuple (cached).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.getSeries(labelValues)}
}

// NewCounter registers (or fetches) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return &Counter{s: f.getSeries(nil)}
}

// NewCounterVec registers (or fetches) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// NewGauge registers (or fetches) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return &Gauge{s: f.getSeries(nil)}
}

// NewGaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// NewGaugeFunc registers an unlabeled gauge whose value is computed by fn at
// every render — the instrument for values that are derived rather than
// maintained (the age of the oldest pinned snapshot, say). Re-registration
// replaces the callback, keeping package-level instruments idempotent.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	s := f.getSeries(nil)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// DefBuckets are latency buckets in seconds, spanning 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram registers (or fetches) an unlabeled histogram. A nil buckets
// slice uses DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, nil, buckets)
	return &Histogram{f: f, s: f.getSeries(nil)}
}

// NewHistogramVec registers (or fetches) a labeled histogram family. A nil
// buckets slice uses DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders {k="v",...} for a series, with extra appended last
// (the histogram le label).
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	// NOT %q: the exposition format's escapes (\\ \" \n) are exactly what
	// escapeLabel produces; %q would escape the escapes.
	var parts []string
	for i, n := range names {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, n, escapeLabel(values[i])))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extra[i], escapeLabel(extra[i+1])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float the way Prometheus clients do. %g already
// uses the fewest digits that round-trip, so no trailing-zero trimming is
// needed — and naive TrimRight would corrupt integral values ("10" -> "1",
// "0" -> ""), breaking le="10" bucket bounds and zero-valued samples.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WriteTo renders every family in the Prometheus text exposition format,
// families and series sorted for deterministic output. Registry implements
// io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var total int64
	pr := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, f := range fams {
		if f.help != "" {
			if err := pr("# HELP %s %s\n", f.name, f.help); err != nil {
				return total, err
			}
		}
		if err := pr("# TYPE %s %s\n", f.name, f.kind); err != nil {
			return total, err
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, 0, len(keys))
		fns := make([]func() float64, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
			fns = append(fns, f.series[k].fn)
		}
		f.mu.RUnlock()
		for si, s := range sers {
			switch f.kind {
			case kindCounter, kindGauge:
				if fn := fns[si]; fn != nil {
					if err := pr("%s%s %s\n", f.name, labelString(f.labels, s.labelValues), formatFloat(fn())); err != nil {
						return total, err
					}
					continue
				}
				if err := pr("%s%s %d\n", f.name, labelString(f.labels, s.labelValues), s.val.Load()); err != nil {
					return total, err
				}
			case kindHistogram:
				var cum int64
				for i, ub := range f.buckets {
					cum += s.bucketN[i].Load()
					if err := pr("%s_bucket%s %d\n", f.name,
						labelString(f.labels, s.labelValues, "le", formatFloat(ub)), cum); err != nil {
						return total, err
					}
				}
				if err := pr("%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelValues, "le", "+Inf"), s.obsCount.Load()); err != nil {
					return total, err
				}
				if err := pr("%s_sum%s %s\n", f.name, labelString(f.labels, s.labelValues),
					formatFloat(math.Float64frombits(s.sumBits.Load()))); err != nil {
					return total, err
				}
				if err := pr("%s_count%s %d\n", f.name, labelString(f.labels, s.labelValues), s.obsCount.Load()); err != nil {
					return total, err
				}
			}
		}
	}
	return total, nil
}

// Handler serves the registry in the Prometheus text format — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
