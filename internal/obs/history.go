package obs

// The retention half of the observability layer: a bounded ring buffer of
// finished executions (the engine's v$sql / slow-query-log equivalent) with
// per-plan latency aggregates. The facade records one RunRecord per Run call
// or cursor lifetime; the console (console.go) serves the archive over HTTP.
//
// Cost model: recording is one short critical section per RUN — never per
// row — appending a value into a preallocated ring slot and bumping the
// plan's histogram. A nil *Archive records nothing, so the disabled path is
// one pointer check at run completion.

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// defaultArchiveCap bounds the ring when EnableRunHistory(0) is used.
	defaultArchiveCap = 256
	// archiveTopK is how many slowest runs each plan aggregate retains in
	// full (trace included) even after the ring evicts them.
	archiveTopK = 5
)

// RunRecord is one archived execution. Durations marshal as nanoseconds.
type RunRecord struct {
	// ID is the archive-assigned sequence number (1-based, monotonic).
	ID uint64 `json:"id"`
	// Kind is "run" for a materializing Run, "cursor" for a streaming one.
	Kind string `json:"kind"`
	// Start is when the execution began.
	Start time.Time `json:"start"`
	// View and Strategy identify the plan ((view, strategy) is the
	// aggregation key of PlanAggregate).
	View     string `json:"view"`
	Strategy string `json:"strategy"`
	// AccessPath is the EXPLAIN line of the driving access path ("" when
	// the run failed before planning one).
	AccessPath string `json:"access_path,omitempty"`
	// Rows counts serialized result rows handed to the caller.
	Rows int64 `json:"rows"`
	// Wall is CompileWall + ExecWall.
	Wall        time.Duration `json:"wall_ns"`
	CompileWall time.Duration `json:"compile_wall_ns"`
	ExecWall    time.Duration `json:"exec_wall_ns"`
	// Error is the terminal error ("" on success).
	Error string `json:"error,omitempty"`
	// Stats is the run's rendered ExecStats line.
	Stats string `json:"stats,omitempty"`
	// Sampled reports whether the trace-sampling policy retained this run's
	// trace; Trace/TraceJSON are set only then.
	Sampled   bool            `json:"sampled,omitempty"`
	Trace     string          `json:"trace,omitempty"`
	TraceJSON json.RawMessage `json:"trace_json,omitempty"`
	// TraceID is the request's W3C trace identity when the run was executed
	// on behalf of a served request (serve threads it via Trace.SetID); the
	// archive indexes such records so /runs/<trace-id> resolves them.
	TraceID string `json:"trace_id,omitempty"`
}

// planAggKey groups records per plan.
type planAggKey struct{ view, strategy string }

// planAgg accumulates one plan's statistics; guarded by the archive mutex.
type planAgg struct {
	calls   int64
	errors  int64
	rows    int64
	hist    *Histogram // wall-time seconds
	slowest []RunRecord
}

// PlanAggregate is the snapshot form of one plan's aggregate statistics.
type PlanAggregate struct {
	View     string `json:"view"`
	Strategy string `json:"strategy"`
	Calls    int64  `json:"calls"`
	Errors   int64  `json:"errors"`
	Rows     int64  `json:"rows"`
	// P50/P95/P99 are latency quantiles estimated from the histogram's
	// buckets (marshaled as nanoseconds).
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Slowest holds the plan's slowest runs in full, slowest first —
	// retained even after the ring evicted them.
	Slowest []RunRecord `json:"slowest,omitempty"`
}

// Archive is the bounded run-history ring plus per-plan aggregates. The zero
// value is not used; construct with NewArchive. A nil *Archive is valid
// everywhere and records nothing.
type Archive struct {
	capacity int

	// sampleSeq numbers sampling decisions for the ratio policy; it is NOT
	// the record ID sequence — runs the policy skips still get recorded.
	sampleSeq atomic.Uint64

	mu      sync.Mutex
	ring    []RunRecord // grows to capacity, then wraps; ID i at (i-1)%cap
	next    uint64      // ID the next Record call will assign (first is 1)
	plans   map[planAggKey]*planAgg
	byTrace map[string]uint64 // trace-id -> record ID, pruned with the ring
}

// NewArchive returns an archive retaining the most recent `capacity` runs
// (<= 0 uses defaultArchiveCap).
func NewArchive(capacity int) *Archive {
	if capacity <= 0 {
		capacity = defaultArchiveCap
	}
	return &Archive{capacity: capacity, next: 1, plans: map[planAggKey]*planAgg{}, byTrace: map[string]uint64{}}
}

// Cap returns the ring capacity (0 on nil).
func (a *Archive) Cap() int {
	if a == nil {
		return 0
	}
	return a.capacity
}

// Len returns how many records the ring currently holds (0 on nil).
func (a *Archive) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.ring)
}

// SampleTick returns the next sampling sequence number (1-based). The ratio
// sampling policy decides deterministically off this counter, so N runs at
// ratio r sample floor(N*r)±1 runs regardless of interleaving. Returns 0 on
// a nil archive (callers treat that as "do not sample").
func (a *Archive) SampleTick() uint64 {
	if a == nil {
		return 0
	}
	return a.sampleSeq.Add(1)
}

// Record archives one finished execution, assigns and returns its ID.
// Nil-safe: a nil archive returns 0 and retains nothing.
func (a *Archive) Record(rec RunRecord) uint64 {
	if a == nil {
		return 0
	}
	if rec.Start.IsZero() {
		rec.Start = time.Now().Add(-rec.Wall)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rec.ID = a.next
	a.next++
	if len(a.ring) < a.capacity {
		a.ring = append(a.ring, rec)
	} else {
		slot := (rec.ID - 1) % uint64(a.capacity)
		// The ring evicts the record it overwrites; its trace-ID entry must
		// go with it or the index would grow without bound.
		if old := a.ring[slot]; old.TraceID != "" {
			delete(a.byTrace, old.TraceID)
		}
		a.ring[slot] = rec
	}
	if rec.TraceID != "" {
		a.byTrace[rec.TraceID] = rec.ID
	}

	key := planAggKey{view: rec.View, strategy: rec.Strategy}
	agg := a.plans[key]
	if agg == nil {
		agg = &planAgg{hist: newStandaloneHistogram(nil)}
		a.plans[key] = agg
	}
	agg.calls++
	agg.rows += rec.Rows
	if rec.Error != "" {
		agg.errors++
	}
	agg.hist.Observe(rec.Wall.Seconds())
	// Insert into the plan's top-K slowest (slowest first), kept in full.
	pos := sort.Search(len(agg.slowest), func(i int) bool { return agg.slowest[i].Wall < rec.Wall })
	if pos < archiveTopK {
		if len(agg.slowest) < archiveTopK {
			agg.slowest = append(agg.slowest, RunRecord{})
		}
		copy(agg.slowest[pos+1:], agg.slowest[pos:])
		agg.slowest[pos] = rec
	}
	return rec.ID
}

// Runs returns the most recent records, newest first. limit <= 0 returns
// everything retained. Nil-safe.
func (a *Archive) Runs(limit int) []RunRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.ring)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]RunRecord, 0, limit)
	for id := a.next - 1; id >= 1 && len(out) < limit; id-- {
		out = append(out, a.ring[(id-1)%uint64(a.capacity)])
	}
	return out
}

// Run returns the record with the given ID, if the ring still retains it.
func (a *Archive) Run(id uint64) (RunRecord, bool) {
	if a == nil || id == 0 {
		return RunRecord{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if id >= a.next || a.next-id > uint64(len(a.ring)) {
		return RunRecord{}, false
	}
	return a.ring[(id-1)%uint64(a.capacity)], true
}

// RunByTrace returns the record carrying the given W3C trace ID, if the
// ring still retains it. Nil-safe.
func (a *Archive) RunByTrace(traceID string) (RunRecord, bool) {
	if a == nil || traceID == "" {
		return RunRecord{}, false
	}
	a.mu.Lock()
	id, ok := a.byTrace[traceID]
	var rec RunRecord
	if ok {
		rec = a.ring[(id-1)%uint64(a.capacity)]
	}
	a.mu.Unlock()
	return rec, ok
}

// Plans snapshots the per-plan aggregates, sorted by (view, strategy).
func (a *Archive) Plans() []PlanAggregate {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PlanAggregate, 0, len(a.plans))
	for key, agg := range a.plans {
		out = append(out, PlanAggregate{
			View: key.view, Strategy: key.strategy,
			Calls: agg.calls, Errors: agg.errors, Rows: agg.rows,
			P50:     time.Duration(agg.hist.Quantile(0.50) * float64(time.Second)),
			P95:     time.Duration(agg.hist.Quantile(0.95) * float64(time.Second)),
			P99:     time.Duration(agg.hist.Quantile(0.99) * float64(time.Second)),
			Slowest: append([]RunRecord(nil), agg.slowest...),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].View != out[j].View {
			return out[i].View < out[j].View
		}
		return out[i].Strategy < out[j].Strategy
	})
	return out
}
