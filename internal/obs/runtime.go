package obs

// Runtime health telemetry: callback gauges over the Go runtime (goroutine
// count, heap, GC pause time, GOMAXPROCS) plus the xsltdb_build_info
// info-gauge identifying the running binary. Registered on Default at init —
// every binary that links the engine answers "what is this process and is
// its runtime healthy" from /metrics alone, with zero steady-state cost:
// the values are computed only when a scrape renders them.

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

func init() {
	registerRuntimeMetrics(Default)
}

// memStatsCache amortizes runtime.ReadMemStats across the heap gauges of one
// scrape: ReadMemStats stops the world briefly, and a scrape renders several
// gauges that all want the same numbers.
var memStatsCache struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func cachedMemStats() *runtime.MemStats {
	memStatsCache.mu.Lock()
	defer memStatsCache.mu.Unlock()
	if time.Since(memStatsCache.at) > time.Second {
		runtime.ReadMemStats(&memStatsCache.ms)
		memStatsCache.at = time.Now()
	}
	return &memStatsCache.ms
}

// registerRuntimeMetrics installs the runtime gauges and the build-info
// gauge on r. Split from init so tests can exercise it on a fresh registry.
func registerRuntimeMetrics(r *Registry) {
	r.NewGaugeFunc("xsltdb_go_goroutines",
		"Goroutines currently live in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.NewGaugeFunc("xsltdb_go_gomaxprocs",
		"Current GOMAXPROCS (the scheduler's processor limit).",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.NewGaugeFunc("xsltdb_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(cachedMemStats().HeapAlloc) })
	r.NewGaugeFunc("xsltdb_go_heap_objects",
		"Live heap objects (runtime.MemStats.HeapObjects).",
		func() float64 { return float64(cachedMemStats().HeapObjects) })
	r.NewGaugeFunc("xsltdb_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time in seconds.",
		func() float64 { return float64(cachedMemStats().PauseTotalNs) / 1e9 })
	r.NewGaugeFunc("xsltdb_go_gc_cycles_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() float64 { return float64(cachedMemStats().NumGC) })

	module, version, revision := buildIdentity()
	r.NewGaugeVec("xsltdb_build_info",
		"Build identity of the running binary; the value is always 1 — the information is in the labels.",
		"go_version", "module", "module_version", "vcs_revision", "gomaxprocs").
		With(runtime.Version(), module, version, revision, strconv.Itoa(runtime.GOMAXPROCS(0))).Set(1)
}

// buildIdentity extracts the main module's path, version, and VCS revision
// from the binary's embedded build info ("unknown" when built without module
// metadata, e.g. some test binaries).
func buildIdentity() (module, version, revision string) {
	module, version, revision = "unknown", "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Path != "" {
		module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return
}
