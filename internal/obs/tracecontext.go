package obs

// W3C Trace Context support for the serving layer: parse and render the
// `traceparent` header (version 00) so a request arriving with upstream
// trace identity keeps it end to end, and mint fresh identifiers for
// requests that arrive without one. The trace-id hex doubles as the
// X-Request-Id the server returns, the key wide events carry, and the
// handle the run-history archive indexes traces under (Archive.RunByTrace).

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// TraceContext is one W3C trace-context triple: the trace identity shared
// by every span of a distributed request, the current span's identity, and
// the trace flags (bit 0 = sampled).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// ctxSeq de-correlates fallback identifiers if crypto/rand ever fails
// (it effectively cannot on the platforms we run on).
var ctxSeq atomic.Uint64

// randomBytes fills b from crypto/rand, falling back to a time+sequence
// pattern rather than returning the all-zero value the spec forbids.
func randomBytes(b []byte) {
	if _, err := rand.Read(b); err != nil {
		seed := uint64(time.Now().UnixNano()) ^ (ctxSeq.Add(1) << 32)
		for i := 0; i < len(b); i += 8 {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], seed+uint64(i))
			copy(b[i:], buf[:])
		}
	}
}

// NewTraceContext mints a fresh sampled trace context.
func NewTraceContext() TraceContext {
	var tc TraceContext
	randomBytes(tc.TraceID[:])
	randomBytes(tc.SpanID[:])
	tc.Flags = 0x01
	return tc
}

// WithNewSpan returns the same trace with a freshly minted span ID — what a
// server does before propagating downstream or answering the caller.
func (tc TraceContext) WithNewSpan() TraceContext {
	randomBytes(tc.SpanID[:])
	return tc
}

// TraceIDString returns the 32-hex-digit trace ID.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the version-00 header value:
// 00-<trace-id>-<span-id>-<flags>.
func (tc TraceContext) Traceparent() string {
	return "00-" + hex.EncodeToString(tc.TraceID[:]) +
		"-" + hex.EncodeToString(tc.SpanID[:]) +
		"-" + hex.EncodeToString([]byte{tc.Flags})
}

// ParseTraceparent parses a version-00 traceparent header. It rejects the
// malformed and the forbidden (all-zero trace or span ID, unknown length);
// per the spec an unparseable header is ignored and the callee starts a new
// trace, which is exactly what the (zero, false) return tells callers to do.
func ParseTraceparent(h string) (TraceContext, bool) {
	var tc TraceContext
	// 2 (version) + 1 + 32 (trace-id) + 1 + 16 (span-id) + 1 + 2 (flags).
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tc, false
	}
	if h[0] != '0' || h[1] != '0' { // only version 00 is understood
		return tc, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return TraceContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceContext{}, false
	}
	tc.Flags = flags[0]
	if tc.TraceID == ([16]byte{}) || tc.SpanID == ([8]byte{}) {
		return TraceContext{}, false
	}
	return tc, true
}
