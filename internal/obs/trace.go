// Package obs is the engine's zero-dependency observability layer: spans
// and traces for attributing latency to compile phases and plan operators,
// and a metrics registry (metrics.go) for process-wide counters, gauges and
// histograms in Prometheus text format.
//
// The design goal is that instrumentation can be threaded through every hot
// path unconditionally: all Trace and Span methods are safe on a nil
// receiver and reduce to a single pointer check, so an untraced run pays
// (almost) nothing. When a trace IS attached, spans come from a sync.Pool
// and counters are atomics, so concurrent operators (parallel construction
// workers) may write to one span without extra locking.
//
// Two span styles share one type:
//
//   - phase spans bracket a region once: sp := parent.Start("compile");
//     defer sp.End()
//   - operator spans aggregate many invocations: sp.Observe(d) accumulates
//     duration and bumps the invocation count; rows flow in via
//     AddRowsIn/AddRowsOut.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (strategy, access path,
// cache outcome, degradation reason, ...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one node of a trace: a named region of work with wall time,
// rows in/out, an invocation count, attributes and child spans. The
// zero-value Span is not used directly; spans are created through
// Trace.Start and Span.Start. All methods are nil-safe.
type Span struct {
	name    string
	started time.Time

	durNS   atomic.Int64
	count   atomic.Int64
	rowsIn  atomic.Int64
	rowsOut atomic.Int64
	ended   atomic.Bool

	mu       sync.Mutex
	attrs    []Attr
	errMsg   string
	children []*Span
}

// spanPool recycles spans across traces; Trace.Release returns a whole
// tree to the pool.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

func newSpan(name string) *Span {
	s := spanPool.Get().(*Span)
	s.name = name
	s.started = time.Now()
	return s
}

// free resets s (keeping slice capacity) and returns it to the pool.
func (s *Span) free() {
	for _, c := range s.children {
		c.free()
	}
	s.name = ""
	s.started = time.Time{}
	s.durNS.Store(0)
	s.count.Store(0)
	s.rowsIn.Store(0)
	s.rowsOut.Store(0)
	s.ended.Store(false)
	s.attrs = s.attrs[:0]
	s.errMsg = ""
	s.children = s.children[:0]
	spanPool.Put(s)
}

// Start opens a child span under s. On a nil receiver it returns nil, so
// untraced code paths cost one pointer check.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes a phase span: its duration becomes the wall time since Start.
// End is idempotent — a second call is ignored — so error paths may use
// defer sp.End() safely alongside an explicit earlier End.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.durNS.Add(int64(time.Since(s.started)))
	s.count.Add(1)
}

// Observe accumulates one invocation of an operator span: duration d is
// added to the span's total and the invocation count is bumped. Operator
// spans never call End.
func (s *Span) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.durNS.Add(int64(d))
	s.count.Add(1)
}

// ObserveSince is Observe(time.Since(start)).
func (s *Span) ObserveSince(start time.Time) {
	if s == nil {
		return
	}
	s.Observe(time.Since(start))
}

// AddRowsIn charges n rows entering the operator.
func (s *Span) AddRowsIn(n int64) {
	if s == nil {
		return
	}
	s.rowsIn.Add(n)
}

// AddRowsOut charges n rows leaving the operator.
func (s *Span) AddRowsOut(n int64) {
	if s == nil {
		return
	}
	s.rowsOut.Add(n)
}

// SetAttr annotates the span. The value is rendered with fmt.Sprint at call
// time; callers on hot paths should guard with `if sp != nil` to avoid the
// boxing allocation when no trace is attached.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case string:
		v = x
	default:
		v = fmt.Sprint(value)
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// Fail tags the span with a terminal error. The span still needs End (or
// carries its accumulated Observe time).
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's recorded wall time so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.durNS.Load())
}

// Trace collects the spans of one execution (a Run, a cursor's lifetime,
// or a compilation). The zero value is NOT ready; use New. A nil *Trace is
// valid everywhere and records nothing.
type Trace struct {
	mu    sync.Mutex
	id    string // W3C trace-id hex when request-scoped; "" otherwise
	roots []*Span
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// SetID attaches a request-scoped identity (the W3C trace-id hex) to the
// trace. The engine archives a trace carrying an ID under that ID
// (Archive.RunByTrace), so a served request's span tree is reachable from
// its X-Request-Id. Nil-safe.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the attached identity ("" on nil or when never set).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Start opens a top-level span. Nil-safe: on a nil trace it returns a nil
// span, and every operation on that span is a no-op.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the top-level spans recorded so far.
func (t *Trace) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Release returns every span to the pool and empties the trace for reuse.
// Call it only when no rendered view of the trace is needed anymore; the
// facade releases its internal traces, user-supplied traces are the
// caller's to release (or to leave to the garbage collector).
func (t *Trace) Release() {
	if t == nil {
		return
	}
	t.mu.Lock()
	roots := t.roots
	t.roots = nil
	t.id = ""
	t.mu.Unlock()
	for _, s := range roots {
		s.free()
	}
}

// SpanJSON is the exported form of one span (see Trace.JSON).
type SpanJSON struct {
	Name     string            `json:"name"`
	DurNS    int64             `json:"dur_ns"`
	Count    int64             `json:"count,omitempty"`
	RowsIn   int64             `json:"rows_in,omitempty"`
	RowsOut  int64             `json:"rows_out,omitempty"`
	Error    string            `json:"error,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanJSON        `json:"children,omitempty"`
}

func (s *Span) export() SpanJSON {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	errMsg := s.errMsg
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	j := SpanJSON{
		Name:    s.name,
		DurNS:   s.durNS.Load(),
		Count:   s.count.Load(),
		RowsIn:  s.rowsIn.Load(),
		RowsOut: s.rowsOut.Load(),
		Error:   errMsg,
	}
	if len(attrs) > 0 {
		j.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		j.Children = append(j.Children, c.export())
	}
	return j
}

// Export returns the trace as plain data (for programmatic inspection).
func (t *Trace) Export() []SpanJSON {
	if t == nil {
		return nil
	}
	out := make([]SpanJSON, 0, 1)
	for _, s := range t.Roots() {
		out = append(out, s.export())
	}
	return out
}

// JSON marshals the whole trace, indented, for offline inspection
// (xsltbench -trace-out).
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Export(), "", "  ")
}

// Tree renders the trace as a human-readable operator tree: one line per
// span with its wall time, invocation count, rows and attributes, children
// indented beneath. This is the EXPLAIN ANALYZE rendering.
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	for _, s := range t.Roots() {
		s.tree(&sb, "", "")
	}
	return sb.String()
}

func (s *Span) tree(sb *strings.Builder, prefix, childPrefix string) {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	errMsg := s.errMsg
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	sb.WriteString(prefix)
	fmt.Fprintf(sb, "%-24s %10v", s.name, time.Duration(s.durNS.Load()).Round(time.Microsecond))
	if n := s.count.Load(); n > 1 {
		fmt.Fprintf(sb, " calls=%d", n)
	}
	if n := s.rowsIn.Load(); n > 0 {
		fmt.Fprintf(sb, " rows_in=%d", n)
	}
	if n := s.rowsOut.Load(); n > 0 {
		fmt.Fprintf(sb, " rows_out=%d", n)
	}
	for _, a := range attrs {
		if strings.ContainsAny(a.Value, " \t") {
			fmt.Fprintf(sb, " %s=%q", a.Key, a.Value)
		} else {
			fmt.Fprintf(sb, " %s=%s", a.Key, a.Value)
		}
	}
	if errMsg != "" {
		fmt.Fprintf(sb, " ERROR=%q", errMsg)
	}
	sb.WriteByte('\n')
	for i, c := range children {
		if i == len(children)-1 {
			c.tree(sb, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.tree(sb, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// Find returns the first span (depth-first across the whole trace) with the
// given name, or nil — a test and tooling convenience.
func (t *Trace) Find(name string) *Span {
	if t == nil {
		return nil
	}
	for _, s := range t.Roots() {
		if found := s.find(name); found != nil {
			return found
		}
	}
	return nil
}

func (s *Span) find(name string) *Span {
	if s.name == name {
		return s
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		if found := c.find(name); found != nil {
			return found
		}
	}
	return nil
}
