package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestExpositionFormatValidity parses Registry.WriteTo output line by line
// the way a Prometheus scraper would: every family must render exactly one
// HELP line immediately followed by its TYPE line, every sample line must
// belong to the most recent family, label values must be correctly escaped,
// histogram buckets must be cumulative and monotonic with the +Inf bucket
// equal to _count, and no two sample lines may repeat the same series.
func TestExpositionFormatValidity(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("exp_ops_total", "Operations.").Add(7)
	reg.NewGauge("exp_active", "Active things.").Set(-2)
	cv := reg.NewCounterVec("exp_by_label_total", "By label, with nasty values.", "name")
	cv.With("plain").Add(1)
	cv.With(`quote " backslash \ newline ` + "\n" + ` end`).Add(2)
	cv.With("").Inc() // empty label value is legal
	hv := reg.NewHistogramVec("exp_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "op")
	hv.With("read").Observe(0.005)
	hv.With("read").Observe(0.05)
	hv.With("read").Observe(5) // overflow bucket
	hv.With("write").Observe(0.5)

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	seen := validateExposition(t, text)

	if !seen["exp_latency_seconds_bucket{op=\"read\",le=\"+Inf\"}"] {
		t.Fatalf("expected read histogram buckets in:\n%s", text)
	}
	// The escaped label value must round-trip the raw characters.
	if !strings.Contains(text, `quote \" backslash \\ newline \n end`) {
		t.Fatalf("label escaping missing or wrong:\n%s", text)
	}
}

// TestServingInstrumentExposition renders the same instrument shapes the
// serving telemetry registers — tenant-labeled counter/histogram/gauge vecs,
// callback gauges, and the WAL latency histograms with their sub-millisecond
// buckets — and checks the scrape stays structurally valid (no duplicate
// series, monotonic cumulative buckets, +Inf == _count, HELP/TYPE pairing).
func TestServingInstrumentExposition(t *testing.T) {
	reg := NewRegistry()
	lat := reg.NewHistogramVec("xsltd_tenant_request_seconds",
		"Request latency by tenant.", nil, "tenant")
	sheds := reg.NewCounterVec("xsltd_tenant_sheds_total",
		"Sheds by tenant and reason.", "tenant", "reason")
	hits := reg.NewCounterVec("xsltd_tenant_cache_hits_total",
		"Cache hits by tenant.", "tenant")
	burn := reg.NewGaugeVec("xsltd_slo_burn_rate_milli",
		"SLO burn rate x1000 by tenant.", "tenant")
	reg.NewGaugeFunc("xsltdb_snapshot_pin_oldest_age_seconds",
		"Age of the oldest pinned snapshot.", func() float64 { return 1.5 })
	wal := reg.NewHistogram("xsltdb_wal_fsync_seconds",
		"WAL fsync latency.", []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1})

	for _, tenant := range []string{"acme", "tenant with spaces", `q"uote`, ""} {
		lat.With(tenant).Observe(0.003)
		lat.With(tenant).Observe(0.25)
		sheds.With(tenant, "latency").Inc()
		sheds.With(tenant, "quota").Add(2)
		hits.With(tenant).Inc()
		burn.With(tenant).Set(1500)
	}
	wal.Observe(0.00004)
	wal.Observe(0.002)

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	seen := validateExposition(t, text)

	for _, want := range []string{
		`xsltd_tenant_request_seconds_count{tenant="acme"}`,
		`xsltd_tenant_sheds_total{tenant="acme",reason="quota"}`,
		`xsltd_slo_burn_rate_milli{tenant="acme"}`,
		`xsltdb_snapshot_pin_oldest_age_seconds`,
		`xsltdb_wal_fsync_seconds_bucket{le="0.0001"}`,
	} {
		if !seen[want] {
			t.Fatalf("missing series %q in:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "xsltdb_snapshot_pin_oldest_age_seconds 1.5\n") {
		t.Fatalf("callback gauge did not render its value:\n%s", text)
	}
}

// validateExposition walks a rendered scrape applying the structural rules a
// Prometheus parser enforces, and returns the set of series rendered.
func validateExposition(t *testing.T, text string) map[string]bool {
	t.Helper()
	type familyState struct {
		help, typ string
	}
	families := map[string]*familyState{}
	current := "" // family the sample lines must belong to
	seenSeries := map[string]bool{}
	// bucketCum tracks per-series cumulative bucket counts for monotonicity;
	// keyed by the series' non-le labels.
	bucketCum := map[string]float64{}
	bucketInf := map[string]float64{}
	counts := map[string]float64{}

	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", i+1)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", i+1, line)
			}
			if f := families[name]; f != nil {
				t.Fatalf("line %d: duplicate HELP for %q", i+1, name)
			}
			families[name] = &familyState{help: help}
			current = name
			// The TYPE line must come immediately next.
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Fatalf("line %d: HELP for %q not followed by its TYPE line", i+1, name)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: bad TYPE line %q", i+1, line)
			}
			f := families[name]
			if f == nil || f.typ != "" {
				t.Fatalf("line %d: TYPE for %q without preceding HELP (or duplicated)", i+1, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", i+1, line)
		}

		// Sample line: name{labels} value
		nameAndLabels, valText, ok := cutLastSpace(line)
		if !ok {
			t.Fatalf("line %d: sample without value: %q", i+1, line)
		}
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil && valText != "+Inf" {
			t.Fatalf("line %d: unparsable value %q", i+1, valText)
		}
		name := nameAndLabels
		labels := ""
		if j := strings.IndexByte(nameAndLabels, '{'); j >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				t.Fatalf("line %d: unterminated label set: %q", i+1, line)
			}
			name = nameAndLabels[:j]
			labels = nameAndLabels[j+1 : len(nameAndLabels)-1]
			validateLabelEscaping(t, i+1, labels)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		f := families[base]
		if f == nil || f.typ == "" {
			t.Fatalf("line %d: sample %q for unknown family %q", i+1, line, base)
		}
		if base != current {
			t.Fatalf("line %d: sample for %q interleaved under family %q", i+1, base, current)
		}
		if seenSeries[nameAndLabels] {
			t.Fatalf("line %d: duplicate series %q", i+1, nameAndLabels)
		}
		seenSeries[nameAndLabels] = true

		if f.typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le := labelValue(labels, "le")
				if le == "" {
					t.Fatalf("line %d: bucket without le label: %q", i+1, line)
				}
				seriesKey := base + "|" + stripLabel(labels, "le")
				if val < bucketCum[seriesKey] {
					t.Fatalf("line %d: bucket counts not monotonic for %q: %v after %v", i+1, seriesKey, val, bucketCum[seriesKey])
				}
				bucketCum[seriesKey] = val
				if le == "+Inf" {
					bucketInf[seriesKey] = val
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("line %d: unparsable le %q", i+1, le)
				}
			case strings.HasSuffix(name, "_count"):
				counts[base+"|"+labels] = val
			case strings.HasSuffix(name, "_sum"):
				if math.IsNaN(val) {
					t.Fatalf("line %d: NaN sum", i+1)
				}
			default:
				t.Fatalf("line %d: bare sample %q under histogram family", i+1, name)
			}
		}
	}

	// Every family rendered must have both HELP and TYPE.
	for name, f := range families {
		if f.typ == "" {
			t.Fatalf("family %q has HELP but no TYPE", name)
		}
	}
	// +Inf bucket must equal _count for every histogram series.
	for key, inf := range bucketInf {
		if count, ok := counts[key]; !ok || count != inf {
			t.Fatalf("series %q: +Inf bucket %v != count %v (ok=%v)", key, inf, count, ok)
		}
	}
	return seenSeries
}

// cutLastSpace splits a sample line at its final space (label values may
// contain escaped content but never a raw space-value ambiguity: the value
// is always the last field).
func cutLastSpace(line string) (string, string, bool) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return line, "", false
	}
	return line[:i], line[i+1:], true
}

// validateLabelEscaping walks a rendered label set checking that every value
// is quoted and uses only the legal escapes \\ \" \n.
func validateLabelEscaping(t *testing.T, lineNo int, labels string) {
	t.Helper()
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			t.Fatalf("line %d: malformed label set %q", lineNo, labels)
		}
		// Scan the quoted value honoring escapes.
		i := eq + 2
		for {
			if i >= len(rest) {
				t.Fatalf("line %d: unterminated label value in %q", lineNo, labels)
			}
			switch rest[i] {
			case '\\':
				if i+1 >= len(rest) || (rest[i+1] != '\\' && rest[i+1] != '"' && rest[i+1] != 'n') {
					t.Fatalf("line %d: illegal escape in %q", lineNo, labels)
				}
				i += 2
			case '"':
				i++
				goto closed
			case '\n':
				t.Fatalf("line %d: raw newline in label value of %q", lineNo, labels)
			default:
				i++
			}
		}
	closed:
		if i < len(rest) {
			if rest[i] != ',' {
				t.Fatalf("line %d: expected ',' after label value in %q", lineNo, labels)
			}
			i++
		}
		rest = rest[i:]
	}
}

// labelValue extracts one label's (unescaped-irrelevant) raw value from a
// rendered label set.
func labelValue(labels, name string) string {
	for _, part := range splitLabels(labels) {
		if k, v, ok := strings.Cut(part, "="); ok && k == name {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// stripLabel removes one label from a rendered label set (for keying bucket
// series without their le label).
func stripLabel(labels, name string) string {
	var kept []string
	for _, part := range splitLabels(labels) {
		if k, _, ok := strings.Cut(part, "="); ok && k == name {
			continue
		}
		kept = append(kept, part)
	}
	return strings.Join(kept, ",")
}

// splitLabels splits a rendered label set on commas that sit between
// label pairs (not inside quoted values).
func splitLabels(labels string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}
