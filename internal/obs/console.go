package obs

// The live debug console: one http.Handler serving the retention layer —
// archived runs with their traces, per-plan aggregates and plan-cache
// entries, the cardinality misestimate log, the metrics registry, and the
// runtime pprof endpoints (strategy execution runs under pprof labels, so
// CPU profiles segment by strategy and view). Everything is stdlib-only and
// read-only; mount it on an internal port (cmd/xsltdb -console-addr).

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// ConsoleConfig wires the console's data sources. Any field may be nil/zero;
// the corresponding endpoint then serves an empty value.
type ConsoleConfig struct {
	// Archive is the run-history ring (EnableRunHistory).
	Archive *Archive
	// Cards is the cardinality-accuracy tracker.
	Cards *CardTracker
	// Registry is served at /metrics.
	Registry *Registry
	// Plans returns the engine's plan-cache entries; the result is marshaled
	// as-is under the "cache" key of /plans. Kept as `any` so the engine
	// package can pass its own entry type without obs depending on it.
	Plans func() any
	// Tenants returns the serving layer's per-tenant admission state
	// (limits, in-flight counts, shed totals), marshaled as-is at /tenants.
	// Like Plans it stays `any` so obs does not depend on the serve package.
	Tenants func() any
	// Events returns the serving layer's most recent wide events (newest
	// first, up to n) plus the event-bus counters, served at /events.
	// tenant and trace, when non-empty, restrict the result to events of
	// that tenant / that 32-hex trace ID (?tenant= and ?trace=).
	Events func(n int, tenant, trace string) any
	// Anomalies returns the diagnostics monitor's state — installed
	// detectors plus recent anomalies, newest first — for /debug/anomalies.
	Anomalies func(n int) any
	// Bundles lists the retained diagnostic bundles (GET /debug/bundle).
	Bundles func() any
	// CaptureBundle captures a diagnostic bundle on demand and returns its
	// directory (POST /debug/bundle).
	CaptureBundle func() (string, error)
}

// ConsoleHandler builds the debug console:
//
//	/                 index (text)
//	/runs?n=50        recent runs, newest first (JSON array)
//	/runs/<id>        one run in full, including its sampled trace; <id> is
//	                  the archive sequence number or a request's 32-hex
//	                  trace ID (the X-Request-Id a served request returned)
//	/events?n=50      recent wide events, newest first (when serving);
//	                  ?tenant= and ?trace= restrict to one tenant / trace ID
//	/plans            plan-cache entries + per-plan latency aggregates
//	/misestimates?n=  cardinality misestimate log + per-path accuracy
//	/tenants          per-tenant admission state (when serving)
//	/debug/anomalies  diagnostics monitor: detectors + recent anomalies
//	/debug/bundle     GET lists retained diagnostic bundles; POST captures one
//	/metrics          Prometheus text exposition
//	/debug/pprof/...  runtime profiles (CPU samples carry strategy/view labels)
func ConsoleHandler(cfg ConsoleConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("xsltdb debug console\n\n" +
			"  /runs?n=50        recent runs (newest first)\n" +
			"  /runs/<id>        one run in full, with its sampled trace (<id>: sequence number or 32-hex trace ID)\n" +
			"  /events?n=50      recent wide events (newest first, when serving);\n" +
			"                    ?tenant=<name> and ?trace=<32-hex> filter\n" +
			"  /plans            plan-cache entries + per-plan aggregates (p50/p95/p99, top-K slowest)\n" +
			"  /misestimates     cardinality-accuracy: per-path q-error + misestimate log\n" +
			"  /tenants          per-tenant admission state (when serving)\n" +
			"  /debug/anomalies  diagnostics: installed detectors + recent anomalies\n" +
			"  /debug/bundle     GET lists diagnostic bundles; POST captures one now\n" +
			"  /metrics          Prometheus text exposition\n" +
			"  /debug/pprof/     runtime profiles (CPU samples labeled strategy/view)\n"))
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, cfg.Archive.Runs(queryInt(r, "n", 50)))
	})
	mux.HandleFunc("/runs/", func(w http.ResponseWriter, r *http.Request) {
		idText := strings.TrimPrefix(r.URL.Path, "/runs/")
		var rec RunRecord
		var ok bool
		if id, err := strconv.ParseUint(idText, 10, 64); err == nil {
			rec, ok = cfg.Archive.Run(id)
		} else if len(idText) == 32 {
			// A served request's identity: the trace-id hex it got back as
			// X-Request-Id resolves to the run it executed.
			rec, ok = cfg.Archive.RunByTrace(idText)
		} else {
			http.Error(w, "bad run id "+strconv.Quote(idText), http.StatusBadRequest)
			return
		}
		if !ok {
			http.Error(w, "run "+idText+" not retained", http.StatusNotFound)
			return
		}
		writeJSON(w, rec)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		var events any
		if cfg.Events != nil {
			q := r.URL.Query()
			events = cfg.Events(queryInt(r, "n", 50), q.Get("tenant"), q.Get("trace"))
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/debug/anomalies", func(w http.ResponseWriter, r *http.Request) {
		var page any
		if cfg.Anomalies != nil {
			page = cfg.Anomalies(queryInt(r, "n", 50))
		}
		writeJSON(w, page)
	})
	mux.HandleFunc("/debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			if cfg.CaptureBundle == nil {
				http.Error(w, "diagnostics recorder not enabled (-diag-dir)", http.StatusNotImplemented)
				return
			}
			dir, err := cfg.CaptureBundle()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, map[string]string{"bundle": dir})
		default:
			var bundles any
			if cfg.Bundles != nil {
				bundles = cfg.Bundles()
			}
			writeJSON(w, bundles)
		}
	})
	mux.HandleFunc("/plans", func(w http.ResponseWriter, _ *http.Request) {
		var cache any
		if cfg.Plans != nil {
			cache = cfg.Plans()
		}
		writeJSON(w, map[string]any{
			"cache":      cache,
			"aggregates": cfg.Archive.Plans(),
		})
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, _ *http.Request) {
		var tenants any
		if cfg.Tenants != nil {
			tenants = cfg.Tenants()
		}
		writeJSON(w, tenants)
	})
	mux.HandleFunc("/misestimates", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"q_error_threshold": cfg.Cards.Threshold(),
			"paths":             cfg.Cards.Stats(),
			"log":               cfg.Cards.Misestimates(queryInt(r, "n", 50)),
		})
	})
	if cfg.Registry != nil {
		mux.Handle("/metrics", cfg.Registry.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// queryInt reads an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int) int {
	if v := r.URL.Query().Get(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// writeJSON renders v indented; the console is for humans with curl.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
