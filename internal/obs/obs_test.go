package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceAndSpanAreNoOps(t *testing.T) {
	var tr *Trace
	sp := tr.Start("run")
	if sp != nil {
		t.Fatal("nil trace must yield nil spans")
	}
	child := sp.Start("child")
	if child != nil {
		t.Fatal("nil span must yield nil children")
	}
	// None of these may panic.
	sp.End()
	sp.Observe(time.Millisecond)
	sp.ObserveSince(time.Now())
	sp.AddRowsIn(1)
	sp.AddRowsOut(1)
	sp.SetAttr("k", "v")
	sp.Fail(nil)
	if tr.Tree() != "" || tr.Find("run") != nil || tr.Roots() != nil {
		t.Fatal("nil trace must render empty")
	}
	tr.Release()
}

func TestSpanTreeAndJSON(t *testing.T) {
	tr := New()
	run := tr.Start("run")
	run.SetAttr("strategy", "sql-rewrite")
	scan := run.Start("scan")
	scan.SetAttr("path", "INDEX PROBE row(id) id = 1")
	scan.Observe(2 * time.Millisecond)
	scan.Observe(1 * time.Millisecond)
	scan.AddRowsOut(2)
	ser := run.Start("serialize")
	ser.AddRowsIn(2)
	ser.End()
	run.End()

	tree := tr.Tree()
	for _, want := range []string{"run", "scan", "serialize", "rows_out=2", "calls=2", "strategy=sql-rewrite"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	if sp := tr.Find("scan"); sp == nil || sp.Duration() != 3*time.Millisecond {
		t.Fatalf("Find(scan) = %v (dur %v)", sp, sp.Duration())
	}

	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var spans []SpanJSON
	if err := json.Unmarshal(b, &spans); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "run" || len(spans[0].Children) != 2 {
		t.Fatalf("unexpected JSON shape: %+v", spans)
	}
	if spans[0].Children[0].Attrs["path"] == "" {
		t.Fatalf("scan attrs lost: %+v", spans[0].Children[0])
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New()
	sp := tr.Start("phase")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End() // must not add more time
	if sp.Duration() != d {
		t.Fatalf("double End extended the span: %v -> %v", d, sp.Duration())
	}
}

func TestErrorTagging(t *testing.T) {
	tr := New()
	sp := tr.Start("attempt")
	sp.Fail(errBoom{})
	sp.End()
	if !strings.Contains(tr.Tree(), `ERROR="boom"`) {
		t.Fatalf("tree missing error tag:\n%s", tr.Tree())
	}
	if tr.Export()[0].Error != "boom" {
		t.Fatal("JSON missing error tag")
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestReleaseRecyclesSpans(t *testing.T) {
	tr := New()
	sp := tr.Start("run")
	sp.Start("child").End()
	sp.End()
	tr.Release()
	if len(tr.Roots()) != 0 {
		t.Fatal("release must empty the trace")
	}
	// The trace is reusable afterwards.
	tr.Start("again").End()
	if tr.Find("again") == nil {
		t.Fatal("trace not reusable after Release")
	}
}

func TestConcurrentSpanWrites(t *testing.T) {
	tr := New()
	op := tr.Start("op")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				op.Observe(time.Microsecond)
				op.AddRowsOut(1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Export()[0]; got.Count != 8000 || got.RowsOut != 8000 {
		t.Fatalf("lost updates: count=%d rows_out=%d", got.Count, got.RowsOut)
	}
}

func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("runs_total", "Total runs.", "strategy", "outcome")
	c.With("sql-rewrite", "ok").Add(3)
	c.With("no-rewrite", "error").Inc()
	g := r.NewGauge("active_cursors", "Open cursors.")
	g.Inc()
	g.Inc()
	g.Dec()

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP runs_total Total runs.",
		"# TYPE runs_total counter",
		`runs_total{strategy="sql-rewrite",outcome="ok"} 3`,
		`runs_total{strategy="no-rewrite",outcome="error"} 1`,
		"# TYPE active_cursors gauge",
		"active_cursors 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.With("sql-rewrite", "ok").Value() != 3 {
		t.Fatal("counter read-back broken")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("run_seconds", "Run latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // first bucket
	h.Observe(0.05)  // second
	h.Observe(0.5)   // third
	h.Observe(5)     // overflows to +Inf only

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`run_seconds_bucket{le="0.01"} 1`,
		`run_seconds_bucket{le="0.1"} 2`,
		`run_seconds_bucket{le="1"} 3`,
		`run_seconds_bucket{le="+Inf"} 4`,
		`run_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if s := h.Sum(); s < 5.5 || s > 5.6 {
		t.Fatalf("histogram sum = %v", s)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("c_total", "c")
	b := r.NewCounter("c_total", "c")
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registration must return the same series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("schema mismatch must panic")
		}
	}()
	r.NewGauge("c_total", "now a gauge")
}

func TestConcurrentRegistryWrites(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("work_total", "", "kind")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := []string{"a", "b"}[i%2]
			c := cv.With(kind)
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := cv.With("a").Value() + cv.With("b").Value(); got != 8000 {
		t.Fatalf("lost counter updates: %d", got)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("hits_total", "hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Fatalf("handler output missing counter: %q", string(buf[:n]))
	}
}

// BenchmarkNilSpanOps measures the nil-trace fast path: the exact span
// operations an untraced Run performs must stay at pointer-check cost.
func BenchmarkNilSpanOps(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("run")
		sp := root.Start("compile")
		sp.End()
		at := root.Start("attempt")
		at.Observe(0)
		at.AddRowsOut(1)
		at.End()
		root.End()
	}
}

// BenchmarkTracedSpanOps is the same sequence with a live trace, for the
// overhead comparison in BENCH_obs.json.
func BenchmarkTracedSpanOps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New()
		root := tr.Start("run")
		sp := root.Start("compile")
		sp.End()
		at := root.Start("attempt")
		at.Observe(0)
		at.AddRowsOut(1)
		at.End()
		root.End()
		tr.Release()
	}
}
