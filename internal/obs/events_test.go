package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testEvent() Event {
	return Event{
		Time:        time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC),
		TraceID:     "4bf92f3577b34da6a3ce929d0e0e4736",
		RequestID:   "4bf92f3577b34da6a3ce929d0e0e4736",
		Tenant:      "acme",
		Transform:   "paper",
		View:        "dept_emp",
		ViewVersion: 3,
		DataVersion: 17,
		SheetHash:   "ab12cd34",
		Outcome:     "ok",
		Status:      200,
		Cache:       "miss",
		Coalesce:    "leader",
		Strategy:    "unordered",
		AccessPath:  "index-probe",
		Rows:        51,
		GovTicks:    2,
		WalAppends:  1,
		WalFsyncs:   1,
		RunID:       9,
		TotalNS:     1234567,
		CompileNS:   111,
		ExecNS:      999,
	}
}

// TestAppendJSONMatchesEncodingJSON pins the hand-rolled NDJSON encoder to
// encoding/json's output byte for byte, across full, sparse, and
// escaping-hostile events. The omitempty elisions and HTML escaping must
// agree or the two encoders would drift apart silently.
func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	events := []Event{
		testEvent(),
		{Time: time.Now(), Tenant: "t", Outcome: "shed", Status: 429},
		{},
		{Time: time.Now().In(time.FixedZone("X", 3*3600)), Tenant: "héh\n<&>\"\\", Error: "bad \x01 control", Outcome: "error", Status: 500},
	}
	for i, ev := range events {
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got := ev.AppendJSON(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("event %d:\nAppendJSON: %s\njson.Marshal: %s", i, got, want)
		}
	}
}

// TestEventBusDeliversToSinks pushes events through the bus into an NDJSON
// sink and a ring, flushes, and checks both saw everything in order.
func TestEventBusDeliversToSinks(t *testing.T) {
	var buf bytes.Buffer
	nd := NewNDJSONSink(&buf)
	ring := NewRingSink(2)
	bus := NewEventBus(8, nil, nd, ring)
	defer bus.Close()

	for i := 0; i < 3; i++ {
		ev := testEvent()
		ev.Rows = int64(i)
		if !bus.Publish(ev) {
			t.Fatalf("publish %d rejected", i)
		}
	}
	bus.Flush()

	st := bus.Stats()
	if st.Published != 3 || st.Delivered != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 NDJSON lines, got %d:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		if ev.Rows != int64(i) || ev.Tenant != "acme" || ev.TraceID == "" {
			t.Fatalf("line %d round-tripped wrong: %+v", i, ev)
		}
	}
	// The capacity-2 ring keeps the newest two, newest first.
	recent := ring.Recent(0)
	if len(recent) != 2 || recent[0].Rows != 2 || recent[1].Rows != 1 {
		t.Fatalf("ring = %+v", recent)
	}
	if one := ring.Recent(1); len(one) != 1 || one[0].Rows != 2 {
		t.Fatalf("Recent(1) = %+v", one)
	}
}

// gatedSink blocks each Emit until released, so a test can hold the
// dispatcher mid-delivery and fill the bus buffer deterministically.
type gatedSink struct {
	started chan struct{} // receives one token when an Emit begins
	release chan struct{} // each Emit consumes one token to proceed
	got     []Event
	mu      sync.Mutex
}

func (s *gatedSink) Emit(ev Event) {
	s.started <- struct{}{}
	<-s.release
	s.mu.Lock()
	s.got = append(s.got, ev)
	s.mu.Unlock()
}

// TestEventBusOverflowDropsDeterministic stalls the dispatcher inside a sink,
// fills the buffer exactly, and checks the next Publish is rejected, counted,
// and reported through the onDrop hook — while every accepted event is still
// delivered once the sink unblocks. No sleeps, no racing on goroutine
// scheduling: the gate makes the buffer state exact.
func TestEventBusOverflowDropsDeterministic(t *testing.T) {
	gate := &gatedSink{started: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	drops := 0
	bus := NewEventBus(2, func() { drops++ }, gate)
	defer bus.Close()

	// First event: wait until the dispatcher is blocked inside Emit. The
	// buffer is now empty and the dispatcher is occupied.
	if !bus.Publish(testEvent()) {
		t.Fatal("first publish rejected")
	}
	<-gate.started

	// Fill the 2-slot buffer while the dispatcher is stuck.
	for i := 0; i < 2; i++ {
		if !bus.Publish(testEvent()) {
			t.Fatalf("publish into free buffer slot %d rejected", i)
		}
	}
	// Buffer full: this one must be dropped, not blocked.
	if bus.Publish(testEvent()) {
		t.Fatal("publish into full buffer accepted")
	}
	if drops != 1 {
		t.Fatalf("onDrop fired %d times, want 1", drops)
	}
	if st := bus.Stats(); st.Published != 3 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Unblock the sink; everything accepted must still arrive.
	for i := 0; i < 3; i++ {
		gate.release <- struct{}{}
	}
	// The dispatcher consumes started tokens as it processes the rest.
	for i := 0; i < 2; i++ {
		<-gate.started
	}
	bus.Flush()
	if st := bus.Stats(); st.Delivered != 3 || st.Dropped != 1 {
		t.Fatalf("stats after flush = %+v", st)
	}
	gate.mu.Lock()
	n := len(gate.got)
	gate.mu.Unlock()
	if n != 3 {
		t.Fatalf("sink saw %d events, want 3", n)
	}
}

// TestEventBusNilAndClosed: a nil bus is a silent sink; a closed bus counts
// drops; Close is idempotent.
func TestEventBusNilAndClosed(t *testing.T) {
	var nilBus *EventBus
	if nilBus.Publish(testEvent()) {
		t.Fatal("nil bus accepted an event")
	}
	nilBus.Flush()
	nilBus.Close()
	if st := nilBus.Stats(); st != (EventBusStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}

	bus := NewEventBus(4, nil, NewNDJSONSink(io.Discard))
	if !bus.Publish(testEvent()) {
		t.Fatal("publish rejected")
	}
	bus.Close()
	bus.Close() // idempotent
	if bus.Publish(testEvent()) {
		t.Fatal("closed bus accepted an event")
	}
	st := bus.Stats()
	if st.Delivered != 1 || st.Dropped != 1 {
		t.Fatalf("stats after close = %+v", st)
	}
}

// TestOTLPSinkExport drives the OTLP-style exporter against a fake collector
// and checks the envelope shape, batching, trace IDs, and counters.
func TestOTLPSinkExport(t *testing.T) {
	var mu sync.Mutex
	var bodies [][]byte
	coll := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, b)
		mu.Unlock()
	}))
	defer coll.Close()

	sink := NewOTLPSink(coll.URL, 2)
	for i := 0; i < 3; i++ {
		ev := testEvent()
		ev.Rows = int64(i)
		sink.Emit(ev) // third event sits in the batch until Flush
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Exported(); got != 3 {
		t.Fatalf("Exported() = %d, want 3", got)
	}
	if got := sink.Errors(); got != 0 {
		t.Fatalf("Errors() = %d, want 0", got)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 {
		t.Fatalf("collector saw %d posts, want 2 (batch of 2 + flush of 1)", len(bodies))
	}
	var env struct {
		ResourceLogs []struct {
			ScopeLogs []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				LogRecords []struct {
					TimeUnixNano string `json:"timeUnixNano"`
					TraceID      string `json:"traceId"`
					Body         struct {
						StringValue string `json:"stringValue"`
					} `json:"body"`
				} `json:"logRecords"`
			} `json:"scopeLogs"`
		} `json:"resourceLogs"`
	}
	if err := json.Unmarshal(bodies[0], &env); err != nil {
		t.Fatalf("first payload does not parse: %v", err)
	}
	recs := env.ResourceLogs[0].ScopeLogs[0].LogRecords
	if len(recs) != 2 {
		t.Fatalf("first batch has %d records, want 2", len(recs))
	}
	if recs[0].TraceID != testEvent().TraceID {
		t.Fatalf("traceId = %q", recs[0].TraceID)
	}
	var body Event
	if err := json.Unmarshal([]byte(recs[0].Body.StringValue), &body); err != nil {
		t.Fatalf("log body is not event JSON: %v", err)
	}
	if body.Tenant != "acme" {
		t.Fatalf("body tenant = %q", body.Tenant)
	}

	// A failing collector counts errors, never retries or blocks.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	badSink := NewOTLPSink(bad.URL, 1)
	badSink.Emit(testEvent())
	if got := badSink.Errors(); got != 1 {
		t.Fatalf("bad-collector Errors() = %d, want 1", got)
	}
}

// TestRingSinkFiltered pins the filter contract: newest-first, capped at n,
// scanning past non-matching events until the ring is exhausted.
func TestRingSinkFiltered(t *testing.T) {
	ring := NewRingSink(8)
	for i := 0; i < 10; i++ {
		ev := testEvent()
		ev.Rows = int64(i)
		if i%2 == 0 {
			ev.Tenant = "beta"
		}
		ring.Emit(ev)
	}
	// Capacity 8 retains rows 2..9; "beta" events among them: 2, 4, 6, 8.
	beta := ring.RecentFiltered(0, func(ev Event) bool { return ev.Tenant == "beta" })
	if len(beta) != 4 || beta[0].Rows != 8 || beta[3].Rows != 2 {
		t.Fatalf("beta events = %+v", beta)
	}
	if got := ring.RecentFiltered(2, func(ev Event) bool { return ev.Tenant == "beta" }); len(got) != 2 || got[1].Rows != 6 {
		t.Fatalf("RecentFiltered(2) = %+v", got)
	}
	if got := ring.RecentFiltered(0, func(ev Event) bool { return false }); len(got) != 0 {
		t.Fatalf("no-match filter returned %+v", got)
	}
}

// TestRingSinkConcurrentReads hammers a bus-fed ring with concurrent
// publishers and concurrent console-style filtered reads. Run under -race
// (the verify chain does) this is the data-race contract for the /events
// endpoint reading while the dispatcher writes.
func TestRingSinkConcurrentReads(t *testing.T) {
	ring := NewRingSink(64)
	bus := NewEventBus(256, nil, ring)
	defer bus.Close()

	const publishers, perPublisher, readers = 4, 200, 4
	var pubWG, readWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPublisher; i++ {
				ev := testEvent()
				ev.Rows = int64(p*perPublisher + i)
				bus.Publish(ev)
			}
		}(p)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := ring.RecentFiltered(10, func(ev Event) bool { return ev.Rows%2 == 0 })
				if len(got) > 10 {
					t.Errorf("RecentFiltered(10) returned %d events", len(got))
					return
				}
				for _, ev := range got {
					if ev.Rows%2 != 0 {
						t.Errorf("filter leaked event %+v", ev)
						return
					}
				}
			}
		}()
	}
	// Publishers finish, the dispatcher drains, then readers stop.
	pubWG.Wait()
	bus.Flush()
	close(stop)
	readWG.Wait()
	if got := len(ring.Recent(0)); got != 64 {
		t.Fatalf("full ring holds %d events, want 64", got)
	}
}
