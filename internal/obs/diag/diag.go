// Package diag is the engine's autonomous diagnosis subsystem: a detector
// framework that watches the observability layer's own signals (metrics,
// wide events, the Go runtime) for anomalies, and a flight recorder that —
// when a detector fires — captures a complete diagnostic bundle of what the
// process was doing at that moment. The point is operational: a transient
// p95 spike or a WAL fsync stall at 3am leaves behind a bundle an operator
// can read in the morning, instead of a request to reproduce the incident.
//
// The pieces compose bottom-up:
//
//   - Detector: one rule evaluated against its own trailing state — a
//     counter delta, a histogram-tail delta, a windowed quantile against a
//     trailing baseline. Firing yields typed Anomaly records.
//   - Monitor: runs the detectors on a ticker AND opportunistically on wide-
//     event publish (it is an obs.EventSink), retains a bounded anomaly
//     ring for the console's /debug/anomalies page, and hands each anomaly
//     to a callback — in production, the Recorder's debounced trigger.
//   - Recorder (bundle.go): captures bundles under a diagnostics directory
//     with bounded retention, debounced so an anomaly storm produces one
//     bundle, not hundreds.
//
// Everything is pull-cheap: detectors read instruments that already exist;
// the steady-state cost is a handful of atomic loads per tick plus one
// latency offer per published event.
package diag

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Severity grades an anomaly. Two levels are enough: warn means "look when
// convenient", critical means "a bundle was worth capturing".
const (
	SeverityWarn     = "warn"
	SeverityCritical = "critical"
)

// Anomaly is one typed detector firing — the substrate adaptive subsystems
// (and the console) consume. Value is the observed signal, Baseline the
// trailing baseline or configured bound it breached.
type Anomaly struct {
	Time     time.Time `json:"time"`
	Detector string    `json:"detector"`
	Severity string    `json:"severity"`
	Value    float64   `json:"value"`
	Baseline float64   `json:"baseline,omitempty"`
	Detail   string    `json:"detail"`
}

// Detector is one rule evaluator. Check is called from a single goroutine
// at a time (the monitor serializes ticker and event-publish evaluations),
// so implementations keep trailing state without locking unless they are
// also fed from other goroutines (e.g. LatencySpikeDetector.Offer).
type Detector interface {
	Name() string
	Check(now time.Time) []Anomaly
}

// Diag instruments, on the shared default registry like every other layer.
var (
	mAnomalies = obs.Default.NewCounterVec("xsltdb_diag_anomalies_total",
		"Anomalies fired, by detector.", "detector")
	mBundles = obs.Default.NewCounterVec("xsltdb_diag_bundles_total",
		"Diagnostic bundles captured, by trigger (detector name or manual).", "trigger")
	mBundlesSuppressed = obs.Default.NewCounter("xsltdb_diag_bundles_suppressed_total",
		"Bundle triggers suppressed by the debounce window.")
	mBundleErrors = obs.Default.NewCounter("xsltdb_diag_bundle_errors_total",
		"Bundle sections that failed to capture (the bundle is still written without them).")
)

// MonitorConfig wires a Monitor. Zero values default sanely.
type MonitorConfig struct {
	// Interval is the ticker period for background evaluation (default 5s).
	// <= 0 with Start never ticking means detectors only run on event
	// publish or explicit Poll — what deterministic tests want.
	Interval time.Duration
	// Ring bounds the retained anomaly records (default 128).
	Ring int
	// Now substitutes the clock (tests); nil uses time.Now.
	Now func() time.Time
	// OnAnomaly receives every fired anomaly — production wires it to
	// Recorder.TryCapture. Called from the evaluating goroutine; must not
	// block for long (the event-bus dispatcher may be the evaluator).
	OnAnomaly func(Anomaly)
}

// Monitor runs detectors and retains their anomalies. It is an
// obs.EventSink: attached to the serving layer's event bus it feeds
// latency observers and re-evaluates detectors on publish, so a burst of
// bad requests is noticed at event speed rather than at the next tick.
type Monitor struct {
	cfg       MonitorConfig
	detectors []Detector
	observers []EventObserver

	// evalMu serializes detector evaluation between the ticker goroutine
	// and event-publish calls; lastEval rate-limits publish-driven
	// evaluations to one per interval.
	evalMu   sync.Mutex
	lastEval atomic.Int64 // unix nanos of the last evaluation

	mu   sync.Mutex
	ring []Anomaly
	next uint64

	startOnce sync.Once
	closeOnce sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// EventObserver is implemented by detectors that consume wide events (the
// latency-spike detector): the monitor feeds every event it sees to every
// observer before evaluating.
type EventObserver interface {
	ObserveEvent(ev obs.Event)
}

// NewMonitor builds a monitor over the given detectors. Detectors that also
// implement EventObserver are fed each published event.
func NewMonitor(cfg MonitorConfig, detectors ...Detector) *Monitor {
	if cfg.Interval == 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 128
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	m := &Monitor{
		cfg:       cfg,
		detectors: detectors,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, d := range detectors {
		if o, ok := d.(EventObserver); ok {
			m.observers = append(m.observers, o)
		}
	}
	return m
}

// Start launches the background ticker (no-op when Interval < 0). Idempotent.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.startOnce.Do(func() {
		if m.cfg.Interval < 0 {
			close(m.done)
			return
		}
		go m.loop()
	})
}

func (m *Monitor) loop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Poll()
		case <-m.quit:
			return
		}
	}
}

// Close stops the ticker. Idempotent; safe before Start.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.closeOnce.Do(func() {
		close(m.quit)
	})
	m.startOnce.Do(func() { close(m.done) }) // never started: nothing to wait for
	<-m.done
}

// Poll evaluates every detector once, records fired anomalies, and invokes
// the OnAnomaly callback for each. Safe to call concurrently; evaluations
// serialize.
func (m *Monitor) Poll() {
	if m == nil {
		return
	}
	m.evalMu.Lock()
	defer m.evalMu.Unlock()
	now := m.cfg.Now()
	m.lastEval.Store(now.UnixNano())
	for _, d := range m.detectors {
		for _, a := range d.Check(now) {
			if a.Time.IsZero() {
				a.Time = now
			}
			if a.Detector == "" {
				a.Detector = d.Name()
			}
			if a.Severity == "" {
				a.Severity = SeverityWarn
			}
			m.record(a)
			mAnomalies.With(a.Detector).Inc()
			if m.cfg.OnAnomaly != nil {
				m.cfg.OnAnomaly(a)
			}
		}
	}
}

// Emit implements obs.EventSink: feed event observers, then re-evaluate the
// detectors if at least one interval has passed since the last evaluation —
// so detectors run "on event publish" without an anomaly storm evaluating
// them on every single request.
func (m *Monitor) Emit(ev obs.Event) {
	if m == nil {
		return
	}
	for _, o := range m.observers {
		o.ObserveEvent(ev)
	}
	last := m.lastEval.Load()
	if m.cfg.Now().Sub(time.Unix(0, last)) >= m.cfg.Interval {
		m.Poll()
	}
}

func (m *Monitor) record(a Anomaly) {
	m.mu.Lock()
	if len(m.ring) < m.cfg.Ring {
		m.ring = append(m.ring, a)
	} else {
		m.ring[m.next%uint64(m.cfg.Ring)] = a
	}
	m.next++
	m.mu.Unlock()
}

// Anomalies returns up to n retained anomalies, newest first (n <= 0
// returns all). Nil-safe.
func (m *Monitor) Anomalies(n int) []Anomaly {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	have := len(m.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Anomaly, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m.ring[(m.next-1-uint64(i))%uint64(m.cfg.Ring)])
	}
	return out
}

// AnomaliesPage is the console's /debug/anomalies payload.
type AnomaliesPage struct {
	Detectors []string  `json:"detectors"`
	Recent    []Anomaly `json:"recent"`
}

// Page snapshots the monitor for the console: the installed detector names
// and the most recent anomalies, newest first.
func (m *Monitor) Page(n int) AnomaliesPage {
	if m == nil {
		return AnomaliesPage{}
	}
	names := make([]string, 0, len(m.detectors))
	for _, d := range m.detectors {
		names = append(names, d.Name())
	}
	return AnomaliesPage{Detectors: names, Recent: m.Anomalies(n)}
}
