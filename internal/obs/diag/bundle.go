package diag

// The flight recorder: Capture atomically snapshots everything an operator
// needs to explain "what was the system doing just now" into one timestamped
// bundle directory — goroutine and heap profiles, the full metrics
// exposition, the recent wide-event ring, run-history aggregates and slowest
// runs, plan-cache entries, the misestimate log, WAL/recovery state, and the
// anomaly ring that triggered the capture.
//
// The recorder is deliberately self-limiting, because a diagnosis subsystem
// that can take the server down is worse than none:
//
//   - Triggers are debounced: within Debounce of the last capture,
//     TryCapture refuses (counted in bundles_suppressed_total), so an
//     anomaly storm costs one bundle.
//   - Profile collection is time-boxed: a wedged profile write abandons the
//     section after ProfileTimeout instead of hanging the trigger path.
//   - The event excerpt is capped at MaxEvents; every section failure is
//     counted in xsltdb_diag_bundle_errors_total and recorded in meta.json,
//     and the bundle is still written with the sections that succeeded.
//   - Retention is bounded: after each capture, bundles beyond MaxBundles
//     are removed oldest-first.
//
// Bundles are written to a temp directory and renamed into place, so a
// reader never sees a half-written bundle.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// RecorderConfig wires a Recorder. Dir is required.
type RecorderConfig struct {
	// Dir is the diagnostics directory bundles are written under
	// (created if missing).
	Dir string
	// MaxBundles bounds retention (default 8); older bundles are removed.
	MaxBundles int
	// Debounce is the minimum gap between triggered captures (default 1m).
	Debounce time.Duration
	// ProfileTimeout bounds each profile collection (default 2s).
	ProfileTimeout time.Duration
	// MaxEvents caps the wide-event excerpt per bundle (default 256).
	MaxEvents int
	// Now substitutes the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Sources are the data feeds a bundle captures. Any nil field skips its
// section. The funcs return `any` so diag stays decoupled from the engine
// and serving packages that feed it.
type Sources struct {
	// Registry is rendered in full as metrics.prom.
	Registry *obs.Registry
	// Events returns up to n recent wide events (the console ring).
	Events func(n int) any
	// Runs returns run-history state: recent runs, per-plan aggregates
	// with slowest runs.
	Runs func() any
	// Plans returns plan-cache entries.
	Plans func() any
	// Misestimates returns the cardinality misestimate log.
	Misestimates func() any
	// WAL returns WAL/recovery stats.
	WAL func() any
	// Anomalies returns the monitor's recent anomaly records.
	Anomalies func() any
}

// Recorder captures diagnostic bundles. Construct with NewRecorder.
type Recorder struct {
	cfg RecorderConfig
	src Sources

	mu   sync.Mutex
	last time.Time
}

// NewRecorder validates cfg, creates the diagnostics directory, and returns
// a recorder.
func NewRecorder(cfg RecorderConfig, src Sources) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("diag: RecorderConfig.Dir is required")
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = time.Minute
	}
	if cfg.ProfileTimeout <= 0 {
		cfg.ProfileTimeout = 2 * time.Second
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diag: %w", err)
	}
	return &Recorder{cfg: cfg, src: src}, nil
}

// TryCapture is the debounced trigger detectors use: it captures a bundle
// unless one was captured less than Debounce ago, in which case it refuses
// (counted) and returns ok=false. Nil-safe.
func (r *Recorder) TryCapture(trigger string) (dir string, ok bool) {
	if r == nil {
		return "", false
	}
	r.mu.Lock()
	now := r.cfg.Now()
	if !r.last.IsZero() && now.Sub(r.last) < r.cfg.Debounce {
		r.mu.Unlock()
		mBundlesSuppressed.Inc()
		return "", false
	}
	r.last = now
	r.mu.Unlock()
	dir, err := r.capture(trigger, now)
	if err != nil {
		return "", false
	}
	return dir, true
}

// Capture writes a bundle immediately, bypassing the debounce — the
// console's on-demand POST /debug/bundle. It still advances the debounce
// clock so an operator capture quiets the automatic trigger too.
func (r *Recorder) Capture(trigger string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("diag: recorder disabled")
	}
	r.mu.Lock()
	now := r.cfg.Now()
	r.last = now
	r.mu.Unlock()
	return r.capture(trigger, now)
}

// bundleMeta is the bundle's meta.json: identity plus a per-section outcome
// map, so a bundle read cold still says which sections are trustworthy.
type bundleMeta struct {
	Time       time.Time         `json:"time"`
	Trigger    string            `json:"trigger"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Goroutines int               `json:"goroutines"`
	PID        int               `json:"pid"`
	Sections   map[string]string `json:"sections"` // file -> "ok" | error text
}

func (r *Recorder) capture(trigger string, now time.Time) (string, error) {
	name := "bundle-" + now.UTC().Format("20060102T150405.000000000Z") + "-" + sanitizeTrigger(trigger)
	final := filepath.Join(r.cfg.Dir, name)
	tmp := filepath.Join(r.cfg.Dir, ".tmp-"+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		mBundleErrors.Inc()
		return "", fmt.Errorf("diag: %w", err)
	}
	meta := bundleMeta{
		Time: now, Trigger: trigger,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Goroutines: runtime.NumGoroutine(),
		PID:        os.Getpid(),
		Sections:   map[string]string{},
	}

	section := func(file string, write func() ([]byte, error)) {
		b, err := write()
		if err == nil {
			err = os.WriteFile(filepath.Join(tmp, file), b, 0o644)
		}
		if err != nil {
			mBundleErrors.Inc()
			meta.Sections[file] = err.Error()
			return
		}
		meta.Sections[file] = "ok"
	}
	jsonSection := func(file string, fn func() any) {
		if fn == nil {
			return
		}
		section(file, func() ([]byte, error) { return json.MarshalIndent(fn(), "", "  ") })
	}

	section("goroutines.txt", func() ([]byte, error) {
		return collectProfile("goroutine", 2, r.cfg.ProfileTimeout)
	})
	section("heap.pprof", func() ([]byte, error) {
		return collectProfile("heap", 0, r.cfg.ProfileTimeout)
	})
	if r.src.Registry != nil {
		section("metrics.prom", func() ([]byte, error) {
			var buf bytes.Buffer
			_, err := r.src.Registry.WriteTo(&buf)
			return buf.Bytes(), err
		})
	}
	if r.src.Events != nil {
		jsonSection("events.json", func() any { return r.src.Events(r.cfg.MaxEvents) })
	}
	jsonSection("runs.json", r.src.Runs)
	jsonSection("plans.json", r.src.Plans)
	jsonSection("misestimates.json", r.src.Misestimates)
	jsonSection("wal.json", r.src.WAL)
	jsonSection("anomalies.json", r.src.Anomalies)

	section("meta.json", func() ([]byte, error) { return json.MarshalIndent(meta, "", "  ") })

	if err := os.Rename(tmp, final); err != nil {
		mBundleErrors.Inc()
		_ = os.RemoveAll(tmp)
		return "", fmt.Errorf("diag: %w", err)
	}
	mBundles.With(sanitizeTrigger(trigger)).Inc()
	r.enforceRetention()
	return final, nil
}

// collectProfile renders a runtime profile with a hard time box: a wedged
// write abandons the section (the goroutine finishes into its own buffer
// and is discarded) instead of hanging the capture.
func collectProfile(name string, debug int, timeout time.Duration) ([]byte, error) {
	p := pprof.Lookup(name)
	if p == nil {
		return nil, fmt.Errorf("no %s profile", name)
	}
	type result struct {
		b   []byte
		err error
	}
	ch := make(chan result, 1)
	go func() {
		var buf bytes.Buffer
		err := p.WriteTo(&buf, debug)
		ch <- result{buf.Bytes(), err}
	}()
	select {
	case res := <-ch:
		return res.b, res.err
	case <-time.After(timeout):
		return nil, fmt.Errorf("%s profile timed out after %s", name, timeout)
	}
}

// BundleInfo is one retained bundle, for the console's GET /debug/bundle.
type BundleInfo struct {
	Name    string    `json:"name"`
	Path    string    `json:"path"`
	ModTime time.Time `json:"mod_time"`
}

// Bundles lists retained bundles, newest first. Nil-safe.
func (r *Recorder) Bundles() []BundleInfo {
	if r == nil {
		return nil
	}
	names := r.bundleNames()
	out := make([]BundleInfo, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		info := BundleInfo{Name: names[i], Path: filepath.Join(r.cfg.Dir, names[i])}
		if fi, err := os.Stat(info.Path); err == nil {
			info.ModTime = fi.ModTime()
		}
		out = append(out, info)
	}
	return out
}

// bundleNames lists bundle directory names, oldest first (names embed a
// sortable UTC timestamp).
func (r *Recorder) bundleNames() []string {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// enforceRetention removes the oldest bundles beyond MaxBundles.
func (r *Recorder) enforceRetention() {
	names := r.bundleNames()
	for len(names) > r.cfg.MaxBundles {
		_ = os.RemoveAll(filepath.Join(r.cfg.Dir, names[0]))
		names = names[1:]
	}
}

// sanitizeTrigger folds a trigger label into a filesystem- and
// metric-label-safe token.
func sanitizeTrigger(s string) string {
	if s == "" {
		return "manual"
	}
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteRune('-')
		}
	}
	return b.String()
}
