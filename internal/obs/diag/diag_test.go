package diag

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a manually-advanced clock for deterministic debounce tests.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// firingDetector fires one anomaly on every check.
type firingDetector struct{ fired int }

func (d *firingDetector) Name() string { return "always-fires" }
func (d *firingDetector) Check(now time.Time) []Anomaly {
	d.fired++
	return []Anomaly{{Severity: SeverityCritical, Value: float64(d.fired), Detail: "test"}}
}

// TestDebounceOneBundle is the core debounce contract: N threshold crossings
// inside one debounce window produce exactly one bundle; crossing the window
// boundary produces the next. Everything runs on a fake clock.
func TestDebounceOneBundle(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	rec, err := NewRecorder(RecorderConfig{
		Dir: dir, Debounce: time.Minute, Now: clock.Now,
	}, Sources{})
	if err != nil {
		t.Fatal(err)
	}
	suppressed0 := readCounter(t, obs.Default, "xsltdb_diag_bundles_suppressed_total")

	m := NewMonitor(MonitorConfig{
		Interval: -1, Now: clock.Now,
		OnAnomaly: func(a Anomaly) { rec.TryCapture(a.Detector) },
	}, &firingDetector{})
	defer m.Close()

	// Five crossings, 5s apart, all inside the 1-minute debounce window.
	for i := 0; i < 5; i++ {
		m.Poll()
		clock.Advance(5 * time.Second)
	}
	if got := len(rec.Bundles()); got != 1 {
		t.Fatalf("bundles after 5 anomalies in debounce window = %d, want exactly 1", got)
	}
	if got := readCounter(t, obs.Default, "xsltdb_diag_bundles_suppressed_total") - suppressed0; got != 4 {
		t.Errorf("suppressed = %v, want 4", got)
	}

	// Past the window the next anomaly captures again.
	clock.Advance(time.Minute)
	m.Poll()
	if got := len(rec.Bundles()); got != 2 {
		t.Fatalf("bundles after debounce window elapsed = %d, want 2", got)
	}

	// The monitor retained every anomaly regardless of bundle suppression.
	if got := len(m.Anomalies(0)); got != 6 {
		t.Errorf("retained anomalies = %d, want 6", got)
	}
	page := m.Page(3)
	if len(page.Detectors) != 1 || page.Detectors[0] != "always-fires" {
		t.Errorf("page detectors = %v", page.Detectors)
	}
	if len(page.Recent) != 3 || page.Recent[0].Value != 6 {
		t.Errorf("page recent = %+v, want newest-first with Value 6 on top", page.Recent)
	}
}

// TestBundleSections captures one bundle with every source wired and checks
// the sections exist, meta.json records them all ok, and the event excerpt
// is capped at MaxEvents.
func TestBundleSections(t *testing.T) {
	reg := obs.NewRegistry()
	reg.NewCounter("xsltdb_test_total", "test counter").Inc()
	dir := t.TempDir()
	rec, err := NewRecorder(RecorderConfig{Dir: dir, MaxEvents: 3}, Sources{
		Registry: reg,
		Events: func(n int) any {
			if n != 3 {
				t.Errorf("events source asked for %d events, want MaxEvents=3", n)
			}
			return []string{"e1", "e2", "e3"}
		},
		Runs:         func() any { return map[string]int{"recent": 1} },
		Plans:        func() any { return []string{"plan"} },
		Misestimates: func() any { return nil },
		WAL:          func() any { return map[string]int64{"appends": 7} },
		Anomalies:    func() any { return []Anomaly{{Detector: "x"}} },
	})
	if err != nil {
		t.Fatal(err)
	}
	bdir, err := rec.Capture("unit test/Trigger")
	if err != nil {
		t.Fatal(err)
	}
	// The trigger label is sanitized into the directory name.
	if want := "unit-test-trigger"; filepath.Base(bdir)[len(filepath.Base(bdir))-len(want):] != want {
		t.Errorf("bundle dir %q does not end in sanitized trigger %q", bdir, want)
	}
	want := []string{
		"meta.json", "goroutines.txt", "heap.pprof", "metrics.prom",
		"events.json", "runs.json", "plans.json", "misestimates.json",
		"wal.json", "anomalies.json",
	}
	for _, f := range want {
		if _, err := os.Stat(filepath.Join(bdir, f)); err != nil {
			t.Errorf("bundle missing section %s: %v", f, err)
		}
	}
	var meta struct {
		Trigger  string            `json:"trigger"`
		Sections map[string]string `json:"sections"`
	}
	b, err := os.ReadFile(filepath.Join(bdir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Trigger != "unit test/Trigger" {
		t.Errorf("meta trigger = %q", meta.Trigger)
	}
	for _, f := range want {
		if f == "meta.json" {
			continue // written last; records the others
		}
		if meta.Sections[f] != "ok" {
			t.Errorf("meta.json section %s = %q, want ok", f, meta.Sections[f])
		}
	}
	// metrics.prom is a real exposition of the provided registry.
	prom, _ := os.ReadFile(filepath.Join(bdir, "metrics.prom"))
	if !contains(string(prom), "xsltdb_test_total 1") {
		t.Errorf("metrics.prom missing test counter:\n%s", prom)
	}
	// No stray tmp dirs left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name()[0] == '.' {
			t.Errorf("leftover temp entry %s", e.Name())
		}
	}
}

// TestRetention captures past MaxBundles and checks the oldest are pruned.
func TestRetention(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	rec, err := NewRecorder(RecorderConfig{Dir: dir, MaxBundles: 3, Now: clock.Now}, Sources{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rec.Capture("r"); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second) // distinct timestamped names
	}
	bundles := rec.Bundles()
	if len(bundles) != 3 {
		t.Fatalf("retained %d bundles, want 3", len(bundles))
	}
	// Newest first, and the two oldest are gone.
	if bundles[0].Name < bundles[2].Name {
		t.Errorf("Bundles() not newest-first: %v", bundles)
	}
}

// TestCounterDeltaDetector: primes silently, fires on advance, quiet when flat.
func TestCounterDeltaDetector(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.NewCounter("xsltdb_trips_total", "t")
	c.Inc() // pre-existing total at attach time
	d := &CounterDeltaDetector{DetectorName: "trips", Registry: reg, Metric: "xsltdb_trips_total"}
	now := time.Now()
	if got := d.Check(now); got != nil {
		t.Fatalf("first check (priming) fired: %v", got)
	}
	if got := d.Check(now); got != nil {
		t.Fatalf("flat counter fired: %v", got)
	}
	c.Inc()
	c.Inc()
	got := d.Check(now)
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("delta check = %+v, want one anomaly with Value 2", got)
	}
	if got := d.Check(now); got != nil {
		t.Fatalf("post-delta flat check fired: %v", got)
	}
}

// TestGaugeBoundDetector: fires on crossing, holds while stuck, rearms below
// Bound/2.
func TestGaugeBoundDetector(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.NewGauge("xsltdb_age_seconds", "t")
	d := &GaugeBoundDetector{DetectorName: "age", Registry: reg, Metric: "xsltdb_age_seconds", Bound: 60}
	now := time.Now()
	g.Set(30)
	if got := d.Check(now); got != nil {
		t.Fatalf("under bound fired: %v", got)
	}
	g.Set(90)
	if got := d.Check(now); len(got) != 1 {
		t.Fatalf("crossing = %v, want one anomaly", got)
	}
	g.Set(95)
	if got := d.Check(now); got != nil {
		t.Fatalf("stuck over bound re-fired: %v", got)
	}
	g.Set(40) // below bound but above rearm (30): still armed-off
	if got := d.Check(now); got != nil {
		t.Fatalf("above rearm fired: %v", got)
	}
	g.Set(10) // below rearm: resets
	if got := d.Check(now); got != nil {
		t.Fatalf("rearm check fired: %v", got)
	}
	g.Set(70)
	if got := d.Check(now); len(got) != 1 {
		t.Fatalf("second crossing after rearm = %v, want one anomaly", got)
	}
}

// TestHistogramTailDetector: only new observations above the threshold fire.
func TestHistogramTailDetector(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.NewHistogram("xsltdb_fsync_seconds", "t", []float64{0.01, 0.1, 1})
	d := &HistogramTailDetector{DetectorName: "stall", Registry: reg,
		Metric: "xsltdb_fsync_seconds", Threshold: 0.1}
	now := time.Now()
	h.Observe(0.5) // pre-existing tail before priming
	if got := d.Check(now); got != nil {
		t.Fatalf("priming fired: %v", got)
	}
	h.Observe(0.01)
	h.Observe(0.05)
	if got := d.Check(now); got != nil {
		t.Fatalf("fast observations fired: %v", got)
	}
	h.Observe(0.3)
	h.Observe(0.7)
	got := d.Check(now)
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("stall check = %+v, want one anomaly with Value 2", got)
	}
}

// TestLatencySpikeDetector: baseline primes from healthy traffic, a spike
// over Factor x baseline fires, healthy readings keep absorbing.
func TestLatencySpikeDetector(t *testing.T) {
	d := &LatencySpikeDetector{DetectorName: "p95", WindowSize: 32, MinSamples: 16}
	now := time.Now()
	if got := d.Check(now); got != nil {
		t.Fatalf("empty window fired: %v", got)
	}
	for i := 0; i < 32; i++ {
		d.ObserveEvent(obs.Event{TotalNS: int64(2 * time.Millisecond)})
	}
	if got := d.Check(now); got != nil { // primes baseline at ~2ms
		t.Fatalf("baseline priming fired: %v", got)
	}
	if got := d.Check(now); got != nil {
		t.Fatalf("healthy window fired: %v", got)
	}
	for i := 0; i < 32; i++ {
		d.Offer(80 * time.Millisecond) // p95 40x baseline, over the 10ms floor
	}
	got := d.Check(now)
	if len(got) != 1 || got[0].Severity != SeverityCritical {
		t.Fatalf("spike check = %+v, want one critical anomaly", got)
	}
	if got[0].Baseline >= got[0].Value {
		t.Errorf("anomaly baseline %v >= value %v", got[0].Baseline, got[0].Value)
	}
}

// TestGoroutineSpikeDetector uses an injected counter to avoid depending on
// the real scheduler.
func TestGoroutineSpikeDetector(t *testing.T) {
	count := 100.0
	d := &GoroutineSpikeDetector{DetectorName: "g", Count: func() float64 { return count }}
	now := time.Now()
	if got := d.Check(now); got != nil {
		t.Fatalf("priming fired: %v", got)
	}
	count = 120
	if got := d.Check(now); got != nil {
		t.Fatalf("mild growth fired: %v", got)
	}
	count = 5000
	if got := d.Check(now); len(got) != 1 {
		t.Fatalf("spike = %v, want one anomaly", got)
	}
}

// TestMonitorEmitPolls: with a negative interval, every published event
// re-evaluates the detectors — the deterministic-test mode — and the
// latency observer is fed.
func TestMonitorEmitPolls(t *testing.T) {
	clock := newFakeClock()
	fd := &firingDetector{}
	ld := &LatencySpikeDetector{DetectorName: "lat"}
	m := NewMonitor(MonitorConfig{Interval: -1, Now: clock.Now}, fd, ld)
	defer m.Close()
	for i := 0; i < 3; i++ {
		m.Emit(obs.Event{TotalNS: int64(time.Millisecond)})
	}
	if fd.fired != 3 {
		t.Errorf("detector evaluated %d times over 3 events, want 3", fd.fired)
	}
	if _, n := ld.p95(); n != 3 {
		t.Errorf("latency observer saw %d samples, want 3", n)
	}
}

// TestStandardDetectors checks the stock set wires the expected rules.
func TestStandardDetectors(t *testing.T) {
	ds := StandardDetectors(obs.NewRegistry(), DetectorOptions{})
	want := map[string]bool{
		"latency-spike": true, "slo-burn": true, "breaker-trip": true,
		"wal-fsync-stall": true, "snapshot-pin-age": true,
		"event-drops": true, "goroutine-spike": true,
	}
	if len(ds) != len(want) {
		t.Fatalf("StandardDetectors returned %d detectors, want %d", len(ds), len(want))
	}
	for _, d := range ds {
		if !want[d.Name()] {
			t.Errorf("unexpected detector %q", d.Name())
		}
	}
}

func readCounter(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var total float64
	for _, sv := range reg.SeriesValues(name) {
		total += sv.Value
	}
	return total
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
