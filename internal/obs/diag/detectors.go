package diag

// The standard detector set and the generic rule evaluators they are built
// from. Each detector keeps trailing state — a previous counter reading, a
// previous histogram snapshot, an EMA baseline — so firing means "something
// changed", not "a cumulative total is nonzero". Detectors read instruments
// by exposition name through the registry's read-side lookups, so the set
// can watch any layer's signals without compile-time coupling to it.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// CounterDeltaDetector fires when a counter family's total (summed across
// all its series) advances by at least Min between checks. The first check
// primes the trailing reading without firing, so pre-existing totals at
// monitor attach time are not anomalies.
type CounterDeltaDetector struct {
	DetectorName string
	Registry     *obs.Registry
	Metric       string
	Min          int64 // default 1
	Severity     string

	primed bool
	last   float64
}

func (d *CounterDeltaDetector) Name() string { return d.DetectorName }

func (d *CounterDeltaDetector) Check(now time.Time) []Anomaly {
	var cur float64
	for _, sv := range d.Registry.SeriesValues(d.Metric) {
		cur += sv.Value
	}
	if !d.primed {
		d.primed, d.last = true, cur
		return nil
	}
	delta := cur - d.last
	d.last = cur
	min := d.Min
	if min <= 0 {
		min = 1
	}
	if delta < float64(min) {
		return nil
	}
	return []Anomaly{{
		Time: now, Detector: d.DetectorName, Severity: d.Severity,
		Value:  delta,
		Detail: fmt.Sprintf("%s advanced by %.0f since last check", d.Metric, delta),
	}}
}

// GaugeBoundDetector fires when any series of a gauge family exceeds Bound,
// with hysteresis per label tuple: it fires on the crossing, then stays
// quiet until the series drops back to Rearm (default Bound/2) — a stuck
// condition yields one anomaly, not one per tick.
type GaugeBoundDetector struct {
	DetectorName string
	Registry     *obs.Registry
	Metric       string
	Bound        float64
	Rearm        float64 // default Bound/2
	Severity     string

	active map[string]bool
}

func (d *GaugeBoundDetector) Name() string { return d.DetectorName }

func (d *GaugeBoundDetector) Check(now time.Time) []Anomaly {
	rearm := d.Rearm
	if rearm <= 0 {
		rearm = d.Bound / 2
	}
	if d.active == nil {
		d.active = map[string]bool{}
	}
	var out []Anomaly
	for _, sv := range d.Registry.SeriesValues(d.Metric) {
		key := labelKey(sv.Labels)
		switch {
		case sv.Value > d.Bound && !d.active[key]:
			d.active[key] = true
			out = append(out, Anomaly{
				Time: now, Detector: d.DetectorName, Severity: d.Severity,
				Value: sv.Value, Baseline: d.Bound,
				Detail: fmt.Sprintf("%s%s = %g over bound %g", d.Metric, labelSuffix(sv.Labels), sv.Value, d.Bound),
			})
		case sv.Value <= rearm && d.active[key]:
			delete(d.active, key)
		}
	}
	return out
}

// HistogramTailDetector fires when at least Min new observations landed
// above Threshold (a bucket bound of the watched histogram) since the last
// check — the rule behind the WAL fsync-stall detector: any fsync slower
// than the stall bound is an anomaly, however healthy the median is.
type HistogramTailDetector struct {
	DetectorName string
	Registry     *obs.Registry
	Metric       string
	Threshold    float64 // seconds; align with a bucket bound for exactness
	Min          int64   // default 1
	Severity     string

	primed   bool
	lastTail int64
}

func (d *HistogramTailDetector) Name() string { return d.DetectorName }

func (d *HistogramTailDetector) Check(now time.Time) []Anomaly {
	h, ok := d.Registry.FindHistogram(d.Metric)
	if !ok {
		return nil
	}
	tail := h.Snapshot().CountAbove(d.Threshold)
	if !d.primed {
		d.primed, d.lastTail = true, tail
		return nil
	}
	delta := tail - d.lastTail
	d.lastTail = tail
	min := d.Min
	if min <= 0 {
		min = 1
	}
	if delta < min {
		return nil
	}
	return []Anomaly{{
		Time: now, Detector: d.DetectorName, Severity: d.Severity,
		Value: float64(delta), Baseline: d.Threshold,
		Detail: fmt.Sprintf("%d observation(s) of %s above %gs since last check", delta, d.Metric, d.Threshold),
	}}
}

// LatencySpikeDetector watches a sliding window of recent request latencies
// (fed from wide events via ObserveEvent, or directly via Offer) and fires
// when the window's p95 exceeds Factor times the trailing baseline — an EMA
// of previous healthy p95 readings — and the absolute Floor. The baseline
// only absorbs non-anomalous readings, so a spike cannot normalize itself
// into the baseline while it is being reported.
type LatencySpikeDetector struct {
	DetectorName string
	Factor       float64       // default 3
	Floor        time.Duration // default 10ms
	MinSamples   int           // default 16
	WindowSize   int           // default 256

	mu     sync.Mutex
	ring   []float64 // seconds
	next   int
	filled int

	baseline float64 // EMA of healthy window p95s, seconds
}

func (d *LatencySpikeDetector) Name() string { return d.DetectorName }

// Offer records one request latency into the window.
func (d *LatencySpikeDetector) Offer(wall time.Duration) {
	d.mu.Lock()
	if d.ring == nil {
		n := d.WindowSize
		if n <= 0 {
			n = 256
		}
		d.ring = make([]float64, n)
	}
	d.ring[d.next] = wall.Seconds()
	d.next = (d.next + 1) % len(d.ring)
	if d.filled < len(d.ring) {
		d.filled++
	}
	d.mu.Unlock()
}

// ObserveEvent implements EventObserver: every published wide event feeds
// its total latency into the window.
func (d *LatencySpikeDetector) ObserveEvent(ev obs.Event) {
	if ev.TotalNS > 0 {
		d.Offer(time.Duration(ev.TotalNS))
	}
}

func (d *LatencySpikeDetector) p95() (float64, int) {
	d.mu.Lock()
	buf := make([]float64, d.filled)
	copy(buf, d.ring[:d.filled])
	d.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	return buf[(len(buf)*95)/100], len(buf)
}

func (d *LatencySpikeDetector) Check(now time.Time) []Anomaly {
	minSamples := d.MinSamples
	if minSamples <= 0 {
		minSamples = 16
	}
	factor := d.Factor
	if factor <= 1 {
		factor = 3
	}
	floor := d.Floor
	if floor <= 0 {
		floor = 10 * time.Millisecond
	}
	p95, n := d.p95()
	if n < minSamples {
		return nil
	}
	if d.baseline == 0 {
		d.baseline = p95
		return nil
	}
	if p95 > floor.Seconds() && p95 > factor*d.baseline {
		return []Anomaly{{
			Time: now, Detector: d.DetectorName, Severity: SeverityCritical,
			Value: p95, Baseline: d.baseline,
			Detail: fmt.Sprintf("window p95 %.1fms is %.1fx the trailing baseline %.1fms",
				p95*1e3, p95/d.baseline, d.baseline*1e3),
		}}
	}
	// Healthy reading: fold it into the trailing baseline.
	d.baseline = 0.8*d.baseline + 0.2*p95
	return nil
}

// GoroutineSpikeDetector fires when the process goroutine count exceeds
// Factor times its trailing EMA baseline and MinAbs — a leak or a stampede,
// not normal serving concurrency.
type GoroutineSpikeDetector struct {
	DetectorName string
	Factor       float64 // default 3
	MinAbs       float64 // default 200
	Count        func() float64

	baseline float64
}

func (d *GoroutineSpikeDetector) Name() string { return d.DetectorName }

func (d *GoroutineSpikeDetector) Check(now time.Time) []Anomaly {
	count := d.Count
	if count == nil {
		count = func() float64 { return float64(runtime.NumGoroutine()) }
	}
	factor := d.Factor
	if factor <= 1 {
		factor = 3
	}
	minAbs := d.MinAbs
	if minAbs <= 0 {
		minAbs = 200
	}
	cur := count()
	if d.baseline == 0 {
		d.baseline = cur
		return nil
	}
	if cur > minAbs && cur > factor*d.baseline {
		return []Anomaly{{
			Time: now, Detector: d.DetectorName, Severity: SeverityCritical,
			Value: cur, Baseline: d.baseline,
			Detail: fmt.Sprintf("%.0f goroutines, %.1fx the trailing baseline %.0f", cur, cur/d.baseline, d.baseline),
		}}
	}
	d.baseline = 0.8*d.baseline + 0.2*cur
	return nil
}

// DetectorOptions tunes StandardDetectors. Zero values default sanely.
type DetectorOptions struct {
	// LatencyFactor/LatencyFloor parameterize the p95 spike rule
	// (default 3x over a 10ms floor).
	LatencyFactor float64
	LatencyFloor  time.Duration
	// BurnBound is the SLO burn-rate bound in milli-units (default 2000 —
	// the error budget burning at twice its sustainable rate).
	BurnBound float64
	// WALStallThreshold is the fsync duration that counts as a stall
	// (default 100ms; align with a xsltdb_wal_fsync_seconds bucket bound).
	WALStallThreshold float64
	// PinAgeBound flags snapshot pins older than this (default 60s).
	PinAgeBound time.Duration
	// GoroutineFactor is the goroutine-spike multiple (default 3).
	GoroutineFactor float64
}

// StandardDetectors builds the engine's stock detector set over reg
// (normally obs.Default, where every layer registers its instruments):
//
//	latency-spike        window p95 vs trailing baseline (event-fed)
//	slo-burn             per-tenant burn rate over bound, with hysteresis
//	breaker-trip         any circuit-breaker trip since last check
//	wal-fsync-stall      fsync observations above the stall threshold
//	snapshot-pin-age     oldest MVCC pin older than bound
//	event-drops          wide events dropped at the full bus buffer
//	goroutine-spike      goroutine count vs trailing baseline
func StandardDetectors(reg *obs.Registry, o DetectorOptions) []Detector {
	if o.BurnBound <= 0 {
		o.BurnBound = 2000
	}
	if o.WALStallThreshold <= 0 {
		o.WALStallThreshold = 0.1
	}
	if o.PinAgeBound <= 0 {
		o.PinAgeBound = time.Minute
	}
	return []Detector{
		&LatencySpikeDetector{DetectorName: "latency-spike", Factor: o.LatencyFactor, Floor: o.LatencyFloor},
		&GaugeBoundDetector{DetectorName: "slo-burn", Registry: reg,
			Metric: "xsltd_slo_burn_rate_milli", Bound: o.BurnBound, Severity: SeverityCritical},
		&CounterDeltaDetector{DetectorName: "breaker-trip", Registry: reg,
			Metric: "xsltdb_breaker_trips_total", Severity: SeverityCritical},
		&HistogramTailDetector{DetectorName: "wal-fsync-stall", Registry: reg,
			Metric: "xsltdb_wal_fsync_seconds", Threshold: o.WALStallThreshold, Severity: SeverityCritical},
		&GaugeBoundDetector{DetectorName: "snapshot-pin-age", Registry: reg,
			Metric: "xsltdb_snapshot_pin_oldest_age_seconds", Bound: o.PinAgeBound.Seconds(), Severity: SeverityWarn},
		&CounterDeltaDetector{DetectorName: "event-drops", Registry: reg,
			Metric: "xsltd_events_dropped_total", Severity: SeverityWarn},
		&GoroutineSpikeDetector{DetectorName: "goroutine-spike", Factor: o.GoroutineFactor},
	}
}

func labelKey(labels []string) string {
	key := ""
	for _, l := range labels {
		key += l + "\x00"
	}
	return key
}

func labelSuffix(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return fmt.Sprintf("%q", labels)
}
