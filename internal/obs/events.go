package obs

// The wide-event pipeline: one structured event per served request, carrying
// everything needed to explain that request without joining log lines —
// identity (trace/request ID, tenant, transform, view and data versions),
// the serving-layer outcome (cache, coalesce role, shed reason), the engine
// outcome (strategy, access path, rows, governor ticks), WAL activity during
// the request, and the latency breakdown.
//
// Events flow through a bounded asynchronous bus: Publish never blocks —
// when the buffer is full the event is dropped and counted, because losing
// telemetry must never cost a caller latency. A single dispatcher goroutine
// drains the buffer into pluggable sinks (NDJSON, OTLP-style JSON export,
// and the console's in-memory ring). All EventBus methods are nil-safe, so
// a server with events disabled pays one pointer check per request.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one wide event: the full story of one served request. Fields are
// grouped identity → outcome → work → latency; zero-valued optional fields
// are elided from the JSON so NDJSON lines stay terse.
type Event struct {
	Time      time.Time `json:"time"`
	TraceID   string    `json:"trace_id,omitempty"`
	RequestID string    `json:"request_id,omitempty"`
	Tenant    string    `json:"tenant"`
	Transform string    `json:"transform,omitempty"`
	View      string    `json:"view,omitempty"`
	// ViewVersion and DataVersion pin which state of the database the
	// request saw (the same versions the result-cache key embeds).
	ViewVersion int    `json:"view_version,omitempty"`
	DataVersion int64  `json:"data_version,omitempty"`
	SheetHash   string `json:"sheet_hash,omitempty"`

	// Outcome is ok | cache-hit | shed | error; Status the HTTP status.
	Outcome string `json:"outcome"`
	Status  int    `json:"status"`
	// Cache (hit|miss), Coalesce (leader|follower) and ShedReason
	// (latency|quota) record the serving-layer decisions for this request.
	Cache      string `json:"cache,omitempty"`
	Coalesce   string `json:"coalesce,omitempty"`
	ShedReason string `json:"shed_reason,omitempty"`
	Error      string `json:"error,omitempty"`

	// Engine-side work (leader executions only; followers and cache hits
	// report rows without strategy detail).
	Strategy   string `json:"strategy,omitempty"`
	AccessPath string `json:"access_path,omitempty"`
	Rows       int64  `json:"rows"`
	GovTicks   int64  `json:"gov_ticks,omitempty"`
	// WalAppends/WalFsyncs are the process-wide WAL counter deltas across
	// the request — an attribution, exact only when this request is the
	// sole writer.
	WalAppends int64 `json:"wal_appends,omitempty"`
	WalFsyncs  int64 `json:"wal_fsyncs,omitempty"`
	// RunID joins the event to the run-history archive (/runs/<id>).
	RunID uint64 `json:"run_id,omitempty"`

	// Latency breakdown: total request wall time, with the engine's
	// compile and execute shares when the request actually ran.
	TotalNS   int64 `json:"total_ns"`
	CompileNS int64 `json:"compile_ns,omitempty"`
	ExecNS    int64 `json:"exec_ns,omitempty"`
}

// AppendJSON appends the event's JSON encoding to buf and returns the
// extended slice — byte-identical to encoding/json's output (same field
// order, omitempty elisions, and escaping) but allocation-free when buf has
// capacity. The NDJSON sink sits on the dispatcher goroutine behind every
// request's telemetry; hand-rolling the encoder keeps the event pipeline's
// serving overhead inside the bench-obs guard on small machines where the
// dispatcher shares a core with the serving workers.
func (e *Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"time":"`...)
	buf = e.Time.AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, '"')
	buf = appendStrOmit(buf, `"trace_id":`, e.TraceID)
	buf = appendStrOmit(buf, `"request_id":`, e.RequestID)
	buf = appendStr(buf, `"tenant":`, e.Tenant)
	buf = appendStrOmit(buf, `"transform":`, e.Transform)
	buf = appendStrOmit(buf, `"view":`, e.View)
	buf = appendIntOmit(buf, `"view_version":`, int64(e.ViewVersion))
	buf = appendIntOmit(buf, `"data_version":`, e.DataVersion)
	buf = appendStrOmit(buf, `"sheet_hash":`, e.SheetHash)
	buf = appendStr(buf, `"outcome":`, e.Outcome)
	buf = appendInt(buf, `"status":`, int64(e.Status))
	buf = appendStrOmit(buf, `"cache":`, e.Cache)
	buf = appendStrOmit(buf, `"coalesce":`, e.Coalesce)
	buf = appendStrOmit(buf, `"shed_reason":`, e.ShedReason)
	buf = appendStrOmit(buf, `"error":`, e.Error)
	buf = appendStrOmit(buf, `"strategy":`, e.Strategy)
	buf = appendStrOmit(buf, `"access_path":`, e.AccessPath)
	buf = appendInt(buf, `"rows":`, e.Rows)
	buf = appendIntOmit(buf, `"gov_ticks":`, e.GovTicks)
	buf = appendIntOmit(buf, `"wal_appends":`, e.WalAppends)
	buf = appendIntOmit(buf, `"wal_fsyncs":`, e.WalFsyncs)
	if e.RunID != 0 {
		buf = append(buf, `,"run_id":`...)
		buf = strconv.AppendUint(buf, e.RunID, 10)
	}
	buf = appendInt(buf, `"total_ns":`, e.TotalNS)
	buf = appendIntOmit(buf, `"compile_ns":`, e.CompileNS)
	buf = appendIntOmit(buf, `"exec_ns":`, e.ExecNS)
	return append(buf, '}')
}

func appendStr(buf []byte, key, v string) []byte {
	buf = append(buf, ',')
	buf = append(buf, key...)
	return appendJSONString(buf, v)
}

func appendStrOmit(buf []byte, key, v string) []byte {
	if v == "" {
		return buf
	}
	return appendStr(buf, key, v)
}

func appendInt(buf []byte, key string, v int64) []byte {
	buf = append(buf, ',')
	buf = append(buf, key...)
	return strconv.AppendInt(buf, v, 10)
}

func appendIntOmit(buf []byte, key string, v int64) []byte {
	if v == 0 {
		return buf
	}
	return appendInt(buf, key, v)
}

// appendJSONString quotes s the way encoding/json does. The fast path covers
// plain printable ASCII without characters json escapes ('"', '\\', '<',
// '>', '&'); anything else defers to encoding/json so escaping stays
// byte-identical.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			b, err := json.Marshal(s)
			if err != nil {
				return append(buf, `""`...)
			}
			return append(buf, b...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// EventSink consumes delivered events. Emit is always called from the bus's
// single dispatcher goroutine, so sinks need no locking against each other —
// only against their own external readers. A sink must not block
// indefinitely: it delays the shared dispatcher, and a stalled dispatcher
// turns into counted drops upstream (never into blocked requests).
type EventSink interface {
	Emit(Event)
}

// flushableSink is implemented by sinks that buffer (the OTLP exporter);
// the bus flushes them on EventBus.Flush and Close.
type flushableSink interface {
	Flush() error
}

// busMsg is one dispatcher work item: an event, or a flush token (ack is
// closed once everything queued before it has been delivered and sinks are
// flushed).
type busMsg struct {
	ev  Event
	ack chan struct{}
}

// EventBus is the bounded async fan-out. Construct with NewEventBus; a nil
// *EventBus drops everything silently and never blocks, so callers thread
// it unconditionally.
type EventBus struct {
	ch    chan busMsg
	sinks []EventSink

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	onDrop    func()

	closed    atomic.Bool
	closeOnce sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// DefaultEventBuffer bounds the bus when NewEventBus is given no size.
const DefaultEventBuffer = 1024

// NewEventBus starts a bus with the given buffer size (<= 0 uses
// DefaultEventBuffer) draining into sinks. onDrop, when non-nil, fires once
// per dropped event (the hook the serving layer wires to its drop counter).
func NewEventBus(buffer int, onDrop func(), sinks ...EventSink) *EventBus {
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	b := &EventBus{
		ch:     make(chan busMsg, buffer),
		sinks:  sinks,
		onDrop: onDrop,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// Publish offers one event to the bus and returns whether it was accepted.
// It NEVER blocks: with the buffer full (or the bus closed or nil) the
// event is dropped and counted instead.
func (b *EventBus) Publish(ev Event) bool {
	if b == nil {
		return false
	}
	if b.closed.Load() {
		b.drop()
		return false
	}
	select {
	case b.ch <- busMsg{ev: ev}:
		b.published.Add(1)
		return true
	default:
		b.drop()
		return false
	}
}

func (b *EventBus) drop() {
	b.dropped.Add(1)
	if b.onDrop != nil {
		b.onDrop()
	}
}

// Flush blocks until every event published before the call has been handed
// to every sink and buffering sinks have flushed. Tests and shutdown paths
// use it; the request path never does.
func (b *EventBus) Flush() {
	if b == nil {
		return
	}
	ack := make(chan struct{})
	select {
	case b.ch <- busMsg{ack: ack}:
		select {
		case <-ack:
		case <-b.done:
		}
	case <-b.done:
	}
}

// Close flushes and stops the dispatcher. Idempotent; Publish after Close
// counts a drop.
func (b *EventBus) Close() {
	if b == nil {
		return
	}
	b.closeOnce.Do(func() {
		b.closed.Store(true)
		close(b.quit)
		<-b.done
	})
}

// EventBusStats is a consistent-enough snapshot of the bus counters.
type EventBusStats struct {
	Published uint64 `json:"published"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

// Stats reports how many events were accepted, delivered to sinks, and
// dropped at the full buffer. Nil-safe.
func (b *EventBus) Stats() EventBusStats {
	if b == nil {
		return EventBusStats{}
	}
	return EventBusStats{
		Published: b.published.Load(),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
	}
}

// dispatch is the single drain goroutine: events go to every sink in order;
// a flush token first drains everything already buffered, then flushes
// buffering sinks, then acks.
func (b *EventBus) dispatch() {
	defer close(b.done)
	for {
		select {
		case m := <-b.ch:
			b.handle(m)
		case <-b.quit:
			for {
				select {
				case m := <-b.ch:
					b.handle(m)
				default:
					b.flushSinks()
					return
				}
			}
		}
	}
}

func (b *EventBus) handle(m busMsg) {
	if m.ack != nil {
		for {
			select {
			case m2 := <-b.ch:
				b.handle(m2)
			default:
				b.flushSinks()
				close(m.ack)
				return
			}
		}
	}
	for _, s := range b.sinks {
		s.Emit(m.ev)
	}
	b.delivered.Add(1)
}

func (b *EventBus) flushSinks() {
	for _, s := range b.sinks {
		if f, ok := s.(flushableSink); ok {
			_ = f.Flush()
		}
	}
}

// NDJSONSink writes one JSON object per line — the grep-able on-disk form
// (xsltd -events-file). Safe for a concurrent reader of the underlying
// writer only if that writer is; the sink itself serializes its writes.
type NDJSONSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte // reused line buffer; Emit is serialized by mu
}

// NewNDJSONSink wraps w.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return &NDJSONSink{w: w} }

// Emit writes the event as one JSON line.
func (s *NDJSONSink) Emit(ev Event) {
	s.mu.Lock()
	s.buf = ev.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	_, _ = s.w.Write(s.buf)
	s.mu.Unlock()
}

// RingSink retains the most recent events in a bounded ring — the backing
// store of the console's /events page.
type RingSink struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever emitted; ring slot is (next-1)%cap
}

// DefaultRingCapacity bounds NewRingSink(0).
const DefaultRingCapacity = 256

// NewRingSink retains the last `capacity` events (<= 0 uses
// DefaultRingCapacity).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingSink{ring: make([]Event, 0, capacity)}
}

// Emit records the event, evicting the oldest at capacity.
func (s *RingSink) Emit(ev Event) {
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, ev)
	} else {
		s.ring[s.next%uint64(cap(s.ring))] = ev
	}
	s.next++
	s.mu.Unlock()
}

// Recent returns up to n retained events, newest first (n <= 0 returns all).
func (s *RingSink) Recent(n int) []Event {
	return s.RecentFiltered(n, nil)
}

// RecentFiltered returns up to n retained events matching keep, newest
// first. A nil keep matches everything; n <= 0 returns every match. The
// console's /events filters (?tenant=, ?trace=) ride on this so an operator
// can pull one tenant's or one request's events during an incident instead
// of paging through the whole ring.
func (s *RingSink) RecentFiltered(n int, keep func(Event) bool) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := len(s.ring)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Event, 0, n)
	for i := 0; i < have && len(out) < n; i++ {
		ev := s.ring[(s.next-1-uint64(i))%uint64(cap(s.ring))]
		if keep == nil || keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// OTLPSink exports events as OTLP/HTTP-style JSON log records: batches are
// POSTed to the endpoint as a resourceLogs envelope, each event one
// logRecord whose body is the event JSON and whose traceId carries the
// request's trace identity. "OTLP-style" because it speaks the JSON shape
// without the protobuf schema — enough for any OTLP/HTTP JSON collector
// that tolerates unknown-field-free payloads, and for humans with jq.
type OTLPSink struct {
	endpoint string
	client   *http.Client

	mu    sync.Mutex
	batch []Event
	max   int

	exported atomic.Uint64
	errors   atomic.Uint64
}

// DefaultOTLPBatch is the export batch size when NewOTLPSink is given 0.
const DefaultOTLPBatch = 64

// NewOTLPSink exports to endpoint in batches of batchMax (<= 0 uses
// DefaultOTLPBatch). Export failures are counted, never retried: the event
// stream is a lossy telemetry channel by contract.
func NewOTLPSink(endpoint string, batchMax int) *OTLPSink {
	if batchMax <= 0 {
		batchMax = DefaultOTLPBatch
	}
	return &OTLPSink{
		endpoint: endpoint,
		client:   &http.Client{Timeout: 5 * time.Second},
		max:      batchMax,
	}
}

// Emit buffers the event, exporting when the batch fills.
func (s *OTLPSink) Emit(ev Event) {
	s.mu.Lock()
	s.batch = append(s.batch, ev)
	full := len(s.batch) >= s.max
	var out []Event
	if full {
		out, s.batch = s.batch, nil
	}
	s.mu.Unlock()
	if full {
		s.export(out)
	}
}

// Flush exports whatever is buffered.
func (s *OTLPSink) Flush() error {
	s.mu.Lock()
	out := s.batch
	s.batch = nil
	s.mu.Unlock()
	if len(out) > 0 {
		s.export(out)
	}
	return nil
}

// Exported and Errors report the sink's lifetime counters.
func (s *OTLPSink) Exported() uint64 { return s.exported.Load() }
func (s *OTLPSink) Errors() uint64   { return s.errors.Load() }

// otlpEnvelope mirrors the OTLP/HTTP JSON logs shape.
type otlpEnvelope struct {
	ResourceLogs []otlpResourceLogs `json:"resourceLogs"`
}
type otlpResourceLogs struct {
	ScopeLogs []otlpScopeLogs `json:"scopeLogs"`
}
type otlpScopeLogs struct {
	Scope      otlpScope       `json:"scope"`
	LogRecords []otlpLogRecord `json:"logRecords"`
}
type otlpScope struct {
	Name string `json:"name"`
}
type otlpLogRecord struct {
	TimeUnixNano string          `json:"timeUnixNano"`
	TraceID      string          `json:"traceId,omitempty"`
	Body         otlpBody        `json:"body"`
	Attributes   []otlpAttribute `json:"attributes,omitempty"`
}
type otlpBody struct {
	StringValue string `json:"stringValue"`
}
type otlpAttribute struct {
	Key   string        `json:"key"`
	Value otlpAttrValue `json:"value"`
}
type otlpAttrValue struct {
	StringValue string `json:"stringValue"`
}

func (s *OTLPSink) export(events []Event) {
	records := make([]otlpLogRecord, 0, len(events))
	for _, ev := range events {
		body, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		rec := otlpLogRecord{
			TimeUnixNano: fmt.Sprintf("%d", ev.Time.UnixNano()),
			Body:         otlpBody{StringValue: string(body)},
			Attributes: []otlpAttribute{
				{Key: "tenant", Value: otlpAttrValue{StringValue: ev.Tenant}},
				{Key: "outcome", Value: otlpAttrValue{StringValue: ev.Outcome}},
			},
		}
		if id, err := hex.DecodeString(ev.TraceID); err == nil && len(id) == 16 {
			rec.TraceID = ev.TraceID
		}
		records = append(records, rec)
	}
	payload, err := json.Marshal(otlpEnvelope{ResourceLogs: []otlpResourceLogs{{
		ScopeLogs: []otlpScopeLogs{{
			Scope:      otlpScope{Name: "xsltd"},
			LogRecords: records,
		}},
	}}})
	if err != nil {
		s.errors.Add(1)
		return
	}
	resp, err := s.client.Post(s.endpoint, "application/json", bytes.NewReader(payload))
	if err != nil {
		s.errors.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		s.errors.Add(1)
		return
	}
	s.exported.Add(uint64(len(records)))
}
