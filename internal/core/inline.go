package core

import (
	"repro/internal/pe"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

// rewriteInline is the paper's headline generation mode (§3.3-3.7, §4.4):
// the template execution graph is acyclic, so every activated template body
// inlines at its activation site; no XQuery functions are generated at all.
func rewriteInline(peRes *pe.Result) (*Result, error) {
	r := &inliner{
		pe:    peRes,
		sheet: peRes.Sheet,
		vars:  &varGen{},
	}
	r.bc = &bodyCompiler{host: r, vars: r.vars, notes: &r.notes}

	m := &xquery.Module{
		Vars: []*xquery.VarDecl{{Name: "var000", Init: xquery.ContextItem{}}},
	}
	baseEnv := bodyEnv{
		conv: convEnv{
			root:      xquery.VarRef("var000"),
			renameVar: userVarName,
		},
		rtfVars: map[string]bool{},
	}
	docEnv := baseEnv.withCtx(xquery.VarRef("var000"), nil)

	for _, def := range r.sheet.GlobalVars {
		init, err := r.globalInit(def, docEnv)
		if err != nil {
			return nil, err
		}
		if def.Select == nil && len(def.Body) > 0 {
			docEnv = docEnv.markRTF(userVarName(def.Name))
		}
		m.Vars = append(m.Vars, &xquery.VarDecl{Name: userVarName(def.Name), Init: init})
	}

	// The initial application: dispatch on the document node's own entry.
	// (RootEntries also records deeper builtin-descent activations, which
	// are regenerated structurally via the schema.)
	body, err := r.inlineRoot(docEnv)
	if err != nil {
		return nil, err
	}
	m.Body = &xquery.Annotated{Comment: "builtin template", X: body}

	// §3.7: report eliminated templates.
	for _, t := range r.sheet.Templates {
		if t.Match != nil && !r.pe.Instantiated[t] {
			r.note("removed non-instantiated template %s (§3.7)", t)
		}
	}

	return &Result{Module: m, Mode: ModeInline, Inlined: true, PE: peRes, Notes: r.notes}, nil
}

type inliner struct {
	pe    *pe.Result
	sheet *xslt.Stylesheet
	vars  *varGen
	bc    *bodyCompiler
	notes []string
	// depth guards against unexpected inlining runaway.
	depth int
}

func (r *inliner) note(format string, args ...any) { r.bc.note(format, args...) }

func (r *inliner) globalInit(def *xslt.VarDef, env bodyEnv) (xquery.Expr, error) {
	switch {
	case def.Select != nil:
		return convertExpr(def.Select, env.conv)
	case len(def.Body) > 0:
		inner, err := r.bc.compileSeq(def.Body, env, false)
		if err != nil {
			return nil, err
		}
		return &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}, nil
	default:
		return xquery.StringLit(""), nil
	}
}

// inlineRoot generates the initial application to the document node.
func (r *inliner) inlineRoot(docEnv bodyEnv) (xquery.Expr, error) {
	for _, e := range r.pe.RootEntries {
		if e.Kind != xmltree.DocumentNode {
			continue
		}
		if e.Template != nil {
			return r.inlineTemplateBody(e.Template, docEnv)
		}
		break
	}
	// Builtin on the document: descend into the schema root element.
	if r.pe.Schema.Root == nil {
		return xquery.EmptySeq{}, nil
	}
	rootName := r.pe.Schema.Root.Name
	entries := []pe.CallEntry{{
		Kind:     xmltree.ElementNode,
		Name:     rootName,
		Template: r.staticWinner(rootName, ""),
		Decl:     r.pe.Schema.Root,
	}}
	return r.inlineChildren(entries, docEnv, nil)
}

// selector describes how the entries of an apply site were selected, which
// drives code shape (children of the context vs an explicit path).
type selector interface{ isSelector() }

// childrenSelector: <xsl:apply-templates/> with no select.
type childrenSelector struct{}

// exprSelector: an explicit select expression (already converted).
type exprSelector struct{ expr xquery.Expr }

func (childrenSelector) isSelector() {}
func (exprSelector) isSelector()     {}

// compileApply (applyHost) for inline mode: replace the instruction with
// the inlined bodies of the templates its trace-call-list activated.
func (r *inliner) compileApply(at *xslt.ApplyTemplates, env bodyEnv) (xquery.Expr, error) {
	entries := r.pe.EntriesFor(at)
	// with-param values evaluate in the caller's context and override the
	// inlined templates' parameter defaults.
	overrides, err := r.evalWithParams(at.Params, env)
	if err != nil {
		return nil, err
	}
	env.overrides = overrides
	if len(at.Sorts) > 0 {
		return r.inlineSorted(at, entries, env)
	}
	if at.Select == nil {
		return r.inlineEntries(entries, env, childrenSelector{})
	}
	sel, err := convertExpr(at.Select, env.conv)
	if err != nil {
		return nil, err
	}
	return r.inlineEntries(entries, env, exprSelector{expr: sel})
}

// evalWithParams compiles with-param values in the caller context.
func (r *inliner) evalWithParams(params []*xslt.VarDef, env bodyEnv) (map[string]xquery.Expr, error) {
	if len(params) == 0 {
		return nil, nil
	}
	out := map[string]xquery.Expr{}
	for _, p := range params {
		switch {
		case p.Select != nil:
			v, err := convertExpr(p.Select, env.conv)
			if err != nil {
				return nil, err
			}
			out[p.Name] = v
		case len(p.Body) > 0:
			inner, err := r.bc.compileSeq(p.Body, env, false)
			if err != nil {
				return nil, err
			}
			out[p.Name] = &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}
		default:
			out[p.Name] = xquery.StringLit("")
		}
	}
	return out, nil
}

// inlineSorted handles apply-templates with xsl:sort: the selected nodes
// are ordered first, then dispatched.
func (r *inliner) inlineSorted(at *xslt.ApplyTemplates, entries []pe.CallEntry, env bodyEnv) (xquery.Expr, error) {
	var sel xquery.Expr
	if at.Select == nil {
		sel = nodeStep(contextItemExpr(env.conv))
	} else {
		var err error
		sel, err = convertExpr(at.Select, env.conv)
		if err != nil {
			return nil, err
		}
	}
	v := r.vars.fresh()
	fl := &xquery.FLWOR{Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: v, In: sel}}}
	inner := env.withCtx(xquery.VarRef(v), nil)
	for _, sk := range at.Sorts {
		key, err := convertExpr(sk.Select, inner.conv)
		if err != nil {
			return nil, err
		}
		if sk.Numeric {
			key = &xquery.FuncCall{Name: "fn:number", Args: []xquery.Expr{key}}
		} else {
			key = stringOf(key)
		}
		fl.Order = append(fl.Order, xquery.OrderKey{Expr: key, Descending: sk.Descending})
	}
	ret, err := r.dispatchChain(entries, v, at.Mode, inner)
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

// inlineEntries generates specialized code for one apply site given its
// trace-call-list.
func (r *inliner) inlineEntries(entries []pe.CallEntry, env bodyEnv, sel selector) (xquery.Expr, error) {
	r.depth++
	defer func() { r.depth-- }()
	if r.depth > 512 {
		return nil, convErrf("inlining exceeded depth bound (execution graph should be acyclic)")
	}
	if len(entries) == 0 {
		return xquery.EmptySeq{}, nil
	}

	switch s := sel.(type) {
	case exprSelector:
		return r.inlineSelected(entries, env, s.expr)
	default: // childrenSelector
		return r.inlineChildren(entries, env, env.decl)
	}
}

// inlineChildren implements §3.4: children template instantiation driven by
// the model group and cardinality information.
func (r *inliner) inlineChildren(entries []pe.CallEntry, env bodyEnv, decl *xschema.ElemDecl) (xquery.Expr, error) {
	ctx := contextItemExpr(env.conv)

	// Text-leaf context: children are text nodes.
	if decl != nil && decl.Group == xschema.GroupText {
		return r.inlineTextChildren(entries, env)
	}

	// Group entries by element name (first entry wins per name; builtin
	// entries keep Template nil).
	byName, order := entriesByName(entries)

	if decl == nil {
		// Document root or unknown structure: one LET per distinct name
		// (document roots are unique; unknown falls back to ordered lets).
		var items []xquery.Expr
		for _, name := range order {
			e, err := r.bindAndInline(childStep(ctx, name), name, byName[name], env, false)
			if err != nil {
				return nil, err
			}
			items = append(items, e)
		}
		return seqOf(items), nil
	}

	switch decl.Group {
	case xschema.GroupSeq:
		// Table 14/15: inline in schema order; FOR for repeating
		// particles, LET otherwise.
		var items []xquery.Expr
		for _, part := range decl.Children {
			name := part.Child.Name
			es, ok := byName[name]
			if !ok {
				continue // child never activated anything at this site
			}
			repeating := part.Repeating()
			if repeating {
				r.note("FOR clause for repeating child %s of %s (cardinality, Table 15)", name, decl.Name)
			} else {
				r.note("LET clause for single child %s of %s (cardinality, Table 15)", name, decl.Name)
			}
			e, err := r.bindAndInline(childStep(ctx, name), name, es, env, repeating)
			if err != nil {
				return nil, err
			}
			items = append(items, e)
		}
		r.note("sequence model group of %s inlined without conditional tests (Table 14)", decl.Name)
		return seqOf(items), nil

	case xschema.GroupChoice:
		// Table 13: if ($c/a) then ... else if ($c/b) then ...
		r.note("choice model group of %s inlined as existence conditionals (Table 13)", decl.Name)
		var out xquery.Expr = xquery.EmptySeq{}
		for i := len(decl.Children) - 1; i >= 0; i-- {
			part := decl.Children[i]
			name := part.Child.Name
			es, ok := byName[name]
			if !ok {
				continue
			}
			e, err := r.bindAndInline(childStep(ctx, name), name, es, env, part.Repeating())
			if err != nil {
				return nil, err
			}
			out = &xquery.IfExpr{Cond: childStep(ctx, name), Then: e, Else: out}
		}
		return out, nil

	default: // GroupAll or anything unordered — Table 12
		r.note("all model group of %s inlined as instance-of dispatch (Table 12)", decl.Name)
		v := r.vars.fresh()
		inner := env.withCtx(xquery.VarRef(v), nil)
		chain, err := r.instanceChain(order, byName, v, inner)
		if err != nil {
			return nil, err
		}
		return &xquery.FLWOR{
			Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: v, In: nodeStep(ctx)}},
			Return:  chain,
		}, nil
	}
}

// inlineTextChildren handles apply-templates over a text leaf's content.
func (r *inliner) inlineTextChildren(entries []pe.CallEntry, env bodyEnv) (xquery.Expr, error) {
	ctx := contextItemExpr(env.conv)
	for _, e := range entries {
		if e.Kind != xmltree.TextNode {
			continue
		}
		if e.Builtin() {
			// Built-in text rule: copy the string value.
			return &xquery.CompText{Body: stringOf(ctx)}, nil
		}
		// Inline the text template with the text node as context.
		v := r.vars.fresh()
		inner := env.withCtx(xquery.VarRef(v), nil)
		body, err := r.inlineTemplateBody(e.Template, inner)
		if err != nil {
			return nil, err
		}
		return &xquery.FLWOR{
			Clauses: []xquery.Clause{{Kind: xquery.ClauseLet, Var: v, In: textStep(ctx)}},
			Return:  body,
		}, nil
	}
	return xquery.EmptySeq{}, nil
}

// bindAndInline binds path to a fresh variable (FOR when repeating, LET
// otherwise) and inlines the dispatch for the entries of one element name.
func (r *inliner) bindAndInline(path xquery.Expr, name string, entries []pe.CallEntry, env bodyEnv, repeating bool) (xquery.Expr, error) {
	v := r.vars.fresh()
	decl := r.pe.Schema.Lookup(name)
	inner := env.withCtx(xquery.VarRef(v), decl)

	ret, err := r.dispatchForName(name, entries, v, inner)
	if err != nil {
		return nil, err
	}
	kind := xquery.ClauseLet
	if repeating {
		kind = xquery.ClauseFor
	}
	return &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: kind, Var: v, In: path}},
		Return:  ret,
	}, nil
}

// inlineSelected handles an explicit select expression.
func (r *inliner) inlineSelected(entries []pe.CallEntry, env bodyEnv, sel xquery.Expr) (xquery.Expr, error) {
	byName, order := entriesByName(entries)

	// Cardinality: LET is only safe when the select cannot yield more than
	// one node. With a single activated element name whose schema particle
	// repeats (or unknown), use FOR.
	if len(order) == 1 && len(byName[order[0]]) >= 1 {
		name := order[0]
		entry := byName[name][0]
		repeating := true
		if entry.Kind == xmltree.ElementNode && !entry.Info.Unbounded && entry.Decl != nil {
			repeating = false
		}
		if repeating {
			r.note("FOR clause for selected %s (repeating, Table 15)", name)
		} else {
			r.note("LET clause for selected %s (at most one occurrence, Table 15)", name)
		}
		// Parenthesized select, as in Table 8's
		// `for $var005 in ($var003/emp[sal > 2000])`.
		return r.bindAndInline(sel, name, byName[name], env, repeating)
	}

	// Multiple possible names/kinds: iterate and dispatch by instance-of.
	v := r.vars.fresh()
	inner := env.withCtx(xquery.VarRef(v), nil)
	chain, err := r.instanceChain(order, byName, v, inner)
	if err != nil {
		return nil, err
	}
	return &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: v, In: sel}},
		Return:  chain,
	}, nil
}

// instanceChain builds if ($v instance of element(a)) then <inline a> else
// if ... across the element names of a call list (Table 12's shape).
func (r *inliner) instanceChain(order []string, byName map[string][]pe.CallEntry, v string, env bodyEnv) (xquery.Expr, error) {
	var out xquery.Expr = xquery.EmptySeq{}
	for i := len(order) - 1; i >= 0; i-- {
		name := order[i]
		envN := env
		envN.decl = r.pe.Schema.Lookup(name)
		body, err := r.dispatchForName(name, byName[name], v, envN)
		if err != nil {
			return nil, err
		}
		if name == "#text" {
			out = &xquery.IfExpr{
				Cond: &xquery.InstanceOf{X: xquery.VarRef(v), Type: xquery.SeqType{Kind: xquery.SeqTypeText}},
				Then: body, Else: out,
			}
			continue
		}
		out = &xquery.IfExpr{
			Cond: &xquery.InstanceOf{X: xquery.VarRef(v), Type: xquery.SeqType{Kind: xquery.SeqTypeElement, Name: name}},
			Then: body,
			Else: out,
		}
	}
	return out, nil
}

// dispatchForName generates the code handling one element name at one apply
// site. Normally the trace names a single winning template; when
// higher-priority templates with value predicates also match structurally
// (Tables 18-19), a conditional chain tests them in priority order.
func (r *inliner) dispatchForName(name string, entries []pe.CallEntry, candVar string, env bodyEnv) (xquery.Expr, error) {
	if len(entries) == 0 {
		return xquery.EmptySeq{}, nil
	}
	entry := entries[0]
	if entry.Kind == xmltree.TextNode {
		if entry.Builtin() {
			return &xquery.CompText{Body: stringOf(xquery.VarRef(candVar))}, nil
		}
		return r.inlineTemplateBody(entry.Template, env)
	}

	// Dispatch plan: conditional templates in precedence order, then the
	// first unconditional winner (or builtin).
	mode := ""
	if entry.Template != nil {
		mode = entry.Template.Mode
	}
	conds, final := dispatchPlan(r.sheet, name, mode)

	// Fast path: single unconditional winner (or builtin).
	if len(conds) == 0 {
		if final == nil {
			return r.inlineBuiltinElement(env)
		}
		return r.inlineTemplateBody(final, env)
	}

	// Conditional chain (Table 19): predicates are kept, parent-axis tests
	// removed where the schema guarantees them.
	var out xquery.Expr
	if final == nil {
		e, err := r.inlineBuiltinElement(env)
		if err != nil {
			return nil, err
		}
		out = e
	} else {
		e, err := r.inlineTemplateBody(final, env)
		if err != nil {
			return nil, err
		}
		out = e
	}
	for i := len(conds) - 1; i >= 0; i-- {
		t := conds[i]
		cond, err := patternCondition(t.Match, candVar, r.pe.Schema, r.bc, env.conv)
		if err != nil {
			return nil, err
		}
		body, err := r.inlineTemplateBody(t, env)
		if err != nil {
			return nil, err
		}
		out = &xquery.IfExpr{Cond: cond, Then: body, Else: out}
		r.note("kept value-predicate test for template %s (Tables 18-19)", t)
	}
	return out, nil
}

// dispatchPlan computes, for an element name in a mode, the templates whose
// value predicates must be tested at run time (in precedence order) and the
// unconditional template that ends the chain (nil = builtin rules). This is
// the Tables 18-19 machinery: structure selected the candidates, values
// still need testing.
func dispatchPlan(sheet *xslt.Stylesheet, name, mode string) (conds []*xslt.Template, final *xslt.Template) {
	for _, t := range matchTemplates(sheet, mode) {
		if !patternNameMatches(t.Match, name) {
			continue
		}
		if isUnconditionalFor(t.Match) {
			return conds, t
		}
		conds = append(conds, t)
	}
	return conds, nil
}

// patternNameMatches reports whether any alternative's final step could
// match an element with the given name.
func patternNameMatches(pat *xpath.Pattern, name string) bool {
	if pat == nil {
		return false
	}
	for _, alt := range pat.Alternatives {
		if len(alt.Steps) == 0 {
			continue
		}
		last := alt.Steps[len(alt.Steps)-1]
		if last.Axis == xpath.AxisAttribute {
			continue
		}
		switch last.Test.Kind {
		case xpath.TestName:
			if last.Test.Name == name {
				return true
			}
		case xpath.TestAnyName, xpath.TestNode:
			return true
		}
	}
	return false
}

// inlineTemplateBody inlines one template's body with the current context
// (§3.3: template instantiation inline).
func (r *inliner) inlineTemplateBody(t *xslt.Template, env bodyEnv) (xquery.Expr, error) {
	r.depth++
	defer func() { r.depth-- }()
	if r.depth > 512 {
		return nil, convErrf("inlining exceeded depth bound")
	}
	// Template params take their defaults when inlined via apply without
	// with-param; bind them as lets.
	// Params bind before the body; with-param overrides arrive through
	// env.overrides (evaluated in the caller's context by compileApply).
	overrides := env.overrides
	bodyEnv := env
	bodyEnv.overrides = nil
	body, err := r.bc.compileSeq(t.Body, bodyEnv, false)
	if err != nil {
		return nil, convErrf("template %s: %v", t, err)
	}
	if len(t.Params) > 0 {
		body, err = r.wrapParams(t.Params, overrides, body, bodyEnv)
		if err != nil {
			return nil, err
		}
	}
	r.note("inlined template %s (§3.3)", t)
	return &xquery.Annotated{Comment: "<xsl:template " + describeTemplate(t) + ">", X: body}, nil
}

// wrapParams binds template parameters as lets around the body; overrides
// maps param names to explicitly-passed values.
func (r *inliner) wrapParams(params []*xslt.VarDef, overrides map[string]xquery.Expr, body xquery.Expr, env bodyEnv) (xquery.Expr, error) {
	fl := &xquery.FLWOR{Return: body}
	for _, p := range params {
		var val xquery.Expr
		if v, ok := overrides[p.Name]; ok {
			val = v
		} else {
			switch {
			case p.Select != nil:
				v, err := convertExpr(p.Select, env.conv)
				if err != nil {
					return nil, err
				}
				val = v
			case len(p.Body) > 0:
				inner, err := r.bc.compileSeq(p.Body, env, false)
				if err != nil {
					return nil, err
				}
				val = &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}
			default:
				val = xquery.StringLit("")
			}
		}
		fl.Clauses = append(fl.Clauses, xquery.Clause{Kind: xquery.ClauseLet, Var: userVarName(p.Name), In: val})
	}
	return fl, nil
}

// inlineBuiltinElement inlines the built-in rule for an element context:
// recurse into the children per the schema (the paper's "default built-in
// template ... inlined multiple times via partial evaluation").
func (r *inliner) inlineBuiltinElement(env bodyEnv) (xquery.Expr, error) {
	if env.decl == nil {
		// No structure known: copy descendant text (what the builtin rules
		// reduce to when no template ever matches below).
		return &xquery.CompText{Body: &xquery.FuncCall{
			Name: "fn:string",
			Args: []xquery.Expr{contextItemExpr(env.conv)},
		}}, nil
	}
	if env.decl.Group == xschema.GroupText {
		return &xquery.CompText{Body: stringOf(contextItemExpr(env.conv))}, nil
	}
	// Synthesize a children application: which templates would fire for
	// each child? Derive from the schema + stylesheet statically, since
	// builtin descent does not own a trace id.
	var entries []pe.CallEntry
	for _, part := range env.decl.Children {
		tmpl := r.staticWinner(part.Child.Name, "")
		entries = append(entries, pe.CallEntry{
			Kind:     xmltree.ElementNode,
			Name:     part.Child.Name,
			Template: tmpl,
			Decl:     part.Child,
		})
		if tmpl != nil {
			// Mirror the trace bookkeeping.
			r.pe.Instantiated[tmpl] = true
		}
	}
	return r.inlineChildren(entries, env, env.decl)
}

// staticWinner finds the template that would win for an element of the
// given name when all value predicates hold, or nil for builtin.
func (r *inliner) staticWinner(name, mode string) *xslt.Template {
	conds, final := dispatchPlan(r.sheet, name, mode)
	if len(conds) > 0 {
		return conds[0]
	}
	return final
}

// compileCall (applyHost) for inline mode: inline the named template's body
// directly (§3.3 covers call-template too).
func (r *inliner) compileCall(ct *xslt.CallTemplate, env bodyEnv) (xquery.Expr, error) {
	var target *xslt.Template
	for _, t := range r.sheet.Templates {
		if t.Name == ct.Name {
			target = t
			break
		}
	}
	if target == nil {
		return nil, convErrf("call-template: no template named %q", ct.Name)
	}
	overrides := map[string]xquery.Expr{}
	for _, p := range ct.Params {
		switch {
		case p.Select != nil:
			v, err := convertExpr(p.Select, env.conv)
			if err != nil {
				return nil, err
			}
			overrides[p.Name] = v
		case len(p.Body) > 0:
			inner, err := r.bc.compileSeq(p.Body, env, false)
			if err != nil {
				return nil, err
			}
			overrides[p.Name] = &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}
		default:
			overrides[p.Name] = xquery.StringLit("")
		}
	}
	body, err := r.bc.compileSeq(target.Body, env, false)
	if err != nil {
		return nil, err
	}
	if len(target.Params) > 0 {
		body, err = r.wrapParams(target.Params, overrides, body, env)
		if err != nil {
			return nil, err
		}
	}
	r.note("inlined called template %q (§3.3)", ct.Name)
	return &xquery.Annotated{Comment: `<xsl:call-template name="` + ct.Name + `">`, X: body}, nil
}

// entriesByName groups a call list by element name (text entries under
// "#text"), preserving first-seen order.
func entriesByName(entries []pe.CallEntry) (map[string][]pe.CallEntry, []string) {
	byName := map[string][]pe.CallEntry{}
	var order []string
	for _, e := range entries {
		key := e.Name
		if e.Kind == xmltree.TextNode {
			key = "#text"
		} else if e.Kind != xmltree.ElementNode {
			continue // comments/PIs produce nothing in any mode
		}
		if _, ok := byName[key]; !ok {
			order = append(order, key)
		}
		byName[key] = append(byName[key], e)
	}
	return byName, order
}

func seqOf(items []xquery.Expr) xquery.Expr {
	switch len(items) {
	case 0:
		return xquery.EmptySeq{}
	case 1:
		return items[0]
	default:
		return &xquery.Sequence{Items: items}
	}
}

// dispatchChain dispatches a mixed set of entries over a bound candidate
// variable (used under sorted applies).
func (r *inliner) dispatchChain(entries []pe.CallEntry, candVar, mode string, env bodyEnv) (xquery.Expr, error) {
	byName, order := entriesByName(entries)
	_ = mode
	return r.instanceChain(order, byName, candVar, env)
}
