package core

import (
	"repro/internal/pe"
	"repro/internal/xmltree"
	"repro/internal/xquery"
	"repro/internal/xslt"
)

// rewriteNonInline is the paper's non-inline mode (§4.4): used when the
// template execution graph contains recursion. Each *instantiated* template
// becomes an XQuery function (§3.7 removes the rest); each apply-templates
// compiles into a dispatch restricted to the templates its trace-call-list
// names (far narrower than the straightforward all-templates chain), with
// parent-axis tests pruned by the schema (§3.5).
func rewriteNonInline(peRes *pe.Result, partial bool) (*Result, error) {
	r := &nonInliner{
		pe:        peRes,
		sheet:     peRes.Sheet,
		vars:      &varGen{},
		partial:   partial,
		globalRTF: map[string]bool{},
	}
	r.bc = &bodyCompiler{host: r, vars: r.vars, notes: &r.notes}

	m := &xquery.Module{
		Vars: []*xquery.VarDecl{{Name: "var000", Init: xquery.ContextItem{}}},
	}
	baseEnv := bodyEnv{
		conv: convEnv{
			root:      xquery.VarRef("var000"),
			renameVar: userVarName,
		},
		rtfVars: map[string]bool{},
	}
	docEnv := baseEnv.withCtx(xquery.VarRef("var000"), nil)

	for _, def := range r.sheet.GlobalVars {
		init, err := r.globalInit(def, docEnv)
		if err != nil {
			return nil, err
		}
		if def.Select == nil && len(def.Body) > 0 {
			docEnv = docEnv.markRTF(userVarName(def.Name))
			r.globalRTF[userVarName(def.Name)] = true
		}
		m.Vars = append(m.Vars, &xquery.VarDecl{Name: userVarName(def.Name), Init: init})
	}

	// The trace's Instantiated set records optimistic winners; templates
	// reachable when a higher-priority value predicate FAILS (Tables 18-19)
	// must also get functions. Close the set over the dispatch plans of
	// every element name seen in the trace.
	markPlans := func(name, mode string) {
		conds, final := dispatchPlan(r.sheet, name, mode)
		for _, t := range conds {
			peRes.Instantiated[t] = true
		}
		if final != nil {
			peRes.Instantiated[final] = true
		}
	}
	allModes := modesOf(r.sheet)
	for id, list := range peRes.CallLists {
		mode := peRes.Program.TraceTable[id].Mode
		for _, e := range list {
			if e.Kind == xmltree.ElementNode {
				markPlans(e.Name, mode)
			}
		}
	}
	for _, e := range peRes.RootEntries {
		if e.Kind == xmltree.ElementNode {
			// Builtin descent does not record its mode; close over all.
			for _, mode := range allModes {
				markPlans(e.Name, mode)
			}
		}
	}

	// Functions for instantiated templates only (§3.7); in partial mode,
	// additionally only for templates on recursion cycles (§7.2).
	removed, inlinedAway := 0, 0
	for _, t := range r.sheet.Templates {
		if !peRes.Instantiated[t] {
			removed++
			continue
		}
		if !r.mustStayFunction(t) {
			inlinedAway++
			continue
		}
		fn, err := r.templateFunc(t)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, fn)
	}
	if removed > 0 {
		r.note("removed %d non-instantiated template(s) (§3.7)", removed)
	}
	if inlinedAway > 0 {
		r.note("partial inline mode: %d non-recursive template(s) inlined at their activation sites (§7.2)", inlinedAway)
	}

	// A builtin descent function per mode that appears in the call lists.
	for _, mode := range r.modesUsed() {
		fn, err := r.builtinFunc(mode)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, fn)
	}

	// The main query dispatches the root activation directly.
	body, err := r.rootDispatch(docEnv)
	if err != nil {
		return nil, err
	}
	m.Body = &xquery.Annotated{Comment: "builtin template", X: body}

	mode := ModeNonInline
	if partial {
		mode = ModePartialInline
	}
	return &Result{Module: m, Mode: mode, Inlined: false, PE: peRes, Notes: r.notes}, nil
}

type nonInliner struct {
	pe    *pe.Result
	sheet *xslt.Stylesheet
	vars  *varGen
	bc    *bodyCompiler
	notes []string
	// globalRTF records global result-tree-fragment variables.
	globalRTF map[string]bool
	// partial enables §7.2 partial inline mode: only templates on
	// recursion cycles stay functions.
	partial bool
	// inlineDepth bounds nested inlining (a missed cycle in the trace
	// would otherwise loop).
	inlineDepth int
}

// mustStayFunction reports whether a template must remain an XQuery
// function under the current mode.
func (r *nonInliner) mustStayFunction(t *xslt.Template) bool {
	if !r.partial {
		return true
	}
	return r.pe.RecursiveTemplates[t]
}

func (r *nonInliner) note(format string, args ...any) { r.bc.note(format, args...) }

func (r *nonInliner) globalInit(def *xslt.VarDef, env bodyEnv) (xquery.Expr, error) {
	switch {
	case def.Select != nil:
		return convertExpr(def.Select, env.conv)
	case len(def.Body) > 0:
		inner, err := r.bc.compileSeq(def.Body, env, false)
		if err != nil {
			return nil, err
		}
		return &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}, nil
	default:
		return xquery.StringLit(""), nil
	}
}

// modesUsed lists every mode of instantiated match templates, "" first.
func (r *nonInliner) modesUsed() []string {
	seen := map[string]bool{"": true}
	out := []string{""}
	for t := range r.pe.Instantiated {
		if t.Match != nil && !seen[t.Mode] {
			seen[t.Mode] = true
			out = append(out, t.Mode)
		}
	}
	return out
}

func (r *nonInliner) templateFunc(t *xslt.Template) (*xquery.FuncDecl, error) {
	fn := &xquery.FuncDecl{Name: funcNameForTemplate(t), Params: []string{"c"}}
	rtf := map[string]bool{}
	for name := range r.globalRTF {
		rtf[name] = true
	}
	env := bodyEnv{
		conv: convEnv{
			ctx:       xquery.VarRef("c"),
			current:   xquery.VarRef("c"),
			root:      xquery.VarRef("var000"),
			renameVar: userVarName,
		},
		rtfVars: rtf,
	}
	for _, p := range t.Params {
		fn.Params = append(fn.Params, userVarName(p.Name))
	}
	body, err := r.bc.compileSeq(t.Body, env, false)
	if err != nil {
		return nil, convErrf("template %s: %v", t, err)
	}
	fn.Body = &xquery.Annotated{Comment: "<xsl:template " + describeTemplate(t) + ">", X: body}
	return fn, nil
}

// builtinFunc implements the built-in rules, dispatching elements through
// the *instantiated* templates only.
func (r *nonInliner) builtinFunc(mode string) (*xquery.FuncDecl, error) {
	c := xquery.VarRef("c")
	candVar := "c"
	candEnv := bodyEnv{
		conv:    convEnv{ctx: c, current: c, root: xquery.VarRef("var000"), renameVar: userVarName},
		rtfVars: map[string]bool{},
	}
	patEnv := convEnv{ctx: nil, root: xquery.VarRef("var000"), renameVar: userVarName}

	isKind := func(k xquery.SeqTypeKind) xquery.Expr {
		return &xquery.InstanceOf{X: c, Type: xquery.SeqType{Kind: k}}
	}

	// Element branch: test instantiated templates in precedence order,
	// else recurse into children.
	var elemChain xquery.Expr = &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: "cc", In: nodeStep(c)}},
		Return:  &xquery.FuncCall{Name: builtinFuncName(mode), Args: []xquery.Expr{xquery.VarRef("cc")}},
	}
	ts := r.instantiatedMatch(mode)
	for i := len(ts) - 1; i >= 0; i-- {
		t := ts[i]
		cond, err := patternCondition(t.Match, candVar, r.pe.Schema, r.bc, patEnv)
		if err != nil {
			continue // unconvertible pattern: leave it to deeper dispatch
		}
		target, err := r.dispatchTarget(t, candVar, candEnv, nil)
		if err != nil {
			return nil, err
		}
		elemChain = &xquery.IfExpr{Cond: cond, Then: target, Else: elemChain}
	}

	body := &xquery.IfExpr{
		Cond: isKind(xquery.SeqTypeText),
		Then: &xquery.CompText{Body: stringOf(c)},
		Else: &xquery.IfExpr{
			Cond: isKind(xquery.SeqTypeAttribute),
			Then: &xquery.CompText{Body: stringOf(c)},
			Else: &xquery.IfExpr{
				Cond: &xquery.Binary{Op: xquery.OpOr,
					L: isKind(xquery.SeqTypeComment),
					R: isKind(xquery.SeqTypePI)},
				Then: xquery.EmptySeq{},
				Else: elemChain,
			},
		},
	}
	return &xquery.FuncDecl{
		Name:   builtinFuncName(mode),
		Params: []string{"c"},
		Body:   &xquery.Annotated{Comment: "builtin rules over instantiated templates", X: body},
	}, nil
}

// templateCallArgs fills default parameter values (empty string) — callers
// that pass with-params build their own argument lists.
func templateCallArgs(t *xslt.Template, ctx xquery.Expr) []xquery.Expr {
	args := []xquery.Expr{ctx}
	for range t.Params {
		args = append(args, xquery.StringLit(""))
	}
	return args
}

// instantiatedMatch returns instantiated match templates of the mode in
// dispatch order.
func (r *nonInliner) instantiatedMatch(mode string) []*xslt.Template {
	var ts []*xslt.Template
	for _, t := range r.sheet.Templates {
		if t.Match != nil && t.Mode == mode && r.pe.Instantiated[t] {
			ts = append(ts, t)
		}
	}
	return templatesByPrecedence(ts)
}

// rootDispatch compiles the initial application from the PE root entries.
// Root entries also contain builtin-descent activations (they share the -1
// trace id), so only the DOCUMENT node's own entry decides the entry point.
func (r *nonInliner) rootDispatch(env bodyEnv) (xquery.Expr, error) {
	for _, e := range r.pe.RootEntries {
		if e.Kind != xmltree.DocumentNode {
			continue
		}
		if e.Template != nil {
			if !r.mustStayFunction(e.Template) {
				return r.inlineBody(e.Template, env.withCtx(xquery.VarRef("var000"), nil), nil)
			}
			return &xquery.FuncCall{
				Name: funcNameForTemplate(e.Template),
				Args: templateCallArgs(e.Template, xquery.VarRef("var000")),
			}, nil
		}
		break
	}
	return &xquery.FuncCall{Name: builtinFuncName(""), Args: []xquery.Expr{xquery.VarRef("var000")}}, nil
}

// compileApply (applyHost) for non-inline mode: per-site dispatch chain
// restricted to the trace-call-list.
func (r *nonInliner) compileApply(at *xslt.ApplyTemplates, env bodyEnv) (xquery.Expr, error) {
	var sel xquery.Expr
	if at.Select == nil {
		sel = nodeStep(contextItemExpr(env.conv))
	} else {
		var err error
		sel, err = convertExpr(at.Select, env.conv)
		if err != nil {
			return nil, err
		}
	}
	// Sorting wraps the selection.
	if len(at.Sorts) > 0 {
		v := r.vars.fresh()
		inner := env.withCtx(xquery.VarRef(v), nil)
		fl := &xquery.FLWOR{
			Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: v, In: sel}},
			Return:  xquery.VarRef(v),
		}
		for _, sk := range at.Sorts {
			key, err := convertExpr(sk.Select, inner.conv)
			if err != nil {
				return nil, err
			}
			if sk.Numeric {
				key = &xquery.FuncCall{Name: "fn:number", Args: []xquery.Expr{key}}
			} else {
				key = stringOf(key)
			}
			fl.Order = append(fl.Order, xquery.OrderKey{Expr: key, Descending: sk.Descending})
		}
		sel = fl
	}

	// With-params: evaluate in the caller context.
	overrides := map[string]xquery.Expr{}
	for _, p := range at.Params {
		switch {
		case p.Select != nil:
			v, err := convertExpr(p.Select, env.conv)
			if err != nil {
				return nil, err
			}
			overrides[p.Name] = v
		case len(p.Body) > 0:
			inner, err := r.bc.compileSeq(p.Body, env, false)
			if err != nil {
				return nil, err
			}
			overrides[p.Name] = &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}
		default:
			overrides[p.Name] = xquery.StringLit("")
		}
	}

	// Restricted dispatch: templates from the call list, then any
	// structurally-possible conditional candidates, else builtin.
	entries := r.pe.EntriesFor(at)
	candVar := r.vars.fresh()
	candEnv := env.withCtx(xquery.VarRef(candVar), nil)

	seen := map[*xslt.Template]bool{}
	var listed []*xslt.Template
	sawBuiltinOrText := false
	for _, e := range entries {
		if e.Kind != xmltree.ElementNode {
			sawBuiltinOrText = true
		}
		if e.Template == nil {
			sawBuiltinOrText = true
			continue
		}
		if !seen[e.Template] {
			seen[e.Template] = true
			listed = append(listed, e.Template)
		}
	}
	// Value-predicate candidates that outrank listed winners must also be
	// tested (Tables 18-19).
	for _, e := range entries {
		if e.Kind != xmltree.ElementNode {
			continue
		}
		conds, _ := dispatchPlan(r.sheet, e.Name, at.Mode)
		for _, t := range conds {
			if !seen[t] {
				seen[t] = true
				listed = append(listed, t)
			}
		}
	}
	listed = templatesByPrecedence(listed)
	r.note("apply-templates dispatch narrowed to %d template(s) from the trace-call-list", len(listed))

	var chain xquery.Expr
	if sawBuiltinOrText || len(listed) == 0 {
		chain = &xquery.FuncCall{Name: builtinFuncName(at.Mode), Args: []xquery.Expr{xquery.VarRef(candVar)}}
	} else {
		// All entries named templates; still end with builtin for safety
		// on unexpected real-data nodes.
		chain = &xquery.FuncCall{Name: builtinFuncName(at.Mode), Args: []xquery.Expr{xquery.VarRef(candVar)}}
	}
	for i := len(listed) - 1; i >= 0; i-- {
		t := listed[i]
		cond, err := patternCondition(t.Match, candVar, r.pe.Schema, r.bc, candEnv.conv)
		if err != nil {
			return nil, convErrf("pattern %q: %v", t.MatchSrc, err)
		}
		target, err := r.dispatchTarget(t, candVar, candEnv, overrides)
		if err != nil {
			return nil, err
		}
		chain = &xquery.IfExpr{Cond: cond, Then: target, Else: chain}
	}

	return &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: candVar, In: sel}},
		Return:  chain,
	}, nil
}

// compileCall (applyHost): direct function call; the target function exists
// because call-template targets count as instantiated.
func (r *nonInliner) compileCall(ct *xslt.CallTemplate, env bodyEnv) (xquery.Expr, error) {
	var target *xslt.Template
	for _, t := range r.sheet.Templates {
		if t.Name == ct.Name {
			target = t
			break
		}
	}
	if target == nil {
		return nil, convErrf("call-template: no template named %q", ct.Name)
	}
	overrides := map[string]xquery.Expr{}
	for _, p := range ct.Params {
		switch {
		case p.Select != nil:
			v, err := convertExpr(p.Select, env.conv)
			if err != nil {
				return nil, err
			}
			overrides[p.Name] = v
		case len(p.Body) > 0:
			inner, err := r.bc.compileSeq(p.Body, env, false)
			if err != nil {
				return nil, err
			}
			overrides[p.Name] = &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}
		default:
			overrides[p.Name] = xquery.StringLit("")
		}
	}
	call := &xquery.FuncCall{Name: funcNameForTemplate(target), Args: []xquery.Expr{contextItemExpr(env.conv)}}
	for _, p := range target.Params {
		if v, ok := overrides[p.Name]; ok {
			call.Args = append(call.Args, v)
			continue
		}
		switch {
		case p.Select != nil:
			v, err := convertExpr(p.Select, env.conv)
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, v)
		case len(p.Body) > 0:
			inner, err := r.bc.compileSeq(p.Body, env, false)
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner})
		default:
			call.Args = append(call.Args, xquery.StringLit(""))
		}
	}
	return call, nil
}

// dispatchTarget produces the code handling one matched template at an
// apply site: a function call, or (partial inline mode, non-recursive
// template) the inlined body.
func (r *nonInliner) dispatchTarget(t *xslt.Template, candVar string, candEnv bodyEnv, overrides map[string]xquery.Expr) (xquery.Expr, error) {
	if r.mustStayFunction(t) {
		call := &xquery.FuncCall{Name: funcNameForTemplate(t), Args: []xquery.Expr{xquery.VarRef(candVar)}}
		for _, p := range t.Params {
			if v, ok := overrides[p.Name]; ok {
				call.Args = append(call.Args, v)
			} else {
				call.Args = append(call.Args, xquery.StringLit(""))
			}
		}
		return call, nil
	}
	return r.inlineBody(t, candEnv, overrides)
}

// inlineBody inlines a non-recursive template's body at an activation site
// (partial inline mode).
func (r *nonInliner) inlineBody(t *xslt.Template, env bodyEnv, overrides map[string]xquery.Expr) (xquery.Expr, error) {
	r.inlineDepth++
	defer func() { r.inlineDepth-- }()
	if r.inlineDepth > 128 {
		return nil, convErrf("partial inlining exceeded depth bound (cycle missed by the trace?)")
	}
	body, err := r.bc.compileSeq(t.Body, env, false)
	if err != nil {
		return nil, err
	}
	if len(t.Params) > 0 {
		fl := &xquery.FLWOR{Return: body}
		for _, p := range t.Params {
			var val xquery.Expr
			if v, ok := overrides[p.Name]; ok {
				val = v
			} else {
				switch {
				case p.Select != nil:
					v, err := convertExpr(p.Select, env.conv)
					if err != nil {
						return nil, err
					}
					val = v
				case len(p.Body) > 0:
					inner, err := r.bc.compileSeq(p.Body, env, false)
					if err != nil {
						return nil, err
					}
					val = &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}
				default:
					val = xquery.StringLit("")
				}
			}
			fl.Clauses = append(fl.Clauses, xquery.Clause{Kind: xquery.ClauseLet, Var: userVarName(p.Name), In: val})
		}
		body = fl
	}
	r.note("partially inlined template %s (§7.2)", t)
	return &xquery.Annotated{Comment: "<xsl:template " + describeTemplate(t) + "> (inlined)", X: body}, nil
}
