package core

import (
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

// DeriveOutputSchema computes the structural schema of the XML a rewritten
// query constructs — the paper's §3.2 fourth source of structural
// information: "if the input XMLType is computed from another XSLT
// transform ... derive the structural information of the XSLT result based
// on the static typing result of the equivalent XQuery query."
//
// The typer covers the constructor shapes the inline rewriter emits. The
// result must have a single root element; other shapes (multiple roots,
// dynamic element names) return an error and callers fall back to
// functional evaluation for the downstream stage.
func DeriveOutputSchema(m *xquery.Module) (*xschema.Schema, error) {
	s := xschema.NewSchema()
	roots, err := typeExpr(s, m.Body, cardOne)
	if err != nil {
		return nil, err
	}
	var elems []*typedChild
	for _, r := range roots {
		if r.decl != nil {
			elems = append(elems, r)
		}
	}
	if len(elems) != 1 {
		return nil, convErrf("static typing: output has %d root elements (need exactly 1)", len(elems))
	}
	s.Root = elems[0].decl
	return s, nil
}

// cardinality of a typed output slot.
type cardinality uint8

const (
	cardOne cardinality = iota
	cardOptional
	cardMany
)

func (c cardinality) particle(d *xschema.ElemDecl) *xschema.Particle {
	switch c {
	case cardOptional:
		return &xschema.Particle{Child: d, Min: 0, Max: 1}
	case cardMany:
		return &xschema.Particle{Child: d, Min: 0, Max: xschema.Unbounded}
	default:
		return &xschema.Particle{Child: d, Min: 1, Max: 1}
	}
}

// typedChild is one produced output item: an element decl, or text.
type typedChild struct {
	decl *xschema.ElemDecl // nil for text output
	card cardinality
}

// typeExpr walks a constructor-shaped expression and returns the items it
// can produce, each with its cardinality.
func typeExpr(s *xschema.Schema, e xquery.Expr, card cardinality) ([]*typedChild, error) {
	switch x := e.(type) {
	case nil, xquery.EmptySeq:
		return nil, nil
	case *xquery.Annotated:
		return typeExpr(s, x.X, card)
	case *xquery.Sequence:
		var out []*typedChild
		for _, item := range x.Items {
			sub, err := typeExpr(s, item, card)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case xquery.TextLit, xquery.StringLit, xquery.NumberLit, *xquery.CompText, *xquery.FuncCall:
		return []*typedChild{{decl: nil, card: card}}, nil
	case *xquery.DirectElem:
		d, err := typeElem(s, x)
		if err != nil {
			return nil, err
		}
		return []*typedChild{{decl: d, card: card}}, nil
	case *xquery.CompElem:
		name, ok := xquery.Unwrap(x.Name).(xquery.StringLit)
		if !ok {
			return nil, convErrf("static typing: computed element name is dynamic")
		}
		d, err := typeNamedBody(s, string(name), x.Body)
		if err != nil {
			return nil, err
		}
		return []*typedChild{{decl: d, card: card}}, nil
	case *xquery.FLWOR:
		inner := card
		for _, cl := range x.Clauses {
			if cl.Kind == xquery.ClauseFor {
				inner = cardMany
			}
		}
		if x.Where != nil && inner == cardOne {
			inner = cardOptional
		}
		return typeExpr(s, x.Return, inner)
	case *xquery.IfExpr:
		thenC, err := typeExpr(s, x.Then, weaken(card))
		if err != nil {
			return nil, err
		}
		elseC, err := typeExpr(s, x.Else, weaken(card))
		if err != nil {
			return nil, err
		}
		return append(thenC, elseC...), nil
	case *xquery.Path, xquery.VarRef, xquery.ContextItem:
		// Copied source nodes: their structure is not statically known.
		return nil, convErrf("static typing: node-copying expression %T has unknown structure", e)
	}
	return nil, convErrf("static typing: unsupported expression %T", e)
}

// weaken makes a slot optional (conditional branches).
func weaken(c cardinality) cardinality {
	if c == cardMany {
		return cardMany
	}
	return cardOptional
}

func typeElem(s *xschema.Schema, el *xquery.DirectElem) (*xschema.ElemDecl, error) {
	d := s.Declare(el.Name)
	for _, a := range el.Attrs {
		if d.Attr(a.Name) == nil {
			d.Attrs = append(d.Attrs, &xschema.AttrDecl{Name: a.Name, Type: xschema.TypeString})
		}
	}
	return typeContentInto(s, d, el.Children)
}

func typeNamedBody(s *xschema.Schema, name string, body xquery.Expr) (*xschema.ElemDecl, error) {
	d := s.Declare(name)
	var kids []xquery.Expr
	if body != nil {
		if seq, ok := xquery.Unwrap(body).(*xquery.Sequence); ok {
			kids = seq.Items
		} else {
			kids = []xquery.Expr{body}
		}
	}
	return typeContentInto(s, d, kids)
}

func typeContentInto(s *xschema.Schema, d *xschema.ElemDecl, kids []xquery.Expr) (*xschema.ElemDecl, error) {
	var children []*xschema.Particle
	isText := false
	for _, c := range kids {
		// Computed attributes attach to the element.
		if ca, ok := xquery.Unwrap(c).(*xquery.CompAttr); ok {
			if name, okn := xquery.Unwrap(ca.Name).(xquery.StringLit); okn {
				if d.Attr(string(name)) == nil {
					d.Attrs = append(d.Attrs, &xschema.AttrDecl{Name: string(name), Type: xschema.TypeString})
				}
				continue
			}
			return nil, convErrf("static typing: dynamic attribute name on %s", d.Name)
		}
		items, err := typeExpr(s, c, cardOne)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			if it.decl == nil {
				isText = true
				continue
			}
			children = append(children, it.card.particle(it.decl))
		}
	}
	switch {
	case len(children) > 0 && isText:
		return nil, convErrf("static typing: element %q mixes text and element content", d.Name)
	case len(children) > 0:
		d.Group = xschema.GroupSeq
		d.Children = children
	case isText:
		d.Group = xschema.GroupText
		d.Type = xschema.TypeString
	default:
		d.Group = xschema.GroupEmpty
	}
	return d, nil
}

// RewriteChained rewrites stage2 against the statically-typed OUTPUT of an
// already-rewritten stage1 — the paper's recursive XSLT-over-XSLT case
// (§3.2). The result is a query to run against stage1's output documents.
func RewriteChained(stage1 *Result, stage2 *xslt.Stylesheet, mode Mode) (*Result, error) {
	schema, err := DeriveOutputSchema(stage1.Module)
	if err != nil {
		return nil, err
	}
	return Rewrite(stage2, schema, mode)
}
