package core

import (
	"repro/internal/xpath"
	"repro/internal/xquery"
	"repro/internal/xschema"
)

// patternCondition compiles an XSLT match pattern into an XQuery boolean
// condition over the candidate variable (the reversed-evaluation scheme of
// [6]/[9]): the candidate must pass the last step's kind/name test and its
// predicates; earlier steps become parent/ancestor existence tests.
//
// When a schema is supplied, parent-axis tests that the schema guarantees
// are removed (§3.5, Tables 16-19): if "empno" can only occur under "emp",
// the pattern "emp/empno" needs no fn:exists($c/parent::emp) conjunct.
func patternCondition(pat *xpath.Pattern, candVar string, schema *xschema.Schema, bc *bodyCompiler, env convEnv) (xquery.Expr, error) {
	var alts []xquery.Expr
	for _, alt := range pat.Alternatives {
		cond, err := altCondition(alt, candVar, schema, bc, env)
		if err != nil {
			return nil, err
		}
		alts = append(alts, cond)
	}
	return orAll(alts), nil
}

func altCondition(alt *xpath.PathPattern, candVar string, schema *xschema.Schema, bc *bodyCompiler, env convEnv) (xquery.Expr, error) {
	cand := xquery.VarRef(candVar)
	if len(alt.Steps) == 0 {
		// Pattern "/": candidate is the document node — the initial
		// context only; approximate as "has no parent".
		return &xquery.FuncCall{Name: "fn:empty", Args: []xquery.Expr{
			parentPath(cand, xpath.NodeTest{Kind: xpath.TestNode}),
		}}, nil
	}

	var conds []xquery.Expr
	last := alt.Steps[len(alt.Steps)-1]

	// Kind/name test on the candidate itself.
	if t, ok := kindTest(last); ok {
		conds = append(conds, &xquery.InstanceOf{X: cand, Type: t})
	}

	// Predicates of the last step.
	for _, pred := range last.Preds {
		pc, err := stepPredicate(cand, pred, env)
		if err != nil {
			return nil, err
		}
		conds = append(conds, pc)
	}

	// Ancestor chain, right to left, built as a growing reverse path.
	candName := ""
	if last.Test.Kind == xpath.TestName {
		candName = last.Test.Name
	}
	chain := xquery.Expr(cand)
	childName := candName
	guaranteed := schema != nil
	for i := len(alt.Steps) - 2; i >= 0; i-- {
		step := alt.Steps[i]
		ancestorSep := alt.Ancestor[i+1] // how step i+1 attaches to step i
		axis := xpath.AxisParent
		if ancestorSep {
			axis = xpath.AxisAncestor
		}
		chain = &xquery.Path{Base: chain, Steps: []*xquery.Step{{
			Axis: axis, Test: step.Test,
		}}}
		// Predicates on ancestor steps evaluate with the ancestor as
		// context.
		needTest := true
		if guaranteed && !ancestorSep && step.Test.Kind == xpath.TestName && len(step.Preds) == 0 && childName != "" {
			if schema.OnlyParent(childName) == step.Test.Name {
				needTest = false
				bc.note("removed parent-axis test parent::%s for %s (schema-guaranteed, §3.5)", step.Test.Name, childName)
			}
		}
		if len(step.Preds) > 0 {
			withPreds := chain.(*xquery.Path)
			for _, pred := range step.Preds {
				cp, err := convertExpr(pred, env.inPredicate())
				if err != nil {
					return nil, err
				}
				withPreds.Steps[len(withPreds.Steps)-1].Preds = append(withPreds.Steps[len(withPreds.Steps)-1].Preds, cp)
			}
			needTest = true
		}
		if needTest {
			conds = append(conds, existsOf(chain))
		}
		if step.Test.Kind == xpath.TestName {
			childName = step.Test.Name
		} else {
			childName = ""
		}
		if ancestorSep {
			guaranteed = false // ancestors beyond // are not tracked
		}
	}

	// Root anchoring: "/a/b" requires the chain to end at the document.
	if alt.Root && !alt.Ancestor[0] {
		rootGuaranteed := false
		if schema != nil && schema.Root != nil {
			top := alt.Steps[0]
			if top.Test.Kind == xpath.TestName && top.Test.Name == schema.Root.Name && len(alt.Steps) >= 1 {
				rootGuaranteed = true
				bc.note("removed document-root test for /%s (schema root, §3.5)", top.Test.Name)
			}
		}
		if !rootGuaranteed {
			// The element at the top of the chain must have no element
			// parent.
			top := chain
			conds = append(conds, &xquery.FuncCall{Name: "fn:empty", Args: []xquery.Expr{
				parentPath(top, xpath.NodeTest{Kind: xpath.TestAnyName}),
			}})
		}
	}

	return andAll(conds), nil
}

// stepPredicate compiles one pattern predicate on the candidate: a numeric
// literal becomes a sibling-position equation; anything else becomes
// fn:exists(($c)[pred]).
func stepPredicate(cand xquery.Expr, pred xpath.Expr, env convEnv) (xquery.Expr, error) {
	if num, ok := pred.(xpath.NumberExpr); ok {
		// position among like-named preceding siblings + 1 == num
		precedingSame := &xquery.Path{Base: cand, Steps: []*xquery.Step{{
			Axis: xpath.AxisPrecedingSibling,
			Test: xpath.NodeTest{Kind: xpath.TestAnyName},
			Preds: []xquery.Expr{&xquery.Binary{
				Op: xquery.OpEq,
				L:  &xquery.FuncCall{Name: "fn:local-name"},
				R:  &xquery.FuncCall{Name: "fn:local-name", Args: []xquery.Expr{cand}},
			}},
		}}}
		count := &xquery.FuncCall{Name: "fn:count", Args: []xquery.Expr{precedingSame}}
		return &xquery.Binary{
			Op: xquery.OpEq,
			L:  &xquery.Binary{Op: xquery.OpAdd, L: count, R: xquery.NumberLit(1)},
			R:  xquery.NumberLit(float64(num)),
		}, nil
	}
	cp, err := convertExpr(pred, env.inPredicate())
	if err != nil {
		return nil, err
	}
	return existsOf(&xquery.Filter{Base: cand, Preds: []xquery.Expr{cp}}), nil
}

// kindTest maps a pattern's final node test to an XQuery sequence type.
// ok=false means the test is trivially true (node()).
func kindTest(step *xpath.Step) (xquery.SeqType, bool) {
	isAttr := step.Axis == xpath.AxisAttribute
	switch step.Test.Kind {
	case xpath.TestName:
		if isAttr {
			return xquery.SeqType{Kind: xquery.SeqTypeAttribute, Name: step.Test.Name}, true
		}
		return xquery.SeqType{Kind: xquery.SeqTypeElement, Name: step.Test.Name}, true
	case xpath.TestAnyName, xpath.TestNSName:
		if isAttr {
			return xquery.SeqType{Kind: xquery.SeqTypeAttribute}, true
		}
		return xquery.SeqType{Kind: xquery.SeqTypeElement}, true
	case xpath.TestText:
		return xquery.SeqType{Kind: xquery.SeqTypeText}, true
	case xpath.TestComment:
		return xquery.SeqType{Kind: xquery.SeqTypeComment}, true
	case xpath.TestPI:
		return xquery.SeqType{Kind: xquery.SeqTypePI}, true
	default: // node()
		return xquery.SeqType{}, false
	}
}

func parentPath(base xquery.Expr, test xpath.NodeTest) xquery.Expr {
	return &xquery.Path{Base: base, Steps: []*xquery.Step{{
		Axis: xpath.AxisParent, Test: test,
	}}}
}

func andAll(conds []xquery.Expr) xquery.Expr {
	if len(conds) == 0 {
		return &xquery.FuncCall{Name: "fn:true"}
	}
	out := conds[0]
	for _, c := range conds[1:] {
		out = &xquery.Binary{Op: xquery.OpAnd, L: out, R: c}
	}
	return out
}

func orAll(conds []xquery.Expr) xquery.Expr {
	if len(conds) == 0 {
		return &xquery.FuncCall{Name: "fn:false"}
	}
	out := conds[0]
	for _, c := range conds[1:] {
		out = &xquery.Binary{Op: xquery.OpOr, L: out, R: c}
	}
	return out
}

// isUnconditionalFor reports whether the pattern's last step has no
// predicates — i.e. once the kind/name test passes, the template always
// fires (used to terminate dispatch chains, Tables 18-19).
func isUnconditionalFor(pat *xpath.Pattern) bool {
	for _, alt := range pat.Alternatives {
		if len(alt.Steps) == 0 {
			return true
		}
		if len(alt.Steps[len(alt.Steps)-1].Preds) == 0 {
			return true
		}
	}
	return false
}
