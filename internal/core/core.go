package core

import (
	"fmt"
	"sort"

	"repro/internal/pe"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

// Mode selects the XSLT→XQuery generation strategy.
type Mode uint8

// Generation modes.
const (
	// ModeAuto follows the paper: builtin-only compaction, else inline when
	// the execution graph is acyclic, else non-inline.
	ModeAuto Mode = iota
	// ModeStraightforward is the Fokoue et al. [9] baseline (no schema
	// needed, no partial evaluation).
	ModeStraightforward
	// ModeInline forces full inlining (fails when recursion is present).
	ModeInline
	// ModeNonInline forces function-per-template generation using PE
	// information.
	ModeNonInline
	// ModePartialInline implements the paper's §7.2 future work: functions
	// only for templates on recursion cycles; everything else inlines at
	// its activation sites.
	ModePartialInline
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeStraightforward:
		return "straightforward"
	case ModeInline:
		return "inline"
	case ModeNonInline:
		return "non-inline"
	case ModePartialInline:
		return "partial-inline"
	}
	return "?"
}

// Result is a completed rewrite.
type Result struct {
	// Module is the generated XQuery. The query expects the input document
	// as the initial context item (the XMLQuery(... PASSING doc) value).
	Module *xquery.Module
	// Mode is the strategy actually used (informative when ModeAuto).
	Mode Mode
	// Inlined reports full inlining (no function calls), the statistic the
	// paper's §5 reports as "23 out of 40".
	Inlined bool
	// PE is the partial-evaluation result (nil in straightforward mode).
	PE *pe.Result
	// Notes lists applied optimizations (template inlining, cardinality
	// decisions, parent-axis eliminations, dead-template removals).
	Notes []string
}

// Rewrite compiles the stylesheet into XQuery. schema may be nil only for
// ModeStraightforward.
func Rewrite(sheet *xslt.Stylesheet, schema *xschema.Schema, mode Mode) (*Result, error) {
	if mode == ModeStraightforward {
		return rewriteStraightforward(sheet)
	}
	if schema == nil {
		return nil, convErrf("modes other than straightforward require the input schema (§3.2)")
	}
	peRes, err := pe.Evaluate(sheet, schema)
	if err != nil {
		return nil, err
	}
	switch mode {
	case ModeInline:
		if peRes.Recursive {
			return nil, convErrf("inline mode impossible: %s", peRes.RecursionReason)
		}
		return rewriteInline(peRes)
	case ModeNonInline:
		return rewriteNonInline(peRes, false)
	case ModePartialInline:
		return rewriteNonInline(peRes, true)
	default: // ModeAuto, §4.4 (+ §7.2 partial inline for the recursive case)
		if peRes.BuiltinOnly {
			return rewriteBuiltinOnly(peRes)
		}
		if peRes.Recursive {
			if res, err := rewriteNonInline(peRes, true); err == nil {
				return res, nil
			}
			// Partial inlining can hit edge cases the trace missed; the
			// pure non-inline translation is always available.
			return rewriteNonInline(peRes, false)
		}
		return rewriteInline(peRes)
	}
}

// rewriteBuiltinOnly emits the compact built-in-template-only query of
// §3.6 / Table 21: join the string values of all descendant text nodes.
func rewriteBuiltinOnly(peRes *pe.Result) (*Result, error) {
	m := &xquery.Module{
		Vars: []*xquery.VarDecl{{Name: "var000", Init: xquery.ContextItem{}}},
	}
	loopVar := "var002" // Table 21 numbering
	inner := &xquery.FLWOR{
		Clauses: []xquery.Clause{{
			Kind: xquery.ClauseFor, Var: loopVar,
			In: descendantTextPath(xquery.VarRef("var000")),
		}},
		Return: stringOf(xquery.VarRef(loopVar)),
	}
	m.Body = &xquery.Annotated{
		Comment: "builtin template",
		X: &xquery.CompText{Body: &xquery.FuncCall{
			Name: "fn:string-join",
			Args: []xquery.Expr{inner, xquery.StringLit("")},
		}},
	}
	return &Result{
		Module:  m,
		Mode:    ModeInline,
		Inlined: true,
		PE:      peRes,
		Notes:   []string{"builtin-template-only compaction (§3.6, Table 21)"},
	}, nil
}

func descendantTextPath(base xquery.Expr) xquery.Expr {
	return &xquery.Path{Base: base, Steps: []*xquery.Step{
		dosNodeStep(),
		textTestStep(),
	}}
}

// templatesByPrecedence orders templates for dispatch chains: highest
// priority first, later document order first within a priority.
func templatesByPrecedence(ts []*xslt.Template) []*xslt.Template {
	out := append([]*xslt.Template{}, ts...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Index > out[j].Index
	})
	return out
}

// matchTemplates returns the match-pattern templates of the sheet for the
// given mode, in dispatch order.
func matchTemplates(sheet *xslt.Stylesheet, mode string) []*xslt.Template {
	var ts []*xslt.Template
	for _, t := range sheet.Templates {
		if t.Match != nil && t.Mode == mode {
			ts = append(ts, t)
		}
	}
	return templatesByPrecedence(ts)
}

// modesOf returns every mode used by match templates, "" first.
func modesOf(sheet *xslt.Stylesheet) []string {
	seen := map[string]bool{"": true}
	out := []string{""}
	for _, t := range sheet.Templates {
		if t.Match != nil && !seen[t.Mode] {
			seen[t.Mode] = true
			out = append(out, t.Mode)
		}
	}
	return out
}

// funcNameForTemplate builds the local:* function name for a template.
func funcNameForTemplate(t *xslt.Template) string {
	if t.Name != "" {
		return "local:named-" + sanitizeNCName(t.Name)
	}
	return fmt.Sprintf("local:template-%d", t.Index)
}

func applyFuncName(mode string) string {
	if mode == "" {
		return "local:apply"
	}
	return "local:apply-" + sanitizeNCName(mode)
}

func builtinFuncName(mode string) string {
	if mode == "" {
		return "local:builtin"
	}
	return "local:builtin-" + sanitizeNCName(mode)
}

func sanitizeNCName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}
