package core

import (
	"fmt"

	"repro/internal/xpath"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

// applyHost is implemented by each generation mode; it decides what an
// apply-templates or call-template instruction turns into.
type applyHost interface {
	compileApply(at *xslt.ApplyTemplates, env bodyEnv) (xquery.Expr, error)
	compileCall(ct *xslt.CallTemplate, env bodyEnv) (xquery.Expr, error)
}

// bodyEnv is the compilation context of a sequence constructor.
type bodyEnv struct {
	conv convEnv
	// decl is the schema declaration of the context element, when known
	// (inline mode); nil otherwise.
	decl *xschema.ElemDecl
	// rtfVars records variables bound to result tree fragments, whose
	// copy-of unwraps the fragment wrapper.
	rtfVars map[string]bool
	// overrides carries with-param values (by stylesheet parameter name)
	// into an inlined template's parameter binding.
	overrides map[string]xquery.Expr
}

func (e bodyEnv) withCtx(ctx xquery.Expr, decl *xschema.ElemDecl) bodyEnv {
	e.conv.ctx = ctx
	e.conv.current = ctx
	e.conv.posVar = ""
	e.conv.sizeVar = ""
	e.decl = decl
	return e
}

// markRTF returns a copy of env with name registered as an RTF variable.
func (e bodyEnv) markRTF(name string) bodyEnv {
	e.rtfVars = copySet(e.rtfVars)
	e.rtfVars[name] = true
	return e
}

// varGen issues fresh $varNNN names in the style of the paper's Table 8.
type varGen struct{ n int }

func (g *varGen) fresh() string {
	g.n++
	return fmt.Sprintf("var%03d", g.n)
}

// bodyCompiler translates instruction sequences to XQuery expressions.
type bodyCompiler struct {
	host applyHost
	vars *varGen
	// notes accumulate human-readable records of applied optimizations.
	notes *[]string
}

func (bc *bodyCompiler) note(format string, args ...any) {
	if bc.notes != nil {
		*bc.notes = append(*bc.notes, fmt.Sprintf(format, args...))
	}
}

// rtfWrapperName wraps result-tree-fragment variable values.
const rtfWrapperName = "xdb-rtf"

// compileSeq compiles a sequence constructor into one expression.
// directContent marks compilation for the immediate children of an element
// constructor (literal text may stay literal there).
func (bc *bodyCompiler) compileSeq(body []xslt.Instruction, env bodyEnv, directContent bool) (xquery.Expr, error) {
	items, err := bc.compileItems(body, env, directContent)
	if err != nil {
		return nil, err
	}
	switch len(items) {
	case 0:
		return xquery.EmptySeq{}, nil
	case 1:
		return items[0], nil
	default:
		return &xquery.Sequence{Items: items}, nil
	}
}

// compileItems compiles each instruction; xsl:variable rebinds the tail of
// the list under a let.
func (bc *bodyCompiler) compileItems(body []xslt.Instruction, env bodyEnv, directContent bool) ([]xquery.Expr, error) {
	var items []xquery.Expr
	for i, instr := range body {
		if dv, ok := instr.(*xslt.DeclareVar); ok {
			letExpr, err := bc.compileVarBinding(dv.Def, body[i+1:], env, directContent)
			if err != nil {
				return nil, err
			}
			items = append(items, letExpr)
			return items, nil
		}
		e, err := bc.compileInstr(instr, env, directContent)
		if err != nil {
			return nil, err
		}
		if e != nil {
			items = append(items, e)
		}
	}
	return items, nil
}

// compileVarBinding compiles `xsl:variable` + the remaining instructions
// into `let $v := value return (rest)`.
func (bc *bodyCompiler) compileVarBinding(def *xslt.VarDef, rest []xslt.Instruction, env bodyEnv, directContent bool) (xquery.Expr, error) {
	name := userVarName(def.Name)
	var value xquery.Expr
	isRTF := false
	switch {
	case def.Select != nil:
		v, err := convertExpr(def.Select, env.conv)
		if err != nil {
			return nil, err
		}
		value = v
	case len(def.Body) > 0:
		inner, err := bc.compileSeq(def.Body, env, false)
		if err != nil {
			return nil, err
		}
		// Result tree fragments become a wrapper element whose string
		// value matches; copy-of unwraps with /node().
		value = &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}
		isRTF = true
	default:
		value = xquery.StringLit("")
	}
	tailEnv := env
	if isRTF {
		tailEnv.rtfVars = copySet(env.rtfVars)
		tailEnv.rtfVars[name] = true
	}
	ret, err := bc.compileSeq(rest, tailEnv, directContent)
	if err != nil {
		return nil, err
	}
	return &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseLet, Var: name, In: value}},
		Return:  ret,
	}, nil
}

func copySet(m map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range m {
		out[k] = true
	}
	return out
}

// userVarName maps stylesheet variable names into the generated query's
// namespace, avoiding collisions with $varNNN.
func userVarName(name string) string { return "u-" + name }

func (bc *bodyCompiler) compileInstr(instr xslt.Instruction, env bodyEnv, directContent bool) (xquery.Expr, error) {
	switch in := instr.(type) {
	case *xslt.Text:
		return bc.textExpr(in.Data, directContent), nil
	case *xslt.MakeText:
		return bc.textExpr(in.Data, directContent), nil

	case *xslt.ValueOf:
		sel, err := convertExpr(in.Select, env.conv)
		if err != nil {
			return nil, err
		}
		if directContent {
			return stringOf(sel), nil
		}
		return &xquery.CompText{Body: stringOf(sel)}, nil

	case *xslt.LiteralElement:
		el := &xquery.DirectElem{Name: in.QName}
		for _, a := range in.Attrs {
			parts, err := bc.avtParts(a.Value, env)
			if err != nil {
				return nil, err
			}
			el.Attrs = append(el.Attrs, xquery.DirectAttr{Name: a.QName, Parts: parts})
		}
		kids, err := bc.compileItems(in.Body, env, true)
		if err != nil {
			return nil, err
		}
		el.Children = kids
		return el, nil

	case *xslt.MakeElement:
		name, err := bc.avtExpr(in.Name, env)
		if err != nil {
			return nil, err
		}
		body, err := bc.compileSeq(in.Body, env, false)
		if err != nil {
			return nil, err
		}
		return &xquery.CompElem{Name: name, Body: body}, nil

	case *xslt.MakeAttribute:
		name, err := bc.avtExpr(in.Name, env)
		if err != nil {
			return nil, err
		}
		body, err := bc.compileSeq(in.Body, env, false)
		if err != nil {
			return nil, err
		}
		// Attribute value is the string value of the body.
		return &xquery.CompAttr{Name: name, Body: stringJoinValue(body)}, nil

	case *xslt.MakeComment:
		body, err := bc.compileSeq(in.Body, env, false)
		if err != nil {
			return nil, err
		}
		return &xquery.CompComment{Body: stringJoinValue(body)}, nil

	case *xslt.MakePI:
		name, err := bc.avtExpr(in.Name, env)
		if err != nil {
			return nil, err
		}
		body, err := bc.compileSeq(in.Body, env, false)
		if err != nil {
			return nil, err
		}
		return &xquery.CompPI{Name: name, Body: stringJoinValue(body)}, nil

	case *xslt.If:
		cond, err := convertExpr(in.Test, env.conv)
		if err != nil {
			return nil, err
		}
		then, err := bc.compileSeq(in.Body, env, false)
		if err != nil {
			return nil, err
		}
		return &xquery.IfExpr{Cond: cond, Then: then, Else: xquery.EmptySeq{}}, nil

	case *xslt.Choose:
		return bc.compileChoose(in, env)

	case *xslt.ForEach:
		return bc.compileForEach(in, env)

	case *xslt.ApplyTemplates:
		return bc.host.compileApply(in, env)

	case *xslt.CallTemplate:
		return bc.host.compileCall(in, env)

	case *xslt.CopyOf:
		sel, err := convertExpr(in.Select, env.conv)
		if err != nil {
			return nil, err
		}
		// RTF variables unwrap their fragment wrapper.
		if v, ok := xquery.Unwrap(sel).(xquery.VarRef); ok && env.rtfVars[string(v)] {
			return nodeStep(sel), nil
		}
		return sel, nil

	case *xslt.Copy:
		return bc.compileCopy(in, env)

	case *xslt.NumberInstr:
		return bc.compileNumber(in, env, directContent)

	case *xslt.Message:
		bc.note("xsl:message dropped from the rewritten query")
		return nil, nil

	case *xslt.DeclareVar:
		// Handled by compileItems; reaching here means a variable is the
		// last instruction — it binds nothing.
		return nil, nil
	}
	return nil, convErrf("cannot rewrite instruction %T", instr)
}

func (bc *bodyCompiler) textExpr(data string, directContent bool) xquery.Expr {
	if directContent {
		return xquery.TextLit(data)
	}
	return &xquery.CompText{Body: xquery.StringLit(data)}
}

// stringJoinValue turns a content expression into its XSLT string value:
// the concatenation (no separators) of the string values of the items.
// Common single-item shapes simplify so the result stays lowerable.
func stringJoinValue(body xquery.Expr) xquery.Expr {
	switch x := xquery.Unwrap(body).(type) {
	case xquery.EmptySeq:
		return xquery.StringLit("")
	case xquery.StringLit:
		return x
	case *xquery.CompText:
		// A single text node's string value is its content expression.
		return x.Body
	case *xquery.FuncCall:
		if x.Name == "fn:string" || x.Name == "fn:concat" {
			return x
		}
	case *xquery.Sequence:
		// A sequence of text/string items concatenates via fn:concat.
		args := make([]xquery.Expr, 0, len(x.Items))
		for _, it := range x.Items {
			switch itx := xquery.Unwrap(it).(type) {
			case xquery.StringLit:
				args = append(args, itx)
			case *xquery.CompText:
				args = append(args, itx.Body)
			default:
				args = nil
			}
			if args == nil {
				break
			}
		}
		if args != nil && len(args) >= 2 {
			return &xquery.FuncCall{Name: "fn:concat", Args: args}
		}
	}
	return &xquery.FuncCall{Name: "fn:string-join", Args: []xquery.Expr{
		flworOver(body), xquery.StringLit(""),
	}}
}

// flworOver maps fn:string over each item of e: for $x in e return
// fn:string($x).
func flworOver(e xquery.Expr) xquery.Expr {
	return &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: "xdb-s", In: e}},
		Return:  stringOf(xquery.VarRef("xdb-s")),
	}
}

func (bc *bodyCompiler) compileChoose(ch *xslt.Choose, env bodyEnv) (xquery.Expr, error) {
	var out xquery.Expr = xquery.EmptySeq{}
	if len(ch.Otherwise) > 0 {
		e, err := bc.compileSeq(ch.Otherwise, env, false)
		if err != nil {
			return nil, err
		}
		out = e
	}
	for i := len(ch.Whens) - 1; i >= 0; i-- {
		w := ch.Whens[i]
		cond, err := convertExpr(w.Test, env.conv)
		if err != nil {
			return nil, err
		}
		then, err := bc.compileSeq(w.Body, env, false)
		if err != nil {
			return nil, err
		}
		out = &xquery.IfExpr{Cond: cond, Then: then, Else: out}
	}
	return out, nil
}

func (bc *bodyCompiler) compileForEach(fe *xslt.ForEach, env bodyEnv) (xquery.Expr, error) {
	sel, err := convertExpr(fe.Select, env.conv)
	if err != nil {
		return nil, err
	}
	v := bc.vars.fresh()
	inner := env.withCtx(xquery.VarRef(v), bc.resolveDecl(env, fe.Select))

	fl := &xquery.FLWOR{}
	needPos := usesPositionOrLast(fe.Body)
	cl := xquery.Clause{Kind: xquery.ClauseFor, Var: v, In: sel}
	if needPos {
		cl.At = v + "-pos"
		inner.conv.posVar = cl.At
		// last(): bind the count once, outside the loop.
		sizeVar := v + "-size"
		inner.conv.sizeVar = sizeVar
		fl.Clauses = append(fl.Clauses, xquery.Clause{
			Kind: xquery.ClauseLet, Var: sizeVar,
			In: &xquery.FuncCall{Name: "fn:count", Args: []xquery.Expr{sel}},
		})
	}
	fl.Clauses = append(fl.Clauses, cl)
	for _, sk := range fe.Sorts {
		keyEnv := inner.conv
		key, err := convertExpr(sk.Select, keyEnv)
		if err != nil {
			return nil, err
		}
		if sk.Numeric {
			key = &xquery.FuncCall{Name: "fn:number", Args: []xquery.Expr{key}}
		} else {
			key = stringOf(key)
		}
		fl.Order = append(fl.Order, xquery.OrderKey{Expr: key, Descending: sk.Descending})
	}
	ret, err := bc.compileSeq(fe.Body, inner, false)
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

// resolveDecl follows a simple child path from the current declaration to
// find the declaration of selected elements; nil when unknown.
func (bc *bodyCompiler) resolveDecl(env bodyEnv, sel xpath.Expr) *xschema.ElemDecl {
	if env.decl == nil {
		return nil
	}
	p, ok := sel.(*xpath.PathExpr)
	if !ok || p.Abs || p.Start != nil {
		return nil
	}
	cur := env.decl
	for _, s := range p.Steps {
		if s.Axis != xpath.AxisChild || s.Test.Kind != xpath.TestName {
			return nil
		}
		part := cur.Particle(s.Test.Name)
		if part == nil {
			return nil
		}
		cur = part.Child
	}
	return cur
}

// compileCopy lowers xsl:copy to a kind dispatch over the context node.
func (bc *bodyCompiler) compileCopy(cp *xslt.Copy, env bodyEnv) (xquery.Expr, error) {
	ctx := contextItemExpr(env.conv)
	body, err := bc.compileSeq(cp.Body, env, false)
	if err != nil {
		return nil, err
	}
	nameOf := &xquery.FuncCall{Name: "fn:name", Args: []xquery.Expr{ctx}}
	elem := &xquery.CompElem{Name: nameOf, Body: body}
	text := &xquery.CompText{Body: stringOf(ctx)}
	attr := &xquery.CompAttr{Name: nameOf, Body: stringOf(ctx)}
	comment := &xquery.CompComment{Body: stringOf(ctx)}
	pi := &xquery.CompPI{Name: nameOf, Body: stringOf(ctx)}

	isKind := func(k xquery.SeqTypeKind) xquery.Expr {
		return &xquery.InstanceOf{X: ctx, Type: xquery.SeqType{Kind: k}}
	}
	return &xquery.IfExpr{
		Cond: isKind(xquery.SeqTypeElement), Then: elem,
		Else: &xquery.IfExpr{
			Cond: isKind(xquery.SeqTypeText), Then: text,
			Else: &xquery.IfExpr{
				Cond: isKind(xquery.SeqTypeAttribute), Then: attr,
				Else: &xquery.IfExpr{
					Cond: isKind(xquery.SeqTypeComment), Then: comment,
					Else: &xquery.IfExpr{
						Cond: isKind(xquery.SeqTypePI), Then: pi,
						Else: body, // document node: content only
					},
				},
			},
		},
	}, nil
}

// compileNumber lowers xsl:number.
func (bc *bodyCompiler) compileNumber(n *xslt.NumberInstr, env bodyEnv, directContent bool) (xquery.Expr, error) {
	if n.Value != nil {
		v, err := convertExpr(n.Value, env.conv)
		if err != nil {
			return nil, err
		}
		s := stringOf(&xquery.FuncCall{Name: "fn:number", Args: []xquery.Expr{v}})
		if directContent {
			return s, nil
		}
		return &xquery.CompText{Body: s}, nil
	}
	ctx := contextItemExpr(env.conv)
	// count(preceding-sibling nodes with the same name) + 1
	precedingSame := &xquery.Path{Base: ctx, Steps: []*xquery.Step{{
		Axis: xpath.AxisPrecedingSibling,
		Test: xpath.NodeTest{Kind: xpath.TestAnyName},
		Preds: []xquery.Expr{&xquery.Binary{
			Op: xquery.OpEq,
			L:  &xquery.FuncCall{Name: "fn:local-name"},
			R:  &xquery.FuncCall{Name: "fn:local-name", Args: []xquery.Expr{ctx}},
		}},
	}}}
	count := &xquery.FuncCall{Name: "fn:count", Args: []xquery.Expr{precedingSame}}
	s := stringOf(&xquery.Binary{Op: xquery.OpAdd, L: count, R: xquery.NumberLit(1)})
	if directContent {
		return s, nil
	}
	return &xquery.CompText{Body: s}, nil
}

// avtParts converts an attribute value template into direct-attribute
// parts.
func (bc *bodyCompiler) avtParts(a *xslt.AVT, env bodyEnv) ([]xquery.AttrValuePart, error) {
	var parts []xquery.AttrValuePart
	for _, p := range a.Parts {
		if p.Expr == nil {
			parts = append(parts, xquery.AttrValuePart{Text: p.Text})
			continue
		}
		e, err := convertExpr(p.Expr, env.conv)
		if err != nil {
			return nil, err
		}
		parts = append(parts, xquery.AttrValuePart{Expr: stringOf(e)})
	}
	return parts, nil
}

// avtExpr converts an AVT into a single string expression.
func (bc *bodyCompiler) avtExpr(a *xslt.AVT, env bodyEnv) (xquery.Expr, error) {
	if a.IsLiteral() {
		return xquery.StringLit(a.LiteralValue()), nil
	}
	var args []xquery.Expr
	for _, p := range a.Parts {
		if p.Expr == nil {
			args = append(args, xquery.StringLit(p.Text))
			continue
		}
		e, err := convertExpr(p.Expr, env.conv)
		if err != nil {
			return nil, err
		}
		args = append(args, stringOf(e))
	}
	if len(args) == 1 {
		return args[0], nil
	}
	return &xquery.FuncCall{Name: "fn:concat", Args: args}, nil
}

// usesPositionOrLast reports whether any expression in the body calls
// position() or last() in the immediate context (not inside nested
// for-each, whose own loops provide the context).
func usesPositionOrLast(body []xslt.Instruction) bool {
	found := false
	var checkExpr func(e xpath.Expr)
	checkExpr = func(e xpath.Expr) {
		if e == nil || found {
			return
		}
		switch x := e.(type) {
		case *xpath.FuncExpr:
			name := x.Name
			if name == "position" || name == "last" || name == "fn:position" || name == "fn:last" {
				found = true
				return
			}
			for _, a := range x.Args {
				checkExpr(a)
			}
		case *xpath.BinaryExpr:
			checkExpr(x.L)
			checkExpr(x.R)
		case *xpath.NegExpr:
			checkExpr(x.X)
		case *xpath.PathExpr:
			checkExpr(x.Start)
			// Predicates establish their own context; skip them.
		}
	}
	var walk func([]xslt.Instruction)
	walk = func(instrs []xslt.Instruction) {
		for _, in := range instrs {
			if found {
				return
			}
			switch x := in.(type) {
			case *xslt.ValueOf:
				checkExpr(x.Select)
			case *xslt.CopyOf:
				checkExpr(x.Select)
			case *xslt.If:
				checkExpr(x.Test)
				walk(x.Body)
			case *xslt.Choose:
				for _, w := range x.Whens {
					checkExpr(w.Test)
					walk(w.Body)
				}
				walk(x.Otherwise)
			case *xslt.LiteralElement:
				for _, a := range x.Attrs {
					for _, p := range a.Value.Parts {
						checkExpr(p.Expr)
					}
				}
				walk(x.Body)
			case *xslt.MakeElement:
				walk(x.Body)
			case *xslt.MakeAttribute:
				walk(x.Body)
			case *xslt.MakeComment:
				walk(x.Body)
			case *xslt.MakePI:
				walk(x.Body)
			case *xslt.Copy:
				walk(x.Body)
			case *xslt.DeclareVar:
				checkExpr(x.Def.Select)
				walk(x.Def.Body)
			case *xslt.ApplyTemplates:
				checkExpr(x.Select)
			case *xslt.ForEach:
				checkExpr(x.Select)
				// The nested loop provides its own position context.
			case *xslt.NumberInstr:
				checkExpr(x.Value)
			}
		}
	}
	walk(body)
	return found
}
