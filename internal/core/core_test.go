package core

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
	"repro/internal/xtest"
)

const deptSchema = `
dept      := dname, loc, employees
employees := emp*
emp       := empno:int, ename, sal:int
`

func wrap(body string) string {
	return `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + body + `</xsl:stylesheet>`
}

// nows strips whitespace differences for golden comparisons.
func nows(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	return strings.ReplaceAll(s, "> <", "><")
}

// rewriteFor compiles a stylesheet against a schema in the given mode.
func rewriteFor(t *testing.T, stylesheet, schema string, mode Mode) *Result {
	t.Helper()
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		t.Fatal(err)
	}
	var s *xschema.Schema
	if schema != "" {
		s, err = xschema.ParseCompact(schema)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := Rewrite(sheet, s, mode)
	if err != nil {
		t.Fatalf("Rewrite(%v): %v", mode, err)
	}
	return res
}

// runQuery executes a generated module over a document.
func runQuery(t *testing.T, m *xquery.Module, doc *xmltree.Node) string {
	t.Helper()
	out, err := xquery.EvalModule(m, xquery.NewEnv(xquery.Item(doc)))
	if err != nil {
		t.Fatalf("generated query failed: %v\nquery:\n%s", err, m.String())
	}
	return xquery.SerializeSeq(out)
}

// interpOut runs the reference XSLT interpreter.
func interpOut(t *testing.T, stylesheet string, doc *xmltree.Node) string {
	t.Helper()
	sheet := xtest.Sheet(t, stylesheet)
	out, err := xslt.New(sheet).TransformToString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func parseDoc(t *testing.T, src string) *xmltree.Node {
	t.Helper()
	d, err := xmltree.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// stripInputWS removes whitespace-only text nodes: schema-generated inputs
// have none, and the rewrite (specialized to the schema) legitimately drops
// them while the functional interpreter copies them.
func stripInputWS(doc *xmltree.Node) *xmltree.Node {
	var strip func(n *xmltree.Node)
	strip = func(n *xmltree.Node) {
		kept := n.Children[:0]
		for _, c := range n.Children {
			if c.Kind == xmltree.TextNode && strings.TrimSpace(c.Data) == "" {
				continue
			}
			strip(c)
			kept = append(kept, c)
		}
		n.Children = kept
	}
	strip(doc)
	doc.Renumber()
	return doc
}

// equivCase checks interpreter-vs-rewrite equivalence in every applicable
// mode.
func equivCase(t *testing.T, name, stylesheet, schema, input string, modes ...Mode) {
	t.Helper()
	doc := stripInputWS(parseDoc(t, input))
	want := interpOut(t, stylesheet, doc)
	if len(modes) == 0 {
		modes = []Mode{ModeStraightforward, ModeInline, ModeNonInline, ModeAuto}
	}
	for _, mode := range modes {
		t.Run(name+"/"+mode.String(), func(t *testing.T) {
			res := rewriteFor(t, stylesheet, schema, mode)
			got := runQuery(t, res.Module, doc)
			if nows(got) != nows(want) {
				t.Fatalf("mode %v diverges from interpreter:\n got:  %s\n want: %s\nquery:\n%s",
					mode, nows(got), nows(want), res.Module.String())
			}
		})
	}
}

// TestExample1AllModes is the repository's most important test: the paper's
// Example 1 produces Table 6 through every translation mode.
func TestExample1AllModes(t *testing.T) {
	equivCase(t, "row1", xslt.PaperStylesheet, deptSchema, xslt.PaperDeptRow1)
	equivCase(t, "row2", xslt.PaperStylesheet, deptSchema, xslt.PaperDeptRow2)
}

// TestExample1RewriteShape checks the generated inline query against the
// structure of paper Table 8.
func TestExample1RewriteShape(t *testing.T) {
	res := rewriteFor(t, xslt.PaperStylesheet, deptSchema, ModeInline)
	q := res.Module.String()

	for _, frag := range []string{
		"declare variable $var000 := .;",
		"(: builtin template :)",
		"$var000/dept",
		`(: <xsl:template match="dept"> :)`,
		"<H1>HIGHLY PAID DEPT EMPLOYEES</H1>",
		`(: <xsl:template match="dname"> :)`,
		`(: <xsl:template match="loc"> :)`,
		`(: <xsl:template match="employees"> :)`,
		"emp[sal > 2000]",
		`(: <xsl:template match="emp"> :)`,
		"<td>",
		"fn:string(",
	} {
		if !strings.Contains(q, frag) {
			t.Errorf("generated query missing %q:\n%s", frag, q)
		}
	}
	// Table 8's key property: full inlining — no function declarations, no
	// conditional dispatch.
	if len(res.Module.Funcs) != 0 {
		t.Fatalf("inline mode must not declare functions, got %d", len(res.Module.Funcs))
	}
	if !res.Inlined {
		t.Fatal("Inlined flag must be set")
	}
	// emp iterates (repeating), dname binds with let (single): Table 15.
	if !strings.Contains(q, "for $") || !strings.Contains(q, "let $") {
		t.Fatal("expected both for and let clauses (cardinality-driven)")
	}
	// The dead text() template must not be inlined (§3.7).
	if strings.Contains(q, `match="text()"`) {
		t.Fatal("dead text() template should be eliminated (§3.7)")
	}
	// The generated query re-parses.
	if _, err := xquery.Parse(q); err != nil {
		t.Fatalf("generated query does not re-parse: %v\n%s", err, q)
	}
}

// TestStraightforwardShape checks the [9]-baseline structure: functions and
// dispatch chains.
func TestStraightforwardShape(t *testing.T) {
	res := rewriteFor(t, xslt.PaperStylesheet, "", ModeStraightforward)
	q := res.Module.String()
	if len(res.Module.Funcs) == 0 {
		t.Fatal("straightforward mode must declare functions")
	}
	for _, frag := range []string{
		"declare function local:template-",
		"declare function local:apply",
		"declare function local:builtin",
		"instance of element(dept)",
		"instance of text()",
	} {
		if !strings.Contains(q, frag) {
			t.Errorf("straightforward query missing %q", frag)
		}
	}
	if res.Inlined {
		t.Fatal("straightforward mode is never inlined")
	}
}

func TestModelGroupSequence(t *testing.T) {
	// Table 14: sequence model group — no conditionals at all.
	sheet := wrap(`
		<xsl:template match="dept"><xsl:apply-templates/></xsl:template>
		<xsl:template match="dname"><D><xsl:value-of select="."/></D></xsl:template>
		<xsl:template match="loc"><L><xsl:value-of select="."/></L></xsl:template>
		<xsl:template match="employees"><E/></xsl:template>
	`)
	res := rewriteFor(t, sheet, deptSchema, ModeInline)
	q := res.Module.String()
	if strings.Contains(q, "if (") {
		t.Fatalf("sequence group must compile without conditionals (Table 14):\n%s", q)
	}
	equivCase(t, "seq", sheet, deptSchema, xslt.PaperDeptRow1, ModeInline)
}

func TestModelGroupChoice(t *testing.T) {
	// Table 13: choice model group — existence conditionals, no iteration.
	schema := `
doc     := payload
payload := xml | json
xml     := #text
json    := #text
`
	sheet := wrap(`
		<xsl:template match="xml"><X/></xsl:template>
		<xsl:template match="json"><J/></xsl:template>
	`)
	res := rewriteFor(t, sheet, schema, ModeInline)
	q := res.Module.String()
	if !strings.Contains(q, "if (") {
		t.Fatalf("choice group should produce existence conditionals (Table 13):\n%s", q)
	}
	equivCase(t, "choice-xml", sheet, schema, `<doc><payload><xml>a</xml></payload></doc>`, ModeInline)
	equivCase(t, "choice-json", sheet, schema, `<doc><payload><json>b</json></payload></doc>`, ModeInline)
}

func TestModelGroupAll(t *testing.T) {
	// Table 12: all model group — iterate node() with instance-of chain.
	schema := `
doc  := meta & data
meta := #text
data := #text
`
	sheet := wrap(`
		<xsl:template match="meta"><M/></xsl:template>
		<xsl:template match="data"><D/></xsl:template>
	`)
	res := rewriteFor(t, sheet, schema, ModeInline)
	q := res.Module.String()
	if !strings.Contains(q, "instance of element(meta)") {
		t.Fatalf("all group should dispatch by instance-of (Table 12):\n%s", q)
	}
	equivCase(t, "all", sheet, schema, `<doc><meta>m</meta><data>d</data></doc>`, ModeInline)
	// Order may vary with "all": check reversed input too.
	equivCase(t, "all-rev", sheet, schema, `<doc><data>d</data><meta>m</meta></doc>`, ModeInline)
}

func TestCardinalityForVsLet(t *testing.T) {
	// Table 15: emp* iterates with FOR; dname binds with LET.
	res := rewriteFor(t, xslt.PaperStylesheet, deptSchema, ModeInline)
	forNote, letNote := false, false
	for _, n := range res.Notes {
		if strings.Contains(n, "FOR clause for") {
			forNote = true
		}
		if strings.Contains(n, "LET clause for") {
			letNote = true
		}
	}
	if !forNote || !letNote {
		t.Fatalf("cardinality notes missing: %v", res.Notes)
	}
}

// TestParentAxisElimination reproduces Tables 16-17: with the schema, the
// parent-axis existence test for emp/empno vanishes; without it (the
// straightforward baseline), the test is emitted.
func TestParentAxisElimination(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="emp/empno"><N><xsl:value-of select="."/></N></xsl:template>
	`)
	// Straightforward (no schema): parent test present.
	sf := rewriteFor(t, sheet, "", ModeStraightforward)
	if !strings.Contains(sf.Module.String(), "parent::emp") {
		t.Fatalf("baseline should test parent::emp (Table 17):\n%s", sf.Module.String())
	}
	// Non-inline with schema: parent test eliminated.
	ni := rewriteFor(t, sheet, deptSchema, ModeNonInline)
	if strings.Contains(ni.Module.String(), "parent::emp") {
		t.Fatalf("schema-backed rewrite must drop parent::emp (§3.5):\n%s", ni.Module.String())
	}
	noted := false
	for _, n := range ni.Notes {
		if strings.Contains(n, "parent-axis") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("elimination should be noted: %v", ni.Notes)
	}
	equivCase(t, "empno", sheet, deptSchema, xslt.PaperDeptRow1)
}

// TestPredicatePatternKept reproduces Tables 18-19: a value predicate in a
// match pattern survives as a runtime conditional, while the parent test is
// still removed.
func TestPredicatePatternKept(t *testing.T) {
	// The predicate template appears LAST so it wins the equal-priority tie
	// (XSLT 1.0 recovery picks the later template); Table 18 lists the
	// templates in the opposite order but clearly intends the predicate
	// template to fire when its predicate holds.
	sheet := wrap(`
		<xsl:template match="emp/empno"><N><xsl:value-of select="."/></N></xsl:template>
		<xsl:template match="emp/empno[. = 7782]"><STAR/></xsl:template>
	`)
	res := rewriteFor(t, sheet, deptSchema, ModeInline)
	q := res.Module.String()
	if !strings.Contains(q, "7782") {
		t.Fatalf("value predicate must survive (Table 19):\n%s", q)
	}
	if strings.Contains(q, "parent::emp") {
		t.Fatalf("parent test must still be removed (Table 19):\n%s", q)
	}
	equivCase(t, "pred", sheet, deptSchema, xslt.PaperDeptRow1)
}

// TestBuiltinOnlyCompaction reproduces Tables 20-21.
func TestBuiltinOnlyCompaction(t *testing.T) {
	res := rewriteFor(t, wrap(""), deptSchema, ModeAuto)
	q := res.Module.String()
	if !strings.Contains(q, "fn:string-join") || !strings.Contains(q, "//text()") {
		t.Fatalf("builtin-only compaction missing (Table 21):\n%s", q)
	}
	if !res.Inlined {
		t.Fatal("builtin-only is fully inlined")
	}
	equivCase(t, "builtin-only", wrap(""), deptSchema, xslt.PaperDeptRow1, ModeAuto)
}

// TestAutoFallsBackToNonInline: recursion forces non-inline.
func TestAutoFallsBackToNonInline(t *testing.T) {
	schema := `
section := title, section*
title   := #text
`
	sheet := wrap(`
		<xsl:template match="section"><s><xsl:value-of select="title"/><xsl:apply-templates select="section"/></s></xsl:template>
		<xsl:template match="/"><xsl:apply-templates select="section"/></xsl:template>
	`)
	res := rewriteFor(t, sheet, schema, ModeAuto)
	if res.Mode != ModePartialInline && res.Mode != ModeNonInline {
		t.Fatalf("recursive schema should select a function-bearing mode, got %v", res.Mode)
	}
	if len(res.Module.Funcs) == 0 {
		t.Fatal("recursive rewrite declares functions")
	}
	// Inline mode must refuse.
	sheetP := xtest.Sheet(t, sheet)
	s := xtest.Schema(t, schema)
	if _, err := Rewrite(sheetP, s, ModeInline); err == nil {
		t.Fatal("forced inline on recursion should fail")
	}
	equivCase(t, "recursive", sheet, schema,
		`<section><title>a</title><section><title>b</title></section><section><title>c</title></section></section>`,
		ModeNonInline, ModePartialInline, ModeAuto, ModeStraightforward)
}

func TestDeadTemplateElimination(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept"><D><xsl:apply-templates select="dname"/></D></xsl:template>
		<xsl:template match="dname"><xsl:value-of select="."/></xsl:template>
		<xsl:template match="neverused"><DEAD/></xsl:template>
	`)
	res := rewriteFor(t, sheet, deptSchema, ModeInline)
	if strings.Contains(res.Module.String(), "DEAD") {
		t.Fatal("dead template body must not appear (§3.7)")
	}
	ni := rewriteFor(t, sheet, deptSchema, ModeNonInline)
	if strings.Contains(ni.Module.String(), "DEAD") {
		t.Fatal("non-inline mode must drop dead templates too (§3.7)")
	}
	// Straightforward keeps everything (the baseline's weakness).
	sf := rewriteFor(t, sheet, "", ModeStraightforward)
	if !strings.Contains(sf.Module.String(), "DEAD") {
		t.Fatal("baseline keeps dead templates")
	}
}

func TestGeneratedQueriesReparse(t *testing.T) {
	cases := []struct{ sheet, schema string }{
		{xslt.PaperStylesheet, deptSchema},
		{wrap(""), deptSchema},
		{wrap(`<xsl:template match="dept"><xsl:for-each select="employees/emp"><e><xsl:value-of select="ename"/></e></xsl:for-each></xsl:template>`), deptSchema},
	}
	for _, tc := range cases {
		for _, mode := range []Mode{ModeStraightforward, ModeAuto} {
			res := rewriteFor(t, tc.sheet, tc.schema, mode)
			src := res.Module.String()
			if _, err := xquery.Parse(src); err != nil {
				t.Errorf("mode %v output does not re-parse: %v\n%s", mode, err, src)
			}
		}
	}
}

func TestForEachConstructs(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept">
			<out>
			<xsl:for-each select="employees/emp">
				<xsl:sort select="sal" data-type="number" order="descending"/>
				<e pos="{position()}"><xsl:value-of select="ename"/></e>
			</xsl:for-each>
			</out>
		</xsl:template>
	`)
	equivCase(t, "foreach-sort", sheet, deptSchema, xslt.PaperDeptRow1)
}

func TestVariablesAndChoose(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept">
			<xsl:variable name="n" select="count(employees/emp)"/>
			<xsl:choose>
				<xsl:when test="$n > 1"><big n="{$n}"/></xsl:when>
				<xsl:otherwise><small/></xsl:otherwise>
			</xsl:choose>
		</xsl:template>
	`)
	equivCase(t, "var-choose", sheet, deptSchema, xslt.PaperDeptRow1)
	equivCase(t, "var-choose-small", sheet, deptSchema, xslt.PaperDeptRow2)
}

func TestCallTemplateRewrite(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept">
			<xsl:call-template name="header"><xsl:with-param name="title" select="string(dname)"/></xsl:call-template>
		</xsl:template>
		<xsl:template name="header">
			<xsl:param name="title" select="'untitled'"/>
			<h1><xsl:value-of select="$title"/></h1>
		</xsl:template>
	`)
	equivCase(t, "call", sheet, deptSchema, xslt.PaperDeptRow1)
}

func TestAttributeValueTemplates(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="emp"><td data="{empno}-{ename}">x</td></xsl:template>
		<xsl:template match="dept"><xsl:apply-templates select="employees/emp"/></xsl:template>
	`)
	equivCase(t, "avt", sheet, deptSchema, xslt.PaperDeptRow1)
}

func TestElementAttributeConstructors(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="emp">
			<xsl:element name="employee">
				<xsl:attribute name="id"><xsl:value-of select="empno"/></xsl:attribute>
				<xsl:value-of select="ename"/>
			</xsl:element>
		</xsl:template>
		<xsl:template match="dept"><xsl:apply-templates select="employees/emp"/></xsl:template>
	`)
	equivCase(t, "constructors", sheet, deptSchema, xslt.PaperDeptRow1)
}

func TestCopyOfRewrite(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept"><wrap><xsl:copy-of select="employees"/></wrap></xsl:template>
	`)
	equivCase(t, "copy-of", sheet, deptSchema, xslt.PaperDeptRow1)
}

func TestInlineNotesMentionInlining(t *testing.T) {
	res := rewriteFor(t, xslt.PaperStylesheet, deptSchema, ModeInline)
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "inlined template") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes: %v", res.Notes)
	}
}

func TestRewriteErrors(t *testing.T) {
	sheet := xtest.Sheet(t, wrap(`<xsl:template match="/">x</xsl:template>`))
	if _, err := Rewrite(sheet, nil, ModeAuto); err == nil {
		t.Fatal("auto mode requires a schema")
	}
	if _, err := Rewrite(sheet, nil, ModeInline); err == nil {
		t.Fatal("inline mode requires a schema")
	}
}

func TestGlobalParams(t *testing.T) {
	sheet := wrap(`
		<xsl:param name="threshold" select="2000"/>
		<xsl:template match="dept"><n><xsl:value-of select="count(employees/emp[sal > $threshold])"/></n></xsl:template>
	`)
	equivCase(t, "global-param", sheet, deptSchema, xslt.PaperDeptRow1)
}

func TestModesRewrite(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept"><xsl:apply-templates select="dname"/>|<xsl:apply-templates select="dname" mode="loud"/></xsl:template>
		<xsl:template match="dname"><xsl:value-of select="."/></xsl:template>
		<xsl:template match="dname" mode="loud">[<xsl:value-of select="."/>]</xsl:template>
	`)
	equivCase(t, "modes", sheet, deptSchema, xslt.PaperDeptRow1)
}

// TestPartialInlineShape (§7.2 future work, implemented): with recursion
// present, only the templates on cycles stay functions; acyclic templates
// inline at their activation sites.
func TestPartialInlineShape(t *testing.T) {
	schema := `
doc     := header, section*
header  := #text
section := title, section*
title   := #text
`
	sheet := wrap(`
		<xsl:template match="doc"><d><xsl:apply-templates select="header"/><xsl:apply-templates select="section"/></d></xsl:template>
		<xsl:template match="header"><h><xsl:value-of select="."/></h></xsl:template>
		<xsl:template match="section"><s><xsl:value-of select="title"/><xsl:apply-templates select="section"/></s></xsl:template>
	`)
	full := rewriteFor(t, sheet, schema, ModeNonInline)
	part := rewriteFor(t, sheet, schema, ModePartialInline)
	if part.Mode != ModePartialInline {
		t.Fatalf("mode = %v", part.Mode)
	}
	if len(part.Module.Funcs) >= len(full.Module.Funcs) {
		t.Fatalf("partial inline should declare fewer functions: %d vs %d",
			len(part.Module.Funcs), len(full.Module.Funcs))
	}
	// The recursive section template must still be a function.
	found := false
	for _, f := range part.Module.Funcs {
		if strings.Contains(f.Body.String(), `match="section"`) {
			found = true
		}
	}
	if !found {
		t.Fatal("recursive template must stay a function")
	}
	// The header template must NOT be a function (inlined).
	for _, f := range part.Module.Funcs {
		if strings.Contains(f.Body.String(), `match="header"`) && !strings.Contains(f.Body.String(), "builtin") {
			t.Fatal("acyclic header template should be inlined")
		}
	}
	noted := false
	for _, n := range part.Notes {
		if strings.Contains(n, "partial inline") || strings.Contains(n, "partially inlined") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("partial inlining should be noted: %v", part.Notes)
	}
	input := `<doc><header>H</header><section><title>a</title><section><title>b</title></section></section></doc>`
	equivCase(t, "partial", sheet, schema, input, ModeNonInline, ModePartialInline, ModeAuto)
}

// TestDeriveOutputSchema types the paper's Example 1 rewrite output: the
// HTML shape of Table 6.
func TestDeriveOutputSchema(t *testing.T) {
	res := rewriteFor(t, xslt.PaperStylesheet, deptSchema, ModeInline)
	// Example 1's output has multiple root elements (H1, H2s, table) — not
	// a single-rooted document.
	if _, err := DeriveOutputSchema(res.Module); err == nil {
		t.Fatal("multi-root output should refuse static typing")
	}

	// A single-rooted stylesheet types cleanly.
	sheet := wrap(`
		<xsl:template match="dept">
			<report title="{dname}">
				<xsl:for-each select="employees/emp"><row id="{empno}"><xsl:value-of select="ename"/></row></xsl:for-each>
				<total><xsl:value-of select="sum(employees/emp/sal)"/></total>
			</report>
		</xsl:template>
	`)
	res2 := rewriteFor(t, sheet, deptSchema, ModeInline)
	out, err := DeriveOutputSchema(res2.Module)
	if err != nil {
		t.Fatal(err)
	}
	if out.Root.Name != "report" {
		t.Fatalf("root = %q", out.Root.Name)
	}
	row := out.Root.Particle("row")
	if row == nil || !row.Repeating() {
		t.Fatal("row should repeat (for-loop)")
	}
	total := out.Root.Particle("total")
	if total == nil || total.Repeating() {
		t.Fatal("total should be single")
	}
	if out.Lookup("row").Attr("id") == nil || out.Root.Attr("title") == nil {
		t.Fatal("attributes missing from typed output")
	}
	if out.Lookup("total").Group != xschema.GroupText {
		t.Fatal("total should be a text leaf")
	}
}

// TestRewriteChained composes two stylesheets: stage2 runs over stage1's
// OUTPUT, rewritten against the statically-derived schema (§3.2 bullet 4).
// The chained rewrite must equal interpreting both stages functionally.
func TestRewriteChained(t *testing.T) {
	stage1Src := wrap(`
		<xsl:template match="dept">
			<report>
				<xsl:for-each select="employees/emp"><row><xsl:value-of select="sal"/></row></xsl:for-each>
			</report>
		</xsl:template>
	`)
	stage2Src := wrap(`
		<xsl:template match="report"><count n="{count(row)}"><xsl:apply-templates select="row[. > 2000]"/></count></xsl:template>
		<xsl:template match="row"><rich><xsl:value-of select="."/></rich></xsl:template>
	`)
	stage1 := rewriteFor(t, stage1Src, deptSchema, ModeInline)
	stage2Sheet := xtest.Sheet(t, stage2Src)
	stage2, err := RewriteChained(stage1, stage2Sheet, ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !stage2.Inlined {
		t.Fatal("chained stage should inline")
	}

	// Reference: interpret stage1 then stage2.
	doc := stripInputWS(parseDoc(t, xslt.PaperDeptRow1))
	mid, err := xslt.New(xtest.Sheet(t, stage1Src)).Transform(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := xslt.New(stage2Sheet).TransformToString(mid)
	if err != nil {
		t.Fatal(err)
	}

	// Pipeline: stage1 rewrite → evaluate → stage2 rewrite → evaluate.
	midSeq, err := xquery.EvalModule(stage1.Module, xquery.NewEnv(xquery.Item(doc)))
	if err != nil {
		t.Fatal(err)
	}
	midDoc := parseDoc(t, xquery.SerializeSeq(midSeq))
	got := runQuery(t, stage2.Module, midDoc)
	if nows(got) != nows(want) {
		t.Fatalf("chained rewrite diverges:\n got:  %s\n want: %s", nows(got), nows(want))
	}
}

// TestInlineSortedApply covers apply-templates + xsl:sort in inline mode.
func TestInlineSortedApply(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="employees"><xsl:apply-templates select="emp"><xsl:sort select="sal" data-type="number" order="descending"/></xsl:apply-templates></xsl:template>
		<xsl:template match="emp"><e><xsl:value-of select="sal"/></e></xsl:template>
		<xsl:template match="dept"><xsl:apply-templates select="employees"/></xsl:template>
	`)
	equivCase(t, "sorted-apply", sheet, deptSchema, xslt.PaperDeptRow1, ModeInline, ModeStraightforward)
}

// TestInlineTextLeafChildren covers apply-templates descending into a text
// leaf (the text() template inlines against $ctx/text()).
func TestInlineTextLeafChildren(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dname"><n><xsl:apply-templates/></n></xsl:template>
		<xsl:template match="text()"><t><xsl:value-of select="."/></t></xsl:template>
		<xsl:template match="dept"><xsl:apply-templates select="dname"/></xsl:template>
	`)
	equivCase(t, "text-leaf", sheet, deptSchema, xslt.PaperDeptRow1, ModeInline)
	// And the builtin-text path (no text template).
	sheet2 := wrap(`
		<xsl:template match="dname"><n><xsl:apply-templates/></n></xsl:template>
		<xsl:template match="dept"><xsl:apply-templates select="dname"/></xsl:template>
	`)
	equivCase(t, "text-leaf-builtin", sheet2, deptSchema, xslt.PaperDeptRow1, ModeInline)
}

// TestCopyRewrite covers xsl:copy through the rewriter in a non-recursive
// setting.
func TestCopyRewrite(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept"><wrap><xsl:for-each select="dname"><xsl:copy><xsl:value-of select="."/></xsl:copy></xsl:for-each></wrap></xsl:template>
	`)
	equivCase(t, "copy", sheet, deptSchema, xslt.PaperDeptRow1, ModeInline, ModeStraightforward)
}

// TestNumberRewrite covers xsl:number in both forms through the rewriter.
func TestNumberRewrite(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept">
			<n><xsl:number value="6 * 7"/></n>
			<xsl:for-each select="employees/emp"><p><xsl:number/></p></xsl:for-each>
		</xsl:template>
	`)
	equivCase(t, "number", sheet, deptSchema, xslt.PaperDeptRow1, ModeInline, ModeStraightforward)
}

// TestComputedNamesAndStringJoin covers multi-part AVT names and
// comment/PI bodies that need string-join semantics.
func TestComputedNamesAndStringJoin(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="emp">
			<xsl:element name="e{empno}">
				<xsl:comment>pay <xsl:value-of select="sal"/> for <xsl:value-of select="ename"/></xsl:comment>
				<xsl:processing-instruction name="p{empno}">x</xsl:processing-instruction>
			</xsl:element>
		</xsl:template>
		<xsl:template match="dept"><d><xsl:apply-templates select="employees/emp"/></d></xsl:template>
	`)
	equivCase(t, "computed-names", sheet, deptSchema, xslt.PaperDeptRow1, ModeInline, ModeStraightforward)
}

// TestStraightforwardWithParamsAndSorts covers the [9]-baseline's inline
// dispatch (apply with with-param) and sorted apply.
func TestStraightforwardWithParamsAndSorts(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept">
			<xsl:apply-templates select="employees/emp">
				<xsl:sort select="sal" data-type="number"/>
				<xsl:with-param name="tag" select="'P'"/>
			</xsl:apply-templates>
		</xsl:template>
		<xsl:template match="emp"><xsl:param name="tag" select="'D'"/><e t="{$tag}"><xsl:value-of select="sal"/></e></xsl:template>
	`)
	equivCase(t, "sf-params", sheet, deptSchema, xslt.PaperDeptRow1, ModeStraightforward, ModeInline)
}

// TestGlobalRTFVariable covers globalInit's result-tree-fragment branch in
// every generator.
func TestGlobalRTFVariable(t *testing.T) {
	sheet := wrap(`
		<xsl:variable name="banner"><b>HEADER</b></xsl:variable>
		<xsl:template match="dept"><out><xsl:copy-of select="$banner"/><xsl:value-of select="dname"/></out></xsl:template>
	`)
	equivCase(t, "global-rtf", sheet, deptSchema, xslt.PaperDeptRow1)
}

// TestUnconvertibleConstructs: functions without XQuery mappings surface as
// rewrite errors (callers fall back).
func TestUnconvertibleConstructs(t *testing.T) {
	sheet := xtest.Sheet(t, wrap(`
		<xsl:key name="k" match="emp" use="sal"/>
		<xsl:template match="dept"><xsl:value-of select="count(key('k', '2450'))"/></xsl:template>
	`))
	schema := xtest.Schema(t, deptSchema)
	if _, err := Rewrite(sheet, schema, ModeAuto); err == nil {
		t.Fatal("key() has no XQuery mapping; rewrite must fail loudly")
	}
	// position() at template top level has no context in function modes.
	sheet2 := xtest.Sheet(t, wrap(`<xsl:template match="emp"><xsl:value-of select="position()"/></xsl:template>`))
	if _, err := Rewrite(sheet2, nil, ModeStraightforward); err == nil {
		t.Fatal("top-level position() should fail in straightforward mode")
	}
}

// TestStaticTypeComputedElement covers typeNamedBody via xsl:element.
func TestStaticTypeComputedElement(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="dept">
			<xsl:element name="wrapper"><inner><xsl:value-of select="dname"/></inner></xsl:element>
		</xsl:template>
	`)
	res := rewriteFor(t, sheet, deptSchema, ModeInline)
	out, err := DeriveOutputSchema(res.Module)
	if err != nil {
		t.Fatal(err)
	}
	if out.Root.Name != "wrapper" || out.Root.Particle("inner") == nil {
		t.Fatalf("typed output wrong: %s", out.String())
	}
}
