package core

import (
	"repro/internal/xquery"
	"repro/internal/xslt"
)

// rewriteStraightforward implements the Fokoue et al. [9] translation used
// as the paper's comparison baseline (§3.1): every template becomes an
// XQuery function, every apply-templates becomes a sequential conditional
// dispatch over ALL templates of the mode, and the built-in rules become a
// recursive helper function. No structural information is used.
func rewriteStraightforward(sheet *xslt.Stylesheet) (*Result, error) {
	r := &sfRewriter{
		sheet:     sheet,
		vars:      &varGen{},
		globalRTF: map[string]bool{},
	}
	r.bc = &bodyCompiler{host: r, vars: r.vars, notes: &r.notes}

	m := &xquery.Module{
		Vars: []*xquery.VarDecl{{Name: "var000", Init: xquery.ContextItem{}}},
	}

	baseEnv := r.baseEnv()

	// Global variables/params.
	for _, def := range sheet.GlobalVars {
		init, err := r.globalInit(def, baseEnv)
		if err != nil {
			return nil, err
		}
		if def.Select == nil && len(def.Body) > 0 {
			baseEnv = baseEnv.markRTF(userVarName(def.Name))
			r.globalRTF[userVarName(def.Name)] = true
		}
		m.Vars = append(m.Vars, &xquery.VarDecl{Name: userVarName(def.Name), Init: init})
	}

	// One function per template (named or matching).
	for _, t := range sheet.Templates {
		fn, err := r.templateFunc(t)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, fn)
	}

	// Dispatch + builtin functions per mode.
	for _, mode := range modesOf(sheet) {
		applyFn, err := r.applyFunc(mode)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, applyFn, r.builtinFunc(mode))
	}

	// Main body: apply the default mode to the input document.
	m.Body = &xquery.FuncCall{Name: applyFuncName(""), Args: []xquery.Expr{xquery.VarRef("var000")}}

	return &Result{Module: m, Mode: ModeStraightforward, Inlined: false, Notes: r.notes}, nil
}

type sfRewriter struct {
	sheet *xslt.Stylesheet
	vars  *varGen
	bc    *bodyCompiler
	notes []string
	// globalRTF records global variables bound to result tree fragments.
	globalRTF map[string]bool
}

func (r *sfRewriter) baseEnv() bodyEnv {
	rtf := map[string]bool{}
	for name := range r.globalRTF {
		rtf[name] = true
	}
	return bodyEnv{
		conv: convEnv{
			root:      xquery.VarRef("var000"),
			renameVar: userVarName,
		},
		rtfVars: rtf,
	}
}

func (r *sfRewriter) globalInit(def *xslt.VarDef, env bodyEnv) (xquery.Expr, error) {
	docEnv := env.withCtx(xquery.VarRef("var000"), nil)
	switch {
	case def.Select != nil:
		return convertExpr(def.Select, docEnv.conv)
	case len(def.Body) > 0:
		inner, err := r.bc.compileSeq(def.Body, docEnv, false)
		if err != nil {
			return nil, err
		}
		return &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}, nil
	default:
		return xquery.StringLit(""), nil
	}
}

// templateFunc compiles one template into `declare function local:...($c,
// $params...)`.
func (r *sfRewriter) templateFunc(t *xslt.Template) (*xquery.FuncDecl, error) {
	fn := &xquery.FuncDecl{Name: funcNameForTemplate(t), Params: []string{"c"}}
	env := r.baseEnv().withCtx(xquery.VarRef("c"), nil)
	for _, p := range t.Params {
		fn.Params = append(fn.Params, userVarName(p.Name))
	}
	body, err := r.bc.compileSeq(t.Body, env, false)
	if err != nil {
		return nil, convErrf("template %s: %v", t, err)
	}
	fn.Body = &xquery.Annotated{Comment: "<xsl:template " + describeTemplate(t) + ">", X: body}
	return fn, nil
}

func describeTemplate(t *xslt.Template) string {
	switch {
	case t.MatchSrc != "" && t.Name != "":
		return `match="` + t.MatchSrc + `" name="` + t.Name + `"`
	case t.MatchSrc != "":
		return `match="` + t.MatchSrc + `"`
	default:
		return `name="` + t.Name + `"`
	}
}

// applyFunc builds the sequential dispatch function for a mode: a for over
// the node argument with an if/else chain testing every template's pattern
// — exactly the inefficiency the paper's §3.1 describes.
func (r *sfRewriter) applyFunc(mode string) (*xquery.FuncDecl, error) {
	fn := &xquery.FuncDecl{Name: applyFuncName(mode), Params: []string{"nodes"}}
	candVar := "c"
	env := r.baseEnv().withCtx(xquery.VarRef(candVar), nil)

	// else-branch bottom: the builtin rules.
	var chain xquery.Expr = &xquery.FuncCall{
		Name: builtinFuncName(mode),
		Args: []xquery.Expr{xquery.VarRef(candVar)},
	}
	ts := matchTemplates(r.sheet, mode)
	for i := len(ts) - 1; i >= 0; i-- {
		t := ts[i]
		cond, err := patternCondition(t.Match, candVar, nil, r.bc, env.conv)
		if err != nil {
			return nil, convErrf("pattern %q: %v", t.MatchSrc, err)
		}
		call := &xquery.FuncCall{Name: funcNameForTemplate(t), Args: []xquery.Expr{xquery.VarRef(candVar)}}
		args, err := r.defaultParamArgs(t, env)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, args...)
		chain = &xquery.IfExpr{Cond: cond, Then: call, Else: chain}
	}
	fn.Body = &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: candVar, In: xquery.VarRef("nodes")}},
		Return:  chain,
	}
	return fn, nil
}

// defaultParamArgs computes default-value expressions for a template's
// parameters (evaluated with the candidate as context).
func (r *sfRewriter) defaultParamArgs(t *xslt.Template, env bodyEnv) ([]xquery.Expr, error) {
	var args []xquery.Expr
	for _, p := range t.Params {
		switch {
		case p.Select != nil:
			e, err := convertExpr(p.Select, env.conv)
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		case len(p.Body) > 0:
			inner, err := r.bc.compileSeq(p.Body, env, false)
			if err != nil {
				return nil, err
			}
			args = append(args, &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner})
		default:
			args = append(args, xquery.StringLit(""))
		}
	}
	return args, nil
}

// builtinFunc encodes the XSLT built-in rules for a mode.
func (r *sfRewriter) builtinFunc(mode string) *xquery.FuncDecl {
	c := xquery.VarRef("c")
	isKind := func(k xquery.SeqTypeKind) xquery.Expr {
		return &xquery.InstanceOf{X: c, Type: xquery.SeqType{Kind: k}}
	}
	descend := &xquery.FuncCall{Name: applyFuncName(mode), Args: []xquery.Expr{nodeStep(c)}}
	body := &xquery.IfExpr{
		Cond: isKind(xquery.SeqTypeText),
		Then: &xquery.CompText{Body: stringOf(c)},
		Else: &xquery.IfExpr{
			Cond: isKind(xquery.SeqTypeAttribute),
			Then: &xquery.CompText{Body: stringOf(c)},
			Else: &xquery.IfExpr{
				Cond: &xquery.Binary{Op: xquery.OpOr,
					L: isKind(xquery.SeqTypeComment),
					R: isKind(xquery.SeqTypePI)},
				Then: xquery.EmptySeq{},
				Else: descend, // element or document: apply to children
			},
		},
	}
	return &xquery.FuncDecl{
		Name:   builtinFuncName(mode),
		Params: []string{"c"},
		Body:   &xquery.Annotated{Comment: "builtin template rules", X: body},
	}
}

// compileApply (applyHost): dispatch through the mode's apply function, or
// an inline chain when with-params are present.
func (r *sfRewriter) compileApply(at *xslt.ApplyTemplates, env bodyEnv) (xquery.Expr, error) {
	sel, err := r.applySelect(at, env)
	if err != nil {
		return nil, err
	}
	sel, err = r.applySorts(sel, at.Sorts, env)
	if err != nil {
		return nil, err
	}
	if len(at.Params) == 0 {
		return &xquery.FuncCall{Name: applyFuncName(at.Mode), Args: []xquery.Expr{sel}}, nil
	}
	// with-param: inline dispatch chain at the call site, passing matching
	// parameter values by name.
	wp := map[string]xquery.Expr{}
	for _, p := range at.Params {
		v, err := r.paramValue(p, env)
		if err != nil {
			return nil, err
		}
		wp[p.Name] = v
	}
	candVar := r.vars.fresh()
	candEnv := env.withCtx(xquery.VarRef(candVar), nil)
	var chain xquery.Expr = &xquery.FuncCall{Name: builtinFuncName(at.Mode), Args: []xquery.Expr{xquery.VarRef(candVar)}}
	ts := matchTemplates(r.sheet, at.Mode)
	for i := len(ts) - 1; i >= 0; i-- {
		t := ts[i]
		cond, err := patternCondition(t.Match, candVar, nil, r.bc, candEnv.conv)
		if err != nil {
			return nil, err
		}
		call := &xquery.FuncCall{Name: funcNameForTemplate(t), Args: []xquery.Expr{xquery.VarRef(candVar)}}
		for _, p := range t.Params {
			if v, ok := wp[p.Name]; ok {
				call.Args = append(call.Args, v)
				continue
			}
			defArgs, err := r.defaultParamArgs(&xslt.Template{Params: []*xslt.VarDef{p}}, candEnv)
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, defArgs[0])
		}
		chain = &xquery.IfExpr{Cond: cond, Then: call, Else: chain}
	}
	return &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: candVar, In: sel}},
		Return:  chain,
	}, nil
}

func (r *sfRewriter) applySelect(at *xslt.ApplyTemplates, env bodyEnv) (xquery.Expr, error) {
	if at.Select == nil {
		return nodeStep(contextItemExpr(env.conv)), nil
	}
	return convertExpr(at.Select, env.conv)
}

// applySorts wraps the selection in an ordering FLWOR when xsl:sort is
// present.
func (r *sfRewriter) applySorts(sel xquery.Expr, sorts []xslt.SortKey, env bodyEnv) (xquery.Expr, error) {
	if len(sorts) == 0 {
		return sel, nil
	}
	v := r.vars.fresh()
	inner := env.withCtx(xquery.VarRef(v), nil)
	fl := &xquery.FLWOR{
		Clauses: []xquery.Clause{{Kind: xquery.ClauseFor, Var: v, In: sel}},
		Return:  xquery.VarRef(v),
	}
	for _, sk := range sorts {
		key, err := convertExpr(sk.Select, inner.conv)
		if err != nil {
			return nil, err
		}
		if sk.Numeric {
			key = &xquery.FuncCall{Name: "fn:number", Args: []xquery.Expr{key}}
		} else {
			key = stringOf(key)
		}
		fl.Order = append(fl.Order, xquery.OrderKey{Expr: key, Descending: sk.Descending})
	}
	return fl, nil
}

func (r *sfRewriter) paramValue(p *xslt.VarDef, env bodyEnv) (xquery.Expr, error) {
	switch {
	case p.Select != nil:
		return convertExpr(p.Select, env.conv)
	case len(p.Body) > 0:
		inner, err := r.bc.compileSeq(p.Body, env, false)
		if err != nil {
			return nil, err
		}
		return &xquery.CompElem{Name: xquery.StringLit(rtfWrapperName), Body: inner}, nil
	default:
		return xquery.StringLit(""), nil
	}
}

// compileCall (applyHost): direct function invocation.
func (r *sfRewriter) compileCall(ct *xslt.CallTemplate, env bodyEnv) (xquery.Expr, error) {
	var target *xslt.Template
	for _, t := range r.sheet.Templates {
		if t.Name == ct.Name {
			target = t
			break
		}
	}
	if target == nil {
		return nil, convErrf("call-template: no template named %q", ct.Name)
	}
	wp := map[string]xquery.Expr{}
	for _, p := range ct.Params {
		v, err := r.paramValue(p, env)
		if err != nil {
			return nil, err
		}
		wp[p.Name] = v
	}
	call := &xquery.FuncCall{Name: funcNameForTemplate(target), Args: []xquery.Expr{contextItemExpr(env.conv)}}
	for _, p := range target.Params {
		if v, ok := wp[p.Name]; ok {
			call.Args = append(call.Args, v)
			continue
		}
		v, err := r.paramValue(p, env)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, v)
	}
	return call, nil
}
