// Package core implements the paper's primary contribution: rewriting XSLT
// stylesheets into XQuery (§3-4). Three generation modes are provided:
//
//   - ModeStraightforward — the Fokoue et al. [9] baseline: one XQuery
//     function per template, apply-templates becomes a sequential
//     conditional-dispatch chain over all templates;
//   - ModeInline — the paper's partial-evaluation-driven full inlining
//     (§3.3-3.7, Table 8): template bodies are inlined at their activation
//     sites, children instantiation is specialized by model group and
//     cardinality, dead templates vanish, parent-axis tests are removed
//     when the schema guarantees them;
//   - ModeNonInline — used when the template execution graph is recursive:
//     one function per *instantiated* template, dispatch chains restricted
//     to each site's trace-call-list.
//
// ModeAuto picks per the paper: builtin-only compaction when no user
// template is ever activated, inline when the execution graph is acyclic,
// non-inline otherwise.
package core

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
	"repro/internal/xquery"
)

// convEnv is the static context of an XPath→XQuery conversion.
type convEnv struct {
	// ctx is the expression denoting the context item ($varNNN); nil means
	// "the dynamic context item" (inside predicates).
	ctx xquery.Expr
	// root is the variable holding the input document ($var000), used for
	// absolute paths; nil forbids absolute paths.
	root xquery.Expr
	// posVar/sizeVar hold the names of variables carrying the context
	// position and size, when the enclosing construct provides them.
	posVar  string
	sizeVar string
	// current is the expression for XSLT's current() (the nearest template
	// or for-each context).
	current xquery.Expr
	// renameVar maps user variable names to generated names.
	renameVar func(string) string
}

// inPredicate returns the environment for expressions inside a predicate,
// where the context item/position/size come from the dynamic context.
func (e convEnv) inPredicate() convEnv {
	e.ctx = nil
	e.posVar = ""
	e.sizeVar = ""
	return e
}

// ConvError reports an XSLT construct that cannot be rewritten.
type ConvError struct{ Msg string }

func (e *ConvError) Error() string { return "core: " + e.Msg }

func convErrf(format string, args ...any) error {
	return &ConvError{Msg: fmt.Sprintf(format, args...)}
}

// convertExpr translates an XPath 1.0 expression into an XQuery expression
// under env.
func convertExpr(e xpath.Expr, env convEnv) (xquery.Expr, error) {
	switch x := e.(type) {
	case xpath.NumberExpr:
		return xquery.NumberLit(float64(x)), nil
	case xpath.StringExpr:
		return xquery.StringLit(string(x)), nil
	case xpath.VarExpr:
		name := string(x)
		if env.renameVar != nil {
			name = env.renameVar(name)
		}
		return xquery.VarRef(name), nil
	case *xpath.NegExpr:
		inner, err := convertExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		return &xquery.Neg{X: inner}, nil
	case *xpath.BinaryExpr:
		op, err := convertOp(x.Op)
		if err != nil {
			return nil, err
		}
		l, err := convertExpr(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := convertExpr(x.R, env)
		if err != nil {
			return nil, err
		}
		return &xquery.Binary{Op: op, L: l, R: r}, nil
	case *xpath.FuncExpr:
		return convertFunc(x, env)
	case *xpath.PathExpr:
		return convertPath(x, env)
	}
	return nil, convErrf("cannot convert %T expression", e)
}

func convertOp(op xpath.BinaryOp) (xquery.BinOp, error) {
	switch op {
	case xpath.OpOr:
		return xquery.OpOr, nil
	case xpath.OpAnd:
		return xquery.OpAnd, nil
	case xpath.OpEq:
		return xquery.OpEq, nil
	case xpath.OpNeq:
		return xquery.OpNe, nil
	case xpath.OpLt:
		return xquery.OpLt, nil
	case xpath.OpLe:
		return xquery.OpLe, nil
	case xpath.OpGt:
		return xquery.OpGt, nil
	case xpath.OpGe:
		return xquery.OpGe, nil
	case xpath.OpAdd:
		return xquery.OpAdd, nil
	case xpath.OpSub:
		return xquery.OpSub, nil
	case xpath.OpMul:
		return xquery.OpMul, nil
	case xpath.OpDiv:
		return xquery.OpDiv, nil
	case xpath.OpMod:
		return xquery.OpMod, nil
	case xpath.OpUnion:
		return xquery.OpUnion, nil
	}
	return 0, convErrf("no XQuery operator for %v", op)
}

// convertFunc maps XPath core functions to their XQuery spellings.
func convertFunc(f *xpath.FuncExpr, env convEnv) (xquery.Expr, error) {
	name := strings.TrimPrefix(f.Name, "fn:")
	switch name {
	case "position":
		if env.posVar != "" {
			return xquery.VarRef(env.posVar), nil
		}
		if env.ctx == nil {
			return &xquery.FuncCall{Name: "fn:position"}, nil // predicate ctx
		}
		return nil, convErrf("position() has no context here (use for-each or a positional variable)")
	case "last":
		if env.sizeVar != "" {
			return xquery.VarRef(env.sizeVar), nil
		}
		if env.ctx == nil {
			return &xquery.FuncCall{Name: "fn:last"}, nil
		}
		return nil, convErrf("last() has no context here")
	case "current":
		if env.current != nil {
			return env.current, nil
		}
		if env.ctx != nil {
			return env.ctx, nil
		}
		return nil, convErrf("current() has no context here")
	}

	args := make([]xquery.Expr, 0, len(f.Args))
	for _, a := range f.Args {
		ca, err := convertExpr(a, env)
		if err != nil {
			return nil, err
		}
		args = append(args, ca)
	}

	// Context-defaulting functions get the context item made explicit.
	switch name {
	case "string", "number", "string-length", "normalize-space", "name", "local-name", "namespace-uri":
		if len(args) == 0 {
			args = append(args, contextItemExpr(env))
		}
	}
	switch name {
	case "string", "concat", "starts-with", "contains", "substring-before",
		"substring-after", "substring", "string-length", "normalize-space",
		"translate", "boolean", "not", "true", "false", "number", "sum",
		"floor", "ceiling", "round", "count", "name", "local-name",
		"namespace-uri":
		return &xquery.FuncCall{Name: "fn:" + name, Args: args}, nil
	}
	return nil, convErrf("function %s() has no XQuery mapping", f.Name)
}

func contextItemExpr(env convEnv) xquery.Expr {
	if env.ctx != nil {
		return env.ctx
	}
	return xquery.ContextItem{}
}

func convertPath(p *xpath.PathExpr, env convEnv) (xquery.Expr, error) {
	out := &xquery.Path{}
	switch {
	case p.Start != nil:
		base, err := convertExpr(p.Start, env)
		if err != nil {
			return nil, err
		}
		if len(p.StartPreds) > 0 {
			f := &xquery.Filter{Base: base}
			for _, pr := range p.StartPreds {
				cp, err := convertExpr(pr, env.inPredicate())
				if err != nil {
					return nil, err
				}
				f.Preds = append(f.Preds, cp)
			}
			base = f
		}
		out.Base = base
	case p.Abs:
		if env.root == nil {
			return nil, convErrf("absolute path %q outside a document context", p.String())
		}
		// $var000 is bound to the input document node, so absolute paths
		// become $var000-relative paths.
		out.Base = env.root
	default:
		if env.ctx != nil {
			out.Base = env.ctx
		}
		// else: leave relative — evaluated against the dynamic context
		// item (predicate position).
	}
	for _, s := range p.Steps {
		// self::node() without predicates is the identity step; dropping
		// it keeps output like "$v/." out of the generated query.
		if s.Axis == xpath.AxisSelf && s.Test.Kind == xpath.TestNode && len(s.Preds) == 0 {
			continue
		}
		qs := &xquery.Step{Axis: s.Axis, Test: s.Test}
		for _, pr := range s.Preds {
			cp, err := convertExpr(pr, env.inPredicate())
			if err != nil {
				return nil, err
			}
			qs.Preds = append(qs.Preds, cp)
		}
		out.Steps = append(out.Steps, qs)
	}
	if out.Base != nil && len(out.Steps) == 0 {
		return out.Base, nil
	}
	if out.Base == nil && !out.Abs && len(out.Steps) == 0 {
		// The whole path reduced to the context item (e.g. "." or "self::node()").
		return xquery.ContextItem{}, nil
	}
	if out.Base == nil && !out.Abs && len(out.Steps) == 1 &&
		out.Steps[0].Axis == xpath.AxisSelf && out.Steps[0].Test.Kind == xpath.TestNode && len(out.Steps[0].Preds) == 0 {
		return xquery.ContextItem{}, nil
	}
	return out, nil
}

// stringOf wraps an expression in fn:string.
func stringOf(e xquery.Expr) xquery.Expr {
	return &xquery.FuncCall{Name: "fn:string", Args: []xquery.Expr{e}}
}

// existsOf wraps an expression in fn:exists.
func existsOf(e xquery.Expr) xquery.Expr {
	return &xquery.FuncCall{Name: "fn:exists", Args: []xquery.Expr{e}}
}

// childStep builds a child::name step path from base.
func childStep(base xquery.Expr, name string) *xquery.Path {
	return &xquery.Path{Base: base, Steps: []*xquery.Step{{
		Axis: xpath.AxisChild, Test: xpath.NodeTest{Kind: xpath.TestName, Name: name},
	}}}
}

// textStep builds base/text().
func textStep(base xquery.Expr) *xquery.Path {
	return &xquery.Path{Base: base, Steps: []*xquery.Step{{
		Axis: xpath.AxisChild, Test: xpath.NodeTest{Kind: xpath.TestText},
	}}}
}

// nodeStep builds base/node().
func nodeStep(base xquery.Expr) *xquery.Path {
	return &xquery.Path{Base: base, Steps: []*xquery.Step{{
		Axis: xpath.AxisChild, Test: xpath.NodeTest{Kind: xpath.TestNode},
	}}}
}

// dosNodeStep is descendant-or-self::node() (the '//' abbreviation).
func dosNodeStep() *xquery.Step {
	return &xquery.Step{Axis: xpath.AxisDescendantOrSelf, Test: xpath.NodeTest{Kind: xpath.TestNode}}
}

// textTestStep is child::text().
func textTestStep() *xquery.Step {
	return &xquery.Step{Axis: xpath.AxisChild, Test: xpath.NodeTest{Kind: xpath.TestText}}
}
