package xquery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// genQExpr builds a random XQuery AST of bounded depth covering the node
// types the rewriter emits.
func genQExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return NumberLit(float64(rng.Intn(500)))
		case 1:
			return StringLit([]string{"a", "CLARK", "x y"}[rng.Intn(3)])
		case 2:
			return VarRef("doc")
		case 3:
			return EmptySeq{}
		default:
			return genQPath(rng)
		}
	}
	switch rng.Intn(9) {
	case 0:
		ops := []BinOp{OpOr, OpAnd, OpEq, OpNe, OpLt, OpGt, OpAdd, OpSub, OpMul}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: genQExpr(rng, depth-1), R: genQExpr(rng, depth-1)}
	case 1:
		return &IfExpr{Cond: genQExpr(rng, depth-1), Then: genQExpr(rng, depth-1), Else: genQExpr(rng, depth-1)}
	case 2:
		fl := &FLWOR{Return: genQExpr(rng, depth-1)}
		kind := ClauseFor
		if rng.Intn(2) == 0 {
			kind = ClauseLet
		}
		in := genQExpr(rng, depth-1)
		if kind == ClauseFor {
			in = genQPath(rng)
		}
		fl.Clauses = append(fl.Clauses, Clause{Kind: kind, Var: "b", In: in})
		return fl
	case 3:
		return &Sequence{Items: []Expr{genQExpr(rng, depth-1), genQExpr(rng, depth-1)}}
	case 4:
		el := &DirectElem{Name: []string{"out", "item", "H2"}[rng.Intn(3)]}
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				el.Children = append(el.Children, TextLit("lit "))
			default:
				el.Children = append(el.Children, genQExpr(rng, depth-1))
			}
		}
		if rng.Intn(2) == 0 {
			el.Attrs = append(el.Attrs, DirectAttr{Name: "k", Parts: []AttrValuePart{
				{Text: "pre"}, {Expr: genQExpr(rng, depth-1)},
			}})
		}
		return el
	case 5:
		names := []string{"fn:string", "fn:count", "fn:not", "fn:number"}
		return &FuncCall{Name: names[rng.Intn(len(names))], Args: []Expr{genQExpr(rng, depth-1)}}
	case 6:
		return &CompText{Body: genQExpr(rng, depth-1)}
	case 7:
		return &InstanceOf{X: genQPath(rng), Type: SeqType{Kind: SeqTypeElement, Name: "emp"}}
	default:
		return &Annotated{Comment: "note", X: genQExpr(rng, depth-1)}
	}
}

func genQPath(rng *rand.Rand) Expr {
	names := []string{"dept", "emp", "sal", "dname", "employees"}
	p := &Path{Base: VarRef("doc")}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		axis := xpath.AxisChild
		test := xpath.NodeTest{Kind: xpath.TestName, Name: names[rng.Intn(len(names))]}
		switch rng.Intn(6) {
		case 0:
			axis = xpath.AxisDescendantOrSelf
			test = xpath.NodeTest{Kind: xpath.TestNode}
		case 1:
			test = xpath.NodeTest{Kind: xpath.TestText}
		}
		step := &Step{Axis: axis, Test: test}
		if rng.Intn(4) == 0 {
			step.Preds = append(step.Preds, &Binary{Op: OpGt,
				L: &Path{Steps: []*Step{{Axis: xpath.AxisChild, Test: xpath.NodeTest{Kind: xpath.TestName, Name: "sal"}}}},
				R: NumberLit(float64(rng.Intn(3000)))})
		}
		p.Steps = append(p.Steps, step)
	}
	return p
}

// TestQuickXQueryPrintParseEval: printing a random query and re-parsing it
// preserves evaluation.
func TestQuickXQueryPrintParseEval(t *testing.T) {
	doc, err := xmltree.Parse(deptDoc)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genQExpr(rng, 3)
		m := &Module{
			Vars: []*VarDecl{{Name: "doc", Init: ContextItem{}}},
			Body: e,
		}
		printed := m.String()
		re, err := Parse(printed)
		if err != nil {
			t.Logf("seed %d: does not re-parse: %v\n%s", seed, err, printed)
			return false
		}
		v1, err1 := EvalModule(m, NewEnv(Item(doc)))
		v2, err2 := EvalModule(re, NewEnv(Item(doc)))
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error mismatch %v vs %v\n%s", seed, err1, err2, printed)
			return false
		}
		if err1 != nil {
			return true
		}
		if SerializeSeq(v1) != SerializeSeq(v2) {
			t.Logf("seed %d: results differ\n was %q\n now %q\n%s", seed, SerializeSeq(v1), SerializeSeq(v2), printed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
