package xquery

// MustParse is a test-only helper: the production API returns errors; tests
// with compiled-in queries use this and treat a parse failure as a bug.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}
