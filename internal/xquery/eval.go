package xquery

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/governor"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Item is one item of a sequence: *xmltree.Node, string, float64 or bool.
type Item any

// Seq is an XQuery sequence.
type Seq []Item

// Env is the dynamic evaluation environment.
type Env struct {
	parent *Env
	vars   map[string]Seq
	funcs  map[string]*FuncDecl

	// Ctx is the context item ("."), with 1-based position/size for
	// predicate evaluation.
	Ctx     Item
	CtxPos  int
	CtxSize int

	depth    int
	maxDepth int

	// gov, when non-nil, is checked throughout evaluation so runaway
	// queries stop promptly on cancellation or budget exhaustion.
	gov *governor.G

	// meter, when non-nil, accumulates evaluation work counters for the
	// observability layer. Child environments share the root's meter.
	meter *EvalStats
}

// EvalStats counts evaluator work for one run: Steps is the number of Eval
// entries (expressions evaluated), FuncCalls the number of user-declared
// function invocations. Counters are atomic so a meter can be read while
// evaluation is still in flight.
type EvalStats struct {
	Steps     atomic.Int64
	FuncCalls atomic.Int64
}

// defaultMaxDepth bounds user-function recursion when no governor override
// is configured.
const defaultMaxDepth = 2048

// NewEnv returns a root environment with the context item set to ctx
// (pass a document node to evaluate a query "PASSING" that document).
func NewEnv(ctx Item) *Env {
	return &Env{vars: map[string]Seq{}, funcs: map[string]*FuncDecl{}, Ctx: ctx, CtxPos: 1, CtxSize: 1, maxDepth: defaultMaxDepth}
}

// Govern attaches an execution governor (may be nil) and adopts its
// recursion bound; it returns e for chaining.
func (e *Env) Govern(g *governor.G) *Env {
	e.gov = g
	e.maxDepth = g.MaxDepth(defaultMaxDepth)
	return e
}

// Meter attaches a work meter (may be nil) and returns e for chaining.
func (e *Env) Meter(m *EvalStats) *Env {
	e.meter = m
	return e
}

func (e *Env) child() *Env {
	// vars allocates lazily in Bind: most child environments only adjust
	// the context item (predicates, FLWOR tuples).
	return &Env{parent: e, funcs: e.funcs,
		Ctx: e.Ctx, CtxPos: e.CtxPos, CtxSize: e.CtxSize,
		depth: e.depth, maxDepth: e.maxDepth, gov: e.gov, meter: e.meter}
}

// Bind binds a variable in this environment.
func (e *Env) Bind(name string, v Seq) {
	if e.vars == nil {
		e.vars = map[string]Seq{}
	}
	e.vars[name] = v
}

// Lookup resolves a variable through the scope chain.
func (e *Env) Lookup(name string) (Seq, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// DynamicError is a runtime XQuery error.
type DynamicError struct{ Msg string }

func (e *DynamicError) Error() string { return "xquery: " + e.Msg }

func dynErrf(format string, args ...any) error {
	return &DynamicError{Msg: fmt.Sprintf(format, args...)}
}

// EvalModule evaluates a full module: prolog variables bind in order, then
// the body runs.
func EvalModule(m *Module, env *Env) (Seq, error) {
	for _, f := range m.Funcs {
		env.funcs[f.Name] = f
	}
	for _, v := range m.Vars {
		// `declare variable $x := .;` style initializers see the context.
		val, err := Eval(v.Init, env)
		if err != nil {
			return nil, err
		}
		env.Bind(v.Name, val)
	}
	if m.Body == nil {
		return nil, nil
	}
	return Eval(m.Body, env)
}

// Eval evaluates an expression. The amortized governor tick here covers
// every evaluation loop — FLWOR iteration, path steps, predicates — since
// each iteration re-enters Eval at least once.
func Eval(e Expr, env *Env) (Seq, error) {
	if err := env.gov.Tick(); err != nil {
		return nil, err
	}
	if env.meter != nil {
		env.meter.Steps.Add(1)
	}
	switch x := e.(type) {
	case StringLit:
		return Seq{string(x)}, nil
	case NumberLit:
		return Seq{float64(x)}, nil
	case VarRef:
		if v, ok := env.Lookup(string(x)); ok {
			return v, nil
		}
		return nil, dynErrf("undefined variable $%s", string(x))
	case ContextItem:
		if env.Ctx == nil {
			return nil, dynErrf("context item is undefined")
		}
		return Seq{env.Ctx}, nil
	case EmptySeq:
		return nil, nil
	case *Annotated:
		return Eval(x.X, env)
	case *Sequence:
		var out Seq
		for _, item := range x.Items {
			v, err := Eval(item, env)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *Binary:
		return evalBinary(x, env)
	case *Neg:
		v, err := Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return nil, nil
		}
		return Seq{-itemToNumber(v[0])}, nil
	case *IfExpr:
		cond, err := Eval(x.Cond, env)
		if err != nil {
			return nil, err
		}
		if EffectiveBool(cond) {
			return Eval(x.Then, env)
		}
		if x.Else == nil {
			return nil, nil
		}
		return Eval(x.Else, env)
	case *FLWOR:
		return evalFLWOR(x, env)
	case *Quantified:
		return evalQuantified(x, env)
	case *Path:
		return evalPath(x, env)
	case *Filter:
		base, err := Eval(x.Base, env)
		if err != nil {
			return nil, err
		}
		return applyPredicates(base, x.Preds, env)
	case *FuncCall:
		return evalCall(x, env)
	case *InstanceOf:
		v, err := Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return Seq{matchesSeqType(v, x.Type)}, nil
	case *DirectElem:
		return evalDirectElem(x, env)
	case TextLit:
		return Seq{string(x)}, nil
	case *CompElem:
		return evalCompElem(x, env)
	case *CompAttr:
		return evalCompAttr(x, env)
	case *CompText:
		s, err := bodyToString(x.Body, env)
		if err != nil {
			return nil, err
		}
		return Seq{xmltree.NewText(s)}, nil
	case *CompComment:
		s, err := bodyToString(x.Body, env)
		if err != nil {
			return nil, err
		}
		return Seq{xmltree.NewComment(s)}, nil
	case *CompPI:
		name, err := nameFromExpr(x.Name, env)
		if err != nil {
			return nil, err
		}
		s, err := bodyToString(x.Body, env)
		if err != nil {
			return nil, err
		}
		return Seq{xmltree.NewProcInst(name, s)}, nil
	}
	return nil, dynErrf("unhandled expression type %T", e)
}

// ---- scalars and coercions ----

// EffectiveBool computes the effective boolean value with XPath 1.0
// compatible semantics (matching the XSLT source language).
func EffectiveBool(s Seq) bool {
	if len(s) == 0 {
		return false
	}
	if _, ok := s[0].(*xmltree.Node); ok {
		return true
	}
	if len(s) == 1 {
		switch v := s[0].(type) {
		case bool:
			return v
		case float64:
			return v != 0 && !math.IsNaN(v)
		case string:
			return v != ""
		}
	}
	return true
}

// atomize converts each item to its atomic value (string value for nodes).
func atomize(s Seq) Seq {
	out := make(Seq, len(s))
	for i, it := range s {
		if n, ok := it.(*xmltree.Node); ok {
			out[i] = n.StringValue()
		} else {
			out[i] = it
		}
	}
	return out
}

func itemToString(it Item) string {
	switch v := it.(type) {
	case *xmltree.Node:
		return v.StringValue()
	case string:
		return v
	case float64:
		return xpath.NumberToString(v)
	case bool:
		if v {
			return "true"
		}
		return "false"
	}
	return fmt.Sprint(it)
}

func itemToNumber(it Item) float64 {
	switch v := it.(type) {
	case float64:
		return v
	case bool:
		if v {
			return 1
		}
		return 0
	default:
		s := strings.TrimSpace(itemToString(it))
		if !isCleanNumber(s) {
			return math.NaN()
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// isCleanNumber accepts the XPath number lexical space (no exponents, no
// hex, no leading '+').
func isCleanNumber(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	digits := 0
	for i, c := range s {
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '-' && i == 0:
		case c == '.' && !dot:
			dot = true
		default:
			return false
		}
	}
	return digits > 0
}

// StringValue returns the string value of a whole sequence: items joined by
// single spaces (XQuery fn:string on a singleton; data() join otherwise).
func StringValue(s Seq) string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = itemToString(it)
	}
	return strings.Join(parts, " ")
}

// ---- operators ----

func evalBinary(b *Binary, env *Env) (Seq, error) {
	switch b.Op {
	case OpOr, OpAnd:
		l, err := Eval(b.L, env)
		if err != nil {
			return nil, err
		}
		lb := EffectiveBool(l)
		if b.Op == OpOr && lb {
			return Seq{true}, nil
		}
		if b.Op == OpAnd && !lb {
			return Seq{false}, nil
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return nil, err
		}
		return Seq{EffectiveBool(r)}, nil

	case OpUnion:
		l, err := Eval(b.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return nil, err
		}
		nodes := make([]*xmltree.Node, 0, len(l)+len(r))
		for _, it := range append(append(Seq{}, l...), r...) {
			n, ok := it.(*xmltree.Node)
			if !ok {
				return nil, dynErrf("union operand is not a node")
			}
			nodes = append(nodes, n)
		}
		nodes = xmltree.SortDocOrder(nodes)
		out := make(Seq, len(nodes))
		for i, n := range nodes {
			out[i] = n
		}
		return out, nil

	case OpTo:
		l, err := Eval(b.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		lo := int(itemToNumber(l[0]))
		hi := int(itemToNumber(r[0]))
		if hi < lo {
			return nil, nil
		}
		if hi-lo > 10_000_000 {
			return nil, dynErrf("range %d to %d too large", lo, hi)
		}
		out := make(Seq, 0, hi-lo+1)
		for i := lo; i <= hi; i++ {
			out = append(out, float64(i))
		}
		return out, nil

	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		l, err := Eval(b.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return nil, err
		}
		return Seq{generalCompare(b.Op, l, r)}, nil

	default: // arithmetic
		l, err := Eval(b.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 || len(r) == 0 {
			return nil, nil
		}
		a, c := itemToNumber(l[0]), itemToNumber(r[0])
		switch b.Op {
		case OpAdd:
			return Seq{a + c}, nil
		case OpSub:
			return Seq{a - c}, nil
		case OpMul:
			return Seq{a * c}, nil
		case OpDiv:
			return Seq{a / c}, nil
		case OpIDiv:
			if c == 0 {
				return nil, dynErrf("integer division by zero")
			}
			return Seq{math.Trunc(a / c)}, nil
		case OpMod:
			return Seq{math.Mod(a, c)}, nil
		}
	}
	return nil, dynErrf("unhandled operator %v", b.Op)
}

// generalCompare implements existential comparison with XPath 1.0 coercion.
func generalCompare(op BinOp, l, r Seq) bool {
	la, ra := atomize(l), atomize(r)
	for _, a := range la {
		for _, b := range ra {
			if compareAtoms(op, a, b) {
				return true
			}
		}
	}
	return false
}

func compareAtoms(op BinOp, a, b Item) bool {
	switch op {
	case OpEq, OpNe:
		var eq bool
		_, aBool := a.(bool)
		_, bBool := b.(bool)
		_, aNum := a.(float64)
		_, bNum := b.(float64)
		switch {
		case aBool || bBool:
			eq = truthyAtom(a) == truthyAtom(b)
		case aNum || bNum:
			eq = itemToNumber(a) == itemToNumber(b)
		default:
			eq = itemToString(a) == itemToString(b)
		}
		if op == OpEq {
			return eq
		}
		return !eq
	default:
		x, y := itemToNumber(a), itemToNumber(b)
		switch op {
		case OpLt:
			return x < y
		case OpLe:
			return x <= y
		case OpGt:
			return x > y
		case OpGe:
			return x >= y
		}
	}
	return false
}

func truthyAtom(a Item) bool {
	switch v := a.(type) {
	case bool:
		return v
	case float64:
		return v != 0 && !math.IsNaN(v)
	case string:
		return v != ""
	}
	return false
}

// ---- FLWOR ----

func evalFLWOR(fl *FLWOR, env *Env) (Seq, error) {
	type tuple struct{ env *Env }
	tuples := []tuple{{env: env.child()}}

	for _, cl := range fl.Clauses {
		var next []tuple
		for _, tp := range tuples {
			in, err := Eval(cl.In, tp.env)
			if err != nil {
				return nil, err
			}
			switch cl.Kind {
			case ClauseLet:
				e2 := tp.env.child()
				e2.Bind(cl.Var, in)
				next = append(next, tuple{env: e2})
			case ClauseFor:
				for i, item := range in {
					e2 := tp.env.child()
					e2.Bind(cl.Var, Seq{item})
					if cl.At != "" {
						e2.Bind(cl.At, Seq{float64(i + 1)})
					}
					next = append(next, tuple{env: e2})
				}
			}
		}
		tuples = next
	}

	if fl.Where != nil {
		var kept []tuple
		for _, tp := range tuples {
			v, err := Eval(fl.Where, tp.env)
			if err != nil {
				return nil, err
			}
			if EffectiveBool(v) {
				kept = append(kept, tp)
			}
		}
		tuples = kept
	}

	if len(fl.Order) > 0 {
		type keyedTuple struct {
			tp   tuple
			keys []Item
		}
		kts := make([]keyedTuple, len(tuples))
		for i, tp := range tuples {
			kt := keyedTuple{tp: tp}
			for _, k := range fl.Order {
				v, err := Eval(k.Expr, tp.env)
				if err != nil {
					return nil, err
				}
				var key Item
				if len(v) > 0 {
					key = atomize(v[:1])[0]
				}
				kt.keys = append(kt.keys, key)
			}
			kts[i] = kt
		}
		sort.SliceStable(kts, func(a, b int) bool {
			for ki, k := range fl.Order {
				cmp := compareOrderKeys(kts[a].keys[ki], kts[b].keys[ki])
				if k.Descending {
					cmp = -cmp
				}
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		for i, kt := range kts {
			tuples[i] = kt.tp
		}
	}

	var out Seq
	for _, tp := range tuples {
		v, err := Eval(fl.Return, tp.env)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

// evalQuantified evaluates some/every over the cartesian product of the
// bindings.
func evalQuantified(q *Quantified, env *Env) (Seq, error) {
	var iterate func(i int, e *Env) (bool, error)
	iterate = func(i int, e *Env) (bool, error) {
		if i == len(q.Binds) {
			v, err := Eval(q.Satisfies, e)
			if err != nil {
				return false, err
			}
			return EffectiveBool(v), nil
		}
		in, err := Eval(q.Binds[i].In, e)
		if err != nil {
			return false, err
		}
		for _, item := range in {
			e2 := e.child()
			e2.Bind(q.Binds[i].Var, Seq{item})
			ok, err := iterate(i+1, e2)
			if err != nil {
				return false, err
			}
			if ok && !q.Every {
				return true, nil // some: first witness wins
			}
			if !ok && q.Every {
				return false, nil // every: first counterexample loses
			}
		}
		return q.Every, nil
	}
	ok, err := iterate(0, env)
	if err != nil {
		return nil, err
	}
	return Seq{ok}, nil
}

// compareOrderKeys orders two atomized keys: numerically when both parse as
// numbers, else as strings; empty sorts first.
func compareOrderKeys(a, b Item) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	na, nb := itemToNumber(a), itemToNumber(b)
	if !math.IsNaN(na) && !math.IsNaN(nb) {
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		}
		return 0
	}
	return strings.Compare(itemToString(a), itemToString(b))
}

// ---- paths ----

func evalPath(p *Path, env *Env) (Seq, error) {
	var nodes []*xmltree.Node
	switch {
	case p.Base != nil:
		base, err := Eval(p.Base, env)
		if err != nil {
			return nil, err
		}
		if len(p.Steps) == 0 {
			return base, nil
		}
		for _, it := range base {
			n, ok := it.(*xmltree.Node)
			if !ok {
				return nil, dynErrf("path step applied to a non-node (%T)", it)
			}
			nodes = append(nodes, n)
		}
	case p.Abs:
		n, ok := env.Ctx.(*xmltree.Node)
		if !ok {
			return nil, dynErrf("absolute path with no context document")
		}
		nodes = []*xmltree.Node{n.Root()}
		if len(p.Steps) == 0 {
			return Seq{nodes[0]}, nil
		}
	default:
		n, ok := env.Ctx.(*xmltree.Node)
		if !ok {
			return nil, dynErrf("relative path with non-node context item")
		}
		nodes = []*xmltree.Node{n}
	}

	for _, step := range p.Steps {
		var collected []*xmltree.Node
		seen := map[*xmltree.Node]bool{}
		for _, n := range nodes {
			cands := axisNodes(step, n)
			candSeq := make(Seq, len(cands))
			for i, c := range cands {
				candSeq[i] = c
			}
			filtered, err := applyPredicates(candSeq, step.Preds, env)
			if err != nil {
				return nil, err
			}
			for _, it := range filtered {
				c := it.(*xmltree.Node)
				if !seen[c] {
					seen[c] = true
					collected = append(collected, c)
				}
			}
		}
		collected = xmltree.SortDocOrder(collected)
		nodes = collected
		if len(nodes) == 0 {
			break
		}
	}
	out := make(Seq, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out, nil
}

// axisNodes walks one axis in axis order (reverse axes in reverse document
// order, so positional predicates count proximity per XPath semantics).
func axisNodes(step *Step, n *xmltree.Node) []*xmltree.Node {
	return xpath.AxisNodes(step.Axis, n, step.Test)
}

// applyPredicates filters a sequence through predicates with positional
// semantics: a numeric predicate selects by position.
func applyPredicates(items Seq, preds []Expr, env *Env) (Seq, error) {
	for _, pred := range preds {
		if len(items) == 0 {
			return items, nil
		}
		var kept Seq
		size := len(items)
		for i, it := range items {
			e2 := env.child()
			e2.Ctx = it
			e2.CtxPos = i + 1
			e2.CtxSize = size
			v, err := Eval(pred, e2)
			if err != nil {
				return nil, err
			}
			keep := false
			if len(v) == 1 {
				if num, ok := v[0].(float64); ok {
					keep = num == float64(i+1)
				} else {
					keep = EffectiveBool(v)
				}
			} else {
				keep = EffectiveBool(v)
			}
			if keep {
				kept = append(kept, it)
			}
		}
		items = kept
	}
	return items, nil
}

// ---- constructors ----

func evalDirectElem(d *DirectElem, env *Env) (Seq, error) {
	el := xmltree.NewElement(d.Name)
	for _, a := range d.Attrs {
		var sb strings.Builder
		for _, part := range a.Parts {
			if part.Expr == nil {
				sb.WriteString(part.Text)
				continue
			}
			v, err := Eval(part.Expr, env)
			if err != nil {
				return nil, err
			}
			sb.WriteString(StringValue(v))
		}
		el.SetAttr(a.Name, sb.String())
	}
	for _, c := range d.Children {
		if t, ok := c.(TextLit); ok {
			appendText(el, string(t))
			continue
		}
		v, err := Eval(c, env)
		if err != nil {
			return nil, err
		}
		appendContent(el, v)
	}
	el.Renumber()
	return Seq{el}, nil
}

// appendContent implements XQuery content sequence construction: adjacent
// atomic values join with single spaces into one text node; nodes are
// deep-copied; attribute nodes attach to the element.
func appendContent(el *xmltree.Node, v Seq) {
	pendingAtomic := []string{}
	flush := func() {
		if len(pendingAtomic) > 0 {
			appendText(el, strings.Join(pendingAtomic, " "))
			pendingAtomic = pendingAtomic[:0]
		}
	}
	for _, it := range v {
		if n, ok := it.(*xmltree.Node); ok {
			flush()
			if n.Kind == xmltree.AttributeNode {
				el.SetAttr(n.QName(), n.Data)
				continue
			}
			el.AppendChild(n.Clone())
			continue
		}
		pendingAtomic = append(pendingAtomic, itemToString(it))
	}
	flush()
}

func appendText(el *xmltree.Node, data string) {
	if data == "" {
		return
	}
	if n := len(el.Children); n > 0 && el.Children[n-1].Kind == xmltree.TextNode {
		el.Children[n-1].Data += data
		return
	}
	el.AppendChild(xmltree.NewText(data))
}

func evalCompElem(c *CompElem, env *Env) (Seq, error) {
	name, err := nameFromExpr(c.Name, env)
	if err != nil {
		return nil, err
	}
	el := xmltree.NewElement(name)
	if c.Body != nil {
		v, err := Eval(c.Body, env)
		if err != nil {
			return nil, err
		}
		appendContent(el, v)
	}
	el.Renumber()
	return Seq{el}, nil
}

func evalCompAttr(c *CompAttr, env *Env) (Seq, error) {
	name, err := nameFromExpr(c.Name, env)
	if err != nil {
		return nil, err
	}
	val, err := bodyToString(c.Body, env)
	if err != nil {
		return nil, err
	}
	return Seq{xmltree.NewAttr(name, val)}, nil
}

func nameFromExpr(e Expr, env *Env) (string, error) {
	if e == nil {
		return "", dynErrf("constructor requires a name")
	}
	v, err := Eval(e, env)
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(StringValue(v))
	if name == "" {
		return "", dynErrf("constructor name is empty")
	}
	return name, nil
}

func bodyToString(e Expr, env *Env) (string, error) {
	if e == nil {
		return "", nil
	}
	v, err := Eval(e, env)
	if err != nil {
		return "", err
	}
	return StringValue(v), nil
}

// ---- instance of ----

func matchesSeqType(v Seq, t SeqType) bool {
	if len(v) != 1 {
		return false
	}
	n, ok := v[0].(*xmltree.Node)
	if !ok {
		return false
	}
	switch t.Kind {
	case SeqTypeElement:
		return n.Kind == xmltree.ElementNode && (t.Name == "" || n.Name == t.Name)
	case SeqTypeAttribute:
		return n.Kind == xmltree.AttributeNode && (t.Name == "" || n.Name == t.Name)
	case SeqTypeText:
		return n.Kind == xmltree.TextNode
	case SeqTypeComment:
		return n.Kind == xmltree.CommentNode
	case SeqTypePI:
		return n.Kind == xmltree.ProcInstNode
	default:
		return true
	}
}

// ---- user functions ----

func evalCall(c *FuncCall, env *Env) (Seq, error) {
	if f, ok := env.funcs[c.Name]; ok {
		if len(c.Args) != len(f.Params) {
			return nil, dynErrf("%s() expects %d arguments, got %d", c.Name, len(f.Params), len(c.Args))
		}
		env.depth++
		if env.depth > env.maxDepth {
			return nil, fmt.Errorf("xquery: %w: recursion deeper than %d in %s()", governor.ErrRecursionLimit, env.maxDepth, c.Name)
		}
		if env.meter != nil {
			env.meter.FuncCalls.Add(1)
		}
		defer func() { env.depth-- }()
		callEnv := env.child()
		callEnv.depth = env.depth
		for i, p := range f.Params {
			v, err := Eval(c.Args[i], env)
			if err != nil {
				return nil, err
			}
			callEnv.Bind(p, v)
		}
		return Eval(f.Body, callEnv)
	}
	return evalCoreFunc(c, env)
}

// SerializeSeq renders a result sequence the way XMLQuery(... RETURNING
// CONTENT) would: nodes serialize, atomics print space-separated.
func SerializeSeq(s Seq) string {
	var sb strings.Builder
	lastAtomic := false
	for _, it := range s {
		if n, ok := it.(*xmltree.Node); ok {
			var b strings.Builder
			n.Serialize(&b, xmltree.SerializeOptions{OmitDecl: true})
			sb.WriteString(b.String())
			lastAtomic = false
			continue
		}
		if lastAtomic {
			sb.WriteByte(' ')
		}
		sb.WriteString(itemToString(it))
		lastAtomic = true
	}
	return sb.String()
}
