package xquery

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tName
	tNumber
	tString
	tVar    // $name
	tLParen // (
	tRParen
	tLBracket
	tRBracket
	tLBrace
	tRBrace
	tComma
	tSemi
	tAssign // :=
	tSlash
	tSlashSlash
	tPipe
	tPlus
	tMinus
	tStar
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tAt
	tDot
	tDotDot
	tColonColon
	tColon
	tQuestion
)

type tok struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// ParseError reports a syntax error in an XQuery query with line context.
type ParseError struct {
	Src string
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	line := 1 + strings.Count(e.Src[:min(e.Pos, len(e.Src))], "\n")
	return fmt.Sprintf("xquery: %s at line %d (offset %d)", e.Msg, line, e.Pos)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// scanner produces tokens lazily so the parser can drop to character level
// for direct XML constructors.
type scanner struct {
	src string
	pos int
}

func (s *scanner) errf(pos int, format string, args ...any) error {
	return &ParseError{Src: s.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpaceAndComments advances over whitespace and (: nested comments :).
func (s *scanner) skipSpaceAndComments() error {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			s.pos++
			continue
		}
		if c == '(' && s.pos+1 < len(s.src) && s.src[s.pos+1] == ':' {
			depth := 1
			start := s.pos
			s.pos += 2
			for s.pos < len(s.src) && depth > 0 {
				if strings.HasPrefix(s.src[s.pos:], "(:") {
					depth++
					s.pos += 2
				} else if strings.HasPrefix(s.src[s.pos:], ":)") {
					depth--
					s.pos += 2
				} else {
					s.pos++
				}
			}
			if depth > 0 {
				return s.errf(start, "unterminated comment")
			}
			continue
		}
		return nil
	}
	return nil
}

// next scans the next token.
func (s *scanner) next() (tok, error) {
	if err := s.skipSpaceAndComments(); err != nil {
		return tok{}, err
	}
	start := s.pos
	if s.pos >= len(s.src) {
		return tok{kind: tEOF, pos: start}, nil
	}
	c := s.src[s.pos]
	two := ""
	if s.pos+1 < len(s.src) {
		two = s.src[s.pos : s.pos+2]
	}
	mk := func(k tokKind, text string) (tok, error) {
		s.pos += len(text)
		return tok{kind: k, text: text, pos: start}, nil
	}
	switch two {
	case ":=":
		return mk(tAssign, two)
	case "//":
		return mk(tSlashSlash, two)
	case "..":
		return mk(tDotDot, two)
	case "::":
		return mk(tColonColon, two)
	case "!=":
		return mk(tNe, two)
	case "<=":
		return mk(tLe, two)
	case ">=":
		return mk(tGe, two)
	}
	switch c {
	case '(':
		return mk(tLParen, "(")
	case ')':
		return mk(tRParen, ")")
	case '[':
		return mk(tLBracket, "[")
	case ']':
		return mk(tRBracket, "]")
	case '{':
		return mk(tLBrace, "{")
	case '}':
		return mk(tRBrace, "}")
	case ',':
		return mk(tComma, ",")
	case ';':
		return mk(tSemi, ";")
	case '/':
		return mk(tSlash, "/")
	case '|':
		return mk(tPipe, "|")
	case '+':
		return mk(tPlus, "+")
	case '-':
		return mk(tMinus, "-")
	case '*':
		return mk(tStar, "*")
	case '=':
		return mk(tEq, "=")
	case '<':
		return mk(tLt, "<")
	case '>':
		return mk(tGt, ">")
	case '@':
		return mk(tAt, "@")
	case ':':
		return mk(tColon, ":")
	case '?':
		return mk(tQuestion, "?")
	case '.':
		if s.pos+1 < len(s.src) && isDigitB(s.src[s.pos+1]) {
			return s.scanNumber()
		}
		return mk(tDot, ".")
	case '"', '\'':
		return s.scanString(c)
	case '$':
		s.pos++
		name, err := s.scanName()
		if err != nil {
			return tok{}, err
		}
		return tok{kind: tVar, text: name, pos: start}, nil
	}
	if isDigitB(c) {
		return s.scanNumber()
	}
	if r, _ := utf8.DecodeRuneInString(s.src[s.pos:]); isNameStart(r) {
		name, err := s.scanName()
		if err != nil {
			return tok{}, err
		}
		return tok{kind: tName, text: name, pos: start}, nil
	}
	return tok{}, s.errf(start, "unexpected character %q", string(c))
}

func (s *scanner) scanNumber() (tok, error) {
	start := s.pos
	for s.pos < len(s.src) && isDigitB(s.src[s.pos]) {
		s.pos++
	}
	if s.pos < len(s.src) && s.src[s.pos] == '.' {
		s.pos++
		for s.pos < len(s.src) && isDigitB(s.src[s.pos]) {
			s.pos++
		}
	}
	// Exponent part (1e5).
	if s.pos < len(s.src) && (s.src[s.pos] == 'e' || s.src[s.pos] == 'E') {
		save := s.pos
		s.pos++
		if s.pos < len(s.src) && (s.src[s.pos] == '+' || s.src[s.pos] == '-') {
			s.pos++
		}
		if s.pos < len(s.src) && isDigitB(s.src[s.pos]) {
			for s.pos < len(s.src) && isDigitB(s.src[s.pos]) {
				s.pos++
			}
		} else {
			s.pos = save
		}
	}
	text := s.src[start:s.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return tok{}, s.errf(start, "bad number %q", text)
	}
	return tok{kind: tNumber, text: text, num: f, pos: start}, nil
}

// scanString reads a quoted literal; a doubled quote escapes itself.
func (s *scanner) scanString(quote byte) (tok, error) {
	start := s.pos
	s.pos++
	var sb strings.Builder
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == quote {
			if s.pos+1 < len(s.src) && s.src[s.pos+1] == quote {
				sb.WriteByte(quote)
				s.pos += 2
				continue
			}
			s.pos++
			return tok{kind: tString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		s.pos++
	}
	return tok{}, s.errf(start, "unterminated string literal")
}

func (s *scanner) scanName() (string, error) {
	start := s.pos
	r, sz := utf8.DecodeRuneInString(s.src[s.pos:])
	if sz == 0 || !isNameStart(r) {
		return "", s.errf(s.pos, "expected a name")
	}
	s.pos += sz
	for s.pos < len(s.src) {
		r, sz = utf8.DecodeRuneInString(s.src[s.pos:])
		if !isNameChar(r) {
			break
		}
		s.pos += sz
	}
	return s.src[start:s.pos], nil
}

func isDigitB(c byte) bool { return c >= '0' && c <= '9' }
func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}
func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}
