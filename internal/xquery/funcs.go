package xquery

import (
	"math"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// evalCoreFunc dispatches the built-in function library. Names may carry the
// conventional "fn:" prefix.
func evalCoreFunc(c *FuncCall, env *Env) (Seq, error) {
	name := strings.TrimPrefix(c.Name, "fn:")
	fn, ok := coreFuncs[name]
	if !ok {
		return nil, dynErrf("unknown function %s()", c.Name)
	}
	if fn.minArgs > len(c.Args) || (fn.maxArgs >= 0 && len(c.Args) > fn.maxArgs) {
		return nil, dynErrf("wrong number of arguments to %s(): got %d", c.Name, len(c.Args))
	}
	args := make([]Seq, len(c.Args))
	for i, a := range c.Args {
		v, err := Eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn.impl(env, args)
}

type coreFn struct {
	minArgs, maxArgs int
	impl             func(env *Env, args []Seq) (Seq, error)
}

// arg0OrCtx returns args[0] when present, else the context item singleton.
func arg0OrCtx(env *Env, args []Seq) Seq {
	if len(args) > 0 {
		return args[0]
	}
	if env.Ctx == nil {
		return nil
	}
	return Seq{env.Ctx}
}

var coreFuncs map[string]coreFn

func init() {
	coreFuncs = map[string]coreFn{
		"string": {0, 1, func(env *Env, args []Seq) (Seq, error) {
			v := arg0OrCtx(env, args)
			if len(v) == 0 {
				return Seq{""}, nil
			}
			return Seq{itemToString(v[0])}, nil
		}},
		"data": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			return atomize(args[0]), nil
		}},
		"concat": {2, -1, func(_ *Env, args []Seq) (Seq, error) {
			var sb strings.Builder
			for _, a := range args {
				if len(a) > 0 {
					sb.WriteString(itemToString(a[0]))
				}
			}
			return Seq{sb.String()}, nil
		}},
		"string-join": {1, 2, func(_ *Env, args []Seq) (Seq, error) {
			sep := ""
			if len(args) == 2 && len(args[1]) > 0 {
				sep = itemToString(args[1][0])
			}
			parts := make([]string, len(args[0]))
			for i, it := range args[0] {
				parts[i] = itemToString(it)
			}
			return Seq{strings.Join(parts, sep)}, nil
		}},
		"count": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			return Seq{float64(len(args[0]))}, nil
		}},
		"empty": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			return Seq{len(args[0]) == 0}, nil
		}},
		"exists": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			return Seq{len(args[0]) > 0}, nil
		}},
		"not": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			return Seq{!EffectiveBool(args[0])}, nil
		}},
		"boolean": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			return Seq{EffectiveBool(args[0])}, nil
		}},
		"true": {0, 0, func(_ *Env, _ []Seq) (Seq, error) {
			return Seq{true}, nil
		}},
		"false": {0, 0, func(_ *Env, _ []Seq) (Seq, error) {
			return Seq{false}, nil
		}},
		"number": {0, 1, func(env *Env, args []Seq) (Seq, error) {
			v := arg0OrCtx(env, args)
			if len(v) == 0 {
				return Seq{math.NaN()}, nil
			}
			return Seq{itemToNumber(v[0])}, nil
		}},
		"sum": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			total := 0.0
			for _, it := range args[0] {
				total += itemToNumber(it)
			}
			return Seq{total}, nil
		}},
		"avg": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			if len(args[0]) == 0 {
				return nil, nil
			}
			total := 0.0
			for _, it := range args[0] {
				total += itemToNumber(it)
			}
			return Seq{total / float64(len(args[0]))}, nil
		}},
		"min":     {1, 1, extremum(func(a, b float64) bool { return a < b })},
		"max":     {1, 1, extremum(func(a, b float64) bool { return a > b })},
		"floor":   {1, 1, numeric1(math.Floor)},
		"ceiling": {1, 1, numeric1(math.Ceil)},
		"round":   {1, 1, numeric1(func(f float64) float64 { return math.Floor(f + 0.5) })},
		"abs":     {1, 1, numeric1(math.Abs)},

		"name":          {0, 1, nodeName(func(n *xmltree.Node) string { return n.QName() })},
		"local-name":    {0, 1, nodeName(func(n *xmltree.Node) string { return n.Name })},
		"namespace-uri": {0, 1, nodeName(func(n *xmltree.Node) string { return n.NamespaceURI })},

		"position": {0, 0, func(env *Env, _ []Seq) (Seq, error) {
			return Seq{float64(env.CtxPos)}, nil
		}},
		"last": {0, 0, func(env *Env, _ []Seq) (Seq, error) {
			return Seq{float64(env.CtxSize)}, nil
		}},

		"contains":    {2, 2, str2bool(strings.Contains)},
		"starts-with": {2, 2, str2bool(strings.HasPrefix)},
		"ends-with":   {2, 2, str2bool(strings.HasSuffix)},
		"substring-before": {2, 2, func(_ *Env, args []Seq) (Seq, error) {
			s, sep := seqString(args[0]), seqString(args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return Seq{s[:i]}, nil
			}
			return Seq{""}, nil
		}},
		"substring-after": {2, 2, func(_ *Env, args []Seq) (Seq, error) {
			s, sep := seqString(args[0]), seqString(args[1])
			if i := strings.Index(s, sep); i >= 0 {
				return Seq{s[i+len(sep):]}, nil
			}
			return Seq{""}, nil
		}},
		"substring": {2, 3, func(_ *Env, args []Seq) (Seq, error) {
			runes := []rune(seqString(args[0]))
			start := seqNumber(args[1])
			if math.IsNaN(start) {
				return Seq{""}, nil
			}
			begin := int(math.Floor(start + 0.5))
			end := len(runes) + 1
			if len(args) == 3 {
				l := seqNumber(args[2])
				if math.IsNaN(l) {
					return Seq{""}, nil
				}
				end = begin + int(math.Floor(l+0.5))
			}
			if begin < 1 {
				begin = 1
			}
			if end > len(runes)+1 {
				end = len(runes) + 1
			}
			if begin >= end {
				return Seq{""}, nil
			}
			return Seq{string(runes[begin-1 : end-1])}, nil
		}},
		"string-length": {0, 1, func(env *Env, args []Seq) (Seq, error) {
			return Seq{float64(len([]rune(seqString(arg0OrCtx(env, args)))))}, nil
		}},
		"normalize-space": {0, 1, func(env *Env, args []Seq) (Seq, error) {
			return Seq{strings.Join(strings.Fields(seqString(arg0OrCtx(env, args))), " ")}, nil
		}},
		"upper-case": {1, 1, str1(strings.ToUpper)},
		"lower-case": {1, 1, str1(strings.ToLower)},
		"translate": {3, 3, func(_ *Env, args []Seq) (Seq, error) {
			// Reuse the XPath implementation via a tiny expression.
			e, err := xpath.Parse("translate($s, $f, $t)")
			if err != nil {
				return nil, err
			}
			v, err := xpath.Eval(e, &xpath.Context{
				Node: xmltree.NewDocument(), Position: 1, Size: 1,
				Vars: xpath.VarMap{"s": seqString(args[0]), "f": seqString(args[1]), "t": seqString(args[2])},
			})
			if err != nil {
				return nil, err
			}
			return Seq{xpath.ToString(v)}, nil
		}},

		"distinct-values": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			seen := map[string]bool{}
			var out Seq
			for _, it := range atomize(args[0]) {
				k := itemToString(it)
				if !seen[k] {
					seen[k] = true
					out = append(out, it)
				}
			}
			return out, nil
		}},
		"reverse": {1, 1, func(_ *Env, args []Seq) (Seq, error) {
			in := args[0]
			out := make(Seq, len(in))
			for i, it := range in {
				out[len(in)-1-i] = it
			}
			return out, nil
		}},
		"subsequence": {2, 3, func(_ *Env, args []Seq) (Seq, error) {
			in := args[0]
			start := int(math.Floor(seqNumber(args[1]) + 0.5))
			length := len(in)
			if len(args) == 3 {
				length = int(math.Floor(seqNumber(args[2]) + 0.5))
			}
			var out Seq
			for i := 0; i < len(in); i++ {
				pos := i + 1
				if pos >= start && pos < start+length {
					out = append(out, in[i])
				}
			}
			return out, nil
		}},
		"root": {0, 1, func(env *Env, args []Seq) (Seq, error) {
			v := arg0OrCtx(env, args)
			if len(v) == 0 {
				return nil, nil
			}
			n, ok := v[0].(*xmltree.Node)
			if !ok {
				return nil, dynErrf("root() requires a node")
			}
			return Seq{n.Root()}, nil
		}},
	}
}

func extremum(better func(a, b float64) bool) func(*Env, []Seq) (Seq, error) {
	return func(_ *Env, args []Seq) (Seq, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		best := itemToNumber(args[0][0])
		for _, it := range args[0][1:] {
			if v := itemToNumber(it); better(v, best) {
				best = v
			}
		}
		return Seq{best}, nil
	}
}

func numeric1(f func(float64) float64) func(*Env, []Seq) (Seq, error) {
	return func(_ *Env, args []Seq) (Seq, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		return Seq{f(itemToNumber(args[0][0]))}, nil
	}
}

func str1(f func(string) string) func(*Env, []Seq) (Seq, error) {
	return func(_ *Env, args []Seq) (Seq, error) {
		return Seq{f(seqString(args[0]))}, nil
	}
}

func str2bool(f func(a, b string) bool) func(*Env, []Seq) (Seq, error) {
	return func(_ *Env, args []Seq) (Seq, error) {
		return Seq{f(seqString(args[0]), seqString(args[1]))}, nil
	}
}

func nodeName(get func(*xmltree.Node) string) func(*Env, []Seq) (Seq, error) {
	return func(env *Env, args []Seq) (Seq, error) {
		v := arg0OrCtx(env, args)
		if len(v) == 0 {
			return Seq{""}, nil
		}
		n, ok := v[0].(*xmltree.Node)
		if !ok {
			return nil, dynErrf("name functions require a node argument")
		}
		return Seq{get(n)}, nil
	}
}

func seqString(s Seq) string {
	if len(s) == 0 {
		return ""
	}
	return itemToString(s[0])
}

func seqNumber(s Seq) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	return itemToNumber(s[0])
}
