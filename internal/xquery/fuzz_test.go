package xquery

import (
	"strings"
	"testing"

	"repro/internal/governor"
	"repro/internal/xmltree"
)

// FuzzParse asserts the XQuery parser never panics or hangs: any input
// either parses or returns an error. Parsed modules additionally get one
// governed evaluation pass over a tiny document — the evaluator must
// contain whatever the parser accepted, and the recursion guard must stop
// runaway user functions.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<table>{ for $e in //emp return <tr>{ $e/ename }</tr> }</table>`,
		`declare variable $v := 1; $v + 1`,
		`declare function local:f($x) { $x * 2 }; local:f(21)`,
		`declare function local:loop($n) { local:loop($n) }; local:loop(1)`,
		`if (count(//emp) > 1) then "many" else "few"`,
		`some $s in //sal satisfies $s > 2000`,
		`for $d in /dept order by $d/dname descending return $d`,
		`let $x := (1, 2, 3) return fn:sum($x)`,
		`1 to 5`,
		`"con" || "cat"`,
		`//emp[sal > 2000][1]`,
		`<a b="{1+1}"><c/></a>`,
		strings.Repeat("(", 600),
		strings.Repeat("<a>", 300),
		strings.Repeat("-", 600) + "1",
		`for $x in`,
		`declare`,
		`<a>{`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc, err := xmltree.Parse(`<dept><emp><ename>x</ename><sal>3000</sal></emp></dept>`)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		// Evaluate with a tight recursion bound so accepted-but-recursive
		// modules fail fast instead of timing out the fuzzer.
		env := NewEnv(Item(doc)).Govern(governor.New(nil).Limits(0, 0, 64))
		if seq, err := EvalModule(m, env); err == nil {
			_ = SerializeSeq(seq) // must not panic either
		}
	})
}
