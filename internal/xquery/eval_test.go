package xquery

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

const deptDoc = `<dept>
<dname>ACCOUNTING</dname>
<loc>NEW YORK</loc>
<employees>
<emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>
<emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>
</employees>
</dept>`

func docOf(t *testing.T, src string) *xmltree.Node {
	t.Helper()
	d, err := xmltree.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func run(t *testing.T, query string, doc *xmltree.Node) Seq {
	t.Helper()
	m, err := Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	var ctx Item
	if doc != nil {
		ctx = doc
	}
	out, err := EvalModule(m, NewEnv(ctx))
	if err != nil {
		t.Fatalf("Eval(%q): %v", query, err)
	}
	return out
}

func runStr(t *testing.T, query string, doc *xmltree.Node) string {
	t.Helper()
	return SerializeSeq(run(t, query, doc))
}

func nows(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	return strings.ReplaceAll(s, "> <", "><")
}

func TestLiteralsAndArithmetic(t *testing.T) {
	cases := []struct {
		q, want string
	}{
		{`1 + 2 * 3`, "7"},
		{`(1 + 2) * 3`, "9"},
		{`10 idiv 3`, "3"},
		{`10 div 4`, "2.5"},
		{`7 mod 3`, "1"},
		{`-5 + 2`, "-3"},
		{`"hello"`, "hello"},
		{`'it''s'`, "it's"},
		{`1, 2, 3`, "1 2 3"},
		{`()`, ""},
		{`1 to 4`, "1 2 3 4"},
		{`2.5`, "2.5"},
		{`1e3`, "1000"},
	}
	for _, tc := range cases {
		if got := runStr(t, tc.q, nil); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.q, got, tc.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	doc := docOf(t, deptDoc)
	cases := []struct {
		q    string
		want string
	}{
		{`1 = 1`, "true"},
		{`1 eq 1`, "true"},
		{`2 lt 1`, "false"},
		{`"a" != "b"`, "true"},
		{`//sal > 2000`, "true"}, // existential
		{`//sal > 5000`, "false"},
		{`//ename = "CLARK"`, "true"},
		{`"2" = 2`, "true"},
		{`fn:not(//missing)`, "true"},
	}
	for _, tc := range cases {
		if got := runStr(t, tc.q, doc); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.q, got, tc.want)
		}
	}
}

func TestPaths(t *testing.T) {
	doc := docOf(t, deptDoc)
	if got := runStr(t, `fn:string(/dept/dname)`, doc); got != "ACCOUNTING" {
		t.Fatalf("dname = %q", got)
	}
	if got := runStr(t, `fn:count(//emp)`, doc); got != "2" {
		t.Fatalf("count = %q", got)
	}
	if got := runStr(t, `fn:string(//emp[sal > 2000]/ename)`, doc); got != "CLARK" {
		t.Fatalf("predicate path = %q", got)
	}
	if got := runStr(t, `fn:count(/dept/employees/emp[2])`, doc); got != "1" {
		t.Fatalf("positional = %q", got)
	}
	if got := runStr(t, `fn:string(//emp[2]/empno)`, doc); got != "7934" {
		t.Fatalf("emp[2] = %q", got)
	}
}

func TestFLWORBasics(t *testing.T) {
	doc := docOf(t, deptDoc)
	got := runStr(t, `for $e in //emp return <n>{fn:string($e/ename)}</n>`, doc)
	if nows(got) != "<n>CLARK</n><n>MILLER</n>" {
		t.Fatalf("for = %q", got)
	}
	got = runStr(t, `let $s := sum(//sal) return $s * 2`, doc)
	if got != "7500" {
		t.Fatalf("let = %q", got)
	}
	got = runStr(t, `for $e in //emp where $e/sal > 2000 return fn:string($e/ename)`, doc)
	if got != "CLARK" {
		t.Fatalf("where = %q", got)
	}
	// Multiple clauses and at.
	got = runStr(t, `for $e at $i in //emp return fn:concat($i, ":", fn:string($e/ename))`, doc)
	if got != "1:CLARK 2:MILLER" {
		t.Fatalf("at = %q", got)
	}
	// Cartesian product of two fors.
	got = runStr(t, `for $a in (1,2), $b in (10,20) return $a + $b`, nil)
	if got != "11 21 12 22" {
		t.Fatalf("product = %q", got)
	}
}

func TestFLWOROrderBy(t *testing.T) {
	doc := docOf(t, deptDoc)
	got := runStr(t, `for $e in //emp order by $e/sal return fn:string($e/ename)`, doc)
	if got != "MILLER CLARK" {
		t.Fatalf("order by = %q", got)
	}
	got = runStr(t, `for $e in //emp order by $e/sal descending return fn:string($e/ename)`, doc)
	if got != "CLARK MILLER" {
		t.Fatalf("order by desc = %q", got)
	}
	got = runStr(t, `for $s in ("b", "a", "c") order by $s return $s`, nil)
	if got != "a b c" {
		t.Fatalf("string order = %q", got)
	}
}

func TestIfExpr(t *testing.T) {
	doc := docOf(t, deptDoc)
	got := runStr(t, `if (//sal > 2000) then "rich" else "poor"`, doc)
	if got != "rich" {
		t.Fatalf("if = %q", got)
	}
	got = runStr(t, `for $e in //emp return if ($e/sal > 2000) then "Y" else "N"`, doc)
	if got != "Y N" {
		t.Fatalf("if per emp = %q", got)
	}
}

func TestDirectConstructors(t *testing.T) {
	doc := docOf(t, deptDoc)
	got := runStr(t, `<H2>{fn:concat("Department name: ", fn:string(/dept/dname))}</H2>`, doc)
	if got != "<H2>Department name: ACCOUNTING</H2>" {
		t.Fatalf("direct elem = %q", got)
	}
	got = runStr(t, `<table border="2"><td><b>EmpNo</b></td></table>`, nil)
	if got != `<table border="2"><td><b>EmpNo</b></td></table>` {
		t.Fatalf("nested literal = %q", got)
	}
	// Attribute with embedded expression.
	got = runStr(t, `<e id="pre{1+1}post"/>`, nil)
	if got != `<e id="pre2post"/>` {
		t.Fatalf("attr expr = %q", got)
	}
	// Entities in content.
	got = runStr(t, `<e>&lt;tag&gt; &amp; stuff</e>`, nil)
	if got != "<e>&lt;tag&gt; &amp; stuff</e>" {
		t.Fatalf("entities = %q", got)
	}
	// Escaped braces.
	got = runStr(t, `<e>{{literal}}</e>`, nil)
	if got != "<e>{literal}</e>" {
		t.Fatalf("braces = %q", got)
	}
}

func TestConstructorContentRules(t *testing.T) {
	// Adjacent atomics join with spaces in one text node.
	got := runStr(t, `<e>{1, 2, "x"}</e>`, nil)
	if got != "<e>1 2 x</e>" {
		t.Fatalf("atomics = %q", got)
	}
	// Nodes are copied, not referenced.
	doc := docOf(t, `<src><a>v</a></src>`)
	out := run(t, `<wrap>{/src/a}</wrap>`, doc)
	wrapped := out[0].(*xmltree.Node)
	orig := doc.DocumentElement().Children[0]
	if wrapped.Children[0] == orig {
		t.Fatal("constructor must copy nodes")
	}
	if wrapped.Children[0].StringValue() != "v" {
		t.Fatal("copied content wrong")
	}
	// Attribute nodes attach as attributes.
	got = runStr(t, `<e>{attribute {"k"} {"v"}}</e>`, nil)
	if got != `<e k="v"/>` {
		t.Fatalf("attr content = %q", got)
	}
}

func TestComputedConstructors(t *testing.T) {
	got := runStr(t, `element {"foo"} {"body"}`, nil)
	if got != "<foo>body</foo>" {
		t.Fatalf("computed elem = %q", got)
	}
	got = runStr(t, `element bar { <i/> }`, nil)
	if got != "<bar><i/></bar>" {
		t.Fatalf("computed named elem = %q", got)
	}
	got = runStr(t, `text {"hi"}`, nil)
	if got != "hi" {
		t.Fatalf("text = %q", got)
	}
	got = runStr(t, `comment {"note"}`, nil)
	if got != "<!--note-->" {
		t.Fatalf("comment = %q", got)
	}
	got = runStr(t, `processing-instruction {"t"} {"d"}`, nil)
	if got != "<?t d?>" {
		t.Fatalf("pi = %q", got)
	}
}

func TestInstanceOf(t *testing.T) {
	doc := docOf(t, deptDoc)
	cases := []struct {
		q, want string
	}{
		{`(/dept/dname) instance of element(dname)`, "true"},
		{`(/dept/dname) instance of element(loc)`, "false"},
		{`(/dept/dname) instance of element()`, "true"},
		{`(//text())[1] instance of text()`, "true"},
		{`(/dept/dname) instance of node()`, "true"},
		{`"str" instance of element(x)`, "false"},
	}
	for _, tc := range cases {
		if got := runStr(t, tc.q, doc); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.q, got, tc.want)
		}
	}
}

func TestPrologVariables(t *testing.T) {
	doc := docOf(t, deptDoc)
	// Table 8 pattern: declare variable $var000 := .;
	got := runStr(t, `declare variable $var000 := .;
fn:string($var000/dept/dname)`, doc)
	if got != "ACCOUNTING" {
		t.Fatalf("prolog var = %q", got)
	}
	got = runStr(t, `declare variable $a := 2; declare variable $b := $a * 3; $b`, nil)
	if got != "6" {
		t.Fatalf("chained vars = %q", got)
	}
}

func TestUserFunctions(t *testing.T) {
	got := runStr(t, `declare function local:double($x) { $x * 2 };
local:double(21)`, nil)
	if got != "42" {
		t.Fatalf("user fn = %q", got)
	}
	// Recursion (factorial).
	got = runStr(t, `declare function local:fact($n) { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
local:fact(5)`, nil)
	if got != "120" {
		t.Fatalf("recursion = %q", got)
	}
	// Runaway recursion is caught.
	m := MustParse(`declare function local:loop($n) { local:loop($n) }; local:loop(1)`)
	if _, err := EvalModule(m, NewEnv(nil)); err == nil {
		t.Fatal("infinite recursion should error")
	}
}

func TestCoreFunctions(t *testing.T) {
	doc := docOf(t, deptDoc)
	cases := []struct {
		q, want string
	}{
		{`fn:string-join(for $t in //ename return fn:string($t), ",")`, "CLARK,MILLER"},
		{`fn:sum(//sal)`, "3750"},
		{`fn:avg((1, 2, 3))`, "2"},
		{`fn:min((3, 1, 2))`, "1"},
		{`fn:max((3, 1, 2))`, "3"},
		{`fn:count(//emp)`, "2"},
		{`fn:empty(//nope)`, "true"},
		{`fn:exists(//emp)`, "true"},
		{`fn:substring("12345", 2, 3)`, "234"},
		{`fn:upper-case("abc")`, "ABC"},
		{`fn:lower-case("ABC")`, "abc"},
		{`fn:translate("bar", "abc", "ABC")`, "BAr"},
		{`fn:normalize-space("  a  b ")`, "a b"},
		{`fn:name((//emp)[1])`, "emp"},
		{`fn:local-name((//emp)[1])`, "emp"},
		{`fn:contains("foobar", "oba")`, "true"},
		{`fn:starts-with("foobar", "foo")`, "true"},
		{`fn:ends-with("foobar", "bar")`, "true"},
		{`fn:distinct-values((1, 2, 1, 3))`, "1 2 3"},
		{`fn:reverse((1, 2, 3))`, "3 2 1"},
		{`fn:subsequence((1, 2, 3, 4), 2, 2)`, "2 3"},
		{`fn:string-length("héllo")`, "5"},
		{`fn:floor(2.7)`, "2"},
		{`fn:ceiling(2.1)`, "3"},
		{`fn:round(2.5)`, "3"},
		{`fn:abs(-4)`, "4"},
		{`count((1, 2))`, "2"}, // unprefixed spelling
	}
	for _, tc := range cases {
		if got := runStr(t, tc.q, doc); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(run(t, `fn:number("zz")`, nil)[0].(float64)) {
		t.Error("number('zz') should be NaN")
	}
}

func TestPositionLastInPredicates(t *testing.T) {
	doc := docOf(t, `<r><i>a</i><i>b</i><i>c</i></r>`)
	if got := runStr(t, `fn:string(/r/i[fn:position() = fn:last()])`, doc); got != "c" {
		t.Fatalf("position/last = %q", got)
	}
	if got := runStr(t, `fn:count(/r/i[position() > 1])`, doc); got != "2" {
		t.Fatalf("position filter = %q", got)
	}
}

func TestFilterExpression(t *testing.T) {
	doc := docOf(t, deptDoc)
	if got := runStr(t, `fn:string((//emp)[2]/ename)`, doc); got != "MILLER" {
		t.Fatalf("filter = %q", got)
	}
	if got := runStr(t, `(1, 2, 3)[2]`, nil); got != "2" {
		t.Fatalf("seq filter = %q", got)
	}
}

func TestUnionOperator(t *testing.T) {
	doc := docOf(t, deptDoc)
	got := runStr(t, `fn:count(/dept/dname | /dept/loc)`, doc)
	if got != "2" {
		t.Fatalf("union = %q", got)
	}
	// Union result is in document order.
	got = runStr(t, `fn:string-join(for $n in (/dept/loc | /dept/dname) return fn:name($n), ",")`, doc)
	if got != "dname,loc" {
		t.Fatalf("union order = %q", got)
	}
}

// TestPaperTable8Query executes the (slightly abbreviated) XQuery the paper
// shows as the rewrite output for Example 1, and checks it produces the
// Table 6 result.
func TestPaperTable8Query(t *testing.T) {
	doc := docOf(t, deptDoc)
	query := `declare variable $var000 := .;
(
let $var002 := $var000/dept
return
(
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>,
(
let $var003 := $var002/dname
return
<H2>{fn:concat("Department name: ", fn:string($var003))}</H2>,
let $var003 := $var002/loc
return
<H2>{fn:concat("Department location: ", fn:string($var003))}</H2>,
let $var003 := $var002/employees
return
(
<H2>Employees Table</H2>,
<table border="2">
{
<td><b>EmpNo</b></td>,
<td><b>Name</b></td>,
<td><b>Weekly Salary</b></td>,
(
for $var005 in ($var003/emp[sal > 2000])
return
<tr>
<td>{fn:string($var005/empno)}</td>
<td>{fn:string($var005/ename)}</td>
<td>{fn:string($var005/sal)}</td>
</tr>
)
}
</table>
)
)
)
)`
	got := nows(runStr(t, query, doc))
	want := nows(`<H1>HIGHLY PAID DEPT EMPLOYEES</H1>` +
		`<H2>Department name: ACCOUNTING</H2>` +
		`<H2>Department location: NEW YORK</H2>` +
		`<H2>Employees Table</H2>` +
		`<table border="2"><td><b>EmpNo</b></td><td><b>Name</b></td><td><b>Weekly Salary</b></td>` +
		`<tr><td>7782</td><td>CLARK</td><td>2450</td></tr></table>`)
	if got != want {
		t.Fatalf("Table 8 query mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestPaperExample2FLWOR(t *testing.T) {
	// Table 10: for $tr in ./table/tr return $tr — applied to the XSLT
	// output fragment.
	frag := docOf(t, `<x><table><tr><td>7782</td></tr><tr><td>7954</td></tr></table></x>`)
	got := runStr(t, `for $tr in ./x/table/tr return $tr`, frag)
	if nows(got) != "<tr><td>7782</td></tr><tr><td>7954</td></tr>" {
		t.Fatalf("example 2 = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for $x return 1`,
		`let $x = 2 return $x`,
		`if (1) then 2`,
		`<unclosed>`,
		`<a></b>`,
		`1 +`,
		`declare variable x := 1; 2`,
		`declare function f($a { 1 }; 2`,
		`$`,
		`(1, 2`,
		`<e a="{1}>text</e>`,
		`fn:unknown-function(1)`, // parses, but:
	}
	for _, src := range bad[:len(bad)-1] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	// Unknown function is a dynamic error.
	m, err := Parse(`fn:unknown-function(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalModule(m, NewEnv(nil)); err == nil {
		t.Error("unknown function should fail at evaluation")
	}
}

func TestCommentsIgnored(t *testing.T) {
	got := runStr(t, `(: outer (: nested :) still comment :) 1 + (: mid :) 2`, nil)
	if got != "3" {
		t.Fatalf("comments = %q", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		`1 + 2 * 3`,
		`for $e in //emp where $e/sal > 2000 return <n>{fn:string($e/ename)}</n>`,
		`let $x := /dept/dname return fn:concat("n: ", fn:string($x))`,
		`if (//sal > 2000) then "rich" else "poor"`,
		`<table border="2"><td>{1 + 1}</td></table>`,
		`declare variable $v := .; fn:count($v//emp)`,
		`declare function local:f($a) { $a * 2 }; local:f(3)`,
		`(//emp)[1] instance of element(emp)`,
		`element {"x"} {attribute {"k"} {"v"}}`,
		`for $e in //emp order by $e/sal descending return fn:string($e/empno)`,
		`fn:string-join(("a", "b"), "-")`,
		`(1, 2, 3)[2]`,
		`//emp[sal > 2000]/ename`,
	}
	doc := docOf(t, deptDoc)
	for _, q := range queries {
		m1, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		printed := m1.String()
		m2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-Parse of %q failed: %v\nprinted: %s", q, err, printed)
			continue
		}
		r1, err1 := EvalModule(m1, NewEnv(Item(doc)))
		r2, err2 := EvalModule(m2, NewEnv(Item(doc)))
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("round trip of %q changed error status: %v vs %v", q, err1, err2)
			continue
		}
		if err1 == nil && SerializeSeq(r1) != SerializeSeq(r2) {
			t.Errorf("round trip of %q changed result:\n was %q\n now %q\nprinted:\n%s", q, SerializeSeq(r1), SerializeSeq(r2), printed)
		}
	}
}

func TestAnnotatedComments(t *testing.T) {
	// The rewriter labels inlined templates with comments (Table 8 style);
	// they must print and re-parse.
	e := &Annotated{Comment: `<xsl:template match="dept">`, X: NumberLit(1)}
	s := e.String()
	if !strings.Contains(s, `(: <xsl:template match="dept"> :)`) {
		t.Fatalf("annotation missing: %s", s)
	}
	m, err := Parse(s)
	if err != nil {
		t.Fatalf("annotated expr does not re-parse: %v", err)
	}
	out, err := EvalModule(m, NewEnv(nil))
	if err != nil || SerializeSeq(out) != "1" {
		t.Fatalf("annotated eval wrong: %v %q", err, SerializeSeq(out))
	}
	if Unwrap(e) != NumberLit(1) {
		t.Fatal("Unwrap wrong")
	}
}

func TestDeepPathsAfterPrimary(t *testing.T) {
	doc := docOf(t, deptDoc)
	got := runStr(t, `declare variable $d := /dept; fn:string($d/employees/emp[1]/ename)`, doc)
	if got != "CLARK" {
		t.Fatalf("var path = %q", got)
	}
	// Undefined variable in a path is a dynamic error.
	m := MustParse(`fn:count($undefined//emp)`)
	if _, err := EvalModule(m, NewEnv(nil)); err == nil {
		t.Fatal("undefined variable should error")
	}
}

func TestQuantifiedExpressions(t *testing.T) {
	doc := docOf(t, deptDoc)
	cases := []struct{ q, want string }{
		{`some $s in //sal satisfies $s > 2000`, "true"},
		{`some $s in //sal satisfies $s > 9000`, "false"},
		{`every $s in //sal satisfies $s > 1000`, "true"},
		{`every $s in //sal satisfies $s > 2000`, "false"},
		{`every $s in //nope satisfies $s > 0`, "true"}, // vacuous truth
		{`some $s in //nope satisfies $s > 0`, "false"}, // empty domain
		{`some $a in (1, 2), $b in (10, 20) satisfies $a + $b = 22`, "true"},
		{`every $a in (1, 2), $b in (10, 20) satisfies $a < $b`, "true"},
	}
	for _, tc := range cases {
		if got := runStr(t, tc.q, doc); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.q, got, tc.want)
		}
	}
	// Round trip.
	m := MustParse(`some $s in //sal satisfies $s > 2000`)
	re, err := Parse(m.String())
	if err != nil {
		t.Fatalf("quantified round trip: %v\n%s", err, m.String())
	}
	a, _ := EvalModule(m, NewEnv(Item(doc)))
	b, _ := EvalModule(re, NewEnv(Item(doc)))
	if SerializeSeq(a) != SerializeSeq(b) {
		t.Fatal("round trip changed result")
	}
}
