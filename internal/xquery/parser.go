package xquery

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// Parse parses a complete XQuery module (prolog + body).
func Parse(src string) (*Module, error) {
	p := &parser{sc: scanner{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	m := &Module{}
	for p.isKeyword("declare") {
		if err := p.parseDeclaration(m); err != nil {
			return nil, err
		}
	}
	body, err := p.parseExprSequence()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tEOF {
		return nil, p.errf("unexpected %s after query body", p.cur)
	}
	m.Body = body
	return m, nil
}


// ParseExpr parses a single expression (no prolog).
func ParseExpr(src string) (Expr, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(m.Vars) > 0 || len(m.Funcs) > 0 {
		return nil, &ParseError{Src: src, Pos: 0, Msg: "expected a bare expression, found prolog declarations"}
	}
	return m.Body, nil
}

// maxParseDepth bounds parser recursion so hostile inputs (a kilobyte of
// "((((" or deeply nested constructors) surface a ParseError instead of
// exhausting the goroutine stack. Real-world queries nest a handful of
// levels.
const maxParseDepth = 512

type parser struct {
	sc    scanner
	cur   tok
	depth int
}

// enter charges one level of parser recursion; leave releases it.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf("expression nests deeper than %d levels", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) errf(format string, args ...any) error {
	return p.sc.errf(p.cur.pos, format, args...)
}

// advance scans the next token into p.cur.
func (p *parser) advance() error {
	t, err := p.sc.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur.kind == tName && p.cur.text == kw
}

// eatKeyword consumes the keyword and reports whether it was present.
func (p *parser) eatKeyword(kw string) (bool, error) {
	if !p.isKeyword(kw) {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	ok, err := p.eatKeyword(kw)
	if err != nil {
		return err
	}
	if !ok {
		return p.errf("expected %q, found %s", kw, p.cur)
	}
	return nil
}

func (p *parser) expect(k tokKind, what string) (tok, error) {
	if p.cur.kind != k {
		return tok{}, p.errf("expected %s, found %s", what, p.cur)
	}
	t := p.cur
	return t, p.advance()
}

// peekAhead reports the next token after the current one without consuming
// anything.
func (p *parser) peekAhead() tok {
	save := p.sc.pos
	t, err := p.sc.next()
	p.sc.pos = save
	if err != nil {
		return tok{kind: tEOF}
	}
	return t
}

// parseDeclaration parses `declare variable ...;` or `declare function ...;`.
func (p *parser) parseDeclaration(m *Module) error {
	if err := p.advance(); err != nil { // consume "declare"
		return err
	}
	switch {
	case p.isKeyword("variable"):
		if err := p.advance(); err != nil {
			return err
		}
		v, err := p.expect(tVar, "variable name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tAssign, "':='"); err != nil {
			return err
		}
		init, err := p.parseExprSingle()
		if err != nil {
			return err
		}
		if _, err := p.expect(tSemi, "';'"); err != nil {
			return err
		}
		m.Vars = append(m.Vars, &VarDecl{Name: v.text, Init: init})
		return nil

	case p.isKeyword("function"):
		if err := p.advance(); err != nil {
			return err
		}
		name, err := p.parseQName()
		if err != nil {
			return err
		}
		if _, err := p.expect(tLParen, "'('"); err != nil {
			return err
		}
		var params []string
		if p.cur.kind != tRParen {
			for {
				v, err := p.expect(tVar, "parameter name")
				if err != nil {
					return err
				}
				params = append(params, v.text)
				if p.cur.kind != tComma {
					break
				}
				if err := p.advance(); err != nil {
					return err
				}
			}
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return err
		}
		if _, err := p.expect(tLBrace, "'{'"); err != nil {
			return err
		}
		body, err := p.parseExprSequence()
		if err != nil {
			return err
		}
		if _, err := p.expect(tRBrace, "'}'"); err != nil {
			return err
		}
		if _, err := p.expect(tSemi, "';'"); err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, &FuncDecl{Name: name, Params: params, Body: body})
		return nil
	}
	return p.errf("expected 'variable' or 'function' after 'declare'")
}

// parseQName parses name or prefix:name.
func (p *parser) parseQName() (string, error) {
	t, err := p.expect(tName, "a name")
	if err != nil {
		return "", err
	}
	name := t.text
	if p.cur.kind == tColon {
		if err := p.advance(); err != nil {
			return "", err
		}
		t2, err := p.expect(tName, "local name")
		if err != nil {
			return "", err
		}
		name += ":" + t2.text
	}
	return name, nil
}

// parseExprSequence parses Expr (',' Expr)*.
func (p *parser) parseExprSequence() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tComma {
		return first, nil
	}
	seq := &Sequence{Items: []Expr{first}}
	for p.cur.kind == tComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		seq.Items = append(seq.Items, e)
	}
	return seq, nil
}

// parseExprSingle sits on every token-level recursion cycle through the
// grammar (parens, FLWOR bodies, predicates, function arguments, enclosed
// expressions), so the depth guard here bounds them all; scanDirectElem
// carries its own guard for character-level constructor nesting.
func (p *parser) parseExprSingle() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.isKeyword("for") || p.isKeyword("let"):
		// Only a FLWOR when followed by $var.
		if p.peekAhead().kind == tVar {
			return p.parseFLWOR()
		}
	case p.isKeyword("if"):
		if p.peekAhead().kind == tLParen {
			return p.parseIf()
		}
	case p.isKeyword("some"), p.isKeyword("every"):
		if p.peekAhead().kind == tVar {
			return p.parseQuantified()
		}
	}
	return p.parseOr()
}

// parseQuantified parses some/every $v in E (, $w in E)* satisfies C.
func (p *parser) parseQuantified() (Expr, error) {
	q := &Quantified{Every: p.isKeyword("every")}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for {
		v, err := p.expect(tVar, "variable name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		in, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		q.Binds = append(q.Binds, Clause{Kind: ClauseFor, Var: v.text, In: in})
		if p.cur.kind != tComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = sat
	return q, nil
}

func (p *parser) parseFLWOR() (Expr, error) {
	fl := &FLWOR{}
	for p.isKeyword("for") || p.isKeyword("let") {
		if p.peekAhead().kind != tVar {
			break
		}
		isFor := p.isKeyword("for")
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			v, err := p.expect(tVar, "variable name")
			if err != nil {
				return nil, err
			}
			cl := Clause{Var: v.text}
			if isFor {
				cl.Kind = ClauseFor
				if ok, err := p.eatKeyword("at"); err != nil {
					return nil, err
				} else if ok {
					av, err := p.expect(tVar, "positional variable")
					if err != nil {
						return nil, err
					}
					cl.At = av.text
				}
				if err := p.expectKeyword("in"); err != nil {
					return nil, err
				}
			} else {
				cl.Kind = ClauseLet
				if _, err := p.expect(tAssign, "':='"); err != nil {
					return nil, err
				}
			}
			in, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			cl.In = in
			fl.Clauses = append(fl.Clauses, cl)
			if p.cur.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if ok, err := p.eatKeyword("where"); err != nil {
		return nil, err
	} else if ok {
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		fl.Where = w
	}
	if p.isKeyword("stable") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if ok, err := p.eatKeyword("order"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			k, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: k}
			if ok, err := p.eatKeyword("descending"); err != nil {
				return nil, err
			} else if ok {
				key.Descending = true
			} else if ok, err := p.eatKeyword("ascending"); err != nil {
				return nil, err
			} else {
				_ = ok
			}
			fl.Order = append(fl.Order, key)
			if p.cur.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

func (p *parser) parseIf() (Expr, error) {
	if err := p.advance(); err != nil { // if
		return nil, err
	}
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	cond, err := p.parseExprSequence()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

// comparisonOp maps the current token to a comparison operator, covering
// both general (=, !=, <…) and value (eq, ne, lt…) spellings.
func (p *parser) comparisonOp() (BinOp, bool) {
	switch p.cur.kind {
	case tEq:
		return OpEq, true
	case tNe:
		return OpNe, true
	case tLt:
		return OpLt, true
	case tLe:
		return OpLe, true
	case tGt:
		return OpGt, true
	case tGe:
		return OpGe, true
	case tName:
		switch p.cur.text {
		case "eq":
			return OpEq, true
		case "ne":
			return OpNe, true
		case "lt":
			return OpLt, true
		case "le":
			return OpLe, true
		case "gt":
			return OpGt, true
		case "ge":
			return OpGe, true
		}
	}
	return 0, false
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	if op, ok := p.comparisonOp(); ok {
		// Only treat names (eq/ne/...) as operators when an operand
		// follows; they are always operators here since an operand was
		// just parsed.
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseRange() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("to") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpTo, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tPlus || p.cur.kind == tMinus {
		op := OpAdd
		if p.cur.kind == tMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.cur.kind == tStar:
			op = OpMul
		case p.isKeyword("div"):
			op = OpDiv
		case p.isKeyword("idiv"):
			op = OpIDiv
		case p.isKeyword("mod"):
			op = OpMod
		default:
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnion() (Expr, error) {
	left, err := p.parseInstanceOf()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tPipe || p.isKeyword("union") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseInstanceOf()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpUnion, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseInstanceOf() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("instance") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("of"); err != nil {
			return nil, err
		}
		st, err := p.parseSeqType()
		if err != nil {
			return nil, err
		}
		return &InstanceOf{X: left, Type: st}, nil
	}
	return left, nil
}

func (p *parser) parseSeqType() (SeqType, error) {
	t, err := p.expect(tName, "a type name")
	if err != nil {
		return SeqType{}, err
	}
	st := SeqType{}
	switch t.text {
	case "element":
		st.Kind = SeqTypeElement
	case "attribute":
		st.Kind = SeqTypeAttribute
	case "text":
		st.Kind = SeqTypeText
	case "comment":
		st.Kind = SeqTypeComment
	case "processing-instruction":
		st.Kind = SeqTypePI
	case "node":
		st.Kind = SeqTypeNode
	default:
		return SeqType{}, p.errf("unsupported sequence type %q", t.text)
	}
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return SeqType{}, err
	}
	if p.cur.kind == tName || p.cur.kind == tStar {
		if p.cur.kind == tStar {
			if err := p.advance(); err != nil {
				return SeqType{}, err
			}
		} else {
			name, err := p.parseQName()
			if err != nil {
				return SeqType{}, err
			}
			st.Name = name
		}
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return SeqType{}, err
	}
	// Occurrence indicators ?, *, + are accepted and ignored (the
	// evaluator checks node kind/name only).
	switch p.cur.kind {
	case tQuestion, tStar, tPlus:
		if err := p.advance(); err != nil {
			return SeqType{}, err
		}
	}
	return st, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur.kind == tMinus {
		// Self-recursive ("--x") without passing parseExprSingle, so it
		// needs its own depth charge.
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{X: x}, nil
	}
	return p.parsePath()
}

// nodeTypeNames are names that start a kind test rather than a function
// call or a name step.
func isNodeType(name string) bool {
	switch name {
	case "text", "comment", "node", "processing-instruction":
		return true
	}
	return false
}

// parsePath parses a path expression: [('/'|'//')] StepExpr (('/'|'//') StepExpr)*.
func (p *parser) parsePath() (Expr, error) {
	path := &Path{}
	switch p.cur.kind {
	case tSlash:
		if err := p.advance(); err != nil {
			return nil, err
		}
		path.Abs = true
		if !p.startsStep() {
			return path, nil
		}
	case tSlashSlash:
		if err := p.advance(); err != nil {
			return nil, err
		}
		path.Abs = true
		path.Steps = append(path.Steps, dosStep())
	default:
		// Maybe a primary (filter) expression base.
		isPrim, err := p.startsPrimary()
		if err != nil {
			return nil, err
		}
		if isPrim {
			base, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			if p.cur.kind != tSlash && p.cur.kind != tSlashSlash {
				return base, nil
			}
			path.Base = base
			if p.cur.kind == tSlashSlash {
				path.Steps = append(path.Steps, dosStep())
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	for {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		if p.cur.kind == tSlash {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if p.cur.kind == tSlashSlash {
			if err := p.advance(); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, dosStep())
			continue
		}
		break
	}
	return path, nil
}

func dosStep() *Step {
	return &Step{Axis: xpath.AxisDescendantOrSelf, Test: xpath.NodeTest{Kind: xpath.TestNode}}
}

func (p *parser) startsStep() bool {
	switch p.cur.kind {
	case tName, tStar, tAt, tDotDot, tDot:
		return true
	}
	return false
}

// startsPrimary reports whether the current token begins a primary
// expression rather than an axis step.
func (p *parser) startsPrimary() (bool, error) {
	switch p.cur.kind {
	case tNumber, tString, tVar, tLParen, tDot:
		return true, nil
	case tLt:
		return true, nil // direct constructor
	case tName:
		name := p.cur.text
		nxt := p.peekAhead()
		// Computed constructors: element/attribute/text/... followed by
		// '{' or by a QName then '{'.
		switch name {
		case "element", "attribute", "text", "comment", "processing-instruction":
			if nxt.kind == tLBrace {
				return true, nil
			}
			if name == "element" || name == "attribute" {
				// element foo {...}: name then brace.
				if nxt.kind == tName {
					return true, nil
				}
			}
		}
		if nxt.kind == tLParen && !isNodeType(name) {
			return true, nil // function call
		}
		if nxt.kind == tColon {
			// Could be fn:name( — look two ahead by re-scanning.
			save := p.sc.pos
			t1, err := p.sc.next() // colon
			if err == nil && t1.kind == tColon {
				t2, err2 := p.sc.next()
				if err2 == nil && t2.kind == tName {
					t3, err3 := p.sc.next()
					if err3 == nil && t3.kind == tLParen {
						p.sc.pos = save
						return true, nil
					}
				}
			}
			p.sc.pos = save
		}
	}
	return false, nil
}

func (p *parser) parseStep() (*Step, error) {
	if p.cur.kind == tDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Step{Axis: xpath.AxisSelf, Test: xpath.NodeTest{Kind: xpath.TestNode}}, nil
	}
	if p.cur.kind == tDotDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Step{Axis: xpath.AxisParent, Test: xpath.NodeTest{Kind: xpath.TestNode}}, nil
	}
	step := &Step{Axis: xpath.AxisChild}
	switch p.cur.kind {
	case tAt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		step.Axis = xpath.AxisAttribute
	case tName:
		if p.peekAhead().kind == tColonColon {
			ax, ok := axisByName(p.cur.text)
			if !ok {
				return nil, p.errf("unknown axis %q", p.cur.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			step.Axis = ax
		}
	}
	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	step.Test = test
	for p.cur.kind == tLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		pred, err := p.parseExprSequence()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBracket, "']'"); err != nil {
			return nil, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func axisByName(name string) (xpath.Axis, bool) {
	for n, a := range map[string]xpath.Axis{
		"child": xpath.AxisChild, "descendant": xpath.AxisDescendant,
		"descendant-or-self": xpath.AxisDescendantOrSelf, "parent": xpath.AxisParent,
		"ancestor": xpath.AxisAncestor, "ancestor-or-self": xpath.AxisAncestorOrSelf,
		"self": xpath.AxisSelf, "attribute": xpath.AxisAttribute,
		"following-sibling": xpath.AxisFollowingSibling, "preceding-sibling": xpath.AxisPrecedingSibling,
		"following": xpath.AxisFollowing, "preceding": xpath.AxisPreceding,
	} {
		if n == name {
			return a, true
		}
	}
	return 0, false
}

func (p *parser) parseNodeTest() (xpath.NodeTest, error) {
	switch p.cur.kind {
	case tStar:
		if err := p.advance(); err != nil {
			return xpath.NodeTest{}, err
		}
		return xpath.NodeTest{Kind: xpath.TestAnyName}, nil
	case tName:
		name := p.cur.text
		if isNodeType(name) && p.peekAhead().kind == tLParen {
			if err := p.advance(); err != nil {
				return xpath.NodeTest{}, err
			}
			if err := p.advance(); err != nil {
				return xpath.NodeTest{}, err
			}
			nt := xpath.NodeTest{}
			switch name {
			case "text":
				nt.Kind = xpath.TestText
			case "comment":
				nt.Kind = xpath.TestComment
			case "node":
				nt.Kind = xpath.TestNode
			case "processing-instruction":
				nt.Kind = xpath.TestPI
				if p.cur.kind == tString {
					nt.Name = p.cur.text
					if err := p.advance(); err != nil {
						return xpath.NodeTest{}, err
					}
				}
			}
			if _, err := p.expect(tRParen, "')'"); err != nil {
				return xpath.NodeTest{}, err
			}
			return nt, nil
		}
		if err := p.advance(); err != nil {
			return xpath.NodeTest{}, err
		}
		if p.cur.kind == tColon {
			if err := p.advance(); err != nil {
				return xpath.NodeTest{}, err
			}
			if p.cur.kind == tStar {
				if err := p.advance(); err != nil {
					return xpath.NodeTest{}, err
				}
				return xpath.NodeTest{Kind: xpath.TestNSName, Prefix: name}, nil
			}
			local, err := p.expect(tName, "local name")
			if err != nil {
				return xpath.NodeTest{}, err
			}
			return xpath.NodeTest{Kind: xpath.TestName, Prefix: name, Name: local.text}, nil
		}
		return xpath.NodeTest{Kind: xpath.TestName, Name: name}, nil
	}
	return xpath.NodeTest{}, p.errf("expected a node test, found %s", p.cur)
}

// parsePostfix parses Primary Predicate*.
func (p *parser) parsePostfix() (Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tLBracket {
		return prim, nil
	}
	f := &Filter{Base: prim}
	for p.cur.kind == tLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		pred, err := p.parseExprSequence()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBracket, "']'"); err != nil {
			return nil, err
		}
		f.Preds = append(f.Preds, pred)
	}
	return f, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur.kind {
	case tNumber:
		v := p.cur.num
		return NumberLit(v), p.advance()
	case tString:
		v := p.cur.text
		return StringLit(v), p.advance()
	case tVar:
		v := p.cur.text
		return VarRef(v), p.advance()
	case tDot:
		return ContextItem{}, p.advance()
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind == tRParen {
			return EmptySeq{}, p.advance()
		}
		e, err := p.parseExprSequence()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tLt:
		return p.parseDirectConstructor()
	case tName:
		name := p.cur.text
		switch name {
		case "element", "attribute", "text", "comment", "processing-instruction":
			nxt := p.peekAhead()
			if nxt.kind == tLBrace || ((name == "element" || name == "attribute") && nxt.kind == tName) {
				return p.parseComputedConstructor(name)
			}
		}
		qname, err := p.parseQName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tLParen, "'(' for function call"); err != nil {
			return nil, err
		}
		call := &FuncCall{Name: qname}
		if p.cur.kind != tRParen {
			for {
				arg, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.cur.kind != tComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return call, nil
	}
	return nil, p.errf("unexpected %s", p.cur)
}

// parseComputedConstructor parses element/attribute/text/comment/pi
// computed constructors.
func (p *parser) parseComputedConstructor(kind string) (Expr, error) {
	if err := p.advance(); err != nil { // consume keyword
		return nil, err
	}
	var nameExpr Expr
	if kind == "element" || kind == "attribute" || kind == "processing-instruction" {
		if p.cur.kind == tName {
			qn, err := p.parseQName()
			if err != nil {
				return nil, err
			}
			nameExpr = StringLit(qn)
		} else {
			if _, err := p.expect(tLBrace, "'{'"); err != nil {
				return nil, err
			}
			e, err := p.parseExprSequence()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrace, "'}'"); err != nil {
				return nil, err
			}
			nameExpr = e
		}
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return nil, err
	}
	var body Expr
	if p.cur.kind != tRBrace {
		e, err := p.parseExprSequence()
		if err != nil {
			return nil, err
		}
		body = e
	}
	if _, err := p.expect(tRBrace, "'}'"); err != nil {
		return nil, err
	}
	switch kind {
	case "element":
		return &CompElem{Name: nameExpr, Body: body}, nil
	case "attribute":
		return &CompAttr{Name: nameExpr, Body: body}, nil
	case "text":
		return &CompText{Body: body}, nil
	case "comment":
		return &CompComment{Body: body}, nil
	default:
		return &CompPI{Name: nameExpr, Body: body}, nil
	}
}

// parseDirectConstructor parses <name attr="...">content</name> at
// character level, starting from the '<' token already in p.cur.
func (p *parser) parseDirectConstructor() (Expr, error) {
	// Rewind the scanner to the '<' and parse raw.
	p.sc.pos = p.cur.pos
	e, err := p.scanDirectElem()
	if err != nil {
		return nil, err
	}
	// Resume token scanning after the constructor.
	if err := p.advance(); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) scanDirectElem() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	s := &p.sc
	start := s.pos
	if s.src[s.pos] != '<' {
		return nil, s.errf(s.pos, "expected '<'")
	}
	s.pos++
	name, err := s.scanName()
	if err != nil {
		return nil, err
	}
	if s.pos < len(s.src) && s.src[s.pos] == ':' {
		s.pos++
		local, err := s.scanName()
		if err != nil {
			return nil, err
		}
		name += ":" + local
	}
	elem := &DirectElem{Name: name}

	// Attributes.
	for {
		skipRawSpace(s)
		if s.pos >= len(s.src) {
			return nil, s.errf(start, "unterminated constructor <%s>", name)
		}
		c := s.src[s.pos]
		if c == '/' || c == '>' {
			break
		}
		aname, err := s.scanName()
		if err != nil {
			return nil, err
		}
		if s.pos < len(s.src) && s.src[s.pos] == ':' {
			s.pos++
			local, err := s.scanName()
			if err != nil {
				return nil, err
			}
			aname += ":" + local
		}
		skipRawSpace(s)
		if s.pos >= len(s.src) || s.src[s.pos] != '=' {
			return nil, s.errf(s.pos, "expected '=' after attribute %q", aname)
		}
		s.pos++
		skipRawSpace(s)
		if s.pos >= len(s.src) || (s.src[s.pos] != '"' && s.src[s.pos] != '\'') {
			return nil, s.errf(s.pos, "expected quoted attribute value")
		}
		quote := s.src[s.pos]
		s.pos++
		parts, err := p.scanAttrValueParts(quote)
		if err != nil {
			return nil, err
		}
		elem.Attrs = append(elem.Attrs, DirectAttr{Name: aname, Parts: parts})
	}

	if s.src[s.pos] == '/' {
		s.pos++
		if s.pos >= len(s.src) || s.src[s.pos] != '>' {
			return nil, s.errf(s.pos, "expected '/>'")
		}
		s.pos++
		return elem, nil
	}
	s.pos++ // '>'

	// Content.
	var text strings.Builder
	flush := func() {
		if text.Len() == 0 {
			return
		}
		data := text.String()
		text.Reset()
		// Boundary whitespace is stripped (default XQuery behaviour);
		// anything containing non-whitespace is kept verbatim.
		if strings.TrimSpace(data) == "" {
			return
		}
		elem.Children = append(elem.Children, TextLit(data))
	}
	for {
		if s.pos >= len(s.src) {
			return nil, s.errf(start, "unterminated constructor <%s>", name)
		}
		c := s.src[s.pos]
		switch c {
		case '<':
			if strings.HasPrefix(s.src[s.pos:], "</") {
				flush()
				s.pos += 2
				cname, err := s.scanName()
				if err != nil {
					return nil, err
				}
				if s.pos < len(s.src) && s.src[s.pos] == ':' {
					s.pos++
					local, err := s.scanName()
					if err != nil {
						return nil, err
					}
					cname += ":" + local
				}
				skipRawSpace(s)
				if s.pos >= len(s.src) || s.src[s.pos] != '>' {
					return nil, s.errf(s.pos, "expected '>' in closing tag")
				}
				s.pos++
				if cname != name {
					return nil, s.errf(start, "mismatched constructor tags <%s>...</%s>", name, cname)
				}
				return elem, nil
			}
			if strings.HasPrefix(s.src[s.pos:], "<!--") {
				end := strings.Index(s.src[s.pos:], "-->")
				if end < 0 {
					return nil, s.errf(s.pos, "unterminated comment in constructor")
				}
				s.pos += end + 3
				continue
			}
			flush()
			child, err := p.scanDirectElem()
			if err != nil {
				return nil, err
			}
			elem.Children = append(elem.Children, child)
		case '{':
			if strings.HasPrefix(s.src[s.pos:], "{{") {
				text.WriteByte('{')
				s.pos += 2
				continue
			}
			flush()
			s.pos++
			// Parse an enclosed expression with the token parser.
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExprSequence()
			if err != nil {
				return nil, err
			}
			if p.cur.kind != tRBrace {
				return nil, p.errf("expected '}' to close embedded expression")
			}
			// p.sc.pos now sits just after '}'.
			elem.Children = append(elem.Children, e)
		case '}':
			if strings.HasPrefix(s.src[s.pos:], "}}") {
				text.WriteByte('}')
				s.pos += 2
				continue
			}
			return nil, s.errf(s.pos, "lone '}' in constructor content")
		case '&':
			r, width, err := scanEntity(s)
			if err != nil {
				return nil, err
			}
			text.WriteRune(r)
			s.pos += width
		default:
			text.WriteByte(c)
			s.pos++
		}
	}
}

// scanAttrValueParts reads a direct-constructor attribute value up to the
// closing quote, splitting literal text and {expr} parts.
func (p *parser) scanAttrValueParts(quote byte) ([]AttrValuePart, error) {
	s := &p.sc
	var parts []AttrValuePart
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			parts = append(parts, AttrValuePart{Text: text.String()})
			text.Reset()
		}
	}
	for {
		if s.pos >= len(s.src) {
			return nil, s.errf(s.pos, "unterminated attribute value")
		}
		c := s.src[s.pos]
		switch c {
		case quote:
			s.pos++
			flush()
			if len(parts) == 0 {
				parts = append(parts, AttrValuePart{Text: ""})
			}
			return parts, nil
		case '{':
			if strings.HasPrefix(s.src[s.pos:], "{{") {
				text.WriteByte('{')
				s.pos += 2
				continue
			}
			flush()
			s.pos++
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExprSequence()
			if err != nil {
				return nil, err
			}
			if p.cur.kind != tRBrace {
				return nil, p.errf("expected '}' in attribute value")
			}
			parts = append(parts, AttrValuePart{Expr: e})
		case '}':
			if strings.HasPrefix(s.src[s.pos:], "}}") {
				text.WriteByte('}')
				s.pos += 2
				continue
			}
			return nil, s.errf(s.pos, "lone '}' in attribute value")
		case '&':
			r, width, err := scanEntity(s)
			if err != nil {
				return nil, err
			}
			text.WriteRune(r)
			s.pos += width
		default:
			text.WriteByte(c)
			s.pos++
		}
	}
}

// scanEntity decodes an entity reference at s.pos, returning the rune and
// the source width consumed.
func scanEntity(s *scanner) (rune, int, error) {
	end := strings.IndexByte(s.src[s.pos:], ';')
	if end < 0 {
		return 0, 0, s.errf(s.pos, "unterminated entity reference")
	}
	ent := s.src[s.pos+1 : s.pos+end]
	width := end + 1
	switch ent {
	case "lt":
		return '<', width, nil
	case "gt":
		return '>', width, nil
	case "amp":
		return '&', width, nil
	case "quot":
		return '"', width, nil
	case "apos":
		return '\'', width, nil
	}
	if strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X") {
		var v int64
		if _, err := fmt.Sscanf(ent[2:], "%x", &v); err != nil {
			return 0, 0, s.errf(s.pos, "bad character reference &%s;", ent)
		}
		return rune(v), width, nil
	}
	if strings.HasPrefix(ent, "#") {
		var v int64
		if _, err := fmt.Sscanf(ent[1:], "%d", &v); err != nil {
			return 0, 0, s.errf(s.pos, "bad character reference &%s;", ent)
		}
		return rune(v), width, nil
	}
	return 0, 0, s.errf(s.pos, "unknown entity &%s;", ent)
}

func skipRawSpace(s *scanner) {
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return
		}
	}
}
