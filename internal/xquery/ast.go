// Package xquery implements an XQuery 1.0 subset sufficient to express and
// execute the queries the XSLT rewriter generates (paper §3, Tables 8,
// 12-15, 17, 19, 21), plus the hand-written FLWOR queries of Example 2.
//
// Covered: the prolog (variable and function declarations), FLWOR with
// multiple for/let clauses, where, order by, conditionals, general
// comparisons with XPath 1.0 coercion semantics, arithmetic, sequence and
// union expressions, path expressions over the xmltree model, direct and
// computed constructors with embedded expressions, "instance of" element
// tests, and the core function library shared with internal/xpath.
package xquery

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// Expr is an XQuery expression.
type Expr interface {
	// String renders the expression as XQuery source (it re-parses).
	String() string
}

// Module is a parsed query: prolog declarations plus the body expression.
type Module struct {
	Vars  []*VarDecl
	Funcs []*FuncDecl
	Body  Expr
}

// VarDecl is `declare variable $name := expr;`.
type VarDecl struct {
	Name string
	Init Expr
}

// FuncDecl is `declare function local:name($p1, $p2) { body };`.
type FuncDecl struct {
	Name   string // as written, usually "local:..."
	Params []string
	Body   Expr
}

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	for _, v := range m.Vars {
		fmt.Fprintf(&sb, "declare variable $%s := %s;\n", v.Name, v.Init.String())
	}
	for _, f := range m.Funcs {
		params := make([]string, len(f.Params))
		for i, p := range f.Params {
			params[i] = "$" + p
		}
		fmt.Fprintf(&sb, "declare function %s(%s) {\n%s\n};\n", f.Name, strings.Join(params, ", "), indent(f.Body.String(), "  "))
	}
	if m.Body != nil {
		sb.WriteString(m.Body.String())
	}
	return sb.String()
}

func indent(s, pad string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n")
}

// ---- Literals, variables, context ----

// StringLit is a string literal.
type StringLit string

// String renders the literal with XQuery quoting.
func (e StringLit) String() string {
	if strings.ContainsRune(string(e), '"') {
		return "'" + string(e) + "'"
	}
	return `"` + string(e) + `"`
}

// NumberLit is a numeric literal.
type NumberLit float64

func (e NumberLit) String() string { return xpath.NumberToString(float64(e)) }

// VarRef references $name.
type VarRef string

func (e VarRef) String() string { return "$" + string(e) }

// ContextItem is ".".
type ContextItem struct{}

func (ContextItem) String() string { return "." }

// EmptySeq is "()".
type EmptySeq struct{}

func (EmptySeq) String() string { return "()" }

// ---- Compound expressions ----

// Sequence is the comma operator: (e1, e2, ...).
type Sequence struct{ Items []Expr }

func (e *Sequence) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return "(\n" + indent(strings.Join(parts, ",\n"), "  ") + "\n)"
}

// BinOp enumerates binary operators (sharing xpath spellings where they
// coincide).
type BinOp uint8

// Binary operators.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpMod
	OpUnion
	OpTo // range: 1 to n
)

var binOpNames = [...]string{"or", "and", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "div", "idiv", "mod", "|", "to"}

// String returns the operator spelling.
func (op BinOp) String() string { return binOpNames[op] }

func binPrec(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpTo:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv, OpIDiv, OpMod:
		return 6
	case OpUnion:
		return 7
	}
	return 0
}

// Binary applies op to L and R.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (e *Binary) String() string {
	l := binaryOperand(e.L, e.Op, false)
	r := binaryOperand(e.R, e.Op, true)
	return l + " " + e.Op.String() + " " + r
}

// binaryOperand renders an operand of a binary expression, parenthesizing
// whenever re-parsing could re-associate: looser-binding binaries,
// right-side equal precedence (left associativity), non-associative
// comparisons, and statement-like expressions (if/FLWOR) that would swallow
// the operator. The decision looks through Annotated comment wrappers.
func binaryOperand(x Expr, parent BinOp, right bool) string {
	switch b := Unwrap(x).(type) {
	case *Binary:
		samePrec := binPrec(b.Op) == binPrec(parent)
		comparison := binPrec(parent) == 3
		if binPrec(b.Op) < binPrec(parent) || (samePrec && (right || comparison)) {
			return "(" + x.String() + ")"
		}
	case *IfExpr, *FLWOR, *Quantified:
		return "(" + x.String() + ")"
	case *InstanceOf:
		// "$x instance of element(e) * 2" would parse '*' as an occurrence
		// indicator of the sequence type.
		return "(" + x.String() + ")"
	}
	return x.String()
}

// Neg is unary minus.
type Neg struct{ X Expr }

func (e *Neg) String() string {
	switch e.X.(type) {
	case *Binary, *Sequence, *FLWOR, *IfExpr:
		return "-(" + e.X.String() + ")"
	}
	return "-" + e.X.String()
}

// FuncCall calls a core or user-declared function.
type FuncCall struct {
	Name string
	Args []Expr
}

func (e *FuncCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ---- FLWOR ----

// ClauseKind tags a FLWOR clause.
type ClauseKind uint8

// FLWOR clause kinds.
const (
	ClauseFor ClauseKind = iota
	ClauseLet
)

// Clause is one for/let binding.
type Clause struct {
	Kind ClauseKind
	Var  string
	// At is the positional variable of "for $v at $i", or "".
	At string
	In Expr
}

// OrderKey is one "order by" key.
type OrderKey struct {
	Expr       Expr
	Descending bool
}

// FLWOR is a for/let ... where ... order by ... return expression.
type FLWOR struct {
	Clauses []Clause
	Where   Expr // may be nil
	Order   []OrderKey
	Return  Expr
}

func (e *FLWOR) String() string {
	var sb strings.Builder
	for i, c := range e.Clauses {
		if i > 0 {
			sb.WriteByte('\n')
		}
		switch c.Kind {
		case ClauseFor:
			sb.WriteString("for $" + c.Var)
			if c.At != "" {
				sb.WriteString(" at $" + c.At)
			}
			sb.WriteString(" in " + c.In.String())
		case ClauseLet:
			sb.WriteString("let $" + c.Var + " := " + c.In.String())
		}
	}
	if e.Where != nil {
		sb.WriteString("\nwhere " + e.Where.String())
	}
	if len(e.Order) > 0 {
		keys := make([]string, len(e.Order))
		for i, k := range e.Order {
			keys[i] = k.Expr.String()
			if k.Descending {
				keys[i] += " descending"
			}
		}
		sb.WriteString("\norder by " + strings.Join(keys, ", "))
	}
	sb.WriteString("\nreturn\n" + indent(e.Return.String(), "  "))
	return sb.String()
}

// Quantified is `some/every $v in expr satisfies cond`.
type Quantified struct {
	Every     bool
	Binds     []Clause // Kind is always ClauseFor
	Satisfies Expr
}

func (e *Quantified) String() string {
	kw := "some"
	if e.Every {
		kw = "every"
	}
	var sb strings.Builder
	sb.WriteString(kw + " ")
	for i, b := range e.Binds {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("$" + b.Var + " in " + b.In.String())
	}
	sb.WriteString(" satisfies " + e.Satisfies.String())
	return sb.String()
}

// IfExpr is if (cond) then t else f.
type IfExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

func (e *IfExpr) String() string {
	elseStr := "()"
	if e.Else != nil {
		elseStr = e.Else.String()
	}
	return "if (" + e.Cond.String() + ")\nthen " + indent2(e.Then.String()) + "\nelse " + indent2(elseStr)
}

func indent2(s string) string {
	if !strings.Contains(s, "\n") {
		return s
	}
	return strings.ReplaceAll(s, "\n", "\n  ")
}

// ---- Paths ----

// Step is one path step; predicates are XQuery expressions.
type Step struct {
	Axis  xpath.Axis
	Test  xpath.NodeTest
	Preds []Expr
}

func (s *Step) String() string {
	var sb strings.Builder
	switch s.Axis {
	case xpath.AxisChild:
	case xpath.AxisAttribute:
		sb.WriteByte('@')
	case xpath.AxisSelf:
		if s.Test.Kind == xpath.TestNode && len(s.Preds) == 0 {
			return "."
		}
		sb.WriteString("self::")
	case xpath.AxisParent:
		if s.Test.Kind == xpath.TestNode && len(s.Preds) == 0 {
			return ".."
		}
		sb.WriteString("parent::")
	default:
		sb.WriteString(s.Axis.String())
		sb.WriteString("::")
	}
	sb.WriteString(s.Test.String())
	for _, p := range s.Preds {
		sb.WriteString("[" + p.String() + "]")
	}
	return sb.String()
}

// Path applies location steps to a base expression. Base nil means the
// context item; Abs anchors at the root of the context document.
type Path struct {
	Base  Expr
	Abs   bool
	Steps []*Step
}

func (e *Path) String() string {
	var sb strings.Builder
	if e.Base != nil {
		switch e.Base.(type) {
		case VarRef, *FuncCall, ContextItem, StringLit, NumberLit:
			sb.WriteString(e.Base.String())
		default:
			sb.WriteString("(" + e.Base.String() + ")")
		}
		if len(e.Steps) > 0 {
			sb.WriteByte('/')
		}
	} else if e.Abs {
		sb.WriteByte('/')
	}
	// A leading bare dos step in a plain relative path must print in full:
	// abbreviating would read as an absolute '//' path.
	hasLead := e.Abs || e.Base != nil
	sepNeeded := false
	for i, s := range e.Steps {
		bareDos := s.Axis == xpath.AxisDescendantOrSelf && s.Test.Kind == xpath.TestNode && len(s.Preds) == 0
		if bareDos && i+1 < len(e.Steps) && (sepNeeded || (hasLead && i == 0)) {
			if sepNeeded {
				sb.WriteString("//")
			} else {
				sb.WriteString("/")
			}
			sepNeeded = false
			continue
		}
		if sepNeeded {
			sb.WriteByte('/')
		}
		sb.WriteString(s.String())
		sepNeeded = true
	}
	return sb.String()
}

// Filter applies predicates to a base expression: (base)[p1][p2].
type Filter struct {
	Base  Expr
	Preds []Expr
}

func (e *Filter) String() string {
	base := e.Base.String()
	switch e.Base.(type) {
	case VarRef, *FuncCall, ContextItem:
	default:
		base = "(" + base + ")"
	}
	var sb strings.Builder
	sb.WriteString(base)
	for _, p := range e.Preds {
		sb.WriteString("[" + p.String() + "]")
	}
	return sb.String()
}

// ---- Constructors ----

// AttrValuePart is a piece of a direct-constructor attribute value: literal
// text or an embedded expression.
type AttrValuePart struct {
	Text string
	Expr Expr
}

// DirectAttr is an attribute of a direct element constructor.
type DirectAttr struct {
	Name  string
	Parts []AttrValuePart
}

// DirectElem is a direct element constructor, e.g.
// <tr><td>{fn:string($v/empno)}</td></tr>.
type DirectElem struct {
	Name     string
	Attrs    []DirectAttr
	Children []Expr // TextLit for literal content, arbitrary Expr for {...}
}

func (e *DirectElem) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	sb.WriteString(e.Name)
	for _, a := range e.Attrs {
		sb.WriteString(" " + a.Name + `="`)
		for _, p := range a.Parts {
			if p.Expr != nil {
				sb.WriteString("{" + p.Expr.String() + "}")
			} else {
				sb.WriteString(escapeAttrText(p.Text))
			}
		}
		sb.WriteByte('"')
	}
	if len(e.Children) == 0 {
		sb.WriteString("/>")
		return sb.String()
	}
	sb.WriteByte('>')
	// Layout newlines may only be injected when no literal text is present:
	// the XQuery parser strips whitespace-only boundary text, but any run
	// touching literal text survives verbatim and would corrupt content.
	pretty := true
	for _, c := range e.Children {
		if _, ok := c.(TextLit); ok {
			pretty = false
			break
		}
	}
	for _, c := range e.Children {
		switch t := c.(type) {
		case TextLit:
			sb.WriteString(escapeElemText(string(t)))
		case *DirectElem:
			// Nested direct constructors print directly (Table 8 style).
			child := t.String()
			if pretty && strings.Contains(child, "\n") {
				sb.WriteString("\n" + indent(child, "  ") + "\n")
			} else {
				sb.WriteString(child)
			}
		default:
			body := "{" + c.String() + "}"
			if pretty && strings.Contains(body, "\n") {
				sb.WriteString("\n" + indent(body, "  ") + "\n")
			} else {
				sb.WriteString(body)
			}
		}
	}
	sb.WriteString("</" + e.Name + ">")
	return sb.String()
}

func escapeElemText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, "{", "{{")
	s = strings.ReplaceAll(s, "}", "}}")
	return s
}

func escapeAttrText(s string) string {
	s = escapeElemText(s)
	return strings.ReplaceAll(s, `"`, "&quot;")
}

// TextLit is literal text inside a direct constructor.
type TextLit string

func (e TextLit) String() string { return string(e) }

// CompElem is a computed element constructor: element {name} {body}.
type CompElem struct {
	Name Expr
	Body Expr
}

func (e *CompElem) String() string {
	return "element {" + e.Name.String() + "} {" + bodyString(e.Body) + "}"
}

// CompAttr is a computed attribute constructor.
type CompAttr struct {
	Name Expr
	Body Expr
}

func (e *CompAttr) String() string {
	return "attribute {" + e.Name.String() + "} {" + bodyString(e.Body) + "}"
}

// CompText is a computed text constructor: text {expr}.
type CompText struct{ Body Expr }

func (e *CompText) String() string { return "text {" + bodyString(e.Body) + "}" }

// CompComment is a computed comment constructor.
type CompComment struct{ Body Expr }

func (e *CompComment) String() string { return "comment {" + bodyString(e.Body) + "}" }

// CompPI is a computed processing-instruction constructor.
type CompPI struct {
	Name Expr
	Body Expr
}

func (e *CompPI) String() string {
	return "processing-instruction {" + e.Name.String() + "} {" + bodyString(e.Body) + "}"
}

func bodyString(e Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}

// ---- Types ----

// SeqTypeKind is the node kind of an "instance of" test.
type SeqTypeKind uint8

// Sequence type kinds (the subset the rewriter emits).
const (
	SeqTypeElement SeqTypeKind = iota
	SeqTypeText
	SeqTypeComment
	SeqTypePI
	SeqTypeNode
	SeqTypeAttribute
)

// SeqType is a (simplified) sequence type: element(name), element(),
// text(), node(), etc.
type SeqType struct {
	Kind SeqTypeKind
	Name string // element/attribute name; "" = any
}

// String renders the sequence type.
func (t SeqType) String() string {
	switch t.Kind {
	case SeqTypeElement:
		return "element(" + t.Name + ")"
	case SeqTypeAttribute:
		return "attribute(" + t.Name + ")"
	case SeqTypeText:
		return "text()"
	case SeqTypeComment:
		return "comment()"
	case SeqTypePI:
		return "processing-instruction()"
	default:
		return "node()"
	}
}

// InstanceOf is `expr instance of type`.
type InstanceOf struct {
	X    Expr
	Type SeqType
}

func (e *InstanceOf) String() string {
	return e.X.String() + " instance of " + e.Type.String()
}

// Annotated attaches an XQuery comment to an expression; the comment prints
// before the expression (used by the rewriter to label inlined templates as
// in paper Table 8).
type Annotated struct {
	Comment string
	X       Expr
}

func (e *Annotated) String() string {
	return "(: " + e.Comment + " :)\n" + e.X.String()
}

// Unwrap strips Annotated wrappers.
func Unwrap(e Expr) Expr {
	for {
		a, ok := e.(*Annotated)
		if !ok {
			return e
		}
		e = a.X
	}
}
