package xsltvm

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xslt"
)

func wrap(body string) string {
	return `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + body + `</xsl:stylesheet>`
}

func vmRun(t *testing.T, stylesheet, input string) string {
	t.Helper()
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(sheet)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	out, err := New(prog).RunToString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// interpRun runs the same transformation through the tree-walking
// interpreter, for equivalence checks.
func interpRun(t *testing.T, stylesheet, input string) string {
	t.Helper()
	sheet, err := xslt.ParseStylesheet(stylesheet)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	out, err := xslt.New(sheet).TransformToString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestVMEquivalentToInterpreter runs a battery of stylesheets through both
// executors and demands identical output.
func TestVMEquivalentToInterpreter(t *testing.T) {
	cases := []struct {
		name, sheet, input string
	}{
		{"paper-example-1", xslt.PaperStylesheet, xslt.PaperDeptRow1},
		{"paper-example-1-row2", xslt.PaperStylesheet, xslt.PaperDeptRow2},
		{"builtin-only", wrap(""), xslt.PaperDeptRow1},
		{"for-each-sort", wrap(`
			<xsl:template match="/"><xsl:for-each select="//n"><xsl:sort data-type="number" order="descending"/><v><xsl:value-of select="."/></v></xsl:for-each></xsl:template>
		`), `<r><n>1</n><n>30</n><n>4</n></r>`},
		{"choose", wrap(`
			<xsl:template match="n"><xsl:choose><xsl:when test=". > 10">big</xsl:when><xsl:otherwise>small</xsl:otherwise></xsl:choose></xsl:template>
			<xsl:template match="/"><xsl:apply-templates select="//n"/></xsl:template>
		`), `<r><n>5</n><n>50</n></r>`},
		{"variables", wrap(`
			<xsl:variable name="g" select="'G'"/>
			<xsl:template match="/"><xsl:variable name="l"><x>frag</x></xsl:variable><xsl:value-of select="$g"/>|<xsl:value-of select="$l"/>|<xsl:copy-of select="$l"/></xsl:template>
		`), `<r/>`},
		{"call-template-params", wrap(`
			<xsl:template name="f"><xsl:param name="p" select="'d'"/>[<xsl:value-of select="$p"/>]</xsl:template>
			<xsl:template match="/"><xsl:call-template name="f"><xsl:with-param name="p" select="'x'"/></xsl:call-template><xsl:call-template name="f"/></xsl:template>
		`), `<r/>`},
		{"copy-identity", wrap(`
			<xsl:template match="@*|node()"><xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy></xsl:template>
		`), `<a x="1"><b>t<c/></b><!--k--><?pi v?></a>`},
		{"element-attribute", wrap(`
			<xsl:template match="e"><xsl:element name="{@t}"><xsl:attribute name="k">v<xsl:value-of select="@n"/></xsl:attribute></xsl:element></xsl:template>
			<xsl:template match="/"><xsl:apply-templates select="//e"/></xsl:template>
		`), `<r><e t="out" n="9"/></r>`},
		{"number", wrap(`
			<xsl:template match="i"><xsl:number/>.</xsl:template>
			<xsl:template match="/"><xsl:apply-templates select="//i"/></xsl:template>
		`), `<r><i/><i/><i/></r>`},
		{"modes", wrap(`
			<xsl:template match="/"><xsl:apply-templates select="//x"/>|<xsl:apply-templates select="//x" mode="m"/></xsl:template>
			<xsl:template match="x">a</xsl:template>
			<xsl:template match="x" mode="m">b</xsl:template>
		`), `<r><x/></r>`},
		{"apply-with-params", wrap(`
			<xsl:template match="/"><xsl:apply-templates select="//x"><xsl:with-param name="p">P</xsl:with-param></xsl:apply-templates></xsl:template>
			<xsl:template match="x"><xsl:param name="p"/>[<xsl:value-of select="$p"/>]</xsl:template>
		`), `<r><x/><x/></r>`},
		{"comment-pi", wrap(`
			<xsl:template match="/"><xsl:comment>c</xsl:comment><xsl:processing-instruction name="t">d</xsl:processing-instruction></xsl:template>
		`), `<r/>`},
		{"recursive-walk", wrap(`
			<xsl:template match="item"><i><xsl:value-of select="@v"/><xsl:apply-templates select="item"/></i></xsl:template>
			<xsl:template match="/"><xsl:apply-templates select="/item"/></xsl:template>
		`), `<item v="1"><item v="2"><item v="3"/></item></item>`},
		{"nested-for-each", wrap(`
			<xsl:template match="/"><xsl:for-each select="//g"><g><xsl:for-each select="i"><v><xsl:value-of select="."/></v></xsl:for-each></g></xsl:for-each></xsl:template>
		`), `<r><g><i>1</i><i>2</i></g><g><i>3</i></g></r>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vmOut := vmRun(t, tc.sheet, tc.input)
			itOut := interpRun(t, tc.sheet, tc.input)
			if vmOut != itOut {
				t.Fatalf("VM and interpreter disagree:\n vm: %q\n it: %q", vmOut, itOut)
			}
		})
	}
}

func TestCompileDisassemble(t *testing.T) {
	sheet := mustParseStylesheet(xslt.PaperStylesheet)
	prog := MustCompile(sheet)
	dis := prog.Disassemble()
	for _, frag := range []string{"elem-open", "apply", "value-of", "ret"} {
		if !strings.Contains(dis, frag) {
			t.Errorf("disassembly missing %q", frag)
		}
	}
	if len(prog.Templates) != len(sheet.Templates) {
		t.Fatalf("compiled %d of %d templates", len(prog.Templates), len(sheet.Templates))
	}
}

// TestTraceTable checks §4.3: one trace-table entry per apply-templates
// instruction, carrying the select source and the owning template.
func TestTraceTable(t *testing.T) {
	sheet := mustParseStylesheet(xslt.PaperStylesheet)
	prog := MustCompile(sheet)
	if len(prog.TraceTable) != 2 {
		t.Fatalf("trace table entries = %d, want 2", len(prog.TraceTable))
	}
	if prog.TraceTable[0].SelectSrc != "" {
		t.Fatalf("first apply has no select, got %q", prog.TraceTable[0].SelectSrc)
	}
	if !strings.Contains(prog.TraceTable[1].SelectSrc, "emp[sal > 2000]") {
		t.Fatalf("second select = %q", prog.TraceTable[1].SelectSrc)
	}
	if prog.TraceTable[0].Owner == nil || prog.TraceTable[0].Owner.MatchSrc != "dept" {
		t.Fatal("owner template wrong")
	}
}

// TestTraceEvents runs the VM with tracing and checks the observed
// template activations (the raw material of the execution graph).
func TestTraceEvents(t *testing.T) {
	sheet := mustParseStylesheet(xslt.PaperStylesheet)
	prog := MustCompile(sheet)
	vm := New(prog)
	var events []TraceEvent
	vm.Trace = func(ev TraceEvent) { events = append(events, ev) }
	doc, _ := xmltree.Parse(xslt.PaperDeptRow1)
	if _, err := vm.Run(doc); err != nil {
		t.Fatal(err)
	}
	// Count activations per template match.
	byMatch := map[string]int{}
	builtins := 0
	for _, ev := range events {
		if ev.Builtin {
			builtins++
			continue
		}
		byMatch[ev.Template.MatchSrc]++
	}
	if byMatch["dept"] != 1 || byMatch["dname"] != 1 || byMatch["loc"] != 1 || byMatch["employees"] != 1 {
		t.Fatalf("activations wrong: %v", byMatch)
	}
	if byMatch["emp"] != 1 { // only CLARK passes sal > 2000
		t.Fatalf("emp activations = %d", byMatch["emp"])
	}
	if builtins == 0 {
		t.Fatal("expected builtin activation for the document root")
	}
	// The emp activation must carry trace id 1 (the second apply).
	found := false
	for _, ev := range events {
		if !ev.Builtin && ev.Template.MatchSrc == "emp" && ev.TraceID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("emp activation not attributed to second apply-templates")
	}
}

func TestVMErrors(t *testing.T) {
	doc, _ := xmltree.Parse(`<r/>`)
	// Missing named template.
	sheet := mustParseStylesheet(wrap(`<xsl:template match="/"><xsl:call-template name="gone"/></xsl:template>`))
	if _, err := New(MustCompile(sheet)).RunToString(doc); err == nil {
		t.Fatal("missing template should error")
	}
	// Infinite recursion.
	sheet = mustParseStylesheet(wrap(`
		<xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>
		<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>`))
	if _, err := New(MustCompile(sheet)).RunToString(doc); err == nil {
		t.Fatal("infinite recursion should be caught")
	}
	// Message terminate.
	sheet = mustParseStylesheet(wrap(`<xsl:template match="/"><xsl:message terminate="yes">stop</xsl:message></xsl:template>`))
	vm := New(MustCompile(sheet))
	if _, err := vm.RunToString(doc); err == nil {
		t.Fatal("terminate should error")
	}
	if len(vm.Messages) != 1 || vm.Messages[0] != "stop" {
		t.Fatalf("messages = %v", vm.Messages)
	}
}

func TestTemplateIndex(t *testing.T) {
	sheet := mustParseStylesheet(wrap(`
		<xsl:template name="a">A</xsl:template>
		<xsl:template name="b">B</xsl:template>`))
	prog := MustCompile(sheet)
	if prog.TemplateIndex("a") < 0 || prog.TemplateIndex("b") < 0 {
		t.Fatal("named templates not indexed")
	}
	if prog.TemplateIndex("zz") != -1 {
		t.Fatal("unknown template should be -1")
	}
}

// TestVMKeysAndGenerateID checks the shared runtime functions through the
// bytecode executor.
func TestVMKeysAndGenerateID(t *testing.T) {
	sheet := mustParseStylesheet(wrap(`
		<xsl:key name="k" match="item" use="@g"/>
		<xsl:template match="/">
			<out n="{count(key('k', 'x'))}"><xsl:value-of select="generate-id(//item) = generate-id(//item)"/></out>
		</xsl:template>`))
	doc, _ := xmltree.Parse(`<r><item g="x"/><item g="y"/><item g="x"/></r>`)
	vmOut, err := New(MustCompile(sheet)).RunToString(doc)
	if err != nil {
		t.Fatal(err)
	}
	itOut, err := xslt.New(sheet).TransformToString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if vmOut != itOut {
		t.Fatalf("VM %q != interpreter %q", vmOut, itOut)
	}
	if !strings.Contains(vmOut, `n="2"`) {
		t.Fatalf("key count wrong: %q", vmOut)
	}
}
