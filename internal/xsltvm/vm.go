package xsltvm

import (
	"fmt"
	"strings"

	"repro/internal/governor"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xslt"
)

// TraceEvent reports one template instantiation observed at run time; the
// partial evaluator's Execution Graph Builder consumes these (§4.3).
type TraceEvent struct {
	// TraceID indexes Program.TraceTable (-1 for the initial root apply).
	TraceID int
	// Node is the context node that activated the template.
	Node *xmltree.Node
	// Template is nil when a built-in rule handled the node.
	Template *xslt.Template
	Builtin  bool
}

// VM executes a compiled Program.
type VM struct {
	prog *Program

	// Trace, when set, observes every template instantiation.
	Trace func(TraceEvent)
	// Messages collects xsl:message output.
	Messages []string
	// MaxDepth bounds recursion.
	MaxDepth int
	// Runtime resolves key() and generate-id().
	Runtime *xslt.RuntimeFuncs
}

// New returns a VM for the program.
func New(prog *Program) *VM {
	return &VM{prog: prog, MaxDepth: 1024, Runtime: xslt.NewRuntimeFuncs(prog.Sheet)}
}

// Program returns the compiled program.
func (vm *VM) Program() *Program { return vm.prog }

// vmState is the per-transformation mutable state.
type vmState struct {
	vm     *VM
	engine *xslt.Engine          // template matching (FindTemplate) helper
	out    []*xslt.OutputBuilder // capture stack; last is active
	// scopes is the variable-binding chain.
	scopes []map[string]xpath.Value
	depth  int
}

func (st *vmState) output() *xslt.OutputBuilder { return st.out[len(st.out)-1] }

func (st *vmState) pushCapture() { st.out = append(st.out, xslt.NewOutputBuilder()) }

func (st *vmState) popCapture() *xmltree.Node {
	b := st.out[len(st.out)-1]
	st.out = st.out[:len(st.out)-1]
	frag := b.Finish()
	frag.Renumber()
	return frag
}

func (st *vmState) pushScope() { st.scopes = append(st.scopes, map[string]xpath.Value{}) }
func (st *vmState) popScope() {
	if len(st.scopes) > 1 {
		st.scopes = st.scopes[:len(st.scopes)-1]
	}
}
func (st *vmState) bind(name string, v xpath.Value) {
	st.scopes[len(st.scopes)-1][name] = v
}

// scopeMark/scopeReset unwind scopes pushed inside a code segment when the
// segment exits abnormally (not needed in normal flow, kept for safety).
func (st *vmState) scopeMark() int      { return len(st.scopes) }
func (st *vmState) scopeReset(mark int) { st.scopes = st.scopes[:mark] }

// LookupVar implements xpath.Variables.
func (st *vmState) LookupVar(name string) (xpath.Value, bool) {
	for i := len(st.scopes) - 1; i >= 0; i-- {
		if v, ok := st.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// vmContext is a dynamic XPath context position.
type vmContext struct {
	node      *xmltree.Node
	pos, size int
}

// Run transforms doc and returns the result fragment.
func (vm *VM) Run(doc *xmltree.Node) (*xmltree.Node, error) {
	doc = vm.prog.Sheet.StripSourceSpace(doc)
	st := &vmState{vm: vm, engine: xslt.New(vm.prog.Sheet)}
	st.out = []*xslt.OutputBuilder{xslt.NewOutputBuilder()}
	st.pushScope()
	// Globals.
	for _, g := range vm.prog.GlobalVars {
		v, err := st.paramValue(g, vmContext{node: doc, pos: 1, size: 1})
		if err != nil {
			return nil, err
		}
		st.bind(g.Name, v)
	}
	if err := st.applyTo([]*xmltree.Node{doc}, "", nil, -1); err != nil {
		return nil, err
	}
	frag := st.out[0].Finish()
	frag.Renumber()
	return frag, nil
}

// RunToString transforms and serializes without the XML declaration.
func (vm *VM) RunToString(doc *xmltree.Node) (string, error) {
	frag, err := vm.Run(doc)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	frag.Serialize(&sb, xmltree.SerializeOptions{OmitDecl: true})
	return sb.String(), nil
}

func (st *vmState) xctx(c vmContext) *xpath.Context {
	ctx := &xpath.Context{Node: c.node, Position: c.pos, Size: c.size, Vars: st}
	if st.vm.Runtime != nil {
		ctx.Funcs = st.vm.Runtime.Resolve
	}
	return ctx
}

// paramValue computes a Param's value in the given context.
func (st *vmState) paramValue(p Param, c vmContext) (xpath.Value, error) {
	switch {
	case p.Expr != nil:
		v, err := xpath.Eval(p.Expr, st.xctx(c))
		if err != nil {
			return nil, fmt.Errorf("xsltvm: param $%s: %w", p.Name, err)
		}
		return v, nil
	case p.Seg >= 0:
		st.pushCapture()
		if err := st.exec(p.Seg, c); err != nil {
			st.popCapture()
			return nil, err
		}
		frag := st.popCapture()
		return xpath.NodeSet{frag}, nil
	default:
		return "", nil
	}
}

// applyTo implements apply-templates over the node list.
func (st *vmState) applyTo(nodes []*xmltree.Node, mode string, withParams map[string]xpath.Value, traceID int) error {
	st.depth++
	defer func() { st.depth-- }()
	if st.depth > st.vm.MaxDepth {
		return fmt.Errorf("xsltvm: %w: recursion deeper than %d", governor.ErrRecursionLimit, st.vm.MaxDepth)
	}
	for i, node := range nodes {
		tmpl, err := st.engine.FindTemplate(node, mode, st)
		if err != nil {
			return err
		}
		if st.vm.Trace != nil {
			st.vm.Trace(TraceEvent{TraceID: traceID, Node: node, Template: tmpl, Builtin: tmpl == nil})
		}
		if tmpl == nil {
			if err := st.builtin(node, mode); err != nil {
				return err
			}
			continue
		}
		if err := st.invoke(tmpl, vmContext{node: node, pos: i + 1, size: len(nodes)}, withParams); err != nil {
			return err
		}
	}
	return nil
}

func (st *vmState) builtin(node *xmltree.Node, mode string) error {
	switch node.Kind {
	case xmltree.DocumentNode, xmltree.ElementNode:
		return st.applyTo(node.Children, mode, nil, -1)
	case xmltree.TextNode, xmltree.AttributeNode:
		st.output().Text(node.StringValue())
	}
	return nil
}

// invoke runs a template's compiled code with parameter binding.
func (st *vmState) invoke(t *xslt.Template, c vmContext, withParams map[string]xpath.Value) error {
	tc := st.vm.prog.TemplateCodeFor(t)
	if tc == nil {
		return fmt.Errorf("xsltvm: template %s not compiled", t)
	}
	st.pushScope()
	defer st.popScope()
	for _, p := range tc.Params {
		if v, ok := withParams[p.Name]; ok {
			st.bind(p.Name, v)
			continue
		}
		v, err := st.paramValue(p, c)
		if err != nil {
			return err
		}
		st.bind(p.Name, v)
	}
	return st.exec(tc.Start, c)
}

// iteration is a for-each state.
type iteration struct {
	nodes []*xmltree.Node
	idx   int
	saved vmContext
}

// exec runs code from pc until the matching OpRet, in context c.
func (st *vmState) exec(pc int, c vmContext) error {
	code := st.vm.prog.Code
	var iters []*iteration
	scopeMark := st.scopeMark()
	defer st.scopeReset(scopeMark)

	for pc < len(code) {
		in := &code[pc]
		switch in.Op {
		case OpNop:
		case OpRet:
			return nil
		case OpText:
			st.output().Text(in.Str)
		case OpValueOf:
			v, err := xpath.Eval(in.Expr, st.xctx(c))
			if err != nil {
				return fmt.Errorf("xsltvm: value-of: %w", err)
			}
			st.output().Text(xpath.ToString(v))
		case OpElemOpen:
			st.output().OpenElement(in.Str)
		case OpElemOpenAVT:
			name, err := in.AVT.Eval(st.xctx(c))
			if err != nil {
				return err
			}
			st.output().OpenElement(name)
		case OpElemClose:
			st.output().CloseElement()
		case OpAttrLit:
			val, err := in.AVT.Eval(st.xctx(c))
			if err != nil {
				return err
			}
			if err := st.output().Attr(in.Str, val); err != nil {
				return fmt.Errorf("xsltvm: %w", err)
			}
		case OpCaptureBegin:
			st.pushCapture()
		case OpAttrEnd:
			frag := st.popCapture()
			name, err := in.AVT.Eval(st.xctx(c))
			if err != nil {
				return err
			}
			if err := st.output().Attr(name, frag.StringValue()); err != nil {
				return fmt.Errorf("xsltvm: %w", err)
			}
		case OpCommentEnd:
			data := st.popCapture().StringValue()
			st.output().Comment(data)
		case OpPIEnd:
			frag := st.popCapture()
			name, err := in.AVT.Eval(st.xctx(c))
			if err != nil {
				return err
			}
			st.output().PI(name, frag.StringValue())
		case OpVarEnd:
			frag := st.popCapture()
			st.bind(in.Str, xpath.NodeSet{frag})
		case OpMsgEnd:
			msg := st.popCapture().StringValue()
			st.vm.Messages = append(st.vm.Messages, msg)
			if in.B == 1 {
				return fmt.Errorf("xsltvm: xsl:message terminated: %s", msg)
			}
		case OpVarSelect:
			v, err := xpath.Eval(in.Expr, st.xctx(c))
			if err != nil {
				return fmt.Errorf("xsltvm: variable $%s: %w", in.Str, err)
			}
			st.bind(in.Str, v)
		case OpScopeBegin:
			st.pushScope()
		case OpScopeEnd:
			st.popScope()
		case OpApply:
			var selected []*xmltree.Node
			if in.Expr == nil {
				selected = c.node.Children
			} else {
				ns, err := xpath.EvalNodeSet(in.Expr, st.xctx(c))
				if err != nil {
					return fmt.Errorf("xsltvm: apply-templates: %w", err)
				}
				selected = ns
			}
			if len(in.Sorts) > 0 {
				var err error
				selected, err = st.sortNodes(selected, in.Sorts)
				if err != nil {
					return err
				}
			}
			var wp map[string]xpath.Value
			if len(in.Params) > 0 {
				wp = map[string]xpath.Value{}
				for _, p := range in.Params {
					v, err := st.paramValue(p, c)
					if err != nil {
						return err
					}
					wp[p.Name] = v
				}
			}
			if err := st.applyTo(selected, in.Str, wp, in.A); err != nil {
				return err
			}
		case OpCall:
			idx := st.vm.prog.TemplateIndex(in.Str)
			if idx < 0 {
				return fmt.Errorf("xsltvm: no template named %q", in.Str)
			}
			wp := map[string]xpath.Value{}
			for _, p := range in.Params {
				v, err := st.paramValue(p, c)
				if err != nil {
					return err
				}
				wp[p.Name] = v
			}
			st.depth++
			if st.depth > st.vm.MaxDepth {
				st.depth--
				return fmt.Errorf("xsltvm: %w: recursion deeper than %d in call-template %q", governor.ErrRecursionLimit, st.vm.MaxDepth, in.Str)
			}
			err := st.invoke(st.vm.prog.Templates[idx].Template, c, wp)
			st.depth--
			if err != nil {
				return err
			}
		case OpForEach:
			ns, err := xpath.EvalNodeSet(in.Expr, st.xctx(c))
			if err != nil {
				return fmt.Errorf("xsltvm: for-each: %w", err)
			}
			nodes := []*xmltree.Node(ns)
			if len(in.Sorts) > 0 {
				nodes, err = st.sortNodes(nodes, in.Sorts)
				if err != nil {
					return err
				}
			}
			if len(nodes) == 0 {
				pc = in.A
				continue
			}
			iters = append(iters, &iteration{nodes: nodes, saved: c})
			c = vmContext{node: nodes[0], pos: 1, size: len(nodes)}
		case OpIterNext:
			it := iters[len(iters)-1]
			it.idx++
			if it.idx < len(it.nodes) {
				c = vmContext{node: it.nodes[it.idx], pos: it.idx + 1, size: len(it.nodes)}
				pc = in.A
				continue
			}
			c = it.saved
			iters = iters[:len(iters)-1]
		case OpIf:
			v, err := xpath.Eval(in.Expr, st.xctx(c))
			if err != nil {
				return fmt.Errorf("xsltvm: if/when: %w", err)
			}
			if !xpath.ToBool(v) {
				pc = in.A
				continue
			}
		case OpJump:
			pc = in.A
			continue
		case OpCopyBegin:
			switch c.node.Kind {
			case xmltree.ElementNode:
				st.output().OpenElement(c.node.QName())
			case xmltree.TextNode:
				st.output().Text(c.node.Data)
			case xmltree.AttributeNode:
				if err := st.output().Attr(c.node.QName(), c.node.Data); err != nil {
					return fmt.Errorf("xsltvm: copy: %w", err)
				}
			case xmltree.CommentNode:
				st.output().Comment(c.node.Data)
			case xmltree.ProcInstNode:
				st.output().PI(c.node.Name, c.node.Data)
			}
		case OpCopyEnd:
			if c.node.Kind == xmltree.ElementNode {
				st.output().CloseElement()
			}
		case OpCopyOf:
			v, err := xpath.Eval(in.Expr, st.xctx(c))
			if err != nil {
				return fmt.Errorf("xsltvm: copy-of: %w", err)
			}
			if ns, ok := v.(xpath.NodeSet); ok {
				for _, n := range ns {
					st.output().CopyNode(n)
				}
			} else {
				st.output().Text(xpath.ToString(v))
			}
		case OpNumber:
			if in.Expr != nil {
				v, err := xpath.Eval(in.Expr, st.xctx(c))
				if err != nil {
					return err
				}
				st.output().Text(xpath.NumberToString(xpath.ToNumber(v)))
				break
			}
			n := 1
			if p := c.node.Parent; p != nil {
				for _, sib := range p.Children {
					if sib == c.node {
						break
					}
					if sib.Kind == c.node.Kind && sib.Name == c.node.Name {
						n++
					}
				}
			}
			st.output().Text(fmt.Sprintf("%d", n))
		default:
			return fmt.Errorf("xsltvm: bad opcode %v at pc %d", in.Op, pc)
		}
		pc++
	}
	return nil
}

// sortNodes orders nodes by sort keys (same semantics as the interpreter).
func (st *vmState) sortNodes(nodes []*xmltree.Node, sorts []xslt.SortKey) ([]*xmltree.Node, error) {
	type keyed struct {
		node *xmltree.Node
		strs []string
		nums []float64
	}
	items := make([]keyed, len(nodes))
	for i, n := range nodes {
		it := keyed{node: n}
		for _, sk := range sorts {
			v, err := xpath.Eval(sk.Select, st.xctx(vmContext{node: n, pos: i + 1, size: len(nodes)}))
			if err != nil {
				return nil, fmt.Errorf("xsltvm: sort: %w", err)
			}
			if sk.Numeric {
				it.nums = append(it.nums, xpath.ToNumber(v))
				it.strs = append(it.strs, "")
			} else {
				it.strs = append(it.strs, xpath.ToString(v))
				it.nums = append(it.nums, 0)
			}
		}
		items[i] = it
	}
	// Stable insertion sort on the keys.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && sortLess(items[j], items[j-1], sorts); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	out := make([]*xmltree.Node, len(items))
	for i, it := range items {
		out[i] = it.node
	}
	return out, nil
}

func sortLess(a, b struct {
	node *xmltree.Node
	strs []string
	nums []float64
}, sorts []xslt.SortKey) bool {
	for k, sk := range sorts {
		var cmp int
		if sk.Numeric {
			switch {
			case a.nums[k] < b.nums[k]:
				cmp = -1
			case a.nums[k] > b.nums[k]:
				cmp = 1
			}
		} else {
			cmp = strings.Compare(a.strs[k], b.strs[k])
		}
		if sk.Descending {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp < 0
		}
	}
	return false
}
