// Package xsltvm is the XSLT virtual machine of paper §4.3 (after
// Novoselsky's Oracle XSLTVM [13]): stylesheets compile to flat bytecode;
// the VM executes the bytecode over a document; trace instructions report
// every template instantiation to an observer, which is how the partial
// evaluator (internal/pe) collects its trace-call-lists and builds the
// template execution graph from a sample document run.
package xsltvm

import (
	"fmt"

	"repro/internal/xpath"
	"repro/internal/xslt"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes.
const (
	OpNop          Op = iota
	OpText            // emit Str
	OpValueOf         // emit string(Expr)
	OpElemOpen        // open element Str
	OpElemOpenAVT     // open element named by AVT
	OpElemClose       // close element
	OpAttrLit         // set attribute Str to AVT value
	OpCaptureBegin    // push a capture output buffer
	OpAttrEnd         // pop capture → attribute named by AVT
	OpCommentEnd      // pop capture → comment
	OpPIEnd           // pop capture → processing instruction named by AVT
	OpVarEnd          // pop capture → bind variable Str as fragment
	OpMsgEnd          // pop capture → message; B=1 terminates
	OpVarSelect       // bind variable Str to Expr value
	OpScopeBegin      // push a variable scope
	OpScopeEnd        // pop it
	OpApply           // apply-templates: Expr select (nil=children), Str mode, A=trace id
	OpCall            // call template A with Params
	OpForEach         // iterate Expr (sorted); jump A past OpIterNext when empty
	OpIterNext        // advance innermost iteration; jump A (body start) if more
	OpIf              // jump A when Expr is false
	OpJump            // jump A
	OpCopyBegin       // xsl:copy shallow-copy open
	OpCopyEnd         // xsl:copy close
	OpCopyOf          // deep copy Expr value
	OpNumber          // xsl:number (Expr may be nil)
	OpRet             // end of code segment
)

var opNames = [...]string{
	"nop", "text", "value-of", "elem-open", "elem-open-avt", "elem-close",
	"attr-lit", "capture-begin", "attr-end", "comment-end", "pi-end",
	"var-end", "msg-end", "var-select", "scope-begin", "scope-end",
	"apply", "call", "for-each", "iter-next", "if", "jump",
	"copy-begin", "copy-end", "copy-of", "number", "ret",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Param is a compiled with-param / param default: value from Expr, or from
// running the code segment starting at Seg (capture), or empty string.
type Param struct {
	Name string
	Expr xpath.Expr
	Seg  int // -1 when unused
}

// Instr is one bytecode instruction.
type Instr struct {
	Op     Op
	Str    string
	Expr   xpath.Expr
	AVT    *xslt.AVT
	Sorts  []xslt.SortKey
	Params []Param
	A, B   int
}

// TemplateCode locates a compiled template in the program.
type TemplateCode struct {
	Template *xslt.Template
	Start    int
	Params   []Param
}

// TraceEntry is the static side of the trace-table: one entry per
// apply-templates instruction in the stylesheet (§4.3).
type TraceEntry struct {
	// PC of the OpApply instruction.
	PC int
	// SelectSrc is the select expression as written ("" = children).
	SelectSrc string
	Mode      string
	// Template owning the instruction (nil for global/odd contexts).
	Owner *xslt.Template
}

// Program is a compiled stylesheet.
type Program struct {
	Sheet      *xslt.Stylesheet
	Code       []Instr
	Templates  []TemplateCode
	TraceTable []TraceEntry
	// GlobalVars are evaluated before the first template runs.
	GlobalVars []Param
	nameIdx    map[string]int
}

// TemplateIndex returns the index of the named template, or -1.
func (p *Program) TemplateIndex(name string) int {
	if i, ok := p.nameIdx[name]; ok {
		return i
	}
	return -1
}

// TemplateCodeFor returns the compiled code entry for t, or nil.
func (p *Program) TemplateCodeFor(t *xslt.Template) *TemplateCode {
	for i := range p.Templates {
		if p.Templates[i].Template == t {
			return &p.Templates[i]
		}
	}
	return nil
}

// Disassemble renders the bytecode for debugging and tests.
func (p *Program) Disassemble() string {
	out := ""
	for pc, in := range p.Code {
		out += fmt.Sprintf("%4d  %-14s", pc, in.Op)
		if in.Str != "" {
			out += fmt.Sprintf(" %q", in.Str)
		}
		if in.Expr != nil {
			out += " expr=" + in.Expr.String()
		}
		if in.Op == OpJump || in.Op == OpIf || in.Op == OpForEach || in.Op == OpIterNext || in.Op == OpCall || in.Op == OpApply {
			out += fmt.Sprintf(" A=%d", in.A)
		}
		out += "\n"
	}
	return out
}

type compiler struct {
	prog  *Program
	sheet *xslt.Stylesheet
	// current owning template for trace entries
	owner *xslt.Template
}

// Compile translates a stylesheet to bytecode.
func Compile(sheet *xslt.Stylesheet) (*Program, error) {
	c := &compiler{
		prog:  &Program{Sheet: sheet, nameIdx: map[string]int{}},
		sheet: sheet,
	}
	// Global variables compile to params (expr or capture segment).
	for _, def := range sheet.GlobalVars {
		p, err := c.compileParam(def)
		if err != nil {
			return nil, err
		}
		c.prog.GlobalVars = append(c.prog.GlobalVars, p)
	}
	for _, t := range sheet.Templates {
		c.owner = t
		tc := TemplateCode{Template: t, Start: len(c.prog.Code)}
		for _, pd := range t.Params {
			p, err := c.compileParam(pd)
			if err != nil {
				return nil, err
			}
			tc.Params = append(tc.Params, p)
		}
		// Params compile their default segments before the body start.
		tc.Start = len(c.prog.Code)
		if err := c.compileSeq(t.Body); err != nil {
			return nil, err
		}
		c.emit(Instr{Op: OpRet})
		c.prog.Templates = append(c.prog.Templates, tc)
		if t.Name != "" {
			if _, dup := c.prog.nameIdx[t.Name]; !dup {
				c.prog.nameIdx[t.Name] = len(c.prog.Templates) - 1
			}
		}
	}
	return c.prog, nil
}


func (c *compiler) emit(in Instr) int {
	c.prog.Code = append(c.prog.Code, in)
	return len(c.prog.Code) - 1
}

func (c *compiler) here() int { return len(c.prog.Code) }

// compileSegment compiles body as an out-of-line subroutine (used for
// capture-valued params) and returns its start pc.
func (c *compiler) compileSegment(body []xslt.Instruction) (int, error) {
	// Jump over the segment so inline flow skips it.
	j := c.emit(Instr{Op: OpJump})
	start := c.here()
	if err := c.compileSeq(body); err != nil {
		return 0, err
	}
	c.emit(Instr{Op: OpRet})
	c.prog.Code[j].A = c.here()
	return start, nil
}

func (c *compiler) compileParam(def *xslt.VarDef) (Param, error) {
	p := Param{Name: def.Name, Expr: def.Select, Seg: -1}
	if def.Select == nil && len(def.Body) > 0 {
		seg, err := c.compileSegment(def.Body)
		if err != nil {
			return p, err
		}
		p.Seg = seg
	}
	return p, nil
}

func (c *compiler) compileParams(defs []*xslt.VarDef) ([]Param, error) {
	var out []Param
	for _, d := range defs {
		p, err := c.compileParam(d)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (c *compiler) compileSeq(body []xslt.Instruction) error {
	c.emit(Instr{Op: OpScopeBegin})
	for _, in := range body {
		if err := c.compileInstr(in); err != nil {
			return err
		}
	}
	c.emit(Instr{Op: OpScopeEnd})
	return nil
}

func (c *compiler) compileInstr(instr xslt.Instruction) error {
	switch in := instr.(type) {
	case *xslt.Text:
		c.emit(Instr{Op: OpText, Str: in.Data})
	case *xslt.MakeText:
		c.emit(Instr{Op: OpText, Str: in.Data})
	case *xslt.ValueOf:
		c.emit(Instr{Op: OpValueOf, Expr: in.Select})
	case *xslt.LiteralElement:
		c.emit(Instr{Op: OpElemOpen, Str: in.QName})
		for _, a := range in.Attrs {
			c.emit(Instr{Op: OpAttrLit, Str: a.QName, AVT: a.Value})
		}
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpElemClose})
	case *xslt.MakeElement:
		c.emit(Instr{Op: OpElemOpenAVT, AVT: in.Name})
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpElemClose})
	case *xslt.MakeAttribute:
		c.emit(Instr{Op: OpCaptureBegin})
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpAttrEnd, AVT: in.Name})
	case *xslt.MakeComment:
		c.emit(Instr{Op: OpCaptureBegin})
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpCommentEnd})
	case *xslt.MakePI:
		c.emit(Instr{Op: OpCaptureBegin})
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpPIEnd, AVT: in.Name})
	case *xslt.DeclareVar:
		if in.Def.Select != nil {
			c.emit(Instr{Op: OpVarSelect, Str: in.Def.Name, Expr: in.Def.Select})
			return nil
		}
		c.emit(Instr{Op: OpCaptureBegin})
		if err := c.compileSeq(in.Def.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpVarEnd, Str: in.Def.Name})
	case *xslt.ApplyTemplates:
		params, err := c.compileParams(in.Params)
		if err != nil {
			return err
		}
		traceID := len(c.prog.TraceTable)
		// Record the id on the stylesheet instruction so consumers of the
		// trace (the partial evaluator and the rewriter) can correlate
		// instructions with call lists. Ids are deterministic per sheet.
		in.TraceID = traceID
		selectSrc := ""
		if in.Select != nil {
			selectSrc = in.Select.String()
		}
		pc := c.emit(Instr{Op: OpApply, Expr: in.Select, Str: in.Mode, Sorts: in.Sorts, Params: params, A: traceID})
		c.prog.TraceTable = append(c.prog.TraceTable, TraceEntry{
			PC: pc, SelectSrc: selectSrc, Mode: in.Mode, Owner: c.owner,
		})
	case *xslt.CallTemplate:
		params, err := c.compileParams(in.Params)
		if err != nil {
			return err
		}
		// Template index resolved lazily at run time through nameIdx so
		// forward references work; store the name.
		c.emit(Instr{Op: OpCall, Str: in.Name, Params: params, A: -1})
	case *xslt.ForEach:
		fe := c.emit(Instr{Op: OpForEach, Expr: in.Select, Sorts: in.Sorts})
		bodyStart := c.here()
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		nx := c.emit(Instr{Op: OpIterNext, A: bodyStart})
		c.prog.Code[fe].A = nx + 1
	case *xslt.If:
		ifpc := c.emit(Instr{Op: OpIf, Expr: in.Test})
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.prog.Code[ifpc].A = c.here()
	case *xslt.Choose:
		var exits []int
		for _, w := range in.Whens {
			ifpc := c.emit(Instr{Op: OpIf, Expr: w.Test})
			if err := c.compileSeq(w.Body); err != nil {
				return err
			}
			exits = append(exits, c.emit(Instr{Op: OpJump}))
			c.prog.Code[ifpc].A = c.here()
		}
		if len(in.Otherwise) > 0 {
			if err := c.compileSeq(in.Otherwise); err != nil {
				return err
			}
		}
		for _, pc := range exits {
			c.prog.Code[pc].A = c.here()
		}
	case *xslt.Copy:
		c.emit(Instr{Op: OpCopyBegin})
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpCopyEnd})
	case *xslt.CopyOf:
		c.emit(Instr{Op: OpCopyOf, Expr: in.Select})
	case *xslt.NumberInstr:
		c.emit(Instr{Op: OpNumber, Expr: in.Value})
	case *xslt.Message:
		term := 0
		if in.Terminate {
			term = 1
		}
		c.emit(Instr{Op: OpCaptureBegin})
		if err := c.compileSeq(in.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpMsgEnd, B: term})
	default:
		return fmt.Errorf("xsltvm: cannot compile instruction %T", instr)
	}
	return nil
}
