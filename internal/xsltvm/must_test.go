package xsltvm

import "repro/internal/xslt"

// Test-only compile helpers: the production API returns errors; tests with
// compiled-in stylesheets use these and treat a failure as a bug.

func MustCompile(sheet *xslt.Stylesheet) *Program {
	p, err := Compile(sheet)
	if err != nil {
		panic(err)
	}
	return p
}

func mustParseStylesheet(src string) *xslt.Stylesheet {
	s, err := xslt.ParseStylesheet(src)
	if err != nil {
		panic(err)
	}
	return s
}
