// Package xtest holds test-only parsing helpers. The production packages
// deliberately export no panicking Must* constructors — parse errors are
// returned values there — so tests that want "parse or fail the test" use
// these instead.
package xtest

import (
	"testing"

	"repro/internal/xpath"
	"repro/internal/xquery"
	"repro/internal/xschema"
	"repro/internal/xslt"
)

// Sheet parses stylesheet text, failing the test on error.
func Sheet(tb testing.TB, src string) *xslt.Stylesheet {
	tb.Helper()
	s, err := xslt.ParseStylesheet(src)
	if err != nil {
		tb.Fatalf("parse stylesheet: %v", err)
	}
	return s
}

// Schema parses a compact schema, failing the test on error.
func Schema(tb testing.TB, src string) *xschema.Schema {
	tb.Helper()
	s, err := xschema.ParseCompact(src)
	if err != nil {
		tb.Fatalf("parse compact schema: %v", err)
	}
	return s
}

// XQuery parses a query module, failing the test on error.
func XQuery(tb testing.TB, src string) *xquery.Module {
	tb.Helper()
	m, err := xquery.Parse(src)
	if err != nil {
		tb.Fatalf("parse xquery: %v", err)
	}
	return m
}

// XPath parses an XPath expression, failing the test on error.
func XPath(tb testing.TB, src string) xpath.Expr {
	tb.Helper()
	e, err := xpath.Parse(src)
	if err != nil {
		tb.Fatalf("parse xpath: %v", err)
	}
	return e
}
