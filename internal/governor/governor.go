// Package governor is the execution-governance layer shared by every
// evaluation loop in the engine. A query running inside a database server
// must never run away with the process: it has to stop promptly when the
// session's context is cancelled, stay inside configured resource budgets
// (rows, output bytes, recursion depth), and report the violation as a
// typed error instead of crashing or silently truncating.
//
// A *G is created at the facade (Run/OpenCursor) and threaded down through
// the relstore iterators, the SQL/XML construction loops, the XQuery
// evaluator and the XSLT interpreter. Every layer calls Tick (amortized) or
// the budget methods; the first violation is sticky, so all layers unwind
// with the same error.
//
// All methods are safe on a nil receiver (they no-op), so internal code can
// call them unconditionally, and safe for concurrent use (parallel workers
// share one G).
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Sentinel errors. The public facade re-exports these, so errors.Is works
// across the package boundary.
var (
	// ErrCanceled reports that the run's context was cancelled or its
	// deadline expired. Errors carrying it also wrap the underlying
	// context error, so errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = errors.New("execution canceled")
	// ErrLimitExceeded reports a configured resource budget was exhausted.
	ErrLimitExceeded = errors.New("resource limit exceeded")
	// ErrRecursionLimit reports template/function recursion deeper than
	// the configured bound (a runaway xsl:apply-templates, typically).
	ErrRecursionLimit = errors.New("recursion limit exceeded")
)

// LimitError carries which budget was exhausted; it wraps ErrLimitExceeded.
type LimitError struct {
	Kind  string // "rows" or "output-bytes"
	Limit int64
	Used  int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("governor: %s limit exceeded: %d > %d", e.Kind, e.Used, e.Limit)
}

func (e *LimitError) Unwrap() error { return ErrLimitExceeded }

// cancelError wraps both ErrCanceled and the context's own error.
type cancelError struct{ cause error }

func (e *cancelError) Error() string { return "governor: " + ErrCanceled.Error() + ": " + e.cause.Error() }

func (e *cancelError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// tickMask amortizes context checks: a full check happens every
// tickMask+1 Ticks. Cancellation latency is therefore bounded by the time
// the engine needs for 64 ticks — microseconds, far inside the <100ms
// promptness budget — while the fast path stays one atomic add.
const tickMask = 63

// G governs one execution. The zero value is not useful; use New.
type G struct {
	ctx  context.Context
	done <-chan struct{}

	ticks atomic.Uint64

	maxRows   int64
	rows      atomic.Int64
	maxOutput int64
	output    atomic.Int64

	maxDepth int

	// failed latches the first violation so every layer unwinds with it.
	failed atomic.Pointer[error]
}

// New returns a governor bound to ctx. ctx may be nil (treated as
// context.Background()).
func New(ctx context.Context) *G {
	if ctx == nil {
		ctx = context.Background()
	}
	return &G{ctx: ctx, done: ctx.Done()}
}

// Limits configures the budgets; zero values mean unlimited. It returns g
// for chaining and must be called before the run starts.
func (g *G) Limits(maxRows, maxOutputBytes int64, maxDepth int) *G {
	g.maxRows = maxRows
	g.maxOutput = maxOutputBytes
	g.maxDepth = maxDepth
	return g
}

// Context returns the governed context (context.Background() on nil).
func (g *G) Context() context.Context {
	if g == nil || g.ctx == nil {
		return context.Background()
	}
	return g.ctx
}

// MaxDepth returns the configured recursion bound, or def when unset.
func (g *G) MaxDepth(def int) int {
	if g == nil || g.maxDepth <= 0 {
		return def
	}
	return g.maxDepth
}

// fail latches err as the governor's sticky terminal error.
func (g *G) fail(err error) error {
	g.failed.CompareAndSwap(nil, &err)
	return *g.failed.Load()
}

// Err returns the sticky violation, if any.
func (g *G) Err() error {
	if g == nil {
		return nil
	}
	if p := g.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// Tick is the amortized per-iteration check: most calls are one atomic
// add; every 64th call performs the full cancellation check. Evaluation
// loops call it once per row / node / instruction.
func (g *G) Tick() error {
	if g == nil {
		return nil
	}
	if g.ticks.Add(1)&tickMask != 0 {
		if p := g.failed.Load(); p != nil {
			return *p
		}
		return nil
	}
	return g.Check()
}

// TickN charges n evaluation steps in one call — the batch-at-a-time form
// of Tick. A batch iterator that visits 1024 rows calls TickN(1024) once
// instead of Tick() 1024 times, keeping the ticks counter an honest work
// proxy while paying one atomic add per batch. A full cancellation check
// runs whenever the add crosses a 64-tick boundary, so cancellation latency
// is bounded by one batch regardless of batch size (n >= 64 always checks).
func (g *G) TickN(n int) error {
	if g == nil {
		return nil
	}
	if n <= 0 {
		if p := g.failed.Load(); p != nil {
			return *p
		}
		return nil
	}
	after := g.ticks.Add(uint64(n))
	if (after-uint64(n))>>6 == after>>6 {
		// No 64-tick boundary crossed: amortized path, sticky error only.
		if p := g.failed.Load(); p != nil {
			return *p
		}
		return nil
	}
	return g.Check()
}

// Check performs the full (unamortized) cancellation check: sticky error
// first, then the context.
func (g *G) Check() error {
	if g == nil {
		return nil
	}
	if p := g.failed.Load(); p != nil {
		return *p
	}
	if g.done != nil {
		select {
		case <-g.done:
			return g.fail(&cancelError{cause: g.ctx.Err()})
		default:
		}
	}
	return nil
}

// AddRow charges one produced result row against the row budget.
func (g *G) AddRow() error {
	if g == nil {
		return nil
	}
	n := g.rows.Add(1)
	if g.maxRows > 0 && n > g.maxRows {
		return g.fail(&LimitError{Kind: "rows", Limit: g.maxRows, Used: n})
	}
	return nil
}

// AddOutput charges n bytes of serialized output against the output budget.
func (g *G) AddOutput(n int) error {
	if g == nil {
		return nil
	}
	total := g.output.Add(int64(n))
	if g.maxOutput > 0 && total > g.maxOutput {
		return g.fail(&LimitError{Kind: "output-bytes", Limit: g.maxOutput, Used: total})
	}
	return nil
}

// Ticks returns the number of amortized checks performed so far — a cheap
// proxy for engine work (evaluation steps, rows, nodes) that the
// observability layer records as a span attribute without the engines
// having to count anything extra.
func (g *G) Ticks() uint64 {
	if g == nil {
		return 0
	}
	return g.ticks.Load()
}

// Rows returns the rows charged so far.
func (g *G) Rows() int64 {
	if g == nil {
		return 0
	}
	return g.rows.Load()
}

// OutputBytes returns the output bytes charged so far.
func (g *G) OutputBytes() int64 {
	if g == nil {
		return 0
	}
	return g.output.Load()
}

// IsGovernance reports whether err is a governance verdict — cancellation,
// a resource limit, or the recursion bound. Governance errors are final:
// the degradation chain must not retry a weaker strategy on them, because
// the verdict applies to the run, not to the strategy that surfaced it.
func IsGovernance(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrLimitExceeded) || errors.Is(err, ErrRecursionLimit)
}
