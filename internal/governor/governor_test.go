package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNilReceiverNoops(t *testing.T) {
	var g *G
	if err := g.Tick(); err != nil {
		t.Fatalf("nil Tick = %v", err)
	}
	if err := g.Check(); err != nil {
		t.Fatalf("nil Check = %v", err)
	}
	if err := g.AddRow(); err != nil {
		t.Fatalf("nil AddRow = %v", err)
	}
	if err := g.AddOutput(10); err != nil {
		t.Fatalf("nil AddOutput = %v", err)
	}
	if g.Err() != nil || g.Rows() != 0 || g.OutputBytes() != 0 {
		t.Fatal("nil accessors should be zero")
	}
	if g.MaxDepth(7) != 7 {
		t.Fatal("nil MaxDepth should return default")
	}
	if g.Context() == nil {
		t.Fatal("nil Context should return Background")
	}
}

func TestCancellationIsSticky(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx)
	if err := g.Check(); err != nil {
		t.Fatalf("pre-cancel Check = %v", err)
	}
	cancel()
	err := g.Check()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check after cancel = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel error should also wrap context.Canceled, got %v", err)
	}
	// Sticky: every later check (even a fast-path Tick) returns it.
	for i := 0; i < 2*tickMask; i++ {
		if err := g.Tick(); !errors.Is(err, ErrCanceled) {
			t.Fatalf("Tick %d after cancel = %v", i, err)
		}
	}
}

func TestTickAmortizationDetectsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx)
	cancel()
	var got error
	for i := 0; i < tickMask+2; i++ {
		if err := g.Tick(); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrCanceled) {
		t.Fatalf("Tick never observed cancellation within a full window: %v", got)
	}
}

func TestRowLimit(t *testing.T) {
	g := New(context.Background()).Limits(3, 0, 0)
	for i := 0; i < 3; i++ {
		if err := g.AddRow(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	err := g.AddRow()
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("4th row = %v, want ErrLimitExceeded", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "rows" || le.Limit != 3 {
		t.Fatalf("limit detail = %+v", le)
	}
	// Sticky via Tick too.
	if err := g.Check(); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("Check after limit = %v", err)
	}
}

func TestOutputLimit(t *testing.T) {
	g := New(context.Background()).Limits(0, 100, 0)
	if err := g.AddOutput(60); err != nil {
		t.Fatalf("first 60 bytes: %v", err)
	}
	err := g.AddOutput(60)
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("120 bytes = %v, want ErrLimitExceeded", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "output-bytes" {
		t.Fatalf("limit detail = %+v", le)
	}
}

func TestMaxDepth(t *testing.T) {
	g := New(context.Background()).Limits(0, 0, 42)
	if got := g.MaxDepth(1024); got != 42 {
		t.Fatalf("MaxDepth = %d, want 42", got)
	}
	g2 := New(context.Background())
	if got := g2.MaxDepth(1024); got != 1024 {
		t.Fatalf("unset MaxDepth = %d, want default", got)
	}
}

func TestConcurrentTicksAndLimits(t *testing.T) {
	g := New(context.Background()).Limits(1000, 0, 0)
	var wg sync.WaitGroup
	var hits atomic64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = g.Tick()
				if err := g.AddRow(); err != nil {
					hits.add(1)
				}
			}
		}()
	}
	wg.Wait()
	// 4000 rows against a 1000 budget: exactly 3000 charges fail.
	if got := hits.load(); got != 3000 {
		t.Fatalf("limit hits = %d, want 3000", got)
	}
}

func TestIsGovernance(t *testing.T) {
	if !IsGovernance(ErrCanceled) || !IsGovernance(ErrLimitExceeded) || !IsGovernance(ErrRecursionLimit) {
		t.Fatal("sentinels must classify as governance errors")
	}
	if !IsGovernance(&LimitError{Kind: "rows"}) {
		t.Fatal("LimitError must classify as governance")
	}
	if IsGovernance(errors.New("boom")) {
		t.Fatal("ordinary errors must not classify as governance")
	}
}

// atomic64 is a tiny helper to avoid importing sync/atomic twice in tests.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
