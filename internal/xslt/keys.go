package xslt

import (
	"fmt"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// RuntimeFuncs resolves the XSLT extension functions the XPath engine does
// not know natively: key() over xsl:key declarations and generate-id().
// One instance serves a whole transformation; key tables build lazily per
// document root. Both the tree-walking interpreter and the XSLTVM share it.
type RuntimeFuncs struct {
	sheet *Stylesheet
	// Optimistic makes key() return every node matching the key's pattern
	// regardless of the requested value — the partial evaluator's
	// conservative stance for value-dependent lookups (§4.3).
	Optimistic bool

	tables map[*xmltree.Node]map[string]map[string]xpath.NodeSet
}

// NewRuntimeFuncs returns a resolver for the stylesheet.
func NewRuntimeFuncs(sheet *Stylesheet) *RuntimeFuncs {
	return &RuntimeFuncs{sheet: sheet, tables: map[*xmltree.Node]map[string]map[string]xpath.NodeSet{}}
}

// Resolve implements the xpath.Context.Funcs hook.
func (r *RuntimeFuncs) Resolve(name string) (xpath.Function, bool) {
	switch name {
	case "key":
		return r.keyFunc, true
	case "generate-id":
		return generateID, true
	}
	return nil, false
}

// generateID returns a document-stable identifier for the node (the
// argument, or the context node). Identifiers are unique within a document
// after parsing/Renumber.
func generateID(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	n := ctx.Node
	if len(args) == 1 {
		ns, err := xpath.ToNodeSet(args[0])
		if err != nil {
			return nil, err
		}
		if len(ns) == 0 {
			return "", nil
		}
		n = ns[0]
	} else if len(args) > 1 {
		return nil, fmt.Errorf("xslt: generate-id() takes at most one argument")
	}
	return fmt.Sprintf("id%d", n.Ord()), nil
}

// keyFunc implements key(name, value).
func (r *RuntimeFuncs) keyFunc(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("xslt: key() takes exactly two arguments")
	}
	name := xpath.ToString(args[0])
	root := ctx.Node.Root()
	table, err := r.tableFor(root, name)
	if err != nil {
		return nil, err
	}
	if r.Optimistic {
		// Conservative PE semantics: any value might match; return the
		// union of all indexed nodes.
		var all xpath.NodeSet
		for _, ns := range table {
			all = append(all, ns...)
		}
		return xpath.NodeSet(xmltree.SortDocOrder(all)), nil
	}
	var out xpath.NodeSet
	if vs, ok := args[1].(xpath.NodeSet); ok {
		for _, v := range vs {
			out = append(out, table[v.StringValue()]...)
		}
	} else {
		out = append(out, table[xpath.ToString(args[1])]...)
	}
	return xpath.NodeSet(xmltree.SortDocOrder(out)), nil
}

// tableFor builds (or returns) the key table of one document.
func (r *RuntimeFuncs) tableFor(root *xmltree.Node, name string) (map[string]xpath.NodeSet, error) {
	perDoc, ok := r.tables[root]
	if !ok {
		perDoc = map[string]map[string]xpath.NodeSet{}
		r.tables[root] = perDoc
	}
	if t, ok := perDoc[name]; ok {
		return t, nil
	}
	var def *KeyDef
	for _, k := range r.sheet.Keys {
		if k.Name == name {
			def = k
			break
		}
	}
	if def == nil {
		return nil, fmt.Errorf("xslt: no xsl:key named %q", name)
	}
	table := map[string]xpath.NodeSet{}
	var walk func(n *xmltree.Node) error
	walk = func(n *xmltree.Node) error {
		consider := func(c *xmltree.Node) error {
			match, err := def.Match.Matches(c, nil)
			if err != nil {
				return err
			}
			if !match {
				return nil
			}
			v, err := xpath.Eval(def.Use, &xpath.Context{Node: c, Position: 1, Size: 1, Funcs: r.Resolve})
			if err != nil {
				return err
			}
			if ns, ok := v.(xpath.NodeSet); ok {
				for _, u := range ns {
					key := u.StringValue()
					table[key] = append(table[key], c)
				}
				return nil
			}
			key := xpath.ToString(v)
			table[key] = append(table[key], c)
			return nil
		}
		if err := consider(n); err != nil {
			return err
		}
		for _, a := range n.Attrs {
			if err := consider(a); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	perDoc[name] = table
	return table, nil
}

// StripSourceSpace applies the stylesheet's xsl:strip-space /
// xsl:preserve-space declarations to a source document, per XSLT 1.0 §3.4:
// whitespace-only text nodes whose parent element is in the strip list (and
// not in the preserve list) are removed. The input is not modified; a
// stripped clone is returned, or the original when no stripping applies.
func (s *Stylesheet) StripSourceSpace(doc *xmltree.Node) *xmltree.Node {
	if len(s.StripSpace) == 0 {
		return doc
	}
	strip := map[string]bool{}
	stripAll := false
	for _, n := range s.StripSpace {
		if n == "*" {
			stripAll = true
		}
		strip[n] = true
	}
	preserve := map[string]bool{}
	for _, n := range s.PreserveSpace {
		preserve[n] = true
	}
	shouldStrip := func(parent *xmltree.Node) bool {
		if parent.Kind != xmltree.ElementNode && parent.Kind != xmltree.DocumentNode {
			return false
		}
		if preserve[parent.Name] || preserve["*"] && !strip[parent.Name] {
			return false
		}
		return stripAll || strip[parent.Name]
	}
	cp := doc.Clone()
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		kept := n.Children[:0]
		doStrip := shouldStrip(n)
		for _, c := range n.Children {
			if doStrip && c.Kind == xmltree.TextNode && isWhitespaceOnly(c.Data) {
				continue
			}
			walk(c)
			kept = append(kept, c)
		}
		n.Children = kept
	}
	walk(cp)
	cp.Renumber()
	return cp
}

func isWhitespaceOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}
