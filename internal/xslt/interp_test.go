package xslt

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func transform(t *testing.T, stylesheet, input string) string {
	t.Helper()
	sheet, err := ParseStylesheet(stylesheet)
	if err != nil {
		t.Fatalf("ParseStylesheet: %v", err)
	}
	doc, err := xmltree.Parse(input)
	if err != nil {
		t.Fatalf("Parse input: %v", err)
	}
	out, err := New(sheet).TransformToString(doc)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	return out
}

// norm collapses whitespace (and drops whitespace between tags) so golden
// comparisons are layout-insensitive: a conforming XSLT processor copies the
// input's inter-element whitespace text nodes, which the paper's printed
// tables elide.
func norm(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	s = strings.ReplaceAll(s, "> <", "><")
	return s
}

func wrap(body string) string {
	return `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + body + `</xsl:stylesheet>`
}

// TestPaperExample1 reproduces Table 6 of the paper: applying the Table 5
// stylesheet to the first dept_emp row.
func TestPaperExample1(t *testing.T) {
	got := transform(t, PaperStylesheet, PaperDeptRow1)
	want := `<H1>HIGHLY PAID DEPT EMPLOYEES</H1>` +
		`<H2>Department name: ACCOUNTING</H2>` +
		`<H2>Department location: NEW YORK</H2>` +
		`<H2>Employees Table</H2>` +
		`<table border="2">` +
		`<td><b>EmpNo</b></td>` +
		`<td><b>Name</b></td>` +
		`<td><b>Weekly Salary</b></td>` +
		`<tr><td>7782</td><td>CLARK</td><td>2450</td></tr>` +
		`</table>`
	if norm(got) != norm(want) {
		t.Fatalf("Example 1 mismatch:\ngot:  %s\nwant: %s", norm(got), norm(want))
	}
}

// TestPaperExample1Row2 checks the OPERATIONS row (second half of Table 6):
// SMITH earns 4900 and must appear.
func TestPaperExample1Row2(t *testing.T) {
	got := norm(transform(t, PaperStylesheet, PaperDeptRow2))
	if !strings.Contains(got, "<td>7954</td><td>SMITH</td><td>4900</td>") {
		t.Fatalf("SMITH row missing:\n%s", got)
	}
	if strings.Contains(got, "MILLER") {
		t.Fatal("row 2 must not contain row 1 employees")
	}
}

func TestBuiltinTemplatesOnly(t *testing.T) {
	// Paper Table 20: the empty stylesheet concatenates all text.
	got := transform(t, wrap(""), PaperDeptRow1)
	for _, want := range []string{"ACCOUNTING", "NEW YORK", "7782", "CLARK", "2450", "MILLER"} {
		if !strings.Contains(got, want) {
			t.Fatalf("builtin output missing %q: %s", want, got)
		}
	}
	if strings.Contains(got, "<") {
		t.Fatalf("builtin-only output should be pure text: %s", got)
	}
}

func TestTemplatePriorityAndOrder(t *testing.T) {
	// More specific pattern (priority 0.5) beats name test (0).
	out := transform(t, wrap(`
		<xsl:template match="a/b">SPECIFIC</xsl:template>
		<xsl:template match="b">GENERIC</xsl:template>
		<xsl:template match="a"><xsl:apply-templates/></xsl:template>
	`), `<a><b/></a>`)
	if norm(out) != "SPECIFIC" {
		t.Fatalf("priority resolution wrong: %q", out)
	}
	// Equal priority: last template wins.
	out = transform(t, wrap(`
		<xsl:template match="b">FIRST</xsl:template>
		<xsl:template match="b">SECOND</xsl:template>
		<xsl:template match="a"><xsl:apply-templates/></xsl:template>
	`), `<a><b/></a>`)
	if norm(out) != "SECOND" {
		t.Fatalf("document-order tie break wrong: %q", out)
	}
	// Explicit priority overrides default.
	out = transform(t, wrap(`
		<xsl:template match="a/b">SPECIFIC</xsl:template>
		<xsl:template match="b" priority="1">FORCED</xsl:template>
		<xsl:template match="a"><xsl:apply-templates/></xsl:template>
	`), `<a><b/></a>`)
	if norm(out) != "FORCED" {
		t.Fatalf("explicit priority wrong: %q", out)
	}
}

func TestModes(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="/"><xsl:apply-templates select="r/x"/>|<xsl:apply-templates select="r/x" mode="alt"/></xsl:template>
		<xsl:template match="x">plain</xsl:template>
		<xsl:template match="x" mode="alt">alternate</xsl:template>
	`), `<r><x/></r>`)
	if norm(out) != "plain|alternate" {
		t.Fatalf("modes wrong: %q", out)
	}
}

func TestForEachAndSort(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="/">
			<xsl:for-each select="//n"><xsl:sort data-type="number"/><v><xsl:value-of select="."/></v></xsl:for-each>
		</xsl:template>
	`), `<r><n>10</n><n>2</n><n>33</n><n>1</n></r>`)
	if norm(out) != "<v>1</v><v>2</v><v>10</v><v>33</v>" {
		t.Fatalf("numeric sort wrong: %q", out)
	}
	out = transform(t, wrap(`
		<xsl:template match="/">
			<xsl:for-each select="//n"><xsl:sort/><v><xsl:value-of select="."/></v></xsl:for-each>
		</xsl:template>
	`), `<r><n>10</n><n>2</n></r>`)
	if norm(out) != "<v>10</v><v>2</v>" {
		t.Fatalf("string sort wrong: %q", out)
	}
	out = transform(t, wrap(`
		<xsl:template match="/">
			<xsl:for-each select="//e"><xsl:sort select="@k" order="descending"/><xsl:value-of select="@k"/></xsl:for-each>
		</xsl:template>
	`), `<r><e k="a"/><e k="c"/><e k="b"/></r>`)
	if norm(out) != "cba" {
		t.Fatalf("descending sort wrong: %q", out)
	}
}

func TestIfAndChoose(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="n">
			<xsl:choose>
				<xsl:when test=". &gt; 100">big</xsl:when>
				<xsl:when test=". &gt; 10">medium</xsl:when>
				<xsl:otherwise>small</xsl:otherwise>
			</xsl:choose>
			<xsl:if test=". = 5">|five</xsl:if>
		</xsl:template>
		<xsl:template match="/"><xsl:apply-templates select="//n"/></xsl:template>
	`), `<r><n>500</n><n>50</n><n>5</n></r>`)
	if norm(out) != "bigmediumsmall|five" {
		t.Fatalf("choose/if wrong: %q", out)
	}
}

func TestVariablesAndParams(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:variable name="greeting" select="'hello'"/>
		<xsl:template match="/">
			<xsl:variable name="who" select="string(//name)"/>
			<xsl:value-of select="concat($greeting, ' ', $who)"/>
		</xsl:template>
	`), `<r><name>world</name></r>`)
	if norm(out) != "hello world" {
		t.Fatalf("variables wrong: %q", out)
	}
}

func TestCallTemplateWithParams(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template name="greet">
			<xsl:param name="name" select="'nobody'"/>
			<xsl:param name="punct">!</xsl:param>
			[<xsl:value-of select="$name"/><xsl:value-of select="$punct"/>]
		</xsl:template>
		<xsl:template match="/">
			<xsl:call-template name="greet"><xsl:with-param name="name" select="'alice'"/></xsl:call-template>
			<xsl:call-template name="greet"/>
		</xsl:template>
	`), `<r/>`)
	if norm(out) != "[alice!] [nobody!]" {
		t.Fatalf("call-template wrong: %q", out)
	}
}

func TestApplyTemplatesWithParam(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="/"><xsl:apply-templates select="//x"><xsl:with-param name="p" select="'P'"/></xsl:apply-templates></xsl:template>
		<xsl:template match="x"><xsl:param name="p" select="'default'"/><xsl:value-of select="$p"/></xsl:template>
	`), `<r><x/><x/></r>`)
	if norm(out) != "PP" {
		t.Fatalf("apply-templates with-param wrong: %q", out)
	}
}

func TestAVT(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="e"><td width="{@w}px" label="{{literal}}">x</td></xsl:template>
		<xsl:template match="/"><xsl:apply-templates select="//e"/></xsl:template>
	`), `<r><e w="42"/></r>`)
	if !strings.Contains(out, `width="42px"`) || !strings.Contains(out, `label="{literal}"`) {
		t.Fatalf("AVT wrong: %q", out)
	}
}

func TestMakeElementAttribute(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="e">
			<xsl:element name="{@tag}">
				<xsl:attribute name="id">v<xsl:value-of select="@n"/></xsl:attribute>
				body
			</xsl:element>
		</xsl:template>
		<xsl:template match="/"><xsl:apply-templates select="//e"/></xsl:template>
	`), `<r><e tag="item" n="7"/></r>`)
	if norm(out) != `<item id="v7"> body </item>` && norm(out) != `<item id="v7">body</item>` {
		t.Fatalf("element/attribute wrong: %q", norm(out))
	}
}

func TestCopyAndCopyOf(t *testing.T) {
	// Identity transformation via xsl:copy.
	identity := wrap(`
		<xsl:template match="@*|node()">
			<xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy>
		</xsl:template>
	`)
	in := `<a x="1"><b>text<c/></b><!--cm--></a>`
	out := transform(t, identity, in)
	if norm(out) != norm(in) {
		t.Fatalf("identity copy wrong:\n got %q\nwant %q", norm(out), norm(in))
	}
	// copy-of deep copies a selected subtree.
	out = transform(t, wrap(`
		<xsl:template match="/"><xsl:copy-of select="//b"/></xsl:template>
	`), in)
	if norm(out) != "<b>text<c/></b>" {
		t.Fatalf("copy-of wrong: %q", out)
	}
	// copy-of of a scalar emits text.
	out = transform(t, wrap(`
		<xsl:template match="/"><xsl:copy-of select="1 + 2"/></xsl:template>
	`), in)
	if norm(out) != "3" {
		t.Fatalf("copy-of scalar wrong: %q", out)
	}
}

func TestTextAndWhitespaceHandling(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="/">
			<xsl:text>  kept  </xsl:text>
		</xsl:template>
	`), `<r/>`)
	if out != "  kept  " {
		t.Fatalf("xsl:text wrong: %q", out)
	}
}

func TestCommentAndPIOutput(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="/">
			<xsl:comment>note <xsl:value-of select="name(r)"/></xsl:comment>
			<xsl:processing-instruction name="target">data</xsl:processing-instruction>
		</xsl:template>
	`), `<r/>`)
	if !strings.Contains(out, "<!--note r-->") || !strings.Contains(out, "<?target data?>") {
		t.Fatalf("comment/PI wrong: %q", out)
	}
}

func TestNumberInstruction(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="i"><xsl:number/>:<xsl:value-of select="."/><xsl:text> </xsl:text></xsl:template>
		<xsl:template match="/"><xsl:apply-templates select="//i"/></xsl:template>
	`), `<r><i>a</i><x/><i>b</i><i>c</i></r>`)
	if norm(out) != "1:a 2:b 3:c" {
		t.Fatalf("xsl:number wrong: %q", out)
	}
	out = transform(t, wrap(`
		<xsl:template match="/"><xsl:number value="2 * 21"/></xsl:template>
	`), `<r/>`)
	if norm(out) != "42" {
		t.Fatalf("xsl:number value wrong: %q", out)
	}
}

func TestVariableResultTreeFragment(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:template match="/">
			<xsl:variable name="rtf"><x>alpha</x><y>beta</y></xsl:variable>
			[<xsl:value-of select="$rtf"/>]
			<xsl:copy-of select="$rtf"/>
		</xsl:template>
	`), `<r/>`)
	if !strings.Contains(out, "[alphabeta]") || !strings.Contains(out, "<x>alpha</x><y>beta</y>") {
		t.Fatalf("RTF wrong: %q", out)
	}
}

func TestMessages(t *testing.T) {
	sheet := MustParseStylesheet(wrap(`
		<xsl:template match="/"><xsl:message>saw <xsl:value-of select="name(*)"/></xsl:message>ok</xsl:template>
	`))
	doc, _ := xmltree.Parse(`<root/>`)
	eng := New(sheet)
	out, err := eng.TransformToString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "ok" || len(eng.Messages) != 1 || eng.Messages[0] != "saw root" {
		t.Fatalf("message wrong: out=%q msgs=%v", out, eng.Messages)
	}
	// terminate="yes" aborts.
	sheet2 := MustParseStylesheet(wrap(`
		<xsl:template match="/"><xsl:message terminate="yes">fatal</xsl:message></xsl:template>
	`))
	if _, err := New(sheet2).TransformToString(doc); err == nil {
		t.Fatal("terminate should abort")
	}
}

func TestInfiniteRecursionCaught(t *testing.T) {
	sheet := MustParseStylesheet(wrap(`
		<xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>
		<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
	`))
	doc, _ := xmltree.Parse(`<r/>`)
	if _, err := New(sheet).TransformToString(doc); err == nil {
		t.Fatal("infinite recursion should be caught")
	}
}

func TestRecursiveTemplateTerminates(t *testing.T) {
	// A legitimate recursive walk over a nested list.
	out := transform(t, wrap(`
		<xsl:template match="item"><i><xsl:value-of select="@v"/><xsl:apply-templates select="item"/></i></xsl:template>
		<xsl:template match="/"><xsl:apply-templates select="/item"/></xsl:template>
	`), `<item v="1"><item v="2"><item v="3"/></item></item>`)
	if norm(out) != "<i>1<i>2<i>3</i></i></i>" {
		t.Fatalf("recursion wrong: %q", out)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`<notstylesheet/>`,
		wrap(`<xsl:template>no match or name</xsl:template>`),
		wrap(`<xsl:template match="][">bad</xsl:template>`),
		wrap(`<xsl:template match="/"><xsl:value-of/></xsl:template>`),
		wrap(`<xsl:template match="/"><xsl:if>no test</xsl:if></xsl:template>`),
		wrap(`<xsl:template match="/"><xsl:choose><xsl:otherwise/></xsl:choose></xsl:template>`),
		wrap(`<xsl:template match="/"><xsl:unknown/></xsl:template>`),
		wrap(`<xsl:template match="/"><xsl:call-template/></xsl:template>`),
		wrap(`<xsl:import href="x"/>`),
		wrap(`<xsl:template match="/" priority="abc">x</xsl:template>`),
	}
	for _, src := range bad {
		if _, err := ParseStylesheet(src); err == nil {
			t.Errorf("ParseStylesheet should fail for %q", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	doc, _ := xmltree.Parse(`<r/>`)
	// Unknown named template.
	sheet := MustParseStylesheet(wrap(`<xsl:template match="/"><xsl:call-template name="missing"/></xsl:template>`))
	if _, err := New(sheet).TransformToString(doc); err == nil {
		t.Fatal("missing named template should error")
	}
	// Undefined variable.
	sheet = MustParseStylesheet(wrap(`<xsl:template match="/"><xsl:value-of select="$nope"/></xsl:template>`))
	if _, err := New(sheet).TransformToString(doc); err == nil {
		t.Fatal("undefined variable should error")
	}
	// Attribute after content.
	sheet = MustParseStylesheet(wrap(`<xsl:template match="/"><e>txt<xsl:attribute name="late">v</xsl:attribute></e></xsl:template>`))
	if _, err := New(sheet).TransformToString(doc); err == nil {
		t.Fatal("attribute after content should error")
	}
}

func TestUnionMatchExpansion(t *testing.T) {
	sheet := MustParseStylesheet(wrap(`<xsl:template match="a | b">x</xsl:template>`))
	if len(sheet.Templates) != 2 {
		t.Fatalf("union should expand to 2 templates, got %d", len(sheet.Templates))
	}
	out := transform(t, wrap(`
		<xsl:template match="a | b">[<xsl:value-of select="name()"/>]</xsl:template>
		<xsl:template match="/"><xsl:apply-templates select="//a | //b"/></xsl:template>
	`), `<r><a/><b/></r>`)
	if norm(out) != "[a][b]" {
		t.Fatalf("union match wrong: %q", out)
	}
}

func TestModeScopedBuiltins(t *testing.T) {
	// Built-in rules preserve the current mode while descending.
	out := transform(t, wrap(`
		<xsl:template match="/"><xsl:apply-templates mode="m"/></xsl:template>
		<xsl:template match="deep" mode="m">FOUND</xsl:template>
	`), `<r><mid><deep/></mid></r>`)
	if norm(out) != "FOUND" {
		t.Fatalf("mode propagation through builtins wrong: %q", out)
	}
}

func TestGlobalParamOverridableLocally(t *testing.T) {
	out := transform(t, wrap(`
		<xsl:param name="threshold" select="2000"/>
		<xsl:template match="/"><xsl:value-of select="count(//sal[. > $threshold])"/></xsl:template>
	`), PaperDeptRow1)
	if norm(out) != "1" {
		t.Fatalf("global param wrong: %q", out)
	}
}

func TestOutputMethodParsed(t *testing.T) {
	sheet := MustParseStylesheet(wrap(`<xsl:output method="html"/><xsl:template match="/">x</xsl:template>`))
	if sheet.OutputMethod != "html" {
		t.Fatalf("OutputMethod = %q", sheet.OutputMethod)
	}
}

// TestXslKeyLookup exercises xsl:key + key(): group employees by region.
func TestXslKeyLookup(t *testing.T) {
	sheet := wrap(`
		<xsl:key name="by-region" match="emp" use="region"/>
		<xsl:template match="/">
			<east><xsl:for-each select="key('by-region', 'EAST')"><e><xsl:value-of select="name"/></e></xsl:for-each></east>
			<west n="{count(key('by-region', 'WEST'))}"/>
		</xsl:template>
	`)
	in := `<staff>` +
		`<emp><name>A</name><region>EAST</region></emp>` +
		`<emp><name>B</name><region>WEST</region></emp>` +
		`<emp><name>C</name><region>EAST</region></emp>` +
		`</staff>`
	out := transform(t, sheet, in)
	if norm(out) != `<east><e>A</e><e>C</e></east><west n="1"/>` {
		t.Fatalf("key lookup wrong: %q", norm(out))
	}
}

func TestXslKeyNodeSetValue(t *testing.T) {
	// key() with a node-set value argument unions the lookups.
	sheet := wrap(`
		<xsl:key name="k" match="item" use="@cat"/>
		<xsl:template match="/">
			<xsl:for-each select="key('k', //want)"><i><xsl:value-of select="."/></i></xsl:for-each>
		</xsl:template>
	`)
	in := `<r><item cat="a">1</item><item cat="b">2</item><item cat="c">3</item><want>a</want><want>c</want></r>`
	out := transform(t, sheet, in)
	if norm(out) != "<i>1</i><i>3</i>" {
		t.Fatalf("node-set key value wrong: %q", out)
	}
}

func TestXslKeyErrors(t *testing.T) {
	// Unknown key name is a runtime error.
	sheet := MustParseStylesheet(wrap(`<xsl:template match="/"><xsl:value-of select="count(key('nope', 'x'))"/></xsl:template>`))
	doc, _ := xmltree.Parse(`<r/>`)
	if _, err := New(sheet).TransformToString(doc); err == nil {
		t.Fatal("unknown key should error")
	}
	// Malformed declarations are compile errors.
	for _, bad := range []string{
		wrap(`<xsl:key match="x" use="."/>`),
		wrap(`<xsl:key name="k" use="."/>`),
		wrap(`<xsl:key name="k" match="x"/>`),
		wrap(`<xsl:key name="k" match="][" use="."/>`),
		wrap(`<xsl:key name="k" match="x" use="]["/>`),
	} {
		if _, err := ParseStylesheet(bad); err == nil {
			t.Errorf("ParseStylesheet should reject %q", bad)
		}
	}
}

func TestGenerateID(t *testing.T) {
	sheet := wrap(`
		<xsl:template match="/">
			<a><xsl:value-of select="generate-id(//x) = generate-id(//x)"/></a>
			<b><xsl:value-of select="generate-id(//x) = generate-id(//y)"/></b>
			<c><xsl:value-of select="string-length(generate-id()) > 0"/></c>
		</xsl:template>
	`)
	out := transform(t, sheet, `<r><x/><y/></r>`)
	if norm(out) != "<a>true</a><b>false</b><c>true</c>" {
		t.Fatalf("generate-id wrong: %q", out)
	}
}

// TestStripSpace exercises xsl:strip-space / xsl:preserve-space: with
// strip-space="*", whitespace-formatted input produces the same output as
// compact input.
func TestStripSpace(t *testing.T) {
	sheet := wrap(`
		<xsl:strip-space elements="*"/>
		<xsl:preserve-space elements="keep"/>
		<xsl:template match="text()"><t><xsl:value-of select="."/></t></xsl:template>
	`)
	out := transform(t, sheet, "<r>\n  <a>x</a>\n  <keep>  </keep>\n</r>")
	// Whitespace under r is stripped; "x" and keep's spaces survive.
	if out != "<t>x</t><t>  </t>" {
		t.Fatalf("strip-space wrong: %q", out)
	}
	// Named strip list.
	sheet2 := wrap(`
		<xsl:strip-space elements="r"/>
		<xsl:template match="text()"><t><xsl:value-of select="."/></t></xsl:template>
	`)
	out2 := transform(t, sheet2, "<r>\n<a> </a>\n</r>")
	if out2 != "<t> </t>" {
		t.Fatalf("named strip wrong: %q", out2)
	}
	// The input document itself must not be mutated.
	doc, _ := xmltree.Parse("<r>\n<a>x</a>\n</r>")
	s := MustParseStylesheet(sheet)
	if _, err := New(s).Transform(doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.DocumentElement().Children) != 3 {
		t.Fatal("source document was mutated by strip-space")
	}
	// Missing elements attribute is a compile error.
	if _, err := ParseStylesheet(wrap(`<xsl:strip-space/>`)); err == nil {
		t.Fatal("strip-space without elements should fail")
	}
}

// TestStripSpaceAlignsWithRewrite: with strip-space="*", the functional
// baseline over whitespace-formatted input equals the output over compact
// input — exactly what the schema-specialized rewrite assumes.
func TestStripSpaceAlignsWithRewrite(t *testing.T) {
	stripSheet := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:strip-space elements="*"/>` + PaperStylesheet[len(`<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">`):]
	formatted := transform(t, stripSheet, PaperDeptRow1) // input has newlines
	compactIn := norm(PaperDeptRow1)
	compact := transform(t, stripSheet, compactIn)
	if formatted != compact {
		t.Fatalf("strip-space should make formatting irrelevant:\n a: %q\n b: %q", formatted, compact)
	}
}

// TestXslInclude exercises xsl:include with a resolver: included templates
// merge at the inclusion point and nested includes work; cycles fail.
func TestXslInclude(t *testing.T) {
	library := map[string]string{
		"rows.xsl": wrap(`<xsl:template match="row"><r><xsl:value-of select="."/></r></xsl:template>`),
		"nested.xsl": `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
			<xsl:include href="rows.xsl"/>
			<xsl:template match="extra"><e/></xsl:template>
		</xsl:stylesheet>`,
		"cycle.xsl": `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
			<xsl:include href="cycle.xsl"/>
		</xsl:stylesheet>`,
	}
	resolve := func(href string) (string, error) {
		src, ok := library[href]
		if !ok {
			return "", fmt.Errorf("no %q", href)
		}
		return src, nil
	}
	main := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
		<xsl:include href="nested.xsl"/>
		<xsl:template match="table"><out><xsl:apply-templates select="row"/></out></xsl:template>
	</xsl:stylesheet>`
	sheet, err := ParseStylesheetWithResolver(main, resolve)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.Parse(`<table><row>1</row><row>2</row></table>`)
	out, err := New(sheet).TransformToString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if norm(out) != "<out><r>1</r><r>2</r></out>" {
		t.Fatalf("include wrong: %q", out)
	}
	// Cycles are rejected.
	cyclic := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:include href="cycle.xsl"/></xsl:stylesheet>`
	if _, err := ParseStylesheetWithResolver(cyclic, resolve); err == nil {
		t.Fatal("inclusion cycle should fail")
	}
	// Missing resolver / unknown href fail.
	if _, err := ParseStylesheet(main); err == nil {
		t.Fatal("include without resolver should fail")
	}
	bad := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:include href="zzz.xsl"/></xsl:stylesheet>`
	if _, err := ParseStylesheetWithResolver(bad, resolve); err == nil {
		t.Fatal("unknown href should fail")
	}
}
