package xslt

// MustParseStylesheet is a test-only helper: the production API returns
// errors; tests with compiled-in stylesheets use this and treat a parse
// failure as a bug.
func MustParseStylesheet(src string) *Stylesheet {
	s, err := ParseStylesheet(src)
	if err != nil {
		panic(err)
	}
	return s
}
