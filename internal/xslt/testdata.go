package xslt

// Paper fixtures shared across the repository's tests: the Example 1
// stylesheet (Table 5) and the dept_emp rows (Table 4).

// PaperStylesheet is the XSLT stylesheet of paper Table 5, which renders
// highly paid employees (sal > 2000) of a department as HTML.
const PaperStylesheet = `<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td>
<td><b>Name</b></td>
<td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal > 2000]"/>
</table>
</xsl:template>
<xsl:template match="emp">
<tr>
<td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td>
</tr>
</xsl:template>
<xsl:template match="text()">
<xsl:value-of select="."/>
</xsl:template>
</xsl:stylesheet>`

// PaperDeptRow1 is the first XMLType row of Table 4 (ACCOUNTING).
const PaperDeptRow1 = `<dept>
<dname>ACCOUNTING</dname>
<loc>NEW YORK</loc>
<employees>
<emp>
<empno>7782</empno>
<ename>CLARK</ename>
<sal>2450</sal>
</emp>
<emp>
<empno>7934</empno>
<ename>MILLER</ename>
<sal>1300</sal>
</emp>
</employees>
</dept>`

// PaperDeptRow2 is the second XMLType row of Table 4 (OPERATIONS).
const PaperDeptRow2 = `<dept>
<dname>OPERATIONS</dname>
<loc>BOSTON</loc>
<employees>
<emp>
<empno>7954</empno>
<ename>SMITH</ename>
<sal>4900</sal>
</emp>
</employees>
</dept>`
