package xslt

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/governor"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Engine executes a stylesheet functionally over a DOM tree. This is the
// paper's "XSLT no rewrite" evaluation path.
type Engine struct {
	sheet *Stylesheet

	// MaxDepth bounds template/instruction recursion; exceeded depth is a
	// runtime error rather than a stack overflow.
	MaxDepth int

	// Messages collects the output of xsl:message instructions.
	Messages []string

	// Trace, when non-nil, is invoked for every template instantiation
	// caused by apply-templates; used by the partial evaluator.
	Trace func(ev TraceEvent)

	// Runtime resolves key() and generate-id().
	Runtime *RuntimeFuncs

	// gov, when non-nil, bounds the transformation (cancellation and
	// resource budgets); set it with Govern.
	gov *governor.G

	// templatesApplied counts template-rule instantiations (built-in rules
	// included); TemplatesApplied exposes it to the observability layer.
	templatesApplied atomic.Int64
}

// TemplatesApplied returns the number of template rules instantiated so far
// by this engine — a work measure the trace layer records per run.
func (e *Engine) TemplatesApplied() int64 { return e.templatesApplied.Load() }

// TraceEvent describes one template instantiation observed during a
// transformation.
type TraceEvent struct {
	// TraceID is the ApplyTemplates instruction's trace id (-1 for the
	// initial root application).
	TraceID int
	// Node is the context node that activated the template.
	Node *xmltree.Node
	// Template is the activated template; nil when a built-in rule ran.
	Template *Template
	// Builtin is set when a built-in template rule handled the node.
	Builtin bool
}

// defaultMaxDepth bounds template recursion when no override is set.
const defaultMaxDepth = 1024

// New returns an Engine for the stylesheet.
func New(sheet *Stylesheet) *Engine {
	return &Engine{sheet: sheet, MaxDepth: defaultMaxDepth, Runtime: NewRuntimeFuncs(sheet)}
}

// Govern attaches an execution governor (may be nil) and adopts its
// recursion bound; it returns e for chaining. A governed engine checks for
// cancellation and budget exhaustion on every template instantiation.
func (e *Engine) Govern(g *governor.G) *Engine {
	e.gov = g
	e.MaxDepth = g.MaxDepth(defaultMaxDepth)
	return e
}

// Stylesheet returns the engine's stylesheet.
func (e *Engine) Stylesheet() *Stylesheet { return e.sheet }

// RuntimeError reports a dynamic error during a transformation.
type RuntimeError struct {
	Where string
	Err   error
}

func (r *RuntimeError) Error() string {
	return fmt.Sprintf("xslt: runtime error in %s: %v", r.Where, r.Err)
}

func (r *RuntimeError) Unwrap() error { return r.Err }

// frame is the per-transformation execution state.
type frame struct {
	engine *Engine
	out    *OutputBuilder
	// vars is the chain of in-scope variable bindings (innermost last).
	vars  []map[string]xpath.Value
	depth int
}

// Transform applies the stylesheet to doc (usually a document node) and
// returns the result tree as a document fragment node.
func (e *Engine) Transform(doc *xmltree.Node) (*xmltree.Node, error) {
	doc = e.sheet.StripSourceSpace(doc)
	f := &frame{engine: e, out: NewOutputBuilder()}
	f.pushScope()
	if err := f.bindGlobals(doc); err != nil {
		return nil, err
	}
	if err := f.applyTemplates([]*xmltree.Node{doc}, "", nil, -1); err != nil {
		return nil, err
	}
	result := f.out.Finish()
	result.Renumber()
	return result, nil
}

// TransformToString applies the stylesheet and serializes the result
// fragment without an XML declaration.
func (e *Engine) TransformToString(doc *xmltree.Node) (string, error) {
	frag, err := e.Transform(doc)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	frag.Serialize(&sb, xmltree.SerializeOptions{OmitDecl: true})
	return sb.String(), nil
}

func (f *frame) bindGlobals(doc *xmltree.Node) error {
	for _, def := range f.engine.sheet.GlobalVars {
		v, err := f.evalVarDef(def, doc)
		if err != nil {
			return err
		}
		f.bind(def.Name, v)
	}
	return nil
}

func (f *frame) pushScope() { f.vars = append(f.vars, map[string]xpath.Value{}) }
func (f *frame) popScope()  { f.vars = f.vars[:len(f.vars)-1] }
func (f *frame) bind(name string, v xpath.Value) {
	f.vars[len(f.vars)-1][name] = v
}

// LookupVar implements xpath.Variables over the scope chain.
func (f *frame) LookupVar(name string) (xpath.Value, bool) {
	for i := len(f.vars) - 1; i >= 0; i-- {
		if v, ok := f.vars[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (f *frame) xpathContext(node *xmltree.Node, pos, size int) *xpath.Context {
	ctx := &xpath.Context{Node: node, Position: pos, Size: size, Vars: f}
	if f.engine.Runtime != nil {
		ctx.Funcs = f.engine.Runtime.Resolve
	}
	return ctx
}

func (f *frame) enter(where string) error {
	if err := f.engine.gov.Tick(); err != nil {
		return err
	}
	f.depth++
	if f.depth > f.engine.MaxDepth {
		return &RuntimeError{Where: where, Err: fmt.Errorf("%w: recursion deeper than %d (infinite template recursion?)", governor.ErrRecursionLimit, f.engine.MaxDepth)}
	}
	return nil
}

func (f *frame) leave() { f.depth-- }

// applyTemplates selects nodes (nil selectExpr = child::node()), sorts them,
// and instantiates the best-matching template for each.
func (f *frame) applyTemplates(nodes []*xmltree.Node, mode string, sorts []SortKey, traceID int) error {
	for i, node := range nodes {
		if err := f.applyOne(node, mode, i+1, len(nodes), traceID); err != nil {
			return err
		}
	}
	return nil
}

func (f *frame) applyOne(node *xmltree.Node, mode string, pos, size int, traceID int) error {
	if err := f.enter("apply-templates"); err != nil {
		return err
	}
	defer f.leave()

	tmpl, err := f.engine.FindTemplate(node, mode, f)
	if err != nil {
		return err
	}
	f.engine.templatesApplied.Add(1)
	if f.engine.Trace != nil {
		f.engine.Trace(TraceEvent{TraceID: traceID, Node: node, Template: tmpl, Builtin: tmpl == nil})
	}
	if tmpl == nil {
		return f.builtinRule(node, mode)
	}
	return f.instantiate(tmpl, node, pos, size, nil)
}

// FindTemplate returns the highest-priority template matching node in mode,
// or nil when only the built-in rules apply (conflict resolution per XSLT
// 1.0 §5.5: priority first, then document order).
func (e *Engine) FindTemplate(node *xmltree.Node, mode string, vars xpath.Variables) (*Template, error) {
	var best *Template
	for _, t := range e.sheet.Templates {
		if t.Match == nil || t.Mode != mode {
			continue
		}
		ok, err := t.Match.Matches(node, vars)
		if err != nil {
			return nil, &RuntimeError{Where: t.String(), Err: err}
		}
		if !ok {
			continue
		}
		if best == nil || t.Priority > best.Priority ||
			(t.Priority == best.Priority && t.Index > best.Index) {
			best = t
		}
	}
	return best, nil
}

// builtinRule implements the XSLT 1.0 built-in template rules.
func (f *frame) builtinRule(node *xmltree.Node, mode string) error {
	switch node.Kind {
	case xmltree.DocumentNode, xmltree.ElementNode:
		return f.applyTemplates(node.Children, mode, nil, -1)
	case xmltree.TextNode, xmltree.AttributeNode:
		f.out.Text(node.StringValue())
	}
	// Comments and PIs: built-in rule produces nothing.
	return nil
}

func (f *frame) instantiate(t *Template, node *xmltree.Node, pos, size int, withParams map[string]xpath.Value) error {
	f.pushScope()
	defer f.popScope()
	for _, p := range t.Params {
		if v, ok := withParams[p.Name]; ok {
			f.bind(p.Name, v)
			continue
		}
		v, err := f.evalVarDef(p, node)
		if err != nil {
			return err
		}
		f.bind(p.Name, v)
	}
	return f.execSeq(t.Body, node, pos, size)
}

func (f *frame) execSeq(body []Instruction, node *xmltree.Node, pos, size int) error {
	f.pushScope() // xsl:variable scope covers following siblings
	defer f.popScope()
	for _, instr := range body {
		if err := f.exec(instr, node, pos, size); err != nil {
			return err
		}
	}
	return nil
}

func (f *frame) exec(instr Instruction, node *xmltree.Node, pos, size int) error {
	// Amortized governance check per instruction: covers xsl:for-each
	// bodies and long literal sequences that never instantiate a template.
	if err := f.engine.gov.Tick(); err != nil {
		return err
	}
	ctx := f.xpathContext(node, pos, size)
	switch in := instr.(type) {
	case *Text:
		f.out.Text(in.Data)

	case *MakeText:
		f.out.Text(in.Data)

	case *ValueOf:
		v, err := xpath.Eval(in.Select, ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:value-of", Err: err}
		}
		f.out.Text(xpath.ToString(v))

	case *LiteralElement:
		f.out.OpenElement(in.QName)
		for _, a := range in.Attrs {
			val, err := a.Value.Eval(ctx)
			if err != nil {
				return &RuntimeError{Where: "attribute value template", Err: err}
			}
			f.out.Attr(a.QName, val)
		}
		if err := f.execSeq(in.Body, node, pos, size); err != nil {
			return err
		}
		f.out.CloseElement()

	case *MakeElement:
		name, err := in.Name.Eval(ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:element", Err: err}
		}
		f.out.OpenElement(name)
		if err := f.execSeq(in.Body, node, pos, size); err != nil {
			return err
		}
		f.out.CloseElement()

	case *MakeAttribute:
		name, err := in.Name.Eval(ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:attribute", Err: err}
		}
		val, err := f.evalToString(in.Body, node, pos, size)
		if err != nil {
			return err
		}
		if err := f.out.Attr(name, val); err != nil {
			return &RuntimeError{Where: "xsl:attribute", Err: err}
		}

	case *MakeComment:
		val, err := f.evalToString(in.Body, node, pos, size)
		if err != nil {
			return err
		}
		f.out.Comment(val)

	case *MakePI:
		name, err := in.Name.Eval(ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:processing-instruction", Err: err}
		}
		val, err := f.evalToString(in.Body, node, pos, size)
		if err != nil {
			return err
		}
		f.out.PI(name, val)

	case *ApplyTemplates:
		selected, err := f.selectNodes(in.Select, ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:apply-templates", Err: err}
		}
		if len(in.Sorts) > 0 {
			selected, err = f.sortNodes(selected, in.Sorts, ctx)
			if err != nil {
				return err
			}
		}
		// with-param values are evaluated in the caller's context.
		if len(in.Params) > 0 {
			wp, err := f.evalWithParams(in.Params, node)
			if err != nil {
				return err
			}
			return f.applyWithParams(selected, in.Mode, wp, in.TraceID)
		}
		return f.applyTemplates(selected, in.Mode, nil, in.TraceID)

	case *CallTemplate:
		var target *Template
		for _, t := range f.engine.sheet.Templates {
			if t.Name == in.Name {
				target = t
				break
			}
		}
		if target == nil {
			return &RuntimeError{Where: "xsl:call-template", Err: fmt.Errorf("no template named %q", in.Name)}
		}
		wp, err := f.evalWithParams(in.Params, node)
		if err != nil {
			return err
		}
		if err := f.enter("call-template " + in.Name); err != nil {
			return err
		}
		defer f.leave()
		return f.instantiate(target, node, pos, size, wp)

	case *ForEach:
		selected, err := xpath.EvalNodeSet(in.Select, ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:for-each", Err: err}
		}
		nodes := []*xmltree.Node(selected)
		if len(in.Sorts) > 0 {
			nodes, err = f.sortNodes(nodes, in.Sorts, ctx)
			if err != nil {
				return err
			}
		}
		for i, n := range nodes {
			if err := f.execSeq(in.Body, n, i+1, len(nodes)); err != nil {
				return err
			}
		}

	case *If:
		v, err := xpath.Eval(in.Test, ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:if", Err: err}
		}
		if xpath.ToBool(v) {
			return f.execSeq(in.Body, node, pos, size)
		}

	case *Choose:
		for _, w := range in.Whens {
			v, err := xpath.Eval(w.Test, ctx)
			if err != nil {
				return &RuntimeError{Where: "xsl:when", Err: err}
			}
			if xpath.ToBool(v) {
				return f.execSeq(w.Body, node, pos, size)
			}
		}
		return f.execSeq(in.Otherwise, node, pos, size)

	case *Copy:
		switch node.Kind {
		case xmltree.ElementNode:
			f.out.OpenElement(node.QName())
			if err := f.execSeq(in.Body, node, pos, size); err != nil {
				return err
			}
			f.out.CloseElement()
		case xmltree.TextNode:
			f.out.Text(node.Data)
		case xmltree.AttributeNode:
			if err := f.out.Attr(node.QName(), node.Data); err != nil {
				return &RuntimeError{Where: "xsl:copy", Err: err}
			}
		case xmltree.CommentNode:
			f.out.Comment(node.Data)
		case xmltree.ProcInstNode:
			f.out.PI(node.Name, node.Data)
		case xmltree.DocumentNode:
			return f.execSeq(in.Body, node, pos, size)
		}

	case *CopyOf:
		v, err := xpath.Eval(in.Select, ctx)
		if err != nil {
			return &RuntimeError{Where: "xsl:copy-of", Err: err}
		}
		if ns, ok := v.(xpath.NodeSet); ok {
			for _, n := range ns {
				f.out.CopyNode(n)
			}
		} else {
			f.out.Text(xpath.ToString(v))
		}

	case *DeclareVar:
		v, err := f.evalVarDef(in.Def, node)
		if err != nil {
			return err
		}
		f.bind(in.Def.Name, v)

	case *NumberInstr:
		if in.Value != nil {
			v, err := xpath.Eval(in.Value, ctx)
			if err != nil {
				return &RuntimeError{Where: "xsl:number", Err: err}
			}
			f.out.Text(xpath.NumberToString(xpath.ToNumber(v)))
			return nil
		}
		// level="single", default count pattern: position among preceding
		// siblings with the same name, plus one.
		n := 1
		if p := node.Parent; p != nil {
			for _, sib := range p.Children {
				if sib == node {
					break
				}
				if sib.Kind == node.Kind && sib.Name == node.Name {
					n++
				}
			}
		}
		f.out.Text(fmt.Sprintf("%d", n))

	case *Message:
		val, err := f.evalToString(in.Body, node, pos, size)
		if err != nil {
			return err
		}
		f.engine.Messages = append(f.engine.Messages, val)
		if in.Terminate {
			return &RuntimeError{Where: "xsl:message", Err: fmt.Errorf("terminated: %s", val)}
		}

	default:
		return &RuntimeError{Where: "exec", Err: fmt.Errorf("unhandled instruction %T", instr)}
	}
	return nil
}

// selectNodes evaluates an apply-templates select (nil = child::node()).
func (f *frame) selectNodes(sel xpath.Expr, ctx *xpath.Context) ([]*xmltree.Node, error) {
	if sel == nil {
		return ctx.Node.Children, nil
	}
	ns, err := xpath.EvalNodeSet(sel, ctx)
	if err != nil {
		return nil, err
	}
	return ns, nil
}

func (f *frame) applyWithParams(nodes []*xmltree.Node, mode string, wp map[string]xpath.Value, traceID int) error {
	for i, node := range nodes {
		if err := f.enter("apply-templates"); err != nil {
			return err
		}
		tmpl, err := f.engine.FindTemplate(node, mode, f)
		if err != nil {
			f.leave()
			return err
		}
		if f.engine.Trace != nil {
			f.engine.Trace(TraceEvent{TraceID: traceID, Node: node, Template: tmpl, Builtin: tmpl == nil})
		}
		if tmpl == nil {
			err = f.builtinRule(node, mode)
		} else {
			err = f.instantiate(tmpl, node, i+1, len(nodes), wp)
		}
		f.leave()
		if err != nil {
			return err
		}
	}
	return nil
}

func (f *frame) evalWithParams(defs []*VarDef, node *xmltree.Node) (map[string]xpath.Value, error) {
	if len(defs) == 0 {
		return nil, nil
	}
	wp := make(map[string]xpath.Value, len(defs))
	for _, def := range defs {
		v, err := f.evalVarDef(def, node)
		if err != nil {
			return nil, err
		}
		wp[def.Name] = v
	}
	return wp, nil
}

// evalVarDef computes the value of a variable/param definition: select
// expression, result tree fragment from the body, or empty string.
func (f *frame) evalVarDef(def *VarDef, node *xmltree.Node) (xpath.Value, error) {
	if def.Select != nil {
		v, err := xpath.Eval(def.Select, f.xpathContext(node, 1, 1))
		if err != nil {
			return nil, &RuntimeError{Where: "variable $" + def.Name, Err: err}
		}
		return v, nil
	}
	if len(def.Body) == 0 {
		return "", nil
	}
	frag, err := f.evalToFragment(def.Body, node)
	if err != nil {
		return nil, err
	}
	// Result tree fragments are modelled as a node-set containing the
	// fragment root (a common XSLT 1.0 extension; string() and copy-of
	// behave per spec).
	return xpath.NodeSet{frag}, nil
}

// evalToFragment runs body against a fresh output builder and returns the
// fragment root.
func (f *frame) evalToFragment(body []Instruction, node *xmltree.Node) (*xmltree.Node, error) {
	saved := f.out
	f.out = NewOutputBuilder()
	err := f.execSeq(body, node, 1, 1)
	frag := f.out.Finish()
	f.out = saved
	if err != nil {
		return nil, err
	}
	frag.Renumber()
	return frag, nil
}

func (f *frame) evalToString(body []Instruction, node *xmltree.Node, pos, size int) (string, error) {
	frag, err := f.evalToFragment(body, node)
	if err != nil {
		return "", err
	}
	return frag.StringValue(), nil
}

// sortNodes orders nodes by the sort keys, stably, most-significant first.
func (f *frame) sortNodes(nodes []*xmltree.Node, sorts []SortKey, outer *xpath.Context) ([]*xmltree.Node, error) {
	type keyed struct {
		node *xmltree.Node
		strs []string
		nums []float64
	}
	items := make([]keyed, len(nodes))
	for i, n := range nodes {
		it := keyed{node: n}
		for _, sk := range sorts {
			ctx := f.xpathContext(n, i+1, len(nodes))
			v, err := xpath.Eval(sk.Select, ctx)
			if err != nil {
				return nil, &RuntimeError{Where: "xsl:sort", Err: err}
			}
			if sk.Numeric {
				it.nums = append(it.nums, xpath.ToNumber(v))
				it.strs = append(it.strs, "")
			} else {
				it.strs = append(it.strs, xpath.ToString(v))
				it.nums = append(it.nums, 0)
			}
		}
		items[i] = it
	}
	sort.SliceStable(items, func(a, b int) bool {
		for k, sk := range sorts {
			var cmp int
			if sk.Numeric {
				x, y := items[a].nums[k], items[b].nums[k]
				switch {
				case x < y:
					cmp = -1
				case x > y:
					cmp = 1
				}
			} else {
				cmp = strings.Compare(items[a].strs[k], items[b].strs[k])
			}
			if sk.Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	out := make([]*xmltree.Node, len(items))
	for i, it := range items {
		out[i] = it.node
	}
	return out, nil
}
